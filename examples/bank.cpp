// A replicated bank: a small end-to-end application on the public API.
//
// Accounts live in the replicated database; transfers are interactive
// transactions (balance check + two updates in one atomic action), so an
// overdraft aborts identically at every replica. The bank survives a
// partition — the primary side keeps clearing transfers, the minority
// queues them red — a replica crash, and an audit proves conservation of
// money at the end.
#include <cstdio>
#include <string>

#include "db/database.h"
#include "workload/cluster.h"

using namespace tordb;

namespace {

db::Command transfer(const std::string& from, const std::string& to, std::int64_t amount,
                     const std::string& expected_from_balance) {
  // Active interactive action: abort unless the source balance still is
  // what the client read; otherwise move the money.
  db::Command c;
  c.ops.push_back(db::Op{db::OpType::kCheck, from, expected_from_balance, 0});
  c.ops.push_back(db::Op{db::OpType::kAdd, from, "", -amount});
  c.ops.push_back(db::Op{db::OpType::kAdd, to, "", amount});
  return c;
}

std::int64_t balance(workload::EngineCluster& c, NodeId replica, const std::string& account) {
  const std::string v = c.engine(replica).database().get(account);
  return v.empty() ? 0 : std::stoll(v);
}

}  // namespace

int main() {
  workload::ClusterOptions options;
  options.replicas = 5;
  workload::EngineCluster bank(options);
  bank.run_for(seconds(1));

  // Open accounts.
  bank.engine(0).submit({}, db::Command::put("alice", "1000"), 1, core::Semantics::kStrict,
                        nullptr);
  bank.engine(0).submit({}, db::Command::put("bob", "500"), 1, core::Semantics::kStrict, nullptr);
  bank.engine(0).submit({}, db::Command::put("carol", "250"), 1, core::Semantics::kStrict,
                        nullptr);
  bank.run_for(millis(300));
  std::printf("accounts opened: alice=1000 bob=500 carol=250 (total 1750)\n");

  // A normal transfer.
  bank.engine(1).submit({}, transfer("alice", "bob", 200, "1000"), 2, core::Semantics::kStrict,
                        [](const core::Reply& r) {
                          std::printf("alice -> bob 200: %s\n",
                                      r.aborted ? "aborted" : "cleared");
                        });
  bank.run_for(millis(300));

  // A stale transfer aborts: it believes alice still has 1000.
  bank.engine(3).submit({}, transfer("alice", "carol", 900, "1000"), 3, core::Semantics::kStrict,
                        [](const core::Reply& r) {
                          std::printf("alice -> carol 900 on stale read: %s\n",
                                      r.aborted ? "aborted (balance changed)" : "cleared");
                        });
  bank.run_for(millis(300));

  // Partition: branch offices {3,4} lose the data center {0,1,2}.
  std::printf("\n### partition: data center {0,1,2} | branch {3,4} ###\n");
  bank.partition({{0, 1, 2}, {3, 4}});
  bank.run_for(millis(500));

  // The data center keeps clearing.
  bank.engine(0).submit({}, transfer("bob", "carol", 100, "700"), 2, core::Semantics::kStrict,
                        [](const core::Reply& r) {
                          std::printf("data center: bob -> carol 100: %s\n",
                                      r.aborted ? "aborted" : "cleared");
                        });
  // The branch can only queue (red) — the client is told after the merge.
  bank.engine(4).submit({}, transfer("carol", "alice", 50, "250"), 4, core::Semantics::kStrict,
                        [](const core::Reply& r) {
                          std::printf("branch transfer cleared after merge: %s\n",
                                      r.aborted ? "aborted (stale read)" : "cleared");
                        });
  // But it can serve balance inquiries from its last consistent state.
  bank.engine(4).submit_query(db::Command::get("carol"), core::QueryMode::kWeak,
                              [](const core::Reply& r) {
                                std::printf("branch balance inquiry (weak): carol=%s\n",
                                            r.reads[0].c_str());
                              });
  bank.run_for(millis(500));

  // A teller machine crashes and recovers mid-partition.
  bank.crash(1);
  bank.run_for(millis(300));
  bank.recover(1);
  std::printf("replica 1 crashed and recovered\n");

  std::printf("\n### merge ###\n");
  bank.heal();
  bank.run_for(seconds(3));

  // Audit: money is conserved and all replicas agree.
  std::printf("\naudit:\n");
  for (NodeId i = 0; i < 5; ++i) {
    const std::int64_t a = balance(bank, i, "alice");
    const std::int64_t b = balance(bank, i, "bob");
    const std::int64_t c = balance(bank, i, "carol");
    std::printf("  replica %d: alice=%lld bob=%lld carol=%lld total=%lld\n", i,
                static_cast<long long>(a), static_cast<long long>(b),
                static_cast<long long>(c), static_cast<long long>(a + b + c));
  }
  auto violation = bank.check_all();
  std::printf("safety invariants: %s\n", violation ? violation->c_str() : "all hold");
  return 0;
}
