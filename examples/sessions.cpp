// Exactly-once client sessions: a payment processor that keeps charging
// while replicas crash under it, without ever double-charging.
//
// The ClientSession library (src/core/client_session.h) fences every update
// with a session-sequence guard evaluated at ordering time, retries through
// other replicas on timeout, and resolves ambiguous outcomes by reading the
// guard back — so "charge the card" happens exactly once no matter which
// replica dies when.
#include <cstdio>

#include "core/client_session.h"
#include "db/database.h"
#include "workload/cluster.h"

using namespace tordb;

int main() {
  workload::ClusterOptions options;
  options.replicas = 4;
  workload::EngineCluster cluster(options);
  cluster.run_for(seconds(1));

  std::vector<core::ReplicaNode*> nodes;
  for (NodeId i = 0; i < 4; ++i) nodes.push_back(&cluster.node(i));
  core::ClientSession processor(cluster.sim(), nodes, /*client_id=*/501);

  std::printf("submitting 8 charges of $25 while replicas crash...\n");
  int committed = 0;
  for (int i = 1; i <= 8; ++i) {
    processor.submit(db::Command::add("merchant-balance", 25),
                     [&, i](const core::SessionReply& r) {
                       ++committed;
                       std::printf("  charge %d: committed after %d attempt(s)\n", i,
                                   r.attempts);
                     });
  }

  // Crash the replica serving the session mid-stream, twice.
  cluster.run_for(millis(9) + micros(300));
  cluster.crash(0);
  std::printf("  >> replica 0 crashed mid-charge\n");
  cluster.run_for(seconds(2));
  cluster.recover(0);
  cluster.run_for(millis(25));
  cluster.crash(1);
  std::printf("  >> replica 1 crashed mid-charge\n");
  cluster.run_for(seconds(2));
  cluster.recover(1);
  cluster.run_for(seconds(3));

  std::printf("\nresults: %d/8 committed, %llu retries, %llu duplicates suppressed\n",
              committed, static_cast<unsigned long long>(processor.stats().retries),
              static_cast<unsigned long long>(processor.stats().duplicates_suppressed));
  for (NodeId i = 0; i < 4; ++i) {
    std::printf("  replica %d: merchant-balance = $%s\n", i,
                cluster.engine(i).database().get("merchant-balance").c_str());
  }
  std::printf("(exactly-once: 8 charges x $25 = $200 at every replica)\n");
  return 0;
}
