// Quickstart: bring up a 5-replica cluster, submit actions, read results.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The cluster runs inside the deterministic network simulator; the same
// ReplicationEngine API would sit on a real group-communication stack.
#include <cstdio>

#include "db/database.h"
#include "workload/cluster.h"

using namespace tordb;

int main() {
  // 1. Five replicas, all founding members of the replica set.
  workload::ClusterOptions options;
  options.replicas = 5;
  workload::EngineCluster cluster(options);

  // 2. Let the group communication form the first primary component.
  cluster.run_for(seconds(1));
  std::printf("primary formed: every replica in state %s\n",
              to_string(cluster.engine(0).state()).c_str());

  // 3. Submit an update through any replica. The reply arrives once the
  //    action is *green*: globally ordered and applied everywhere.
  cluster.engine(2).submit(
      /*query=*/{}, /*update=*/db::Command::put("greeting", "hello, replicated world"),
      /*client=*/1, core::Semantics::kStrict, [](const core::Reply& r) {
        std::printf("update committed as action %s\n", to_string(r.action).c_str());
      });
  cluster.run_for(millis(100));

  // 4. An action can carry a query part — evaluated at ordering time.
  cluster.engine(4).submit(
      db::Command::get("greeting"), db::Command::append("greeting", "!"), 1,
      core::Semantics::kStrict, [](const core::Reply& r) {
        std::printf("read-modify-write saw: \"%s\"\n", r.reads.at(0).c_str());
      });
  cluster.run_for(millis(100));

  // 5. Every replica holds the identical database.
  for (NodeId i = 0; i < 5; ++i) {
    std::printf("replica %d: greeting=\"%s\" (green actions: %lld, digest %016llx)\n", i,
                cluster.engine(i).database().get("greeting").c_str(),
                static_cast<long long>(cluster.engine(i).green_count()),
                static_cast<unsigned long long>(cluster.engine(i).db_digest()));
  }
  return 0;
}
