// A small TPC-C-style shop on two shards: the §12 workload end to end.
//
// Two replication groups split the warehouses between them; eight terminals
// run the five-transaction mix for a few simulated seconds. The demo then
// prints what happened per transaction type, how many actions crossed the
// shard boundary through the commit barrier, and verifies the money: every
// district's year-to-date row must equal the driver's ledger of committed
// payments exactly (commutative kAdds + exactly-once sessions).
#include <cstdio>
#include <string>

#include "workload/sharded_cluster.h"
#include "workload/tpcc/driver.h"

using namespace tordb;
using namespace tordb::workload;

int main() {
  tpcc::TpccOptions topt;
  topt.warehouses = 4;
  topt.districts = 2;
  topt.customers = 8;
  topt.items = 32;
  topt.clients = 8;
  topt.remote_fraction = 0.15;
  topt.zipf_theta = 0.8;

  ShardedClusterOptions options;
  options.shards = 2;
  options.replicas_per_shard = 3;
  options.range_splits = tpcc::warehouse_splits(topt.warehouses, options.shards);
  ShardedCluster cluster(options);

  std::printf("2 shards, %d warehouses: ", topt.warehouses);
  for (int s = 0; s < options.shards; ++s) {
    const auto [lo, hi] = tpcc::shard_warehouses(topt.warehouses, options.shards, s);
    std::printf("shard %d owns w%d..w%d%s", s, lo, hi - 1, s + 1 < options.shards ? ", " : "\n");
  }

  cluster.run_for(seconds(1));  // both groups elect primaries
  tpcc::TpccDriver driver(cluster, topt);
  driver.load();
  std::printf("catalog loaded (%d items x %d warehouses)\n\n", topt.items, topt.warehouses);

  const SimTime start = cluster.sim().now();
  driver.start(start, start + seconds(5));
  while (!driver.idle()) cluster.run_for(millis(200));

  std::printf("%-12s %10s %10s\n", "type", "committed", "aborted");
  for (int t = 0; t < tpcc::kTxnTypes; ++t) {
    const auto type = static_cast<tpcc::TxnType>(t);
    const tpcc::TxnStats& s = driver.total(type);
    std::printf("%-12s %10llu %10llu\n", tpcc::to_string(type),
                static_cast<unsigned long long>(s.committed),
                static_cast<unsigned long long>(s.aborted_check + s.aborted_fenced +
                                                s.aborted_other));
  }
  std::printf("\ncross-shard commits: %llu (remote orders ran unchecked: %llu)\n",
              static_cast<unsigned long long>(driver.cross_shard_committed()),
              static_cast<unsigned long long>(driver.remote_unchecked()));

  // Audit: the replicated district ytd rows must equal the driver's ledger.
  int audited = 0;
  for (int w = 0; w < topt.warehouses; ++w) {
    for (int d = 0; d < topt.districts; ++d) {
      const int shard = cluster.directory().shard_of(tpcc::district_ytd_key(w, d));
      const std::string v =
          cluster.node(shard, 0).engine().database().get(tpcc::district_ytd_key(w, d));
      const std::int64_t stored = v.empty() ? 0 : std::stoll(v);
      if (stored != driver.payment_sum(w, d)) {
        std::printf("AUDIT FAIL: w%d/d%d ytd %lld != ledger %lld\n", w, d,
                    static_cast<long long>(stored),
                    static_cast<long long>(driver.payment_sum(w, d)));
        return 1;
      }
      ++audited;
    }
  }
  std::printf("audit: %d district ytd rows match the payment ledger exactly\n", audited);
  return 0;
}
