// Application semantics (paper §6): what each service level answers while
// the network is partitioned — weak queries (consistent but stale), dirty
// queries (latest, unordered), commutative and timestamp updates (available
// in the minority, convergent after the merge), and interactive
// transactions (read + checked active action, aborting identically
// everywhere on conflict).
#include <cstdio>

#include "db/database.h"
#include "workload/cluster.h"

using namespace tordb;

int main() {
  workload::ClusterOptions options;
  options.replicas = 5;
  workload::EngineCluster cluster(options);
  cluster.run_for(seconds(1));

  // Seed state while the system is whole.
  cluster.engine(0).submit({}, db::Command::put("courier", "warehouse"), 1,
                           core::Semantics::kStrict, nullptr);
  cluster.engine(0).submit({}, db::Command::put("stock", "100"), 1, core::Semantics::kStrict,
                           nullptr);
  cluster.run_for(millis(300));

  std::printf("### partition: {0,1,2} primary | {3,4} minority ###\n");
  cluster.partition({{0, 1, 2}, {3, 4}});
  cluster.run_for(millis(500));

  // The primary moves on; the minority cannot see the new value yet.
  cluster.engine(0).submit({}, db::Command::put("courier", "highway-7"), 1,
                           core::Semantics::kStrict, nullptr);
  cluster.run_for(millis(300));

  auto& minority = cluster.engine(4);

  // Weak query: consistent but possibly obsolete (green state).
  minority.submit_query(db::Command::get("courier"), core::QueryMode::kWeak,
                        [](const core::Reply& r) {
                          std::printf("weak query in minority  : courier=%s (stale, consistent)\n",
                                      r.reads[0].c_str());
                        });

  // A strict update submitted in the minority stays red...
  minority.submit({}, db::Command::put("courier", "detour-road"), 2, core::Semantics::kStrict,
                  [](const core::Reply&) {
                    std::printf("strict update committed (this prints only after the merge)\n");
                  });
  cluster.run_for(millis(200));

  // ...which a dirty query can still see.
  minority.submit_query(db::Command::get("courier"), core::QueryMode::kDirty,
                        [](const core::Reply& r) {
                          std::printf("dirty query in minority : courier=%s (latest, unordered)\n",
                                      r.reads[0].c_str());
                        });

  // Commutative semantics: the inventory example — immediately acknowledged
  // in the minority, merged later.
  minority.submit({}, db::Command::add("stock", -30), 2, core::Semantics::kCommutative,
                  [](const core::Reply&) {
                    std::printf("commutative update      : acknowledged inside the minority\n");
                  });
  cluster.engine(1).submit({}, db::Command::add("stock", -20), 1, core::Semantics::kCommutative,
                           nullptr);

  // Timestamp semantics: the location-tracking example — last writer wins
  // regardless of where/when each side wrote.
  minority.submit({}, db::Command::timestamp_put("gps", "minority@t200", 200), 2,
                  core::Semantics::kTimestamp, nullptr);
  cluster.engine(1).submit({}, db::Command::timestamp_put("gps", "primary@t150", 150), 1,
                           core::Semantics::kTimestamp, nullptr);
  cluster.run_for(millis(300));

  std::printf("\n### merge ###\n");
  cluster.heal();
  cluster.run_for(seconds(2));

  std::printf("\nafter convergence, every replica agrees:\n");
  std::printf("  stock = %s   (100 - 30 - 20, order irrelevant)\n",
              cluster.engine(0).database().get("stock").c_str());
  std::printf("  gps   = %s (highest timestamp wins)\n",
              cluster.engine(0).database().get("gps").c_str());
  std::printf("  courier = %s (strict updates serialized)\n",
              cluster.engine(0).database().get("courier").c_str());

  // Interactive transaction: read, think, then submit an active action that
  // re-checks the read value. A conflicting write forces an abort — at
  // every replica identically.
  std::printf("\n### interactive transaction ###\n");
  std::string seen;
  cluster.engine(0).submit_query(db::Command::get("stock"), core::QueryMode::kStrict,
                                 [&](const core::Reply& r) { seen = r.reads[0]; });
  cluster.run_for(millis(100));
  // Meanwhile another client changes the stock...
  cluster.engine(2).submit({}, db::Command::add("stock", -1), 3, core::Semantics::kStrict,
                           nullptr);
  cluster.run_for(millis(300));
  cluster.engine(0).submit({}, db::Command::checked_put("stock", seen, "0"), 1,
                           core::Semantics::kStrict, [&](const core::Reply& r) {
                             std::printf("  checked update on stale read of %s: %s\n",
                                         seen.c_str(),
                                         r.aborted ? "ABORTED everywhere" : "applied");
                           });
  cluster.run_for(millis(300));
  std::printf("  stock = %s at all replicas\n", cluster.engine(3).database().get("stock").c_str());
  return 0;
}
