// Dynamic replica instantiation and removal (paper §5.1/§5.2): a new
// replica joins a running system via PERSISTENT_JOIN + snapshot transfer
// (with representative fail-over), and a replica retires via
// PERSISTENT_LEAVE — all ordered through the same global green order, so no
// separate consensus on the membership is ever needed.
#include <cstdio>

#include "db/database.h"
#include "workload/cluster.h"

using namespace tordb;

int main() {
  workload::ClusterOptions options;
  options.replicas = 3;
  workload::EngineCluster cluster(options);
  cluster.run_for(seconds(1));

  // Build up some history before the newcomer exists.
  for (int i = 1; i <= 5; ++i) {
    cluster.engine(0).submit({}, db::Command::add("orders", 1), 1, core::Semantics::kStrict,
                             nullptr);
  }
  cluster.run_for(millis(300));
  std::printf("3 replicas, %s orders committed\n",
              cluster.engine(0).database().get("orders").c_str());

  // A new node (id 3) joins via replica 1 as its representative: replica 1
  // announces it with a PERSISTENT_JOIN; when that action turns green,
  // replica 1 snapshots the database and transfers it.
  std::printf("\n### node 3 joins via representative 1 ###\n");
  auto& joiner = cluster.add_dormant(3);
  joiner.join_via({1, 0}, [] { std::printf("  node 3: snapshot received, joined the group\n"); });
  cluster.run_for(seconds(2));

  std::printf("  node 3 inherited: orders=%s (green=%lld)\n",
              joiner.engine().database().get("orders").c_str(),
              static_cast<long long>(joiner.engine().green_count()));
  std::printf("  replica sets now: ");
  for (NodeId s : cluster.engine(0).server_set()) std::printf("%d ", s);
  std::printf("\n");

  // The joiner is a full citizen: it replicates new actions and counts
  // toward the quorum.
  cluster.engine(3).submit({}, db::Command::add("orders", 1), 2, core::Semantics::kStrict,
                           nullptr);
  cluster.run_for(millis(300));
  std::printf("  after node 3 submits: every replica sees orders=%s\n",
              cluster.engine(0).database().get("orders").c_str());

  // Replica 2 retires permanently.
  std::printf("\n### replica 2 leaves the system ###\n");
  cluster.engine(2).request_leave();
  cluster.run_for(seconds(1));
  std::printf("  replica 2 left: %s\n", cluster.node(2).has_left() ? "yes" : "no");
  std::printf("  replica sets now: ");
  for (NodeId s : cluster.engine(0).server_set()) std::printf("%d ", s);
  std::printf("\n");

  // The remaining three keep serving.
  cluster.engine(0).submit({}, db::Command::add("orders", 1), 1, core::Semantics::kStrict,
                           nullptr);
  cluster.run_for(millis(300));
  std::printf("  final: orders=%s across replicas {0,1,3}\n",
              cluster.engine(3).database().get("orders").c_str());

  auto violation = cluster.check_all();
  std::printf("\nsafety invariants: %s\n", violation ? violation->c_str() : "all hold");
  return 0;
}
