// Partition demo: the paper's headline scenario. A 5-replica cluster
// splits; the majority side keeps committing (green), the minority orders
// locally (red) without committing; after the merge the eventual-path
// exchange folds everything into one global persistent order.
#include <cstdio>

#include "db/database.h"
#include "workload/cluster.h"

using namespace tordb;

namespace {
void show(workload::EngineCluster& c, const char* label) {
  std::printf("\n-- %s --\n", label);
  for (NodeId i = 0; i < c.replicas(); ++i) {
    if (!c.node(i).running()) continue;
    auto& e = c.engine(i);
    std::printf("  replica %d: %-10s green=%-3lld red=%-2zu prim#%lld log=\"%s\"\n", i,
                to_string(e.state()).c_str(), static_cast<long long>(e.green_count()),
                e.red_count(), static_cast<long long>(e.prim_component().prim_index),
                e.database().get("log").c_str());
  }
}
}  // namespace

int main() {
  workload::ClusterOptions options;
  options.replicas = 5;
  workload::EngineCluster cluster(options);
  cluster.run_for(seconds(1));

  cluster.engine(0).submit({}, db::Command::append("log", "A"), 1, core::Semantics::kStrict,
                           nullptr);
  cluster.run_for(millis(100));
  show(cluster, "initial primary component, action A committed");

  // Partition: {0,1,2} keep the quorum (majority of the last primary);
  // {3,4} become a non-primary component.
  std::printf("\n### network partitions into {0,1,2} | {3,4} ###\n");
  cluster.partition({{0, 1, 2}, {3, 4}});
  cluster.run_for(millis(500));

  cluster.engine(1).submit({}, db::Command::append("log", "B"), 1, core::Semantics::kStrict,
                           [](const core::Reply&) {
                             std::printf("  majority: action B committed during partition\n");
                           });
  bool minority_committed = false;
  cluster.engine(4).submit({}, db::Command::append("log", "C"), 1, core::Semantics::kStrict,
                           [&](const core::Reply&) { minority_committed = true; });
  cluster.run_for(millis(500));
  std::printf("  minority: action C %s (red: ordered locally, global order unknown)\n",
              minority_committed ? "committed (?!)" : "NOT committed");
  show(cluster, "during the partition");

  // Merge: the exchange protocol runs once (one end-to-end round per
  // membership change — not per action), C gets its global position, and
  // both sides converge.
  std::printf("\n### partitions merge ###\n");
  cluster.heal();
  cluster.run_for(seconds(2));
  show(cluster, "after the merge");
  std::printf("\nminority action C committed after merge: %s\n",
              minority_committed ? "yes" : "no");

  auto violation = cluster.check_all();
  std::printf("safety invariants: %s\n", violation ? violation->c_str() : "all hold");
  return 0;
}
