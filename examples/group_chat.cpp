// The group-communication substrate as a library of its own: a totally
// ordered group chat over the Spread-style mailbox API
// (src/gc/spread_compat.h). Every participant sees every message in the
// same order; a partition splits the room and the membership events say
// exactly who is present; a merge reunites it.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "gc/spread_compat.h"
#include "sim/simulator.h"

using namespace tordb;
using namespace tordb::gc;

namespace {

Bytes text(const std::string& s) { return Bytes(s.begin(), s.end()); }

void drain(const char* who, SpreadMailbox& mbox) {
  while (auto ev = mbox.receive()) {
    switch (ev->type) {
      case SpEventType::kMessage:
        std::printf("  [%s] <node %d> %s%s\n", who, ev->sender,
                    std::string(ev->payload.begin(), ev->payload.end()).c_str(),
                    ev->safe_delivered ? "" : "  (transitional)");
        break;
      case SpEventType::kRegularMembership: {
        std::printf("  [%s] * members now:", who);
        for (NodeId m : ev->members) std::printf(" %d", m);
        std::printf("\n");
        break;
      }
      case SpEventType::kTransitionalMembership:
        std::printf("  [%s] * network change detected...\n", who);
        break;
    }
  }
}

}  // namespace

int main() {
  Simulator sim(7);
  Network net(sim);
  std::vector<std::unique_ptr<SpreadMailbox>> room;
  for (NodeId n = 0; n < 4; ++n) {
    net.add_node(n);
    room.push_back(std::make_unique<SpreadMailbox>(net, n));
  }
  for (auto& m : room) m->join();
  sim.run_for(seconds(1));
  for (NodeId n = 0; n < 4; ++n) drain(("node " + std::to_string(n)).c_str(), *room[n]);

  std::printf("\n-- everyone chats; total order means everyone reads the same log --\n");
  room[0]->multicast(text("hello from 0"), SpService::kSafe);
  room[2]->multicast(text("hi! 2 here"), SpService::kSafe);
  room[3]->multicast(text("3 checking in"), SpService::kSafe);
  sim.run_for(millis(100));
  drain("node 1's view", *room[1]);

  std::printf("\n-- the network splits {0,1} | {2,3} --\n");
  net.set_components({{0, 1}, {2, 3}});
  sim.run_for(seconds(1));
  room[0]->multicast(text("anyone still there?"), SpService::kSafe);
  room[3]->multicast(text("our side is fine"), SpService::kSafe);
  sim.run_for(millis(100));
  drain("node 1", *room[1]);
  drain("node 2", *room[2]);

  std::printf("\n-- the split heals --\n");
  net.heal();
  sim.run_for(seconds(1));
  room[1]->multicast(text("we're back together"), SpService::kSafe);
  sim.run_for(millis(100));
  for (NodeId n = 0; n < 4; ++n) drain(("node " + std::to_string(n)).c_str(), *room[n]);
  return 0;
}
