// Scenario runner: execute a fault-injection script against a simulated
// replicated deployment.
//
//   ./build/examples/scenario_runner [script.scn]
//
// Without arguments it runs a built-in demonstration scenario covering a
// partition, minority red actions, a merge, and a dynamic join. The
// scenario language is documented in src/workload/scenario.h; sample
// scripts live in examples/scenarios/.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "workload/scenario.h"

namespace {

const char* kDemoScenario = R"(# Built-in demo: partition, minority reds, merge, dynamic join.
replicas 5 seed 7
run 1s
status
submit 0 put owner alice
run 200ms
expect-get 4 owner alice

partition 0,1,2 | 3,4
run 500ms
submit 4 put owner bob          # minority: stays red
run 300ms
expect-state 4 NonPrim
expect-red 4 1
expect-get 4 owner alice        # green state unchanged in the minority
query 4 dirty owner             # ...but the dirty view already shows bob
status

heal
run 2s
expect-get 0 owner bob          # merged: the red action found its place
expect-converged 0,1,2,3,4
status

join 5 via 1
run 3s
expect-get 5 owner bob          # the newcomer inherited the state
expect-converged 0,1,2,3,4,5
expect-consistent
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    text = buf.str();
    std::printf("running scenario %s\n", argv[1]);
  } else {
    text = kDemoScenario;
    std::printf("running built-in demo scenario (pass a .scn file to run your own)\n");
  }

  try {
    auto scenario = tordb::workload::Scenario::parse(text);
    auto result = scenario.run([](const std::string& line) { std::printf("%s\n", line.c_str()); });
    if (result.ok) {
      std::printf("\nscenario PASSED (%zu statements)\n", scenario.statement_count());
      return 0;
    }
    std::printf("\nscenario FAILED:\n");
    for (const auto& f : result.failures) std::printf("  %s\n", f.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
