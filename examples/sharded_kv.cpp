// Sharded key-value store: two independent replication groups behind a
// shard router, with a cross-shard transfer surviving a crash.
//
// The shard tier (src/shard, DESIGN.md §8) splits the key space over
// independent engine groups — each with its own total order — and routes
// client commands by key. Single-shard commands pay nothing extra;
// commands spanning shards are split, applied atomically inside each
// group, and acknowledged only when green at ALL involved shards (the
// commit barrier).
#include <cstdio>

#include "db/database.h"
#include "workload/sharded_cluster.h"

using namespace tordb;

int main() {
  workload::ShardedClusterOptions options;
  options.shards = 2;
  options.replicas_per_shard = 3;
  // Range sharding: accounts a..l on shard 0, m..z on shard 1.
  options.range_splits = {"m"};
  workload::ShardedCluster cluster(options);
  cluster.run_for(seconds(2));  // both groups elect a primary

  shard::Router& router = cluster.router();
  std::printf("2 shards x 3 replicas; 'alice' -> shard %d, 'zoe' -> shard %d\n",
              cluster.directory().shard_of("alice"), cluster.directory().shard_of("zoe"));

  // Seed the accounts (single-shard fast path each).
  router.submit(1, db::Command::put("alice", "100"));
  router.submit(1, db::Command::put("zoe", "100"));
  cluster.run_for(millis(200));

  // A cross-shard transfer: debit alice (shard 0), credit zoe (shard 1) —
  // one command, split by the router, committed when green at both groups.
  db::Command transfer;
  transfer.ops.push_back(db::Op{db::OpType::kAdd, "alice", "", -30});
  transfer.ops.push_back(db::Op{db::OpType::kAdd, "zoe", "", 30});
  router.submit(1, transfer, [](const shard::RouteReply& r) {
    std::printf("transfer: committed=%d across %d shards, barrier wait %.2f ms\n",
                r.committed ? 1 : 0, r.shards_involved,
                static_cast<double>(r.barrier_wait) / 1e6);
  });
  cluster.run_for(millis(500));

  // Crash shard 0's serving replica mid-transfer and transfer again: the
  // per-shard sessions fail over and apply exactly once.
  db::Command transfer2;
  transfer2.ops.push_back(db::Op{db::OpType::kAdd, "alice", "", -20});
  transfer2.ops.push_back(db::Op{db::OpType::kAdd, "zoe", "", 20});
  router.submit(1, transfer2, [](const shard::RouteReply& r) {
    std::printf("transfer under crash: committed=%d after %d attempt(s)\n",
                r.committed ? 1 : 0, r.attempts);
  });
  cluster.run_for(millis(9));
  cluster.crash(0, 0);
  std::printf(">> shard 0, replica 0 crashed mid-transfer\n");
  cluster.run_for(seconds(4));

  std::printf("\nfinal balances (read at each shard's second replica):\n");
  std::printf("  alice = %s (shard 0)\n",
              cluster.node(0, 1).engine().database().get("alice").c_str());
  std::printf("  zoe   = %s (shard 1)\n",
              cluster.node(1, 1).engine().database().get("zoe").c_str());
  std::printf("router: %llu committed, %llu cross-shard, %llu failovers\n",
              static_cast<unsigned long long>(router.stats().committed),
              static_cast<unsigned long long>(router.stats().routed_cross),
              static_cast<unsigned long long>(router.stats().failovers));
  std::printf("(alice 100-30-20=50, zoe 100+30+20=150: atomic at every involved shard)\n");
  return 0;
}
