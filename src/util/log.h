// Tiny leveled logger.
//
// Logging is off by default (benchmarks and property tests run millions of
// simulated events); examples turn it on to narrate runs. A time source can
// be injected so log lines carry the *simulated* clock.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "util/types.h"

namespace tordb {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Log {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::kOff;
    return lvl;
  }

  /// Optional source for the simulated clock shown in each line.
  static std::function<SimTime()>& time_source() {
    static std::function<SimTime()> src;
    return src;
  }

  /// Optional sink replacing the default stderr writer (the obs trace bus
  /// installs one to capture log lines as trace events). The sink decides
  /// whether to also forward to `write_default`.
  using Sink = std::function<void(LogLevel, const std::string& tag, const std::string& msg)>;
  static Sink& sink() {
    static Sink s;
    return s;
  }

  /// `kOff` is the maximum level, so the single threshold comparison
  /// suffices (callers only pass real levels kTrace..kError).
  static bool enabled(LogLevel lvl) { return lvl >= level(); }

  static void write(LogLevel lvl, const std::string& tag, const std::string& msg);
  /// The stderr formatter, bypassing any installed sink.
  static void write_default(LogLevel lvl, const std::string& tag, const std::string& msg);
};

#define TORDB_LOG(lvl, tag)                                   \
  for (bool _on = ::tordb::Log::enabled(lvl); _on; _on = false) \
  ::tordb::LogLine(lvl, tag)

#define LOG_TRACE(tag) TORDB_LOG(::tordb::LogLevel::kTrace, tag)
#define LOG_DEBUG(tag) TORDB_LOG(::tordb::LogLevel::kDebug, tag)
#define LOG_INFO(tag) TORDB_LOG(::tordb::LogLevel::kInfo, tag)
#define LOG_WARN(tag) TORDB_LOG(::tordb::LogLevel::kWarn, tag)
#define LOG_ERROR(tag) TORDB_LOG(::tordb::LogLevel::kError, tag)

class LogLine {
 public:
  LogLine(LogLevel lvl, std::string tag) : lvl_(lvl), tag_(std::move(tag)) {}
  ~LogLine() { Log::write(lvl_, tag_, out_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::string tag_;
  std::ostringstream out_;
};

}  // namespace tordb
