// Open-addressing hash map from 64-bit keys to values.
//
// The router's per-request state (`sessions_` keyed by (client, shard),
// per-client cross sequence counters, in-flight cross actions by token)
// used to live in `std::map`s, paying a red-black-tree walk per request.
// Those keys all pack into one integer, so a flat power-of-two table with
// linear probing serves each lookup in ~one cache line.
//
// Deletion uses tombstones; a rehash (on growth, or when tombstones pile
// up past half the live count) drops them. Values must be movable; value
// references are invalidated by any insert (callers re-fetch after calls
// that may insert — the same discipline the simulator's flat tables use).
// Iteration order is the table's probe order, i.e. unspecified: callers
// that need determinism-relevant ordering must sort.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace tordb::util {

template <typename T>
class FlatMap64 {
 public:
  /// Pointer to the value for `key`, or nullptr. Never allocates.
  T* find(std::uint64_t key) {
    const std::size_t i = find_slot(key);
    return i == kNpos ? nullptr : &slots_[i].value;
  }
  const T* find(std::uint64_t key) const {
    const std::size_t i = find_slot(key);
    return i == kNpos ? nullptr : &slots_[i].value;
  }

  /// Value for `key`, default-constructed on first touch.
  T& operator[](std::uint64_t key) {
    if (slots_.empty() || (size_ + tombs_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.empty() ? kInitialSlots
                            : (size_ + 1) * 4 > slots_.size() * 3 ? slots_.size() * 2
                                                                  : slots_.size());
    }
    std::size_t i = probe_start(key);
    std::size_t insert_at = kNpos;
    while (slots_[i].state != State::kEmpty) {
      if (slots_[i].state == State::kFull && slots_[i].key == key) return slots_[i].value;
      if (slots_[i].state == State::kTomb && insert_at == kNpos) insert_at = i;
      i = (i + 1) & (slots_.size() - 1);
    }
    if (insert_at == kNpos) {
      insert_at = i;
    } else {
      --tombs_;
    }
    slots_[insert_at].key = key;
    slots_[insert_at].state = State::kFull;
    slots_[insert_at].value = T{};
    ++size_;
    return slots_[insert_at].value;
  }

  /// Pre-size the table so `n` entries fit without growth rehashes.
  void reserve(std::size_t n) {
    std::size_t target = kInitialSlots;
    while (n * 4 > target * 3) target *= 2;
    if (target > slots_.size()) rehash(target);
  }

  /// Drop every entry, keeping the allocated table.
  void clear() {
    for (Slot& s : slots_) {
      if (s.state != State::kEmpty) s.value = T{};
      s.state = State::kEmpty;
    }
    size_ = 0;
    tombs_ = 0;
  }

  /// Remove `key`; returns whether it was present.
  bool erase(std::uint64_t key) {
    const std::size_t i = find_slot(key);
    if (i == kNpos) return false;
    slots_[i].state = State::kTomb;
    slots_[i].value = T{};
    --size_;
    ++tombs_;
    return true;
  }

  /// Move the value for `key` out and erase it (the flat analogue of
  /// std::map::extract). Precondition: the key is present.
  T extract(std::uint64_t key) {
    const std::size_t i = find_slot(key);
    T out = std::move(slots_[i].value);
    slots_[i].state = State::kTomb;
    slots_[i].value = T{};
    --size_;
    ++tombs_;
    return out;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Visit every (key, value) pair, probe order (unspecified).
  template <typename F>
  void for_each(F&& fn) const {
    for (const Slot& s : slots_) {
      if (s.state == State::kFull) fn(s.key, s.value);
    }
  }
  template <typename F>
  void for_each(F&& fn) {
    for (Slot& s : slots_) {
      if (s.state == State::kFull) fn(s.key, s.value);
    }
  }

 private:
  enum class State : std::uint8_t { kEmpty = 0, kFull = 1, kTomb = 2 };
  struct Slot {
    std::uint64_t key = 0;
    T value{};
    State state = State::kEmpty;
  };
  static constexpr std::size_t kInitialSlots = 16;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::size_t probe_start(std::uint64_t key) const {
    return static_cast<std::size_t>(mix(key)) & (slots_.size() - 1);
  }

  std::size_t find_slot(std::uint64_t key) const {
    if (slots_.empty()) return kNpos;
    std::size_t i = probe_start(key);
    while (slots_[i].state != State::kEmpty) {
      if (slots_[i].state == State::kFull && slots_[i].key == key) return i;
      i = (i + 1) & (slots_.size() - 1);
    }
    return kNpos;
  }

  void rehash(std::size_t new_slots) {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(new_slots);  // value-initialized: works for move-only T
    tombs_ = 0;
    for (Slot& s : old) {
      if (s.state != State::kFull) continue;
      std::size_t i = probe_start(s.key);
      while (slots_[i].state == State::kFull) i = (i + 1) & (new_slots - 1);
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
      slots_[i].state = State::kFull;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t tombs_ = 0;
};

/// Sorted-vector map for tiny key sets (per-creator cuts, green lines —
/// bounded by the replication group size): a binary search over one or two
/// cache lines beats any hash or tree at this size, and iteration runs in
/// ascending key order, so deterministic wire encodings come for free.
/// Like FlatMap64, value references are invalidated by inserts.
template <typename K, typename V>
class VecMap {
 public:
  /// Value for `key`, default-constructed on first touch.
  V& operator[](K key) {
    auto it = lower_bound(key);
    if (it == entries_.end() || it->first != key) {
      it = entries_.insert(it, {key, V{}});
    }
    return it->second;
  }

  V* find(K key) {
    auto it = lower_bound(key);
    return it == entries_.end() || it->first != key ? nullptr : &it->second;
  }
  const V* find(K key) const {
    auto it = lower_bound(key);
    return it == entries_.end() || it->first != key ? nullptr : &it->second;
  }

  bool erase(K key) {
    auto it = lower_bound(key);
    if (it == entries_.end() || it->first != key) return false;
    entries_.erase(it);
    return true;
  }

  void clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Entries in ascending key order (the backing vector itself).
  const std::vector<std::pair<K, V>>& entries() const { return entries_; }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  auto lower_bound(K key) {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [](const std::pair<K, V>& e, K k) { return e.first < k; });
  }
  auto lower_bound(K key) const {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [](const std::pair<K, V>& e, K k) { return e.first < k; });
  }

  std::vector<std::pair<K, V>> entries_;
};

}  // namespace tordb::util
