// Dense key interning: string -> small dense id, id -> string_view.
//
// The protocol tier's hot paths (db apply, directory routing) used to
// re-hash or re-compare full `std::string` keys on every op. Production
// replicated stores run per-key machinery on dense ids instead (LARK /
// Aerospike shape, PAPERS.md): intern each distinct key once, then index
// flat arrays by the id everywhere downstream.
//
// Ids are assigned in first-intern order, so they are deterministic per
// node: every replica of a group applies the same green sequence and thus
// interns the same keys in the same order. Nothing on the wire or in the
// digest depends on ids — they are a per-node acceleration structure.
//
// The index is a power-of-two open-addressing table (FNV-1a, linear
// probing) holding id+1; key bodies live in a deque so `key(id)` views stay
// stable across growth. Interned keys are never freed — the table is
// bounded by the key universe, not the live row count.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace tordb::util {

/// Dense per-node key id (first-intern order).
using KeyId = std::uint32_t;

/// Sentinel: key not interned.
inline constexpr KeyId kNoKeyId = 0xffffffffu;

class KeyInterner {
 public:
  /// Id for `key`, assigning the next dense id on first sight.
  KeyId intern(std::string_view key) {
    if (slots_.empty()) grow(kInitialSlots);
    std::size_t i = probe_start(key);
    while (slots_[i] != 0) {
      const KeyId id = slots_[i] - 1;
      if (keys_[id] == key) return id;
      i = (i + 1) & (slots_.size() - 1);
    }
    const KeyId id = static_cast<KeyId>(keys_.size());
    keys_.emplace_back(key);
    bytes_ += key.size();
    slots_[i] = id + 1;
    // Grow at 3/4 load so probe chains stay short.
    if ((keys_.size() + 1) * 4 > slots_.size() * 3) grow(slots_.size() * 2);
    return id;
  }

  /// Id for `key` if already interned, else kNoKeyId. Never allocates.
  KeyId find(std::string_view key) const {
    if (slots_.empty()) return kNoKeyId;
    std::size_t i = probe_start(key);
    while (slots_[i] != 0) {
      const KeyId id = slots_[i] - 1;
      if (keys_[id] == key) return id;
      i = (i + 1) & (slots_.size() - 1);
    }
    return kNoKeyId;
  }

  /// The interned string for a valid id. Stable across later interns.
  std::string_view key(KeyId id) const { return keys_[id]; }

  std::size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }
  /// Total interned key bytes (the `db.intern.bytes` metric).
  std::uint64_t bytes() const { return bytes_; }
  /// Open-addressing slots currently allocated and rehashes performed
  /// (the `db.table.{slots,rehashes}` metrics).
  std::size_t slots() const { return slots_.size(); }
  std::uint64_t rehashes() const { return rehashes_; }

  void clear() {
    keys_.clear();
    slots_.clear();
    bytes_ = 0;
  }

 private:
  static constexpr std::size_t kInitialSlots = 64;

  static std::uint64_t hash(std::string_view s) {
    std::uint64_t h = 1469598103934665603ull;
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return h;
  }

  std::size_t probe_start(std::string_view key) const {
    return static_cast<std::size_t>(hash(key)) & (slots_.size() - 1);
  }

  void grow(std::size_t new_slots) {
    slots_.assign(new_slots, 0);
    if (!keys_.empty()) ++rehashes_;
    for (KeyId id = 0; id < keys_.size(); ++id) {
      std::size_t i = probe_start(keys_[id]);
      while (slots_[i] != 0) i = (i + 1) & (new_slots - 1);
      slots_[i] = id + 1;
    }
  }

  std::deque<std::string> keys_;      ///< id -> key; deque keeps views stable
  std::vector<std::uint32_t> slots_;  ///< id + 1; 0 = empty; power-of-two size
  std::uint64_t bytes_ = 0;
  std::uint64_t rehashes_ = 0;
};

}  // namespace tordb::util
