// Deterministic pseudo-random number generator (splitmix64 + xoshiro256**).
//
// The standard library engines are implementation-defined across platforms;
// this RNG guarantees identical streams everywhere, which the simulator
// relies on for reproducible experiments and seeded property tests.
#pragma once

#include <cstdint>

namespace tordb {

/// One step of the splitmix64 stream: advances `state` and returns the next
/// output. Used to spread seeds (xoshiro init, per-shard seed derivation)
/// so related seeds produce uncorrelated streams.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 to spread the seed across the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Debiased modulo via rejection sampling.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

  /// Derive an independent child stream (e.g. one per node).
  Rng fork() { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4] = {};
};

}  // namespace tordb
