// Minimal, explicit binary serialization used for every wire message and
// stable-storage record.
//
// Writers append little-endian fixed-width integers, length-prefixed strings
// and vectors. Readers validate bounds and throw SerdeError on malformed
// input (storage corruption is a bug in this codebase, not an expected
// condition, but we still fail loudly rather than reading garbage).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace tordb {

class SerdeError : public std::runtime_error {
 public:
  explicit SerdeError(const std::string& what) : std::runtime_error(what) {}
};

using Bytes = std::vector<std::uint8_t>;

class BufWriter {
 public:
  // Nearly every wire message and log record fits in one cache-line-friendly
  // chunk; reserving up front turns the per-encode realloc ladder (1, 2, 4,
  // ... bytes) into a single allocation.
  BufWriter() { buf_.reserve(128); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Same wire format as str(); takes a view (interned keys, substrings).
  void str_view(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void bytes(const Bytes& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Same wire format as bytes(); takes a borrowed (ptr, len) view so a
  /// payload can be re-framed without first materializing a Bytes copy.
  void bytes_view(const std::uint8_t* p, std::size_t n) {
    u32(static_cast<std::uint32_t>(n));
    buf_.insert(buf_.end(), p, p + n);
  }

  void action_id(const ActionId& a) {
    i32(a.server_id);
    i64(a.index);
  }

  void config_id(const ConfigId& c) {
    i64(c.counter);
    i32(c.coordinator);
  }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn&& write_one) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const T& x : v) write_one(*this, x);
  }

  void node_ids(const std::vector<NodeId>& v) {
    vec(v, [](BufWriter& w, NodeId n) { w.i32(n); });
  }

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    if constexpr (std::endian::native == std::endian::little) {
      const std::size_t at = buf_.size();
      buf_.resize(at + sizeof(T));
      std::memcpy(buf_.data() + at, &v, sizeof(T));
    } else {
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
      }
    }
  }

  Bytes buf_;
};

class BufReader {
 public:
  explicit BufReader(const Bytes& b) : data_(b.data()), size_(b.size()) {}
  /// Read from a borrowed (ptr, len) view — e.g. a delivery payload that is
  /// a slice of a shared wire buffer.
  BufReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(get_le<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(get_le<std::uint64_t>()); }
  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  Bytes bytes() {
    const std::uint32_t n = u32();
    need(n);
    Bytes b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }

  /// Zero-copy view of a length-prefixed byte field. Valid only while the
  /// underlying buffer outlives the reader — for re-framing a payload into
  /// another message within one handler, not for retention.
  std::pair<const std::uint8_t*, std::size_t> bytes_view() {
    const std::uint32_t n = u32();
    need(n);
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return {p, n};
  }

  ActionId action_id() {
    ActionId a;
    a.server_id = i32();
    a.index = i64();
    return a;
  }

  ConfigId config_id() {
    ConfigId c;
    c.counter = i64();
    c.coordinator = i32();
    return c;
  }

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& read_one) {
    const std::uint32_t n = u32();
    std::vector<T> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(read_one(*this));
    return v;
  }

  std::vector<NodeId> node_ids() {
    return vec<NodeId>([](BufReader& r) { return r.i32(); });
  }

  bool done() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  void need(std::size_t n) {
    if (pos_ + n > size_) throw SerdeError("buffer underrun");
  }

  template <typename T>
  T get_le() {
    need(sizeof(T));
    T v = 0;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&v, data_ + pos_, sizeof(T));
    } else {
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
      }
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace tordb
