#include "util/log.h"

#include <cstdio>

namespace tordb {

namespace {
const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void Log::write(LogLevel lvl, const std::string& tag, const std::string& msg) {
  if (!enabled(lvl)) return;
  if (sink()) {
    sink()(lvl, tag, msg);
    return;
  }
  write_default(lvl, tag, msg);
}

void Log::write_default(LogLevel lvl, const std::string& tag, const std::string& msg) {
  if (time_source()) {
    std::fprintf(stderr, "[%10.4fms] %s %-14s %s\n", to_millis(time_source()()),
                 level_name(lvl), tag.c_str(), msg.c_str());
  } else {
    std::fprintf(stderr, "[---] %s %-14s %s\n", level_name(lvl), tag.c_str(), msg.c_str());
  }
}

}  // namespace tordb
