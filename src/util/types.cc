#include "util/types.h"

namespace tordb {

std::string to_string(const ActionId& id) {
  return "a(" + std::to_string(id.server_id) + ":" + std::to_string(id.index) + ")";
}

std::string to_string(const ConfigId& id) {
  return "c(" + std::to_string(id.counter) + "@" + std::to_string(id.coordinator) + ")";
}

}  // namespace tordb
