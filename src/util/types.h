// Fundamental identifier and time types shared by every module.
//
// All simulated time is integral nanoseconds (`SimTime`) so that event
// ordering is exact and runs are bit-for-bit reproducible across platforms.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace tordb {

/// Identifier of a replication server / simulated node. Stable across
/// crashes and recoveries (paper §2.1: "Upon recovery, a server retains its
/// old identifier and stable storage").
using NodeId = std::int32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = -1;

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// Simulated duration in nanoseconds.
using SimDuration = std::int64_t;

constexpr SimDuration nanos(std::int64_t n) { return n; }
constexpr SimDuration micros(std::int64_t u) { return u * 1'000; }
constexpr SimDuration millis(std::int64_t m) { return m * 1'000'000; }
constexpr SimDuration seconds(std::int64_t s) { return s * 1'000'000'000; }

constexpr double to_seconds(SimDuration d) { return static_cast<double>(d) / 1e9; }
constexpr double to_millis(SimDuration d) { return static_cast<double>(d) / 1e6; }

/// Identifier of one action, as defined by the paper's Appendix A:
/// the creating server plus a per-server monotonically increasing index.
struct ActionId {
  NodeId server_id = kNoNode;
  std::int64_t index = 0;

  friend auto operator<=>(const ActionId&, const ActionId&) = default;
};

/// Order-preserving 64-bit packing of an ActionId: creator in bits 40..63,
/// per-creator index in bits 0..39. For the ids the protocol generates
/// (non-negative server ids far below 2^24, indices far below 2^40) packed
/// keys compare exactly like ActionId's lexicographic order, so flat tables
/// keyed by the packed form recover deterministic ActionId-ordered
/// iteration by sorting their keys.
inline std::uint64_t pack_action_id(const ActionId& id) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.server_id)) << 40) |
         static_cast<std::uint64_t>(id.index);
}

inline ActionId unpack_action_id(std::uint64_t key) {
  return ActionId{static_cast<NodeId>(key >> 40),
                  static_cast<std::int64_t>(key & ((std::uint64_t{1} << 40) - 1))};
}

/// Identifier of a group-communication configuration (view). Totally
/// ordered: later configurations compare greater.
struct ConfigId {
  std::int64_t counter = 0;     ///< monotonically increasing epoch
  NodeId coordinator = kNoNode; ///< tie-breaker; the node that installed it

  friend auto operator<=>(const ConfigId&, const ConfigId&) = default;
};

std::string to_string(const ActionId& id);
std::string to_string(const ConfigId& id);

}  // namespace tordb

template <>
struct std::hash<tordb::ActionId> {
  std::size_t operator()(const tordb::ActionId& a) const noexcept {
    return std::hash<std::int64_t>()((static_cast<std::int64_t>(a.server_id) << 40) ^ a.index);
  }
};
