// Zipf-distributed integer sampler (rejection-inversion, Hörmann 1996).
//
// Draws ranks in [0, n) with P(rank = k) proportional to 1 / (k+1)^theta —
// the skewed-access model every serious storage benchmark uses (YCSB's
// "zipfian", TPC-C hot warehouses). Rejection-inversion needs no O(n)
// precomputed table and no per-sample harmonic sums: setup is four
// transcendental evaluations, and a sample is one uniform draw plus one or
// two evaluations of the inverse integral (the acceptance rate is > 0.9 for
// every n and theta), so re-parameterizing mid-run — the hotspot-shift mode
// of the TPC-C workload — costs nothing.
//
// Determinism: all randomness comes from the caller's tordb::Rng (splitmix
// seeded), so a fixed seed reproduces the exact rank sequence. The sampler
// itself is stateless between draws; two generators with equal (n, theta)
// fed the same Rng stream emit identical ranks.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "util/rng.h"

namespace tordb::util {

class ZipfGenerator {
 public:
  /// Ranks [0, n), exponent `theta` >= 0. theta == 0 degenerates to the
  /// uniform distribution (served by Rng::next_below, no float math).
  ZipfGenerator(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    if (n == 0) throw std::invalid_argument("ZipfGenerator needs n >= 1");
    if (theta < 0) throw std::invalid_argument("ZipfGenerator needs theta >= 0");
    if (theta_ > 0) {
      h_x1_ = h_integral(1.5) - 1.0;
      h_n_ = h_integral(static_cast<double>(n) + 0.5);
      s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
    }
  }

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Next rank in [0, n); rank 0 is the most popular.
  std::uint64_t next(Rng& rng) {
    if (theta_ == 0) return rng.next_below(n_);
    // Hörmann's rejection-inversion: invert the integral of the hat
    // function h(x) = x^-theta over [0.5, n + 0.5], accept k when the
    // uniform falls under the true (discrete) density at k.
    for (;;) {
      const double u = h_n_ + rng.next_double() * (h_x1_ - h_n_);
      const double x = h_integral_inverse(u);
      std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      if (static_cast<double>(k) - x <= s_ ||
          u >= h_integral(static_cast<double>(k) + 0.5) - h(static_cast<double>(k))) {
        return k - 1;  // ranks are 0-based
      }
    }
  }

 private:
  /// Integral of the hat function: H(x) = (x^(1-theta) - 1) / (1 - theta),
  /// continued by log(x) at theta == 1.
  double h_integral(double x) const {
    const double log_x = std::log(x);
    return helper2((1.0 - theta_) * log_x) * log_x;
  }

  double h(double x) const { return std::exp(-theta_ * std::log(x)); }

  double h_integral_inverse(double x) const {
    double t = x * (1.0 - theta_);
    if (t < -1.0) t = -1.0;  // numerical guard near the lower support bound
    return std::exp(helper1(t) * x);
  }

  /// helper1(x) = log1p(x) / x, stable near 0.
  static double helper1(double x) {
    return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x));
  }

  /// helper2(x) = expm1(x) / x, stable near 0.
  static double helper2(double x) {
    return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x));
  }

  std::uint64_t n_;
  double theta_;
  double h_x1_ = 0;  ///< H(1.5) - 1
  double h_n_ = 0;   ///< H(n + 0.5)
  double s_ = 0;     ///< acceptance shortcut threshold
};

}  // namespace tordb::util
