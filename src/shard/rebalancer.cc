#include "shard/rebalancer.h"

#include <utility>

namespace tordb::shard {

Rebalancer::Rebalancer(Simulator& sim, std::shared_ptr<Directory> directory,
                       std::vector<std::vector<core::ReplicaNode*>> replicas,
                       RebalancerOptions options)
    : sim_(sim),
      directory_(std::move(directory)),
      replicas_(std::move(replicas)),
      options_(std::move(options)),
      alive_(std::make_shared<bool>(true)) {
  if (options_.metrics) {
    metric_moves_ = &options_.metrics->counter("shard.rebalance.moves");
    metric_moves_failed_ = &options_.metrics->counter("shard.rebalance.moves_failed");
    metric_rows_ = &options_.metrics->counter("shard.rebalance.rows_moved");
    metric_bytes_ = &options_.metrics->counter("shard.rebalance.bytes_moved");
    move_ms_hist_ = &options_.metrics->histogram("shard.rebalance.move_ms");
  }
}

Rebalancer::~Rebalancer() { *alive_ = false; }

core::ClientSession& Rebalancer::session(int shard) {
  auto& slot = sessions_[shard];
  if (!slot) {
    core::SessionOptions opts = options_.session;
    // A move must survive whole-group outages of either side: wait, don't
    // abort, when every replica of the target group is briefly down.
    opts.retry_when_unavailable = true;
    // Negative session ids: router sessions are client * shards + shard
    // with non-negative client ids, so the rebalancer's guard keys can
    // never alias a workload session's, whatever ids the workload picks.
    slot = std::make_unique<core::ClientSession>(
        sim_, replicas_.at(static_cast<std::size_t>(shard)),
        -(1 + static_cast<std::int64_t>(shard)), opts);
  }
  return *slot;
}

void Rebalancer::bump_epoch_trace(std::int64_t owner, std::uint64_t range) {
  options_.tracer.emit(obs::EventKind::kDirectoryEpoch, directory_->epoch(), owner,
                       static_cast<std::int64_t>(range));
}

bool Rebalancer::split_at(const std::string& key) {
  // Splitting a range that is mid-move would orphan the move's cutover
  // (set_range_owner matches exact bounds), so reject while busy.
  for (const auto& [lo, hi] : busy_) {
    if (db::key_in_range(key, lo, hi)) {
      ++stats_.moves_rejected;
      return false;
    }
  }
  if (!directory_->split_at(key)) {
    ++stats_.moves_rejected;
    return false;
  }
  ++stats_.splits;
  bump_epoch_trace(directory_->shard_of(key), db::range_fingerprint(key, key));
  return true;
}

bool Rebalancer::merge_at(const std::string& key) {
  for (const auto& [lo, hi] : busy_) {
    if (lo == key || hi == key) {
      ++stats_.moves_rejected;
      return false;
    }
  }
  if (!directory_->merge_at(key)) {
    ++stats_.moves_rejected;
    return false;
  }
  ++stats_.merges;
  bump_epoch_trace(directory_->shard_of(key), db::range_fingerprint(key, key));
  return true;
}

bool Rebalancer::move_range(const std::string& lo, const std::string& hi, int to,
                            MoveDoneFn done) {
  const int idx = directory_->range_index(lo, hi);
  const bool busy = busy_.count({lo, hi}) > 0;
  if (idx < 0 || busy || to < 0 || to >= directory_->shards() ||
      directory_->range_owner(idx) == to) {
    ++stats_.moves_rejected;
    if (done) {
      MoveReport rep;
      rep.lo = lo;
      rep.hi = hi;
      rep.to = to;
      rep.from = idx >= 0 ? directory_->range_owner(idx) : -1;
      done(rep);
    }
    return false;
  }

  auto mv = std::make_shared<Move>();
  mv->lo = lo;
  mv->hi = hi;
  mv->from = directory_->range_owner(idx);
  mv->to = to;
  mv->started = sim_.now();
  mv->done = std::move(done);
  busy_.insert({lo, hi});
  ++stats_.moves_started;

  // Step 1: fence the range in the source group's green order.
  session(mv->from).submit(
      db::Command::fence_range(lo, hi),
      [this, alive = alive_, mv](const core::SessionReply& r) {
        if (!*alive) return;
        if (!r.committed) {
          // The fence is unconditional; a non-commit means the session's
          // attempt budget ran out against a dead group. Give up cleanly.
          fail(mv);
          return;
        }
        mv->fence_committed = true;
        await_fenced_snapshot(mv);
      });
  return true;
}

void Rebalancer::await_fenced_snapshot(std::shared_ptr<Move> mv) {
  // Step 2: extract from any running source replica that has applied the
  // fence. The submitting session saw the fence green, so at least one
  // replica had it; crashes since then only delay until a replica recovers
  // (recovery replays the log, so the fence survives restarts).
  for (core::ReplicaNode* node : replicas_.at(static_cast<std::size_t>(mv->from))) {
    if (node->running() && !node->has_left() &&
        node->engine().range_fenced(mv->lo, mv->hi)) {
      db::RangeSnapshot snap = node->engine().extract_range(mv->lo, mv->hi);
      const std::int64_t bytes = static_cast<std::int64_t>(snap.encode().size());
      const SimDuration transfer =
          options_.transfer_base + options_.transfer_per_byte * bytes;
      sim_.after(transfer, [this, alive = alive_, mv, snap = std::move(snap)]() mutable {
        if (!*alive) return;
        install(mv, std::move(snap));
      });
      return;
    }
  }
  sim_.after(options_.poll_interval, [this, alive = alive_, mv] {
    if (!*alive) return;
    await_fenced_snapshot(mv);
  });
}

void Rebalancer::install(std::shared_ptr<Move> mv, db::RangeSnapshot snap) {
  // Step 3: install in the destination group's green order.
  const std::int64_t rows = static_cast<std::int64_t>(snap.rows.size());
  const std::int64_t bytes = static_cast<std::int64_t>(snap.encode().size());
  session(mv->to).submit(db::Command::install_range(snap),
                         [this, alive = alive_, mv, rows, bytes](const core::SessionReply& r) {
                           if (!*alive) return;
                           if (!r.committed) {
                             fail(mv);
                             return;
                           }
                           cutover(mv, rows, bytes);
                         });
}

void Rebalancer::cutover(std::shared_ptr<Move> mv, std::int64_t rows, std::int64_t bytes) {
  // The busy-set guards keep [lo, hi) a current directory range for the
  // move's whole lifetime, but verify the flip anyway: reporting ok for a
  // cutover that did not apply would strand the range fenced at the source
  // while the directory keeps routing to it.
  if (!directory_->set_range_owner(mv->lo, mv->hi, mv->to)) {
    fail(mv);
    return;
  }
  bump_epoch_trace(mv->to, db::range_fingerprint(mv->lo, mv->hi));
  busy_.erase({mv->lo, mv->hi});
  ++stats_.moves_completed;
  stats_.rows_moved += rows;
  stats_.bytes_moved += bytes;
  const SimDuration took = sim_.now() - mv->started;
  if (metric_moves_ != nullptr) metric_moves_->inc();
  if (metric_rows_ != nullptr) metric_rows_->inc(static_cast<std::uint64_t>(rows));
  if (metric_bytes_ != nullptr) metric_bytes_->inc(static_cast<std::uint64_t>(bytes));
  if (move_ms_hist_ != nullptr) move_ms_hist_->record(took / 1'000'000);  // ns -> ms

  if (mv->done) {
    MoveReport rep;
    rep.ok = true;
    rep.lo = mv->lo;
    rep.hi = mv->hi;
    rep.from = mv->from;
    rep.to = mv->to;
    rep.rows = rows;
    rep.bytes = bytes;
    rep.duration = took;
    rep.epoch = directory_->epoch();
    mv->done(rep);
  }
}

void Rebalancer::fail(std::shared_ptr<Move> mv) {
  ++stats_.moves_failed;
  if (metric_moves_failed_ != nullptr) metric_moves_failed_->inc();
  if (!mv->fence_committed) {
    finish_failed(mv);
    return;
  }
  // The fence committed but the move cannot finish: roll back. The
  // directory never flipped, so the source is still the range's owner —
  // lift its fence so routed writes commit again instead of bouncing until
  // the router's budget exhausts. The range stays busy until the rollback
  // lands, keeping a new move off the same bounds meanwhile.
  session(mv->from).submit(db::Command::unfence_range(mv->lo, mv->hi),
                           [this, alive = alive_, mv](const core::SessionReply&) {
                             if (!*alive) return;
                             finish_failed(mv);
                           });
}

void Rebalancer::finish_failed(std::shared_ptr<Move> mv) {
  busy_.erase({mv->lo, mv->hi});
  if (mv->done) {
    MoveReport rep;
    rep.lo = mv->lo;
    rep.hi = mv->hi;
    rep.from = mv->from;
    rep.to = mv->to;
    rep.duration = sim_.now() - mv->started;
    mv->done(rep);
  }
}

}  // namespace tordb::shard
