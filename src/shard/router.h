// Shard router: the client tier of partial replication.
//
// Clients submit ordinary db::Commands; the router consults the Directory
// and picks the path:
//
//  - single-shard fast path: every key maps to one shard — the command goes
//    through that shard's exactly-once client session (core/client_session)
//    to a live member of the group, failing over on timeout or crash. Zero
//    extra rounds: the paper's "no per-action acks" property is untouched,
//    and shards multiply aggregate green throughput.
//
//  - cross-shard path: the command's keys span >= 2 shards. The router (as
//    coordinator) stamps a deterministic cross-shard id, splits the ops by
//    owning shard, rides a marker write (`__xs/<client>/<n>`) inside each
//    sub-command, and submits every sub-command concurrently through the
//    involved groups' sessions. Each group orders and applies its slice in
//    its own green order (one end-to-end round total — the green reply);
//    the *commit barrier* is at the coordinator: the action commits, and
//    the client hears back, only once it is green in ALL involved groups.
//    The gap between the first and last green is the barrier wait — the
//    cross-shard tax the sharding bench quantifies.
//
// Atomicity model: sub-commands are unconditional, and each session retries
// through crashes, partitions and whole-group outages
// (retry_when_unavailable), so a cross-shard action is eventually applied at
// every involved shard exactly once, or — when rejected up front — at none.
// Cross-shard commands carrying user kCheck ops (a per-shard check cannot be
// evaluated atomically across independent green orders) are handed to the
// deployment's prepared-check transaction coordinator when one is wired
// (set_cross_check_handler; src/txn, DESIGN.md §13), which buffers each
// shard's updates behind a prepare marker and confirms or cancels them
// identically everywhere; without a coordinator they keep the legacy
// up-front rejection. Genuinely unroutable mixes (range administration or
// raw txn markers spanning shards) abort with a precise `unsupported_mix`
// error. Within one shard the effects are atomic and 1SR as in the paper; a
// reader consulting two shards between the first and last green may observe
// the action partially applied — unless it goes through the coordinator's
// barrier-stamped snapshot reads, which drain the barrier and pin a vector
// of per-shard green watermarks first.
//
// Rebalancing (DESIGN.md §9): the router holds the *shared* Directory that
// the Rebalancer mutates. A command that lands on a shard which has fenced
// the key's range aborts deterministically with `fenced` set; the router
// counts a fenced bounce, waits `fence_retry_delay`, re-consults the
// directory (the epoch bump may have happened meanwhile) and re-routes the
// command — for a cross-shard action, only the bounced slice is re-split
// and resubmitted into the same commit barrier. Exactly-once is preserved
// because a fenced abort provably had no effects (the session guard is
// only advanced by a commit), so the re-route is a fresh first attempt.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/client_session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/directory.h"
#include "util/flat_map.h"

namespace tordb::shard {

struct RouterOptions {
  core::SessionOptions session;  ///< per-(client, shard) session knobs
  /// Observability (disconnected/null by default — zero cost). The tracer
  /// emits kShardRoute / kShardFailover / kShardCross* events with
  /// node = kNoNode (the router is client-side, not a replica). The
  /// registry gets the cross-shard barrier-wait histogram.
  obs::Tracer tracer;
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Fenced-bounce budget per command (cross-shard: per action, summed over
  /// slices) and the pause before re-consulting the directory. The budget
  /// covers a move's fence->cutover window, including a source partition
  /// that stalls the transfer.
  int max_fence_bounces = 400;
  SimDuration fence_retry_delay = millis(50);
};

struct RouteReply {
  bool committed = false;
  bool fenced = false;           ///< aborted with the fence-bounce budget exhausted
  /// Aborted because the command's own kCheck precondition failed — the
  /// application-level abort (e.g. a TPC-C invalid item), distinct from
  /// rebalance interference (`fenced`) and exhausted budgets. Surfaced from
  /// SessionReply so workload drivers count real aborts separately from
  /// rebalance retries.
  bool check_aborted = false;
  /// Rejected up front: the op mix is genuinely unroutable across shards
  /// (range administration or raw txn markers are pinned to one group by
  /// construction). Applied at no shard.
  bool unsupported_mix = false;
  int shards_involved = 1;
  int attempts = 0;              ///< summed over sub-requests
  int fenced_bounces = 0;        ///< fenced re-routes this command consumed
  SimDuration barrier_wait = 0;  ///< first green -> last green (cross-shard)
};
using RouteReplyFn = std::function<void(const RouteReply&)>;

struct RouterStats {
  std::uint64_t routed_single = 0;
  std::uint64_t routed_cross = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t aborted_checks = 0;         ///< aborts whose cause was a failed kCheck
  std::uint64_t rejected_cross_checks = 0;  ///< cross-shard kCheck with no coordinator wired
  std::uint64_t rejected_unsupported = 0;   ///< genuinely unroutable op mix (unsupported_mix)
  std::uint64_t txn_handoffs = 0;           ///< cross-shard kCheck commands handed to the coordinator
  std::uint64_t failovers = 0;              ///< sub-requests needing > 1 attempt
  std::uint64_t cross_partial_aborts = 0;   ///< some shard aborted, others committed
  std::uint64_t fenced_bounces = 0;         ///< re-routes after a fenced abort
};

class Router {
 public:
  /// `replicas[s]` are the members of shard `s`, tried in fail-over order.
  /// The directory's shard count must match replicas.size(). The shared
  /// overload is the live form: a Rebalancer mutating the same Directory is
  /// observed by the very next routing decision.
  Router(Simulator& sim, std::shared_ptr<Directory> directory,
         std::vector<std::vector<core::ReplicaNode*>> replicas, RouterOptions options = {});
  Router(Simulator& sim, const Directory& directory,
         std::vector<std::vector<core::ReplicaNode*>> replicas, RouterOptions options = {});
  ~Router();

  /// Route an update command (see the path description above). Requests
  /// from one client execute in FIFO order per shard, each exactly once.
  void submit(std::int64_t client, db::Command update, RouteReplyFn reply = nullptr);

  /// The marker key a cross-shard action writes at every involved shard
  /// (the property tests read it back to assert all-or-nothing).
  static std::string cross_marker_key(std::int64_t client, std::int64_t cross_seq);

  const Directory& directory() const { return *directory_; }
  const std::shared_ptr<Directory>& directory_ptr() const { return directory_; }
  const RouterStats& stats() const { return stats_; }
  /// True when every session created so far has drained.
  bool idle() const;

  /// Highest green count over the shard's currently running replicas — the
  /// per-shard green watermark the commit barrier is tracked against.
  std::int64_t green_watermark(int shard) const;

  /// Handler for cross-shard commands carrying user kCheck preconditions:
  /// the deployment wires this to txn::TxnCoordinator::submit (DESIGN.md
  /// §13). Unset, such commands keep the legacy up-front rejection.
  using CrossCheckHandler = std::function<void(std::int64_t client, db::Command, RouteReplyFn)>;
  void set_cross_check_handler(CrossCheckHandler handler) {
    cross_check_handler_ = std::move(handler);
  }

  /// Snapshot-read gate (DESIGN.md §13): while held, NEW cross-shard
  /// submissions are deferred in FIFO order (single-shard traffic is
  /// unaffected — it can never straddle a barrier); release flushes them.
  /// Held by the coordinator while a barrier-stamped snapshot read drains
  /// the in-flight barriers and pins its watermark vector. Nests.
  void hold_cross();
  void release_cross();
  /// Cross-shard actions currently inside the commit barrier — what a
  /// snapshot read drains to zero before stamping its watermark vector.
  /// (Single-shard traffic, bounced or not, is irrelevant: it cannot
  /// straddle a barrier.)
  std::int64_t cross_in_flight() const {
    return static_cast<std::int64_t>(cross_inflight_.size());
  }

 private:
  struct CrossState {
    std::int64_t xid = 0;
    std::int64_t client = 0;
    std::string marker;
    int involved = 0;
    int outstanding = 0;
    int bounces = 0;  ///< fenced bounces consumed, summed over slices
    bool all_committed = true;
    bool any_committed = false;
    bool fenced_exhausted = false;
    bool check_aborted = false;
    int attempts = 0;
    SimTime first_green = -1;
    SimTime last_green = -1;
    RouteReplyFn reply;
  };

  /// (client, shard) packed into the flat-map key, built once per lookup
  /// from two integers instead of a pair compare per tree level. Shard
  /// counts are < 2^16 by construction (the directory validates its shard
  /// count against the replica groups).
  static std::uint64_t session_key(std::int64_t client, int shard) {
    return (static_cast<std::uint64_t>(client) << 16) |
           static_cast<std::uint64_t>(shard & 0xffff);
  }

  core::ClientSession& session(std::int64_t client, int shard);
  void route(std::int64_t client, db::Command update, RouteReplyFn reply, int bounces);
  void submit_cross_slice(std::int64_t token, int shard, db::Command user_slice);
  void rebounce_cross_slice(std::int64_t token, const db::Command& user_slice);
  void finish_cross(std::int64_t token);

  Simulator& sim_;
  std::shared_ptr<Directory> directory_;
  std::vector<std::vector<core::ReplicaNode*>> replicas_;
  RouterOptions options_;
  std::shared_ptr<bool> alive_;

  // Hot per-request state on flat open-addressing maps (util::FlatMap64):
  // one probe per lookup, no tree walks. Values are re-fetched after any
  // call that can insert (inserts may rehash).
  util::FlatMap64<std::unique_ptr<core::ClientSession>> sessions_;  ///< by session_key
  util::FlatMap64<std::int64_t> next_cross_seq_;                   ///< per client
  std::int64_t next_cross_token_ = 0;
  util::FlatMap64<CrossState> cross_inflight_;  ///< token -> state
  std::int64_t pending_bounces_ = 0;  ///< single-shard re-routes waiting out the delay
  CrossCheckHandler cross_check_handler_;
  /// Snapshot-read gate: depth of nested holds, plus the deferred
  /// cross-shard submissions flushed (FIFO) when the last hold releases.
  int cross_hold_ = 0;
  struct Deferred {
    std::int64_t client = 0;
    db::Command update;
    RouteReplyFn reply;
    int bounces = 0;
  };
  std::deque<Deferred> deferred_cross_;
  obs::Histogram* barrier_hist_ = nullptr;
  RouterStats stats_;
};

}  // namespace tordb::shard
