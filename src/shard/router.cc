#include "shard/router.h"

#include <map>
#include <stdexcept>
#include <utility>

namespace tordb::shard {

Router::Router(Simulator& sim, std::shared_ptr<Directory> directory,
               std::vector<std::vector<core::ReplicaNode*>> replicas, RouterOptions options)
    : sim_(sim),
      directory_(std::move(directory)),
      replicas_(std::move(replicas)),
      options_(std::move(options)),
      alive_(std::make_shared<bool>(true)) {
  if (!directory_) throw std::invalid_argument("router needs a directory");
  if (static_cast<int>(replicas_.size()) != directory_->shards()) {
    throw std::invalid_argument("replica groups must match the directory's shard count");
  }
  if (options_.metrics) {
    barrier_hist_ = &options_.metrics->histogram("shard.cross.barrier_wait_us");
  }
}

Router::Router(Simulator& sim, const Directory& directory,
               std::vector<std::vector<core::ReplicaNode*>> replicas, RouterOptions options)
    : Router(sim, std::make_shared<Directory>(directory), std::move(replicas),
             std::move(options)) {}

Router::~Router() { *alive_ = false; }

std::string Router::cross_marker_key(std::int64_t client, std::int64_t cross_seq) {
  return "__xs/" + std::to_string(client) + "/" + std::to_string(cross_seq);
}

core::ClientSession& Router::session(std::int64_t client, int shard) {
  auto& slot = sessions_[session_key(client, shard)];
  if (!slot) {
    // One engine-level session per (client, shard): the guard key is scoped
    // to the session's group, and sequence numbers stay dense per shard.
    // In a lane-partitioned simulation (DESIGN.md §15) this is the router's
    // cross-lane handoff point: the session lives on the router's (control)
    // lane and hops each submit to the target replica's lane itself.
    const std::int64_t session_id = client * directory_->shards() + shard;
    slot = std::make_unique<core::ClientSession>(sim_, replicas_[shard], session_id,
                                                 options_.session);
  }
  return *slot;
}

bool Router::idle() const {
  bool all_idle = true;
  sessions_.for_each([&](std::uint64_t, const std::unique_ptr<core::ClientSession>& s) {
    if (!s->idle()) all_idle = false;
  });
  return all_idle && cross_inflight_.empty() && pending_bounces_ == 0 &&
         deferred_cross_.empty();
}

void Router::hold_cross() { ++cross_hold_; }

void Router::release_cross() {
  if (--cross_hold_ > 0) return;
  // Flush in FIFO order. Each re-entry re-consults the directory (it may
  // have changed while the gate was held); a concurrent re-hold during the
  // flush re-defers the remainder into the fresh queue.
  std::deque<Deferred> q;
  q.swap(deferred_cross_);
  for (Deferred& d : q) route(d.client, std::move(d.update), std::move(d.reply), d.bounces);
}

std::int64_t Router::green_watermark(int shard) const {
  // Read-only engine access: safe from the control lane in lane mode (the
  // control phase runs exclusively, over worker state frozen at the window
  // end), so the watermark needs no handoff.
  std::int64_t best = 0;
  for (const core::ReplicaNode* node : replicas_.at(shard)) {
    if (node->running() && node->engine().green_count() > best) {
      best = node->engine().green_count();
    }
  }
  return best;
}

void Router::submit(std::int64_t client, db::Command update, RouteReplyFn reply) {
  route(client, std::move(update), std::move(reply), /*bounces=*/0);
}

void Router::route(std::int64_t client, db::Command update, RouteReplyFn reply, int bounces) {
  std::vector<int> shards = directory_->shards_of(update);
  if (shards.empty()) shards.push_back(0);  // pure no-op commands pin to shard 0

  if (shards.size() == 1) {
    const int shard = shards[0];
    if (bounces == 0) ++stats_.routed_single;
    options_.tracer.emit(obs::EventKind::kShardRoute, shard, client, /*xid=*/0);
    // Keep the command for a potential fenced re-route: a fenced abort had
    // no effects, so resubmitting it is a fresh first attempt.
    auto retained = std::make_shared<db::Command>(update);
    session(client, shard).submit(
        std::move(update),
        [this, alive = alive_, shard, client, bounces, retained,
         reply = std::move(reply)](const core::SessionReply& r) mutable {
          if (!*alive) return;
          if (r.attempts > 1) {
            ++stats_.failovers;
            options_.tracer.emit(obs::EventKind::kShardFailover, shard, client, r.attempts);
          }
          if (!r.committed && r.fenced && bounces < options_.max_fence_bounces) {
            ++stats_.fenced_bounces;
            ++pending_bounces_;
            sim_.after(options_.fence_retry_delay,
                       [this, alive, client, retained, bounces,
                        reply = std::move(reply)]() mutable {
                         if (!*alive) return;
                         route(client, std::move(*retained), std::move(reply), bounces + 1);
                         --pending_bounces_;
                       });
            return;
          }
          r.committed ? ++stats_.committed : ++stats_.aborted;
          if (!r.committed && r.check_aborted) ++stats_.aborted_checks;
          if (reply) {
            RouteReply out;
            out.committed = r.committed;
            out.fenced = !r.committed && r.fenced;
            out.check_aborted = !r.committed && r.check_aborted;
            out.shards_involved = 1;
            out.attempts = r.attempts;
            out.fenced_bounces = bounces;
            reply(out);
          }
        });
    return;
  }

  // Cross-shard path. Classify the op mix first: range administration and
  // raw txn markers are pinned to one group by construction and can never
  // span a barrier — a precise unsupported_mix rejection, applied at no
  // shard. User kCheck preconditions span groups only through the
  // prepared-check coordinator (DESIGN.md §13), which evaluates each check
  // at its owning shard and decides through durable markers; without a
  // wired coordinator they keep the legacy up-front rejection.
  bool has_check = false;
  for (const db::Op& op : update.ops) {
    switch (op.type) {
      case db::OpType::kCheck:
        has_check = true;
        break;
      case db::OpType::kFenceRange:
      case db::OpType::kInstallRange:
      case db::OpType::kUnfenceRange:
      case db::OpType::kTxnPrepare:
      case db::OpType::kTxnConfirm:
      case db::OpType::kTxnCancel: {
        ++stats_.rejected_unsupported;
        ++stats_.aborted;
        if (reply) {
          RouteReply out;
          out.committed = false;
          out.unsupported_mix = true;
          out.shards_involved = static_cast<int>(shards.size());
          reply(out);
        }
        return;
      }
      default:
        break;
    }
  }
  if (has_check) {
    if (cross_check_handler_) {
      ++stats_.txn_handoffs;
      cross_check_handler_(client, std::move(update), std::move(reply));
      return;
    }
    ++stats_.rejected_cross_checks;
    ++stats_.aborted;
    if (reply) {
      RouteReply out;
      out.committed = false;
      out.shards_involved = static_cast<int>(shards.size());
      reply(out);
    }
    return;
  }
  if (cross_hold_ > 0) {
    // A snapshot read is pinning its watermark vector: defer the submission
    // (FIFO) until the gate releases. The command is not in flight yet, so
    // the drain the reader waits for cannot deadlock on it.
    deferred_cross_.push_back(Deferred{client, std::move(update), std::move(reply), bounces});
    return;
  }

  ++stats_.routed_cross;
  const std::int64_t cross_seq = ++next_cross_seq_[static_cast<std::uint64_t>(client)];
  // Deterministic id: unique per (client, cross_seq), stable across runs.
  const std::int64_t xid = client * 1'000'000 + cross_seq;
  const std::int64_t token = ++next_cross_token_;
  CrossState& cs = cross_inflight_[static_cast<std::uint64_t>(token)];
  cs.xid = xid;
  cs.client = client;
  cs.marker = cross_marker_key(client, cross_seq);
  cs.involved = static_cast<int>(shards.size());
  cs.outstanding = cs.involved;
  cs.bounces = bounces;
  cs.reply = std::move(reply);
  options_.tracer.emit(obs::EventKind::kShardCrossSubmit, xid, client,
                       static_cast<std::int64_t>(shards.size()));

  // Split the ops by owning shard, preserving program order within each
  // slice; each slice rides the marker write so the action's presence at a
  // shard is observable state, not just a reply.
  for (const int shard : shards) {
    db::Command slice;
    for (const db::Op& op : update.ops) {
      if (directory_->shard_of_cached(op.key) == shard) slice.ops.push_back(op);
    }
    submit_cross_slice(token, shard, std::move(slice));
  }
}

void Router::submit_cross_slice(std::int64_t token, int shard, db::Command user_slice) {
  CrossState& cs = *cross_inflight_.find(static_cast<std::uint64_t>(token));
  db::Command sub = user_slice;
  sub.ops.push_back(db::Op{db::OpType::kPut, cs.marker, std::to_string(cs.xid), 0});
  options_.tracer.emit(obs::EventKind::kShardRoute, shard, cs.client, cs.xid);
  // Retained for a fenced re-route into the same commit barrier.
  auto retained = std::make_shared<db::Command>(std::move(user_slice));
  session(cs.client, shard)
      .submit(std::move(sub), [this, alive = alive_, token, shard,
                               retained](const core::SessionReply& r) {
        if (!*alive) return;
        CrossState& cs = *cross_inflight_.find(static_cast<std::uint64_t>(token));
        if (r.attempts > 1) {
          ++stats_.failovers;
          options_.tracer.emit(obs::EventKind::kShardFailover, shard, cs.client, r.attempts);
        }
        cs.attempts += r.attempts;
        if (!r.committed && r.fenced && cs.bounces < options_.max_fence_bounces) {
          ++cs.bounces;
          ++stats_.fenced_bounces;
          sim_.after(options_.fence_retry_delay, [this, alive, token, retained] {
            if (!*alive) return;
            rebounce_cross_slice(token, *retained);
          });
          return;  // the slice is still in flight: outstanding is unchanged
        }
        if (r.committed) {
          cs.any_committed = true;
          const SimTime now = sim_.now();
          if (cs.first_green < 0) cs.first_green = now;
          cs.last_green = now;
        } else {
          cs.all_committed = false;
          if (r.fenced) cs.fenced_exhausted = true;
          if (r.check_aborted) cs.check_aborted = true;
        }
        if (--cs.outstanding == 0) finish_cross(token);
      });
}

void Router::rebounce_cross_slice(std::int64_t token, const db::Command& user_slice) {
  CrossState& cs = *cross_inflight_.find(static_cast<std::uint64_t>(token));
  // Re-split by the *current* directory — the range may have moved, or even
  // split, since the slice was first routed. Every part re-enters the same
  // commit barrier.
  // An ordered map on purpose: parts are submitted in ascending shard
  // order, which the virtual-time goldens depend on.
  std::map<int, db::Command> parts;
  for (const db::Op& op : user_slice.ops) {
    parts[directory_->shard_of_cached(op.key)].ops.push_back(op);
  }
  cs.outstanding += static_cast<int>(parts.size()) - 1;
  for (auto& [shard, part] : parts) submit_cross_slice(token, shard, std::move(part));
}

void Router::finish_cross(std::int64_t token) {
  // The commit barrier: every involved group has reported its sub-action
  // green (or aborted). With unconditional sub-commands and sessions that
  // wait out whole-group outages, a mixed outcome means a sub-session
  // exhausted its attempt budget — surfaced as a distinct stat because it
  // breaks all-or-nothing and the property test must never observe it.
  CrossState cs = cross_inflight_.extract(static_cast<std::uint64_t>(token));
  const bool committed = cs.all_committed;
  if (cs.any_committed && !cs.all_committed) ++stats_.cross_partial_aborts;
  committed ? ++stats_.committed : ++stats_.aborted;
  if (!committed && cs.check_aborted) ++stats_.aborted_checks;

  RouteReply out;
  out.committed = committed;
  out.fenced = cs.fenced_exhausted;
  out.check_aborted = !committed && cs.check_aborted;
  out.shards_involved = cs.involved;
  out.attempts = cs.attempts;
  out.fenced_bounces = cs.bounces;
  if (committed) out.barrier_wait = cs.last_green - cs.first_green;
  options_.tracer.emit(obs::EventKind::kShardCrossCommit, cs.xid, committed ? 1 : 0,
                       out.barrier_wait);
  if (committed && barrier_hist_ != nullptr) {
    barrier_hist_->record(out.barrier_wait / 1000);  // ns -> us
  }
  if (cs.reply) cs.reply(out);
}

}  // namespace tordb::shard
