// Online shard rebalancing: fenced key-range moves plus range split/merge
// over the versioned Directory (DESIGN.md §9).
//
// A move of range [lo, hi) from its owner S to shard D is three steps, each
// riding the machinery that already exists:
//
//   1. FENCE    — a kFenceRange action is submitted through an exactly-once
//                 session to group S. Once green, every replica of S aborts
//                 further user updates to the range deterministically (the
//                 fence occupies one position in S's total order, so the
//                 range's content is frozen at exactly that green index).
//   2. SNAPSHOT — the rebalancer extracts the range's rows from any running
//                 S replica that has applied the fence (polling until one
//                 is reachable — crashes and partitions only delay this),
//                 then waits out a size-proportional simulated transfer.
//   3. INSTALL  — a kInstallRange action carrying the snapshot is submitted
//                 through a session to group D; it lands in *D's* green
//                 order, inserting the rows and clearing any fence there.
//                 On commit the directory's owner entry flips and the epoch
//                 bumps (kDirectoryEpoch) — the Router's next consult sees
//                 the new map, and commands bounced by S's fence re-route
//                 to D. Exactly-once client sessions are per (client,
//                 shard), so a bounced command is a fresh first attempt at
//                 D; nothing is double-applied.
//
// Failure matrix (see DESIGN.md §9 for the full argument): the fence and
// install are ordinary green actions, so partitions/crashes at either group
// delay but never corrupt a move; the move is idempotent before cutover
// (nothing references D's copy until the directory flips), and cutover is a
// single in-memory epoch bump at the rebalancer. A move that gives up after
// its fence committed (session budget exhausted against a dead group) rolls
// back with a kUnfenceRange action at S: the directory still routes the
// range to S, so lifting the fence restores writability there. Counted in
// stats().moves_failed, distinct from up-front rejections.
//
// Splits and merges are directory-only (both halves keep the owner; a merge
// requires one owner), so they are instant epoch bumps with no data motion.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/client_session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/directory.h"

namespace tordb::shard {

struct RebalancerOptions {
  core::SessionOptions session;        ///< fence/install submission knobs
  SimDuration poll_interval = millis(50);   ///< wait for a fenced replica
  SimDuration transfer_base = millis(5);    ///< per-move transfer latency floor
  SimDuration transfer_per_byte = 100;      ///< ns per snapshot byte (~10 MB/s)
  obs::Tracer tracer;                  ///< kDirectoryEpoch (node = kNoNode)
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

struct MoveReport {
  bool ok = false;
  std::string lo, hi;
  int from = -1;
  int to = -1;
  std::int64_t rows = 0;
  std::int64_t bytes = 0;
  SimDuration duration = 0;  ///< fence submit -> cutover
  std::int64_t epoch = 0;    ///< directory epoch after cutover
};
using MoveDoneFn = std::function<void(const MoveReport&)>;

struct RebalancerStats {
  std::uint64_t moves_started = 0;
  std::uint64_t moves_completed = 0;
  std::uint64_t moves_rejected = 0;  ///< bad range, busy range, hashed mode...
  std::uint64_t moves_failed = 0;    ///< gave up mid-protocol; source unfenced
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
  std::int64_t rows_moved = 0;
  std::int64_t bytes_moved = 0;
};

class Rebalancer {
 public:
  /// `directory` must be the same object the Router consults (the shared
  /// pointer IS the cutover mechanism); `replicas[s]` are shard s's members.
  Rebalancer(Simulator& sim, std::shared_ptr<Directory> directory,
             std::vector<std::vector<core::ReplicaNode*>> replicas,
             RebalancerOptions options = {});
  ~Rebalancer();

  Rebalancer(const Rebalancer&) = delete;
  Rebalancer& operator=(const Rebalancer&) = delete;

  /// Split the range containing `key` at `key` (directory-only, instant).
  bool split_at(const std::string& key);

  /// Merge away the split point `key` (directory-only; one owner required).
  bool merge_at(const std::string& key);

  /// Move the range exactly bounded by [lo, hi) to shard `to` via
  /// fence -> snapshot -> install -> cutover. `done` fires with the report
  /// (ok = false for an immediate rejection: unknown range, range already
  /// moving, to == current owner, hashed directory).
  bool move_range(const std::string& lo, const std::string& hi, int to,
                  MoveDoneFn done = nullptr);

  /// True when no move is in flight.
  bool idle() const { return busy_.empty(); }
  const RebalancerStats& stats() const { return stats_; }

 private:
  struct Move {
    std::string lo, hi;
    int from = -1;
    int to = -1;
    SimTime started = 0;
    bool fence_committed = false;  ///< a failed move must unfence the source
    MoveDoneFn done;
  };

  core::ClientSession& session(int shard);
  void await_fenced_snapshot(std::shared_ptr<Move> mv);
  void install(std::shared_ptr<Move> mv, db::RangeSnapshot snap);
  void cutover(std::shared_ptr<Move> mv, std::int64_t rows, std::int64_t bytes);
  void fail(std::shared_ptr<Move> mv);
  void finish_failed(std::shared_ptr<Move> mv);
  void bump_epoch_trace(std::int64_t owner, std::uint64_t range);

  Simulator& sim_;
  std::shared_ptr<Directory> directory_;
  std::vector<std::vector<core::ReplicaNode*>> replicas_;
  RebalancerOptions options_;
  std::shared_ptr<bool> alive_;

  std::map<int, std::unique_ptr<core::ClientSession>> sessions_;  ///< per shard
  std::set<std::pair<std::string, std::string>> busy_;  ///< ranges mid-move
  RebalancerStats stats_;
  obs::Counter* metric_moves_ = nullptr;
  obs::Counter* metric_moves_failed_ = nullptr;
  obs::Counter* metric_rows_ = nullptr;
  obs::Counter* metric_bytes_ = nullptr;
  obs::Histogram* move_ms_hist_ = nullptr;
};

}  // namespace tordb::shard
