#include "shard/directory.h"

#include <algorithm>
#include <stdexcept>

namespace tordb::shard {

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Directory Directory::hashed(int shards) {
  if (shards < 1) throw std::invalid_argument("shard count must be >= 1");
  Directory d;
  d.shards_ = shards;
  return d;
}

Directory Directory::ranged(std::vector<std::string> split_points) {
  if (!std::is_sorted(split_points.begin(), split_points.end())) {
    throw std::invalid_argument("range split points must be ascending");
  }
  Directory d;
  d.shards_ = static_cast<int>(split_points.size()) + 1;
  d.ranged_ = true;
  d.splits_ = std::move(split_points);
  d.owners_.resize(d.splits_.size() + 1);
  for (std::size_t i = 0; i < d.owners_.size(); ++i) d.owners_[i] = static_cast<int>(i);
  return d;
}

int Directory::shard_of(std::string_view key) const {
  if (ranged_) {
    // range i holds keys in [splits_[i-1], splits_[i]).
    const auto it = std::upper_bound(splits_.begin(), splits_.end(), key);
    return owners_[static_cast<std::size_t>(it - splits_.begin())];
  }
  return static_cast<int>(fnv1a(key) % static_cast<std::uint64_t>(shards_));
}

int Directory::shard_of_cached(std::string_view key) const {
  if (cache_epoch_ != epoch_) {
    // One split/merge/move invalidates every entry; entries refill lazily
    // on their next lookup, so the cost is one pass over touched keys.
    std::fill(cache_shard_.begin(), cache_shard_.end(), -1);
    cache_epoch_ = epoch_;
  }
  const util::KeyId id = cache_keys_.intern(key);
  if (id >= cache_shard_.size()) cache_shard_.resize(cache_keys_.size(), -1);
  std::int32_t& slot = cache_shard_[id];
  if (slot >= 0) {
    ++cache_stats_.hits;
    return slot;
  }
  ++cache_stats_.misses;
  slot = shard_of(key);
  return slot;
}

std::vector<int> Directory::shards_of(const db::Command& cmd) const {
  std::vector<int> out;
  for (const db::Op& op : cmd.ops) {
    const int s = shard_of_cached(op.key);
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Directory::split_at(const std::string& key) {
  if (!ranged_ || key.empty()) return false;
  const auto it = std::lower_bound(splits_.begin(), splits_.end(), key);
  if (it != splits_.end() && *it == key) return false;  // already a bound
  const std::size_t range = static_cast<std::size_t>(it - splits_.begin());
  splits_.insert(it, key);
  owners_.insert(owners_.begin() + static_cast<std::ptrdiff_t>(range) + 1, owners_[range]);
  ++epoch_;
  return true;
}

bool Directory::merge_at(const std::string& key) {
  if (!ranged_) return false;
  const auto it = std::find(splits_.begin(), splits_.end(), key);
  if (it == splits_.end()) return false;
  const std::size_t left = static_cast<std::size_t>(it - splits_.begin());
  if (owners_[left] != owners_[left + 1]) return false;  // a merge never moves data
  splits_.erase(it);
  owners_.erase(owners_.begin() + static_cast<std::ptrdiff_t>(left) + 1);
  ++epoch_;
  return true;
}

bool Directory::set_range_owner(const std::string& lo, const std::string& hi, int shard) {
  const int i = range_index(lo, hi);
  if (i < 0 || shard < 0 || shard >= shards_) return false;
  if (owners_[static_cast<std::size_t>(i)] == shard) return false;
  owners_[static_cast<std::size_t>(i)] = shard;
  ++epoch_;
  return true;
}

std::pair<std::string, std::string> Directory::range_bounds(int i) const {
  const std::size_t idx = static_cast<std::size_t>(i);
  std::string lo = idx == 0 ? "" : splits_[idx - 1];
  std::string hi = idx == splits_.size() ? "" : splits_[idx];
  return {std::move(lo), std::move(hi)};
}

int Directory::range_index(const std::string& lo, const std::string& hi) const {
  if (!ranged_) return -1;
  for (std::size_t i = 0; i <= splits_.size(); ++i) {
    if ((i == 0 ? lo.empty() : splits_[i - 1] == lo) &&
        (i == splits_.size() ? hi.empty() : splits_[i] == hi)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace tordb::shard
