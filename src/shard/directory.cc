#include "shard/directory.h"

#include <algorithm>
#include <stdexcept>

namespace tordb::shard {

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Directory Directory::hashed(int shards) {
  if (shards < 1) throw std::invalid_argument("shard count must be >= 1");
  Directory d;
  d.shards_ = shards;
  return d;
}

Directory Directory::ranged(std::vector<std::string> split_points) {
  if (!std::is_sorted(split_points.begin(), split_points.end())) {
    throw std::invalid_argument("range split points must be ascending");
  }
  Directory d;
  d.shards_ = static_cast<int>(split_points.size()) + 1;
  d.splits_ = std::move(split_points);
  return d;
}

int Directory::shard_of(std::string_view key) const {
  if (!splits_.empty()) {
    // shard i holds keys in [splits_[i-1], splits_[i]).
    const auto it = std::upper_bound(splits_.begin(), splits_.end(), key);
    return static_cast<int>(it - splits_.begin());
  }
  return static_cast<int>(fnv1a(key) % static_cast<std::uint64_t>(shards_));
}

std::vector<int> Directory::shards_of(const db::Command& cmd) const {
  std::vector<int> out;
  for (const db::Op& op : cmd.ops) {
    const int s = shard_of(op.key);
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tordb::shard
