// Shard directory: the authoritative map from the key space to replication
// groups (partial replication, Sutra & Shapiro / PAPERS.md).
//
// The paper replicates the whole database in one group, so aggregate update
// throughput is capped by one total order. The shard tier splits the key
// space into disjoint shards, each replicated by its own engine group with
// its own green order; the directory is the pure, deterministic mapping both
// the router and every test agree on.
//
// Two mappings are supported:
//   hashed(n)  — FNV-1a over the key, mod n. Uniform, stateless, what the
//                benches use.
//   ranged(s)  — lexicographic split points, yugabyte-tablet style:
//                shard i holds [s[i-1], s[i]), the first shard everything
//                below s[0], the last everything at or above s.back().
//
// Keys never move while the deployment runs (range rebalancing / shard
// moves are a ROADMAP item).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "db/database.h"

namespace tordb::shard {

class Directory {
 public:
  /// Hash sharding over `shards` groups (shards >= 1).
  static Directory hashed(int shards);

  /// Range sharding with ascending `split_points` (shards = splits + 1).
  static Directory ranged(std::vector<std::string> split_points);

  int shards() const { return shards_; }
  bool is_ranged() const { return !splits_.empty(); }

  /// The shard owning `key`. Deterministic and total.
  int shard_of(std::string_view key) const;

  /// Sorted, de-duplicated shards touched by the command's ops. Empty for
  /// a command with no ops (the router pins those to shard 0).
  std::vector<int> shards_of(const db::Command& cmd) const;

 private:
  Directory() = default;

  int shards_ = 1;
  std::vector<std::string> splits_;  ///< empty = hash mode
};

}  // namespace tordb::shard
