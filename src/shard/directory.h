// Shard directory: the authoritative map from the key space to replication
// groups (partial replication, Sutra & Shapiro / PAPERS.md).
//
// The paper replicates the whole database in one group, so aggregate update
// throughput is capped by one total order. The shard tier splits the key
// space into disjoint shards, each replicated by its own engine group with
// its own green order; the directory is the pure, deterministic mapping both
// the router and every test agree on.
//
// Two mappings are supported:
//   hashed(n)  — FNV-1a over the key, mod n. Uniform, stateless, what the
//                benches use. Immutable: hashed keys never move.
//   ranged(s)  — lexicographic split points, yugabyte-tablet style: range i
//                is [s[i-1], s[i]) with the first range everything below
//                s[0] and the last everything at or above s.back(). Each
//                range carries an *owner* shard (initially range i -> shard
//                i), and the map is versioned: split_at / merge_at refine
//                the ranges, set_range_owner moves one (the rebalancer's
//                cutover step, DESIGN.md §9), and every mutation bumps
//                `epoch`. The Router re-consults the shared directory when
//                a fenced abort bounces a command, so an epoch bump
//                retargets in-flight traffic without restarting anything.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "db/database.h"
#include "util/key_interner.h"

namespace tordb::shard {

class Directory {
 public:
  /// Hash sharding over `shards` groups (shards >= 1).
  static Directory hashed(int shards);

  /// Range sharding with ascending `split_points` (shards = splits + 1,
  /// range i owned by shard i).
  static Directory ranged(std::vector<std::string> split_points);

  int shards() const { return shards_; }
  bool is_ranged() const { return ranged_; }

  /// Bumped by every successful split/merge/ownership mutation. Starts 0.
  std::int64_t epoch() const { return epoch_; }

  /// The shard owning `key`. Deterministic and total. This is the pure
  /// mapping (hash or range walk); the router's per-op lookups go through
  /// shard_of_cached instead.
  int shard_of(std::string_view key) const;

  /// shard_of through the epoch-validated route cache: the key is interned
  /// once, after which a repeat lookup is one array read instead of a
  /// string range walk (ranged mode) or a full key hash (hashed mode). Any
  /// split/merge/ownership mutation bumps `epoch`, which invalidates every
  /// cached entry on the next lookup — in-flight traffic retargets without
  /// restarting anything, exactly as before.
  int shard_of_cached(std::string_view key) const;

  /// Sorted, de-duplicated shards touched by the command's ops (through the
  /// route cache). Empty for a command with no ops (the router pins those
  /// to shard 0).
  std::vector<int> shards_of(const db::Command& cmd) const;

  struct RouteCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;  ///< first-touch interns and post-epoch refills
  };
  const RouteCacheStats& route_cache_stats() const { return cache_stats_; }

  // --- online rebalancing (ranged mode only; DESIGN.md §9) -------------------

  /// Split the range containing `key` at `key`: both halves keep the owner.
  /// False (no epoch bump) in hashed mode or when `key` is already a bound.
  bool split_at(const std::string& key);

  /// Remove the split point `key`, merging the two adjacent ranges. Both
  /// sides must have the same owner (a merge never moves data). False in
  /// hashed mode, when `key` is not a split point, or across owners.
  bool merge_at(const std::string& key);

  /// Reassign the range exactly bounded by [lo, hi) to `shard` — the
  /// rebalancer's cutover. False unless [lo, hi) is a current range and
  /// `shard` is valid.
  bool set_range_owner(const std::string& lo, const std::string& hi, int shard);

  /// Number of ranges (1 for a fresh un-split map; 0 in hashed mode).
  int range_count() const { return ranged_ ? static_cast<int>(owners_.size()) : 0; }

  /// Bounds of range `i` as [lo, hi); "" means the open end on either side.
  std::pair<std::string, std::string> range_bounds(int i) const;

  /// Owner shard of range `i`.
  int range_owner(int i) const { return owners_[static_cast<std::size_t>(i)]; }

  /// Index of the range exactly bounded by [lo, hi), or -1.
  int range_index(const std::string& lo, const std::string& hi) const;

 private:
  Directory() = default;

  int shards_ = 1;
  bool ranged_ = false;
  std::int64_t epoch_ = 0;
  std::vector<std::string> splits_;  ///< ascending; ranges = splits + 1
  std::vector<int> owners_;          ///< owners_[i] = shard owning range i

  // Route cache: interned-key -> owning shard, valid for one epoch. All
  // mutable because routing is logically const; the simulation is
  // single-threaded so no synchronization is needed.
  mutable util::KeyInterner cache_keys_;
  mutable std::vector<std::int32_t> cache_shard_;  ///< by KeyId; -1 = unfilled
  mutable std::int64_t cache_epoch_ = 0;
  mutable RouteCacheStats cache_stats_;
};

}  // namespace tordb::shard
