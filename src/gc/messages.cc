#include "gc/messages.h"

namespace tordb::gc {

namespace {

void write_i64_vec(BufWriter& w, const std::vector<std::int64_t>& v) {
  w.vec(v, [](BufWriter& w2, std::int64_t x) { w2.i64(x); });
}

std::vector<std::int64_t> read_i64_vec(BufReader& r) {
  return r.vec<std::int64_t>([](BufReader& r2) { return r2.i64(); });
}

void write_token(BufWriter& w, const GatherToken& t) {
  w.i32(t.coordinator);
  w.i64(t.seq);
}

GatherToken read_token(BufReader& r) {
  GatherToken t;
  t.coordinator = r.i32();
  t.seq = r.i64();
  return t;
}

void write_ordered_body(BufWriter& w, const OrderedMsg& m) {
  w.config_id(m.config);
  w.i64(m.seq);
  w.i32(m.origin);
  w.i64(m.origin_local_seq);
  w.u8(static_cast<std::uint8_t>(m.service));
  w.bytes(m.payload);
}

OrderedMsg read_ordered_body(BufReader& r) {
  OrderedMsg m;
  m.config = r.config_id();
  m.seq = r.i64();
  m.origin = r.i32();
  m.origin_local_seq = r.i64();
  m.service = static_cast<Service>(r.u8());
  m.payload = r.bytes();
  return m;
}

void write_plan_entry(BufWriter& w, const PlanEntry& e) {
  w.config_id(e.old_config);
  w.node_ids(e.old_members);
  w.node_ids(e.participants);
  write_i64_vec(w, e.participant_contig);
  w.i64(e.safe_line);
  w.i64(e.target_seq);
  w.i32(e.retransmitter);
}

PlanEntry read_plan_entry(BufReader& r) {
  PlanEntry e;
  e.old_config = r.config_id();
  e.old_members = r.node_ids();
  e.participants = r.node_ids();
  e.participant_contig = read_i64_vec(r);
  e.safe_line = r.i64();
  e.target_seq = r.i64();
  e.retransmitter = r.i32();
  return e;
}

}  // namespace

Bytes encode_message(MsgType type, const std::function<void(BufWriter&)>& body) {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  body(w);
  return w.take();
}

MsgType peek_type(const Bytes& wire) {
  if (wire.empty()) throw SerdeError("empty gc message");
  return static_cast<MsgType>(wire[0]);
}

Bytes encode(const DataMsg& m) {
  return encode_message(MsgType::kData, [&](BufWriter& w) {
    w.config_id(m.config);
    w.i32(m.origin);
    w.i64(m.local_seq);
    w.u8(static_cast<std::uint8_t>(m.service));
    w.bytes(m.payload);
  });
}

DataMsg decode_data(BufReader& r) {
  DataMsg m;
  m.config = r.config_id();
  m.origin = r.i32();
  m.local_seq = r.i64();
  m.service = static_cast<Service>(r.u8());
  m.payload = r.bytes();
  return m;
}

Bytes encode(const OrderedMsg& m) {
  return encode_message(MsgType::kOrdered, [&](BufWriter& w) { write_ordered_body(w, m); });
}

OrderedMsg decode_ordered(BufReader& r) { return read_ordered_body(r); }

Bytes encode(const AckMsg& m) {
  return encode_message(MsgType::kAck, [&](BufWriter& w) {
    w.config_id(m.config);
    w.i64(m.recv_contig);
  });
}

AckMsg decode_ack(BufReader& r) {
  AckMsg m;
  m.config = r.config_id();
  m.recv_contig = r.i64();
  return m;
}

Bytes encode(const StableMsg& m) {
  return encode_message(MsgType::kStable, [&](BufWriter& w) {
    w.config_id(m.config);
    write_i64_vec(w, m.member_contig);
  });
}

StableMsg decode_stable(BufReader& r) {
  StableMsg m;
  m.config = r.config_id();
  m.member_contig = read_i64_vec(r);
  return m;
}

Bytes encode(const InquireMsg& m) {
  return encode_message(MsgType::kInquire, [&](BufWriter& w) {
    write_token(w, m.token);
    w.node_ids(m.proposed);
  });
}

InquireMsg decode_inquire(BufReader& r) {
  InquireMsg m;
  m.token = read_token(r);
  m.proposed = r.node_ids();
  return m;
}

Bytes encode(const JoinInfoMsg& m) {
  return encode_message(MsgType::kJoinInfo, [&](BufWriter& w) {
    write_token(w, m.token);
    w.config_id(m.old_config);
    w.node_ids(m.old_members);
    w.i64(m.recv_contig);
    w.i64(m.delivered_upto);
    write_i64_vec(w, m.known_contig);
    w.i64(m.max_config_counter);
  });
}

JoinInfoMsg decode_join_info(BufReader& r) {
  JoinInfoMsg m;
  m.token = read_token(r);
  m.old_config = r.config_id();
  m.old_members = r.node_ids();
  m.recv_contig = r.i64();
  m.delivered_upto = r.i64();
  m.known_contig = read_i64_vec(r);
  m.max_config_counter = r.i64();
  return m;
}

Bytes encode(const PlanMsg& m) {
  return encode_message(MsgType::kPlan, [&](BufWriter& w) {
    write_token(w, m.token);
    w.config_id(m.new_config);
    w.node_ids(m.new_members);
    w.vec(m.entries, [](BufWriter& w2, const PlanEntry& e) { write_plan_entry(w2, e); });
  });
}

PlanMsg decode_plan(BufReader& r) {
  PlanMsg m;
  m.token = read_token(r);
  m.new_config = r.config_id();
  m.new_members = r.node_ids();
  m.entries = r.vec<PlanEntry>([](BufReader& r2) { return read_plan_entry(r2); });
  return m;
}

Bytes encode(const RetransMsg& m) {
  return encode_message(MsgType::kRetrans, [&](BufWriter& w) {
    write_token(w, m.token);
    write_ordered_body(w, m.message);
  });
}

RetransMsg decode_retrans(BufReader& r) {
  RetransMsg m;
  m.token = read_token(r);
  m.message = read_ordered_body(r);
  return m;
}

Bytes encode(const PlanAckMsg& m) {
  return encode_message(MsgType::kPlanAck, [&](BufWriter& w) { write_token(w, m.token); });
}

PlanAckMsg decode_plan_ack(BufReader& r) {
  PlanAckMsg m;
  m.token = read_token(r);
  return m;
}

Bytes encode(const InstallMsg& m) {
  return encode_message(MsgType::kInstall, [&](BufWriter& w) { write_token(w, m.token); });
}

InstallMsg decode_install(BufReader& r) {
  InstallMsg m;
  m.token = read_token(r);
  return m;
}

}  // namespace tordb::gc
