#include "gc/group_communication.h"

#include <algorithm>
#include <cassert>

#include "util/log.h"

namespace tordb::gc {

namespace {
bool contains(const std::vector<NodeId>& v, NodeId n) {
  return std::find(v.begin(), v.end(), n) != v.end();
}
}  // namespace

bool Configuration::contains(NodeId n) const { return tordb::gc::contains(members, n); }

std::string Configuration::to_string() const {
  std::string s = (transitional ? "trans" : "reg") + std::string("{") + tordb::to_string(id) + " [";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(members[i]);
  }
  return s + "]}";
}

GroupCommunication::GroupCommunication(Network& net, NodeId id, Listener listener,
                                       std::int64_t initial_config_counter, GcParams params)
    : net_(net),
      sim_(net.sim()),
      id_(id),
      listener_(std::move(listener)),
      params_(params),
      alive_(std::make_shared<bool>(true)),
      counter_floor_(initial_config_counter) {
  config_.id = ConfigId{initial_config_counter, id_};
  config_.members = {id_};
  known_contig_.emplace_back(id_, 0);

  // The shared handler hands over the refcounted wire buffer, letting the
  // delivery buffer retain ORDERED payloads without a per-member deep copy.
  net_.set_shared_packet_handler(
      id_, [this](NodeId from, const std::shared_ptr<const Bytes>& wire) {
        on_packet(from, wire);
      });
  // Deliver the initial singleton configuration before anything else runs.
  schedule(0, [this] {
    ++stats_.regular_configs;
    emit_config(config_);
    if (listener_.on_regular_config) listener_.on_regular_config(config_);
  });
  net_.set_reachability_handler(
      id_, [this](const std::vector<NodeId>& reachable) { on_reachability(reachable); });
}

GroupCommunication::~GroupCommunication() {
  *alive_ = false;
  net_.clear_packet_handler(id_, Channel::kGc);
  net_.clear_reachability_handler(id_);
}

void GroupCommunication::send_to(NodeId to, Bytes wire) {
  net_.send(id_, to, std::move(wire));
}

void GroupCommunication::send_all(const std::vector<NodeId>& to, Bytes wire) {
  net_.multicast(id_, to, std::move(wire));
}

void GroupCommunication::multicast(Bytes payload, Service service) {
  outbox_.push_back(OutEntry{++next_local_seq_, service, std::move(payload)});
  if (state_ == GcState::kOperational) send_data(outbox_.back());
}

void GroupCommunication::send_data(const OutEntry& entry) {
  // Frame the DATA wire directly from the outbox entry — byte-identical to
  // encode(DataMsg{...}) without staging the payload in a message struct.
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kData));
  w.config_id(config_.id);
  w.i32(id_);
  w.i64(entry.local_seq);
  w.u8(static_cast<std::uint8_t>(entry.service));
  w.bytes(entry.payload);
  send_to(config_.members.front(), w.take());
}

void GroupCommunication::on_packet(NodeId from, const std::shared_ptr<const Bytes>& wire) {
  BufReader r(*wire);
  const auto type = static_cast<MsgType>(r.u8());
  switch (type) {
    case MsgType::kData: handle_data(from, r); break;
    case MsgType::kOrdered: handle_ordered(r, wire); break;
    case MsgType::kAck: handle_ack(from, decode_ack(r)); break;
    case MsgType::kStable: break;  // legacy: stability rides on ACKs now
    case MsgType::kInquire: handle_inquire(from, decode_inquire(r)); break;
    case MsgType::kJoinInfo: handle_join_info(from, decode_join_info(r)); break;
    case MsgType::kPlan: handle_plan(decode_plan(r)); break;
    case MsgType::kRetrans: handle_retrans(decode_retrans(r)); break;
    case MsgType::kPlanAck: handle_plan_ack(from, decode_plan_ack(r)); break;
    case MsgType::kInstall: handle_install(decode_install(r)); break;
  }
}

// --------------------------------------------------------------------------
// Data path
// --------------------------------------------------------------------------

void GroupCommunication::handle_data(NodeId from, BufReader& r) {
  (void)from;
  // Decode the DATA header in place and, when sequencing, re-frame the
  // payload bytes straight from the incoming wire into the ORDERED wire
  // (same layout as encode(OrderedMsg{...})) — the payload is never
  // materialized as a standalone buffer on this path.
  const ConfigId config = r.config_id();
  const NodeId origin = r.i32();
  const std::int64_t local_seq = r.i64();
  const auto service = static_cast<Service>(r.u8());
  if (state_ != GcState::kOperational || config != config_.id) return;  // sender resends
  if (!is_sequencer()) return;
  const auto [payload, payload_len] = r.bytes_view();
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kOrdered));
  w.config_id(config_.id);
  w.i64(++global_seq_);
  w.i32(origin);
  w.i64(local_seq);
  w.u8(static_cast<std::uint8_t>(service));
  w.bytes_view(payload, payload_len);
  ++stats_.messages_ordered;
  send_all(config_.members, w.take());
}

void GroupCommunication::handle_ordered(BufReader& r, const std::shared_ptr<const Bytes>& wire) {
  // Decode the ORDERED header in place (same layout as decode_ordered) and
  // buffer the payload as a slice of the shared wire — every recipient of
  // the multicast holds the same refcounted buffer, zero deep copies.
  const ConfigId config = r.config_id();
  const std::int64_t seq = r.i64();
  const NodeId origin = r.i32();
  const std::int64_t origin_local_seq = r.i64();
  const auto service = static_cast<Service>(r.u8());
  if (state_ != GcState::kOperational || config != config_.id) return;
  const auto [payload, payload_len] = r.bytes_view();
  const auto off = static_cast<std::uint32_t>(payload - wire->data());
  store_buffered(seq, BufferedMsg{origin, origin_local_seq, service, wire, off,
                                  static_cast<std::uint32_t>(payload_len)});
}

GroupCommunication::BufferedMsg* GroupCommunication::buffered(std::int64_t seq) {
  if (buffer_.empty() || seq < buffer_base_ ||
      seq >= buffer_base_ + static_cast<std::int64_t>(buffer_.size())) {
    return nullptr;
  }
  BufferedMsg& m = buffer_[static_cast<std::size_t>(seq - buffer_base_)];
  return m.origin == kNoNode ? nullptr : &m;
}

void GroupCommunication::buffer_put(std::int64_t seq, BufferedMsg m) {
  if (buffer_.empty()) {
    buffer_base_ = seq;
    buffer_.push_back(std::move(m));
    return;
  }
  while (seq < buffer_base_) {
    buffer_.push_front(BufferedMsg{});
    --buffer_base_;
  }
  while (seq >= buffer_base_ + static_cast<std::int64_t>(buffer_.size())) {
    buffer_.emplace_back();
  }
  buffer_[static_cast<std::size_t>(seq - buffer_base_)] = std::move(m);
}

void GroupCommunication::store_ordered(OrderedMsg&& msg) {
  // Retransmission path: the payload arrives as an owned Bytes; wrap it so
  // it fits the shared-buffer slot format (offset 0, full length).
  auto buf = std::make_shared<const Bytes>(std::move(msg.payload));
  const auto len = static_cast<std::uint32_t>(buf->size());
  store_buffered(msg.seq, BufferedMsg{msg.origin, msg.origin_local_seq, msg.service,
                                      std::move(buf), 0, len});
}

void GroupCommunication::store_buffered(std::int64_t seq, BufferedMsg&& m) {
  if (seq <= delivered_upto_ || buffered(seq)) return;
  if (seq <= recv_contig_) {
    // Already pruned as stable; duplicate retransmission.
    return;
  }
  buffer_put(seq, std::move(m));
  bool advanced = false;
  while (buffered(recv_contig_ + 1)) {
    ++recv_contig_;
    advanced = true;
  }
  if (advanced) after_contig_advance();
}

std::int64_t* GroupCommunication::known_slot(NodeId m) {
  auto it = std::lower_bound(
      known_contig_.begin(), known_contig_.end(), m,
      [](const std::pair<NodeId, std::int64_t>& p, NodeId n) { return p.first < n; });
  return (it != known_contig_.end() && it->first == m) ? &it->second : nullptr;
}

std::int64_t GroupCommunication::safe_line() const {
  if (!safe_line_dirty_) return safe_line_cache_;
  // known_contig_ holds exactly the configuration's members (install
  // rebuilds it), so scanning it is the same min the members loop computed.
  std::int64_t line = recv_contig_;
  for (const auto& [m, v] : known_contig_) {
    if (m != id_) line = std::min(line, v);
  }
  safe_line_cache_ = line;
  safe_line_dirty_ = false;
  return line;
}

void GroupCommunication::after_contig_advance() {
  if (std::int64_t* self = known_slot(id_)) *self = recv_contig_;
  safe_line_dirty_ = true;  // our own contribution to the min advanced
  if (config_.members.size() > 1) schedule_ack();
  try_deliver();
}

void GroupCommunication::try_deliver() {
  if (state_ != GcState::kOperational) return;
  const std::int64_t safe = safe_line();
  while (true) {
    const std::int64_t next = delivered_upto_ + 1;
    BufferedMsg* m = buffered(next);
    if (m == nullptr || next > recv_contig_) break;
    if (m->service == Service::kSafe && next > safe) break;
    deliver_one(next, m->service == Service::kSafe ? DeliveryKind::kSafeInRegular
                                                   : DeliveryKind::kAgreed);
  }
  // Prune messages that are both delivered here and received by everyone:
  // no member can ever need them retransmitted.
  const std::int64_t prune = std::min(safe, delivered_upto_);
  while (!buffer_.empty() && buffer_base_ <= prune) {
    buffer_.pop_front();
    ++buffer_base_;
  }
}

void GroupCommunication::deliver_one(std::int64_t seq, DeliveryKind kind) {
  BufferedMsg* slot = buffered(seq);
  assert(slot != nullptr);
  BufferedMsg& m = *slot;
  delivered_upto_ = seq;
  if (m.origin == id_) {
    while (!outbox_.empty() && outbox_.front().local_seq <= m.origin_local_seq) {
      outbox_.pop_front();
    }
  }
  ++stats_.deliveries;
  if (kind == DeliveryKind::kSafeInRegular) ++stats_.safe_deliveries;
  if (kind == DeliveryKind::kTransitional) ++stats_.transitional_deliveries;
  if (params_.tracer && kind == DeliveryKind::kSafeInRegular) {
    // Safe delivery is the point the paper's trichotomy hinges on: every
    // member of the configuration delivers the same payload at (config, seq).
    params_.tracer.emit(
        obs::EventKind::kSafeDeliver, config_.id.counter,
        static_cast<std::int64_t>(config_.id.coordinator), seq,
        static_cast<std::int64_t>(obs::fingerprint(m.payload_data(), m.payload_size())));
  }
  if (listener_.on_deliver) {
    Delivery d{m.origin, config_.id, seq, kind,
               std::span<const std::uint8_t>(m.payload_data(), m.payload_size())};
    listener_.on_deliver(d);
  }
}

void GroupCommunication::schedule_ack() {
  if (ack_scheduled_ || state_ != GcState::kOperational) return;
  ack_scheduled_ = true;
  const SimTime fire =
      std::max(last_ack_sent_ + params_.ack_min_interval, sim_.now() + params_.ack_coalesce);
  const ConfigId cfg = config_.id;
  schedule(fire - sim_.now(), [this, cfg] {
    ack_scheduled_ = false;
    if (state_ != GcState::kOperational || !(config_.id == cfg)) return;
    if (recv_contig_ == last_acked_value_) return;
    last_ack_sent_ = sim_.now();
    last_acked_value_ = recv_contig_;
    // Acknowledgements go to every member directly (one hardware
    // multicast), so safe delivery costs three one-way hops (DATA, ORDERED,
    // ACK) rather than four — the difference matters on wide-area links.
    Bytes wire = encode(AckMsg{config_.id, recv_contig_});
    std::vector<NodeId> others;
    for (NodeId m : config_.members) {
      if (m != id_) others.push_back(m);
    }
    send_all(others, std::move(wire));
  });
}

void GroupCommunication::handle_ack(NodeId from, const AckMsg& msg) {
  if (state_ != GcState::kOperational || msg.config != config_.id) return;
  std::int64_t* slot = known_slot(from);
  if (slot == nullptr) {
    // Config-id match implies membership, but stay defensive: track the
    // sender exactly as the map's operator[] used to.
    known_contig_.insert(std::upper_bound(known_contig_.begin(), known_contig_.end(),
                                          std::pair<NodeId, std::int64_t>{from, 0}),
                         {from, 0});
    slot = known_slot(from);
  }
  std::int64_t& known = *slot;
  if (msg.recv_contig <= known) return;
  // The min over members can only move if the advancing member was at it.
  if (known <= safe_line_cache_) safe_line_dirty_ = true;
  known = msg.recv_contig;
  try_deliver();
}

// --------------------------------------------------------------------------
// Membership (flush) protocol
// --------------------------------------------------------------------------

void GroupCommunication::on_reachability(const std::vector<NodeId>& reachable) {
  last_reachable_ = reachable;
  if (state_ == GcState::kOperational && reachable == config_.members) return;
  start_gather(reachable);
}

void GroupCommunication::start_gather(const std::vector<NodeId>& reachable) {
  ++stats_.gathers_started;
  state_ = GcState::kGathering;
  committed_.reset();
  plan_.reset();
  plan_acked_ = false;
  my_token_.reset();
  my_proposed_.clear();
  infos_.clear();
  plan_acks_.clear();
  built_plan_.reset();
  install_sent_ = false;
  touch_progress();

  if (!reachable.empty() && reachable.front() == id_) {
    my_token_ = GatherToken{id_, ++gather_seq_};
    my_proposed_ = reachable;
    Bytes wire = encode(InquireMsg{*my_token_, my_proposed_});
    send_all(my_proposed_, std::move(wire));
    arm_retry_timer();
  }
  arm_stuck_timer();
}

void GroupCommunication::touch_progress() { last_progress_ = sim_.now(); }

void GroupCommunication::arm_stuck_timer() {
  schedule(params_.stuck_timeout, [this] {
    if (state_ != GcState::kGathering) return;
    if (sim_.now() - last_progress_ >= params_.stuck_timeout) {
      start_gather(last_reachable_);
    } else {
      arm_stuck_timer();
    }
  });
}

void GroupCommunication::arm_retry_timer() {
  if (!my_token_) return;
  const GatherToken token = *my_token_;
  schedule(params_.gather_retry, [this, token] {
    if (!my_token_ || !(*my_token_ == token)) return;
    if (!built_plan_) {
      // Re-inquire members whose JOIN_INFO is missing.
      const Bytes wire = encode(InquireMsg{token, my_proposed_});
      for (NodeId m : my_proposed_) {
        if (!infos_.count(m)) send_to(m, wire);
      }
    } else if (!install_sent_) {
      // Re-send the plan to members whose PLAN_ACK is missing.
      const Bytes wire = encode(*built_plan_);
      for (NodeId m : my_proposed_) {
        if (!plan_acks_.count(m)) send_to(m, wire);
      }
    }
    arm_retry_timer();
  });
}

JoinInfoMsg GroupCommunication::make_join_info(const GatherToken& token) const {
  JoinInfoMsg info;
  info.token = token;
  info.old_config = config_.id;
  info.old_members = config_.members;
  info.recv_contig = recv_contig_;
  info.delivered_upto = delivered_upto_;
  info.known_contig.reserve(config_.members.size());
  for (NodeId m : config_.members) {
    if (m == id_) {
      info.known_contig.push_back(recv_contig_);
    } else {
      const std::int64_t* v = const_cast<GroupCommunication*>(this)->known_slot(m);
      info.known_contig.push_back(v == nullptr ? 0 : *v);
    }
  }
  info.max_config_counter = counter_floor_;
  return info;
}

void GroupCommunication::handle_inquire(NodeId from, const InquireMsg& msg) {
  if (msg.token.coordinator != from) return;
  if (!contains(last_reachable_, from)) return;  // can no longer complete

  if (committed_ && *committed_ == msg.token) {
    // Coordinator retry: re-send our info.
    send_to(from, encode(make_join_info(msg.token)));
    touch_progress();
    return;
  }

  bool accept = false;
  if (!committed_) {
    accept = true;
  } else if (msg.token.coordinator < committed_->coordinator) {
    accept = true;
  } else if (msg.token.coordinator == committed_->coordinator &&
             msg.token.seq > committed_->seq) {
    accept = true;
  } else if (!contains(last_reachable_, committed_->coordinator)) {
    accept = true;
  }
  if (!accept) return;

  if (state_ == GcState::kOperational) {
    state_ = GcState::kGathering;
    arm_stuck_timer();
  }
  committed_ = msg.token;
  plan_.reset();
  plan_acked_ = false;
  if (my_token_ && msg.token.coordinator < id_) {
    // A smaller coordinator supersedes our own attempt.
    my_token_.reset();
    my_proposed_.clear();
    infos_.clear();
    plan_acks_.clear();
    built_plan_.reset();
    install_sent_ = false;
  }
  touch_progress();
  send_to(from, encode(make_join_info(msg.token)));
}

void GroupCommunication::handle_join_info(NodeId from, const JoinInfoMsg& msg) {
  if (!my_token_ || !(msg.token == *my_token_)) return;
  infos_[from] = msg;
  touch_progress();
  coordinator_maybe_plan();
}

void GroupCommunication::coordinator_maybe_plan() {
  if (built_plan_) return;
  for (NodeId m : my_proposed_) {
    if (!infos_.count(m)) return;
  }
  std::int64_t max_counter = counter_floor_;
  for (const auto& [n, info] : infos_) {
    max_counter = std::max({max_counter, info.max_config_counter, info.old_config.counter});
  }

  PlanMsg plan;
  plan.token = *my_token_;
  plan.new_config = ConfigId{max_counter + 1, id_};
  plan.new_members = my_proposed_;

  // Group participants by the regular configuration they come from.
  std::map<ConfigId, std::vector<NodeId>> groups;
  for (const auto& [n, info] : infos_) groups[info.old_config].push_back(n);

  for (auto& [old_id, participants] : groups) {
    std::sort(participants.begin(), participants.end());
    PlanEntry e;
    e.old_config = old_id;
    e.old_members = infos_.at(participants.front()).old_members;
    e.participants = participants;
    std::int64_t target = 0;
    NodeId holder = participants.front();
    for (NodeId p : participants) {
      const std::int64_t c = infos_.at(p).recv_contig;
      e.participant_contig.push_back(c);
      if (c > target) {
        target = c;
        holder = p;
      }
    }
    e.target_seq = target;
    e.retransmitter = holder;
    // Safe line: a message is known received by ALL old members if, for
    // every old member m, some participant saw an ack from m covering it.
    std::int64_t safe = target;
    for (std::size_t mi = 0; mi < e.old_members.size(); ++mi) {
      const NodeId m = e.old_members[mi];
      std::int64_t best = 0;
      for (NodeId p : participants) {
        const JoinInfoMsg& info = infos_.at(p);
        // Find m's slot in p's old_members (configs match, so aligned).
        for (std::size_t j = 0; j < info.old_members.size(); ++j) {
          if (info.old_members[j] == m) {
            best = std::max(best, info.known_contig[j]);
            break;
          }
        }
      }
      safe = std::min(safe, best);
    }
    e.safe_line = safe;
    plan.entries.push_back(std::move(e));
  }

  built_plan_ = plan;
  send_all(my_proposed_, encode(plan));
}

const PlanEntry* GroupCommunication::my_plan_entry() const {
  if (!plan_) return nullptr;
  for (const PlanEntry& e : plan_->entries) {
    if (e.old_config == config_.id) return &e;
  }
  return nullptr;
}

void GroupCommunication::handle_plan(const PlanMsg& msg) {
  if (!committed_ || !(msg.token == *committed_)) return;
  plan_ = msg;
  touch_progress();
  const PlanEntry* e = my_plan_entry();
  if (!e) return;
  if (e->retransmitter == id_) {
    for (std::size_t i = 0; i < e->participants.size(); ++i) {
      const NodeId q = e->participants[i];
      if (q == id_) continue;
      for (std::int64_t seq = e->participant_contig[i] + 1; seq <= e->target_seq; ++seq) {
        const BufferedMsg* m = buffered(seq);
        if (m == nullptr) continue;  // pruned as globally stable: q has it
        RetransMsg rm;
        rm.token = msg.token;
        rm.message =
            OrderedMsg{config_.id, seq, m->origin, m->origin_local_seq, m->service,
                       Bytes(m->payload_data(), m->payload_data() + m->payload_size())};
        ++stats_.retransmissions;
        send_to(q, encode(rm));
      }
    }
  }
  member_check_plan_ack();
}

void GroupCommunication::handle_retrans(const RetransMsg& msg) {
  if (msg.message.config != config_.id) return;
  store_ordered(std::move(const_cast<RetransMsg&>(msg).message));
  touch_progress();
  member_check_plan_ack();
}

void GroupCommunication::member_check_plan_ack() {
  if (!plan_ || plan_acked_ || !committed_) return;
  const PlanEntry* e = my_plan_entry();
  if (!e || recv_contig_ < e->target_seq) return;
  plan_acked_ = true;
  send_to(committed_->coordinator, encode(PlanAckMsg{*committed_}));
}

void GroupCommunication::handle_plan_ack(NodeId from, const PlanAckMsg& msg) {
  if (!my_token_ || !(msg.token == *my_token_)) return;
  plan_acks_[from] = true;
  touch_progress();
  coordinator_maybe_install();
}

void GroupCommunication::coordinator_maybe_install() {
  if (!built_plan_ || install_sent_) return;
  for (NodeId m : my_proposed_) {
    if (!plan_acks_.count(m)) return;
  }
  install_sent_ = true;
  send_all(my_proposed_, encode(InstallMsg{*my_token_}));
}

void GroupCommunication::handle_install(const InstallMsg& msg) {
  if (!committed_ || !(msg.token == *committed_) || !plan_) return;
  run_install();
}

void GroupCommunication::run_install() {
  const PlanMsg plan = *plan_;
  const PlanEntry* entry = my_plan_entry();
  assert(entry != nullptr);
  const PlanEntry e = *entry;  // copy: we mutate state below

  // 1. Deliver the remaining messages known to be received by every member
  //    of the old configuration: these still meet the safe guarantee.
  while (delivered_upto_ < e.safe_line) {
    const std::int64_t next = delivered_upto_ + 1;
    const BufferedMsg* m = buffered(next);
    if (m == nullptr) break;  // was pruned => already delivered
    deliver_one(next, m->service == Service::kSafe ? DeliveryKind::kSafeInRegular
                                                   : DeliveryKind::kAgreed);
  }

  // 2. Transitional configuration: members of the old regular configuration
  //    moving together into the new one.
  Configuration trans;
  trans.id = config_.id;
  trans.members = e.participants;
  trans.transitional = true;
  ++stats_.transitional_configs;
  emit_config(trans);
  if (listener_.on_transitional_config) listener_.on_transitional_config(trans);

  // 3. Left-over messages, delivered in the transitional configuration.
  while (delivered_upto_ < e.target_seq) {
    const std::int64_t next = delivered_upto_ + 1;
    const BufferedMsg* m = buffered(next);
    if (m == nullptr) break;
    deliver_one(next, m->service == Service::kSafe ? DeliveryKind::kTransitional
                                                   : DeliveryKind::kAgreed);
  }

  // 4. Install the new regular configuration and reset the data path.
  config_.id = plan.new_config;
  config_.members = plan.new_members;
  config_.transitional = false;
  counter_floor_ = std::max(counter_floor_, plan.new_config.counter);
  global_seq_ = 0;
  recv_contig_ = 0;
  delivered_upto_ = 0;
  buffer_.clear();
  known_contig_.clear();
  known_contig_.reserve(config_.members.size());
  for (NodeId m : config_.members) known_contig_.emplace_back(m, 0);
  safe_line_dirty_ = true;
  last_acked_value_ = -1;
  // Pacing timers armed in the old configuration will no-op on config
  // mismatch; clear the flags so the new configuration can arm its own.
  ack_scheduled_ = false;
  state_ = GcState::kOperational;
  committed_.reset();
  plan_.reset();
  plan_acked_ = false;
  my_token_.reset();
  my_proposed_.clear();
  infos_.clear();
  plan_acks_.clear();
  built_plan_.reset();
  install_sent_ = false;

  // 5. Re-send local multicasts that were never self-delivered, preserving
  //    FIFO order, before the application reacts to the new configuration.
  stats_.resent_after_install += outbox_.size();
  for (const OutEntry& out : outbox_) send_data(out);

  ++stats_.regular_configs;
  emit_config(config_);
  if (listener_.on_regular_config) listener_.on_regular_config(config_);
}

void GroupCommunication::emit_config(const Configuration& c) {
  if (!params_.tracer) return;
  params_.tracer.emit(c.transitional ? obs::EventKind::kViewTransitional
                                     : obs::EventKind::kViewRegular,
                      c.id.counter, static_cast<std::int64_t>(c.id.coordinator),
                      static_cast<std::int64_t>(c.members.size()));
}

}  // namespace tordb::gc
