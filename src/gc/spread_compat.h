// Spread-toolkit-style compatibility facade over the EVS layer.
//
// The paper's engine was implemented against the Spread C API. This shim
// exposes the same programming model over our group-communication layer —
// connect to a daemon, join a group, multicast with a service type, and
// *receive* messages and membership events from a mailbox queue — so code
// structured against Spread's SP_* calls ports over mechanically:
//
//   Spread                      this facade
//   ------------------------    ----------------------------------------
//   SP_connect                  SpreadMailbox mbox(net, node_id)
//   SP_join / SP_leave          mbox.join() / mbox.leave()
//   SP_multicast(AGREED_MESS)   mbox.multicast(payload, SpService::kAgreed)
//   SP_multicast(SAFE_MESS)     mbox.multicast(payload, SpService::kSafe)
//   SP_receive                  mbox.receive() -> SpEvent (poll-style)
//   REG_MEMB_MESS               SpEventType::kRegularMembership
//   TRANSITION_MESS             SpEventType::kTransitionalMembership
//
// Differences from the real API are deliberate and minimal: the mailbox is
// single-group (the replication engine uses one group), and receive() is
// non-blocking (the simulator has no blocking threads) — poll it from a
// timer or after run_for() steps.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "gc/group_communication.h"
#include "gc/types.h"
#include "sim/network.h"

namespace tordb::gc {

enum class SpService : std::uint8_t {
  kAgreed = 0,  ///< AGREED_MESS: totally ordered
  kSafe = 1,    ///< SAFE_MESS: totally ordered + all-received guarantee
};

enum class SpEventType : std::uint8_t {
  kMessage = 0,                 ///< a data message, in delivery order
  kRegularMembership = 1,       ///< REG_MEMB_MESS
  kTransitionalMembership = 2,  ///< TRANSITION_MESS
};

struct SpEvent {
  SpEventType type = SpEventType::kMessage;
  // kMessage:
  NodeId sender = kNoNode;
  Bytes payload;
  bool safe_delivered = false;  ///< met the safe guarantee (regular config)
  // membership events:
  std::vector<NodeId> members;
  ConfigId config;
};

/// A Spread-style mailbox: joins the node into the daemon group and queues
/// every delivery and membership event for poll-style consumption.
class SpreadMailbox {
 public:
  /// "SP_connect": attach to the (simulated) daemon on `node`. The mailbox
  /// starts disconnected from the group; call join().
  SpreadMailbox(Network& net, NodeId node);
  ~SpreadMailbox();

  SpreadMailbox(const SpreadMailbox&) = delete;
  SpreadMailbox& operator=(const SpreadMailbox&) = delete;

  /// "SP_join": enter the replication group; membership events follow.
  void join();

  /// "SP_leave": exit the group (the node stays on the network).
  void leave();

  /// "SP_multicast": send to the current group membership.
  void multicast(Bytes payload, SpService service);

  /// "SP_receive", poll-style: the next queued event, if any.
  std::optional<SpEvent> receive();

  bool has_pending() const { return !queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  bool joined() const { return gc_ != nullptr; }
  NodeId node() const { return node_; }

  /// Current regular membership ("SP_get_memb_info").
  std::vector<NodeId> current_members() const;

 private:
  Network& net_;
  NodeId node_;
  std::unique_ptr<GroupCommunication> gc_;
  std::deque<SpEvent> queue_;
  std::int64_t config_counter_ = 0;  ///< persists across leave/join
};

}  // namespace tordb::gc
