// Extended Virtual Synchrony group communication over the simulated
// partitionable network — the role the Spread toolkit plays in the paper.
//
// Architecture (one instance per node):
//
//   data path     : senders forward payloads to the configuration's
//                   *sequencer* (lowest member id), which assigns the global
//                   sequence and multicasts ORDERED messages. Members
//                   multicast coalesced acknowledgements of their contiguous
//                   prefix to the whole group; a message is delivered *safe*
//                   once every member's ack covers it.
//   membership    : on any reachability change a flush protocol runs: the
//     (flush)       lowest reachable node INQUIREs, members reply JOIN_INFO
//                   (what they hold and what they know others received), the
//                   coordinator computes a PLAN (per old configuration: who
//                   continues together, the safe line, the retransmission
//                   target), holders RETRANSmit so all continuing members
//                   hold the same prefix, and after PLAN_ACKs the
//                   coordinator INSTALLs. Each member then delivers, in EVS
//                   order: remaining safe messages (safe-in-regular, up to
//                   the safe line), the transitional configuration, the
//                   left-over messages (transitional delivery), and the new
//                   regular configuration.
//
// Guarantees provided (property-tested in tests/gc_*):
//   self delivery, FIFO per sender, agreed (total) order per configuration,
//   virtual synchrony, and EVS safe-delivery trichotomy: for any safe
//   message it is impossible that one member delivered it safe-in-regular
//   while another member of the same configuration never delivers it
//   (unless that member crashes).
//
// Undelivered local multicasts are retained and automatically re-sent in
// the next configuration, so a payload handed to `multicast` is eventually
// ordered somewhere as long as its node stays up (the replication engine's
// redCut de-duplicates cross-component reorderings).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "gc/messages.h"
#include "gc/types.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace tordb::gc {

struct GcParams {
  SimDuration ack_coalesce = micros(150);      ///< delay before sending an ack
  SimDuration ack_min_interval = millis(3);    ///< ack rate limit under load
  SimDuration gather_retry = millis(12);  ///< coordinator re-INQUIRE period
  SimDuration stuck_timeout = millis(60); ///< member watchdog during flush
  /// Observability handle (disconnected by default — zero cost). Emits
  /// kSafeDeliver, kViewRegular, and kViewTransitional events.
  obs::Tracer tracer;
};

struct GcStats {
  std::uint64_t messages_ordered = 0;    ///< ORDERED assigned (sequencer role)
  std::uint64_t deliveries = 0;
  std::uint64_t safe_deliveries = 0;
  std::uint64_t transitional_deliveries = 0;
  std::uint64_t regular_configs = 0;
  std::uint64_t transitional_configs = 0;
  std::uint64_t gathers_started = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t resent_after_install = 0;
};

class GroupCommunication {
 public:
  /// `initial_config_counter` seeds configuration-id uniqueness across
  /// recoveries of the same node (the node harness persists it).
  GroupCommunication(Network& net, NodeId id, Listener listener,
                     std::int64_t initial_config_counter = 0, GcParams params = {});
  ~GroupCommunication();

  GroupCommunication(const GroupCommunication&) = delete;
  GroupCommunication& operator=(const GroupCommunication&) = delete;

  /// Multicast `payload` to the current configuration with the requested
  /// service. May be called at any time; while the membership protocol runs
  /// the message is queued and sent in the next configuration.
  void multicast(Bytes payload, Service service);

  NodeId id() const { return id_; }
  const Configuration& config() const { return config_; }
  bool operational() const { return state_ == GcState::kOperational; }
  /// Highest configuration counter this instance has seen (persist across
  /// recoveries and feed back as initial_config_counter).
  std::int64_t max_counter_seen() const { return counter_floor_; }
  const GcStats& stats() const { return stats_; }

 private:
  enum class GcState { kOperational, kGathering };

  /// One slot of the ORDERED delivery buffer. The payload is held as a
  /// (shared wire buffer, offset, length) slice: all members of a multicast
  /// share one refcounted wire, so buffering a message costs a refcount
  /// bump instead of a per-member deep copy of the payload.
  struct BufferedMsg {
    NodeId origin = kNoNode;
    std::int64_t origin_local_seq = 0;
    Service service = Service::kAgreed;
    std::shared_ptr<const Bytes> buf;
    std::uint32_t payload_off = 0;
    std::uint32_t payload_len = 0;

    const std::uint8_t* payload_data() const { return buf->data() + payload_off; }
    std::size_t payload_size() const { return payload_len; }
  };

  struct OutEntry {
    std::int64_t local_seq = 0;
    Service service = Service::kAgreed;
    Bytes payload;
  };

  // --- wiring ---------------------------------------------------------
  void on_packet(NodeId from, const std::shared_ptr<const Bytes>& wire);
  void on_reachability(const std::vector<NodeId>& reachable);
  /// Schedule `fn` guarded by this instance's liveness. A forwarding
  /// template so the closure lands inline in the simulator's SmallFn slot
  /// instead of bouncing through a heap-allocated std::function.
  template <typename F>
  void schedule(SimDuration delay, F&& fn) {
    sim_.after(delay, [alive = alive_, fn = std::forward<F>(fn)]() mutable {
      if (*alive) fn();
    });
  }
  void send_to(NodeId to, Bytes wire);
  void send_all(const std::vector<NodeId>& to, Bytes wire);

  // --- data path ------------------------------------------------------
  void handle_data(NodeId from, BufReader& r);
  void handle_ordered(BufReader& r, const std::shared_ptr<const Bytes>& wire);
  void handle_ack(NodeId from, const AckMsg& msg);
  void store_ordered(OrderedMsg&& msg);
  void store_buffered(std::int64_t seq, BufferedMsg&& m);
  void try_deliver();
  void deliver_one(std::int64_t seq, DeliveryKind kind);
  void emit_config(const Configuration& c);
  std::int64_t safe_line() const;
  void after_contig_advance();
  void schedule_ack();
  void send_data(const OutEntry& entry);
  bool is_sequencer() const { return !config_.members.empty() && config_.members.front() == id_; }

  // --- membership (flush) ----------------------------------------------
  void start_gather(const std::vector<NodeId>& reachable);
  void handle_inquire(NodeId from, const InquireMsg& msg);
  void handle_join_info(NodeId from, const JoinInfoMsg& msg);
  void handle_plan(const PlanMsg& msg);
  void handle_retrans(const RetransMsg& msg);
  void handle_plan_ack(NodeId from, const PlanAckMsg& msg);
  void handle_install(const InstallMsg& msg);
  void coordinator_maybe_plan();
  void coordinator_maybe_install();
  void member_check_plan_ack();
  void run_install();
  void touch_progress();
  void arm_stuck_timer();
  void arm_retry_timer();
  JoinInfoMsg make_join_info(const GatherToken& token) const;
  const PlanEntry* my_plan_entry() const;

  Network& net_;
  Simulator& sim_;
  NodeId id_;
  Listener listener_;
  GcParams params_;
  std::shared_ptr<bool> alive_;

  // Current regular configuration and data-path state.
  Configuration config_;
  GcState state_ = GcState::kOperational;
  std::int64_t global_seq_ = 0;    ///< sequencer: last assigned
  std::int64_t recv_contig_ = 0;   ///< highest contiguous ORDERED received
  std::int64_t delivered_upto_ = 0;
  /// Seq-indexed ring over the ORDERED stream: slot i holds sequence
  /// `buffer_base_ + i`, gaps flagged by origin == kNoNode. Sequences are
  /// assigned densely by the sequencer, so O(1) indexing replaces the
  /// per-message node allocation and rebalancing a std::map paid on every
  /// store, lookup and prune of the data path.
  std::deque<BufferedMsg> buffer_;
  std::int64_t buffer_base_ = 0;  ///< seq of buffer_[0]; meaningless when empty
  BufferedMsg* buffered(std::int64_t seq);  ///< slot for seq, or nullptr
  void buffer_put(std::int64_t seq, BufferedMsg m);
  /// Per-member ack knowledge, sorted by member id (mirrors config members).
  /// Flat storage: probed on every ack and scanned by safe_line(), the two
  /// hottest paths in the layer.
  std::vector<std::pair<NodeId, std::int64_t>> known_contig_;
  std::int64_t* known_slot(NodeId m);  ///< value for m, or nullptr
  /// Memoized safe_line(). Contig knowledge only advances within a
  /// configuration, so the min over members is stable unless the member
  /// holding it advances; try_deliver() runs on every ACK, which made the
  /// full O(members) min scan the simulation's hottest function at 100
  /// replicas.
  mutable std::int64_t safe_line_cache_ = 0;
  mutable bool safe_line_dirty_ = true;
  std::int64_t counter_floor_ = 0;

  // Ack / stability pacing.
  bool ack_scheduled_ = false;
  SimTime last_ack_sent_ = -1'000'000'000;
  std::int64_t last_acked_value_ = -1;

  // Local multicasts not yet self-delivered (resent on config change).
  std::deque<OutEntry> outbox_;
  std::int64_t next_local_seq_ = 0;

  // Gather (flush) state.
  std::vector<NodeId> last_reachable_;
  std::int64_t gather_seq_ = 0;
  std::optional<GatherToken> committed_;
  // coordinator side
  std::optional<GatherToken> my_token_;
  std::vector<NodeId> my_proposed_;
  std::map<NodeId, JoinInfoMsg> infos_;
  std::map<NodeId, bool> plan_acks_;
  std::optional<PlanMsg> built_plan_;
  bool install_sent_ = false;
  // member side
  std::optional<PlanMsg> plan_;
  bool plan_acked_ = false;
  SimTime last_progress_ = 0;

  GcStats stats_;
};

}  // namespace tordb::gc
