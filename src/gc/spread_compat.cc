#include "gc/spread_compat.h"

namespace tordb::gc {

SpreadMailbox::SpreadMailbox(Network& net, NodeId node) : net_(net), node_(node) {
  net_.set_group_active(node_, false);
}

SpreadMailbox::~SpreadMailbox() { leave(); }

void SpreadMailbox::join() {
  if (gc_) return;
  Listener listener;
  listener.on_regular_config = [this](const Configuration& c) {
    SpEvent ev;
    ev.type = SpEventType::kRegularMembership;
    ev.members = c.members;
    ev.config = c.id;
    queue_.push_back(std::move(ev));
  };
  listener.on_transitional_config = [this](const Configuration& c) {
    SpEvent ev;
    ev.type = SpEventType::kTransitionalMembership;
    ev.members = c.members;
    ev.config = c.id;
    queue_.push_back(std::move(ev));
  };
  listener.on_deliver = [this](const Delivery& d) {
    SpEvent ev;
    ev.type = SpEventType::kMessage;
    ev.sender = d.sender;
    ev.payload.assign(d.payload.begin(), d.payload.end());
    ev.safe_delivered = d.kind == DeliveryKind::kSafeInRegular;
    ev.config = d.config;
    queue_.push_back(std::move(ev));
  };
  gc_ = std::make_unique<GroupCommunication>(net_, node_, std::move(listener),
                                             config_counter_ + 1);
  net_.set_group_active(node_, true);
}

void SpreadMailbox::leave() {
  if (!gc_) return;
  config_counter_ = gc_->max_counter_seen();
  gc_.reset();
  net_.set_group_active(node_, false);
}

void SpreadMailbox::multicast(Bytes payload, SpService service) {
  if (!gc_) return;
  gc_->multicast(std::move(payload),
                 service == SpService::kSafe ? Service::kSafe : Service::kAgreed);
}

std::optional<SpEvent> SpreadMailbox::receive() {
  if (queue_.empty()) return std::nullopt;
  SpEvent ev = std::move(queue_.front());
  queue_.pop_front();
  return ev;
}

std::vector<NodeId> SpreadMailbox::current_members() const {
  if (!gc_) return {};
  return gc_->config().members;
}

}  // namespace tordb::gc
