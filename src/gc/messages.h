// Wire messages of the group-communication protocol.
//
// Data path: DATA (sender -> sequencer), ORDERED (sequencer -> members),
// ACK (member -> sequencer), STABLE (sequencer -> members).
//
// Membership path (flush protocol): INQUIRE (coordinator -> members),
// JOIN_INFO (member -> coordinator), PLAN (coordinator -> members),
// RETRANS (designated holder -> members missing messages), PLAN_ACK
// (member -> coordinator), INSTALL (coordinator -> members).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gc/types.h"
#include "util/serde.h"
#include "util/types.h"

namespace tordb::gc {

enum class MsgType : std::uint8_t {
  kData = 1,
  kOrdered = 2,
  kAck = 3,
  kStable = 4,
  kInquire = 5,
  kJoinInfo = 6,
  kPlan = 7,
  kRetrans = 8,
  kPlanAck = 9,
  kInstall = 10,
};

/// Identifies one membership-gathering attempt: (coordinator, attempt seq).
/// Smaller coordinator id wins contention; larger seq supersedes for the
/// same coordinator.
struct GatherToken {
  NodeId coordinator = kNoNode;
  std::int64_t seq = 0;

  friend bool operator==(const GatherToken&, const GatherToken&) = default;
};

struct DataMsg {
  ConfigId config;
  NodeId origin = kNoNode;
  std::int64_t local_seq = 0;  ///< per-sender FIFO sequence (diagnostic)
  Service service = Service::kAgreed;
  Bytes payload;
};

struct OrderedMsg {
  ConfigId config;
  std::int64_t seq = 0;  ///< global total-order position within config
  NodeId origin = kNoNode;
  std::int64_t origin_local_seq = 0;  ///< sender's FIFO seq, for resend dedup
  Service service = Service::kAgreed;
  Bytes payload;
};

struct AckMsg {
  ConfigId config;
  std::int64_t recv_contig = 0;  ///< highest contiguous seq received
};

struct StableMsg {
  ConfigId config;
  /// Per-member highest contiguous seq, aligned with the configuration's
  /// member list. min() of this vector is the safe line.
  std::vector<std::int64_t> member_contig;
};

struct InquireMsg {
  GatherToken token;
  std::vector<NodeId> proposed;  ///< reachable set the coordinator saw
};

struct JoinInfoMsg {
  GatherToken token;
  ConfigId old_config;
  std::vector<NodeId> old_members;
  std::int64_t recv_contig = 0;
  std::int64_t delivered_upto = 0;
  /// Highest contiguous seq this node knows each old member received
  /// (aligned with old_members). Used to compute the flush safe line.
  std::vector<std::int64_t> known_contig;
  std::int64_t max_config_counter = 0;  ///< for new-config id uniqueness
};

/// Flush plan for one old regular configuration.
struct PlanEntry {
  ConfigId old_config;
  std::vector<NodeId> old_members;
  std::vector<NodeId> participants;             ///< old members continuing together
  std::vector<std::int64_t> participant_contig; ///< aligned with participants
  std::int64_t safe_line = 0;   ///< known received by ALL old members
  std::int64_t target_seq = 0;  ///< max held by any participant
  NodeId retransmitter = kNoNode;
};

struct PlanMsg {
  GatherToken token;
  ConfigId new_config;
  std::vector<NodeId> new_members;
  std::vector<PlanEntry> entries;
};

struct RetransMsg {
  GatherToken token;
  OrderedMsg message;
};

struct PlanAckMsg {
  GatherToken token;
};

struct InstallMsg {
  GatherToken token;
};

/// Encode/decode a tagged union of all message types.
Bytes encode_message(MsgType type, const std::function<void(BufWriter&)>& body);

Bytes encode(const DataMsg&);
Bytes encode(const OrderedMsg&);
Bytes encode(const AckMsg&);
Bytes encode(const StableMsg&);
Bytes encode(const InquireMsg&);
Bytes encode(const JoinInfoMsg&);
Bytes encode(const PlanMsg&);
Bytes encode(const RetransMsg&);
Bytes encode(const PlanAckMsg&);
Bytes encode(const InstallMsg&);

MsgType peek_type(const Bytes& wire);

DataMsg decode_data(BufReader&);
OrderedMsg decode_ordered(BufReader&);
AckMsg decode_ack(BufReader&);
StableMsg decode_stable(BufReader&);
InquireMsg decode_inquire(BufReader&);
JoinInfoMsg decode_join_info(BufReader&);
PlanMsg decode_plan(BufReader&);
RetransMsg decode_retrans(BufReader&);
PlanAckMsg decode_plan_ack(BufReader&);
InstallMsg decode_install(BufReader&);

}  // namespace tordb::gc
