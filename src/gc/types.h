// Public service types of the group-communication layer.
//
// The layer implements the Extended Virtual Synchrony (EVS) model of Moser,
// Amir, Melliar-Smith and Agarwal [21], the model the paper's replication
// engine is built on (paper §4.1):
//
//  - A *regular configuration* is an agreed membership (view).
//  - On a connectivity change the layer first delivers a *transitional
//    configuration* (the members of the next regular configuration that come
//    together from the current regular one), then the left-over messages,
//    then the next regular configuration.
//  - *Safe delivery*: a message delivered as safe in a regular configuration
//    is guaranteed to be delivered to every member of that configuration
//    (possibly in its transitional configuration) unless that member
//    crashes. Messages for which this guarantee cannot be established are
//    delivered in the transitional configuration. This yields the paper's
//    three-situation trichotomy: nobody can see "delivered safe in regular"
//    while somebody else sees "never delivered".
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "util/serde.h"
#include "util/types.h"

namespace tordb::gc {

/// Delivery service requested for a multicast.
enum class Service : std::uint8_t {
  kAgreed = 0,  ///< totally ordered within the configuration
  kSafe = 1,    ///< totally ordered + all-received guarantee (EVS safe)
};

/// A membership (view) notification.
struct Configuration {
  ConfigId id;
  std::vector<NodeId> members;  ///< sorted
  bool transitional = false;

  bool contains(NodeId n) const;
  std::string to_string() const;

  friend bool operator==(const Configuration&, const Configuration&) = default;
};

/// How a message reached the application.
enum class DeliveryKind : std::uint8_t {
  kSafeInRegular = 0,  ///< §4.1 situation 1: all guarantees met
  kTransitional = 1,   ///< §4.1 situation 2: delivered in the transitional
                       ///  configuration; other components may not have it
  kAgreed = 2,         ///< agreed-service message (no safety guarantee asked)
};

/// One delivered message.
struct Delivery {
  NodeId sender = kNoNode;
  ConfigId config;          ///< regular configuration the message belongs to
  std::int64_t seq = 0;     ///< total-order position within that configuration
  DeliveryKind kind = DeliveryKind::kAgreed;
  /// Borrowed from the layer's delivery buffer — valid for the duration of
  /// the on_deliver callback only; copy it to retain. A view rather than a
  /// whole Bytes because the buffer holds refcounted wire buffers shared by
  /// every recipient of a multicast: the payload is a slice of the ORDERED
  /// wire, and deliveries run once per member per message, so the deep copy
  /// this avoids was the group's largest per-message allocation.
  std::span<const std::uint8_t> payload;
};

/// Callbacks the application (the replication engine) installs. The layer
/// invokes them in EVS order: safe/agreed deliveries, then a transitional
/// configuration, then left-over deliveries, then the next regular
/// configuration.
struct Listener {
  std::function<void(const Configuration&)> on_regular_config;
  std::function<void(const Configuration&)> on_transitional_config;
  std::function<void(const Delivery&)> on_deliver;
};

}  // namespace tordb::gc
