#include "core/action.h"

namespace tordb::core {

void Action::encode(BufWriter& w) const {
  w.u8(static_cast<std::uint8_t>(type));
  w.action_id(id);
  w.i64(green_line);
  w.i64(client);
  w.u8(static_cast<std::uint8_t>(semantics));
  query.encode(w);
  update.encode(w);
  w.i32(subject);
  w.u32(padding);
  // Padding bytes model the action body (e.g. the SQL text); content is
  // irrelevant, size drives the latency/bandwidth model.
  for (std::uint32_t i = 0; i < padding; ++i) w.u8(0);
}

Action Action::decode(BufReader& r) {
  Action a;
  a.type = static_cast<ActionType>(r.u8());
  a.id = r.action_id();
  a.green_line = r.i64();
  a.client = r.i64();
  a.semantics = static_cast<Semantics>(r.u8());
  a.query = db::Command::decode(r);
  a.update = db::Command::decode(r);
  a.subject = r.i32();
  a.padding = r.u32();
  for (std::uint32_t i = 0; i < a.padding; ++i) r.u8();
  return a;
}

std::size_t Action::wire_size() const {
  BufWriter w;
  encode(w);
  return w.data().size();
}

std::string to_string(ActionType t) {
  switch (t) {
    case ActionType::kUpdate: return "update";
    case ActionType::kPersistentJoin: return "join";
    case ActionType::kPersistentLeave: return "leave";
  }
  return "?";
}

}  // namespace tordb::core
