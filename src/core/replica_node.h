// One replica: stable storage + replication engine + the node-side plumbing
// the engine does not own — crash/recovery orchestration (a node crash loses
// everything volatile but keeps the storage object, paper §2.1) and the
// joiner side of the §5.2 protocol (request a representative, receive the
// snapshot, fail over to another peer on timeout, then start the engine and
// enter the replica group).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/replication_engine.h"
#include "sim/network.h"
#include "storage/stable_storage.h"

namespace tordb::core {

struct ReplicaOptions {
  EngineParams engine;
  StorageParams storage;
  SimDuration join_retry = millis(400);  ///< fail over to the next peer
};

class ReplicaNode {
 public:

  /// Founding member: registers the node and starts the engine immediately.
  ReplicaNode(Network& net, NodeId id, std::vector<NodeId> initial_servers,
              ReplicaOptions options = ReplicaOptions());

  struct DormantTag {};
  /// Dormant node: present on the network (direct channel only), not part
  /// of the replica group. Use join_via() to become a replica (§5.2).
  ReplicaNode(Network& net, NodeId id, DormantTag, ReplicaOptions options = ReplicaOptions());

  ~ReplicaNode();
  ReplicaNode(const ReplicaNode&) = delete;
  ReplicaNode& operator=(const ReplicaNode&) = delete;

  /// §5.2: connect to a member, transfer the database, join the group.
  /// Retries with the next peer if the current one fails or is unreachable.
  void join_via(std::vector<NodeId> peers, std::function<void()> on_joined = nullptr);

  /// Node crash: volatile state lost, stable storage retained (§2.1).
  void crash();

  /// Recover after a crash (Appendix A Recover). No-op if not crashed.
  void recover();

  NodeId id() const { return id_; }
  /// The simulator event lane this node lives on (0 unless the owning
  /// harness partitioned the simulation; see Network::set_lane).
  int sim_lane() const { return net_.lane(id_); }
  bool running() const { return engine_ != nullptr; }
  bool crashed() const { return crashed_; }
  bool has_left() const { return left_; }
  bool joining() const { return joining_; }
  ReplicationEngine& engine() { return *engine_; }
  const ReplicationEngine& engine() const { return *engine_; }
  StableStorage& storage() { return *storage_; }

 private:
  /// Storage params with the per-node obs tracer attached (the shared
  /// ReplicaOptions cannot carry per-node identity, so it is stamped here).
  StorageParams make_storage_params() const;
  void register_direct_handler();
  void on_direct(NodeId from, const Bytes& wire);
  void try_next_join_peer();
  void start_engine_from_snapshot(const SnapshotMessage& snap);
  void handle_engine_left();

  Network& net_;
  Simulator& sim_;
  NodeId id_;
  ReplicaOptions options_;
  std::vector<NodeId> initial_servers_;
  std::shared_ptr<bool> alive_;

  std::unique_ptr<StableStorage> storage_;
  std::unique_ptr<ReplicationEngine> engine_;
  bool crashed_ = false;
  bool left_ = false;
  bool was_member_ = false;  ///< has ever run an engine (recovery possible)

  // Joiner-side state.
  bool joining_ = false;
  std::vector<NodeId> join_peers_;
  std::size_t join_peer_idx_ = 0;
  std::uint64_t join_epoch_ = 0;  ///< invalidates stale retry timers
  std::function<void()> on_joined_;
};

}  // namespace tordb::core
