#include "core/action_log.h"

#include <algorithm>

namespace tordb::core {

std::unique_ptr<ActionLog::StoredAction> ActionLog::alloc_stored() {
  if (pool_.empty()) return std::make_unique<StoredAction>();
  std::unique_ptr<StoredAction> p = std::move(pool_.back());
  pool_.pop_back();
  p->green_pos = 0;
  return p;
}

void ActionLog::recycle(std::unique_ptr<StoredAction> p) {
  if (pool_.size() < 4096) pool_.push_back(std::move(p));
}

std::span<const Action* const> ActionLog::mark_red(Action&& a) {
  admitted_.clear();
  const ActionId aid = a.id;
  CreatorState& cs = creators_[aid.server_id];
  if (cs.red_cut >= aid.index) return admitted_;  // duplicate
  if (cs.red_cut < aid.index - 1) {
    // Creator-FIFO gap: exchange-phase red and green retransmissions come
    // from different members and may interleave out of creator order;
    // park the action until its predecessors arrive.
    red_waiting_[pack_action_id(aid)] = std::move(a);
    return admitted_;
  }
  Action current = std::move(a);
  for (;;) {
    const ActionId cid = current.id;
    cs.red_cut = cid.index;
    // Fetch-or-create (not overwrite) so a body re-admitted after a
    // green-during-gap keeps the green position it already earned.
    auto& slot = store_[pack_action_id(cid)];
    if (!slot) {
      slot = alloc_stored();
    } else {
      body_bytes_ -= static_cast<std::int64_t>(slot->body.wire_size());
    }
    body_bytes_ += static_cast<std::int64_t>(current.wire_size());
    slot->body = std::move(current);
    admitted_.push_back(&slot->body);
    const std::uint64_t next_key = pack_action_id(ActionId{aid.server_id, cs.red_cut + 1});
    Action* next = red_waiting_.find(next_key);
    if (next == nullptr) break;
    current = std::move(*next);
    red_waiting_.erase(next_key);
  }
  return admitted_;
}

ActionLog::GreenResult ActionLog::mark_green(Action&& a) {
  GreenResult res;
  const ActionId aid = a.id;
  res.newly_red = mark_red(std::move(a));
  if (is_green(aid)) return res;  // duplicate: position stays 0
  ++green_count_;
  green_seq_.push_back(aid);
  CreatorState& cs = creators_[aid.server_id];
  cs.green_red_cut = std::max(cs.green_red_cut, aid.index);
  // The action may have been parked (gap) rather than admitted red; the
  // green order still needs its body in the store, so mirror the parked
  // copy there (mark_red consumed the argument).
  const std::uint64_t key = pack_action_id(aid);
  StoredAction* cell = nullptr;
  if (auto* slot = store_.find(key)) {
    cell = slot->get();
  } else if (const Action* parked = red_waiting_.find(key)) {
    auto& fresh = store_[key];
    fresh = std::make_unique<StoredAction>(StoredAction{*parked, 0});
    body_bytes_ += static_cast<std::int64_t>(parked->wire_size());
    cell = fresh.get();
  }
  if (cell != nullptr) {
    cell->green_pos = green_count_;
    res.body = &cell->body;
  }
  res.position = green_count_;
  return res;
}

const Action* ActionLog::body_of(const ActionId& id) const {
  const auto* slot = store_.find(pack_action_id(id));
  return slot == nullptr ? nullptr : &(*slot)->body;
}

const Action* ActionLog::green_body_at(std::int64_t position) const {
  const ActionId id = green_action_at(position);
  return id.server_id == kNoNode ? nullptr : body_of(id);
}

ActionId ActionLog::green_action_at(std::int64_t position) const {
  if (position <= white_count_ || position > green_count_) return ActionId{};
  const std::size_t idx =
      green_head_ + static_cast<std::size_t>(position - white_count_ - 1);
  // An adopted prefix has no per-position ids; never index out of range.
  if (idx >= green_seq_.size()) return ActionId{};
  return green_seq_[idx];
}

std::int64_t ActionLog::position_of(const ActionId& id) const {
  const auto* slot = store_.find(pack_action_id(id));
  return slot == nullptr ? 0 : (*slot)->green_pos;
}

std::size_t ActionLog::red_count() const {
  std::size_t n = 0;
  for (const auto& [c, cs] : creators_) {
    if (cs.red_cut > cs.green_red_cut) {
      n += static_cast<std::size_t>(cs.red_cut - cs.green_red_cut);
    }
  }
  return n;
}

std::int64_t ActionLog::red_cut(NodeId creator) const {
  const CreatorState* cs = creators_.find(creator);
  return cs == nullptr ? 0 : cs->red_cut;
}

std::int64_t ActionLog::green_red_cut(NodeId creator) const {
  const CreatorState* cs = creators_.find(creator);
  return cs == nullptr ? 0 : cs->green_red_cut;
}

std::vector<std::pair<NodeId, std::int64_t>> ActionLog::red_cut_pairs() const {
  std::vector<std::pair<NodeId, std::int64_t>> v;
  v.reserve(creators_.size());
  for (const auto& [c, cs] : creators_) v.emplace_back(c, cs.red_cut);
  return v;
}

std::vector<std::pair<NodeId, std::int64_t>> ActionLog::green_red_cut_pairs() const {
  std::vector<std::pair<NodeId, std::int64_t>> v;
  v.reserve(creators_.size());
  for (const auto& [c, cs] : creators_) v.emplace_back(c, cs.green_red_cut);
  return v;
}

std::vector<ActionId> ActionLog::pending_red_ids() const {
  std::vector<ActionId> ids;
  for (const auto& [c, cs] : creators_) {
    for (std::int64_t i = cs.green_red_cut + 1; i <= cs.red_cut; ++i) {
      ids.push_back(ActionId{c, i});
    }
  }
  return ids;
}

void ActionLog::for_each_pending_red(const std::function<void(const Action&)>& fn) const {
  for (const auto& [c, cs] : creators_) {
    for (std::int64_t i = cs.green_red_cut + 1; i <= cs.red_cut; ++i) {
      if (const Action* b = body_of(ActionId{c, i})) fn(*b);
    }
  }
}

std::size_t ActionLog::trim_white_to(std::int64_t white_line) {
  std::size_t trimmed = 0;
  while (white_count_ < white_line && green_head_ < green_seq_.size()) {
    const ActionId aid = green_seq_[green_head_++];
    ++white_count_;
    const std::uint64_t key = pack_action_id(aid);
    if (auto* slot = store_.find(key)) {
      body_bytes_ -= static_cast<std::int64_t>((*slot)->body.wire_size());
      recycle(std::move(*slot));
      store_.erase(key);
    }
    ++trimmed;
  }
  compact_green_seq();
  return trimmed;
}

void ActionLog::compact_green_seq() {
  // Amortized O(1): release the trimmed prefix once it dominates the
  // vector, keeping position lookup a plain offset index in between.
  if (green_head_ >= 64 && green_head_ * 2 >= green_seq_.size()) {
    green_seq_.erase(green_seq_.begin(),
                     green_seq_.begin() + static_cast<std::ptrdiff_t>(green_head_));
    green_head_ = 0;
  }
}

void ActionLog::reset(std::int64_t green_count,
                      const std::vector<std::pair<NodeId, std::int64_t>>& green_red_cut) {
  green_count_ = white_count_ = green_count;
  green_seq_.clear();
  green_head_ = 0;
  store_.clear();
  body_bytes_ = 0;
  red_waiting_.clear();
  creators_.clear();
  for (const auto& [c, v] : green_red_cut) creators_[c] = CreatorState{v, v};
}

std::span<const Action* const> ActionLog::adopt_green_prefix(
    std::int64_t green_count,
    const std::vector<std::pair<NodeId, std::int64_t>>& green_red_cut) {
  green_count_ = green_count;
  white_count_ = green_count;
  green_seq_.clear();
  green_head_ = 0;
  for (const auto& [c, v] : green_red_cut) {
    CreatorState& cs = creators_[c];
    cs.green_red_cut = std::max(cs.green_red_cut, v);
    cs.red_cut = std::max(cs.red_cut, v);
  }
  // Bodies and parked retransmissions the adopted prefix covers are dead:
  // green-by-position retransmission below our white line is impossible
  // (the exchange falls back to a catch-up transfer), and covered indices
  // can never be pending reds again. Collect first, then erase — the flat
  // tables must not shrink under their own iteration.
  std::vector<std::uint64_t> dead;
  store_.for_each([&](std::uint64_t key, const std::unique_ptr<StoredAction>& s) {
    if (is_green(unpack_action_id(key))) {
      body_bytes_ -= static_cast<std::int64_t>(s->body.wire_size());
      dead.push_back(key);
    }
  });
  for (const std::uint64_t key : dead) store_.erase(key);
  dead.clear();
  red_waiting_.for_each([&](std::uint64_t key, const Action&) {
    if (is_green(unpack_action_id(key))) dead.push_back(key);
  });
  for (const std::uint64_t key : dead) red_waiting_.erase(key);

  // The raised cuts may have filled the creator-FIFO gaps that surviving
  // parked retransmissions were waiting on; admit the now-contiguous
  // chains, or they stay stranded (never pending, never promoted) and
  // members that received them directly diverge at the next Install.
  admitted_.clear();
  std::vector<NodeId> ids;
  ids.reserve(creators_.size());
  for (const auto& [c, cs] : creators_) ids.push_back(c);
  for (const NodeId c : ids) {
    CreatorState& cs = creators_[c];
    for (;;) {
      const std::uint64_t key = pack_action_id(ActionId{c, cs.red_cut + 1});
      Action* w = red_waiting_.find(key);
      if (w == nullptr) break;
      ++cs.red_cut;
      auto& slot = store_[key];
      if (!slot) {
        slot = alloc_stored();
      } else {
        body_bytes_ -= static_cast<std::int64_t>(slot->body.wire_size());
      }
      body_bytes_ += static_cast<std::int64_t>(w->wire_size());
      slot->body = std::move(*w);
      red_waiting_.erase(key);
      admitted_.push_back(&slot->body);
    }
  }
  return admitted_;
}

bool ActionLog::replay_green(std::int64_t position, const Action& a) {
  if (position != green_count_ + 1) return false;  // duplicate / out of order
  ++green_count_;
  green_seq_.push_back(a.id);
  CreatorState& cs = creators_[a.id.server_id];
  cs.green_red_cut = std::max(cs.green_red_cut, a.id.index);
  cs.red_cut = std::max(cs.red_cut, a.id.index);
  auto& slot = store_[pack_action_id(a.id)];
  if (!slot) {
    slot = alloc_stored();
  } else {
    body_bytes_ -= static_cast<std::int64_t>(slot->body.wire_size());
  }
  slot->body = a;
  slot->green_pos = green_count_;
  body_bytes_ += static_cast<std::int64_t>(a.wire_size());
  return true;
}

}  // namespace tordb::core
