#include "core/action_log.h"

#include <algorithm>

namespace tordb::core {

std::vector<const Action*> ActionLog::mark_red(Action&& a) {
  std::vector<const Action*> admitted;
  const ActionId aid = a.id;
  CreatorState& cs = creators_[aid.server_id];
  if (cs.red_cut >= aid.index) return admitted;  // duplicate
  if (cs.red_cut < aid.index - 1) {
    // Creator-FIFO gap: exchange-phase red and green retransmissions come
    // from different members and may interleave out of creator order;
    // park the action until its predecessors arrive.
    red_waiting_.emplace(aid, std::move(a));
    return admitted;
  }
  Action current = std::move(a);
  for (;;) {
    const ActionId cid = current.id;
    cs.red_cut = cid.index;
    // try_emplace + assign (not insert_or_assign) so a body re-admitted
    // after a green-during-gap keeps the green position it already earned.
    auto [it, _] = store_.try_emplace(cid);
    it->second.body = std::move(current);
    admitted.push_back(&it->second.body);
    auto next = red_waiting_.find(ActionId{aid.server_id, cs.red_cut + 1});
    if (next == red_waiting_.end()) break;
    current = std::move(next->second);
    red_waiting_.erase(next);
  }
  return admitted;
}

ActionLog::GreenResult ActionLog::mark_green(Action&& a) {
  GreenResult res;
  const ActionId aid = a.id;
  res.newly_red = mark_red(std::move(a));
  if (is_green(aid)) return res;  // duplicate: position stays 0
  ++green_count_;
  green_seq_.push_back(aid);
  CreatorState& cs = creators_[aid.server_id];
  cs.green_red_cut = std::max(cs.green_red_cut, aid.index);
  // The action may have been parked (gap) rather than admitted red; the
  // green order still needs its body in the store, so mirror the parked
  // copy there (mark_red consumed the argument).
  auto it = store_.find(aid);
  if (it == store_.end()) {
    auto parked = red_waiting_.find(aid);
    if (parked != red_waiting_.end()) {
      it = store_.try_emplace(aid, StoredAction{parked->second, 0}).first;
    }
  }
  if (it != store_.end()) it->second.green_pos = green_count_;
  res.position = green_count_;
  return res;
}

const Action* ActionLog::body_of(const ActionId& id) const {
  auto it = store_.find(id);
  return it == store_.end() ? nullptr : &it->second.body;
}

const Action* ActionLog::green_body_at(std::int64_t position) const {
  const ActionId id = green_action_at(position);
  return id.server_id == kNoNode ? nullptr : body_of(id);
}

ActionId ActionLog::green_action_at(std::int64_t position) const {
  if (position <= white_count_ || position > green_count_) return ActionId{};
  const std::size_t idx =
      green_head_ + static_cast<std::size_t>(position - white_count_ - 1);
  // An adopted prefix has no per-position ids; never index out of range.
  if (idx >= green_seq_.size()) return ActionId{};
  return green_seq_[idx];
}

std::int64_t ActionLog::position_of(const ActionId& id) const {
  auto it = store_.find(id);
  return it == store_.end() ? 0 : it->second.green_pos;
}

std::size_t ActionLog::red_count() const {
  std::size_t n = 0;
  for (const auto& [c, cs] : creators_) {
    if (cs.red_cut > cs.green_red_cut) {
      n += static_cast<std::size_t>(cs.red_cut - cs.green_red_cut);
    }
  }
  return n;
}

std::int64_t ActionLog::red_cut(NodeId creator) const {
  auto it = creators_.find(creator);
  return it == creators_.end() ? 0 : it->second.red_cut;
}

std::int64_t ActionLog::green_red_cut(NodeId creator) const {
  auto it = creators_.find(creator);
  return it == creators_.end() ? 0 : it->second.green_red_cut;
}

std::vector<NodeId> ActionLog::sorted_creators() const {
  std::vector<NodeId> v;
  v.reserve(creators_.size());
  for (const auto& [c, cs] : creators_) v.push_back(c);
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<std::pair<NodeId, std::int64_t>> ActionLog::red_cut_pairs() const {
  std::vector<std::pair<NodeId, std::int64_t>> v;
  v.reserve(creators_.size());
  for (NodeId c : sorted_creators()) v.emplace_back(c, creators_.at(c).red_cut);
  return v;
}

std::vector<std::pair<NodeId, std::int64_t>> ActionLog::green_red_cut_pairs() const {
  std::vector<std::pair<NodeId, std::int64_t>> v;
  v.reserve(creators_.size());
  for (NodeId c : sorted_creators()) v.emplace_back(c, creators_.at(c).green_red_cut);
  return v;
}

std::vector<ActionId> ActionLog::pending_red_ids() const {
  std::vector<ActionId> ids;
  for (NodeId c : sorted_creators()) {
    const CreatorState& cs = creators_.at(c);
    for (std::int64_t i = cs.green_red_cut + 1; i <= cs.red_cut; ++i) {
      ids.push_back(ActionId{c, i});
    }
  }
  return ids;
}

void ActionLog::for_each_pending_red(const std::function<void(const Action&)>& fn) const {
  for (NodeId c : sorted_creators()) {
    const CreatorState& cs = creators_.at(c);
    for (std::int64_t i = cs.green_red_cut + 1; i <= cs.red_cut; ++i) {
      if (const Action* b = body_of(ActionId{c, i})) fn(*b);
    }
  }
}

std::size_t ActionLog::trim_white_to(std::int64_t white_line) {
  std::size_t trimmed = 0;
  while (white_count_ < white_line && green_head_ < green_seq_.size()) {
    const ActionId aid = green_seq_[green_head_++];
    ++white_count_;
    store_.erase(aid);
    ++trimmed;
  }
  compact_green_seq();
  return trimmed;
}

void ActionLog::compact_green_seq() {
  // Amortized O(1): release the trimmed prefix once it dominates the
  // vector, keeping position lookup a plain offset index in between.
  if (green_head_ >= 64 && green_head_ * 2 >= green_seq_.size()) {
    green_seq_.erase(green_seq_.begin(),
                     green_seq_.begin() + static_cast<std::ptrdiff_t>(green_head_));
    green_head_ = 0;
  }
}

void ActionLog::reset(std::int64_t green_count,
                      const std::vector<std::pair<NodeId, std::int64_t>>& green_red_cut) {
  green_count_ = white_count_ = green_count;
  green_seq_.clear();
  green_head_ = 0;
  store_.clear();
  red_waiting_.clear();
  creators_.clear();
  for (const auto& [c, v] : green_red_cut) creators_[c] = CreatorState{v, v};
}

void ActionLog::adopt_green_prefix(
    std::int64_t green_count,
    const std::vector<std::pair<NodeId, std::int64_t>>& green_red_cut) {
  green_count_ = green_count;
  white_count_ = green_count;
  green_seq_.clear();
  green_head_ = 0;
  for (const auto& [c, v] : green_red_cut) {
    CreatorState& cs = creators_[c];
    cs.green_red_cut = std::max(cs.green_red_cut, v);
    cs.red_cut = std::max(cs.red_cut, v);
  }
  // Bodies and parked retransmissions the adopted prefix covers are dead:
  // green-by-position retransmission below our white line is impossible
  // (the exchange falls back to a catch-up transfer), and covered indices
  // can never be pending reds again.
  for (auto it = store_.begin(); it != store_.end();) {
    it = is_green(it->first) ? store_.erase(it) : std::next(it);
  }
  for (auto it = red_waiting_.begin(); it != red_waiting_.end();) {
    it = is_green(it->first) ? red_waiting_.erase(it) : std::next(it);
  }
}

bool ActionLog::replay_green(std::int64_t position, const Action& a) {
  if (position != green_count_ + 1) return false;  // duplicate / out of order
  ++green_count_;
  green_seq_.push_back(a.id);
  CreatorState& cs = creators_[a.id.server_id];
  cs.green_red_cut = std::max(cs.green_red_cut, a.id.index);
  cs.red_cut = std::max(cs.red_cut, a.id.index);
  auto [it, _] = store_.try_emplace(a.id);
  it->second.body = a;
  it->second.green_pos = green_count_;
  return true;
}

}  // namespace tordb::core
