#include "core/replication_engine.h"

#include <algorithm>
#include <cassert>

#include "util/log.h"

namespace tordb::core {

namespace {
bool contains(const std::vector<NodeId>& v, NodeId n) {
  return std::find(v.begin(), v.end(), n) != v.end();
}

void insert_sorted(std::vector<NodeId>& v, NodeId n) {
  v.insert(std::upper_bound(v.begin(), v.end(), n), n);
}

void erase_value(std::vector<NodeId>& v, NodeId n) {
  v.erase(std::remove(v.begin(), v.end(), n), v.end());
}
}  // namespace

std::string to_string(EngineState s) {
  switch (s) {
    case EngineState::kNonPrim: return "NonPrim";
    case EngineState::kRegPrim: return "RegPrim";
    case EngineState::kTransPrim: return "TransPrim";
    case EngineState::kExchangeStates: return "ExchangeStates";
    case EngineState::kExchangeActions: return "ExchangeActions";
    case EngineState::kConstruct: return "Construct";
    case EngineState::kNo: return "No";
    case EngineState::kUn: return "Un";
    case EngineState::kLeft: return "Left";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Construction / recovery
// ---------------------------------------------------------------------------

ReplicationEngine::ReplicationEngine(Network& net, StableStorage& storage, NodeId id,
                                     std::vector<NodeId> initial_servers, EngineParams params,
                                     EngineCallbacks callbacks)
    : net_(net),
      sim_(net.sim()),
      storage_(storage),
      id_(id),
      params_(std::move(params)),
      callbacks_(std::move(callbacks)),
      quorum_(params_.weights, params_.quorum_mode),
      alive_(std::make_shared<bool>(true)) {
  init_obs();
  init_members(initial_servers);
  trace_engine_start(0);
  construct_gc(0);
}

ReplicationEngine::ReplicationEngine(Network& net, StableStorage& storage, NodeId id,
                                     const SnapshotMessage& snapshot, EngineParams params,
                                     EngineCallbacks callbacks)
    : net_(net),
      sim_(net.sim()),
      storage_(storage),
      id_(id),
      params_(std::move(params)),
      callbacks_(std::move(callbacks)),
      quorum_(params_.weights, params_.quorum_mode),
      alive_(std::make_shared<bool>(true)) {
  init_obs();
  adopt_snapshot(snapshot, /*set_prim=*/true);
  // §5.2 line 28: the joiner's green line is the position of its
  // PERSISTENT_JOIN action, inherited with the snapshot.
  green_lines_[id_] = log_.green_count();
  // Persist the inherited state so a crash after joining recovers it.
  DbSnapshotRecord rec;
  rec.db_snapshot = snapshot.db_snapshot;
  rec.green_count = log_.green_count();
  rec.green_red_cut = log_.green_red_cut_pairs();
  rec.meta = current_meta();
  storage_.append(encode_log_db_snapshot(rec));
  storage_.sync([] {});
  trace_engine_start(2);
  construct_gc(0);
}

ReplicationEngine::ReplicationEngine(Network& net, StableStorage& storage, NodeId id, RecoverTag,
                                     std::vector<NodeId> fallback_servers, EngineParams params,
                                     EngineCallbacks callbacks)
    : net_(net),
      sim_(net.sim()),
      storage_(storage),
      id_(id),
      params_(std::move(params)),
      callbacks_(std::move(callbacks)),
      quorum_(params_.weights, params_.quorum_mode),
      alive_(std::make_shared<bool>(true)) {
  init_obs();
  recover_from_log(fallback_servers);
}

ReplicationEngine::~ReplicationEngine() { *alive_ = false; }

void ReplicationEngine::init_obs() {
  if (params_.trace_bus) {
    tracer_ = obs::Tracer(params_.trace_bus, id_);
    params_.gc.tracer = tracer_;  // construct_gc copies params_.gc
  }
  if (params_.metrics) {
    green_latency_hist_ = &params_.metrics->histogram("engine.green_latency_ms");
    view_change_hist_ = &params_.metrics->histogram("engine.view_change_ms");
    metric_green_ = &params_.metrics->counter("engine.actions_green");
    metric_red_ = &params_.metrics->counter("engine.actions_red");
    metric_installs_ = &params_.metrics->counter("engine.primaries_installed");
    metric_announce_sent_ = &params_.metrics->counter("engine.announce.sent");
    metric_announce_recv_ = &params_.metrics->counter("engine.announce.received");
    metric_announce_supp_ = &params_.metrics->counter("engine.announce.suppressed");
  }
}

void ReplicationEngine::set_state(EngineState next) {
  if (next == state_) return;
  if (tracer_) {
    tracer_.emit(obs::EventKind::kStateTransition, static_cast<std::int64_t>(state_),
                 static_cast<std::int64_t>(next));
  }
  state_ = next;
}

void ReplicationEngine::trace_engine_start(std::int64_t mode) {
  if (!tracer_) return;
  tracer_.emit(obs::EventKind::kEngineStart, log_.green_count(), mode);
  tracer_.emit(obs::EventKind::kMemberReset);
  for (NodeId s : server_set_) {
    tracer_.emit(obs::EventKind::kMemberAdd, static_cast<std::int64_t>(s));
  }
}

void ReplicationEngine::init_members(const std::vector<NodeId>& servers) {
  server_set_ = servers;
  std::sort(server_set_.begin(), server_set_.end());
  for (NodeId s : server_set_) {
    log_.ensure_creator(s);
    green_lines_[s] = 0;
  }
  // The founding configuration is the first "primary component": dynamic
  // linear voting starts from a majority of the full initial set.
  prim_.prim_index = 0;
  prim_.attempt_index = 0;
  prim_.servers = server_set_;
}

void ReplicationEngine::construct_gc(std::int64_t initial_counter) {
  gc::Listener listener;
  listener.on_regular_config = [this](const gc::Configuration& c) { on_regular_config(c); };
  listener.on_transitional_config = [this](const gc::Configuration& c) {
    on_transitional_config(c);
  };
  listener.on_deliver = [this](const gc::Delivery& d) { on_deliver(d); };
  gc_ = std::make_unique<gc::GroupCommunication>(net_, id_, std::move(listener), initial_counter,
                                                 params_.gc);
}

void ReplicationEngine::recover_from_log(const std::vector<NodeId>& fallback_servers) {
  // Appendix A, Recover: rebuild state from stable storage, re-mark own
  // unordered actions red, and start in NonPrim. The vulnerable record comes
  // back exactly as it was forced — a server that crashed while vulnerable
  // recovers vulnerable and cannot help form a primary component until the
  // exchange protocol resolves its attempt (paper §5).
  init_members(fallback_servers);
  std::int64_t gc_counter = 0;
  std::vector<Action> ongoing_candidates;

  for (const Bytes& rec : storage_.recover_records()) {
    BufReader r(rec);
    const auto type = static_cast<LogRecordType>(r.u8());
    switch (type) {
      case LogRecordType::kDbSnapshot: {
        DbSnapshotRecord s = decode_db_snapshot(r);
        db_.restore(s.db_snapshot);
        log_.reset(s.green_count, s.green_red_cut);
        server_set_ = s.meta.server_set;
        prim_ = s.meta.prim;
        attempt_index_ = s.meta.attempt_index;
        vulnerable_ = s.meta.vulnerable;
        yellow_ = s.meta.yellow;
        green_lines_.clear();
        for (const auto& [n, g] : s.meta.green_lines) green_lines_[n] = g;
        gc_counter = std::max(gc_counter, s.meta.gc_counter);
        ongoing_candidates.clear();
        for (const Action& a : s.red_actions) log_.mark_red(a);
        for (const Action& a : s.ongoing_actions) ongoing_candidates.push_back(a);
        break;
      }
      case LogRecordType::kMeta: {
        MetaRecord m = decode_meta(r);
        server_set_ = m.server_set;
        prim_ = m.prim;
        attempt_index_ = m.attempt_index;
        vulnerable_ = m.vulnerable;
        yellow_ = m.yellow;
        for (const auto& [n, g] : m.green_lines) {
          std::int64_t& v = green_lines_[n];
          v = std::max(v, g);
        }
        gc_counter = std::max(gc_counter, m.gc_counter);
        break;
      }
      case LogRecordType::kGreen: {
        const std::int64_t pos = r.i64();
        Action a = Action::decode(r);
        if (!log_.replay_green(pos, a)) break;  // duplicate / out of order
        if (a.type == ActionType::kUpdate) {
          db_.apply(a.query, a.update);
        } else if (a.type == ActionType::kPersistentJoin) {
          if (!contains(server_set_, a.subject)) {
            insert_sorted(server_set_, a.subject);
            green_lines_[a.subject] = log_.green_count();
          }
        } else if (a.type == ActionType::kPersistentLeave) {
          erase_value(server_set_, a.subject);
          green_lines_.erase(a.subject);
          erase_value(prim_.servers, a.subject);
        }
        break;
      }
      case LogRecordType::kRed: {
        log_.mark_red(Action::decode(r));
        break;
      }
      case LogRecordType::kOngoing: {
        ongoing_candidates.push_back(Action::decode(r));
        break;
      }
      case LogRecordType::kOngoingBatch: {
        for (Action& a : decode_action_batch(r)) ongoing_candidates.push_back(std::move(a));
        break;
      }
    }
  }

  // A.13: re-mark red the own actions that were forced but never ordered.
  std::sort(ongoing_candidates.begin(), ongoing_candidates.end(),
            [](const Action& a, const Action& b) { return a.id < b.id; });
  for (const Action& a : ongoing_candidates) {
    action_index_ = std::max(action_index_, a.id.index);
    if (log_.red_cut(id_) < a.id.index) mark_red(a);
  }
  action_index_ = std::max({action_index_, log_.red_cut(id_), log_.green_red_cut(id_)});
  green_lines_[id_] = log_.green_count();
  set_state(EngineState::kNonPrim);
  append_meta();
  storage_.sync([] {});
  trace_engine_start(1);
  construct_gc(gc_counter + 1);
}

void ReplicationEngine::adopt_snapshot(const SnapshotMessage& s, bool set_prim) {
  db_.restore(s.db_snapshot);
  if (tracer_) {
    tracer_.emit(obs::EventKind::kStateTransferApply, s.green_count);
    tracer_.emit(obs::EventKind::kMemberReset);
    for (NodeId n : s.server_set) {
      tracer_.emit(obs::EventKind::kMemberAdd, static_cast<std::int64_t>(n));
    }
  }
  // The log adopts the green prefix wholesale; pending reds the prefix
  // swallowed (now green) drop out of the pending set automatically, and
  // parked retransmissions the prefix unblocks are admitted red here.
  for (const Action* r : log_.adopt_green_prefix(s.green_count, s.green_red_cut)) {
    on_newly_red(*r);
  }
  server_set_ = s.server_set;
  for (const auto& [n, g] : s.green_lines) {
    std::int64_t& v = green_lines_[n];
    v = std::max(v, g);
  }
  if (set_prim) prim_ = s.prim;
  // Own in-flight actions the snapshot already ordered are settled, in
  // ActionId order (sorted packed keys) so reply ordering stays
  // deterministic despite the flat table's unspecified iteration order.
  std::vector<std::uint64_t> settled;
  ongoing_.for_each([&](std::uint64_t key, const Bytes&) {
    if (is_green(unpack_action_id(key))) settled.push_back(key);
  });
  std::sort(settled.begin(), settled.end());
  for (const std::uint64_t key : settled) {
    if (PendingReply* pit = pending_replies_.find(key)) {
      // Ordered inside the transferred prefix; the per-action result is
      // not recoverable from a state transfer, so acknowledge commit.
      Reply rep;
      rep.action = unpack_action_id(key);
      auto fn = std::move(pit->fn);
      pending_replies_.erase(key);
      ++stats_.replies;
      if (fn) fn(rep);
    }
    ongoing_.erase(key);
  }
}

// ---------------------------------------------------------------------------
// Client interface
// ---------------------------------------------------------------------------

Action ReplicationEngine::make_action(ActionType type, db::Command query, db::Command update,
                                      std::int64_t client, Semantics semantics, NodeId subject) {
  Action a;
  a.type = type;
  a.id = ActionId{id_, ++action_index_};
  a.green_line = log_.green_count();
  // The action piggybacks our green line to the whole component, so a
  // pending announcement token for the same (or an older) line is moot.
  last_announced_green_ = std::max(last_announced_green_, a.green_line);
  a.client = client;
  a.semantics = semantics;
  a.query = std::move(query);
  a.update = std::move(update);
  a.subject = subject;
  a.padding = type == ActionType::kUpdate ? params_.action_padding : 0;
  ++stats_.actions_created;
  if (tracer_) {
    tracer_.emit_action(obs::EventKind::kActionSubmitted, a.id,
                        static_cast<std::int64_t>(semantics), static_cast<std::int64_t>(type));
  }
  if (green_latency_hist_ != nullptr) submit_times_[pack_action_id(a.id)] = sim_.now();
  return a;
}

void ReplicationEngine::persist_and_send(std::vector<Action> actions) {
  // A.1 / A.2 / A.8: write to ongoingQueue, one forced sync (shared by all
  // actions created in this batch — and, via group commit, with concurrent
  // batches), then hand to the group communication. Multi-action batches
  // (buffered requests flushing together) are framed as one log record and
  // one multicast instead of per-action records and messages.
  if (actions.empty()) return;
  if (actions.size() == 1) {
    // Single-action fast path (the steady-state shape): one log record, one
    // wire, and a sync callback that fits SmallFn's inline slot — the whole
    // persist pipeline allocates only the wire buffer itself.
    const Action& a = actions.front();
    const Bytes& body = encoded_body(a);
    ongoing_[pack_action_id(a.id)] = body;
    storage_.append_framed(static_cast<std::uint8_t>(LogRecordType::kOngoing), body);
    Bytes wire;
    wire.reserve(1 + body.size());
    wire.push_back(static_cast<std::uint8_t>(EngineMsgType::kAction));
    wire.insert(wire.end(), body.begin(), body.end());
    storage_.sync([this, alive = alive_, wire = std::move(wire)]() mutable {
      if (!*alive || state_ == EngineState::kLeft) return;
      gc_->multicast(std::move(wire), gc::Service::kSafe);
    });
    return;
  }
  const bool batched = params_.batch_persist && actions.size() > 1;
  // Encode each body exactly once: the ongoing-queue entry, the log record
  // and the multicast wire all share the same canonical bytes. The wires
  // are framed here (not in the sync callback) so the callback only moves
  // pre-built buffers into the gc layer.
  std::vector<Bytes> wires;
  if (batched) {
    for (const Action& a : actions) {
      ongoing_[pack_action_id(a.id)] = encode_action_body(a);
    }
    storage_.append(encode_log_ongoing_batch(actions));
    wires.push_back(encode_action_batch(actions));
    ++stats_.persist_batches;
    stats_.persist_batch_actions += actions.size();
    stats_.persist_batch_max = std::max(stats_.persist_batch_max,
                                        static_cast<std::uint64_t>(actions.size()));
  } else {
    wires.reserve(actions.size());
    for (const Action& a : actions) {
      const Bytes& body = encoded_body(a);
      ongoing_[pack_action_id(a.id)] = body;
      storage_.append_framed(static_cast<std::uint8_t>(LogRecordType::kOngoing), body);
      Bytes wire;
      wire.reserve(1 + body.size());
      wire.push_back(static_cast<std::uint8_t>(EngineMsgType::kAction));
      wire.insert(wire.end(), body.begin(), body.end());
      wires.push_back(std::move(wire));
    }
  }
  storage_.sync([this, alive = alive_, wires = std::move(wires)]() mutable {
    if (!*alive || state_ == EngineState::kLeft) return;
    for (Bytes& w : wires) gc_->multicast(std::move(w), gc::Service::kSafe);
  });
}

void ReplicationEngine::submit(db::Command query, db::Command update, std::int64_t client,
                               Semantics semantics, ReplyFn reply) {
  if (state_ == EngineState::kLeft) {
    Reply rep;
    rep.aborted = true;
    if (reply) reply(rep);
    return;
  }
  if (state_ == EngineState::kRegPrim || state_ == EngineState::kNonPrim) {
    Action a = make_action(ActionType::kUpdate, std::move(query), std::move(update), client,
                           semantics, kNoNode);
    if (reply) {
      pending_replies_[pack_action_id(a.id)] = PendingReply{semantics, std::move(reply)};
    }
    persist_and_send({std::move(a)});
  } else {
    buffered_requests_.push_back(BufferedRequest{ActionType::kUpdate, std::move(query),
                                                 std::move(update), client, semantics, kNoNode,
                                                 std::move(reply)});
  }
}

void ReplicationEngine::submit_query(db::Command query, QueryMode mode, ReplyFn reply) {
  Reply rep;
  switch (mode) {
    case QueryMode::kWeak: {
      // §6: consistent but possibly obsolete — answered from the green
      // state even in a non-primary component.
      auto res = db_.peek(query);
      rep.aborted = res.aborted;
      rep.reads = std::move(res.reads);
      ++stats_.replies;
      if (reply) reply(rep);
      return;
    }
    case QueryMode::kDirty: {
      // §6: latest local information, red actions included.
      db::Database dirty = dirty_database();
      auto res = dirty.peek(query);
      rep.aborted = res.aborted;
      rep.reads = std::move(res.reads);
      ++stats_.replies;
      if (reply) reply(rep);
      return;
    }
    case QueryMode::kStrict: {
      if (state_ == EngineState::kRegPrim && ongoing_.empty()) {
        auto res = db_.peek(query);
        rep.aborted = res.aborted;
        rep.reads = std::move(res.reads);
        ++stats_.replies;
        if (reply) reply(rep);
      } else {
        pending_strict_queries_.push_back(PendingQuery{std::move(query), std::move(reply)});
      }
      return;
    }
  }
}

void ReplicationEngine::flush_strict_queries() {
  if (state_ != EngineState::kRegPrim || !ongoing_.empty() || pending_strict_queries_.empty()) {
    return;
  }
  std::vector<PendingQuery> ready;
  ready.swap(pending_strict_queries_);
  for (PendingQuery& q : ready) {
    auto res = db_.peek(q.query);
    Reply rep;
    rep.aborted = res.aborted;
    rep.reads = std::move(res.reads);
    ++stats_.replies;
    if (q.fn) q.fn(rep);
  }
}

void ReplicationEngine::handle_join_request(NodeId joiner) {
  if (state_ == EngineState::kLeft) return;
  if (contains(server_set_, joiner)) {
    // §5.1 line 21: the join is already green here; resume the transfer.
    send_snapshot_to(joiner);
    return;
  }
  if (pending_join_transfers_.count(joiner)) return;  // announcement in flight
  pending_join_transfers_.insert(joiner);
  if (state_ == EngineState::kRegPrim || state_ == EngineState::kNonPrim) {
    Action a = make_action(ActionType::kPersistentJoin, {}, {}, 0, Semantics::kStrict, joiner);
    persist_and_send({std::move(a)});
  } else {
    buffered_requests_.push_back(BufferedRequest{ActionType::kPersistentJoin, {}, {}, 0,
                                                 Semantics::kStrict, joiner, nullptr});
  }
}

void ReplicationEngine::request_leave() { remove_replica(id_); }

void ReplicationEngine::remove_replica(NodeId dead) {
  if (state_ == EngineState::kLeft) return;
  if (state_ == EngineState::kRegPrim || state_ == EngineState::kNonPrim) {
    Action a = make_action(ActionType::kPersistentLeave, {}, {}, 0, Semantics::kStrict, dead);
    persist_and_send({std::move(a)});
  } else {
    buffered_requests_.push_back(BufferedRequest{ActionType::kPersistentLeave, {}, {}, 0,
                                                 Semantics::kStrict, dead, nullptr});
  }
}

void ReplicationEngine::handle_buffered_requests() {
  if (buffered_requests_.empty()) {
    flush_strict_queries();
    return;
  }
  std::vector<Action> actions;
  while (!buffered_requests_.empty()) {
    BufferedRequest req = std::move(buffered_requests_.front());
    buffered_requests_.pop_front();
    Action a = make_action(req.type, std::move(req.query), std::move(req.update), req.client,
                           req.semantics, req.subject);
    if (req.reply) {
      pending_replies_[pack_action_id(a.id)] = PendingReply{req.semantics, std::move(req.reply)};
    }
    actions.push_back(std::move(a));
  }
  persist_and_send(std::move(actions));
  flush_strict_queries();
}

// ---------------------------------------------------------------------------
// Group communication events
// ---------------------------------------------------------------------------

void ReplicationEngine::on_transitional_config(const gc::Configuration& conf) {
  (void)conf;
  switch (state_) {
    case EngineState::kRegPrim:
      set_state(EngineState::kTransPrim);  // A.2
      break;
    case EngineState::kExchangeStates:
    case EngineState::kExchangeActions:
      set_state(EngineState::kNonPrim);  // A.4 / A.6
      break;
    case EngineState::kConstruct:
      set_state(EngineState::kNo);  // A.9
      break;
    case EngineState::kNonPrim:  // A.1: ignore
    default:
      break;
  }
}

void ReplicationEngine::on_regular_config(const gc::Configuration& conf) {
  conf_ = conf;
  switch (state_) {
    case EngineState::kTransPrim:
      // A.3: we processed the primary component to its end; complete
      // knowledge of it is (being) persisted, so we are no longer
      // vulnerable, and the actions caught in the transitional
      // configuration form the yellow set.
      vulnerable_.valid = false;
      yellow_.valid = true;
      shift_to_exchange_states();
      break;
    case EngineState::kNo:
      // A.11: nobody can have installed — some CPC was never received here,
      // so no server received all of them safely in the regular
      // configuration.
      vulnerable_.valid = false;
      shift_to_exchange_states();
      break;
    case EngineState::kNonPrim:
    case EngineState::kUn:  // A.12: still uncertain; stay vulnerable
      shift_to_exchange_states();
      break;
    case EngineState::kRegPrim:
    case EngineState::kExchangeStates:
    case EngineState::kExchangeActions:
    case EngineState::kConstruct:
      // Unreachable: the GC always delivers a transitional configuration
      // first, which moves us out of these states.
      shift_to_exchange_states();
      break;
    case EngineState::kLeft:
      break;
  }
}

void ReplicationEngine::on_deliver(const gc::Delivery& d) {
  if (state_ == EngineState::kLeft) return;
  BufReader r(d.payload.data(), d.payload.size());
  const auto type = static_cast<EngineMsgType>(r.u8());
  switch (type) {
    case EngineMsgType::kAction: {
      Action a = Action::decode(r);
      // The wire payload is [type][body] where [body] is the canonical
      // Action encoding; seed the body-encode cache with those bytes so the
      // red/green log appends this action triggers skip re-encoding it.
      enc_body_.assign(d.payload.begin() + 1, d.payload.end());
      enc_body_id_ = a.id;
      handle_action(std::move(a));
      break;
    }
    case EngineMsgType::kActionBatch: {
      // A batch shares one delivery (and therefore one color decision);
      // members process its actions in batch order.
      for (Action& a : decode_action_batch(r)) handle_action(std::move(a));
      break;
    }
    case EngineMsgType::kState:
      handle_state_msg(StateMessage::decode(r));
      break;
    case EngineMsgType::kCpc: {
      CpcMessage c;
      c.server_id = r.i32();
      c.conf_id = r.config_id();
      handle_cpc(c);
      break;
    }
    case EngineMsgType::kGreenRetrans: {
      const std::int64_t pos = r.i64();
      handle_green_retrans(pos, Action::decode(r));
      break;
    }
    case EngineMsgType::kRedRetrans:
      handle_red_retrans(Action::decode(r));
      break;
    case EngineMsgType::kCatchup:
      handle_catchup(decode_snapshot(r));
      break;
    case EngineMsgType::kAnnounce:
      handle_announce(decode_announce(r));
      break;
  }
}

void ReplicationEngine::handle_action(Action&& a) {
  switch (state_) {
    case EngineState::kRegPrim: {
      // A.2 (OR-1.1): safe delivery in the primary's regular configuration
      // determines the global order immediately.
      const NodeId creator = a.id.server_id;
      const std::int64_t line = a.green_line;
      mark_green(std::move(a));
      std::int64_t& v = green_lines_[creator];
      v = std::max(v, line);
      trim_white();
      break;
    }
    case EngineState::kTransPrim:
      mark_yellow(a);  // A.3
      break;
    case EngineState::kUn:
      // A.12 (1b): an action in Un proves some server installed the primary
      // component and generated actions; act as if installing to stay
      // consistent with it.
      install();
      mark_yellow(a);
      set_state(EngineState::kTransPrim);
      break;
    case EngineState::kNonPrim:
    case EngineState::kExchangeStates:
    case EngineState::kExchangeActions:
      mark_red(std::move(a));  // A.1 / A.4 / A.6
      break;
    case EngineState::kConstruct:
    case EngineState::kNo:
      // The paper marks these "not possible"; with asynchronous disk writes
      // a stray resend can land here — red is always safe.
      mark_red(std::move(a));
      break;
    case EngineState::kLeft:
      break;
  }
}

// ---------------------------------------------------------------------------
// Exchange phase (A.4, A.5, A.6)
// ---------------------------------------------------------------------------

void ReplicationEngine::shift_to_exchange_states() {
  ++stats_.exchanges;
  state_msgs_.clear();
  cpc_received_.clear();
  exchange_plan_ready_ = false;
  expected_retrans_ = 0;
  received_retrans_ = 0;
  effective_vulnerable_.clear();
  set_state(EngineState::kExchangeStates);
  if (tracer_) {
    tracer_.emit(obs::EventKind::kExchangeStart, conf_.id.counter,
                 static_cast<std::int64_t>(conf_.id.coordinator));
  }
  exchange_started_at_ = sim_.now();
  append_meta();
  const ConfigId cid = conf_.id;
  storage_.sync([this, alive = alive_, cid] {
    if (!*alive) return;
    if (state_ != EngineState::kExchangeStates || !(conf_.id == cid)) return;
    StateMessage s;
    s.server_id = id_;
    s.conf_id = conf_.id;
    s.green_count = log_.green_count();
    s.white_count = log_.white_count();
    s.red_cut = log_.red_cut_pairs();
    s.green_red_cut = log_.green_red_cut_pairs();
    s.server_set = server_set_;
    s.attempt_index = attempt_index_;
    s.prim = prim_;
    s.vulnerable = vulnerable_;
    s.yellow = yellow_;
    gc_->multicast(encode_state_msg(s), gc::Service::kAgreed);
  });
}

void ReplicationEngine::handle_state_msg(const StateMessage& s) {
  if (state_ != EngineState::kExchangeStates) return;  // A.1/A.3: ignore
  if (!(s.conf_id == conf_.id)) return;
  state_msgs_[s.server_id] = s;
  for (NodeId m : conf_.members) {
    if (!state_msgs_.count(m)) return;
  }
  shift_to_exchange_actions();
}

void ReplicationEngine::shift_to_exchange_actions() {
  set_state(EngineState::kExchangeActions);

  // Deterministic retransmission plan, computed identically by every member
  // from the identical set of State messages (replacing the turn-based
  // Retrans() of A.4/A.6 — same content, fully parallel).
  std::int64_t min_green = INT64_MAX, max_green = -1;
  NodeId most_updated = kNoNode;
  for (NodeId m : conf_.members) {
    const StateMessage& s = state_msgs_.at(m);
    min_green = std::min(min_green, s.green_count);
    // Among members with the maximal green count, prefer one that still
    // holds action bodies (lower white line) so cheap per-action
    // retransmission beats a full state transfer; then lowest id.
    if (s.green_count > max_green ||
        (s.green_count == max_green &&
         s.white_count < state_msgs_.at(most_updated).white_count)) {
      max_green = s.green_count;
      most_updated = m;
    }
  }
  const StateMessage& holder_msg = state_msgs_.at(most_updated);

  if (max_green > min_green) {
    if (holder_msg.white_count > min_green) {
      // The most updated member inherited its prefix (joined via snapshot)
      // and holds no bodies below its white line: transfer the whole green
      // state instead of individual actions.
      expected_retrans_ += 1;
      if (most_updated == id_) {
        SnapshotMessage snap;
        snap.db_snapshot = db_.snapshot();
        snap.green_count = log_.green_count();
        snap.green_red_cut = log_.green_red_cut_pairs();
        snap.server_set = server_set_;
        snap.green_lines = green_lines_.entries();
        snap.prim = prim_;
        gc_->multicast(encode_catchup(snap), gc::Service::kAgreed);
        ++stats_.snapshots_sent;
      }
    } else {
      expected_retrans_ += max_green - min_green;
      if (most_updated == id_) {
        for (std::int64_t pos = min_green + 1; pos <= max_green; ++pos) {
          const Action* body = log_.green_body_at(pos);
          assert(body != nullptr);
          gc_->multicast(encode_green_retrans(pos, *body), gc::Service::kAgreed);
          ++stats_.green_retrans_sent;
        }
      }
    }
  }

  // Red actions, per creator: the member holding the longest prefix
  // retransmits what others lack (beyond what the green path carries).
  std::set<NodeId> creators;
  for (const auto& [m, s] : state_msgs_) {
    for (const auto& [c, v] : s.red_cut) creators.insert(c);
  }
  auto cut_of = [](const StateMessage& s, NodeId c) {
    for (const auto& [n, v] : s.red_cut) {
      if (n == c) return v;
    }
    return std::int64_t{0};
  };
  auto green_cut_of = [](const StateMessage& s, NodeId c) {
    for (const auto& [n, v] : s.green_red_cut) {
      if (n == c) return v;
    }
    return std::int64_t{0};
  };
  for (NodeId c : creators) {
    std::int64_t cmax = 0, cmin = INT64_MAX;
    NodeId holder = kNoNode;
    for (NodeId m : conf_.members) {
      const std::int64_t v = cut_of(state_msgs_.at(m), c);
      cmin = std::min(cmin, v);
      if (v > cmax || (v == cmax && holder == kNoNode)) {
        cmax = v;
        holder = m;
      }
    }
    if (holder == kNoNode) continue;
    const std::int64_t lo = std::max(cmin, green_cut_of(state_msgs_.at(holder), c));
    if (cmax <= lo) continue;
    expected_retrans_ += cmax - lo;
    if (holder == id_) {
      for (std::int64_t idx = lo + 1; idx <= cmax; ++idx) {
        const Action* body = log_.body_of(ActionId{c, idx});
        assert(body != nullptr);
        gc_->multicast(encode_red_retrans(*body), gc::Service::kAgreed);
        ++stats_.red_retrans_sent;
      }
    }
  }

  exchange_plan_ready_ = true;
  maybe_end_of_retrans();
}

void ReplicationEngine::handle_green_retrans(std::int64_t position, const Action& a) {
  ++stats_.retrans_received;
  ++received_retrans_;
  if (position == log_.green_count() + 1) mark_green(a);
  maybe_end_of_retrans();
}

void ReplicationEngine::handle_red_retrans(const Action& a) {
  ++stats_.retrans_received;
  ++received_retrans_;
  mark_red(a);
  maybe_end_of_retrans();
}

void ReplicationEngine::handle_catchup(const SnapshotMessage& s) {
  ++stats_.retrans_received;
  ++received_retrans_;
  if (s.green_count > log_.green_count()) {
    adopt_snapshot(s, /*set_prim=*/false);
    // Persist the adopted prefix as a compaction record so recovery does
    // not mix the old per-action log with the jumped green count.
    DbSnapshotRecord rec;
    rec.db_snapshot = s.db_snapshot;
    rec.green_count = log_.green_count();
    rec.green_red_cut = log_.green_red_cut_pairs();
    rec.meta = current_meta();
    log_.for_each_pending_red([&](const Action& a2) { rec.red_actions.push_back(a2); });
    rec.ongoing_actions = sorted_ongoing();
    storage_.append(encode_log_db_snapshot(rec));
    green_lines_[id_] = log_.green_count();
    maybe_arm_announce();
  }
  maybe_end_of_retrans();
}

void ReplicationEngine::maybe_end_of_retrans() {
  if (state_ != EngineState::kExchangeActions || !exchange_plan_ready_) return;
  if (received_retrans_ < expected_retrans_) return;
  end_of_retrans();
}

void ReplicationEngine::end_of_retrans() {
  // A.5 End_of_retrans: incorporate green lines, compute knowledge, decide.
  for (const auto& [m, s] : state_msgs_) {
    std::int64_t& g = green_lines_[m];
    g = std::max(g, s.green_count);
  }
  compute_knowledge();
  trim_white();

  if (is_quorum()) {
    ++attempt_index_;
    vulnerable_.valid = true;
    vulnerable_.prim_index = prim_.prim_index;
    vulnerable_.attempt_index = attempt_index_;
    vulnerable_.set = conf_.members;
    vulnerable_.bits.assign(conf_.members.size(), false);
    set_state(EngineState::kConstruct);
    append_meta();
    const ConfigId cid = conf_.id;
    storage_.sync([this, alive = alive_, cid] {
      if (!*alive) return;
      if (state_ != EngineState::kConstruct || !(conf_.id == cid)) return;
      CpcMessage c{id_, conf_.id};
      gc_->multicast(encode_cpc_msg(c), gc::Service::kSafe);
      ++stats_.cpc_sent;
    });
  } else {
    set_state(EngineState::kNonPrim);
    append_meta();
    storage_.sync([] {});
    handle_buffered_requests();
  }
}

void ReplicationEngine::compute_knowledge() {
  // A.7 step 1: adopt the most advanced primary component knowledge.
  std::pair<std::int64_t, std::int64_t> best{-1, -1};
  for (const auto& [m, s] : state_msgs_) {
    best = std::max(best, {s.prim.prim_index, s.prim.attempt_index});
  }
  std::vector<NodeId> updated_group;
  std::vector<NodeId> valid_group;
  std::int64_t max_attempt = 0;
  for (const auto& [m, s] : state_msgs_) {
    if (std::pair{s.prim.prim_index, s.prim.attempt_index} == best) {
      updated_group.push_back(m);
      prim_ = s.prim;
      max_attempt = std::max(max_attempt, s.attempt_index);
      if (s.yellow.valid) valid_group.push_back(m);
    }
  }
  attempt_index_ = max_attempt;
  // The adopted record may predate PERSISTENT_LEAVEs that the exchange just
  // retransmitted to us as greens; re-apply them so departed members never
  // count toward the voting denominator. Every member runs this against the
  // same post-exchange server set, so the result stays identical everywhere.
  std::vector<NodeId> still_members;
  for (NodeId s : prim_.servers) {
    if (contains(server_set_, s)) still_members.push_back(s);
  }
  prim_.servers = std::move(still_members);

  // A.7 step 2: the yellow set becomes the intersection of the valid
  // members' yellow sets, in their transitional delivery order.
  if (!valid_group.empty()) {
    YellowRecord merged;
    merged.valid = true;
    for (const ActionId& aid : state_msgs_.at(valid_group.front()).yellow.set) {
      bool in_all = true;
      for (NodeId v : valid_group) {
        const auto& set = state_msgs_.at(v).yellow.set;
        if (std::find(set.begin(), set.end(), aid) == set.end()) {
          in_all = false;
          break;
        }
      }
      if (in_all) merged.set.push_back(aid);
    }
    yellow_ = std::move(merged);
  } else {
    yellow_ = YellowRecord{};
  }

  // A.7 step 3: invalidate vulnerable records that the exchanged knowledge
  // proves moot (superseded attempt, or a co-attempter that resolved it).
  std::map<NodeId, VulnerableRecord> eff;
  for (const auto& [m, s] : state_msgs_) eff[m] = s.vulnerable;
  for (auto& [m, v] : eff) {
    if (!v.valid) continue;
    bool invalidate = !contains(prim_.servers, m);
    if (!invalidate) {
      for (NodeId j : v.set) {
        auto it = state_msgs_.find(j);
        if (it == state_msgs_.end()) continue;
        const VulnerableRecord& jv = it->second.vulnerable;
        if (!jv.valid || jv.prim_index != v.prim_index ||
            jv.attempt_index != v.attempt_index) {
          invalidate = true;
          break;
        }
      }
    }
    if (invalidate) v.valid = false;
  }

  // A.7 step 4: union the CPC bits of servers vulnerable to the same
  // attempt; complete bits mean the attempt's fate is collectively known.
  for (auto& [m, v] : eff) {
    if (!v.valid) continue;
    std::vector<bool> unioned = v.bits;
    for (const auto& [m2, v2] : eff) {
      if (!v2.valid || v2.prim_index != v.prim_index ||
          v2.attempt_index != v.attempt_index || v2.set != v.set) {
        continue;
      }
      for (std::size_t i = 0; i < unioned.size() && i < v2.bits.size(); ++i) {
        if (v2.bits[i]) unioned[i] = true;
      }
    }
    bool all = !unioned.empty();
    for (bool b : unioned) all = all && b;
    v.bits = std::move(unioned);
    if (all) v.valid = false;
  }

  effective_vulnerable_.clear();
  for (const auto& [m, v] : eff) effective_vulnerable_[m] = v.valid;
  vulnerable_ = eff.at(id_);
}

bool ReplicationEngine::is_quorum() const {
  // A.8: nobody in the view may still be vulnerable, and the view must hold
  // a (weighted) majority of the last primary component.
  for (NodeId m : conf_.members) {
    auto it = effective_vulnerable_.find(m);
    if (it != effective_vulnerable_.end() && it->second) return false;
  }
  return quorum_.is_majority(conf_.members, prim_, server_set_);
}

// ---------------------------------------------------------------------------
// Construct / install (A.9, A.10, A.11, A.12)
// ---------------------------------------------------------------------------

void ReplicationEngine::handle_cpc(const CpcMessage& c) {
  if (!(c.conf_id == conf_.id)) return;
  cpc_received_.insert(c.server_id);
  if (tracer_) {
    tracer_.emit(obs::EventKind::kQuorumVote, c.conf_id.counter,
                 static_cast<std::int64_t>(c.conf_id.coordinator),
                 static_cast<std::int64_t>(c.server_id));
  }
  if (vulnerable_.valid) vulnerable_.set_bit(c.server_id);
  if (state_ == EngineState::kConstruct) {
    check_construct_complete();
  } else if (state_ == EngineState::kNo) {
    // A.11: all CPCs arrived, but some only in the transitional
    // configuration — someone may have installed. Undecided.
    bool all = true;
    for (NodeId m : conf_.members) {
      if (!cpc_received_.count(m)) {
        all = false;
        break;
      }
    }
    if (all) set_state(EngineState::kUn);
  }
  // A.4: CPC in ExchangeStates is ignored (stale by definition).
}

void ReplicationEngine::check_construct_complete() {
  for (NodeId m : conf_.members) {
    if (!cpc_received_.count(m)) return;
  }
  // A.9: everyone reached the same state during the exchange, so after
  // install all members share this server's green line. (Copy the own line
  // out first: inserting other members may reallocate the flat entries.)
  const std::int64_t own_line = green_lines_[id_];
  for (NodeId m : conf_.members) {
    std::int64_t& v = green_lines_[m];
    v = std::max(v, own_line);
  }
  install();
  set_state(EngineState::kRegPrim);
  handle_buffered_requests();
  flush_strict_queries();
  trim_white();
}

void ReplicationEngine::install() {
  // A.10: yellow actions first (they were delivered in the previous
  // primary's transitional configuration and keep their order), then all
  // remaining red actions in action-id order.
  if (yellow_.valid) {
    for (const ActionId& aid : yellow_.set) {
      if (is_green(aid)) continue;
      if (const Action* body = log_.body_of(aid)) {
        const Action copy = *body;  // mark_green may invalidate `body`
        mark_green(copy);  // OR-1.2
      }
    }
  }
  yellow_ = YellowRecord{};

  prim_.prim_index += 1;
  prim_.attempt_index = attempt_index_;
  prim_.servers = vulnerable_.set;
  attempt_index_ = 0;

  // Pending reds are derived from the per-creator cuts, already in the
  // deterministic ActionId order OR-2 requires.
  for (const ActionId& rid : log_.pending_red_ids()) {
    if (is_green(rid)) continue;  // promoted via the yellow set above
    if (const Action* body = log_.body_of(rid)) {
      const Action copy = *body;
      mark_green(copy);  // OR-2
    }
  }

  ++stats_.primaries_installed;
  if (metric_installs_ != nullptr) metric_installs_->inc();
  if (view_change_hist_ != nullptr && exchange_started_at_ >= 0) {
    view_change_hist_->record((sim_.now() - exchange_started_at_) / 1000000);  // ns -> ms
    exchange_started_at_ = -1;
  }
  if (tracer_) {
    // Membership hash lets the checker compare installations structurally
    // without shipping the member list in one event.
    std::uint64_t h = 1469598103934665603ull;
    for (NodeId m : prim_.servers) {
      h ^= static_cast<std::uint64_t>(m) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    tracer_.emit(obs::EventKind::kPrimaryInstall, prim_.prim_index, prim_.attempt_index,
                 static_cast<std::int64_t>(prim_.servers.size()), static_cast<std::int64_t>(h));
    for (NodeId m : prim_.servers) {
      tracer_.emit(obs::EventKind::kPrimaryMember, prim_.prim_index,
                   static_cast<std::int64_t>(m));
    }
  }
  green_lines_[id_] = log_.green_count();
  maybe_arm_announce();
  append_meta();
  storage_.sync([] {});
}

// ---------------------------------------------------------------------------
// Coloring (A.14, CodeSegment 5.1)
// ---------------------------------------------------------------------------

void ReplicationEngine::on_newly_red(const Action& a) {
  // A.14: persist the red mark; the action is ordered, no longer at risk
  // of loss, so it leaves the ongoing queue and (§6 semantics permitting)
  // the client can be answered.
  storage_.append_framed(static_cast<std::uint8_t>(LogRecordType::kRed), encoded_body(a));
  ++stats_.actions_red;
  if (tracer_) tracer_.emit_action(obs::EventKind::kActionRed, a.id);
  if (metric_red_ != nullptr) metric_red_->inc();
  ongoing_.erase(pack_action_id(a.id));
  maybe_reply_red(a);
}

void ReplicationEngine::mark_red(const Action& a) {
  for (const Action* r : log_.mark_red(a)) on_newly_red(*r);
}

void ReplicationEngine::mark_red(Action&& a) {
  for (const Action* r : log_.mark_red(std::move(a))) on_newly_red(*r);
}

void ReplicationEngine::append_log_green(std::int64_t position, const Bytes& body) {
  // [kGreen][i64 LE position][body] — byte-identical to
  // encode_log_green(position, body) without materializing the record.
  std::uint8_t hdr[9];
  hdr[0] = static_cast<std::uint8_t>(LogRecordType::kGreen);
  for (std::size_t i = 0; i < 8; ++i) {
    hdr[1 + i] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(position) >> (8 * i));
  }
  storage_.append_framed(hdr, sizeof(hdr), body);
}

const Bytes& ReplicationEngine::encoded_body(const Action& a) {
  // An ActionId names one immutable action for the lifetime of the system
  // (the protocol's core invariant), so a cached body can never be stale.
  if (!(enc_body_id_ == a.id)) {
    enc_body_ = encode_action_body(a);
    enc_body_id_ = a.id;
  }
  return enc_body_;
}

void ReplicationEngine::mark_yellow(const Action& a) {
  mark_red(a);
  if (!is_green(a.id) &&
      std::find(yellow_.set.begin(), yellow_.set.end(), a.id) == yellow_.set.end()) {
    yellow_.set.push_back(a.id);
  }
}

void ReplicationEngine::mark_green(const Action& a) {
  const ActionLog::GreenResult res = log_.mark_green(a);
  for (const Action* r : res.newly_red) on_newly_red(*r);
  if (res.position == 0) return;  // duplicate: already green
  green_lines_[id_] = log_.green_count();
  maybe_arm_announce();
  append_log_green(res.position, encoded_body(a));
  ++stats_.actions_green;
  if (tracer_) tracer_.emit_action(obs::EventKind::kActionGreen, a.id, res.position);
  if (metric_green_ != nullptr) metric_green_->inc();
  if (green_latency_hist_ != nullptr) {
    const std::uint64_t key = pack_action_id(a.id);
    if (const SimTime* t = submit_times_.find(key)) {
      green_latency_hist_->record((sim_.now() - *t) / 1000000);  // ns -> ms
      submit_times_.erase(key);
    }
  }
  apply_green(a);
  maybe_compact();
}

void ReplicationEngine::mark_green(Action&& a) {
  const ActionId aid = a.id;
  const ActionLog::GreenResult res = log_.mark_green(std::move(a));
  for (const Action* r : res.newly_red) on_newly_red(*r);
  if (res.position == 0) return;  // duplicate: already green
  // A newly-green action always has its body in the log store; the result
  // carries the stored pointer, versus the deep copy the lvalue path pays.
  const Action& g = res.body != nullptr ? *res.body : *log_.body_of(aid);
  green_lines_[id_] = log_.green_count();
  maybe_arm_announce();
  append_log_green(res.position, encoded_body(g));
  ++stats_.actions_green;
  if (tracer_) tracer_.emit_action(obs::EventKind::kActionGreen, aid, res.position);
  if (metric_green_ != nullptr) metric_green_->inc();
  if (green_latency_hist_ != nullptr) {
    const std::uint64_t key = pack_action_id(aid);
    if (const SimTime* t = submit_times_.find(key)) {
      green_latency_hist_->record((sim_.now() - *t) / 1000000);  // ns -> ms
      submit_times_.erase(key);
    }
  }
  apply_green(g);
  maybe_compact();
}

void ReplicationEngine::apply_green(const Action& a) {
  switch (a.type) {
    case ActionType::kUpdate: {
      const db::ApplyResult res = db_.apply(a.query, a.update);
      if (tracer_ && !res.range_events.empty()) {
        // Stamp each range event with the green position so the checker can
        // order fence/install/write across independent groups (DESIGN.md §9).
        const std::int64_t pos = log_.green_count();
        for (const db::RangeEvent& ev : res.range_events) {
          switch (ev.kind) {
            case db::RangeEvent::Kind::kFence:
              tracer_.emit_action(obs::EventKind::kRangeFence, a.id,
                                  static_cast<std::int64_t>(ev.range), pos);
              break;
            case db::RangeEvent::Kind::kInstall:
              tracer_.emit(obs::EventKind::kRangeInstall, static_cast<std::int64_t>(ev.range),
                           pos, ev.rows);
              break;
            case db::RangeEvent::Kind::kWrite:
              tracer_.emit(obs::EventKind::kRangeWrite, static_cast<std::int64_t>(ev.range),
                           pos);
              break;
            case db::RangeEvent::Kind::kUnfence:
              tracer_.emit(obs::EventKind::kRangeUnfence, static_cast<std::int64_t>(ev.range),
                           pos);
              break;
          }
        }
      }
      if (tracer_ && !res.txn_events.empty()) {
        // Same discipline as range events: stamp each transaction-state
        // transition with the green position so the checker can dedup
        // lagging-replica replays and order prepare/confirm/cancel within
        // the group's own history (DESIGN.md §13).
        const std::int64_t pos = log_.green_count();
        for (const db::TxnEvent& ev : res.txn_events) {
          const obs::EventKind kind = ev.kind == db::TxnEvent::Kind::kPrepare
                                          ? obs::EventKind::kTxnPrepare
                                      : ev.kind == db::TxnEvent::Kind::kConfirm
                                          ? obs::EventKind::kTxnConfirm
                                          : obs::EventKind::kTxnCancel;
          tracer_.emit(kind, static_cast<std::int64_t>(ev.txn), pos);
        }
      }
      if (a.semantics == Semantics::kStrict) reply_green(a, res);
      break;
    }
    case ActionType::kPersistentJoin:
      on_join_green(a);
      break;
    case ActionType::kPersistentLeave:
      on_leave_green(a);
      break;
  }
  flush_strict_queries();
}

void ReplicationEngine::maybe_reply_red(const Action& a) {
  // §6 timestamp/commutative semantics: the client is answered as soon as
  // the action is ordered locally; global convergence follows later.
  if (a.semantics == Semantics::kStrict || a.id.server_id != id_) return;
  const std::uint64_t key = pack_action_id(a.id);
  PendingReply* it = pending_replies_.find(key);
  if (it == nullptr) return;
  Reply rep;
  rep.action = a.id;
  ++stats_.replies;
  auto fn = std::move(it->fn);
  pending_replies_.erase(key);
  if (fn) fn(rep);
}

void ReplicationEngine::reply_green(const Action& a, const db::ApplyResult& result) {
  if (a.id.server_id != id_) return;
  const std::uint64_t key = pack_action_id(a.id);
  PendingReply* it = pending_replies_.find(key);
  if (it == nullptr) return;
  Reply rep;
  rep.action = a.id;
  rep.aborted = result.aborted;
  rep.fenced = result.fenced;
  rep.reads = result.reads;
  ++stats_.replies;
  auto fn = std::move(it->fn);
  pending_replies_.erase(key);
  if (fn) fn(rep);
}

// ---------------------------------------------------------------------------
// Online reconfiguration (CodeSegment 5.1 / 5.2)
// ---------------------------------------------------------------------------

void ReplicationEngine::on_join_green(const Action& a) {
  const NodeId j = a.subject;
  if (!contains(server_set_, j)) {
    insert_sorted(server_set_, j);
    // 5.1 line 7: the joiner's green line is the join action's position.
    green_lines_[j] = log_.green_count();
    if (tracer_) tracer_.emit(obs::EventKind::kMemberAdd, static_cast<std::int64_t>(j));
    if (callbacks_.on_join_green) callbacks_.on_join_green(j);
    if (a.id.server_id == id_ || pending_join_transfers_.count(j)) {
      send_snapshot_to(j);  // 5.1 lines 9-10
    }
  } else if (pending_join_transfers_.count(j)) {
    send_snapshot_to(j);  // duplicate announcement, but we owe a transfer
  }
}

void ReplicationEngine::on_leave_green(const Action& a) {
  const NodeId l = a.subject;
  if (!contains(server_set_, l)) return;
  erase_value(server_set_, l);
  green_lines_.erase(l);
  if (tracer_) tracer_.emit(obs::EventKind::kMemberRemove, static_cast<std::int64_t>(l));
  // Remove the departed member from the dynamic-linear-voting denominator:
  // it can never vote again, and without this a leave of a recent-primary
  // member could block quorum forever — the very failure mode §5.1 says
  // permanent removal exists to prevent. Uniqueness is preserved: the
  // removal happens at the same green position at every replica, and a
  // majority of P\{l} plus a disjoint majority of P would need more
  // members than P has once l itself is gone for good.
  erase_value(prim_.servers, l);
  if (callbacks_.on_leave_green) callbacks_.on_leave_green(l);
  if (l == id_) enter_left();  // 5.1 line 13: exit
}

void ReplicationEngine::send_snapshot_to(NodeId joiner) {
  SnapshotMessage s;
  s.db_snapshot = db_.snapshot();
  s.green_count = log_.green_count();
  s.green_red_cut = log_.green_red_cut_pairs();
  s.server_set = server_set_;
  s.green_lines = green_lines_.entries();
  s.prim = prim_;
  net_.send(id_, joiner, encode_snapshot(s), Channel::kDirect);
  pending_join_transfers_.erase(joiner);
  ++stats_.snapshots_sent;
  if (tracer_) {
    tracer_.emit(obs::EventKind::kStateTransferSend, s.green_count,
                 static_cast<std::int64_t>(joiner));
  }
}

void ReplicationEngine::enter_left() {
  set_state(EngineState::kLeft);
  // Fail any requests that can no longer be served, in ActionId order
  // (sorted packed keys keep the abort replies deterministic).
  std::vector<std::uint64_t> keys;
  pending_replies_.for_each([&](std::uint64_t key, const PendingReply&) { keys.push_back(key); });
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) {
    PendingReply* pending = pending_replies_.find(key);
    if (pending != nullptr && pending->fn) {
      Reply rep;
      rep.action = unpack_action_id(key);
      rep.aborted = true;
      auto fn = std::move(pending->fn);
      fn(rep);
    }
  }
  pending_replies_.clear();
  if (callbacks_.on_left) callbacks_.on_left();
}

// ---------------------------------------------------------------------------
// Housekeeping
// ---------------------------------------------------------------------------

db::Database ReplicationEngine::dirty_database() const {
  db::Database dirty = db_.clone();
  // §6 dirty overlay: pending reds applied over the green state in the
  // deterministic per-creator order the log derives from its cuts (the
  // same order Install would promote them in).
  log_.for_each_pending_red([&](const Action& body) {
    if (body.type == ActionType::kUpdate) dirty.apply(body.update);
  });
  return dirty;
}

std::int64_t ReplicationEngine::white_line() const {
  std::int64_t line = log_.green_count();
  for (NodeId s : server_set_) {
    const std::int64_t* g = green_lines_.find(s);
    line = std::min(line, g == nullptr ? 0 : *g);
  }
  return line;
}

ActionId ReplicationEngine::green_action_at(std::int64_t position) const {
  return log_.green_action_at(position);
}

void ReplicationEngine::trim_white() {
  if (!params_.white_trim) return;
  const std::int64_t line = white_line();
  const auto trimmed = log_.trim_white_to(line);
  stats_.actions_white_trimmed += trimmed;
  if (trimmed > 0 && tracer_) {
    tracer_.emit(obs::EventKind::kWhiteTrim, line, static_cast<std::int64_t>(trimmed));
  }
}

// ---------------------------------------------------------------------------
// Green-line announcements (DESIGN.md §14)
// ---------------------------------------------------------------------------

void ReplicationEngine::maybe_arm_announce() {
  // Lazy one-shot token: arm only when there is something new to say, and
  // let piggybacking (make_action advancing last_announced_green_) win the
  // race. A recurring timer would never let run-until-idle sims quiesce.
  if (params_.announce_interval <= 0 || announce_armed_) return;
  if (log_.green_count() <= last_announced_green_) return;
  announce_armed_ = true;
  sim_.after(params_.announce_interval, [this, alive = alive_] {
    if (!*alive) return;
    announce_armed_ = false;
    fire_announce();
  });
}

void ReplicationEngine::fire_announce() {
  if (state_ == EngineState::kLeft) return;
  if (log_.green_count() <= last_announced_green_) {
    // An originated action carried our line since arming; stay quiet. The
    // next mark_green past the announced line re-arms.
    ++stats_.announces_suppressed;
    if (metric_announce_supp_ != nullptr) metric_announce_supp_->inc();
    return;
  }
  if (state_ != EngineState::kRegPrim && state_ != EngineState::kNonPrim) {
    // Mid-exchange: the membership is in flux and a multicast would land in
    // an unsettled configuration; defer one interval and retry.
    maybe_arm_announce();
    return;
  }
  send_announce();
}

void ReplicationEngine::send_announce() {
  AnnounceMessage m;
  m.server_id = id_;
  m.known = green_lines_.entries();
  last_announced_green_ = log_.green_count();
  ++stats_.announces_sent;
  if (metric_announce_sent_ != nullptr) metric_announce_sent_->inc();
  if (tracer_) {
    tracer_.emit(obs::EventKind::kAnnounceSend, last_announced_green_,
                 static_cast<std::int64_t>(m.known.size()));
  }
  gc_->multicast(encode_announce(m), gc::Service::kAgreed);
}

void ReplicationEngine::handle_announce(const AnnounceMessage& m) {
  ++stats_.announces_received;
  if (metric_announce_recv_ != nullptr) metric_announce_recv_->inc();
  if (tracer_) {
    const std::int64_t* own = nullptr;
    for (const auto& [n, g] : m.known) {
      if (n == m.server_id) own = &g;
    }
    tracer_.emit(obs::EventKind::kAnnounceRecv, static_cast<std::int64_t>(m.server_id),
                 own != nullptr ? *own : 0);
  }
  // Announced lines are lower-bound claims, so merging is a per-entry max.
  // Entries for servers outside our current server set are dropped: a stale
  // announcement must not resurrect a departed member's green line (which
  // on_leave erased) and pin the white line forever.
  bool advanced = false;
  for (const auto& [n, g] : m.known) {
    if (!contains(server_set_, n)) continue;
    std::int64_t& v = green_lines_[n];
    if (g > v) {
      v = g;
      advanced = true;
    }
  }
  // Trim only in settled states: mid-exchange the retransmission plan
  // assumes the bodies it promised to resend are still in the log.
  if (advanced &&
      (state_ == EngineState::kRegPrim || state_ == EngineState::kNonPrim)) {
    trim_white();
  }
}

MetaRecord ReplicationEngine::current_meta() const {
  MetaRecord m;
  m.server_set = server_set_;
  m.prim = prim_;
  m.attempt_index = attempt_index_;
  m.vulnerable = vulnerable_;
  m.yellow = yellow_;
  m.green_lines = green_lines_.entries();
  m.gc_counter = gc_ ? gc_->max_counter_seen() : 0;
  return m;
}

void ReplicationEngine::append_meta() { storage_.append(encode_log_meta(current_meta())); }

void ReplicationEngine::maybe_compact() {
  if (params_.compact_every_greens <= 0) return;
  if (log_.green_count() % params_.compact_every_greens != 0) return;
  const std::size_t upto = storage_.durable_size();
  if (upto < 2) return;
  DbSnapshotRecord rec;
  rec.db_snapshot = db_.snapshot();
  rec.green_count = log_.green_count();
  rec.green_red_cut = log_.green_red_cut_pairs();
  rec.meta = current_meta();
  log_.for_each_pending_red([&](const Action& a) { rec.red_actions.push_back(a); });
  rec.ongoing_actions = sorted_ongoing();
  storage_.compact(upto, encode_log_db_snapshot(rec));
}

std::vector<Action> ReplicationEngine::sorted_ongoing() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(ongoing_.size());
  ongoing_.for_each([&](std::uint64_t key, const Bytes&) { keys.push_back(key); });
  std::sort(keys.begin(), keys.end());
  std::vector<Action> v;
  v.reserve(keys.size());
  for (const std::uint64_t key : keys) {
    BufReader r(*ongoing_.find(key));
    v.push_back(Action::decode(r));
  }
  return v;
}

}  // namespace tordb::core
