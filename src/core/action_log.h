// The ordered-action log: the engine's colored-action history (paper
// Figures 1 & 3) behind one typed interface.
//
// The replication engine colors every action it knows — red (ordered
// locally, global order unknown), yellow (delivered in a primary's
// transitional configuration), green (global order known), white (known
// green at every replica, discardable). This module owns all of the
// bookkeeping that coloring needs:
//
//   - action body storage (red + untrimmed green bodies),
//   - the green sequence with O(1) position indexing (contiguous vector
//     with a trim offset — positions white+1..green),
//   - per-creator cuts: `red_cut` (contiguous locally-ordered prefix,
//     Appendix A's redCut) and `green_red_cut` (prefix covered by the
//     green order), from which the set of *pending* reds — red but not
//     yet green — is derived in O(1) per creator instead of rescanning a
//     global red-order list,
//   - the out-of-creator-order retransmission buffer (exchange-phase red
//     and green retransmissions may interleave across senders),
//   - the white trim line (bodies below it are discarded).
//
// ActionLog is a pure data structure: it performs no disk or network I/O.
// The engine persists records, multicasts, applies actions to the
// database and answers clients from the values this module returns —
// that boundary is what lets the log be unit-tested and benchmarked in
// isolation, and later sharded or swapped without touching the protocol.
//
// Invariants (checked by tests/action_log_test.cc):
//   - white_count() <= green_count(): the white prefix is a prefix of the
//     green prefix.
//   - green positions white+1..green resolve to ids/bodies; positions at
//     or below the white line, or beyond the green count, resolve to
//     kNoNode / nullptr (never an out-of-range access).
//   - for every creator, indices (green_red_cut, red_cut] are exactly the
//     pending reds: each has a stored body and is not green.
//   - no pending red is trimmed: trimming only ever erases green bodies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/action.h"
#include "util/flat_map.h"
#include "util/types.h"

namespace tordb::core {

class ActionLog {
 public:
  ActionLog() {
    // Pre-size the hot hash table: it grows to thousands of entries
    // between white trims, and the rehash ladder from empty showed up in
    // scale-sweep profiles. (Bucket count never affects behavior — the
    // table is only probed by key or erase-filtered.)
    store_.reserve(1024);
  }

  struct GreenResult {
    /// Actions newly admitted to the local red order by this call (the
    /// argument and any unparked successors), in admission order. Views the
    /// log's scratch buffer: valid until the next mark_red/mark_green.
    std::span<const Action* const> newly_red;
    /// Assigned global green position; 0 if the action was already green.
    std::int64_t position = 0;
    /// Stored body of the newly-green action (nullptr when position == 0 or
    /// the body is unknown) — saves callers the store re-probe.
    const Action* body = nullptr;
  };

  // --- coloring ------------------------------------------------------------

  /// Admit `a` to the local red order (A.14). Ignores duplicates; parks
  /// actions arriving ahead of their creator-FIFO predecessors in the
  /// retransmission buffer; admitting a gap-filler drains the parked
  /// chain. Returns every action newly ordered red, in order; body pointers
  /// are stable until the action is trimmed, but the returned view itself
  /// reuses a scratch buffer valid only until the next mark_red/mark_green
  /// (consume-immediately, like the hot path does). The rvalue overload
  /// moves the body into storage (one deep copy per delivery saved on the
  /// hot path); the lvalue overload copies.
  std::span<const Action* const> mark_red(Action&& a);
  std::span<const Action* const> mark_red(const Action& a) { return mark_red(Action(a)); }

  /// Append `a` to the green sequence (A.14 mark-green), admitting it red
  /// first if needed. Duplicates (already green) return position 0.
  GreenResult mark_green(Action&& a);
  GreenResult mark_green(const Action& a) { return mark_green(Action(a)); }

  // --- queries -------------------------------------------------------------

  bool is_green(const ActionId& id) const {
    const CreatorState* cs = creators_.find(id.server_id);
    return cs != nullptr && id.index <= cs->green_red_cut;
  }
  /// Stored body, or nullptr if unknown or trimmed.
  const Action* body_of(const ActionId& id) const;
  /// Body at green `position` (1-based); nullptr if trimmed/out of range.
  const Action* green_body_at(std::int64_t position) const;
  /// Id at green `position` (1-based); kNoNode id if trimmed/out of range.
  ActionId green_action_at(std::int64_t position) const;
  /// Green position of `id`, or 0 if not green here / already trimmed.
  std::int64_t position_of(const ActionId& id) const;

  std::int64_t green_count() const { return green_count_; }
  std::int64_t white_count() const { return white_count_; }
  /// Number of pending reds (red, not yet green). O(#creators).
  std::size_t red_count() const;
  /// Actions parked waiting for creator-FIFO predecessors.
  std::size_t waiting_count() const { return red_waiting_.size(); }
  /// Bodies currently stored (pending reds + untrimmed greens).
  std::size_t stored_bodies() const { return store_.size(); }
  /// Logical bytes of the stored bodies (sum of wire sizes) — the memory
  /// curve bench_memory plots and the gc.bodies.bytes gauge samples.
  /// Maintained incrementally at every store insert/overwrite/erase.
  std::int64_t body_bytes() const { return body_bytes_; }

  std::int64_t red_cut(NodeId creator) const;
  std::int64_t green_red_cut(NodeId creator) const;
  /// Register `creator` so its (zero) cuts appear in the exported pairs.
  void ensure_creator(NodeId creator) { creators_[creator]; }

  /// Per-creator cuts sorted by creator — deterministic wire encoding.
  std::vector<std::pair<NodeId, std::int64_t>> red_cut_pairs() const;
  std::vector<std::pair<NodeId, std::int64_t>> green_red_cut_pairs() const;

  /// Pending reds in ActionId order (creator-major, index ascending) —
  /// the deterministic order Install (A.10) promotes them in.
  std::vector<ActionId> pending_red_ids() const;
  void for_each_pending_red(const std::function<void(const Action&)>& fn) const;

  // --- white trim ----------------------------------------------------------

  /// Discard bodies of green positions up to `white_line` (Figure 1:
  /// white actions are known green everywhere). Returns how many green
  /// entries were trimmed.
  std::size_t trim_white_to(std::int64_t white_line);

  // --- bulk transitions (recovery / state transfer) ------------------------

  /// Recovery from a compaction record: forget everything and restart
  /// from a green prefix of `green_count` (all trimmed) with the given
  /// per-creator green coverage (red cuts start equal to it).
  void reset(std::int64_t green_count,
             const std::vector<std::pair<NodeId, std::int64_t>>& green_red_cut);

  /// Adopt a transferred green prefix wholesale (§5.2 join snapshot /
  /// exchange catch-up): the green count jumps to `green_count`, the
  /// adopted prefix is entirely white (no bodies), per-creator cuts are
  /// raised, and bodies the prefix covers are released. Pending reds the
  /// prefix does not cover survive. Raising the cuts may fill creator-FIFO
  /// gaps that parked retransmissions were waiting on (an exchange's red
  /// retransmissions from one member can be delivered before the catch-up
  /// transfer from another); those chains are drained and returned exactly
  /// like mark_red's admissions — same scratch-buffer lifetime.
  std::span<const Action* const> adopt_green_prefix(
      std::int64_t green_count,
      const std::vector<std::pair<NodeId, std::int64_t>>& green_red_cut);

  /// Recovery replay of a persisted green record: append iff `position`
  /// extends the green sequence. Returns false on duplicates / gaps.
  bool replay_green(std::int64_t position, const Action& a);

 private:
  struct CreatorState {
    std::int64_t red_cut = 0;        ///< A: redCut — contiguous local prefix
    std::int64_t green_red_cut = 0;  ///< prefix covered by the green order
  };
  /// Body plus its green position (0 while only red), one entry per stored
  /// action instead of parallel body/position tables. Heap-allocated behind
  /// the flat table so body pointers stay stable across table growth (the
  /// mark_red contract: pointers live until the action is trimmed).
  struct StoredAction {
    Action body;
    std::int64_t green_pos = 0;
  };

  void compact_green_seq();

  std::int64_t green_count_ = 0;
  std::int64_t white_count_ = 0;  ///< greens trimmed as white
  std::int64_t body_bytes_ = 0;   ///< wire bytes of the bodies in store_
  /// Positions white+1..green live at indexes [green_head_, size).
  std::vector<ActionId> green_seq_;
  std::size_t green_head_ = 0;
  /// Tiny (group-sized) and iterated for wire encodings: the sorted vector
  /// gives creator-ordered iteration for free.
  util::VecMap<NodeId, CreatorState> creators_;
  /// Recycle StoredAction blocks between trim (which frees one per white
  /// action) and admit (which allocates one per red action): the two rates
  /// match in steady state, so the pool turns a malloc/free pair per action
  /// per replica into a pop/push on this vector. Entries keep their last
  /// body until reuse (the move-assign there releases it); the pool is
  /// capped so a burst can't pin memory.
  std::unique_ptr<StoredAction> alloc_stored();
  void recycle(std::unique_ptr<StoredAction> p);
  std::vector<std::unique_ptr<StoredAction>> pool_;

  /// Scratch for mark_red's return view — reused across calls so the hot
  /// path (one mark_red per delivered action per member) allocates nothing.
  std::vector<const Action*> admitted_;

  /// Keyed by pack_action_id; probed per retransmission, never iterated in
  /// a determinism-relevant order.
  util::FlatMap64<Action> red_waiting_;
  /// Bodies (red + untrimmed green), keyed by pack_action_id.
  util::FlatMap64<std::unique_ptr<StoredAction>> store_;
};

}  // namespace tordb::core
