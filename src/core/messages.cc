#include "core/messages.h"

namespace tordb::core {

void encode_pairs(BufWriter& w, const std::vector<std::pair<NodeId, std::int64_t>>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& [n, x] : v) {
    w.i32(n);
    w.i64(x);
  }
}

std::vector<std::pair<NodeId, std::int64_t>> decode_pairs(BufReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<std::pair<NodeId, std::int64_t>> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    NodeId node = r.i32();
    std::int64_t x = r.i64();
    v.emplace_back(node, x);
  }
  return v;
}

void PrimComponent::encode(BufWriter& w) const {
  w.i64(prim_index);
  w.i64(attempt_index);
  w.node_ids(servers);
}

PrimComponent PrimComponent::decode(BufReader& r) {
  PrimComponent p;
  p.prim_index = r.i64();
  p.attempt_index = r.i64();
  p.servers = r.node_ids();
  return p;
}

void VulnerableRecord::encode(BufWriter& w) const {
  w.boolean(valid);
  w.i64(prim_index);
  w.i64(attempt_index);
  w.node_ids(set);
  w.u32(static_cast<std::uint32_t>(bits.size()));
  for (bool b : bits) w.boolean(b);
}

VulnerableRecord VulnerableRecord::decode(BufReader& r) {
  VulnerableRecord v;
  v.valid = r.boolean();
  v.prim_index = r.i64();
  v.attempt_index = r.i64();
  v.set = r.node_ids();
  const std::uint32_t n = r.u32();
  v.bits.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) v.bits[i] = r.boolean();
  return v;
}

bool VulnerableRecord::all_bits_set() const {
  for (bool b : bits) {
    if (!b) return false;
  }
  return !bits.empty();
}

void VulnerableRecord::set_bit(NodeId server) {
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (set[i] == server && i < bits.size()) bits[i] = true;
  }
}

void YellowRecord::encode(BufWriter& w) const {
  w.boolean(valid);
  w.vec(set, [](BufWriter& w2, const ActionId& a) { w2.action_id(a); });
}

YellowRecord YellowRecord::decode(BufReader& r) {
  YellowRecord y;
  y.valid = r.boolean();
  y.set = r.vec<ActionId>([](BufReader& r2) { return r2.action_id(); });
  return y;
}

void StateMessage::encode(BufWriter& w) const {
  w.i32(server_id);
  w.config_id(conf_id);
  w.i64(green_count);
  w.i64(white_count);
  encode_pairs(w, red_cut);
  encode_pairs(w, green_red_cut);
  w.node_ids(server_set);
  w.i64(attempt_index);
  prim.encode(w);
  vulnerable.encode(w);
  yellow.encode(w);
}

StateMessage StateMessage::decode(BufReader& r) {
  StateMessage s;
  s.server_id = r.i32();
  s.conf_id = r.config_id();
  s.green_count = r.i64();
  s.white_count = r.i64();
  s.red_cut = decode_pairs(r);
  s.green_red_cut = decode_pairs(r);
  s.server_set = r.node_ids();
  s.attempt_index = r.i64();
  s.prim = PrimComponent::decode(r);
  s.vulnerable = VulnerableRecord::decode(r);
  s.yellow = YellowRecord::decode(r);
  return s;
}

namespace {
template <typename Body>
Bytes with_type(std::uint8_t type, Body&& body) {
  BufWriter w;
  w.u8(type);
  body(w);
  return w.take();
}
}  // namespace

Bytes encode_action_msg(const Action& a) {
  return with_type(static_cast<std::uint8_t>(EngineMsgType::kAction),
                   [&](BufWriter& w) { a.encode(w); });
}

Bytes encode_action_batch(const std::vector<Action>& actions) {
  return with_type(static_cast<std::uint8_t>(EngineMsgType::kActionBatch), [&](BufWriter& w) {
    w.vec(actions, [](BufWriter& w2, const Action& a) { a.encode(w2); });
  });
}

std::vector<Action> decode_action_batch(BufReader& r) {
  return r.vec<Action>([](BufReader& r2) { return Action::decode(r2); });
}

Bytes encode_state_msg(const StateMessage& s) {
  return with_type(static_cast<std::uint8_t>(EngineMsgType::kState),
                   [&](BufWriter& w) { s.encode(w); });
}

Bytes encode_cpc_msg(const CpcMessage& c) {
  return with_type(static_cast<std::uint8_t>(EngineMsgType::kCpc), [&](BufWriter& w) {
    w.i32(c.server_id);
    w.config_id(c.conf_id);
  });
}

Bytes encode_green_retrans(std::int64_t position, const Action& a) {
  return with_type(static_cast<std::uint8_t>(EngineMsgType::kGreenRetrans), [&](BufWriter& w) {
    w.i64(position);
    a.encode(w);
  });
}

Bytes encode_red_retrans(const Action& a) {
  return with_type(static_cast<std::uint8_t>(EngineMsgType::kRedRetrans),
                   [&](BufWriter& w) { a.encode(w); });
}

namespace {
void encode_snapshot_body(BufWriter& w, const SnapshotMessage& s) {
  w.bytes(s.db_snapshot);
  w.i64(s.green_count);
  encode_pairs(w, s.green_red_cut);
  w.node_ids(s.server_set);
  encode_pairs(w, s.green_lines);
  s.prim.encode(w);
}
}  // namespace

Bytes encode_catchup(const SnapshotMessage& s) {
  return with_type(static_cast<std::uint8_t>(EngineMsgType::kCatchup),
                   [&](BufWriter& w) { encode_snapshot_body(w, s); });
}

Bytes encode_announce(const AnnounceMessage& m) {
  return with_type(static_cast<std::uint8_t>(EngineMsgType::kAnnounce), [&](BufWriter& w) {
    w.i32(m.server_id);
    encode_pairs(w, m.known);
  });
}

AnnounceMessage decode_announce(BufReader& r) {
  AnnounceMessage m;
  m.server_id = r.i32();
  m.known = decode_pairs(r);
  return m;
}

EngineMsgType peek_engine_type(const Bytes& wire) {
  if (wire.empty()) throw SerdeError("empty engine message");
  return static_cast<EngineMsgType>(wire[0]);
}

Bytes encode_join_request(const JoinRequest& j) {
  return with_type(static_cast<std::uint8_t>(DirectMsgType::kJoinRequest),
                   [&](BufWriter& w) { w.i32(j.joiner); });
}

Bytes encode_snapshot(const SnapshotMessage& s) {
  return with_type(static_cast<std::uint8_t>(DirectMsgType::kSnapshot),
                   [&](BufWriter& w) { encode_snapshot_body(w, s); });
}

DirectMsgType peek_direct_type(const Bytes& wire) {
  if (wire.empty()) throw SerdeError("empty direct message");
  return static_cast<DirectMsgType>(wire[0]);
}

JoinRequest decode_join_request(BufReader& r) {
  JoinRequest j;
  j.joiner = r.i32();
  return j;
}

SnapshotMessage decode_snapshot(BufReader& r) {
  SnapshotMessage s;
  s.db_snapshot = r.bytes();
  s.green_count = r.i64();
  s.green_red_cut = decode_pairs(r);
  s.server_set = r.node_ids();
  s.green_lines = decode_pairs(r);
  s.prim = PrimComponent::decode(r);
  return s;
}

namespace {
void encode_meta_body(BufWriter& w, const MetaRecord& m) {
  w.node_ids(m.server_set);
  m.prim.encode(w);
  w.i64(m.attempt_index);
  m.vulnerable.encode(w);
  m.yellow.encode(w);
  encode_pairs(w, m.green_lines);
  w.i64(m.gc_counter);
}
}  // namespace

Bytes encode_log_ongoing(const Action& a) {
  return with_type(static_cast<std::uint8_t>(LogRecordType::kOngoing),
                   [&](BufWriter& w) { a.encode(w); });
}

Bytes encode_log_ongoing_batch(const std::vector<Action>& actions) {
  return with_type(static_cast<std::uint8_t>(LogRecordType::kOngoingBatch), [&](BufWriter& w) {
    w.vec(actions, [](BufWriter& w2, const Action& a) { a.encode(w2); });
  });
}

Bytes encode_log_red(const Action& a) {
  return with_type(static_cast<std::uint8_t>(LogRecordType::kRed),
                   [&](BufWriter& w) { a.encode(w); });
}

Bytes encode_log_green(std::int64_t position, const Action& a) {
  return with_type(static_cast<std::uint8_t>(LogRecordType::kGreen), [&](BufWriter& w) {
    w.i64(position);
    a.encode(w);
  });
}

Bytes encode_action_body(const Action& a) {
  BufWriter w;
  a.encode(w);
  return w.take();
}

Bytes encode_log_red(const Bytes& body) {
  Bytes r;
  r.reserve(1 + body.size());
  r.push_back(static_cast<std::uint8_t>(LogRecordType::kRed));
  r.insert(r.end(), body.begin(), body.end());
  return r;
}

Bytes encode_log_green(std::int64_t position, const Bytes& body) {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(LogRecordType::kGreen));
  w.i64(position);
  Bytes r = w.take();
  r.insert(r.end(), body.begin(), body.end());
  return r;
}

Bytes encode_log_meta(const MetaRecord& m) {
  return with_type(static_cast<std::uint8_t>(LogRecordType::kMeta),
                   [&](BufWriter& w) { encode_meta_body(w, m); });
}

Bytes encode_log_db_snapshot(const DbSnapshotRecord& s) {
  return with_type(static_cast<std::uint8_t>(LogRecordType::kDbSnapshot), [&](BufWriter& w) {
    w.bytes(s.db_snapshot);
    w.i64(s.green_count);
    encode_pairs(w, s.green_red_cut);
    encode_meta_body(w, s.meta);
    w.vec(s.red_actions, [](BufWriter& w2, const Action& a) { a.encode(w2); });
    w.vec(s.ongoing_actions, [](BufWriter& w2, const Action& a) { a.encode(w2); });
  });
}

DbSnapshotRecord decode_db_snapshot(BufReader& r) {
  DbSnapshotRecord s;
  s.db_snapshot = r.bytes();
  s.green_count = r.i64();
  s.green_red_cut = decode_pairs(r);
  s.meta = decode_meta(r);
  s.red_actions = r.vec<Action>([](BufReader& r2) { return Action::decode(r2); });
  s.ongoing_actions = r.vec<Action>([](BufReader& r2) { return Action::decode(r2); });
  return s;
}

LogRecordType peek_log_type(const Bytes& record) {
  if (record.empty()) throw SerdeError("empty log record");
  return static_cast<LogRecordType>(record[0]);
}

MetaRecord decode_meta(BufReader& r) {
  MetaRecord m;
  m.server_set = r.node_ids();
  m.prim = PrimComponent::decode(r);
  m.attempt_index = r.i64();
  m.vulnerable = VulnerableRecord::decode(r);
  m.yellow = YellowRecord::decode(r);
  m.green_lines = decode_pairs(r);
  m.gc_counter = r.i64();
  return m;
}

}  // namespace tordb::core
