// Actions: the unit of replication (paper §2.2).
//
// An action carries a query part and an update part (either may be empty)
// plus the bookkeeping fields of the paper's Appendix A message structure:
// the creating server's action id, the creator's green line at creation
// time (used for white garbage collection) and the requesting client.
//
// Action types beyond regular updates implement §5.1 online
// reconfiguration: PERSISTENT_JOIN announces a new replica,
// PERSISTENT_LEAVE permanently removes one.
//
// The `semantics` field selects the §6 application semantics for the
// action: strict (one-copy serializability — applied only when green),
// timestamp (last-writer-wins, safe to expose before global order), or
// commutative (order-independent, e.g. inventory adjustments).
#pragma once

#include <cstdint>
#include <string>

#include "db/database.h"
#include "util/serde.h"
#include "util/types.h"

namespace tordb::core {

enum class Semantics : std::uint8_t {
  kStrict = 0,       ///< applied to the database only when green
  kTimestamp = 1,    ///< §6 timestamp updates: replied on red, converges
  kCommutative = 2,  ///< §6 commutative updates: replied on red, converges
};

enum class ActionType : std::uint8_t {
  kUpdate = 0,           ///< regular client action
  kPersistentJoin = 1,   ///< §5.1 PERSISTENT_JOIN (subject = joining server)
  kPersistentLeave = 2,  ///< §5.1 PERSISTENT_LEAVE (subject = leaving server)
};

struct Action {
  ActionType type = ActionType::kUpdate;
  ActionId id;                   ///< {creating server, per-server index}
  std::int64_t green_line = 0;   ///< creator's green count at creation time
  std::int64_t client = 0;
  Semantics semantics = Semantics::kStrict;
  db::Command query;
  db::Command update;
  NodeId subject = kNoNode;  ///< join_id / leave_id for membership actions
  std::uint32_t padding = 0; ///< extra wire bytes to model action size

  void encode(BufWriter& w) const;
  static Action decode(BufReader& r);

  /// Wire size contribution of this action (payload + padding), used by the
  /// network cost model. The paper's evaluation uses 200-byte actions.
  std::size_t wire_size() const;
};

std::string to_string(ActionType t);

}  // namespace tordb::core
