// The replication engine — the paper's primary contribution (§5, Appendix
// A): a generic engine, running outside the database, that turns Extended
// Virtual Synchrony group communication into a *global persistent consistent
// order* of actions over a partitionable network, with end-to-end
// acknowledgement rounds only at membership changes, never per action.
//
// States (Figure 4):
//
//   NonPrim          member of a non-primary component; actions ordered
//                    locally, marked red.
//   RegPrim          member of the primary component, regular
//                    configuration; safe-delivered actions marked green and
//                    applied immediately.
//   TransPrim        primary's transitional configuration; deliveries
//                    marked yellow.
//   ExchangeStates   a new configuration formed; members exchange State
//                    messages.
//   ExchangeActions  members retransmit so everyone reaches the maximal
//                    common state.
//   Construct        quorum reached; Create-Primary-Component (CPC)
//                    messages in flight.
//   No / Un          interrupted installation (paper §5): `No` — as far as
//                    we know nobody installed; `Un` — somebody may have.
//
// Coloring (Figures 1, 3): red = ordered locally, global order unknown;
// yellow = delivered in a primary's transitional configuration; green =
// global order known; white = known green at every replica (discardable).
//
// Dynamic membership (§5.1): PERSISTENT_JOIN / PERSISTENT_LEAVE ride the
// green order itself, which sidesteps the consensus problem of changing the
// replica set; a representative transfers a database snapshot to the
// joiner, with fail-over to any other member.
//
// Semantics (§6): strict actions are applied/answered only when green; weak
// queries answer from the (possibly stale) green state; dirty queries from
// a red-applied overlay; timestamp/commutative updates are acknowledged on
// red and converge once merged into the green order.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/action.h"
#include "core/action_log.h"
#include "core/messages.h"
#include "core/quorum.h"
#include "db/database.h"
#include "gc/group_communication.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "storage/stable_storage.h"
#include "util/flat_map.h"

namespace tordb::core {

enum class EngineState : std::uint8_t {
  kNonPrim,
  kRegPrim,
  kTransPrim,
  kExchangeStates,
  kExchangeActions,
  kConstruct,
  kNo,
  kUn,
  kLeft,  ///< our PERSISTENT_LEAVE became green; engine is shut down
};

std::string to_string(EngineState s);

enum class QueryMode : std::uint8_t {
  kStrict = 0,  ///< answered in the primary component, fully consistent
  kWeak = 1,    ///< §6: consistent but possibly obsolete (green state)
  kDirty = 2,   ///< §6: latest local info including red actions
};

struct Reply {
  ActionId action;  ///< invalid (kNoNode) for pure queries
  bool aborted = false;
  bool fenced = false;  ///< aborted because an update hit a fenced key range (§9)
  std::vector<std::string> reads;
};
using ReplyFn = std::function<void(const Reply&)>;

struct EngineParams {
  std::map<NodeId, int> weights;       ///< voting weights
  QuorumMode quorum_mode = QuorumMode::kDynamicLinearVoting;
  std::uint32_t action_padding = 110;  ///< pads actions to ~200 wire bytes
  std::int64_t compact_every_greens = 8000;  ///< log compaction cadence (0 = off)
  bool white_trim = true;  ///< discard white action bodies (paper Figure 1)
  /// Green-line announcement cadence (DESIGN.md §14; 0 = off). A replica
  /// whose green line advanced beyond what it last told the group arms a
  /// one-shot virtual-time timer; when it fires, the replica multicasts its
  /// knowledge vector — unless its own traffic already piggybacked the line
  /// in the meantime, which suppresses the token. This is what lets white
  /// trimming advance at replicas that never originate actions.
  SimDuration announce_interval = millis(250);
  /// Batch multi-action persist+multicast: one StableStorage append+sync
  /// and one group multicast per batch of buffered client actions instead
  /// of per action. Single-action submissions are unaffected.
  bool batch_persist = true;
  gc::GcParams gc;
  /// Observability (all null by default — zero cost). When `trace_bus` is
  /// set the engine constructs a per-node Tracer and emits the structured
  /// event stream documented on obs::EventKind; it also hands the bus down
  /// to its GroupCommunication instance. When `metrics` is set the engine
  /// records green-commit latency and view-change duration histograms.
  std::shared_ptr<obs::TraceBus> trace_bus;
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

struct EngineStats {
  std::uint64_t actions_created = 0;
  std::uint64_t actions_red = 0;
  std::uint64_t actions_green = 0;
  std::uint64_t actions_white_trimmed = 0;
  std::uint64_t exchanges = 0;
  std::uint64_t primaries_installed = 0;
  std::uint64_t cpc_sent = 0;
  std::uint64_t green_retrans_sent = 0;
  std::uint64_t red_retrans_sent = 0;
  std::uint64_t retrans_received = 0;
  std::uint64_t replies = 0;
  std::uint64_t snapshots_sent = 0;
  // Green-line announcements (DESIGN.md §14).
  std::uint64_t announces_sent = 0;        ///< announcement tokens multicast
  std::uint64_t announces_received = 0;    ///< announcements merged (incl. own)
  std::uint64_t announces_suppressed = 0;  ///< timer fired but own traffic
                                           ///  already piggybacked the line
  // Write batching (one forced append+sync and one multicast per batch).
  std::uint64_t persist_batches = 0;        ///< multi-action batches issued
  std::uint64_t persist_batch_actions = 0;  ///< actions carried by them
  std::uint64_t persist_batch_max = 0;      ///< largest batch so far
};

struct EngineCallbacks {
  std::function<void()> on_left;         ///< our own leave became green
  std::function<void(NodeId)> on_join_green;
  std::function<void(NodeId)> on_leave_green;
};

class ReplicationEngine {
 public:
  /// Fresh start as a founding member of `initial_servers`.
  ReplicationEngine(Network& net, StableStorage& storage, NodeId id,
                    std::vector<NodeId> initial_servers, EngineParams params = {},
                    EngineCallbacks callbacks = {});

  /// Start as a joining replica from a received snapshot (§5.2).
  ReplicationEngine(Network& net, StableStorage& storage, NodeId id,
                    const SnapshotMessage& snapshot, EngineParams params = {},
                    EngineCallbacks callbacks = {});

  struct RecoverTag {};
  /// Recover from stable storage after a crash (Appendix A, Recover).
  /// `fallback_servers` seeds the server set when the log is empty.
  ReplicationEngine(Network& net, StableStorage& storage, NodeId id, RecoverTag,
                    std::vector<NodeId> fallback_servers, EngineParams params = {},
                    EngineCallbacks callbacks = {});

  ~ReplicationEngine();
  ReplicationEngine(const ReplicationEngine&) = delete;
  ReplicationEngine& operator=(const ReplicationEngine&) = delete;

  // --- client interface ---------------------------------------------------

  /// Submit an action with a query part and an update part (either may be
  /// empty). Strict actions reply once green; timestamp/commutative actions
  /// reply once ordered locally (red) and converge globally later (§6).
  void submit(db::Command query, db::Command update, std::int64_t client,
              Semantics semantics, ReplyFn reply);

  /// Query-only fast path (§6): no action message is generated or ordered.
  void submit_query(db::Command query, QueryMode mode, ReplyFn reply);

  /// §5.1: ask this engine to represent `joiner` — creates a
  /// PERSISTENT_JOIN (or resumes the transfer if the join is already green).
  void handle_join_request(NodeId joiner);

  /// §5.1: create a PERSISTENT_LEAVE for ourselves.
  void request_leave();

  /// §5.1: administratively remove a permanently failed replica.
  void remove_replica(NodeId dead);

  // --- introspection --------------------------------------------------------

  NodeId id() const { return id_; }
  EngineState state() const { return state_; }
  bool in_primary() const {
    return state_ == EngineState::kRegPrim || state_ == EngineState::kTransPrim;
  }
  std::int64_t green_count() const { return log_.green_count(); }
  std::size_t red_count() const { return log_.red_count(); }
  std::int64_t white_line() const;
  /// The colored-action history (read-only; all mutation goes through the
  /// engine's protocol paths).
  const ActionLog& action_log() const { return log_; }
  const db::Database& database() const { return db_; }
  std::uint64_t db_digest() const { return db_.digest(); }
  /// Green state plus red actions applied on top (the §6 dirty version).
  db::Database dirty_database() const;
  const std::vector<NodeId>& server_set() const { return server_set_; }
  const PrimComponent& prim_component() const { return prim_; }
  const VulnerableRecord& vulnerable() const { return vulnerable_; }
  const YellowRecord& yellow() const { return yellow_; }
  const EngineStats& stats() const { return stats_; }
  gc::GroupCommunication& group_comm() { return *gc_; }
  /// Green sequence entry at `position` (1-based); kNoNode id if trimmed.
  ActionId green_action_at(std::int64_t position) const;

  // --- shard rebalancing hooks (DESIGN.md §9) --------------------------------

  /// Extract [lo, hi) from the green state. Once the range's fence action is
  /// green here, the extraction is exactly the range's content at the fence
  /// position — no later green can touch a fenced range.
  db::RangeSnapshot extract_range(const std::string& lo, const std::string& hi) const {
    return db_.extract_range(lo, hi);
  }
  /// True once a green kFenceRange for exactly [lo, hi) has applied here.
  bool range_fenced(const std::string& lo, const std::string& hi) const {
    return db_.range_fenced(lo, hi);
  }

 private:
  // --- group communication events ------------------------------------------
  void on_regular_config(const gc::Configuration& conf);
  void on_transitional_config(const gc::Configuration& conf);
  void on_deliver(const gc::Delivery& d);
  void handle_action(Action&& a);  ///< consumes the body into the log
  void handle_state_msg(const StateMessage& s);
  void handle_cpc(const CpcMessage& c);
  void handle_green_retrans(std::int64_t position, const Action& a);
  void handle_red_retrans(const Action& a);
  void handle_catchup(const SnapshotMessage& s);
  void handle_announce(const AnnounceMessage& m);

  // --- green-line announcements (DESIGN.md §14) ------------------------------
  /// Arm the one-shot announcement timer iff the green line advanced past
  /// what the group was last told and no timer is pending. Lazy arming (no
  /// unconditional rescheduling) keeps run-until-idle simulations finite.
  void maybe_arm_announce();
  /// Timer body: suppress if own traffic piggybacked the line since arming,
  /// defer (re-arm) mid-exchange, otherwise multicast the knowledge vector.
  void fire_announce();
  void send_announce();

  // --- paper procedures (Appendix A) -----------------------------------------
  void shift_to_exchange_states();             // A.5
  void shift_to_exchange_actions();            // A.5
  void maybe_end_of_retrans();                 // A.5 / A.6
  void end_of_retrans();                       // A.5
  void compute_knowledge();                    // A.7
  bool is_quorum() const;                      // A.8
  void check_construct_complete();             // A.9
  void install();                              // A.10
  void handle_buffered_requests();             // A.8
  void mark_red(const Action& a);              // A.14
  void mark_red(Action&& a);                   // A.14 (hot path: moves body)
  void mark_yellow(const Action& a);           // A.14
  void mark_green(const Action& a);            // A.14 + CodeSegment 5.1
  void mark_green(Action&& a);                 // hot path: moves body
  void apply_green(const Action& a);
  void on_join_green(const Action& a);         // 5.1 lines 5-10
  void on_leave_green(const Action& a);        // 5.1 lines 11-13
  void recover_from_log(const std::vector<NodeId>& fallback_servers);

  // --- helpers ---------------------------------------------------------------
  void init_members(const std::vector<NodeId>& servers);
  void construct_gc(std::int64_t initial_counter);
  /// Adopt a transferred green prefix wholesale (join §5.2 / catch-up).
  void adopt_snapshot(const SnapshotMessage& s, bool set_prim);
  Action make_action(ActionType type, db::Command query, db::Command update,
                     std::int64_t client, Semantics semantics, NodeId subject);
  void persist_and_send(std::vector<Action> actions);
  void on_newly_red(const Action& a);
  /// Encoded body of `a`, memoized for the immediately-repeated case (the
  /// red and green log records of one action encode the same body twice).
  const Bytes& encoded_body(const Action& a);
  /// Append a green log record framed in place (hot: one per green action).
  void append_log_green(std::int64_t position, const Bytes& body);
  bool is_green(const ActionId& id) const { return log_.is_green(id); }
  MetaRecord current_meta() const;
  void append_meta();
  void trim_white();
  void maybe_compact();
  void maybe_reply_red(const Action& a);
  void reply_green(const Action& a, const db::ApplyResult& result);
  void flush_strict_queries();
  void send_snapshot_to(NodeId joiner);
  void enter_left();
  /// Ongoing actions in ActionId order (sorted packed keys) — the
  /// deterministic order persisted records and catch-up snapshots use.
  std::vector<Action> sorted_ongoing() const;

  // --- observability ---------------------------------------------------------
  /// Builds the per-node Tracer from params_.trace_bus, hands it down to the
  /// GC layer, and resolves metric handles. Must run before construct_gc.
  void init_obs();
  /// Single choke point for engine state transitions: emits kStateTransition
  /// and closes the view-change duration histogram sample when a primary is
  /// (re-)entered.
  void set_state(EngineState next);
  /// Emits kEngineStart (mode: 0 fresh, 1 recover, 2 join) plus a
  /// kMemberReset / kMemberAdd sequence describing the server set.
  void trace_engine_start(std::int64_t mode);

  Network& net_;
  Simulator& sim_;
  StableStorage& storage_;
  NodeId id_;
  EngineParams params_;
  EngineCallbacks callbacks_;
  QuorumPolicy quorum_;
  std::shared_ptr<bool> alive_;

  db::Database db_;
  std::unique_ptr<gc::GroupCommunication> gc_;

  EngineState state_ = EngineState::kNonPrim;
  gc::Configuration conf_;
  std::int64_t action_index_ = 0;
  std::int64_t attempt_index_ = 0;
  PrimComponent prim_;
  VulnerableRecord vulnerable_;
  YellowRecord yellow_;
  std::vector<NodeId> server_set_;

  // Coloring bookkeeping: the colored-action history lives in the
  // ActionLog subsystem; the engine keeps only cluster-knowledge state.
  ActionLog log_;
  ActionId enc_body_id_;  ///< id cached in enc_body_ (kNoNode: none)
  Bytes enc_body_;
  /// A: greenLines (as counts). Group-sized; the sorted vector keeps
  /// map_to_pairs-style wire encodings in creator order for free.
  util::VecMap<NodeId, std::int64_t> green_lines_;
  /// Announcement state (DESIGN.md §14): the green line the group was last
  /// told (via a piggybacking own action or an announcement token), and
  /// whether the one-shot timer is pending.
  std::int64_t last_announced_green_ = 0;
  bool announce_armed_ = false;
  /// A: ongoingQueue, keyed by pack_action_id. Values are the canonical
  /// encoded action bodies: the hot path only ever inserts and erases
  /// (one buffer memcpy instead of a deep Action copy), and the cold
  /// readers (sorted_ongoing) decode on demand.
  util::FlatMap64<Bytes> ongoing_;

  // Exchange state.
  std::map<NodeId, StateMessage> state_msgs_;
  bool exchange_plan_ready_ = false;
  std::int64_t expected_retrans_ = 0;
  std::int64_t received_retrans_ = 0;
  std::map<NodeId, bool> effective_vulnerable_;  ///< post-ComputeKnowledge view

  // Construct state.
  std::set<NodeId> cpc_received_;

  // Client handling.
  struct BufferedRequest {
    ActionType type;
    db::Command query;
    db::Command update;
    std::int64_t client;
    Semantics semantics;
    NodeId subject;
    ReplyFn reply;
  };
  std::deque<BufferedRequest> buffered_requests_;
  struct PendingReply {
    Semantics semantics;
    ReplyFn fn;
  };
  util::FlatMap64<PendingReply> pending_replies_;  ///< keyed by pack_action_id
  struct PendingQuery {
    db::Command query;
    ReplyFn fn;
  };
  std::vector<PendingQuery> pending_strict_queries_;

  // Join protocol.
  std::set<NodeId> pending_join_transfers_;

  EngineStats stats_;

  // Observability (all inert unless params_.trace_bus / params_.metrics set).
  obs::Tracer tracer_;
  obs::Histogram* green_latency_hist_ = nullptr;   ///< submit → green, ms
  obs::Histogram* view_change_hist_ = nullptr;     ///< exchange → install, ms
  obs::Counter* metric_green_ = nullptr;
  obs::Counter* metric_red_ = nullptr;
  obs::Counter* metric_installs_ = nullptr;
  obs::Counter* metric_announce_sent_ = nullptr;
  obs::Counter* metric_announce_recv_ = nullptr;
  obs::Counter* metric_announce_supp_ = nullptr;
  util::FlatMap64<SimTime> submit_times_;  ///< by pack_action_id; only when metrics on
  SimTime exchange_started_at_ = -1;          ///< -1 = no exchange in flight
};

}  // namespace tordb::core
