// Engine-level records and wire messages (paper Appendix A message
// structure, plus the retransmission messages of the exchange phase and the
// direct-channel join protocol of §5.1/5.2).
//
// Engine messages travel as opaque payloads inside group-communication
// multicasts; the join protocol uses the network's direct channel.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/action.h"
#include "util/serde.h"
#include "util/types.h"

namespace tordb::core {

/// The last primary component known to a server (Appendix A).
struct PrimComponent {
  std::int64_t prim_index = 0;     ///< index of the last installed primary
  std::int64_t attempt_index = 0;  ///< attempt by which it was installed
  std::vector<NodeId> servers;     ///< its membership

  friend bool operator==(const PrimComponent&, const PrimComponent&) = default;
  void encode(BufWriter& w) const;
  static PrimComponent decode(BufReader& r);
};

/// Status of the last installation attempt this server joined (Appendix A).
/// A server is "vulnerable" from the moment it agrees to form a new primary
/// component (sends its CPC) until it has, on stable storage, complete
/// knowledge of how that attempt ended (paper §5).
struct VulnerableRecord {
  bool valid = false;
  std::int64_t prim_index = 0;
  std::int64_t attempt_index = 0;
  std::vector<NodeId> set;  ///< servers trying to install
  std::vector<bool> bits;   ///< aligned with `set`: CPC messages received

  friend bool operator==(const VulnerableRecord&, const VulnerableRecord&) = default;
  void encode(BufWriter& w) const;
  static VulnerableRecord decode(BufReader& r);

  bool all_bits_set() const;
  void set_bit(NodeId server);
};

/// The yellow action set: actions delivered in a transitional configuration
/// of a primary component (paper §5, Figure 3).
struct YellowRecord {
  bool valid = false;
  std::vector<ActionId> set;  ///< in transitional delivery order

  friend bool operator==(const YellowRecord&, const YellowRecord&) = default;
  void encode(BufWriter& w) const;
  static YellowRecord decode(BufReader& r);
};

/// State message exchanged at the start of every new configuration
/// (Appendix A message structure). Green knowledge is communicated as a
/// *count*: by Global Total Order, any two green sequences are prefixes of
/// one another, so a single integer identifies the prefix.
struct StateMessage {
  NodeId server_id = kNoNode;
  ConfigId conf_id;
  std::int64_t green_count = 0;
  std::int64_t white_count = 0;  ///< green positions whose bodies were discarded
  std::vector<std::pair<NodeId, std::int64_t>> red_cut;  ///< per-creator contiguous index
  /// Per-creator index covered by the green prefix (lets the exchange plan
  /// retransmit an action as green XOR red, never pointlessly both).
  std::vector<std::pair<NodeId, std::int64_t>> green_red_cut;
  std::vector<NodeId> server_set;  ///< known replica universe (§5.1)
  std::int64_t attempt_index = 0;
  PrimComponent prim;
  VulnerableRecord vulnerable;
  YellowRecord yellow;

  void encode(BufWriter& w) const;
  static StateMessage decode(BufReader& r);
};

/// CPC (Create Primary Component) message (paper §3.1 Construct state).
struct CpcMessage {
  NodeId server_id = kNoNode;
  ConfigId conf_id;
};

enum class EngineMsgType : std::uint8_t {
  kAction = 1,
  kState = 2,
  kCpc = 3,
  kGreenRetrans = 4,  ///< exchange phase: a green action with its position
  kRedRetrans = 5,    ///< exchange phase: a red action
  kCatchup = 6,       ///< exchange phase: full green-state transfer, used
                      ///  when the most updated member inherited its prefix
                      ///  as a snapshot and holds no action bodies (§5.1;
                      ///  the database-transfer technique of Kemme et al.
                      ///  the paper says it can leverage)
  kActionBatch = 7,   ///< several client actions in one multicast; members
                      ///  process them in batch order (used when buffered
                      ///  requests flush together)
  kAnnounce = 8,      ///< green-line / knowledge announcement (DESIGN.md §14):
                      ///  a replica's knowledge vector, multicast so white
                      ///  trimming advances even at replicas that never
                      ///  originate actions
};

/// Green-line announcement (DESIGN.md §14). Carries the sender's full
/// knowledge vector — its own green line plus every green line it has
/// learned — so knowledge propagates transitively: one multicast teaches
/// the whole component everything the sender knows. Announced lines are
/// lower-bound claims ("I have marked at least this prefix green"); merging
/// them is a per-entry max, which makes duplicated or reordered
/// announcements harmless.
struct AnnounceMessage {
  NodeId server_id = kNoNode;
  std::vector<std::pair<NodeId, std::int64_t>> known;  ///< server -> green line

  friend bool operator==(const AnnounceMessage&, const AnnounceMessage&) = default;
};

Bytes encode_action_msg(const Action& a);
Bytes encode_action_batch(const std::vector<Action>& actions);
std::vector<Action> decode_action_batch(BufReader& r);
Bytes encode_state_msg(const StateMessage& s);
Bytes encode_cpc_msg(const CpcMessage& c);
Bytes encode_green_retrans(std::int64_t position, const Action& a);
Bytes encode_red_retrans(const Action& a);
Bytes encode_catchup(const struct SnapshotMessage& s);
Bytes encode_announce(const AnnounceMessage& m);
AnnounceMessage decode_announce(BufReader& r);

EngineMsgType peek_engine_type(const Bytes& wire);

// --- direct-channel join protocol (§5.2) -----------------------------------

enum class DirectMsgType : std::uint8_t {
  kJoinRequest = 1,   ///< joiner -> member: announce/continue my join
  kSnapshot = 2,      ///< member -> joiner: database state transfer
};

struct JoinRequest {
  NodeId joiner = kNoNode;
};

/// Database transfer to a joining replica. The joiner adopts this green
/// prefix wholesale (Theorem 2's "inherited a database state").
struct SnapshotMessage {
  Bytes db_snapshot;
  std::int64_t green_count = 0;
  std::vector<std::pair<NodeId, std::int64_t>> green_red_cut;  ///< redCut of the green prefix
  std::vector<NodeId> server_set;
  std::vector<std::pair<NodeId, std::int64_t>> green_lines;
  PrimComponent prim;
};

Bytes encode_join_request(const JoinRequest& j);
Bytes encode_snapshot(const SnapshotMessage& s);
DirectMsgType peek_direct_type(const Bytes& wire);
JoinRequest decode_join_request(BufReader& r);
SnapshotMessage decode_snapshot(BufReader& r);

// --- stable-storage log records ---------------------------------------------

enum class LogRecordType : std::uint8_t {
  kOngoing = 1,   ///< own client action, forced before multicast
  kRed = 2,       ///< action marked red (async)
  kGreen = 3,     ///< action marked green with its global position (async)
  kMeta = 4,      ///< metadata snapshot, forced at the `** sync` points
  kDbSnapshot = 5,///< compaction record: database + green count + metadata
  kOngoingBatch = 6  ///< several own client actions framed as one record,
                     ///  forced (and multicast) together
};

struct MetaRecord {
  std::vector<NodeId> server_set;
  PrimComponent prim;
  std::int64_t attempt_index = 0;
  VulnerableRecord vulnerable;
  YellowRecord yellow;
  std::vector<std::pair<NodeId, std::int64_t>> green_lines;
  std::int64_t gc_counter = 0;  ///< group-communication config counter floor
};

/// Full-engine-state compaction record: everything needed to recover
/// without the replaced log prefix.
struct DbSnapshotRecord {
  Bytes db_snapshot;
  std::int64_t green_count = 0;
  std::vector<std::pair<NodeId, std::int64_t>> green_red_cut;
  MetaRecord meta;
  std::vector<Action> red_actions;      ///< red, not yet green, in local order
  std::vector<Action> ongoing_actions;  ///< own created, not yet ordered
};

Bytes encode_log_ongoing(const Action& a);
Bytes encode_log_ongoing_batch(const std::vector<Action>& actions);
Bytes encode_log_red(const Action& a);
Bytes encode_log_green(std::int64_t position, const Action& a);
/// Pre-encoded-body variants producing byte-identical records. The engine
/// persists a red and a green record for the same action back to back on
/// the hot path; encoding the action once and splicing it into both
/// records halves the serialization work.
Bytes encode_action_body(const Action& a);
Bytes encode_log_red(const Bytes& body);
Bytes encode_log_green(std::int64_t position, const Bytes& body);
Bytes encode_log_meta(const MetaRecord& m);
Bytes encode_log_db_snapshot(const DbSnapshotRecord& s);
DbSnapshotRecord decode_db_snapshot(BufReader& r);

LogRecordType peek_log_type(const Bytes& record);
MetaRecord decode_meta(BufReader& r);

void encode_pairs(BufWriter& w, const std::vector<std::pair<NodeId, std::int64_t>>& v);
std::vector<std::pair<NodeId, std::int64_t>> decode_pairs(BufReader& r);

}  // namespace tordb::core
