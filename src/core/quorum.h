// Dynamic linear voting (Jajodia & Mutchler [15]), the quorum system the
// paper uses to select a unique primary component (§3.1): the component that
// contains a (weighted) majority of the members of the *last installed
// primary component* may become the next primary component.
#pragma once

#include <map>
#include <vector>

#include "core/messages.h"
#include "util/types.h"

namespace tordb::core {

enum class QuorumMode {
  /// Dynamic linear voting: majority of the members of the *last installed
  /// primary component* (the paper's choice).
  kDynamicLinearVoting,
  /// Static majority of the full replica set, for the A5 ablation — less
  /// available under cascading partitions because the denominator never
  /// shrinks with the reachable lineage.
  kStaticMajority,
};

class QuorumPolicy {
 public:
  QuorumPolicy() = default;
  explicit QuorumPolicy(std::map<NodeId, int> weights,
                        QuorumMode mode = QuorumMode::kDynamicLinearVoting)
      : weights_(std::move(weights)), mode_(mode) {}

  /// True when `view` may install the next primary component. Ties lose:
  /// two components could each hold exactly half, and both becoming primary
  /// would fork the database.
  bool is_majority(const std::vector<NodeId>& view, const PrimComponent& last_prim,
                   const std::vector<NodeId>& server_set) const {
    const std::vector<NodeId>& denominator =
        mode_ == QuorumMode::kDynamicLinearVoting ? last_prim.servers : server_set;
    long long total = 0;
    long long present = 0;
    for (NodeId s : denominator) {
      const long long w = weight(s);
      total += w;
      for (NodeId v : view) {
        if (v == s) {
          present += w;
          break;
        }
      }
    }
    return total > 0 && 2 * present > total;
  }

  int weight(NodeId s) const {
    auto it = weights_.find(s);
    return it == weights_.end() ? 1 : it->second;
  }

  QuorumMode mode() const { return mode_; }

 private:
  std::map<NodeId, int> weights_;
  QuorumMode mode_ = QuorumMode::kDynamicLinearVoting;
};

}  // namespace tordb::core
