#include "core/replica_node.h"

#include "util/log.h"

namespace tordb::core {

ReplicaNode::ReplicaNode(Network& net, NodeId id, std::vector<NodeId> initial_servers,
                         ReplicaOptions options)
    : net_(net),
      sim_(net.sim()),
      id_(id),
      options_(std::move(options)),
      initial_servers_(std::move(initial_servers)),
      alive_(std::make_shared<bool>(true)),
      storage_(std::make_unique<StableStorage>(sim_, make_storage_params())) {
  net_.add_node(id_);
  register_direct_handler();
  EngineCallbacks cbs;
  cbs.on_left = [this] { handle_engine_left(); };
  engine_ = std::make_unique<ReplicationEngine>(net_, *storage_, id_, initial_servers_,
                                                options_.engine, std::move(cbs));
  was_member_ = true;
}

ReplicaNode::ReplicaNode(Network& net, NodeId id, DormantTag, ReplicaOptions options)
    : net_(net),
      sim_(net.sim()),
      id_(id),
      options_(std::move(options)),
      alive_(std::make_shared<bool>(true)),
      storage_(std::make_unique<StableStorage>(sim_, make_storage_params())) {
  net_.add_node(id_);
  net_.set_group_active(id_, false);
  register_direct_handler();
}

StorageParams ReplicaNode::make_storage_params() const {
  StorageParams p = options_.storage;
  if (options_.engine.trace_bus) p.tracer = obs::Tracer(options_.engine.trace_bus, id_);
  return p;
}

ReplicaNode::~ReplicaNode() {
  *alive_ = false;
  engine_.reset();  // unhooks the GC handlers before the node goes away
  net_.clear_packet_handler(id_, Channel::kDirect);
}

void ReplicaNode::register_direct_handler() {
  net_.set_packet_handler(
      id_, [this](NodeId from, const Bytes& wire) { on_direct(from, wire); },
      Channel::kDirect);
}

void ReplicaNode::on_direct(NodeId from, const Bytes& wire) {
  (void)from;
  if (crashed_) return;
  BufReader r(wire);
  const auto type = static_cast<DirectMsgType>(r.u8());
  switch (type) {
    case DirectMsgType::kJoinRequest: {
      const JoinRequest req = decode_join_request(r);
      if (engine_ && !left_) engine_->handle_join_request(req.joiner);
      break;
    }
    case DirectMsgType::kSnapshot: {
      if (!joining_) break;  // duplicate transfer from a second representative
      start_engine_from_snapshot(decode_snapshot(r));
      break;
    }
  }
}

void ReplicaNode::join_via(std::vector<NodeId> peers, std::function<void()> on_joined) {
  if (engine_ || peers.empty()) return;
  joining_ = true;
  join_peers_ = std::move(peers);
  join_peer_idx_ = 0;
  on_joined_ = std::move(on_joined);
  ++join_epoch_;
  try_next_join_peer();
}

void ReplicaNode::try_next_join_peer() {
  if (!joining_ || crashed_) return;
  const NodeId peer = join_peers_[join_peer_idx_ % join_peers_.size()];
  ++join_peer_idx_;
  net_.send(id_, peer, encode_join_request(JoinRequest{id_}), Channel::kDirect);
  const std::uint64_t epoch = join_epoch_;
  sim_.after(options_.join_retry, [this, alive = alive_, epoch] {
    if (!*alive || !joining_ || epoch != join_epoch_) return;
    try_next_join_peer();  // representative failed or unreachable: fail over
  });
}

void ReplicaNode::start_engine_from_snapshot(const SnapshotMessage& snap) {
  joining_ = false;
  ++join_epoch_;
  EngineCallbacks cbs;
  cbs.on_left = [this] { handle_engine_left(); };
  engine_ = std::make_unique<ReplicationEngine>(net_, *storage_, id_, snap, options_.engine,
                                                std::move(cbs));
  was_member_ = true;
  net_.set_group_active(id_, true);
  if (on_joined_) {
    auto cb = std::move(on_joined_);
    on_joined_ = nullptr;
    cb();
  }
}

void ReplicaNode::crash() {
  if (crashed_) return;
  crashed_ = true;
  joining_ = false;
  ++join_epoch_;
  net_.crash(id_);
  storage_->crash();
  engine_.reset();
}

void ReplicaNode::recover() {
  if (!crashed_) return;
  crashed_ = false;
  net_.recover(id_);
  register_direct_handler();
  if (!was_member_) return;  // dormant node: nothing to recover
  EngineCallbacks cbs;
  cbs.on_left = [this] { handle_engine_left(); };
  engine_ = std::make_unique<ReplicationEngine>(net_, *storage_, id_,
                                                ReplicationEngine::RecoverTag{},
                                                initial_servers_, options_.engine,
                                                std::move(cbs));
  net_.set_group_active(id_, true);
}

void ReplicaNode::handle_engine_left() {
  // Called from inside the engine; defer teardown until the loop turns.
  left_ = true;
  sim_.after(0, [this, alive = alive_] {
    if (!*alive) return;
    engine_.reset();
    net_.set_group_active(id_, false);
  });
}

}  // namespace tordb::core
