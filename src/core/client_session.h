// Exactly-once client sessions over the replication engine.
//
// The paper's model has clients submit actions to a replica and wait for
// the green reply. If that replica crashes (or the client's reply is lost),
// a naive client retry through another replica would apply the action
// twice. This session layer — an extension beyond the paper, built purely
// on the public engine API — gives each client a FIFO session with
// exactly-once update semantics:
//
//  - every update is fenced by a session-sequence guard on a reserved
//    database key (`__session/<client>`): a check that the guard still
//    holds the previous committed sequence, followed by an update to the
//    new one. The guard rides *inside* the action, so it is evaluated at
//    ordering time, identically at every replica;
//  - a duplicate (the first attempt did commit, the reply was lost) fails
//    the guard check and aborts harmlessly;
//  - on timeout the session fails over to the next replica and re-issues
//    the same sequence number;
//  - an ambiguous abort after a retry is resolved by reading the guard
//    key back: if it reached this sequence, some attempt committed.
//
// Sessions carry update commands; reads go through the engine's query
// interface (Reply::reads of a retried update are not reconstructable from
// a state read-back, so sessions report commit/abort only).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/replica_node.h"
#include "db/database.h"
#include "sim/simulator.h"

namespace tordb::core {

struct SessionOptions {
  SimDuration retry_timeout = millis(800);  ///< fail over to the next replica
  int max_attempts_per_request = 20;
  /// When no replica is currently running (all crashed or left), wait one
  /// retry_timeout and try again instead of aborting the request. Each wait
  /// consumes an attempt. The shard tier uses this so a cross-shard action
  /// whose target group is temporarily wholly down still lands exactly once
  /// (all-or-nothing across groups) instead of half-applying.
  bool retry_when_unavailable = false;
};

struct SessionReply {
  bool committed = false;
  bool fenced = false;         ///< abort cause: an update hit a fenced key range
  /// Abort cause: the command's own kCheck precondition failed — a genuine
  /// deterministic abort (every replica aborted it identically), as opposed
  /// to a fenced bounce (rebalance interference, retryable at the new
  /// owner) or an exhausted attempt budget. A retried request resolves this
  /// via the guard read-back: if no attempt committed, the guard check
  /// necessarily passed, so the user's own precondition was what failed.
  bool check_aborted = false;
  int attempts = 1;
};
using SessionReplyFn = std::function<void(const SessionReply&)>;

struct SessionStats {
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t aborted_checks = 0;  ///< aborts with check_aborted set
  std::uint64_t aborted_fenced = 0;  ///< aborts with fenced set
  std::uint64_t retries = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t failovers = 0;
};

class ClientSession {
 public:
  /// `replicas` are tried round-robin on timeout; they may crash, recover
  /// or leave while the session runs.
  ClientSession(Simulator& sim, std::vector<ReplicaNode*> replicas, std::int64_t client_id,
                SessionOptions options = {});
  ~ClientSession();

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  /// Enqueue an update command; requests execute strictly in session order,
  /// each exactly once (commit or deterministic abort).
  void submit(db::Command update, SessionReplyFn reply = nullptr);

  /// The reserved guard key for a client id.
  static std::string guard_key(std::int64_t client_id);

  std::int64_t client_id() const { return client_id_; }
  const SessionStats& stats() const { return stats_; }
  bool idle() const { return !in_flight_ && queue_.empty(); }

 private:
  struct Request {
    std::int64_t seq;
    db::Command update;
    SessionReplyFn reply;
    int attempts = 0;
  };

  void pump();
  void issue();
  void on_reply(std::int64_t seq, std::uint64_t attempt_epoch, bool aborted, bool fenced);
  void on_timeout(std::int64_t seq, std::uint64_t attempt_epoch);
  void resolve_ambiguous_abort(std::int64_t seq, std::uint64_t attempt_epoch);
  void finish(bool committed, bool fenced = false, bool check_aborted = false);
  ReplicaNode* current_replica();
  void advance_replica();

  Simulator& sim_;
  std::vector<ReplicaNode*> replicas_;
  std::size_t replica_idx_ = 0;
  /// The lane this session's state machine runs on (captured at
  /// construction; the control lane in a lane-partitioned cluster). Every
  /// submit hops to the target replica's lane via Simulator::call_in_lane
  /// and every reply hops back here — in classic mode both are plain
  /// inline calls, so the classic schedule is untouched.
  int home_lane_;
  std::int64_t client_id_;
  /// guard_key(client_id_), built once — every attempt fences with it twice.
  std::string guard_key_;
  SessionOptions options_;
  std::shared_ptr<bool> alive_;

  std::int64_t next_seq_ = 0;
  std::string last_committed_guard_;  ///< guard value of the last commit
  std::string seq_str_;  ///< decimal form of current_.seq, built once per request
  std::deque<Request> queue_;
  bool in_flight_ = false;
  Request current_;
  std::uint64_t attempt_epoch_ = 0;  ///< invalidates stale replies/timeouts
  SessionStats stats_;
};

}  // namespace tordb::core
