#include "core/client_session.h"

#include <charconv>

namespace tordb::core {

namespace {

/// std::to_string without the temporary: reuses `out`'s capacity.
void assign_num(std::string& out, std::int64_t v) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out.assign(buf, end);
}

}  // namespace

ClientSession::ClientSession(Simulator& sim, std::vector<ReplicaNode*> replicas,
                             std::int64_t client_id, SessionOptions options)
    : sim_(sim),
      replicas_(std::move(replicas)),
      home_lane_(sim.current_lane()),
      client_id_(client_id),
      guard_key_(guard_key(client_id)),
      options_(options),
      alive_(std::make_shared<bool>(true)) {}

ClientSession::~ClientSession() { *alive_ = false; }

std::string ClientSession::guard_key(std::int64_t client_id) {
  return "__session/" + std::to_string(client_id);
}

void ClientSession::submit(db::Command update, SessionReplyFn reply) {
  Request r;
  r.seq = ++next_seq_;
  r.update = std::move(update);
  r.reply = std::move(reply);
  queue_.push_back(std::move(r));
  ++stats_.submitted;
  pump();
}

void ClientSession::pump() {
  if (in_flight_ || queue_.empty()) return;
  current_ = std::move(queue_.front());
  queue_.pop_front();
  in_flight_ = true;
  assign_num(seq_str_, current_.seq);  // every attempt reuses the one string
  issue();
}

ReplicaNode* ClientSession::current_replica() {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    ReplicaNode* node = replicas_[(replica_idx_ + i) % replicas_.size()];
    if (node->running() && !node->has_left()) {
      replica_idx_ = (replica_idx_ + i) % replicas_.size();
      return node;
    }
  }
  return nullptr;
}

void ClientSession::advance_replica() {
  replica_idx_ = (replica_idx_ + 1) % replicas_.size();
  ++stats_.failovers;
}

void ClientSession::issue() {
  ++current_.attempts;
  ++attempt_epoch_;
  const std::uint64_t epoch = attempt_epoch_;
  const std::int64_t seq = current_.seq;

  ReplicaNode* node = current_replica();
  if (node == nullptr || current_.attempts > options_.max_attempts_per_request) {
    if (node == nullptr && options_.retry_when_unavailable &&
        current_.attempts <= options_.max_attempts_per_request) {
      // Every replica is down right now; wait for one to recover.
      ++stats_.retries;
      sim_.after(options_.retry_timeout, [this, alive = alive_, seq, epoch] {
        if (!*alive) return;
        if (!in_flight_ || current_.seq != seq || epoch != attempt_epoch_) return;
        issue();
      });
      return;
    }
    // No reachable replica (or we gave up): report a deterministic abort.
    finish(false);
    return;
  }

  // Fence the user's ops with the session guard. Evaluated at ordering
  // time at every replica identically, so a duplicate of an already
  // committed attempt aborts everywhere.
  db::Command fenced;
  fenced.ops.reserve(2 + current_.update.ops.size());
  fenced.ops.push_back(db::Op{db::OpType::kCheck, guard_key_, last_committed_guard_, 0});
  fenced.ops.push_back(db::Op{db::OpType::kPut, guard_key_, seq_str_, 0});
  fenced.ops.insert(fenced.ops.end(), current_.update.ops.begin(), current_.update.ops.end());

  // The submit itself runs on the replica's lane (inline in classic mode);
  // the reply hops back to the session's home lane. If the node dies while
  // the handoff is in flight, drop it — the retry timer below recovers.
  sim_.call_in_lane(
      node->sim_lane(),
      [this, alive = alive_, node, seq, epoch, fenced = std::move(fenced)]() mutable {
        if (!*alive) return;
        if (!node->running() || node->has_left()) return;
        node->engine().submit(
            {}, std::move(fenced), client_id_, Semantics::kStrict,
            [this, alive, seq, epoch](const Reply& r) {
              if (!*alive) return;
              const bool aborted = r.aborted;
              const bool rfenced = r.fenced;
              sim_.call_in_lane(home_lane_, [this, alive, seq, epoch, aborted, rfenced] {
                if (!*alive) return;
                on_reply(seq, epoch, aborted, rfenced);
              });
            });
      });
  sim_.after(options_.retry_timeout, [this, alive = alive_, seq, epoch] {
    if (!*alive) return;
    on_timeout(seq, epoch);
  });
}

void ClientSession::on_reply(std::int64_t seq, std::uint64_t attempt_epoch, bool aborted,
                             bool fenced) {
  if (!in_flight_ || current_.seq != seq || attempt_epoch != attempt_epoch_) return;
  if (!aborted) {
    last_committed_guard_ = seq_str_;  // assignment reuses capacity
    finish(true);
    return;
  }
  if (fenced) {
    // A fenced abort means the guard check passed this attempt (checks are
    // evaluated before fences), so no earlier attempt committed — the abort
    // is unambiguous even after retries. The router bounces it to the
    // range's new owner (DESIGN.md §9).
    finish(false, /*fenced=*/true);
    return;
  }
  if (current_.attempts == 1) {
    // Single attempt: the guard cannot have failed (nobody else writes this
    // key), so the user's own check aborted — a genuine deterministic abort.
    finish(false, /*fenced=*/false, /*check_aborted=*/true);
    return;
  }
  // After retries an abort is ambiguous: the guard may have tripped because
  // an earlier attempt committed. Read the guard back to find out.
  resolve_ambiguous_abort(seq, attempt_epoch);
}

void ClientSession::resolve_ambiguous_abort(std::int64_t seq, std::uint64_t attempt_epoch) {
  ReplicaNode* node = current_replica();
  if (node == nullptr) {
    finish(false);
    return;
  }
  // The strict guard read-back may enqueue engine work, so it runs on the
  // replica's lane; the read value is carried back to the home lane and
  // compared there (session state must not be read from a worker lane). A
  // node that died mid-handoff re-dispatches against the next replica.
  sim_.call_in_lane(node->sim_lane(), [this, alive = alive_, node, seq, attempt_epoch] {
    if (!*alive) return;
    if (!node->running() || node->has_left()) {
      sim_.call_in_lane(home_lane_, [this, alive, seq, attempt_epoch] {
        if (!*alive) return;
        if (!in_flight_ || current_.seq != seq || attempt_epoch != attempt_epoch_) return;
        advance_replica();
        resolve_ambiguous_abort(seq, attempt_epoch);
      });
      return;
    }
    node->engine().submit_query(
        db::Command::get(guard_key_), QueryMode::kStrict,
        [this, alive, seq, attempt_epoch](const Reply& r) {
          if (!*alive) return;
          std::string got = r.reads.empty() ? std::string() : r.reads[0];
          const bool have = !r.reads.empty();
          sim_.call_in_lane(
              home_lane_, [this, alive, seq, attempt_epoch, have, got = std::move(got)] {
                if (!*alive) return;
                if (!in_flight_ || current_.seq != seq || attempt_epoch != attempt_epoch_) {
                  return;
                }
                if (have && got == seq_str_) {
                  // An earlier attempt committed; the retry was the duplicate.
                  ++stats_.duplicates_suppressed;
                  last_committed_guard_ = seq_str_;
                  finish(true);
                } else {
                  // No attempt committed, so the guard check held everywhere
                  // the command was evaluated — the user's own precondition
                  // aborted it.
                  finish(false, /*fenced=*/false, /*check_aborted=*/true);
                }
              });
        });
  });
}

void ClientSession::on_timeout(std::int64_t seq, std::uint64_t attempt_epoch) {
  if (!in_flight_ || current_.seq != seq || attempt_epoch != attempt_epoch_) return;
  ++stats_.retries;
  advance_replica();
  issue();
}

void ClientSession::finish(bool committed, bool fenced, bool check_aborted) {
  in_flight_ = false;
  if (committed) {
    ++stats_.committed;
  } else {
    ++stats_.aborted;
    if (check_aborted) ++stats_.aborted_checks;
    if (fenced) ++stats_.aborted_fenced;
  }
  SessionReply rep;
  rep.committed = committed;
  rep.fenced = fenced;
  rep.check_aborted = check_aborted;
  rep.attempts = current_.attempts;
  auto fn = std::move(current_.reply);
  current_ = Request{};
  if (fn) fn(rep);
  pump();
}

}  // namespace tordb::core
