// Scenario language: drive a simulated deployment from a small text script.
//
// Lets users (and tests) describe fault-injection scenarios declaratively
// instead of writing C++ against the harness:
//
//     replicas 5
//     run 1s
//     submit 0 put owner alice
//     partition 0,1,2 | 3,4
//     run 500ms
//     submit 4 put owner bob        # queued red in the minority
//     expect-state 4 NonPrim
//     heal
//     run 2s
//     expect-get 3 owner bob
//     expect-converged 0,1,2,3,4
//     expect-consistent
//
// Statements, one per line (`#` starts a comment):
//   replicas N [seed S]        create the cluster (must come first)
//   run D                      advance simulated time (e.g. 500ms, 2s)
//   submit N put K V           strict put through replica N
//   submit N add K DELTA       strict numeric add
//   submit-commutative N add K DELTA     §6 commutative update
//   submit-timestamp N K V TS            §6 timestamp update
//   query N weak|dirty|strict K          print/record the answer
//   partition A,B,... | C,... [| ...]    split the network
//   heal                       merge everything
//   crash N / recover N        node crash / recovery
//   join N via P[,P...]        dynamic replica instantiation (§5.2)
//   leave N                    PERSISTENT_LEAVE (§5.1)
//   status                     narrate per-node engine state
//   expect-get N K V           assert replica N's green database value
//   expect-state N STATE       assert engine state (e.g. RegPrim, NonPrim)
//   expect-converged A,B,...   assert one primary with equal state
//   expect-red N COUNT         assert replica N holds COUNT red actions
//   expect-consistent          run the §5.2 invariant checkers
//
// `run()` returns whether every expectation held; failures are collected
// with their line numbers.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workload/cluster.h"

namespace tordb::workload {

struct ScenarioResult {
  bool ok = true;
  std::vector<std::string> failures;   ///< "line 12: expect-get ..."
  std::vector<std::string> narration;  ///< status/query output lines
};

class Scenario {
 public:
  /// Parse a script. Throws std::runtime_error with a line number on
  /// malformed input.
  static Scenario parse(const std::string& text);

  /// Execute. `echo` (optional) receives narration lines as they happen.
  ScenarioResult run(std::function<void(const std::string&)> echo = nullptr);

  std::size_t statement_count() const { return statements_.size(); }

 private:
  struct Statement {
    int line;
    std::vector<std::string> tokens;
    std::vector<std::vector<NodeId>> components;  ///< for partition
  };

  std::vector<Statement> statements_;
};

}  // namespace tordb::workload
