// Cluster harness: a full simulated deployment of replica nodes, with
// topology controls and the engine-level correctness checkers used by the
// test suites (paper §5.2 safety properties).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/replica_node.h"
#include "obs/metrics.h"
#include "obs/safety_checker.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace tordb::workload {

/// Deployment-wide observability switches. Everything defaults to off: no
/// bus is allocated and every Tracer handle stays disconnected, so the hot
/// paths pay one null test per would-be event. `TORDB_OBS_CHECK=1` (or
/// obs::force_check_for_tests()) force-enables the checker regardless.
struct ObsOptions {
  bool trace = false;             ///< allocate a TraceBus and wire every node
  bool check = false;             ///< subscribe the online SafetyChecker
  bool checker_fail_fast = true;  ///< abort the process on first violation
  std::size_t ring_capacity = 1 << 16;
  /// >0: allocate a MetricsRegistry and roll a window every interval.
  SimDuration metrics_window = 0;
};

struct ClusterOptions {
  int replicas = 5;
  std::uint64_t seed = 1;
  NetworkParams net;
  core::ReplicaOptions node;
  ObsOptions obs;
};

class EngineCluster {
 public:
  explicit EngineCluster(ClusterOptions options);

  Simulator& sim() { return sim_; }
  Network& net() { return net_; }
  core::ReplicaNode& node(NodeId id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  core::ReplicationEngine& engine(NodeId id) { return node(id).engine(); }
  int replicas() const { return static_cast<int>(nodes_.size()); }
  std::vector<NodeId> all_ids() const;

  void run_for(SimDuration d) { sim_.run_for(d); }

  /// Register an additional dormant node (a future §5.2 joiner).
  core::ReplicaNode& add_dormant(NodeId id);

  void partition(const std::vector<std::vector<NodeId>>& components) {
    net_.set_components(components);
  }
  void heal() { net_.heal(); }
  void crash(NodeId id) { node(id).crash(); }
  void recover(NodeId id) { node(id).recover(); }

  /// True when every listed node runs an engine in RegPrim with identical
  /// green count and database digest.
  bool converged_primary(const std::vector<NodeId>& ids) const;

  /// True when every listed node's engine reached the given green count.
  bool all_green_at_least(const std::vector<NodeId>& ids, std::int64_t count) const;

  // --- invariant checkers (paper §5.2) --------------------------------------
  // Return a violation description, or nullopt if the invariant holds.

  /// Global Total Order: any two servers' green sequences agree on every
  /// position both have (Theorem 1), and equal green counts imply equal
  /// database digests.
  std::optional<std::string> check_green_prefix_consistency() const;

  /// Global FIFO Order: within every green sequence, each creator's actions
  /// appear in creation-index order with no gaps (Theorem 2).
  std::optional<std::string> check_green_fifo() const;

  /// At most one primary component: two engines in RegPrim/TransPrim with
  /// the same prim_index agree on its membership.
  std::optional<std::string> check_single_primary() const;

  std::optional<std::string> check_all() const;

  // --- observability --------------------------------------------------------
  /// Null unless ObsOptions enabled them (or the checker was forced).
  const std::shared_ptr<obs::TraceBus>& trace_bus() const { return trace_bus_; }
  obs::SafetyChecker* checker() const { return checker_.get(); }
  const std::shared_ptr<obs::MetricsRegistry>& metrics() const { return metrics_; }
  /// Sample cluster-cumulative stats into the registry (also runs before
  /// every periodic window roll).
  void sample_metrics();

 private:
  void schedule_metrics_roll();

  ClusterOptions options_;
  Simulator sim_;
  Network net_;
  // Declared before nodes_: the bus must outlive every Tracer handle the
  // nodes hold (destruction runs in reverse order).
  std::shared_ptr<obs::TraceBus> trace_bus_;
  std::unique_ptr<obs::SafetyChecker> checker_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::vector<std::unique_ptr<core::ReplicaNode>> nodes_;
};

}  // namespace tordb::workload
