#include "workload/scenario.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "db/database.h"

namespace tordb::workload {

namespace {

std::runtime_error parse_error(int line, const std::string& what) {
  return std::runtime_error("scenario line " + std::to_string(line) + ": " + what);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;
    tokens.push_back(tok);
  }
  return tokens;
}

SimDuration parse_duration(int line, const std::string& s) {
  std::size_t pos = 0;
  const long long value = std::stoll(s, &pos);
  const std::string unit = s.substr(pos);
  if (unit == "ms") return millis(value);
  if (unit == "s") return seconds(value);
  if (unit == "us") return micros(value);
  throw parse_error(line, "bad duration '" + s + "' (use us/ms/s)");
}

std::vector<NodeId> parse_id_list(int line, const std::string& s) {
  std::vector<NodeId> ids;
  std::istringstream in(s);
  std::string part;
  while (std::getline(in, part, ',')) {
    if (part.empty()) throw parse_error(line, "empty id in list '" + s + "'");
    ids.push_back(static_cast<NodeId>(std::stoi(part)));
  }
  if (ids.empty()) throw parse_error(line, "empty id list");
  return ids;
}

core::EngineState parse_state(int line, const std::string& s) {
  for (auto st : {core::EngineState::kNonPrim, core::EngineState::kRegPrim,
                  core::EngineState::kTransPrim, core::EngineState::kExchangeStates,
                  core::EngineState::kExchangeActions, core::EngineState::kConstruct,
                  core::EngineState::kNo, core::EngineState::kUn, core::EngineState::kLeft}) {
    if (to_string(st) == s) return st;
  }
  throw parse_error(line, "unknown engine state '" + s + "'");
}

}  // namespace

Scenario Scenario::parse(const std::string& text) {
  Scenario sc;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::vector<std::string> tokens = tokenize(raw);
    if (tokens.empty()) continue;
    Statement st;
    st.line = line_no;
    st.tokens = tokens;

    const std::string& cmd = tokens[0];
    auto need = [&](std::size_t n, const char* usage) {
      if (tokens.size() != n) throw parse_error(line_no, std::string("usage: ") + usage);
    };
    if (cmd == "replicas") {
      if (tokens.size() != 2 && !(tokens.size() == 4 && tokens[2] == "seed")) {
        throw parse_error(line_no, "usage: replicas N [seed S]");
      }
    } else if (cmd == "run") {
      need(2, "run <duration>");
      parse_duration(line_no, tokens[1]);
    } else if (cmd == "submit" || cmd == "submit-commutative") {
      if (tokens.size() != 5 || (tokens[2] != "put" && tokens[2] != "add")) {
        throw parse_error(line_no, std::string("usage: ") + cmd + " N put|add KEY VALUE");
      }
    } else if (cmd == "submit-timestamp") {
      need(5, "submit-timestamp N KEY VALUE TS");
    } else if (cmd == "query") {
      need(4, "query N weak|dirty|strict KEY");
      if (tokens[2] != "weak" && tokens[2] != "dirty" && tokens[2] != "strict") {
        throw parse_error(line_no, "query mode must be weak|dirty|strict");
      }
    } else if (cmd == "partition") {
      // partition 0,1 | 2,3 | 4
      std::vector<NodeId> current;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (tokens[i] == "|") {
          if (current.empty()) throw parse_error(line_no, "empty component");
          st.components.push_back(current);
          current.clear();
        } else {
          for (NodeId id : parse_id_list(line_no, tokens[i])) current.push_back(id);
        }
      }
      if (current.empty()) throw parse_error(line_no, "empty component");
      st.components.push_back(current);
    } else if (cmd == "heal" || cmd == "status" || cmd == "expect-consistent") {
      need(1, cmd.c_str());
    } else if (cmd == "crash" || cmd == "recover" || cmd == "leave") {
      need(2, (cmd + " N").c_str());
    } else if (cmd == "join") {
      if (tokens.size() != 4 || tokens[2] != "via") {
        throw parse_error(line_no, "usage: join N via P[,P...]");
      }
      parse_id_list(line_no, tokens[3]);
    } else if (cmd == "expect-get") {
      need(4, "expect-get N KEY VALUE");
    } else if (cmd == "expect-state") {
      need(3, "expect-state N STATE");
      parse_state(line_no, tokens[2]);
    } else if (cmd == "expect-converged") {
      need(2, "expect-converged A,B,...");
      parse_id_list(line_no, tokens[1]);
    } else if (cmd == "expect-red") {
      need(3, "expect-red N COUNT");
    } else {
      throw parse_error(line_no, "unknown statement '" + cmd + "'");
    }
    sc.statements_.push_back(std::move(st));
  }
  if (sc.statements_.empty() || sc.statements_[0].tokens[0] != "replicas") {
    throw std::runtime_error("scenario must start with 'replicas N'");
  }
  return sc;
}

ScenarioResult Scenario::run(std::function<void(const std::string&)> echo) {
  ScenarioResult result;
  std::unique_ptr<EngineCluster> cluster;

  auto note = [&](const std::string& s) {
    result.narration.push_back(s);
    if (echo) echo(s);
  };
  auto fail = [&](int line, const std::string& what) {
    result.ok = false;
    result.failures.push_back("line " + std::to_string(line) + ": " + what);
    if (echo) echo("FAIL line " + std::to_string(line) + ": " + what);
  };

  for (const Statement& st : statements_) {
    const auto& t = st.tokens;
    const std::string& cmd = t[0];
    if (cmd == "replicas") {
      ClusterOptions o;
      o.replicas = std::stoi(t[1]);
      if (t.size() == 4) o.seed = std::stoull(t[3]);
      // Scenario runs always trace and check: they are interactive/forensic
      // tools, not benchmarks, so observability is worth its cost. The
      // checker stays non-fatal here — violations surface in `status` and
      // expect-consistent rather than aborting the run.
      o.obs.trace = true;
      o.obs.check = true;
      o.obs.checker_fail_fast = false;
      cluster = std::make_unique<EngineCluster>(o);
      continue;
    }
    if (!cluster) throw parse_error(st.line, "cluster not created yet");
    EngineCluster& c = *cluster;

    if (cmd == "run") {
      c.run_for(parse_duration(st.line, t[1]));
    } else if (cmd == "submit" || cmd == "submit-commutative") {
      const NodeId n = static_cast<NodeId>(std::stoi(t[1]));
      db::Command command = t[2] == "put" ? db::Command::put(t[3], t[4])
                                          : db::Command::add(t[3], std::stoll(t[4]));
      const auto sem = cmd == "submit" ? core::Semantics::kStrict
                                       : core::Semantics::kCommutative;
      c.engine(n).submit({}, std::move(command), 0, sem, nullptr);
    } else if (cmd == "submit-timestamp") {
      const NodeId n = static_cast<NodeId>(std::stoi(t[1]));
      c.engine(n).submit({}, db::Command::timestamp_put(t[2], t[3], std::stoll(t[4])), 0,
                         core::Semantics::kTimestamp, nullptr);
    } else if (cmd == "query") {
      const NodeId n = static_cast<NodeId>(std::stoi(t[1]));
      const auto mode = t[2] == "weak"    ? core::QueryMode::kWeak
                        : t[2] == "dirty" ? core::QueryMode::kDirty
                                          : core::QueryMode::kStrict;
      const std::string key = t[3];
      const int line = st.line;
      c.engine(n).submit_query(db::Command::get(key), mode,
                               [&, n, key, line](const core::Reply& r) {
                                 note("query(line " + std::to_string(line) + ") node " +
                                      std::to_string(n) + " " + key + " = \"" +
                                      (r.reads.empty() ? "" : r.reads[0]) + "\"");
                               });
      c.run_for(millis(1));  // weak/dirty answer immediately; strict may not
    } else if (cmd == "partition") {
      // Components must cover every registered node; fill in missing ones
      // as singletons for script convenience.
      std::vector<std::vector<NodeId>> comps = st.components;
      std::vector<bool> covered(static_cast<std::size_t>(c.replicas()), false);
      for (const auto& comp : comps) {
        for (NodeId id : comp) covered.at(static_cast<std::size_t>(id)) = true;
      }
      for (NodeId id = 0; id < c.replicas(); ++id) {
        if (!covered[static_cast<std::size_t>(id)]) comps.push_back({id});
      }
      c.partition(comps);
    } else if (cmd == "heal") {
      c.heal();
    } else if (cmd == "crash") {
      c.crash(static_cast<NodeId>(std::stoi(t[1])));
    } else if (cmd == "recover") {
      c.recover(static_cast<NodeId>(std::stoi(t[1])));
    } else if (cmd == "join") {
      const NodeId id = static_cast<NodeId>(std::stoi(t[1]));
      auto& joiner = c.add_dormant(id);
      joiner.join_via(parse_id_list(st.line, t[3]));
    } else if (cmd == "leave") {
      c.engine(static_cast<NodeId>(std::stoi(t[1]))).request_leave();
    } else if (cmd == "status") {
      {
        std::ostringstream os;
        os << "  t=" << to_millis(c.sim().now()) << "ms seed=" << c.sim().seed();
        if (c.checker() != nullptr) os << " " << c.checker()->verdict();
        note(os.str());
      }
      for (NodeId i = 0; i < c.replicas(); ++i) {
        std::ostringstream os;
        os << "  node " << i << ": ";
        if (!c.node(i).running()) {
          os << (c.node(i).has_left() ? "left" : c.node(i).crashed() ? "crashed" : "dormant");
        } else {
          const auto& e = c.engine(i);
          os << to_string(e.state()) << " green=" << e.green_count()
             << " red=" << e.red_count() << " prim#" << e.prim_component().prim_index;
          if (e.stats().persist_batches > 0) {
            os << " batches=" << e.stats().persist_batches << "("
               << e.stats().persist_batch_actions << " actions)";
          }
        }
        note(os.str());
      }
    } else if (cmd == "expect-get") {
      const NodeId n = static_cast<NodeId>(std::stoi(t[1]));
      const std::string got = c.engine(n).database().get(t[2]);
      if (got != t[3]) {
        fail(st.line, "expect-get " + t[2] + ": got \"" + got + "\", want \"" + t[3] + "\"");
      }
    } else if (cmd == "expect-state") {
      const NodeId n = static_cast<NodeId>(std::stoi(t[1]));
      const auto want = parse_state(st.line, t[2]);
      if (!c.node(n).running()) {
        fail(st.line, "expect-state: node not running");
      } else if (c.engine(n).state() != want) {
        fail(st.line, "expect-state: got " + to_string(c.engine(n).state()) + ", want " + t[2]);
      }
    } else if (cmd == "expect-converged") {
      const auto ids = parse_id_list(st.line, t[1]);
      if (!c.converged_primary(ids)) {
        fail(st.line, "expect-converged: nodes are not one consistent primary");
      }
    } else if (cmd == "expect-red") {
      const NodeId n = static_cast<NodeId>(std::stoi(t[1]));
      const auto want = static_cast<std::size_t>(std::stoull(t[2]));
      if (c.engine(n).red_count() != want) {
        fail(st.line, "expect-red: got " + std::to_string(c.engine(n).red_count()) +
                          ", want " + t[2]);
      }
    } else if (cmd == "expect-consistent") {
      if (auto v = c.check_all()) fail(st.line, "invariant violated: " + *v);
    }
  }
  if (cluster && cluster->checker() != nullptr && !cluster->checker()->ok()) {
    result.ok = false;
    result.failures.push_back(cluster->checker()->report());
  }
  if (cluster && cluster->trace_bus()) {
    // Export hooks for CI artifacts and chrome://tracing forensics.
    if (const char* path = std::getenv("TORDB_OBS_TRACE_JSONL")) {
      if (*path != '\0') cluster->trace_bus()->write_file(path, cluster->trace_bus()->to_jsonl());
    }
    if (const char* path = std::getenv("TORDB_OBS_TRACE_CHROME")) {
      if (*path != '\0') {
        cluster->trace_bus()->write_file(path, cluster->trace_bus()->to_chrome_trace());
      }
    }
  }
  return result;
}

}  // namespace tordb::workload
