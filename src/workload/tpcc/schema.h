// TPC-C-style schema laid out on the ordered key space (DESIGN.md §12).
//
// Six tables — warehouse, district, customer, order, order-line, stock —
// become key families under one fixed-width, zero-padded warehouse prefix
// `w<0000>/`, so every row of warehouse w is lexicographically contiguous:
//
//   w0007/d03/c0012/bal     customer balance            (kAdd, commutative)
//   w0007/d03/c0012/last    customer's latest order id  (kPut)
//   w0007/d03/nord          admitted new-order count    (kAdd, commutative)
//   w0007/d03/o5-17         order row                   (kPut)
//   w0007/d03/ol5-17-2      order line 2 of that order  (kPut)
//   w0007/d03/q5-17         order delivery stamp        (kTimestampPut)
//   w0007/d03/ytd           district year-to-date       (kAdd, commutative)
//   w0007/i0042             item validity row, "1"      (loaded once; kCheck target)
//   w0007/s0042             stock quantity              (kAdd, commutative)
//   w0007/ytd               warehouse year-to-date      (kAdd, commutative)
//
// Contiguity is the point: `warehouse_splits` carves the key space at
// warehouse boundaries, so a range-sharded shard::Directory maps whole
// warehouses to groups, directory split/merge refines *within* the TPC-C
// data (split a hot warehouse block off), and the rebalancer's fenced
// range moves relocate warehouses with the generic machinery unmodified.
// The TPC-C ITEM table is global and read-only; like production partial
// replication would, we replicate a per-warehouse copy so new-order's item
// precondition checks are evaluated at the shard that orders the action.
#pragma once

#include <string>
#include <vector>

namespace tordb::workload::tpcc {

/// `w<0000>/` — the warehouse prefix every row of warehouse `w` shares.
/// Four digits bound the model at 10k warehouses, far past simulation scale.
std::string warehouse_prefix(int w);

std::string item_key(int w, int item);          ///< validity row, value "1"
std::string stock_key(int w, int item);         ///< quantity (numeric)
std::string warehouse_ytd_key(int w);           ///< numeric
std::string district_ytd_key(int w, int d);     ///< numeric
std::string district_order_count_key(int w, int d);  ///< admitted new-orders
std::string customer_balance_key(int w, int d, int c);
std::string customer_last_order_key(int w, int d, int c);
/// Order ids are (creating client, per-client sequence) — globally unique
/// without a read-modify-write on a district counter.
std::string order_key(int w, int d, std::int64_t client, std::int64_t n);
std::string order_line_key(int w, int d, std::int64_t client, std::int64_t n, int line);
std::string delivery_key(int w, int d, std::int64_t client, std::int64_t n);

/// Range-sharding split points that deal `warehouses` out to `shards` in
/// contiguous blocks (shard 0 gets the remainder): `shards - 1` ascending
/// warehouse-prefix bounds, ready for ShardedClusterOptions::range_splits.
std::vector<std::string> warehouse_splits(int warehouses, int shards);

/// The warehouse block [lo, hi) that `warehouse_splits` assigns to `shard`.
std::pair<int, int> shard_warehouses(int warehouses, int shards, int shard);

}  // namespace tordb::workload::tpcc
