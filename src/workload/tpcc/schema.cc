#include "workload/tpcc/schema.h"

#include <stdexcept>

namespace tordb::workload::tpcc {

namespace {

/// Append `v` zero-padded to `width` digits (keys must sort numerically).
void pad(std::string& out, int v, int width) {
  char buf[12];
  int len = 0;
  for (int x = v; x > 0; x /= 10) buf[len++] = static_cast<char>('0' + x % 10);
  for (int i = len; i < width; ++i) out.push_back('0');
  while (len > 0) out.push_back(buf[--len]);
}

std::string district_prefix(int w, int d) {
  std::string k = warehouse_prefix(w);
  k.push_back('d');
  pad(k, d, 2);
  k.push_back('/');
  return k;
}

void order_id(std::string& out, std::int64_t client, std::int64_t n) {
  out += std::to_string(client);
  out.push_back('-');
  out += std::to_string(n);
}

}  // namespace

std::string warehouse_prefix(int w) {
  std::string k;
  k.reserve(8);
  k.push_back('w');
  pad(k, w, 4);
  k.push_back('/');
  return k;
}

std::string item_key(int w, int item) {
  std::string k = warehouse_prefix(w);
  k.push_back('i');
  pad(k, item, 4);
  return k;
}

std::string stock_key(int w, int item) {
  std::string k = warehouse_prefix(w);
  k.push_back('s');
  pad(k, item, 4);
  return k;
}

std::string warehouse_ytd_key(int w) { return warehouse_prefix(w) + "ytd"; }

std::string district_ytd_key(int w, int d) { return district_prefix(w, d) + "ytd"; }

std::string district_order_count_key(int w, int d) { return district_prefix(w, d) + "nord"; }

std::string customer_balance_key(int w, int d, int c) {
  std::string k = district_prefix(w, d);
  k.push_back('c');
  pad(k, c, 4);
  k += "/bal";
  return k;
}

std::string customer_last_order_key(int w, int d, int c) {
  std::string k = district_prefix(w, d);
  k.push_back('c');
  pad(k, c, 4);
  k += "/last";
  return k;
}

std::string order_key(int w, int d, std::int64_t client, std::int64_t n) {
  std::string k = district_prefix(w, d);
  k.push_back('o');
  order_id(k, client, n);
  return k;
}

std::string order_line_key(int w, int d, std::int64_t client, std::int64_t n, int line) {
  std::string k = district_prefix(w, d);
  k += "ol";
  order_id(k, client, n);
  k.push_back('-');
  k += std::to_string(line);
  return k;
}

std::string delivery_key(int w, int d, std::int64_t client, std::int64_t n) {
  std::string k = district_prefix(w, d);
  k.push_back('q');
  order_id(k, client, n);
  return k;
}

std::vector<std::string> warehouse_splits(int warehouses, int shards) {
  if (shards < 1 || warehouses < shards) {
    throw std::invalid_argument("warehouse_splits needs warehouses >= shards >= 1");
  }
  std::vector<std::string> splits;
  for (int s = 1; s < shards; ++s) {
    splits.push_back(warehouse_prefix(shard_warehouses(warehouses, shards, s).first));
  }
  return splits;
}

std::pair<int, int> shard_warehouses(int warehouses, int shards, int shard) {
  // Contiguous blocks of floor(W/S), the first W mod S shards one wider —
  // the same dealing as the split points, kept in one place.
  const int base = warehouses / shards;
  const int extra = warehouses % shards;
  const int lo = shard * base + (shard < extra ? shard : extra);
  return {lo, lo + base + (shard < extra ? 1 : 0)};
}

}  // namespace tordb::workload::tpcc
