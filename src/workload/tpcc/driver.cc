#include "workload/tpcc/driver.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace tordb::workload::tpcc {

namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
constexpr std::size_t kRecentItemsCap = 20;  ///< stock-level looks at the last 20 items
constexpr std::size_t kLoadChunkOps = 128;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t s = h ^ (v + kGolden + (h << 6) + (h >> 2));
  return splitmix64(s);
}

}  // namespace

const char* to_string(TxnType t) {
  switch (t) {
    case TxnType::kNewOrder: return "new_order";
    case TxnType::kPayment: return "payment";
    case TxnType::kDelivery: return "delivery";
    case TxnType::kOrderStatus: return "order_status";
    case TxnType::kStockLevel: return "stock_level";
  }
  return "?";
}

TpccDriver::TpccDriver(ShardedCluster& cluster, TpccOptions options)
    : cluster_(cluster),
      sim_(cluster.sim()),
      options_(options),
      zipf_(static_cast<std::uint64_t>(options.warehouses), options.zipf_theta),
      alive_(std::make_shared<bool>(true)) {
  if (options_.warehouses < 1 || options_.districts < 1 || options_.customers < 1 ||
      options_.items < 1 || options_.clients < 1 || options_.max_order_lines < 1 ||
      options_.delivery_batch < 1) {
    throw std::invalid_argument("tpcc options must all be >= 1");
  }
  if (options_.pct_new_order + options_.pct_payment + options_.pct_delivery +
          options_.pct_order_status > 100) {
    throw std::invalid_argument("tpcc mix percentages exceed 100");
  }
  const int districts_total = options_.warehouses * options_.districts;
  undelivered_.resize(static_cast<std::size_t>(districts_total));
  recent_items_.resize(static_cast<std::size_t>(districts_total));
  payment_sum_.assign(static_cast<std::size_t>(districts_total), 0);
  admitted_new_orders_.assign(static_cast<std::size_t>(districts_total), 0);
  terminals_.resize(static_cast<std::size_t>(options_.clients));
  for (int t = 0; t < options_.clients; ++t) {
    auto& term = terminals_[static_cast<std::size_t>(t)];
    term.id = t;
    // Same derivation discipline as ShardedCluster::shard_seed: two splitmix
    // steps over (seed, terminal id) for uncorrelated per-terminal streams.
    std::uint64_t x = options_.seed;
    (void)splitmix64(x);
    x ^= static_cast<std::uint64_t>(0x7c00 + t) * kGolden;
    term.rng = Rng(splitmix64(x));
  }
}

void TpccDriver::load() {
  // Initial rows: per-warehouse item validity ("1", the kCheck target) and
  // starting stock. Customer balances, ytd counters and order counts begin
  // as absent keys (kAdd reads absent as 0), so nothing else is loaded.
  const int shards = cluster_.shards();
  std::vector<std::vector<db::Op>> rows(static_cast<std::size_t>(shards));
  for (int w = 0; w < options_.warehouses; ++w) {
    for (int i = 0; i < options_.items; ++i) {
      std::string ik = item_key(w, i);
      std::string sk = stock_key(w, i);
      auto& item_bucket = rows[static_cast<std::size_t>(cluster_.directory().shard_of(ik))];
      item_bucket.push_back(db::Op{db::OpType::kPut, std::move(ik), "1", 0});
      auto& stock_bucket = rows[static_cast<std::size_t>(cluster_.directory().shard_of(sk))];
      stock_bucket.push_back(db::Op{db::OpType::kPut, std::move(sk), "100", 0});
    }
  }
  // One loader session (client id just past the terminals) per shard, in
  // bounded chunks; each chunk is single-shard by construction.
  auto outstanding = std::make_shared<std::int64_t>(0);
  const std::int64_t loader = options_.clients;
  for (int s = 0; s < shards; ++s) {
    auto& bucket = rows[static_cast<std::size_t>(s)];
    for (std::size_t at = 0; at < bucket.size(); at += kLoadChunkOps) {
      db::Command cmd;
      const std::size_t end = std::min(at + kLoadChunkOps, bucket.size());
      cmd.ops.assign(bucket.begin() + static_cast<std::ptrdiff_t>(at),
                     bucket.begin() + static_cast<std::ptrdiff_t>(end));
      ++*outstanding;
      cluster_.router().submit(loader, std::move(cmd),
                               [outstanding](const shard::RouteReply& r) {
                                 if (!r.committed) {
                                   throw std::runtime_error("tpcc load command aborted");
                                 }
                                 --*outstanding;
                               });
    }
  }
  for (int spins = 0; *outstanding > 0; ++spins) {
    if (spins > 1200) throw std::runtime_error("tpcc load did not complete");
    cluster_.run_for(millis(100));
  }
}

void TpccDriver::start(SimTime window_start, SimTime window_end) {
  window_start_ = window_start;
  window_end_ = window_end;
  if (const auto& metrics = cluster_.metrics()) {
    for (int t = 0; t < kTxnTypes; ++t) {
      const std::string prefix = std::string("tpcc.") + to_string(static_cast<TxnType>(t));
      m_committed_[t] = &metrics->counter(prefix + ".committed");
      m_aborted_[t] = &metrics->counter(prefix + ".aborted");
      m_latency_[t] = &metrics->histogram(prefix + ".latency_us");
    }
    m_aborted_check_ = &metrics->counter("tpcc.aborted.check");
    m_aborted_fenced_ = &metrics->counter("tpcc.aborted.fenced");
    m_cross_ = &metrics->counter("tpcc.cross.committed");
    m_remote_unchecked_ = &metrics->counter("tpcc.new_order.remote_unchecked");
    m_remote_checked_ = &metrics->counter("tpcc.new_order.remote_checked");
    m_bounces_ = &metrics->counter("tpcc.fenced_bounces");
  }
  if (options_.hotspot_shift_after > 0) {
    sim_.after(options_.hotspot_shift_after, [this, alive = alive_] {
      if (!*alive) return;
      const int offset =
          options_.hotspot_shift_offset < 0 ? options_.warehouses / 2 : options_.hotspot_shift_offset;
      hot_offset_ = offset % options_.warehouses;
    });
  }
  for (std::size_t t = 0; t < terminals_.size(); ++t) issue(t);
}

bool TpccDriver::idle() const {
  return window_end_ > 0 && sim_.now() >= window_end_ && cluster_.router().idle() &&
         cluster_.txn().idle();
}

std::uint64_t TpccDriver::committed_in_window() const {
  std::uint64_t sum = 0;
  for (const TxnStats& s : window_) sum += s.committed;
  return sum;
}

std::uint64_t TpccDriver::aborted_checks_in_window() const {
  std::uint64_t sum = 0;
  for (const TxnStats& s : window_) sum += s.aborted_check;
  return sum;
}

std::int64_t TpccDriver::payment_sum(int w, int d) const {
  return payment_sum_[static_cast<std::size_t>(district_index(w, d))];
}

std::int64_t TpccDriver::admitted_new_orders(int w, int d) const {
  return admitted_new_orders_[static_cast<std::size_t>(district_index(w, d))];
}

std::uint64_t TpccDriver::state_digest() const {
  std::uint64_t h = 0x74706363ULL;  // "tpcc"
  for (const TxnStats& s : total_) {
    h = mix(h, s.committed);
    h = mix(h, s.aborted_check);
    h = mix(h, s.aborted_fenced);
    h = mix(h, s.aborted_other);
  }
  h = mix(h, cross_committed_);
  h = mix(h, remote_unchecked_);
  h = mix(h, remote_checked_);
  h = mix(h, deliveries_stamped_);
  for (std::size_t i = 0; i < payment_sum_.size(); ++i) {
    h = mix(h, static_cast<std::uint64_t>(payment_sum_[i]));
    h = mix(h, static_cast<std::uint64_t>(admitted_new_orders_[i]));
  }
  for (int s = 0; s < cluster_.shards(); ++s) {
    h = mix(h, static_cast<std::uint64_t>(cluster_.green_count(s)));
    for (int i = 0; i < cluster_.replicas_per_shard(); ++i) {
      const auto& node = cluster_.node(s, i);
      if (node.running()) h = mix(h, node.engine().db_digest());
    }
  }
  return h;
}

int TpccDriver::pick_warehouse(Rng& rng) {
  const auto rank = zipf_.next(rng);
  return static_cast<int>((rank + static_cast<std::uint64_t>(hot_offset_)) %
                          static_cast<std::uint64_t>(options_.warehouses));
}

core::ReplicaNode* TpccDriver::query_replica(int shard) {
  for (int i = 0; i < cluster_.replicas_per_shard(); ++i) {
    core::ReplicaNode& node = cluster_.node(shard, i);
    if (node.running() && !node.has_left()) return &node;
  }
  return nullptr;
}

void TpccDriver::issue(std::size_t t) {
  if (sim_.now() >= window_end_) return;  // terminal stops at window end
  Rng& rng = terminals_[t].rng;
  const int draw = static_cast<int>(rng.next_below(100));
  if (draw < options_.pct_new_order) {
    do_new_order(t);
  } else if (draw < options_.pct_new_order + options_.pct_payment) {
    do_payment(t);
  } else if (draw < options_.pct_new_order + options_.pct_payment + options_.pct_delivery) {
    do_delivery(t);
  } else if (draw < options_.pct_new_order + options_.pct_payment + options_.pct_delivery +
                        options_.pct_order_status) {
    do_order_status(t);
  } else {
    do_stock_level(t);
  }
}

void TpccDriver::record(TxnType type, SimTime t0, bool committed, bool check_aborted,
                        bool fenced) {
  const auto idx = static_cast<std::size_t>(type);
  const SimTime now = sim_.now();
  auto bump = [&](TxnStats& s, bool with_latency) {
    if (committed) {
      ++s.committed;
      if (with_latency) s.latency.record(now - t0);
    } else if (check_aborted) {
      ++s.aborted_check;
    } else if (fenced) {
      ++s.aborted_fenced;
    } else {
      ++s.aborted_other;
    }
  };
  bump(total_[idx], false);
  if (now >= window_start_ && now < window_end_) bump(window_[idx], true);
  if (m_committed_[idx] != nullptr) {
    if (committed) {
      m_committed_[idx]->inc();
      m_latency_[idx]->record((now - t0) / 1000);  // ns -> us
    } else {
      m_aborted_[idx]->inc();
      if (check_aborted) m_aborted_check_->inc();
      if (fenced) m_aborted_fenced_->inc();
    }
  }
}

void TpccDriver::finish(std::size_t t, TxnType type, SimTime t0, const shard::RouteReply& r) {
  fenced_bounces_ += static_cast<std::uint64_t>(r.fenced_bounces);
  if (m_bounces_ != nullptr && r.fenced_bounces > 0) {
    m_bounces_->inc(static_cast<std::uint64_t>(r.fenced_bounces));
  }
  record(type, t0, r.committed, r.check_aborted, r.fenced);
  issue(t);
}

void TpccDriver::do_new_order(std::size_t t) {
  Terminal& term = terminals_[t];
  Rng& rng = term.rng;
  const SimTime t0 = sim_.now();
  const int w = pick_warehouse(rng);
  const int d = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(options_.districts)));
  const int c = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(options_.customers)));
  const int lines =
      1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(options_.max_order_lines)));
  // TPC-C's remote knob: the order's supplier warehouse is foreign. Under
  // range sharding by warehouse this is exactly the cross-shard fraction.
  int supply = w;
  if (options_.warehouses > 1 && rng.chance(options_.remote_fraction)) {
    supply = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(options_.warehouses - 1)));
    if (supply >= w) ++supply;
  }
  const std::int64_t n = ++term.next_order;

  db::Command cmd;
  cmd.ops.reserve(static_cast<std::size_t>(3 * lines + 4));
  std::vector<int> picked;
  picked.reserve(static_cast<std::size_t>(lines));
  for (int l = 0; l < lines; ++l) {
    const int item =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(options_.items)));
    const std::int64_t qty = 1 + rng.next_range(0, 4);
    // Item precondition + commutative stock decrement at the supplier,
    // order-line row at the home district.
    cmd.ops.push_back(db::Op{db::OpType::kCheck, item_key(supply, item), "1", 0});
    cmd.ops.push_back(db::Op{db::OpType::kAdd, stock_key(supply, item), "", -qty});
    std::string line_val = "i";
    line_val += std::to_string(item);
    line_val += "/q";
    line_val += std::to_string(qty);
    cmd.ops.push_back(db::Op{db::OpType::kPut, order_line_key(w, d, term.id, n, l),
                             std::move(line_val), 0});
    picked.push_back(item);
  }
  std::string order_val = "c";
  order_val += std::to_string(c);
  order_val += "/ol";
  order_val += std::to_string(lines);
  cmd.ops.push_back(
      db::Op{db::OpType::kPut, order_key(w, d, term.id, n), std::move(order_val), 0});
  cmd.ops.push_back(db::Op{db::OpType::kPut, customer_last_order_key(w, d, c),
                           std::to_string(term.id) + "-" + std::to_string(n), 0});
  cmd.ops.push_back(db::Op{db::OpType::kAdd, district_order_count_key(w, d), "", 1});
  // TPC-C §2.4.1.5: ~1% of orders carry an invalid item; the kCheck against
  // the out-of-catalog row fails and the whole order aborts atomically — for
  // a remote supplier that abort spans shards through the coordinator.
  if (rng.chance(options_.invalid_item_fraction)) {
    cmd.ops.push_back(db::Op{db::OpType::kCheck, item_key(supply, options_.items), "1", 0});
  }
  if (cluster_.directory().shards_of(cmd).size() > 1) {
    if (options_.unchecked_remote) {
      // A10 ablation: the pre-coordinator downgrade. Strip the per-shard
      // preconditions and apply the remote order unconditionally.
      std::erase_if(cmd.ops, [](const db::Op& op) { return op.type == db::OpType::kCheck; });
      ++remote_unchecked_;
      if (m_remote_unchecked_ != nullptr) m_remote_unchecked_->inc();
    } else {
      // Checks kept: the router hands the command to the prepared-check
      // transaction coordinator (DESIGN.md §13), which evaluates each kCheck
      // at its owning shard and confirms or cancels atomically everywhere.
      ++remote_checked_;
      if (m_remote_checked_ != nullptr) m_remote_checked_->inc();
    }
  }

  cluster_.router().submit(
      term.id, std::move(cmd),
      [this, alive = alive_, t, t0, w, d, client = term.id, n,
       picked = std::move(picked)](const shard::RouteReply& r) {
        if (!*alive) return;
        if (r.committed) {
          const auto di = static_cast<std::size_t>(district_index(w, d));
          ++admitted_new_orders_[di];
          undelivered_[di].push_back(OrderRef{client, n});
          auto& ring = recent_items_[di];
          for (const int item : picked) {
            ring.push_back(item);
            if (ring.size() > kRecentItemsCap) ring.erase(ring.begin());
          }
          if (r.shards_involved > 1) {
            ++cross_committed_;
            if (m_cross_ != nullptr) m_cross_->inc();
          }
        }
        finish(t, TxnType::kNewOrder, t0, r);
      });
}

void TpccDriver::do_payment(std::size_t t) {
  Terminal& term = terminals_[t];
  Rng& rng = term.rng;
  const SimTime t0 = sim_.now();
  const int w = pick_warehouse(rng);
  const int d = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(options_.districts)));
  const int c = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(options_.customers)));
  const std::int64_t amount = rng.next_range(1, 5000);
  // TPC-C §2.5.1.2: a fraction of payments are made by a customer of a
  // remote warehouse — the home district books the ytd, the foreign shard
  // books the balance, one commutative action through the commit barrier.
  int cw = w;
  if (options_.warehouses > 1 && rng.chance(options_.remote_fraction)) {
    cw = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(options_.warehouses - 1)));
    if (cw >= w) ++cw;
  }

  db::Command cmd;
  cmd.ops.reserve(3);
  cmd.ops.push_back(db::Op{db::OpType::kAdd, warehouse_ytd_key(w), "", amount});
  cmd.ops.push_back(db::Op{db::OpType::kAdd, district_ytd_key(w, d), "", amount});
  cmd.ops.push_back(db::Op{db::OpType::kAdd, customer_balance_key(cw, d, c), "", amount});

  cluster_.router().submit(term.id, std::move(cmd),
                           [this, alive = alive_, t, t0, w, d, amount](const shard::RouteReply& r) {
                             if (!*alive) return;
                             if (r.committed) {
                               payment_sum_[static_cast<std::size_t>(district_index(w, d))] +=
                                   amount;
                               if (r.shards_involved > 1) {
                                 ++cross_committed_;
                                 if (m_cross_ != nullptr) m_cross_->inc();
                               }
                             }
                             finish(t, TxnType::kPayment, t0, r);
                           });
}

void TpccDriver::do_delivery(std::size_t t) {
  Terminal& term = terminals_[t];
  Rng& rng = term.rng;
  const SimTime t0 = sim_.now();
  const int w = pick_warehouse(rng);
  const int d = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(options_.districts)));
  auto& queue = undelivered_[static_cast<std::size_t>(district_index(w, d))];
  if (queue.empty()) {
    // Nothing admitted for this district yet — draw the next transaction
    // (the rng advanced, so this is not a fixed point).
    ++delivery_empty_;
    issue(t);
    return;
  }
  std::vector<OrderRef> batch;
  const int take = std::min<int>(options_.delivery_batch, static_cast<int>(queue.size()));
  batch.reserve(static_cast<std::size_t>(take));
  for (int i = 0; i < take; ++i) {
    batch.push_back(queue.front());
    queue.pop_front();
  }
  db::Command cmd;
  cmd.ops.reserve(batch.size());
  for (const OrderRef& ref : batch) {
    cmd.ops.push_back(
        db::Op{db::OpType::kTimestampPut, delivery_key(w, d, ref.client, ref.n), "D", t0});
  }

  cluster_.router().submit(
      term.id, std::move(cmd),
      [this, alive = alive_, t, t0, w, d, batch = std::move(batch)](const shard::RouteReply& r) {
        if (!*alive) return;
        if (r.committed) {
          deliveries_stamped_ += batch.size();
        } else {
          // Put the undelivered orders back in age order for a later pass.
          auto& queue = undelivered_[static_cast<std::size_t>(district_index(w, d))];
          queue.insert(queue.begin(), batch.begin(), batch.end());
        }
        finish(t, TxnType::kDelivery, t0, r);
      });
}

void TpccDriver::do_order_status(std::size_t t) {
  Terminal& term = terminals_[t];
  Rng& rng = term.rng;
  const SimTime t0 = sim_.now();
  const int w = pick_warehouse(rng);
  const int d = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(options_.districts)));
  const int c = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(options_.customers)));
  std::string balance_key = customer_balance_key(w, d, c);
  const int shard = cluster_.directory().shard_of_cached(balance_key);
  db::Command query;
  query.ops.push_back(db::Op{db::OpType::kGet, std::move(balance_key), "", 0});
  query.ops.push_back(db::Op{db::OpType::kGet, customer_last_order_key(w, d, c), "", 0});

  core::ReplicaNode* node = query_replica(shard);
  if (node == nullptr) {
    record(TxnType::kOrderStatus, t0, false, false, false);
    issue(t);
    return;
  }
  node->engine().submit_query(std::move(query), core::QueryMode::kWeak,
                              [this, alive = alive_, t, t0](const core::Reply& r) {
                                if (!*alive) return;
                                record(TxnType::kOrderStatus, t0, !r.aborted, false, false);
                                issue(t);
                              });
}

void TpccDriver::do_stock_level(std::size_t t) {
  Terminal& term = terminals_[t];
  Rng& rng = term.rng;
  const SimTime t0 = sim_.now();
  const int w = pick_warehouse(rng);
  const int d = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(options_.districts)));
  const auto& ring = recent_items_[static_cast<std::size_t>(district_index(w, d))];
  db::Command query;
  if (ring.empty()) {
    query.ops.push_back(db::Op{db::OpType::kGet, stock_key(w, 0), "", 0});
  } else {
    query.ops.reserve(ring.size());
    for (const int item : ring) {
      query.ops.push_back(db::Op{db::OpType::kGet, stock_key(w, item), "", 0});
    }
  }
  const int shard = cluster_.directory().shard_of_cached(query.ops.front().key);

  core::ReplicaNode* node = query_replica(shard);
  if (node == nullptr) {
    record(TxnType::kStockLevel, t0, false, false, false);
    issue(t);
    return;
  }
  node->engine().submit_query(std::move(query), core::QueryMode::kDirty,
                              [this, alive = alive_, t, t0](const core::Reply& r) {
                                if (!*alive) return;
                                record(TxnType::kStockLevel, t0, !r.aborted, false, false);
                                issue(t);
                              });
}

}  // namespace tordb::workload::tpcc
