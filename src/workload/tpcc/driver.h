// TPC-C-style closed-loop driver over a ShardedCluster (DESIGN.md §12).
//
// The five-transaction mix exercises the paper's whole §6 semantics family
// against one realistic multi-table workload:
//
//   new-order     multi-key active update: kCheck item preconditions guard
//                 the whole command (a failed check aborts atomically at
//                 every replica — the paper's interactive-transaction
//                 mechanism), stock decrements ride as commutative kAdds.
//   payment       pure commutative kAdd increments (warehouse/district ytd,
//                 customer balance); the remote-customer knob makes a
//                 fraction of them cross-shard through the router's commit
//                 barrier.
//   delivery      a batched kTimestampPut stamping recent orders of one
//                 district (last-writer-wins timestamps, §6).
//   order-status  weak query: consistent-but-possibly-stale read of the
//                 customer's balance and latest order from the green state.
//   stock-level   dirty query: reads recent items' stock through the red
//                 overlay — the freshest local information.
//
// Cross-shard atomicity model: a new-order whose supplier warehouse lives
// on a foreign shard keeps its kCheck item preconditions — the router hands
// the command to the prepared-check transaction coordinator (src/txn,
// DESIGN.md §13), which evaluates each check at its owning shard and
// confirms or cancels the buffered updates identically everywhere. Checked
// remote orders are counted (`remote_checked`); an injected invalid item on
// a remote order aborts the whole order atomically at every involved shard.
// The `unchecked_remote` ablation knob restores the historical downgrade
// (strip the checks, apply unconditionally, count `remote_unchecked`) so
// the A10 experiment can quantify what the coordinator buys and costs.
//
// Skew: warehouses are picked through a util::ZipfGenerator rank stream; a
// configurable mid-run hotspot shift rotates rank→warehouse assignment so
// the hot range jumps to a different shard while the run is live — the
// scenario the load-driven auto-rebalancing roadmap item trains against.
//
// Determinism: per-client splitmix-derived Rng streams, all timestamps
// virtual — a fixed (cluster seed, TpccOptions::seed) reproduces the exact
// transaction sequence, admitted set, and final per-shard digests.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "util/zipf.h"
#include "workload/sharded_cluster.h"
#include "workload/stats.h"
#include "workload/tpcc/schema.h"

namespace tordb::workload::tpcc {

enum class TxnType : std::uint8_t {
  kNewOrder = 0,
  kPayment = 1,
  kDelivery = 2,
  kOrderStatus = 3,
  kStockLevel = 4,
};
inline constexpr int kTxnTypes = 5;
const char* to_string(TxnType t);

struct TpccOptions {
  // Scale (deliberately small defaults: simulated minutes, not rated tpmC).
  int warehouses = 4;
  int districts = 2;  ///< per warehouse (TPC-C: 10)
  int customers = 12; ///< per district (TPC-C: 3000)
  int items = 48;     ///< per-warehouse catalog copy (TPC-C: 100k, global)
  int clients = 8;    ///< closed-loop terminals
  /// Transaction mix in percent (TPC-C §5.2.3 steady-state weights);
  /// stock-level takes the remainder to 100.
  int pct_new_order = 45;
  int pct_payment = 43;
  int pct_delivery = 4;
  int pct_order_status = 4;
  /// Probability that a new-order's supplier (resp. a payment's customer)
  /// is a foreign warehouse — TPC-C's "remote" knob, and under range
  /// sharding by warehouse, directly the cross-shard fraction.
  double remote_fraction = 0.10;
  /// New-orders carrying a deliberately invalid item id: the kCheck
  /// precondition fails and the whole command aborts deterministically
  /// (TPC-C §2.4.1.5 mandates 1%). Applies to local AND remote orders —
  /// a remote invalid item exercises the coordinator's atomic cross-shard
  /// abort (unless `unchecked_remote` strips the checks).
  double invalid_item_fraction = 0.01;
  /// Ablation (experiment A10): strip kChecks from cross-shard new-orders
  /// and apply them unconditionally — the pre-coordinator downgrade. Off by
  /// default: remote preconditions are enforced via the prepared-check
  /// transaction coordinator and remote_unchecked stays 0.
  bool unchecked_remote = false;
  int max_order_lines = 6;  ///< lines per order, uniform in [1, max] (TPC-C: 5..15)
  int delivery_batch = 10;  ///< orders stamped per delivery (TPC-C: one per district)
  /// Zipf exponent for warehouse choice; 0 = uniform (no hotspot).
  double zipf_theta = 0.0;
  /// > 0: this long after start(), rotate the Zipf rank→warehouse mapping
  /// by `hotspot_shift_offset` so the hot warehouses move shards mid-run.
  SimDuration hotspot_shift_after = 0;
  int hotspot_shift_offset = -1;  ///< -1 = warehouses / 2
  std::uint64_t seed = 1;         ///< folded with per-client ids into Rng streams
};

/// Completion counts within the measurement window, per transaction type.
struct TxnStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted_check = 0;   ///< own kCheck failed (real TPC-C abort)
  std::uint64_t aborted_fenced = 0;  ///< fence-bounce budget exhausted mid-rebalance
  std::uint64_t aborted_other = 0;   ///< no replica reachable / attempts exhausted
  LatencyStats latency;              ///< committed txns only
};

class TpccDriver {
 public:
  TpccDriver(ShardedCluster& cluster, TpccOptions options);

  /// Populate the item catalog and initial stock (runs the simulation until
  /// the load commits). Call once, after the shards formed their primaries.
  void load();

  /// Attach the closed-loop terminals. Latency/counts are recorded for
  /// completions inside [window_start, window_end); issuing stops at
  /// window_end (in-flight transactions drain afterwards).
  void start(SimTime window_start, SimTime window_end);

  /// True once every terminal stopped and the router drained.
  bool idle() const;

  // --- measurement-window results -------------------------------------------
  const TxnStats& stats(TxnType t) const {
    return window_[static_cast<std::size_t>(t)];
  }
  std::uint64_t committed_in_window() const;
  std::uint64_t aborted_checks_in_window() const;

  // --- full-run accounting (ledgers for the consistency tests) --------------
  const TxnStats& total(TxnType t) const { return total_[static_cast<std::size_t>(t)]; }
  /// Sum of committed payment amounts whose home district is (w, d) — must
  /// equal the database's district ytd row exactly (commutative kAdds,
  /// exactly-once sessions).
  std::int64_t payment_sum(int w, int d) const;
  /// Committed new-orders of district (w, d) — must equal the district's
  /// admitted order-count row (the kAdd rides inside the checked command).
  std::int64_t admitted_new_orders(int w, int d) const;
  std::uint64_t cross_shard_committed() const { return cross_committed_; }
  std::uint64_t remote_unchecked() const { return remote_unchecked_; }
  /// Cross-shard new-orders issued WITH their item preconditions — routed
  /// through the prepared-check coordinator. Zero iff unchecked_remote.
  std::uint64_t remote_checked() const { return remote_checked_; }
  std::uint64_t fenced_bounces() const { return fenced_bounces_; }
  std::uint64_t deliveries_stamped() const { return deliveries_stamped_; }

  /// Fold the full-run transaction counts and every shard's converged state
  /// (green watermark + running replicas' database digests) into one value:
  /// two same-seed runs must produce identical digests (bit-identical
  /// simulated results).
  std::uint64_t state_digest() const;

  const TpccOptions& options() const { return options_; }

 private:
  struct Terminal {
    std::int64_t id = 0;
    Rng rng{0};
    std::int64_t next_order = 0;
  };
  /// (creating client, per-client order number): an admitted, undelivered order.
  struct OrderRef {
    std::int64_t client;
    std::int64_t n;
  };

  int district_index(int w, int d) const { return w * options_.districts + d; }
  int pick_warehouse(Rng& rng);
  core::ReplicaNode* query_replica(int shard);
  void issue(std::size_t t);
  void finish(std::size_t t, TxnType type, SimTime t0, const shard::RouteReply& r);
  void record(TxnType type, SimTime t0, bool committed, bool check_aborted, bool fenced);

  void do_new_order(std::size_t t);
  void do_payment(std::size_t t);
  void do_delivery(std::size_t t);
  void do_order_status(std::size_t t);
  void do_stock_level(std::size_t t);

  ShardedCluster& cluster_;
  Simulator& sim_;
  TpccOptions options_;
  util::ZipfGenerator zipf_;
  int hot_offset_ = 0;
  SimTime window_start_ = 0;
  SimTime window_end_ = 0;
  std::vector<Terminal> terminals_;
  std::shared_ptr<bool> alive_;

  // Per-district driver-side bookkeeping (indexed by district_index).
  std::vector<std::deque<OrderRef>> undelivered_;
  std::vector<std::vector<int>> recent_items_;  ///< last-ordered item ids, capped
  std::vector<std::int64_t> payment_sum_;
  std::vector<std::int64_t> admitted_new_orders_;

  TxnStats window_[kTxnTypes];
  TxnStats total_[kTxnTypes];
  std::uint64_t cross_committed_ = 0;
  std::uint64_t remote_unchecked_ = 0;
  std::uint64_t remote_checked_ = 0;
  std::uint64_t fenced_bounces_ = 0;
  std::uint64_t deliveries_stamped_ = 0;
  std::uint64_t delivery_empty_ = 0;  ///< delivery draws with nothing to stamp

  // Metric handles (null when the cluster has no registry): cumulative
  // counters/histograms under tpcc.*, windowed by the registry's roll.
  obs::Counter* m_committed_[kTxnTypes] = {};
  obs::Counter* m_aborted_[kTxnTypes] = {};
  obs::Histogram* m_latency_[kTxnTypes] = {};
  obs::Counter* m_aborted_check_ = nullptr;
  obs::Counter* m_aborted_fenced_ = nullptr;
  obs::Counter* m_cross_ = nullptr;
  obs::Counter* m_remote_unchecked_ = nullptr;
  obs::Counter* m_remote_checked_ = nullptr;
  obs::Counter* m_bounces_ = nullptr;
};

}  // namespace tordb::workload::tpcc
