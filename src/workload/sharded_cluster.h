// Sharded deployment harness: N independent replication groups (one per
// shard of the key space) over ONE simulated network and ONE virtual clock,
// fronted by a shard::Router (DESIGN.md §8).
//
// Each shard is a full engine group exactly as EngineCluster builds one —
// its own EVS membership, quorum state and stable storage — and the engine
// itself is untouched: isolation comes from Network::set_group scoping the
// reachability service per shard, so the groups never see each other's
// membership events while sharing the network's clock, latency model and
// per-node CPU accounting.
//
// Node ids are global and contiguous: shard s owns ids
// [s * replicas_per_shard, (s+1) * replicas_per_shard). Topology controls
// take (shard, local index) so tests speak per-group; partitions compose
// across shards (each shard's component layout is tracked separately and
// the global component set is rebuilt from the product).
//
// Determinism: the Simulator is seeded with the base seed — a 1-shard
// ShardedCluster schedules events bit-identically to an EngineCluster of
// the same seed and size. Per-shard workload seeds come from shard_seed(),
// a splitmix64 derivation of (base seed, shard id), so shards drive
// uncorrelated but reproducible load.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "shard/rebalancer.h"
#include "shard/router.h"
#include "txn/coordinator.h"
#include "workload/cluster.h"

namespace tordb::workload {

struct ShardedClusterOptions {
  int shards = 2;
  int replicas_per_shard = 3;
  std::uint64_t seed = 1;
  /// Non-empty: range sharding with these split points (size = shards - 1).
  /// Empty: hash sharding.
  std::vector<std::string> range_splits;
  NetworkParams net;
  core::ReplicaOptions node;
  /// Per-(client, shard) session knobs. retry_when_unavailable is forced on
  /// so cross-shard actions wait out whole-group outages instead of
  /// half-applying.
  core::SessionOptions session;
  /// Rebalancer knobs (its fence/install sessions always use `session`).
  shard::RebalancerOptions rebalance;
  /// Forwarded to the transaction coordinator's crash-model test hook
  /// (txn::TxnOptions::halt_at_stage); 0 in every production configuration.
  int txn_halt_at_stage = 0;
  ObsOptions obs;

  // --- parallel simulation (event lanes, DESIGN.md §15) ----------------------
  /// Worker threads executing shard lanes. 1 = the classic single-threaded
  /// event loop, bit-identical to every previous release (the sim_digest
  /// goldens). >= 2 partitions the simulator into one event lane per shard
  /// plus a control lane; the merged schedule is bit-identical for ANY
  /// thread count >= the switch to lane mode, but lane mode itself is a
  /// (deterministic) model refinement: cross-tier calls pay an explicit
  /// handoff latency instead of being instantaneous.
  int sim_threads = 1;
  /// Force lane mode even with sim_threads == 1 — the single-threaded
  /// baseline the parallel equivalence tests compare against.
  bool sim_lanes = false;
  /// Cross-lane handoff latency (the conservative-window lookahead).
  /// 0 = net.base_latency. Must be <= net.detect_delay.
  SimDuration sim_handoff = 0;
  /// Honor TORDB_SIM_THREADS / TORDB_SIM_LANES from the environment
  /// (overriding the two knobs above). Golden-pinned tests set this false
  /// so a CI-wide TORDB_SIM_THREADS cannot change their schedules.
  bool sim_env = true;
};

class ShardedCluster {
 public:
  explicit ShardedCluster(ShardedClusterOptions options);

  Simulator& sim() { return sim_; }
  Network& net() { return net_; }
  shard::Router& router() { return *router_; }
  shard::Rebalancer& rebalancer() { return *rebalancer_; }
  txn::TxnCoordinator& txn() { return *txn_; }
  /// Model a coordinator crash + replacement (DESIGN.md §13): the old
  /// instance's in-flight state dies with it; the new incarnation claims a
  /// fresh session-id epoch (its predecessor consumed the per-id guards)
  /// and is expected to call txn().adopt_orphans() at quiescence.
  void restart_txn_coordinator(int halt_at_stage = 0);
  const shard::Directory& directory() const { return router_->directory(); }
  std::int64_t directory_epoch() const { return router_->directory().epoch(); }
  int shards() const { return options_.shards; }
  int replicas_per_shard() const { return options_.replicas_per_shard; }
  /// True when the simulator runs partitioned into per-shard event lanes
  /// (sim_threads >= 2, sim_lanes, or the TORDB_SIM_* environment).
  bool lanes_enabled() const { return sim_.lanes_enabled(); }
  /// Worker threads actually executing lanes (1 in classic mode).
  int sim_threads() const { return sim_.lanes_enabled() ? sim_.worker_threads() : 1; }
  /// The event-schedule digest of one shard's lane: every (time, sequence)
  /// pair executed there, folded in order. Bit-identical across worker
  /// thread counts — the object the parallel equivalence tests compare.
  /// Lane mode only (0 in classic mode, where no per-shard split exists).
  std::uint64_t shard_digest(int shard) const {
    return sim_.lanes_enabled() ? sim_.lane_digest(shard) : 0;
  }

  NodeId node_id(int shard, int idx) const {
    return static_cast<NodeId>(shard * options_.replicas_per_shard + idx);
  }
  core::ReplicaNode& node(int shard, int idx) {
    return *nodes_.at(static_cast<std::size_t>(node_id(shard, idx)));
  }
  const core::ReplicaNode& node(int shard, int idx) const {
    return *nodes_.at(static_cast<std::size_t>(node_id(shard, idx)));
  }
  std::vector<NodeId> shard_ids(int shard) const;

  void run_for(SimDuration d) { sim_.run_for(d); }

  /// Deterministic per-shard workload seed: splitmix64 over the base seed
  /// and the shard id. Distinct per shard, stable across runs.
  std::uint64_t shard_seed(int shard) const;

  // --- online rebalancing (ranged directories only; DESIGN.md §9) ------------
  /// Fence -> snapshot -> install -> cutover move of [lo, hi) to `to`.
  bool move_range(const std::string& lo, const std::string& hi, int to,
                  shard::MoveDoneFn done = nullptr) {
    return rebalancer_->move_range(lo, hi, to, std::move(done));
  }
  bool split_at(const std::string& key) { return rebalancer_->split_at(key); }
  bool merge_at(const std::string& key) { return rebalancer_->merge_at(key); }

  // --- topology, addressed per shard ----------------------------------------
  /// Crash/recover route through the shard's lane in lane mode (a recover
  /// constructs a fresh engine, whose timers must live on the node's lane);
  /// plain direct calls in classic mode.
  void crash(int shard, int idx) { in_node_lane(shard, idx, [](core::ReplicaNode& n) { n.crash(); }); }
  void recover(int shard, int idx) {
    in_node_lane(shard, idx, [](core::ReplicaNode& n) { n.recover(); });
  }
  /// Partition ONE shard's members into the given components (local
  /// indices, each member exactly once). Other shards keep their current
  /// layout — the global component set is the union over shards.
  void partition_shard(int shard, const std::vector<std::vector<int>>& components);
  void heal_shard(int shard);
  void heal();

  // --- convergence & invariants ----------------------------------------------
  /// Every running member of `shard` is in RegPrim with identical green
  /// count and database digest.
  bool converged(int shard) const;
  /// Highest green count among the shard's running members.
  std::int64_t green_count(int shard) const { return router_->green_watermark(shard); }

  /// Theorem 1 per replication group: green sequences of a shard's members
  /// agree on shared positions; equal counts imply equal digests.
  std::optional<std::string> check_green_prefix_consistency() const;
  std::optional<std::string> check_all() const;

  // --- observability ---------------------------------------------------------
  const std::shared_ptr<obs::TraceBus>& trace_bus() const { return trace_bus_; }
  obs::SafetyChecker* checker() const { return checker_.get(); }
  const std::shared_ptr<obs::MetricsRegistry>& metrics() const { return metrics_; }
  /// Sample per-shard cumulative stats under `shard.<id>.*` plus the
  /// deployment-wide aggregates EngineCluster publishes.
  void sample_metrics();

 private:
  void schedule_metrics_roll();
  void apply_components();
  void make_txn_coordinator(int halt_at_stage);
  /// Run `fn(node)` on the node's own lane: inline in classic mode, under a
  /// LaneScope when parked, via a handoff when the simulation is running.
  void in_node_lane(int shard, int idx, void (*fn)(core::ReplicaNode&));

  ShardedClusterOptions options_;
  Simulator sim_;
  Network net_;
  std::shared_ptr<obs::TraceBus> trace_bus_;
  std::unique_ptr<obs::SafetyChecker> checker_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::vector<std::unique_ptr<core::ReplicaNode>> nodes_;  ///< indexed by global id
  std::unique_ptr<shard::Router> router_;
  /// Declared after router_ (the coordinator holds a Router&): destruction
  /// runs in reverse order, so the coordinator dies first.
  std::unique_ptr<txn::TxnCoordinator> txn_;
  std::int64_t txn_session_epoch_ = 0;
  std::unique_ptr<shard::Rebalancer> rebalancer_;
  /// Per-shard component layout (local indices); global layout is rebuilt
  /// from these on every change.
  std::vector<std::vector<std::vector<int>>> shard_components_;
};

}  // namespace tordb::workload
