// Latency/throughput accounting for the benchmark harness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace tordb::workload {

class LatencyStats {
 public:
  void record(SimDuration d) { samples_.push_back(d); }
  void clear() { samples_.clear(); }

  std::size_t count() const { return samples_.size(); }

  double mean_ms() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (SimDuration s : samples_) sum += to_millis(s);
    return sum / static_cast<double>(samples_.size());
  }

  double percentile_ms(double p) const {
    if (samples_.empty()) return 0;
    std::vector<SimDuration> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
    return to_millis(sorted[idx]);
  }

  double min_ms() const {
    if (samples_.empty()) return 0;
    return to_millis(*std::min_element(samples_.begin(), samples_.end()));
  }

  double max_ms() const {
    if (samples_.empty()) return 0;
    return to_millis(*std::max_element(samples_.begin(), samples_.end()));
  }

 private:
  std::vector<SimDuration> samples_;
};

}  // namespace tordb::workload
