// Latency/throughput accounting for the benchmark harness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace tordb::workload {

class LatencyStats {
 public:
  void record(SimDuration d) {
    samples_.push_back(d);
    sorted_valid_ = false;
  }
  void clear() {
    samples_.clear();
    sorted_.clear();
    sorted_valid_ = true;
  }

  std::size_t count() const { return samples_.size(); }

  double mean_ms() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (SimDuration s : samples_) sum += to_millis(s);
    return sum / static_cast<double>(samples_.size());
  }

  /// Percentile with linear interpolation between the two bracketing order
  /// statistics (p in [0, 1]). The sorted copy is cached and reused until
  /// the next record(), so repeated percentile queries cost one sort total.
  double percentile_ms(double p) const {
    if (samples_.empty()) return 0;
    ensure_sorted();
    p = std::clamp(p, 0.0, 1.0);
    const double rank = p * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return to_millis(sorted_[lo]) * (1.0 - frac) + to_millis(sorted_[hi]) * frac;
  }

  double p50_ms() const { return percentile_ms(0.5); }
  double p99_ms() const { return percentile_ms(0.99); }
  double p999_ms() const { return percentile_ms(0.999); }

  double min_ms() const {
    if (samples_.empty()) return 0;
    ensure_sorted();
    return to_millis(sorted_.front());
  }

  double max_ms() const {
    if (samples_.empty()) return 0;
    ensure_sorted();
    return to_millis(sorted_.back());
  }

 private:
  void ensure_sorted() const {
    if (sorted_valid_) return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }

  std::vector<SimDuration> samples_;
  mutable std::vector<SimDuration> sorted_;  ///< cache for percentile queries
  mutable bool sorted_valid_ = true;
};

}  // namespace tordb::workload
