#include "workload/experiments.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <functional>
#include <memory>

#include "baselines/corel.h"
#include "baselines/twopc.h"
#include "db/database.h"
#include "util/rng.h"
#include "workload/cluster.h"
#include "workload/sharded_cluster.h"
#include "workload/stats.h"

namespace tordb::workload {

namespace {

/// "v<n>" via to_chars: the closed-loop drivers stamp every write with a
/// fresh value; this skips the std::to_string temporary and the concat.
/// The bytes are identical to "v" + std::to_string(n).
std::string value_tag(std::int64_t n) {
  char buf[24];
  buf[0] = 'v';
  const char* end = std::to_chars(buf + 1, buf + sizeof(buf), n).ptr;
  return std::string(static_cast<const char*>(buf), end);
}

/// One closed-loop client: issues the next action the moment the previous
/// one completes; records latency for completions inside the measure
/// window.
class ClosedLoopDriver {
 public:
  /// The client calls done(true) on success, done(false) on abort/timeout;
  /// only successes count toward throughput, but the loop always continues.
  using SubmitFn = std::function<void(std::function<void(bool)> done)>;

  ClosedLoopDriver(Simulator& sim, SimTime window_start, SimTime window_end)
      : sim_(sim), window_start_(window_start), window_end_(window_end) {}

  void add_client(SubmitFn submit) {
    clients_.push_back(std::move(submit));
    issue(clients_.size() - 1);
  }

  std::uint64_t completed_in_window() const { return completed_; }
  const LatencyStats& latencies() const { return stats_; }

 private:
  void issue(std::size_t idx) {
    const SimTime t0 = sim_.now();
    if (t0 >= window_end_) return;  // stop issuing after the window
    clients_[idx]([this, idx, t0](bool ok) {
      const SimTime now = sim_.now();
      if (ok && now >= window_start_ && now < window_end_) {
        ++completed_;
        stats_.record(now - t0);
      }
      issue(idx);
    });
  }

  Simulator& sim_;
  SimTime window_start_;
  SimTime window_end_;
  std::vector<SubmitFn> clients_;
  std::uint64_t completed_ = 0;
  LatencyStats stats_;
};

db::Command next_command(int client_id, std::int64_t& counter) {
  return db::Command::put("key-" + std::to_string(client_id),
                          "value-" + std::to_string(++counter));
}

// --- per-algorithm deployments ---------------------------------------------

struct DeployTopology {
  NetworkParams net;
  int sites = 1;
};

struct EngineDeployment {
  explicit EngineDeployment(int replicas, std::uint64_t seed, bool delayed,
                            DeployTopology topo = {}, ObsOptions obs = {}) {
    ClusterOptions o;
    o.replicas = replicas;
    o.seed = seed;
    o.net = topo.net;
    o.obs = obs;
    if (delayed) o.node.storage.mode = SyncMode::kDelayed;
    cluster = std::make_unique<EngineCluster>(o);
    for (NodeId i = 0; i < replicas; ++i) {
      cluster->net().set_site(i, static_cast<int>(i) % topo.sites);
    }
    cluster->run_for(seconds(2));  // form the primary component
  }

  ClosedLoopDriver::SubmitFn client(int client_id) {
    const NodeId replica = static_cast<NodeId>(client_id % cluster->replicas());
    auto counter = std::make_shared<std::int64_t>(0);
    return [this, replica, client_id, counter](std::function<void(bool)> done) {
      cluster->engine(replica).submit(
          {}, next_command(client_id, *counter), client_id, core::Semantics::kStrict,
          [done = std::move(done)](const core::Reply& r) { done(!r.aborted); });
    };
  }

  std::unique_ptr<EngineCluster> cluster;
};

template <typename Replica, typename Params>
struct BaselineDeployment {
  BaselineDeployment(int replicas, std::uint64_t seed, Params params,
                     DeployTopology topo = {})
      : sim(seed), net(sim, topo.net) {
    std::vector<NodeId> all;
    for (NodeId i = 0; i < replicas; ++i) all.push_back(i);
    for (NodeId i = 0; i < replicas; ++i) {
      net.add_node(i);
      net.set_site(i, static_cast<int>(i) % topo.sites);
    }
    for (NodeId i = 0; i < replicas; ++i) {
      nodes.push_back(std::make_unique<Replica>(net, i, all, params));
    }
    sim.run_for(seconds(2));  // views settle (no-op for 2PC)
  }

  ClosedLoopDriver::SubmitFn client(int client_id) {
    Replica* replica = nodes[static_cast<std::size_t>(client_id) % nodes.size()].get();
    auto counter = std::make_shared<std::int64_t>(0);
    return [replica, client_id, counter](std::function<void(bool)> done) {
      replica->submit(next_command(client_id, *counter),
                      [done = std::move(done)](bool ok) { done(ok); });
    };
  }

  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<Replica>> nodes;
};

using CorelDeployment = BaselineDeployment<baselines::CorelReplica, baselines::CorelParams>;
using TwoPcDeployment = BaselineDeployment<baselines::TwoPcReplica, baselines::TwoPcParams>;

template <typename Deployment>
ThroughputPoint run_throughput(Deployment& dep, Simulator& sim, Algorithm algorithm,
                               int replicas, int clients, SimDuration warmup,
                               SimDuration measure) {
  ClosedLoopDriver driver(sim, sim.now() + warmup, sim.now() + warmup + measure);
  for (int cidx = 0; cidx < clients; ++cidx) driver.add_client(dep.client(cidx));
  sim.run_for(warmup + measure + millis(100));
  ThroughputPoint p;
  p.algorithm = algorithm;
  p.replicas = replicas;
  p.clients = clients;
  p.completed = driver.completed_in_window();
  p.actions_per_second = static_cast<double>(p.completed) / to_seconds(measure);
  p.mean_latency_ms = driver.latencies().mean_ms();
  return p;
}

template <typename Deployment>
LatencyResult run_latency(Deployment& dep, Simulator& sim, Algorithm algorithm, int replicas,
                          int actions) {
  LatencyStats stats;
  auto submit = dep.client(0);
  int remaining = actions;
  std::function<void()> issue = [&] {
    if (remaining-- <= 0) return;
    const SimTime t0 = sim.now();
    submit([&, t0](bool) {
      stats.record(sim.now() - t0);
      issue();
    });
  };
  issue();
  sim.run(100'000'000);  // drain
  LatencyResult r;
  r.algorithm = algorithm;
  r.replicas = replicas;
  r.count = stats.count();
  r.mean_ms = stats.mean_ms();
  r.p50_ms = stats.p50_ms();
  r.p99_ms = stats.p99_ms();
  r.p999_ms = stats.p999_ms();
  return r;
}

/// Highest green count among a cluster's running engines (the group's
/// committed watermark — any lagging member converges to it).
std::int64_t max_green(EngineCluster& c) {
  std::int64_t g = 0;
  for (int i = 0; i < c.replicas(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    if (c.node(id).running()) g = std::max(g, c.engine(id).green_count());
  }
  return g;
}

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

std::string to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kEngine: return "engine(forced)";
    case Algorithm::kEngineDelayed: return "engine(delayed)";
    case Algorithm::kCorel: return "corel";
    case Algorithm::kTwoPc: return "2pc";
  }
  return "?";
}

ThroughputPoint measure_throughput(Algorithm algorithm, int replicas, int clients,
                                   SimDuration warmup, SimDuration measure,
                                   std::uint64_t seed) {
  switch (algorithm) {
    case Algorithm::kEngine:
    case Algorithm::kEngineDelayed: {
      EngineDeployment dep(replicas, seed, algorithm == Algorithm::kEngineDelayed);
      return run_throughput(dep, dep.cluster->sim(), algorithm, replicas, clients, warmup,
                            measure);
    }
    case Algorithm::kCorel: {
      CorelDeployment dep(replicas, seed, {});
      return run_throughput(dep, dep.sim, algorithm, replicas, clients, warmup, measure);
    }
    case Algorithm::kTwoPc: {
      TwoPcDeployment dep(replicas, seed, {});
      return run_throughput(dep, dep.sim, algorithm, replicas, clients, warmup, measure);
    }
  }
  return {};
}

namespace {
/// The counter columns benches print for engine time series.
const std::vector<std::string> kWindowColumns = {
    "cluster.actions_green", "cluster.primaries_installed", "storage.forces",
    "gc.safe_deliveries",    "net.messages",
};
}  // namespace

ThroughputPoint measure_engine_throughput_windowed(bool delayed, int replicas, int clients,
                                                   SimDuration warmup, SimDuration measure,
                                                   SimDuration window, std::uint64_t seed,
                                                   std::string* window_table) {
  ObsOptions obs;
  obs.metrics_window = window;
  EngineDeployment dep(replicas, seed, delayed, {}, obs);
  ThroughputPoint p =
      run_throughput(dep, dep.cluster->sim(), delayed ? Algorithm::kEngineDelayed : Algorithm::kEngine,
                     replicas, clients, warmup, measure);
  if (window_table != nullptr && dep.cluster->metrics()) {
    dep.cluster->sample_metrics();
    dep.cluster->metrics()->roll(dep.cluster->sim().now());  // close the partial tail window
    *window_table += dep.cluster->metrics()->window_table(kWindowColumns);
  }
  return p;
}

LatencyResult measure_latency(Algorithm algorithm, int replicas, int actions,
                              std::uint64_t seed) {
  switch (algorithm) {
    case Algorithm::kEngine:
    case Algorithm::kEngineDelayed: {
      EngineDeployment dep(replicas, seed, algorithm == Algorithm::kEngineDelayed);
      return run_latency(dep, dep.cluster->sim(), algorithm, replicas, actions);
    }
    case Algorithm::kCorel: {
      CorelDeployment dep(replicas, seed, {});
      return run_latency(dep, dep.sim, algorithm, replicas, actions);
    }
    case Algorithm::kTwoPc: {
      TwoPcDeployment dep(replicas, seed, {});
      return run_latency(dep, dep.sim, algorithm, replicas, actions);
    }
  }
  return {};
}

ThroughputPoint measure_throughput_wan(Algorithm algorithm, int replicas, int clients,
                                       int sites, SimDuration inter_site_latency,
                                       SimDuration wan_per_byte, SimDuration warmup,
                                       SimDuration measure, std::uint64_t seed) {
  DeployTopology topo;
  topo.sites = sites;
  topo.net.inter_site_latency = inter_site_latency;
  topo.net.wan_per_byte = wan_per_byte;
  switch (algorithm) {
    case Algorithm::kEngine:
    case Algorithm::kEngineDelayed: {
      EngineDeployment dep(replicas, seed, algorithm == Algorithm::kEngineDelayed, topo);
      return run_throughput(dep, dep.cluster->sim(), algorithm, replicas, clients, warmup,
                            measure);
    }
    case Algorithm::kCorel: {
      CorelDeployment dep(replicas, seed, {}, topo);
      return run_throughput(dep, dep.sim, algorithm, replicas, clients, warmup, measure);
    }
    case Algorithm::kTwoPc: {
      TwoPcDeployment dep(replicas, seed, {}, topo);
      return run_throughput(dep, dep.sim, algorithm, replicas, clients, warmup, measure);
    }
  }
  return {};
}

ViewChangePoint measure_engine_under_view_changes(int replicas, int clients,
                                                  SimDuration change_period,
                                                  SimDuration measure, std::uint64_t seed,
                                                  SimDuration metrics_window,
                                                  std::string* window_table) {
  ObsOptions obs;
  obs.metrics_window = metrics_window;
  EngineDeployment dep(replicas, seed, /*delayed=*/false, {}, obs);
  EngineCluster& c = *dep.cluster;
  Simulator& sim = c.sim();

  // Periodically detach and re-attach the highest-id replica: each cycle is
  // two membership changes, each costing one end-to-end exchange round.
  std::uint64_t changes = 0;
  std::function<void()> cycle = [&] {
    if (change_period <= 0) return;
    std::vector<NodeId> rest;
    for (NodeId i = 0; i < replicas - 1; ++i) rest.push_back(i);
    c.partition({rest, {static_cast<NodeId>(replicas - 1)}});
    ++changes;
    sim.after(change_period / 2, [&] {
      c.heal();
      ++changes;
      sim.after(change_period / 2, cycle);
    });
  };
  const auto exchanges_before = c.engine(0).stats().exchanges;
  sim.after(change_period > 0 ? change_period : measure * 2, cycle);

  ClosedLoopDriver driver(sim, sim.now() + millis(500), sim.now() + millis(500) + measure);
  // Clients attach to replicas that stay in the majority.
  for (int cidx = 0; cidx < clients; ++cidx) {
    const NodeId replica = static_cast<NodeId>(cidx % (replicas - 1));
    auto counter = std::make_shared<std::int64_t>(0);
    driver.add_client([&c, replica, cidx, counter](std::function<void(bool)> done) {
      c.engine(replica).submit({}, next_command(cidx, *counter), cidx,
                               core::Semantics::kStrict,
                               [done = std::move(done)](const core::Reply& r) { done(!r.aborted); });
    });
  }
  sim.run_for(millis(500) + measure + millis(100));

  ViewChangePoint p;
  p.change_period = change_period;
  p.actions_per_second = static_cast<double>(driver.completed_in_window()) / to_seconds(measure);
  p.membership_changes = changes;
  p.end_to_end_rounds = c.engine(0).stats().exchanges - exchanges_before;
  for (NodeId i = 0; i < replicas; ++i) {
    p.persist_batches += c.engine(i).stats().persist_batches;
    p.persist_batch_actions += c.engine(i).stats().persist_batch_actions;
  }
  if (window_table != nullptr && c.metrics()) {
    c.sample_metrics();
    c.metrics()->roll(sim.now());  // close the partial tail window
    std::vector<std::string> cols = kWindowColumns;
    cols.push_back("cluster.exchanges");
    *window_table += c.metrics()->window_table(cols);
  }
  return p;
}

SemanticsResult measure_semantics(int replicas, SimDuration partition_length,
                                  std::uint64_t seed) {
  EngineDeployment dep(replicas, seed, /*delayed=*/false);
  EngineCluster& c = *dep.cluster;
  Simulator& sim = c.sim();
  c.engine(0).submit({}, db::Command::put("k", "pre-partition"), 1, core::Semantics::kStrict,
                     nullptr);
  sim.run_for(millis(200));

  // Minority component: the last two replicas.
  std::vector<NodeId> majority, minority;
  for (NodeId i = 0; i < replicas - 2; ++i) majority.push_back(i);
  minority = {static_cast<NodeId>(replicas - 2), static_cast<NodeId>(replicas - 1)};
  c.partition({majority, minority});
  sim.run_for(millis(300));

  SemanticsResult r;
  const NodeId m = minority[0];

  SimTime t0 = sim.now();
  c.engine(m).submit_query(db::Command::get("k"), core::QueryMode::kWeak,
                           [&](const core::Reply&) { r.weak_query_ms = to_millis(sim.now() - t0); });
  sim.run_for(millis(50));

  t0 = sim.now();
  c.engine(m).submit_query(db::Command::get("k"), core::QueryMode::kDirty,
                           [&](const core::Reply&) { r.dirty_query_ms = to_millis(sim.now() - t0); });
  sim.run_for(millis(50));

  t0 = sim.now();
  bool commutative_done = false;
  c.engine(m).submit({}, db::Command::add("stock", -1), 1, core::Semantics::kCommutative,
                     [&](const core::Reply&) {
                       commutative_done = true;
                       r.commutative_update_ms = to_millis(sim.now() - t0);
                     });
  sim.run_for(millis(100));

  t0 = sim.now();
  bool strict_done = false;
  double strict_ms = 0;
  c.engine(m).submit({}, db::Command::put("k", "strict"), 1, core::Semantics::kStrict,
                     [&](const core::Reply&) {
                       strict_done = true;
                       strict_ms = to_millis(sim.now() - t0);
                     });
  sim.run_for(partition_length);
  r.strict_blocked_during_partition = !strict_done;
  c.heal();
  sim.run_for(seconds(5));
  r.strict_latency_ms = strict_done ? strict_ms : -1;
  (void)commutative_done;
  return r;
}

ScalingPoint measure_engine_scaling(int replicas, std::uint32_t action_padding, int clients,
                                    SimDuration warmup, SimDuration measure,
                                    std::uint64_t seed) {
  ClusterOptions o;
  o.replicas = replicas;
  o.seed = seed;
  o.node.engine.action_padding = action_padding;
  EngineCluster c(o);
  c.run_for(seconds(2));
  ClosedLoopDriver driver(c.sim(), c.sim().now() + warmup, c.sim().now() + warmup + measure);
  for (int cidx = 0; cidx < clients; ++cidx) {
    const NodeId replica = static_cast<NodeId>(cidx % replicas);
    auto counter = std::make_shared<std::int64_t>(0);
    driver.add_client([&c, replica, cidx, counter](std::function<void(bool)> done) {
      c.engine(replica).submit({}, next_command(cidx, *counter), cidx,
                               core::Semantics::kStrict,
                               [done = std::move(done)](const core::Reply& r) { done(!r.aborted); });
    });
  }
  c.run_for(warmup + measure + millis(100));
  ScalingPoint p;
  p.replicas = replicas;
  p.action_bytes = action_padding + 90;  // header + command overhead
  p.actions_per_second =
      static_cast<double>(driver.completed_in_window()) / to_seconds(measure);
  p.mean_latency_ms = driver.latencies().mean_ms();
  return p;
}

AvailabilityPoint measure_quorum_availability(bool dynamic_linear_voting, int replicas,
                                              SimDuration measure, std::uint64_t seed) {
  ClusterOptions o;
  o.replicas = replicas;
  o.seed = seed;
  o.node.engine.quorum_mode = dynamic_linear_voting ? core::QuorumMode::kDynamicLinearVoting
                                                    : core::QuorumMode::kStaticMajority;
  EngineCluster c(o);
  Simulator& sim = c.sim();
  c.run_for(seconds(2));

  // One closed-loop client per replica keeps offering work; commits count
  // only when some primary exists to order them.
  ClosedLoopDriver driver(sim, sim.now(), sim.now() + measure);
  for (int cidx = 0; cidx < replicas; ++cidx) {
    const NodeId replica = static_cast<NodeId>(cidx % replicas);
    auto counter = std::make_shared<std::int64_t>(0);
    driver.add_client([&c, replica, cidx, counter](std::function<void(bool)> done) {
      c.engine(replica).submit({}, next_command(cidx, *counter), cidx,
                               core::Semantics::kStrict,
                               [done = std::move(done)](const core::Reply& r) { done(!r.aborted); });
    });
  }

  // Cascading schedule: the connected component repeatedly shrinks by one
  // replica, then the network heals, in a fixed rhythm.
  const SimDuration phase = measure / (2 * replicas);
  std::vector<NodeId> all;
  for (NodeId i = 0; i < replicas; ++i) all.push_back(i);
  std::uint64_t sampled = 0, primary_samples = 0;
  const SimTime end = sim.now() + measure;
  int shrink = 0;
  SimTime next_change = sim.now() + phase;
  while (sim.now() < end) {
    c.run_for(millis(10));
    ++sampled;
    for (NodeId i = 0; i < replicas; ++i) {
      if (c.node(i).running() && c.engine(i).state() == core::EngineState::kRegPrim) {
        ++primary_samples;
        break;
      }
    }
    if (sim.now() >= next_change) {
      next_change = sim.now() + phase;
      ++shrink;
      if (shrink >= replicas - 1) {
        shrink = 0;
        c.heal();
      } else {
        // Keep replicas [shrink, n) together; isolate the rest singly.
        std::vector<std::vector<NodeId>> comps;
        std::vector<NodeId> survivors;
        for (NodeId i = static_cast<NodeId>(shrink); i < replicas; ++i) survivors.push_back(i);
        comps.push_back(survivors);
        for (NodeId i = 0; i < static_cast<NodeId>(shrink); ++i) comps.push_back({i});
        c.partition(comps);
      }
    }
  }

  AvailabilityPoint p;
  p.dynamic_linear_voting = dynamic_linear_voting;
  p.primary_availability =
      sampled ? static_cast<double>(primary_samples) / static_cast<double>(sampled) : 0;
  p.actions_committed = driver.completed_in_window();
  std::uint64_t installs = 0;
  for (NodeId i = 0; i < replicas; ++i) {
    if (c.node(i).running()) {
      installs = std::max(installs, c.engine(i).stats().primaries_installed);
    }
  }
  p.primaries_installed = installs;
  return p;
}

ShardingPoint measure_sharding(int shards, int replicas_per_shard, int clients,
                               double cross_ratio, SimDuration warmup, SimDuration measure,
                               std::uint64_t seed) {
  ShardedClusterOptions o;
  o.shards = shards;
  o.replicas_per_shard = replicas_per_shard;
  o.seed = seed;
  ShardedCluster cluster(o);
  cluster.run_for(seconds(2));  // every shard forms its primary component

  // Pre-bucket keys by owning shard so the workload can hit a target shard
  // under hash sharding (and measure an exact cross-shard ratio).
  std::vector<std::vector<std::string>> pool(static_cast<std::size_t>(shards));
  const std::size_t keys_per_shard = 64;
  for (int i = 0;; ++i) {
    std::string key = "key-" + std::to_string(i);
    auto& bucket = pool[static_cast<std::size_t>(cluster.directory().shard_of(key))];
    if (bucket.size() < keys_per_shard) bucket.push_back(std::move(key));
    bool full = true;
    for (const auto& b : pool) full = full && b.size() >= keys_per_shard;
    if (full) break;
  }

  Simulator& sim = cluster.sim();
  ClosedLoopDriver driver(sim, sim.now() + warmup, sim.now() + warmup + measure);
  auto barrier_sum = std::make_shared<double>(0);
  auto cross_committed = std::make_shared<std::uint64_t>(0);
  for (int c = 0; c < clients; ++c) {
    const int home = c % shards;
    // Per-client stream derived from the home shard's seed (satellite:
    // per-group seeds keep runs reproducible and shards uncorrelated).
    auto rng = std::make_shared<Rng>(cluster.shard_seed(home) +
                                     static_cast<std::uint64_t>(c) * 0x9e3779b97f4a7c15ULL);
    auto counter = std::make_shared<std::int64_t>(0);
    driver.add_client([&cluster, &pool, rng, counter, barrier_sum, cross_committed, c, home,
                       shards, cross_ratio](std::function<void(bool)> done) {
      const std::string value = value_tag(++*counter);
      db::Command cmd;
      const bool cross = shards > 1 && rng->chance(cross_ratio);
      if (cross) {
        const int other =
            (home + 1 + static_cast<int>(rng->next_below(static_cast<std::uint64_t>(shards - 1)))) %
            shards;
        const auto& ph = pool[static_cast<std::size_t>(home)];
        const auto& po = pool[static_cast<std::size_t>(other)];
        cmd.ops.push_back(db::Op{db::OpType::kPut, ph[rng->next_below(ph.size())], value, 0});
        cmd.ops.push_back(db::Op{db::OpType::kPut, po[rng->next_below(po.size())], value, 0});
      } else {
        const auto& ph = pool[static_cast<std::size_t>(home)];
        cmd.ops.push_back(db::Op{db::OpType::kPut, ph[rng->next_below(ph.size())], value, 0});
      }
      cluster.router().submit(
          c, std::move(cmd),
          [done = std::move(done), barrier_sum, cross_committed](const shard::RouteReply& r) {
            if (r.committed && r.shards_involved > 1) {
              ++*cross_committed;
              *barrier_sum += to_seconds(r.barrier_wait) * 1e3;
            }
            done(r.committed);
          });
    });
  }

  // Aggregate green throughput: sum of per-shard green watermarks over the
  // measure window (the acceptance metric for shard scaling).
  std::int64_t green_start = 0, green_end = 0;
  sim.after(warmup, [&] {
    for (int s = 0; s < shards; ++s) green_start += cluster.green_count(s);
  });
  sim.after(warmup + measure, [&] {
    for (int s = 0; s < shards; ++s) green_end += cluster.green_count(s);
  });
  cluster.run_for(warmup + measure + millis(200));

  ShardingPoint p;
  p.shards = shards;
  p.replicas_per_shard = replicas_per_shard;
  p.clients = clients;
  p.cross_ratio = cross_ratio;
  p.completed = driver.completed_in_window();
  p.actions_per_second = static_cast<double>(p.completed) / to_seconds(measure);
  p.green_per_second = static_cast<double>(green_end - green_start) / to_seconds(measure);
  p.mean_latency_ms = driver.latencies().mean_ms();
  p.cross_committed = *cross_committed;
  p.mean_barrier_ms = *cross_committed ? *barrier_sum / static_cast<double>(*cross_committed) : 0;
  return p;
}

SimScalePoint measure_sim_scale(int shards, int replicas_per_shard, int clients,
                                SimDuration warmup, SimDuration measure, std::uint64_t seed,
                                int sim_threads) {
  SimScalePoint p;
  p.shards = shards;
  p.replicas_per_shard = replicas_per_shard;
  p.total_replicas = shards * replicas_per_shard;
  p.clients = clients;
  p.sim_threads = shards > 1 ? sim_threads : 0;

  const auto wall_start = std::chrono::steady_clock::now();
  std::int64_t green_start = 0, green_end = 0;
  std::uint64_t completed = 0;
  double sim_seconds = 0;

  // Everything read from the deployment is captured before it leaves
  // scope (NetworkStats in particular aggregates lazily in lane mode).
  auto capture = [&p](Simulator& sim, const NetworkStats& ns) {
    p.peak_queue_depth = sim.peak_queue_depth();
    p.events = sim.executed_events();
    p.messages = ns.messages_sent;
    p.payload_bytes_copied = ns.payload_bytes_copied;
    p.reachable_cache_hits = ns.reachable_cache_hits;
    p.reachable_cache_misses = ns.reachable_cache_misses;
    if (sim.lanes_enabled()) {
      p.lane_windows = sim.windows_run();
      p.lane_handoffs = sim.handoffs_posted();
    }
  };

  if (shards == 1) {
    // Single engine group: the pure EVS data path (one sequencer, group-wide
    // multicasts, coalesced acks) with no router in front.
    EngineDeployment dep(replicas_per_shard, seed, /*delayed=*/false);
    Simulator* sim = &dep.cluster->sim();
    ClosedLoopDriver driver(*sim, sim->now() + warmup, sim->now() + warmup + measure);
    for (int c = 0; c < clients; ++c) driver.add_client(dep.client(c));
    sim->after(warmup, [&] { green_start = max_green(*dep.cluster); });
    sim->after(warmup + measure, [&] { green_end = max_green(*dep.cluster); });
    dep.cluster->run_for(warmup + measure + millis(200));
    completed = driver.completed_in_window();
    capture(*sim, dep.cluster->net().stats());
    sim_seconds = to_seconds(sim->now());
    p.wall_ms = wall_ms_since(wall_start);
  } else {
    ShardedClusterOptions o;
    o.shards = shards;
    o.replicas_per_shard = replicas_per_shard;
    o.seed = seed;
    // 0 = classic loop; >= 1 = lane mode (sim_lanes makes 1 worker still run
    // the lane scheduler — the baseline the thread sweep compares against).
    o.sim_lanes = sim_threads >= 1;
    o.sim_threads = std::max(1, sim_threads);
    // Maximum lookahead: windows as wide as the failure-detection delay,
    // the upper bound the cluster accepts. Wider windows amortize the
    // per-window pool rendezvous over more parallel work.
    o.sim_handoff = o.net.detect_delay;
    o.sim_env = false;  // this sweep pins its own thread counts
    ShardedCluster cluster(o);
    cluster.run_for(seconds(2));  // every shard forms its primary component
    Simulator* sim = &cluster.sim();
    ClosedLoopDriver driver(*sim, sim->now() + warmup, sim->now() + warmup + measure);
    // Key pool built once per shard — the drivers copy from it instead of
    // re-concatenating "key-<home>-<n>" per request. Bytes are identical,
    // so virtual time is unchanged.
    auto pool = std::make_shared<std::vector<std::vector<std::string>>>(
        static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      auto& bucket = (*pool)[static_cast<std::size_t>(s)];
      bucket.reserve(64);
      for (int n = 0; n < 64; ++n) {
        bucket.push_back("key-" + std::to_string(s) + "-" + std::to_string(n));
      }
    }
    for (int c = 0; c < clients; ++c) {
      const int home = c % shards;
      auto counter = std::make_shared<std::int64_t>(0);
      auto rng = std::make_shared<Rng>(cluster.shard_seed(home) +
                                       static_cast<std::uint64_t>(c) * 0x9e3779b97f4a7c15ULL);
      driver.add_client([&cluster, pool, rng, counter, c, home](std::function<void(bool)> done) {
        const auto& keys = (*pool)[static_cast<std::size_t>(home)];
        db::Command cmd =
            db::Command::put(keys[rng->next_below(keys.size())], value_tag(++*counter));
        cluster.router().submit(c, std::move(cmd),
                                [done = std::move(done)](const shard::RouteReply& r) {
                                  done(r.committed);
                                });
      });
    }
    sim->after(warmup, [&] {
      for (int s = 0; s < shards; ++s) green_start += cluster.green_count(s);
    });
    sim->after(warmup + measure, [&] {
      for (int s = 0; s < shards; ++s) green_end += cluster.green_count(s);
    });
    cluster.run_for(warmup + measure + millis(200));
    completed = driver.completed_in_window();
    capture(*sim, cluster.net().stats());
    sim_seconds = to_seconds(sim->now());
    p.wall_ms = wall_ms_since(wall_start);
  }

  p.completed = completed;
  p.green_per_second = static_cast<double>(green_end - green_start) / to_seconds(measure);
  p.events_per_wall_second =
      p.wall_ms > 0 ? static_cast<double>(p.events) / (p.wall_ms / 1e3) : 0;
  p.wall_ms_per_sim_second = sim_seconds > 0 ? p.wall_ms / sim_seconds : 0;
  return p;
}

RebalancePoint measure_rebalance(int shards, int replicas_per_shard, int clients, int moves,
                                 SimDuration warmup, SimDuration measure,
                                 std::uint64_t seed) {
  // Two-digit key space k00..k63 split uniformly across the shards, so each
  // range holds a comparable row population when the writers are uniform.
  const int kKeys = 64;
  auto key_of = [](int i) {
    std::string k = "k";
    k += static_cast<char>('0' + i / 10);
    k += static_cast<char>('0' + i % 10);
    return k;
  };
  ShardedClusterOptions o;
  o.shards = shards;
  o.replicas_per_shard = replicas_per_shard;
  o.seed = seed;
  for (int s = 1; s < shards; ++s) o.range_splits.push_back(key_of(kKeys * s / shards));
  o.session.max_attempts_per_request = 100000;
  ShardedCluster cluster(o);
  cluster.run_for(seconds(2));  // every shard forms its primary component

  Simulator& sim = cluster.sim();
  const SimTime window_start = sim.now() + warmup;
  const SimTime window_end = window_start + measure;

  struct State {
    LatencyStats steady, during_move;
    int moves_in_flight = 0;
    int moves_started = 0;
    double move_ms_sum = 0;
  };
  auto st = std::make_shared<State>();

  // Closed-loop writers over the whole key space; each completion is binned
  // by whether a move was in flight when it landed.
  auto loop = std::make_shared<std::function<void(int)>>();
  std::vector<std::shared_ptr<Rng>> rngs;
  for (int c = 0; c < clients; ++c) {
    rngs.push_back(std::make_shared<Rng>(seed * 0x9e3779b97f4a7c15ULL +
                                         static_cast<std::uint64_t>(c) * 48271 + 17));
  }
  *loop = [&cluster, &sim, st, loopp = loop.get(), rngs, key_of, window_start,
           window_end](int c) {
    const SimTime t0 = sim.now();
    if (t0 >= window_end) return;
    const std::string key = key_of(static_cast<int>(rngs[static_cast<std::size_t>(c)]->next_below(64)));
    cluster.router().submit(c, db::Command::add(key, 1),
                            [&sim, st, loopp, c, t0, window_start, window_end](
                                const shard::RouteReply& r) {
                              const SimTime now = sim.now();
                              if (r.committed && now >= window_start && now < window_end) {
                                (st->moves_in_flight > 0 ? st->during_move : st->steady)
                                    .record(now - t0);
                              }
                              (*loopp)(c);
                            });
  };
  for (int c = 0; c < clients; ++c) (*loop)(c);

  // Moves run back to back (with a short gap) from the window start: pick
  // ranges round-robin, always targeting the next shard over.
  const SimDuration gap = millis(200);
  auto do_move = std::make_shared<std::function<void()>>();
  *do_move = [&cluster, &sim, st, dm = do_move.get(), moves, shards, gap, window_end]() {
    if (st->moves_started >= moves || sim.now() >= window_end) return;
    const shard::Directory& dir = cluster.directory();
    const int r = st->moves_started % dir.range_count();
    const auto [lo, hi] = dir.range_bounds(r);
    const int to = (dir.range_owner(r) + 1) % shards;
    ++st->moves_started;
    ++st->moves_in_flight;
    const bool accepted = cluster.move_range(
        lo, hi, to, [&sim, st, dm, gap](const shard::MoveReport& rep) {
          --st->moves_in_flight;
          if (rep.ok) st->move_ms_sum += to_seconds(rep.duration) * 1e3;
          sim.after(gap, [dm] { (*dm)(); });
        });
    if (!accepted) {
      --st->moves_in_flight;
      sim.after(gap, [dm] { (*dm)(); });
    }
  };
  sim.after(warmup, [dm = do_move.get()] { (*dm)(); });

  cluster.run_for(warmup + measure + millis(200));
  // Drain in-flight moves and bounced commands past the window edge.
  for (int rounds = 0; !(cluster.router().idle() && cluster.rebalancer().idle()) && rounds < 120;
       ++rounds) {
    cluster.run_for(seconds(1));
  }

  const shard::RebalancerStats& rs = cluster.rebalancer().stats();
  RebalancePoint p;
  p.shards = shards;
  p.replicas_per_shard = replicas_per_shard;
  p.clients = clients;
  p.moves_requested = moves;
  p.moves_completed = rs.moves_completed;
  p.rows_moved = rs.rows_moved;
  p.bytes_moved = rs.bytes_moved;
  p.mean_move_ms = rs.moves_completed ? st->move_ms_sum / static_cast<double>(rs.moves_completed) : 0;
  p.final_epoch = cluster.directory_epoch();
  p.fenced_bounces = cluster.router().stats().fenced_bounces;
  p.steady_completed = st->steady.count();
  p.steady_p50_ms = st->steady.p50_ms();
  p.steady_p99_ms = st->steady.p99_ms();
  p.move_window_completed = st->during_move.count();
  p.move_window_p50_ms = st->during_move.p50_ms();
  p.move_window_p99_ms = st->during_move.p99_ms();
  return p;
}

}  // namespace tordb::workload
