#include "workload/cluster.h"

#include <map>
#include <sstream>

namespace tordb::workload {

EngineCluster::EngineCluster(ClusterOptions options)
    : options_(std::move(options)), sim_(options_.seed), net_(sim_, options_.net) {
  const bool check = options_.obs.check || obs::check_forced();
  if (options_.obs.trace || check) {
    obs::TraceBusOptions bus_opts;
    bus_opts.ring_capacity = options_.obs.ring_capacity;
    trace_bus_ = std::make_shared<obs::TraceBus>(sim_, bus_opts);
    trace_bus_->capture_logs();  // logger lines become kLogLine trace events
    options_.node.engine.trace_bus = trace_bus_;
    if (check) {
      obs::CheckerOptions copts;
      copts.fail_fast = options_.obs.checker_fail_fast;
      checker_ = std::make_unique<obs::SafetyChecker>(*trace_bus_, copts);
    }
  }
  if (options_.obs.metrics_window > 0) {
    metrics_ = std::make_shared<obs::MetricsRegistry>();
    options_.node.engine.metrics = metrics_;
  }
  std::vector<NodeId> all;
  for (NodeId i = 0; i < options_.replicas; ++i) all.push_back(i);
  for (NodeId i = 0; i < options_.replicas; ++i) {
    nodes_.push_back(std::make_unique<core::ReplicaNode>(net_, i, all, options_.node));
  }
  if (metrics_) schedule_metrics_roll();
}

void EngineCluster::schedule_metrics_roll() {
  sim_.after(options_.obs.metrics_window, [this] {
    sample_metrics();
    metrics_->roll(sim_.now());
    schedule_metrics_roll();
  });
}

void EngineCluster::sample_metrics() {
  if (!metrics_) return;
  std::uint64_t green = 0, red = 0, installs = 0, exchanges = 0;
  std::uint64_t forces = 0, appends = 0;
  std::uint64_t safe_deliveries = 0, configs = 0;
  std::uint64_t announces_sent = 0, announces_received = 0;
  std::int64_t min_white = -1, max_green = 0;
  std::int64_t stored_bodies = 0, body_bytes = 0;
  for (const auto& n : nodes_) {
    const auto& st = n->storage().stats();
    forces += st.forces;
    appends += st.appends;
    if (!n->running()) continue;
    const auto& es = n->engine().stats();
    green += es.actions_green;
    red += es.actions_red;
    installs += es.primaries_installed;
    exchanges += es.exchanges;
    announces_sent += es.announces_sent;
    announces_received += es.announces_received;
    const std::int64_t wl = n->engine().white_line();
    min_white = min_white < 0 ? wl : std::min(min_white, wl);
    max_green = std::max(max_green, n->engine().green_count());
    stored_bodies += static_cast<std::int64_t>(n->engine().action_log().stored_bodies());
    body_bytes += n->engine().action_log().body_bytes();
    const auto& gs = n->engine().group_comm().stats();
    safe_deliveries += gs.safe_deliveries;
    configs += gs.regular_configs;
  }
  // Cumulative sources: set_total() so roll() turns them into per-window
  // deltas alongside the engines' directly-incremented counters.
  metrics_->counter("cluster.actions_green").set_total(green);
  metrics_->counter("cluster.actions_red").set_total(red);
  metrics_->counter("cluster.primaries_installed").set_total(installs);
  metrics_->counter("cluster.exchanges").set_total(exchanges);
  metrics_->counter("storage.forces").set_total(forces);
  metrics_->counter("storage.appends").set_total(appends);
  metrics_->counter("gc.safe_deliveries").set_total(safe_deliveries);
  metrics_->counter("gc.regular_configs").set_total(configs);
  metrics_->counter("cluster.announces_sent").set_total(announces_sent);
  metrics_->counter("cluster.announces_received").set_total(announces_received);
  // White-line / body-store health (DESIGN.md §14): `lag` is how far the
  // slowest white line trails the fastest green count — growing lag means
  // trimming is starving and body stores are pinned.
  metrics_->gauge("gc.whiteline.min").set(std::max<std::int64_t>(min_white, 0));
  metrics_->gauge("gc.whiteline.lag").set(max_green - std::max<std::int64_t>(min_white, 0));
  metrics_->gauge("gc.bodies.stored").set(stored_bodies);
  metrics_->gauge("gc.bodies.bytes").set(body_bytes);
  metrics_->counter("net.messages").set_total(net_.stats().messages_sent);
  metrics_->counter("net.bytes").set_total(net_.stats().bytes_sent);
  metrics_->counter("net.payload_bytes_copied").set_total(net_.stats().payload_bytes_copied);
  metrics_->counter("net.reachable_cache_hits").set_total(net_.stats().reachable_cache_hits);
  metrics_->counter("net.reachable_cache_misses").set_total(net_.stats().reachable_cache_misses);
  metrics_->counter("sim.events_executed").set_total(sim_.executed_events());
  metrics_->gauge("sim.queue_depth").set(static_cast<std::int64_t>(sim_.queue_depth()));
  metrics_->gauge("sim.peak_queue_depth").set(static_cast<std::int64_t>(sim_.peak_queue_depth()));
}

std::vector<NodeId> EngineCluster::all_ids() const {
  std::vector<NodeId> all;
  for (std::size_t i = 0; i < nodes_.size(); ++i) all.push_back(static_cast<NodeId>(i));
  return all;
}

core::ReplicaNode& EngineCluster::add_dormant(NodeId id) {
  if (id != static_cast<NodeId>(nodes_.size())) {
    throw std::invalid_argument("dormant node ids must be contiguous");
  }
  nodes_.push_back(
      std::make_unique<core::ReplicaNode>(net_, id, core::ReplicaNode::DormantTag{},
                                          options_.node));
  return *nodes_.back();
}

bool EngineCluster::converged_primary(const std::vector<NodeId>& ids) const {
  std::int64_t green = -1;
  std::uint64_t digest = 0;
  for (NodeId id : ids) {
    const auto& n = nodes_.at(static_cast<std::size_t>(id));
    if (!n->running()) return false;
    const auto& e = n->engine();
    if (e.state() != core::EngineState::kRegPrim) return false;
    if (green == -1) {
      green = e.green_count();
      digest = e.db_digest();
    } else if (e.green_count() != green || e.db_digest() != digest) {
      return false;
    }
  }
  return green >= 0;
}

bool EngineCluster::all_green_at_least(const std::vector<NodeId>& ids,
                                       std::int64_t count) const {
  for (NodeId id : ids) {
    const auto& n = nodes_.at(static_cast<std::size_t>(id));
    if (!n->running() || n->engine().green_count() < count) return false;
  }
  return true;
}

std::optional<std::string> EngineCluster::check_green_prefix_consistency() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->running()) continue;
    const auto& a = nodes_[i]->engine();
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
      if (!nodes_[j]->running()) continue;
      const auto& b = nodes_[j]->engine();
      const std::int64_t lo =
          std::max(a.green_count() - static_cast<std::int64_t>(0), std::int64_t{0});
      (void)lo;
      const std::int64_t overlap_end = std::min(a.green_count(), b.green_count());
      for (std::int64_t pos = 1; pos <= overlap_end; ++pos) {
        const ActionId ia = a.green_action_at(pos);
        const ActionId ib = b.green_action_at(pos);
        if (ia.server_id == kNoNode || ib.server_id == kNoNode) continue;  // white-trimmed
        if (!(ia == ib)) {
          std::ostringstream os;
          os << "green divergence at position " << pos << ": node " << a.id() << " has "
             << to_string(ia) << ", node " << b.id() << " has " << to_string(ib);
          return os.str();
        }
      }
      if (a.green_count() == b.green_count() && a.db_digest() != b.db_digest()) {
        std::ostringstream os;
        os << "equal green count " << a.green_count() << " but different digests at nodes "
           << a.id() << " and " << b.id();
        return os.str();
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> EngineCluster::check_green_fifo() const {
  for (const auto& n : nodes_) {
    if (!n->running()) continue;
    const auto& e = n->engine();
    std::map<NodeId, std::int64_t> last;
    for (std::int64_t pos = 1; pos <= e.green_count(); ++pos) {
      const ActionId id = e.green_action_at(pos);
      if (id.server_id == kNoNode) continue;  // white-trimmed
      auto it = last.find(id.server_id);
      if (it != last.end() && id.index != it->second + 1) {
        std::ostringstream os;
        os << "FIFO violation at node " << e.id() << ": creator " << id.server_id << " index "
           << id.index << " after " << it->second;
        return os.str();
      }
      last[id.server_id] = id.index;
    }
  }
  return std::nullopt;
}

std::optional<std::string> EngineCluster::check_single_primary() const {
  std::map<std::int64_t, std::vector<NodeId>> prim_members;
  for (const auto& n : nodes_) {
    if (!n->running()) continue;
    const auto& e = n->engine();
    if (!e.in_primary()) continue;
    const auto& p = e.prim_component();
    auto [it, inserted] = prim_members.emplace(p.prim_index, p.servers);
    if (!inserted && it->second != p.servers) {
      std::ostringstream os;
      os << "two primaries with index " << p.prim_index << " but different memberships";
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> EngineCluster::check_all() const {
  if (checker_ && !checker_->ok()) return checker_->report();
  if (auto v = check_green_prefix_consistency()) return v;
  if (auto v = check_green_fifo()) return v;
  if (auto v = check_single_primary()) return v;
  return std::nullopt;
}

}  // namespace tordb::workload
