#include "workload/cluster.h"

#include <map>
#include <sstream>

namespace tordb::workload {

EngineCluster::EngineCluster(ClusterOptions options)
    : options_(std::move(options)), sim_(options_.seed), net_(sim_, options_.net) {
  std::vector<NodeId> all;
  for (NodeId i = 0; i < options_.replicas; ++i) all.push_back(i);
  for (NodeId i = 0; i < options_.replicas; ++i) {
    nodes_.push_back(std::make_unique<core::ReplicaNode>(net_, i, all, options_.node));
  }
}

std::vector<NodeId> EngineCluster::all_ids() const {
  std::vector<NodeId> all;
  for (std::size_t i = 0; i < nodes_.size(); ++i) all.push_back(static_cast<NodeId>(i));
  return all;
}

core::ReplicaNode& EngineCluster::add_dormant(NodeId id) {
  if (id != static_cast<NodeId>(nodes_.size())) {
    throw std::invalid_argument("dormant node ids must be contiguous");
  }
  nodes_.push_back(
      std::make_unique<core::ReplicaNode>(net_, id, core::ReplicaNode::DormantTag{},
                                          options_.node));
  return *nodes_.back();
}

bool EngineCluster::converged_primary(const std::vector<NodeId>& ids) const {
  std::int64_t green = -1;
  std::uint64_t digest = 0;
  for (NodeId id : ids) {
    const auto& n = nodes_.at(static_cast<std::size_t>(id));
    if (!n->running()) return false;
    const auto& e = n->engine();
    if (e.state() != core::EngineState::kRegPrim) return false;
    if (green == -1) {
      green = e.green_count();
      digest = e.db_digest();
    } else if (e.green_count() != green || e.db_digest() != digest) {
      return false;
    }
  }
  return green >= 0;
}

bool EngineCluster::all_green_at_least(const std::vector<NodeId>& ids,
                                       std::int64_t count) const {
  for (NodeId id : ids) {
    const auto& n = nodes_.at(static_cast<std::size_t>(id));
    if (!n->running() || n->engine().green_count() < count) return false;
  }
  return true;
}

std::optional<std::string> EngineCluster::check_green_prefix_consistency() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->running()) continue;
    const auto& a = nodes_[i]->engine();
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
      if (!nodes_[j]->running()) continue;
      const auto& b = nodes_[j]->engine();
      const std::int64_t lo =
          std::max(a.green_count() - static_cast<std::int64_t>(0), std::int64_t{0});
      (void)lo;
      const std::int64_t overlap_end = std::min(a.green_count(), b.green_count());
      for (std::int64_t pos = 1; pos <= overlap_end; ++pos) {
        const ActionId ia = a.green_action_at(pos);
        const ActionId ib = b.green_action_at(pos);
        if (ia.server_id == kNoNode || ib.server_id == kNoNode) continue;  // white-trimmed
        if (!(ia == ib)) {
          std::ostringstream os;
          os << "green divergence at position " << pos << ": node " << a.id() << " has "
             << to_string(ia) << ", node " << b.id() << " has " << to_string(ib);
          return os.str();
        }
      }
      if (a.green_count() == b.green_count() && a.db_digest() != b.db_digest()) {
        std::ostringstream os;
        os << "equal green count " << a.green_count() << " but different digests at nodes "
           << a.id() << " and " << b.id();
        return os.str();
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> EngineCluster::check_green_fifo() const {
  for (const auto& n : nodes_) {
    if (!n->running()) continue;
    const auto& e = n->engine();
    std::map<NodeId, std::int64_t> last;
    for (std::int64_t pos = 1; pos <= e.green_count(); ++pos) {
      const ActionId id = e.green_action_at(pos);
      if (id.server_id == kNoNode) continue;  // white-trimmed
      auto it = last.find(id.server_id);
      if (it != last.end() && id.index != it->second + 1) {
        std::ostringstream os;
        os << "FIFO violation at node " << e.id() << ": creator " << id.server_id << " index "
           << id.index << " after " << it->second;
        return os.str();
      }
      last[id.server_id] = id.index;
    }
  }
  return std::nullopt;
}

std::optional<std::string> EngineCluster::check_single_primary() const {
  std::map<std::int64_t, std::vector<NodeId>> prim_members;
  for (const auto& n : nodes_) {
    if (!n->running()) continue;
    const auto& e = n->engine();
    if (!e.in_primary()) continue;
    const auto& p = e.prim_component();
    auto [it, inserted] = prim_members.emplace(p.prim_index, p.servers);
    if (!inserted && it->second != p.servers) {
      std::ostringstream os;
      os << "two primaries with index " << p.prim_index << " but different memberships";
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> EngineCluster::check_all() const {
  if (auto v = check_green_prefix_consistency()) return v;
  if (auto v = check_green_fifo()) return v;
  if (auto v = check_single_primary()) return v;
  return std::nullopt;
}

}  // namespace tordb::workload
