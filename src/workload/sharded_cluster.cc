#include "workload/sharded_cluster.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace tordb::workload {

ShardedCluster::ShardedCluster(ShardedClusterOptions options)
    : options_(std::move(options)), sim_(options_.seed), net_(sim_, options_.net) {
  if (options_.shards < 1 || options_.replicas_per_shard < 1) {
    throw std::invalid_argument("shards and replicas_per_shard must be >= 1");
  }
  if (!options_.range_splits.empty() &&
      static_cast<int>(options_.range_splits.size()) != options_.shards - 1) {
    throw std::invalid_argument("range_splits must have shards - 1 entries");
  }
  options_.session.retry_when_unavailable = true;  // cross-shard all-or-nothing

  // Event lanes (DESIGN.md §15): resolve the knobs, then partition the
  // simulator BEFORE anything is scheduled and before the trace bus exists
  // (the bus sizes its per-lane buffers and installs the barrier hook at
  // construction).
  int threads = options_.sim_threads;
  bool lanes = options_.sim_lanes;
  if (options_.sim_env) {
    if (const char* v = std::getenv("TORDB_SIM_THREADS")) threads = std::max(1, std::atoi(v));
    if (const char* v = std::getenv("TORDB_SIM_LANES")) lanes = lanes || std::strcmp(v, "0") != 0;
  }
  if (threads < 1) throw std::invalid_argument("sim_threads must be >= 1");
  lanes = lanes || threads > 1;
  if (lanes) {
    const SimDuration handoff =
        options_.sim_handoff > 0 ? options_.sim_handoff : options_.net.base_latency;
    if (handoff > options_.net.detect_delay) {
      // Reachability notifications are posted cross-lane with detect_delay;
      // the conservative windows require every cross-lane delay >= handoff.
      throw std::invalid_argument("lane handoff latency must be <= net.detect_delay");
    }
    sim_.enable_lanes(options_.shards + 1, threads, handoff);
  }

  const bool check = options_.obs.check || obs::check_forced();
  if (options_.obs.trace || check) {
    obs::TraceBusOptions bus_opts;
    bus_opts.ring_capacity = options_.obs.ring_capacity;
    trace_bus_ = std::make_shared<obs::TraceBus>(sim_, bus_opts);
    trace_bus_->capture_logs();
    options_.node.engine.trace_bus = trace_bus_;
    if (check) {
      obs::CheckerOptions copts;
      copts.fail_fast = options_.obs.checker_fail_fast;
      checker_ = std::make_unique<obs::SafetyChecker>(*trace_bus_, copts);
    }
  }
  if (options_.obs.metrics_window > 0) {
    metrics_ = std::make_shared<obs::MetricsRegistry>();
    options_.node.engine.metrics = metrics_;
  }

  // Scope every node to its group BEFORE construction where possible: the
  // checker needs the node->group map before the engine's first event
  // (kEngineStart fires inside the ReplicaNode constructor); the network
  // group is set right after registration, before any simulated time
  // elapses, so the first (detect-delay-deferred) reachability notification
  // already sees the final assignment.
  for (int s = 0; s < options_.shards; ++s) {
    const std::vector<NodeId> members = shard_ids(s);
    // In lane mode, construct shard s inside lane s: Network::add_node
    // stamps the current lane, and every event the nodes schedule during
    // construction (engine start, initial reachability notify) lands in
    // their own lane's heap. Lane `shards` is the control lane.
    std::optional<Simulator::LaneScope> scope;
    if (lanes) scope.emplace(sim_, s);
    for (int i = 0; i < options_.replicas_per_shard; ++i) {
      const NodeId id = node_id(s, i);
      if (checker_) checker_->set_node_group(id, s);
      nodes_.push_back(std::make_unique<core::ReplicaNode>(net_, id, members, options_.node));
      net_.set_group(id, s);
    }
    shard_components_.push_back({});  // one implicit component: all members
  }

  shard::RouterOptions ropts;
  ropts.session = options_.session;
  ropts.metrics = metrics_;
  if (trace_bus_) ropts.tracer = obs::Tracer(trace_bus_, kNoNode);
  // One shared Directory: the rebalancer mutates it, the router observes
  // the new epoch on its very next routing decision.
  auto dir = std::make_shared<shard::Directory>(
      options_.range_splits.empty() ? shard::Directory::hashed(options_.shards)
                                    : shard::Directory::ranged(options_.range_splits));
  std::vector<std::vector<core::ReplicaNode*>> groups;
  for (int s = 0; s < options_.shards; ++s) {
    std::vector<core::ReplicaNode*> g;
    for (int i = 0; i < options_.replicas_per_shard; ++i) {
      g.push_back(nodes_[static_cast<std::size_t>(node_id(s, i))].get());
    }
    groups.push_back(std::move(g));
  }
  router_ = std::make_unique<shard::Router>(sim_, dir, groups, std::move(ropts));

  make_txn_coordinator(options_.txn_halt_at_stage);
  // The handler dereferences txn_ at call time, so it survives coordinator
  // restarts without rewiring.
  router_->set_cross_check_handler(
      [this](std::int64_t client, db::Command update, shard::RouteReplyFn reply) {
        txn_->submit(client, std::move(update), std::move(reply));
      });

  shard::RebalancerOptions bopts = options_.rebalance;
  bopts.session = options_.session;
  bopts.metrics = metrics_;
  if (trace_bus_) bopts.tracer = obs::Tracer(trace_bus_, kNoNode);
  rebalancer_ = std::make_unique<shard::Rebalancer>(sim_, dir, std::move(groups),
                                                    std::move(bopts));

  if (metrics_) schedule_metrics_roll();
}

void ShardedCluster::in_node_lane(int shard, int idx, void (*fn)(core::ReplicaNode&)) {
  core::ReplicaNode& n = node(shard, idx);
  if (!sim_.lanes_enabled()) {
    fn(n);
    return;
  }
  if (sim_.running()) {
    // Mid-run (a churn schedule driven from the control lane): defer by the
    // handoff latency so the mutation lands at the start of a future
    // window on the node's own lane.
    sim_.call_in_lane(n.sim_lane(), [fn, &n] { fn(n); });
    return;
  }
  // Parked: run inline, but scope any events the call schedules (engine
  // restart timers, reachability notifies) to the node's lane.
  Simulator::LaneScope scope(sim_, n.sim_lane());
  fn(n);
}

void ShardedCluster::make_txn_coordinator(int halt_at_stage) {
  txn::TxnOptions topts;
  topts.session = options_.session;
  topts.metrics = metrics_;
  if (trace_bus_) topts.tracer = obs::Tracer(trace_bus_, kNoNode);
  topts.halt_at_stage = halt_at_stage;
  topts.session_epoch = txn_session_epoch_;
  std::vector<std::vector<core::ReplicaNode*>> groups;
  for (int s = 0; s < options_.shards; ++s) {
    std::vector<core::ReplicaNode*> g;
    for (int i = 0; i < options_.replicas_per_shard; ++i) {
      g.push_back(nodes_[static_cast<std::size_t>(node_id(s, i))].get());
    }
    groups.push_back(std::move(g));
  }
  txn_ = std::make_unique<txn::TxnCoordinator>(sim_, *router_, std::move(groups),
                                               std::move(topts));
}

void ShardedCluster::restart_txn_coordinator(int halt_at_stage) {
  ++txn_session_epoch_;
  make_txn_coordinator(halt_at_stage);
}

std::vector<NodeId> ShardedCluster::shard_ids(int shard) const {
  std::vector<NodeId> ids;
  for (int i = 0; i < options_.replicas_per_shard; ++i) ids.push_back(node_id(shard, i));
  return ids;
}

std::uint64_t ShardedCluster::shard_seed(int shard) const {
  // Two splitmix steps over (seed, shard): related base seeds and adjacent
  // shard ids both land in uncorrelated streams.
  std::uint64_t x = options_.seed;
  (void)splitmix64(x);
  x ^= static_cast<std::uint64_t>(shard) * 0x9e3779b97f4a7c15ULL;
  return splitmix64(x);
}

void ShardedCluster::partition_shard(int shard, const std::vector<std::vector<int>>& components) {
  std::vector<bool> seen(static_cast<std::size_t>(options_.replicas_per_shard), false);
  for (const auto& comp : components) {
    for (int idx : comp) {
      if (idx < 0 || idx >= options_.replicas_per_shard || seen[static_cast<std::size_t>(idx)]) {
        throw std::invalid_argument("each shard member must appear in exactly one component");
      }
      seen[static_cast<std::size_t>(idx)] = true;
    }
  }
  if (std::find(seen.begin(), seen.end(), false) != seen.end()) {
    throw std::invalid_argument("each shard member must appear in exactly one component");
  }
  shard_components_.at(static_cast<std::size_t>(shard)) = components;
  apply_components();
}

void ShardedCluster::heal_shard(int shard) {
  shard_components_.at(static_cast<std::size_t>(shard)).clear();
  apply_components();
}

void ShardedCluster::heal() {
  for (auto& c : shard_components_) c.clear();
  apply_components();
}

void ShardedCluster::apply_components() {
  // Network components are global and must cover every node exactly once:
  // emit one global component per (shard, local component). Nodes of
  // different shards always end up in different components here, which is
  // invisible to the protocol — shards exchange no network traffic and the
  // reachability service is group-scoped anyway.
  std::vector<std::vector<NodeId>> global;
  for (int s = 0; s < options_.shards; ++s) {
    const auto& comps = shard_components_[static_cast<std::size_t>(s)];
    if (comps.empty()) {
      global.push_back(shard_ids(s));
      continue;
    }
    for (const auto& comp : comps) {
      std::vector<NodeId> g;
      for (int idx : comp) g.push_back(node_id(s, idx));
      global.push_back(std::move(g));
    }
  }
  net_.set_components(global);
}

bool ShardedCluster::converged(int shard) const {
  std::int64_t green = -1;
  std::uint64_t digest = 0;
  for (int i = 0; i < options_.replicas_per_shard; ++i) {
    const auto& n = node(shard, i);
    if (!n.running()) continue;
    const auto& e = n.engine();
    if (e.state() != core::EngineState::kRegPrim) return false;
    if (green == -1) {
      green = e.green_count();
      digest = e.db_digest();
    } else if (e.green_count() != green || e.db_digest() != digest) {
      return false;
    }
  }
  return green >= 0;
}

std::optional<std::string> ShardedCluster::check_green_prefix_consistency() const {
  for (int s = 0; s < options_.shards; ++s) {
    for (int i = 0; i < options_.replicas_per_shard; ++i) {
      const auto& a = node(s, i);
      if (!a.running()) continue;
      for (int j = i + 1; j < options_.replicas_per_shard; ++j) {
        const auto& b = node(s, j);
        if (!b.running()) continue;
        const auto& ea = a.engine();
        const auto& eb = b.engine();
        const std::int64_t overlap = std::min(ea.green_count(), eb.green_count());
        for (std::int64_t pos = 1; pos <= overlap; ++pos) {
          const ActionId ia = ea.green_action_at(pos);
          const ActionId ib = eb.green_action_at(pos);
          if (ia.server_id == kNoNode || ib.server_id == kNoNode) continue;  // white-trimmed
          if (!(ia == ib)) {
            std::ostringstream os;
            os << "shard " << s << " green divergence at position " << pos << ": node "
               << ea.id() << " has " << to_string(ia) << ", node " << eb.id() << " has "
               << to_string(ib);
            return os.str();
          }
        }
        if (ea.green_count() == eb.green_count() && ea.db_digest() != eb.db_digest()) {
          std::ostringstream os;
          os << "shard " << s << ": equal green count " << ea.green_count()
             << " but different digests at nodes " << ea.id() << " and " << eb.id();
          return os.str();
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> ShardedCluster::check_all() const {
  if (checker_ && !checker_->ok()) return checker_->report();
  if (auto v = check_green_prefix_consistency()) return v;
  if (router_->stats().cross_partial_aborts > 0) {
    std::ostringstream os;
    os << router_->stats().cross_partial_aborts
       << " cross-shard action(s) committed at some shards and aborted at others";
    return os.str();
  }
  return std::nullopt;
}

void ShardedCluster::schedule_metrics_roll() {
  sim_.after(options_.obs.metrics_window, [this] {
    sample_metrics();
    metrics_->roll(sim_.now());
    schedule_metrics_roll();
  });
}

void ShardedCluster::sample_metrics() {
  if (!metrics_) return;
  std::uint64_t total_green = 0, total_red = 0, total_installs = 0;
  std::uint64_t intern_keys = 0, intern_bytes = 0, table_slots = 0, table_rehashes = 0;
  std::uint64_t total_announces_sent = 0, total_announces_received = 0;
  std::int64_t total_bodies = 0, total_body_bytes = 0, total_lag = 0;
  for (int s = 0; s < options_.shards; ++s) {
    std::uint64_t green = 0, red = 0, installs = 0, forces = 0;
    std::uint64_t announces_sent = 0, announces_received = 0;
    std::int64_t min_white = -1, max_green = 0, bodies = 0, body_bytes = 0;
    for (int i = 0; i < options_.replicas_per_shard; ++i) {
      auto& n = node(s, i);
      forces += n.storage().stats().forces;
      if (!n.running()) continue;
      const auto& es = n.engine().stats();
      green += es.actions_green;
      red += es.actions_red;
      installs += es.primaries_installed;
      announces_sent += es.announces_sent;
      announces_received += es.announces_received;
      const std::int64_t wl = n.engine().white_line();
      min_white = min_white < 0 ? wl : std::min(min_white, wl);
      max_green = std::max(max_green, n.engine().green_count());
      bodies += static_cast<std::int64_t>(n.engine().action_log().stored_bodies());
      body_bytes += n.engine().action_log().body_bytes();
      const db::DbStats ds = n.engine().database().stats();
      intern_keys += ds.interned_keys;
      intern_bytes += ds.interned_bytes;
      table_slots += ds.table_slots;
      table_rehashes += ds.table_rehashes;
    }
    const std::string prefix = "shard." + std::to_string(s) + ".";
    metrics_->counter(prefix + "actions_green").set_total(green);
    metrics_->counter(prefix + "actions_red").set_total(red);
    metrics_->counter(prefix + "primaries_installed").set_total(installs);
    metrics_->counter(prefix + "storage_forces").set_total(forces);
    metrics_->gauge(prefix + "whiteline.min").set(std::max<std::int64_t>(min_white, 0));
    metrics_->gauge(prefix + "whiteline.lag")
        .set(max_green - std::max<std::int64_t>(min_white, 0));
    total_green += green;
    total_red += red;
    total_installs += installs;
    total_announces_sent += announces_sent;
    total_announces_received += announces_received;
    total_bodies += bodies;
    total_body_bytes += body_bytes;
    total_lag += max_green - std::max<std::int64_t>(min_white, 0);
  }
  metrics_->counter("cluster.actions_green").set_total(total_green);
  metrics_->counter("cluster.actions_red").set_total(total_red);
  metrics_->counter("cluster.primaries_installed").set_total(total_installs);
  metrics_->counter("cluster.announces_sent").set_total(total_announces_sent);
  metrics_->counter("cluster.announces_received").set_total(total_announces_received);
  // White-line / body-store health across the deployment (DESIGN.md §14):
  // lag summed over shards — growing lag means trimming is starving.
  metrics_->gauge("gc.whiteline.lag").set(total_lag);
  metrics_->gauge("gc.bodies.stored").set(total_bodies);
  metrics_->gauge("gc.bodies.bytes").set(total_body_bytes);
  metrics_->counter("net.messages").set_total(net_.stats().messages_sent);
  metrics_->counter("net.bytes").set_total(net_.stats().bytes_sent);
  metrics_->counter("net.payload_bytes_copied").set_total(net_.stats().payload_bytes_copied);
  metrics_->counter("net.reachable_cache_hits").set_total(net_.stats().reachable_cache_hits);
  metrics_->counter("net.reachable_cache_misses").set_total(net_.stats().reachable_cache_misses);
  metrics_->counter("sim.events_executed").set_total(sim_.executed_events());
  metrics_->gauge("sim.queue_depth").set(static_cast<std::int64_t>(sim_.queue_depth()));
  metrics_->gauge("sim.peak_queue_depth").set(static_cast<std::int64_t>(sim_.peak_queue_depth()));
  if (sim_.lanes_enabled()) {
    // Lane health (DESIGN.md §15): window count and handoff volume tell how
    // often the lanes synchronize; the per-lane event spread and the clock
    // skew inside the current window tell whether the load is balanced
    // enough for the worker pool to help (see docs/OPERATIONS.md).
    metrics_->gauge("sim.lanes.count").set(sim_.lane_count());
    metrics_->gauge("sim.lanes.threads").set(sim_.worker_threads());
    metrics_->counter("sim.lanes.windows").set_total(sim_.windows_run());
    metrics_->counter("sim.lanes.handoffs").set_total(sim_.handoffs_posted());
    std::uint64_t ev_min = ~0ull, ev_max = 0;
    SimTime now_min = 0, now_max = 0;
    std::size_t depth_max = 0;
    for (int l = 0; l < sim_.lane_count() - 1; ++l) {  // worker lanes only
      ev_min = std::min<std::uint64_t>(ev_min, sim_.lane_executed(l));
      ev_max = std::max<std::uint64_t>(ev_max, sim_.lane_executed(l));
      now_min = l == 0 ? sim_.lane_now(l) : std::min(now_min, sim_.lane_now(l));
      now_max = std::max(now_max, sim_.lane_now(l));
      depth_max = std::max(depth_max, sim_.lane_queue_depth(l));
    }
    metrics_->gauge("sim.lanes.events.min").set(static_cast<std::int64_t>(ev_min));
    metrics_->gauge("sim.lanes.events.max").set(static_cast<std::int64_t>(ev_max));
    metrics_->gauge("sim.lanes.skew_ns").set(now_max - now_min);
    metrics_->gauge("sim.lanes.queue_depth.max").set(static_cast<std::int64_t>(depth_max));
  }
  metrics_->counter("router.committed").set_total(router_->stats().committed);
  metrics_->counter("router.aborted").set_total(router_->stats().aborted);
  metrics_->counter("router.aborted_checks").set_total(router_->stats().aborted_checks);
  metrics_->counter("router.cross").set_total(router_->stats().routed_cross);
  metrics_->counter("router.failovers").set_total(router_->stats().failovers);
  metrics_->counter("router.fenced_bounces").set_total(router_->stats().fenced_bounces);
  metrics_->counter("router.txn.handoffs").set_total(router_->stats().txn_handoffs);
  metrics_->counter("router.txn.prepares").set_total(txn_->stats().prepares);
  metrics_->counter("router.txn.confirms").set_total(txn_->stats().confirms);
  metrics_->counter("router.txn.cancels").set_total(txn_->stats().cancels);
  metrics_->counter("router.rejected_unsupported").set_total(router_->stats().rejected_unsupported);
  metrics_->counter("txn.committed").set_total(txn_->stats().committed);
  metrics_->counter("txn.aborted.check").set_total(txn_->stats().aborted_check);
  metrics_->counter("txn.aborted.fenced").set_total(txn_->stats().aborted_fenced);
  metrics_->counter("txn.restarts").set_total(txn_->stats().restarts);
  metrics_->counter("txn.confirm_rerouted").set_total(txn_->stats().confirm_rerouted);
  metrics_->counter("txn.snapshot_reads").set_total(txn_->stats().snapshot_reads);
  metrics_->gauge("directory.epoch").set(router_->directory().epoch());
  // Flat-layout accounting (DESIGN.md §11), summed over running replicas.
  metrics_->counter("db.intern.keys").set_total(intern_keys);
  metrics_->counter("db.intern.bytes").set_total(intern_bytes);
  metrics_->counter("db.table.slots").set_total(table_slots);
  metrics_->counter("db.table.rehashes").set_total(table_rehashes);
  const auto& rc = router_->directory().route_cache_stats();
  metrics_->counter("directory.route_cache.hits").set_total(rc.hits);
  metrics_->counter("directory.route_cache.misses").set_total(rc.misses);
}

}  // namespace tordb::workload
