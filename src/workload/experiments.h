// Experiment runners reproducing the paper's §7 evaluation and the
// additional ablations listed in DESIGN.md. Each function builds a fresh
// simulated deployment, drives closed-loop clients, and reports simulated
// throughput/latency.
//
// Setup mirrors the paper: "clients are constantly injecting actions into
// the system, the next action from a client being introduced immediately
// after the previous action from that client is completed", each action
// ~200 bytes, clients spread one per replica, and "clients receive
// responses to their actions when the actions are globally ordered, without
// any interaction with a database" — we keep the (cheap, deterministic)
// database application since it costs nothing in simulated time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace tordb::workload {

enum class Algorithm {
  kEngine,         ///< the paper's replication engine, forced disk writes
  kEngineDelayed,  ///< the engine with delayed (asynchronous) disk writes
  kCorel,          ///< COReL-style: per-action end-to-end acks
  kTwoPc,          ///< replicated two-phase commit
};

std::string to_string(Algorithm a);

struct ThroughputPoint {
  Algorithm algorithm;
  int replicas = 0;
  int clients = 0;
  double actions_per_second = 0;
  double mean_latency_ms = 0;
  std::uint64_t completed = 0;
};

/// Closed-loop throughput (Figure 5(a)/(b)): `clients` clients attached
/// round-robin to `replicas` replicas; measured over `measure` after
/// `warmup` of simulated time.
ThroughputPoint measure_throughput(Algorithm algorithm, int replicas, int clients,
                                   SimDuration warmup, SimDuration measure,
                                   std::uint64_t seed = 1);

/// Engine-only variant of measure_throughput that attaches an
/// obs::MetricsRegistry rolling a window every `window`, and appends the
/// rendered time-series table to `*window_table` (when non-null).
ThroughputPoint measure_engine_throughput_windowed(bool delayed, int replicas, int clients,
                                                   SimDuration warmup, SimDuration measure,
                                                   SimDuration window, std::uint64_t seed,
                                                   std::string* window_table);

struct LatencyResult {
  Algorithm algorithm;
  int replicas = 0;
  std::uint64_t count = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
};

/// Sequential-latency experiment (§7): one client submits `actions` actions
/// back to back; reports the latency distribution.
LatencyResult measure_latency(Algorithm algorithm, int replicas, int actions,
                              std::uint64_t seed = 1);

struct ViewChangePoint {
  SimDuration change_period = 0;  ///< 0 = no membership changes
  double actions_per_second = 0;
  std::uint64_t membership_changes = 0;
  std::uint64_t end_to_end_rounds = 0;  ///< engine: exchanges; per-action algs: acks
  std::uint64_t persist_batches = 0;       ///< multi-action persist+multicast batches
  std::uint64_t persist_batch_actions = 0; ///< actions carried by those batches
};

/// Ablation A1: engine throughput under periodic partition/heal cycles —
/// the cost of the engine's one end-to-end exchange per membership change.
/// When `metrics_window` > 0 a registry rolls windows every interval and
/// the rendered series is appended to `*window_table` (when non-null).
ViewChangePoint measure_engine_under_view_changes(int replicas, int clients,
                                                  SimDuration change_period,
                                                  SimDuration measure,
                                                  std::uint64_t seed = 1,
                                                  SimDuration metrics_window = 0,
                                                  std::string* window_table = nullptr);

struct SemanticsResult {
  double weak_query_ms = 0;          ///< answered in the minority partition
  double dirty_query_ms = 0;         ///< answered in the minority partition
  double commutative_update_ms = 0;  ///< acknowledged in the minority
  double strict_latency_ms = 0;      ///< strict action: waits for the merge
  bool strict_blocked_during_partition = false;
};

/// Ablation A2 (§6): service latency of the relaxed semantics inside a
/// non-primary component, versus a strict action that must wait for merge.
SemanticsResult measure_semantics(int replicas, SimDuration partition_length,
                                  std::uint64_t seed = 1);

struct ScalingPoint {
  int replicas = 0;
  std::uint32_t action_bytes = 0;
  double actions_per_second = 0;
  double mean_latency_ms = 0;
};

/// Ablation A3: engine throughput/latency across replica counts and action
/// sizes.
ScalingPoint measure_engine_scaling(int replicas, std::uint32_t action_padding, int clients,
                                    SimDuration warmup, SimDuration measure,
                                    std::uint64_t seed = 1);

/// Ablation A4: wide-area deployment. Replicas are spread round-robin over
/// `sites`; traffic between sites pays `inter_site_latency` one way. The
/// paper predicts (§7) that "on wide area network, where network latency
/// becomes a more important factor, COReL will further outperform two-phase
/// commit" — and the engine, with no end-to-end round at all, outperforms
/// both.
ThroughputPoint measure_throughput_wan(Algorithm algorithm, int replicas, int clients,
                                       int sites, SimDuration inter_site_latency,
                                       SimDuration wan_per_byte, SimDuration warmup,
                                       SimDuration measure, std::uint64_t seed = 1);

struct AvailabilityPoint {
  bool dynamic_linear_voting = true;
  double primary_availability = 0;   ///< fraction of time some primary exists
  std::uint64_t actions_committed = 0;
  std::uint64_t primaries_installed = 0;
};

struct ShardingPoint {
  int shards = 0;
  int replicas_per_shard = 0;
  int clients = 0;
  double cross_ratio = 0;         ///< fraction of actions touching 2 shards
  double actions_per_second = 0;  ///< router-committed actions/s in the window
  double green_per_second = 0;    ///< aggregate engine green actions/s
  double mean_latency_ms = 0;
  double mean_barrier_ms = 0;     ///< cross-shard first-green -> last-green
  std::uint64_t completed = 0;
  std::uint64_t cross_committed = 0;
};

/// Ablation A6 (DESIGN.md §8): sharded deployment throughput. `shards`
/// independent engine groups of `replicas_per_shard` replicas each share
/// one simulated network; closed-loop clients route through shard::Router,
/// and a `cross_ratio` fraction of actions write one key in each of two
/// distinct shards (cross-shard commit barrier). At cross_ratio 0 the
/// aggregate green throughput should scale with the shard count against a
/// single group of the same total replica count.
ShardingPoint measure_sharding(int shards, int replicas_per_shard, int clients,
                               double cross_ratio, SimDuration warmup, SimDuration measure,
                               std::uint64_t seed = 1);

struct RebalancePoint {
  int shards = 0;
  int replicas_per_shard = 0;
  int clients = 0;
  int moves_requested = 0;
  std::uint64_t moves_completed = 0;
  std::int64_t rows_moved = 0;
  std::int64_t bytes_moved = 0;
  double mean_move_ms = 0;        ///< fence submit -> cutover, per move
  std::int64_t final_epoch = 0;
  std::uint64_t fenced_bounces = 0;  ///< router retries caused by fences
  // Client-visible latency, segregated by whether a move was in flight when
  // the action completed.
  std::uint64_t steady_completed = 0;
  double steady_p50_ms = 0;
  double steady_p99_ms = 0;
  std::uint64_t move_window_completed = 0;
  double move_window_p50_ms = 0;
  double move_window_p99_ms = 0;
};

/// Ablation A7 (DESIGN.md §9): client-visible cost of online rebalancing.
/// A range-sharded deployment runs `clients` closed-loop writers over a
/// fixed key space while `moves` fenced key-range moves execute back to
/// back; actions completing during a move window are measured separately
/// from steady state. Exactly-once routing means completed counts are exact
/// (a bounced command commits once at the new owner or not at all).
RebalancePoint measure_rebalance(int shards, int replicas_per_shard, int clients, int moves,
                                 SimDuration warmup, SimDuration measure,
                                 std::uint64_t seed = 1);

struct SimScalePoint {
  int shards = 0;  ///< 1 = one plain engine group (no router)
  int replicas_per_shard = 0;
  int total_replicas = 0;
  int clients = 0;
  int sim_threads = 0;  ///< lane-mode worker threads; 0 = classic event loop
  double green_per_second = 0;  ///< aggregate engine green actions/s (sim time)
  std::uint64_t completed = 0;  ///< client-visible commits in the window
  // Cost of the simulation itself, the subject of bench_sim_scale:
  std::uint64_t events = 0;    ///< simulator events executed, whole run
  std::uint64_t messages = 0;  ///< network messages sent, whole run
  double wall_ms = 0;          ///< host wall clock for the whole run
  double events_per_wall_second = 0;
  double wall_ms_per_sim_second = 0;  ///< wall cost per simulated second
  std::size_t peak_queue_depth = 0;
  // Hot-path counters (see NetworkStats); 0 on builds that predate them.
  std::uint64_t payload_bytes_copied = 0;
  std::uint64_t reachable_cache_hits = 0;
  std::uint64_t reachable_cache_misses = 0;
  // Lane-mode health (0 in classic mode): conservative windows run and
  // cross-lane handoffs committed over the whole run.
  std::uint64_t lane_windows = 0;
  std::uint64_t lane_handoffs = 0;
};

/// Simulator-scale probe: drives a closed-loop put workload over either one
/// plain engine group (`shards` == 1, the single-group EVS run) or a
/// ShardedCluster of `shards` groups, and reports what the simulation run
/// itself cost the host — events/sec, wall-clock per simulated second, peak
/// event-queue depth — alongside the simulated throughput. This is the
/// harness-profiling companion to measure_sharding: identical seeds produce
/// identical virtual-time results, so wall-clock deltas between builds
/// measure only the simulator hot path.
/// `sim_threads` = 0 (default) runs the classic single-threaded event loop.
/// >= 1 runs the sharded configurations in lane mode on that many worker
/// threads (ignored for shards == 1, which stays the classic single-group
/// run). Lane mode's simulated results differ from classic by design
/// (explicit cross-lane handoff latency) but are bit-identical across
/// thread counts, so wall-clock deltas between lane rows of the same
/// configuration measure only the worker pool.
SimScalePoint measure_sim_scale(int shards, int replicas_per_shard, int clients,
                                SimDuration warmup, SimDuration measure,
                                std::uint64_t seed = 1, int sim_threads = 0);

/// Ablation A5: availability of the two quorum systems under a cascading
/// partition schedule (the network repeatedly shrinks the surviving
/// component, then heals). Dynamic linear voting (the paper's choice, [15])
/// follows the surviving lineage; a static majority of the full replica set
/// loses the primary as soon as fewer than ⌈(n+1)/2⌉ replicas remain
/// connected.
AvailabilityPoint measure_quorum_availability(bool dynamic_linear_voting, int replicas,
                                              SimDuration measure, std::uint64_t seed = 1);

}  // namespace tordb::workload
