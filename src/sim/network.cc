#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

#include "util/log.h"

namespace tordb {

Network::Network(Simulator& sim, NetworkParams params) : sim_(sim), params_(params) {
  // One shard of everything lane-partitioned until set_lane() is called.
  reach_cache_.resize(1);
  stats_lanes_.resize(1);
}

NetworkStats& Network::lstats() const {
  if (!lanes_) return stats_lanes_[0];
  return stats_lanes_[static_cast<std::size_t>(sim_.current_lane())];
}

const NetworkStats& Network::stats() const {
  if (stats_lanes_.size() == 1) return stats_lanes_[0];
  NetworkStats agg;
  for (const NetworkStats& s : stats_lanes_) {
    agg.messages_sent += s.messages_sent;
    agg.messages_delivered += s.messages_delivered;
    agg.messages_dropped += s.messages_dropped;
    agg.bytes_sent += s.bytes_sent;
    agg.payload_bytes_copied += s.payload_bytes_copied;
    agg.reachable_cache_hits += s.reachable_cache_hits;
    agg.reachable_cache_misses += s.reachable_cache_misses;
  }
  stats_agg_ = agg;
  return stats_agg_;
}

void Network::ensure_lane_mode() {
  if (lanes_) return;
  if (!sim_.lanes_enabled()) throw std::logic_error("lane assignment requires simulator lanes");
  if (params_.wan_per_byte > 0) {
    // The WAN egress horizon is shared per site, not per lane.
    throw std::logic_error("wan_per_byte is not supported in lane mode");
  }
  lanes_ = true;
  reach_cache_.resize(static_cast<std::size_t>(sim_.lane_count()));
  stats_lanes_.resize(static_cast<std::size_t>(sim_.lane_count()));
}

void Network::set_lane(NodeId id, int lane) {
  ensure_lane_mode();
  if (lane < 0 || lane >= sim_.lane_count()) throw std::invalid_argument("bad lane");
  state(id).lane = lane;
}

int Network::lane(NodeId id) const { return state(id).lane; }

void Network::check_same_lane(const NodeState& src, const NodeState& dst) const {
  if (lanes_ && src.lane != dst.lane) {
    throw std::logic_error("network: traffic between nodes of different lanes");
  }
}

std::size_t Network::idx(NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= dense_.size() || dense_[id] < 0) {
    throw std::out_of_range("unknown node id");
  }
  return static_cast<std::size_t>(dense_[id]);
}

void Network::add_node(NodeId id) {
  if (id < 0) throw std::invalid_argument("negative node id");
  if (static_cast<std::size_t>(id) < dense_.size() && dense_[id] >= 0) {
    throw std::invalid_argument("duplicate node id");
  }
  if (static_cast<std::size_t>(id) >= dense_.size()) {
    dense_.resize(static_cast<std::size_t>(id) + 1, -1);
  }
  const std::size_t old_n = states_.size();
  dense_[id] = static_cast<std::int32_t>(old_n);
  states_.emplace_back();
  states_.back().id = id;
  if (sim_.lanes_enabled()) {
    // A node belongs to the lane it is constructed in (the harness wraps
    // each shard's construction in a Simulator::LaneScope).
    ensure_lane_mode();
    states_.back().lane = sim_.current_lane();
  }
  ids_sorted_.insert(std::lower_bound(ids_sorted_.begin(), ids_sorted_.end(), id), id);
  // Grow the flat link-horizon matrix from old_n^2 to n^2, preserving
  // existing horizons (indices are stable; only the row stride changes).
  const std::size_t n = old_n + 1;
  std::vector<SimTime> grown(n * n, 0);
  for (std::size_t f = 0; f < old_n; ++f) {
    for (std::size_t t = 0; t < old_n; ++t) grown[f * n + t] = link_horizon_[f * old_n + t];
  }
  link_horizon_ = std::move(grown);
  for (auto& cache : reach_cache_) cache.clear();
}

void Network::set_packet_handler(NodeId id, PacketHandler handler, Channel channel) {
  state(id).on_packet[static_cast<int>(channel)] = std::move(handler);
}

void Network::set_shared_packet_handler(NodeId id, SharedPacketHandler handler,
                                        Channel channel) {
  state(id).on_packet_shared[static_cast<int>(channel)] = std::move(handler);
}

void Network::clear_packet_handler(NodeId id, Channel channel) {
  state(id).on_packet[static_cast<int>(channel)] = nullptr;
  state(id).on_packet_shared[static_cast<int>(channel)] = nullptr;
}

void Network::set_reachability_handler(NodeId id, ReachabilityHandler handler) {
  state(id).on_reachability = std::move(handler);
  schedule_notify(id);
}

void Network::clear_reachability_handler(NodeId id) {
  state(id).on_reachability = nullptr;
}

void Network::set_group_active(NodeId id, bool active) {
  NodeState& s = state(id);
  if (s.group_active == active) return;
  s.group_active = active;
  topology_changed();
}

bool Network::group_active(NodeId id) const { return state(id).group_active; }

void Network::set_site(NodeId id, int site) {
  if (site < 0) throw std::invalid_argument("negative site");
  state(id).site = site;
}

SimDuration Network::wan_serialize(int site, std::size_t bytes) {
  if (params_.wan_per_byte <= 0) return 0;
  if (static_cast<std::size_t>(site) >= site_egress_busy_.size()) {
    site_egress_busy_.resize(static_cast<std::size_t>(site) + 1, 0);
  }
  SimTime& busy = site_egress_busy_[static_cast<std::size_t>(site)];
  const SimDuration ser = params_.wan_per_byte * static_cast<SimDuration>(bytes);
  const SimTime start = std::max(sim_.now(), busy);
  busy = start + ser;
  return busy - sim_.now();
}

int Network::site(NodeId id) const { return state(id).site; }

void Network::set_group(NodeId id, int group) {
  NodeState& s = state(id);
  if (s.group == group) return;
  s.group = group;
  topology_changed();
}

int Network::group(NodeId id) const { return state(id).group; }

bool Network::alive(NodeId id) const { return state(id).up; }

bool Network::connected(NodeId a, NodeId b) const { return connected_idx(idx(a), idx(b)); }

std::vector<NodeId> Network::reachable_set(NodeId id) const {
  const NodeState& s = state(id);
  if (!s.up) return {};
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.component)) << 32) |
      static_cast<std::uint32_t>(s.group);
  auto& cache = reach_cache_[lanes_ ? static_cast<std::size_t>(s.lane) : 0];
  auto it = cache.find(key);
  if (it != cache.end()) {
    ++lstats().reachable_cache_hits;
    return it->second;
  }
  ++lstats().reachable_cache_misses;
  std::vector<NodeId> out;
  for (NodeId nid : ids_sorted_) {
    const NodeState& ns = states_[static_cast<std::size_t>(dense_[nid])];
    if (ns.up && ns.group_active && ns.component == s.component && ns.group == s.group) {
      out.push_back(nid);
    }
  }
  cache.emplace(key, out);
  return out;
}

std::vector<NodeId> Network::node_ids() const { return ids_sorted_; }

void Network::charge(NodeId id, SimDuration d) {
  NodeState& s = state(id);
  s.busy_until = std::max(s.busy_until, sim_.now()) + d;
}

SimTime Network::busy_until(NodeId id) const { return state(id).busy_until; }

void Network::send(NodeId from, NodeId to, const Bytes& payload, Channel channel) {
  lstats().payload_bytes_copied += payload.size();
  send(from, to, Bytes(payload), channel);
}

void Network::send(NodeId from, NodeId to, Bytes&& payload, Channel channel) {
  const std::size_t fi = idx(from);
  const std::size_t ti = idx(to);
  NodeState& src = states_[fi];
  check_same_lane(src, states_[ti]);
  if (!src.up) return;
  NetworkStats& st = lstats();
  ++st.messages_sent;
  st.bytes_sent += payload.size();
  charge(from, params_.send_per_message);

  if (!connected_idx(fi, ti)) {
    ++st.messages_dropped;
    return;
  }

  SimDuration latency = 0;
  if (from != to) {
    latency = params_.base_latency +
              params_.per_byte_latency * static_cast<SimDuration>(payload.size());
    if (src.site != states_[ti].site) {
      latency += params_.inter_site_latency + wan_serialize(src.site, payload.size());
    }
    if (params_.jitter > 0) latency += sim_.rng().next_range(0, params_.jitter - 1);
  }
  SimTime arrive = sim_.now() + latency;

  // FIFO per directed link: never deliver earlier than a previous packet.
  SimTime& horizon = link_horizon_[fi * states_.size() + ti];
  arrive = std::max(arrive, horizon + 1);
  horizon = arrive;

  const std::uint64_t to_epoch = states_[ti].epoch;
  auto p = std::make_shared<const Bytes>(std::move(payload));
  sim_.at(arrive, [this, from, to, to_epoch, channel, p = std::move(p)]() mutable {
    deliver(from, to, to_epoch, channel, std::move(p));
  });
}

void Network::multicast(NodeId from, const std::vector<NodeId>& to, const Bytes& payload,
                        Channel channel) {
  lstats().payload_bytes_copied += payload.size();
  multicast(from, to, Bytes(payload), channel);
}

void Network::multicast(NodeId from, const std::vector<NodeId>& to, Bytes&& payload,
                        Channel channel) {
  // Models LAN hardware multicast (what Spread uses): the sender pays the
  // send cost once and the wire fans out; receivers each pay receive costs.
  const std::size_t fi = idx(from);
  NodeState& src = states_[fi];
  if (!src.up) return;
  charge(from, params_.send_per_message);
  NetworkStats& st = lstats();
  ++st.messages_sent;
  st.bytes_sent += payload.size();

  // One refcounted buffer shared by every recipient's delivery event.
  auto p = std::make_shared<const Bytes>(std::move(payload));

  // One WAN copy per remote site, not per remote target.
  std::map<int, SimDuration> site_serialization;
  if (params_.wan_per_byte > 0) {
    for (NodeId t : to) {
      const int s = states_[idx(t)].site;
      if (s != src.site && !site_serialization.count(s)) {
        site_serialization[s] = wan_serialize(src.site, p->size());
      }
    }
  }

  for (NodeId t : to) {
    const std::size_t ti = idx(t);
    check_same_lane(src, states_[ti]);
    if (!connected_idx(fi, ti)) {
      ++st.messages_dropped;
      continue;
    }
    SimDuration latency = 0;
    if (from != t) {
      latency = params_.base_latency +
                params_.per_byte_latency * static_cast<SimDuration>(p->size());
      if (src.site != states_[ti].site) {
        latency += params_.inter_site_latency;
        auto it = site_serialization.find(states_[ti].site);
        if (it != site_serialization.end()) latency += it->second;
      }
      if (params_.jitter > 0) latency += sim_.rng().next_range(0, params_.jitter - 1);
    }
    SimTime arrive = sim_.now() + latency;
    SimTime& horizon = link_horizon_[fi * states_.size() + ti];
    arrive = std::max(arrive, horizon + 1);
    horizon = arrive;
    const std::uint64_t to_epoch = states_[ti].epoch;
    sim_.at(arrive, [this, from, t, to_epoch, channel, p]() mutable {
      deliver(from, t, to_epoch, channel, std::move(p));
    });
  }
}

void Network::deliver(NodeId from, NodeId to, std::uint64_t to_epoch, Channel channel,
                      std::shared_ptr<const Bytes> payload) {
  const std::size_t fi = idx(from);
  const std::size_t ti = idx(to);
  NodeState& dst = states_[ti];
  // Drop if the receiver crashed (epoch bumped), or the partition map
  // changed while the packet was in flight.
  if (!dst.up || dst.epoch != to_epoch || !connected_idx(fi, ti)) {
    ++lstats().messages_dropped;
    return;
  }
  // Serialize receipt on the destination CPU.
  const SimDuration cost = params_.proc_per_message +
                           params_.proc_per_byte * static_cast<SimDuration>(payload->size());
  const SimTime start = std::max(sim_.now(), dst.busy_until);
  dst.busy_until = start + cost;
  // u32 indices (and 8-aligned captures first) keep this closure within
  // SmallFn's inline budget — the static_assert below pins that.
  const auto fi32 = static_cast<std::uint32_t>(fi);
  const auto ti32 = static_cast<std::uint32_t>(ti);
  auto ev = [this, to_epoch, p = std::move(payload), from, fi = fi32, ti = ti32, channel] {
    NodeState& d = states_[ti];
    if (!d.up || d.epoch != to_epoch || !connected_idx(fi, ti)) {
      ++lstats().messages_dropped;
      return;
    }
    ++lstats().messages_delivered;
    if (SharedPacketHandler& shared = d.on_packet_shared[static_cast<int>(channel)]) {
      shared(from, p);
      return;
    }
    PacketHandler& handler = d.on_packet[static_cast<int>(channel)];
    if (handler) handler(from, *p);
  };
  static_assert(sizeof(ev) <= SmallFn::kInlineSize, "delivery event must stay inline");
  sim_.at(dst.busy_until, std::move(ev));
}

void Network::set_components(const std::vector<std::vector<NodeId>>& components) {
  std::vector<int> assignment(states_.size(), -1);
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < components.size(); ++c) {
    for (NodeId id : components[c]) {
      if (id < 0 || static_cast<std::size_t>(id) >= dense_.size() || dense_[id] < 0) {
        throw std::invalid_argument("unknown node in component");
      }
      const auto i = static_cast<std::size_t>(dense_[id]);
      if (assignment[i] != -1) throw std::invalid_argument("node in two components");
      assignment[i] = static_cast<int>(c);
      ++assigned;
    }
  }
  if (assigned != states_.size()) {
    throw std::invalid_argument("every node must appear in exactly one component");
  }
  bool changed = false;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].component != assignment[i]) {
      states_[i].component = assignment[i];
      changed = true;
    }
  }
  if (changed) topology_changed();
}

void Network::heal() {
  bool changed = false;
  for (NodeState& st : states_) {
    if (st.component != 0) {
      st.component = 0;
      changed = true;
    }
  }
  if (changed) topology_changed();
}

void Network::crash(NodeId id) {
  NodeState& s = state(id);
  if (!s.up) return;
  s.up = false;
  ++s.epoch;       // all in-flight traffic to this node is dropped
  s.busy_until = 0;
  // The crashed node's queued cross-site traffic dies with it: release the
  // site's WAN egress so post-recovery sends don't serialize behind bytes
  // that were never put on the wire.
  if (static_cast<std::size_t>(s.site) < site_egress_busy_.size()) {
    site_egress_busy_[static_cast<std::size_t>(s.site)] = 0;
  }
  topology_changed();
}

void Network::recover(NodeId id) {
  NodeState& s = state(id);
  if (s.up) return;
  s.up = true;
  ++s.epoch;
  topology_changed();
}

void Network::topology_changed() {
  // A membership change made from a running worker lane (a node joining or
  // leaving its group) can only affect that lane: groups never span lanes,
  // so other lanes' reachable sets — and their caches — are untouched.
  // Everything else (harness crash/partition calls between runs, or from
  // the exclusive control phase) takes the global path.
  if (lanes_ && sim_.running() && sim_.current_lane() != sim_.control_lane()) {
    const int lane = sim_.current_lane();
    reach_cache_[static_cast<std::size_t>(lane)].clear();
    for (NodeId id : ids_sorted_) {
      const NodeState& st = states_[static_cast<std::size_t>(dense_[id])];
      if (st.up && st.lane == lane) schedule_notify(id);
    }
    return;
  }
  for (auto& cache : reach_cache_) cache.clear();
  for (NodeId id : ids_sorted_) {
    if (states_[static_cast<std::size_t>(dense_[id])].up) schedule_notify(id);
  }
}

void Network::schedule_notify(NodeId id) {
  NodeState& s = state(id);
  if (s.notify_pending) return;
  s.notify_pending = true;
  const std::uint64_t epoch = s.epoch;
  // post() == after() when lanes are off; in lane mode the notification
  // must fire on the node's own lane (detect_delay >= the handoff latency,
  // validated by the lane-mode harness).
  sim_.post(s.lane, params_.detect_delay, [this, id, epoch] {
    NodeState& st = state(id);
    st.notify_pending = false;
    if (!st.up || st.epoch != epoch) return;
    if (st.on_reachability) st.on_reachability(reachable_set(id));
  });
}

}  // namespace tordb
