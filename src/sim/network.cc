#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/log.h"

namespace tordb {

Network::Network(Simulator& sim, NetworkParams params) : sim_(sim), params_(params) {}

void Network::add_node(NodeId id) {
  if (nodes_.count(id)) throw std::invalid_argument("duplicate node id");
  nodes_[id] = NodeState{};
}

void Network::set_packet_handler(NodeId id, PacketHandler handler, Channel channel) {
  nodes_.at(id).on_packet[static_cast<int>(channel)] = std::move(handler);
}

void Network::clear_packet_handler(NodeId id, Channel channel) {
  nodes_.at(id).on_packet[static_cast<int>(channel)] = nullptr;
}

void Network::set_reachability_handler(NodeId id, ReachabilityHandler handler) {
  nodes_.at(id).on_reachability = std::move(handler);
  schedule_notify(id);
}

void Network::clear_reachability_handler(NodeId id) {
  nodes_.at(id).on_reachability = nullptr;
}

void Network::set_group_active(NodeId id, bool active) {
  NodeState& s = nodes_.at(id);
  if (s.group_active == active) return;
  s.group_active = active;
  topology_changed();
}

bool Network::group_active(NodeId id) const { return nodes_.at(id).group_active; }

void Network::set_site(NodeId id, int site) { nodes_.at(id).site = site; }

SimDuration Network::wan_serialize(NodeId from, std::size_t bytes) {
  if (params_.wan_per_byte <= 0) return 0;
  SimTime& busy = site_egress_busy_[nodes_.at(from).site];
  const SimDuration ser = params_.wan_per_byte * static_cast<SimDuration>(bytes);
  const SimTime start = std::max(sim_.now(), busy);
  busy = start + ser;
  return busy - sim_.now();
}

int Network::site(NodeId id) const { return nodes_.at(id).site; }

void Network::set_group(NodeId id, int group) {
  NodeState& s = nodes_.at(id);
  if (s.group == group) return;
  s.group = group;
  topology_changed();
}

int Network::group(NodeId id) const { return nodes_.at(id).group; }

bool Network::alive(NodeId id) const { return nodes_.at(id).up; }

bool Network::connected(NodeId a, NodeId b) const {
  const NodeState& sa = nodes_.at(a);
  const NodeState& sb = nodes_.at(b);
  return sa.up && sb.up && sa.component == sb.component;
}

std::vector<NodeId> Network::reachable_set(NodeId id) const {
  std::vector<NodeId> out;
  const NodeState& s = nodes_.at(id);
  if (!s.up) return out;
  for (const auto& [nid, ns] : nodes_) {
    if (ns.up && ns.group_active && ns.component == s.component && ns.group == s.group) {
      out.push_back(nid);
    }
  }
  return out;  // std::map iteration is already sorted
}

std::vector<NodeId> Network::node_ids() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [nid, ns] : nodes_) out.push_back(nid);
  return out;
}

void Network::charge(NodeId id, SimDuration d) {
  NodeState& s = nodes_.at(id);
  s.busy_until = std::max(s.busy_until, sim_.now()) + d;
}

SimTime Network::busy_until(NodeId id) const { return nodes_.at(id).busy_until; }

void Network::send(NodeId from, NodeId to, Bytes payload, Channel channel) {
  NodeState& src = nodes_.at(from);
  if (!src.up) return;
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  charge(from, params_.send_per_message);

  if (!connected(from, to)) {
    ++stats_.messages_dropped;
    return;
  }

  SimDuration latency = 0;
  if (from != to) {
    latency = params_.base_latency +
              params_.per_byte_latency * static_cast<SimDuration>(payload.size());
    if (nodes_.at(from).site != nodes_.at(to).site) {
      latency += params_.inter_site_latency + wan_serialize(from, payload.size());
    }
    if (params_.jitter > 0) latency += sim_.rng().next_range(0, params_.jitter - 1);
  }
  SimTime arrive = sim_.now() + latency;

  // FIFO per directed link: never deliver earlier than a previous packet.
  SimTime& horizon = link_horizon_[{from, to}];
  arrive = std::max(arrive, horizon + 1);
  horizon = arrive;

  const std::uint64_t to_epoch = nodes_.at(to).epoch;
  sim_.at(arrive, [this, from, to, to_epoch, channel, p = std::move(payload)]() mutable {
    deliver(from, to, to_epoch, channel, std::move(p));
  });
}

void Network::multicast(NodeId from, const std::vector<NodeId>& to, const Bytes& payload,
                        Channel channel) {
  // Models LAN hardware multicast (what Spread uses): the sender pays the
  // send cost once and the wire fans out; receivers each pay receive costs.
  NodeState& src = nodes_.at(from);
  if (!src.up) return;
  charge(from, params_.send_per_message);
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();

  // One WAN copy per remote site, not per remote target.
  std::map<int, SimDuration> site_serialization;
  if (params_.wan_per_byte > 0) {
    const int my_site = nodes_.at(from).site;
    for (NodeId t : to) {
      const int s = nodes_.at(t).site;
      if (s != my_site && !site_serialization.count(s)) {
        site_serialization[s] = wan_serialize(from, payload.size());
      }
    }
  }

  for (NodeId t : to) {
    if (!connected(from, t)) {
      ++stats_.messages_dropped;
      continue;
    }
    SimDuration latency = 0;
    if (from != t) {
      latency = params_.base_latency +
                params_.per_byte_latency * static_cast<SimDuration>(payload.size());
      if (nodes_.at(from).site != nodes_.at(t).site) {
        latency += params_.inter_site_latency;
        auto it = site_serialization.find(nodes_.at(t).site);
        if (it != site_serialization.end()) latency += it->second;
      }
      if (params_.jitter > 0) latency += sim_.rng().next_range(0, params_.jitter - 1);
    }
    SimTime arrive = sim_.now() + latency;
    SimTime& horizon = link_horizon_[{from, t}];
    arrive = std::max(arrive, horizon + 1);
    horizon = arrive;
    const std::uint64_t to_epoch = nodes_.at(t).epoch;
    Bytes copy = payload;
    sim_.at(arrive, [this, from, t, to_epoch, channel, p = std::move(copy)]() mutable {
      deliver(from, t, to_epoch, channel, std::move(p));
    });
  }
}

void Network::deliver(NodeId from, NodeId to, std::uint64_t to_epoch, Channel channel,
                      Bytes payload) {
  NodeState& dst = nodes_.at(to);
  // Drop if the receiver crashed (epoch bumped), or the partition map
  // changed while the packet was in flight.
  if (!dst.up || dst.epoch != to_epoch || !connected(from, to)) {
    ++stats_.messages_dropped;
    return;
  }
  // Serialize receipt on the destination CPU.
  const SimDuration cost = params_.proc_per_message +
                           params_.proc_per_byte * static_cast<SimDuration>(payload.size());
  const SimTime start = std::max(sim_.now(), dst.busy_until);
  dst.busy_until = start + cost;
  sim_.at(dst.busy_until, [this, from, to, to_epoch, channel, p = std::move(payload)]() mutable {
    NodeState& d = nodes_.at(to);
    if (!d.up || d.epoch != to_epoch || !connected(from, to)) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    PacketHandler& handler = d.on_packet[static_cast<int>(channel)];
    if (handler) handler(from, p);
  });
}

void Network::set_components(const std::vector<std::vector<NodeId>>& components) {
  std::map<NodeId, int> assignment;
  for (std::size_t c = 0; c < components.size(); ++c) {
    for (NodeId id : components[c]) {
      if (!nodes_.count(id)) throw std::invalid_argument("unknown node in component");
      if (assignment.count(id)) throw std::invalid_argument("node in two components");
      assignment[id] = static_cast<int>(c);
    }
  }
  if (assignment.size() != nodes_.size()) {
    throw std::invalid_argument("every node must appear in exactly one component");
  }
  bool changed = false;
  for (auto& [id, st] : nodes_) {
    if (st.component != assignment[id]) {
      st.component = assignment[id];
      changed = true;
    }
  }
  if (changed) topology_changed();
}

void Network::heal() {
  bool changed = false;
  for (auto& [id, st] : nodes_) {
    if (st.component != 0) {
      st.component = 0;
      changed = true;
    }
  }
  if (changed) topology_changed();
}

void Network::crash(NodeId id) {
  NodeState& s = nodes_.at(id);
  if (!s.up) return;
  s.up = false;
  ++s.epoch;       // all in-flight traffic to this node is dropped
  s.busy_until = 0;
  topology_changed();
}

void Network::recover(NodeId id) {
  NodeState& s = nodes_.at(id);
  if (s.up) return;
  s.up = true;
  ++s.epoch;
  topology_changed();
}

void Network::topology_changed() {
  for (auto& [id, st] : nodes_) {
    if (st.up) schedule_notify(id);
  }
}

void Network::schedule_notify(NodeId id) {
  NodeState& s = nodes_.at(id);
  if (s.notify_pending) return;
  s.notify_pending = true;
  const std::uint64_t epoch = s.epoch;
  sim_.after(params_.detect_delay, [this, id, epoch] {
    NodeState& st = nodes_.at(id);
    st.notify_pending = false;
    if (!st.up || st.epoch != epoch) return;
    if (st.on_reachability) st.on_reachability(reachable_set(id));
  });
}

}  // namespace tordb
