// Partitionable message-passing network (paper §2.1 failure model).
//
// Properties modelled:
//  - Messages between connected, live nodes arrive after a latency that is
//    base + per-byte + bounded jitter; links are FIFO.
//  - The network may partition into any number of components; messages in
//    flight across a new partition boundary are lost. Components may merge.
//  - Nodes may crash (losing volatile state and all in-flight traffic to
//    them) and later recover.
//  - No corruption, no Byzantine behaviour.
//  - Each node has a single CPU: message receipt is serialized and charged a
//    processing cost, so a node flooded with protocol traffic saturates.
//    This is the mechanism by which per-action message complexity (1
//    multicast vs n multicasts vs 2n unicasts) turns into the throughput
//    differences of the paper's Figure 5.
//  - A reachability-notification service tells a node, after a detection
//    delay, the set of nodes it can currently reach — the hook the group
//    communication layer uses to trigger its membership protocol (the role
//    Spread's token-loss/ hello mechanisms play in the real system).
//
// Hot-path layout: node state lives in a dense vector indexed by a compact
// per-node index (NodeId -> index via a flat lookup table), link FIFO
// horizons in one n*n array, and multicast recipients share a single
// refcounted payload buffer — receivers treat payloads as read-only, so a
// group-wide multicast performs zero per-target deep copies. reachable_set()
// is cached per (component, group) and invalidated on topology changes.
//
// Event lanes (DESIGN.md §15): when the owning Simulator runs in lane mode,
// every node is assigned to a lane via set_lane() and all wire traffic must
// stay within one lane (groups scope reachability, so per-shard groups
// never exchange messages — enforced here). Mutable network state is
// partitioned accordingly: stats and the reachability cache are per-lane
// (stats() folds the lanes on read), link horizons and NodeState are only
// ever touched by the owning node's lane, and reachability notifications
// are posted to the affected node's lane. Latency jitter draws from the
// simulator's per-lane RNG stream. The WAN egress model shares one
// serialization horizon per site and is not lane-partitioned: wan_per_byte
// must stay 0 in lane mode (set_lane enforces it).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "util/serde.h"
#include "util/types.h"

namespace tordb {

struct NetworkParams {
  SimDuration base_latency = micros(120);      ///< one-way LAN latency
  SimDuration per_byte_latency = nanos(80);    ///< 100 Mbit/s ~= 80 ns/byte
  SimDuration jitter = micros(20);             ///< uniform [0, jitter)
  SimDuration proc_per_message = micros(40);   ///< CPU cost to receive one message
  SimDuration proc_per_byte = nanos(300);      ///< CPU cost per received byte
  SimDuration send_per_message = micros(25);   ///< CPU cost to send one message
  SimDuration detect_delay = millis(1);        ///< failure/partition detection delay
  /// One-way latency added between nodes assigned to different sites (see
  /// set_site); models a WAN between LAN clusters. 0 = single site.
  SimDuration inter_site_latency = 0;
  /// Serialization time per byte on a site's shared WAN egress link for
  /// cross-site traffic (0 = unconstrained). Cross-site copies queue on the
  /// sending site's egress; a multicast puts ONE copy per remote site on
  /// the wire (the Spread wide-area architecture), while unicasts pay per
  /// message — the mechanism behind the paper's "on wide area networks
  /// COReL will further outperform two-phase commit".
  SimDuration wan_per_byte = 0;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  /// Payload bytes deep-copied on the send path (multicast recipients share
  /// one refcounted buffer, so only lvalue sends/multicasts copy — once).
  std::uint64_t payload_bytes_copied = 0;
  /// reachable_set() cache effectiveness (invalidated on topology changes).
  std::uint64_t reachable_cache_hits = 0;
  std::uint64_t reachable_cache_misses = 0;
};

/// Logical channels multiplexed over one node-to-node transport. The group
/// communication layer owns kGc; the replication engines use kDirect for
/// point-to-point traffic (state transfer to joining replicas, 2PC rounds,
/// COReL acknowledgements).
enum class Channel : std::uint8_t { kGc = 0, kDirect = 1 };
inline constexpr int kNumChannels = 2;

class Network {
 public:
  using PacketHandler = std::function<void(NodeId from, const Bytes& payload)>;
  /// Variant that hands the receiver the refcounted wire buffer itself, so
  /// a layer that must retain the payload (the gc delivery buffer) can hold
  /// a reference instead of deep-copying it once per member.
  using SharedPacketHandler =
      std::function<void(NodeId from, const std::shared_ptr<const Bytes>& payload)>;
  using ReachabilityHandler = std::function<void(const std::vector<NodeId>& reachable)>;

  Network(Simulator& sim, NetworkParams params = {});

  /// Register a node. Nodes start alive, all in one component.
  void add_node(NodeId id);

  /// Install the handler invoked for each delivered packet on a channel.
  /// The shared form takes precedence when both are set.
  void set_packet_handler(NodeId id, PacketHandler handler,
                          Channel channel = Channel::kGc);
  void set_shared_packet_handler(NodeId id, SharedPacketHandler handler,
                                 Channel channel = Channel::kGc);
  void clear_packet_handler(NodeId id, Channel channel);

  /// Install the handler invoked (after detect_delay) whenever the set of
  /// group-active nodes reachable from `id` changes. Also invoked once right
  /// after installation so a node learns its initial surroundings.
  void set_reachability_handler(NodeId id, ReachabilityHandler handler);
  void clear_reachability_handler(NodeId id);

  /// Mark a node as participating in the group (the role of joining the
  /// daemon group in Spread). Nodes start active; a node that is up but not
  /// group-active is excluded from reachable_set() — it can still exchange
  /// kDirect traffic (e.g. a joining replica downloading a snapshot).
  void set_group_active(NodeId id, bool active);
  bool group_active(NodeId id) const;

  /// Assign `id` to a WAN site; traffic between different sites pays
  /// inter_site_latency on top of the base latency. All nodes start at
  /// site 0.
  void set_site(NodeId id, int site);
  int site(NodeId id) const;

  /// Assign `id` to a replication group. Groups scope the reachability
  /// service only: reachable_set(id) never reports nodes of a different
  /// group, so independent EVS groups (one per shard) can share one
  /// network without triggering each other's membership protocols.
  /// Point-to-point and multicast traffic is unaffected — any two
  /// connected nodes can exchange messages regardless of group. All nodes
  /// start in group 0.
  void set_group(NodeId id, int group);
  int group(NodeId id) const;

  /// Assign `id` to a simulator event lane (lane mode only; see the header
  /// comment). Normally implicit: when the simulator runs in lane mode,
  /// add_node() stamps the lane that is current at registration time (the
  /// harness wraps each shard's construction in a Simulator::LaneScope) —
  /// this is the explicit override. All of a replication group's members
  /// must share one lane; traffic between nodes of different lanes throws.
  void set_lane(NodeId id, int lane);
  int lane(NodeId id) const;

  /// Send `payload` from `from` to `to`. Silently dropped when the sender is
  /// crashed or the two nodes are (or become) disconnected. The lvalue
  /// overload deep-copies the payload once (counted in
  /// stats().payload_bytes_copied); pass an rvalue to send without copying.
  void send(NodeId from, NodeId to, Bytes&& payload, Channel channel = Channel::kGc);
  void send(NodeId from, NodeId to, const Bytes& payload, Channel channel = Channel::kGc);

  /// Unicast to every node in `to` (including `from` itself if listed);
  /// self-delivery uses loopback (no wire latency, still CPU-charged). All
  /// recipients share one refcounted payload buffer — handlers receive a
  /// read-only view, never a private copy.
  void multicast(NodeId from, const std::vector<NodeId>& to, Bytes&& payload,
                 Channel channel = Channel::kGc);
  void multicast(NodeId from, const std::vector<NodeId>& to, const Bytes& payload,
                 Channel channel = Channel::kGc);

  /// Partition the network into the given components. Every registered node
  /// must appear in exactly one component.
  void set_components(const std::vector<std::vector<NodeId>>& components);

  /// Merge everything back into a single component.
  void heal();

  void crash(NodeId id);
  void recover(NodeId id);
  bool alive(NodeId id) const;

  /// True when both nodes are alive and in the same component.
  bool connected(NodeId a, NodeId b) const;

  /// Alive, group-active nodes in `id`'s component (including itself if
  /// group-active), sorted.
  std::vector<NodeId> reachable_set(NodeId id) const;

  /// Charge `d` of CPU time to node `id`; subsequent deliveries queue after.
  void charge(NodeId id, SimDuration d);

  /// Busy-time horizon (for tests).
  SimTime busy_until(NodeId id) const;

  /// Aggregated over lanes (a single lane when lanes are off, so this is
  /// exactly the classic counter set).
  const NetworkStats& stats() const;
  NetworkParams& params() { return params_; }
  Simulator& sim() { return sim_; }
  std::vector<NodeId> node_ids() const;

 private:
  struct NodeState {
    NodeId id = kNoNode;
    bool up = true;
    bool group_active = true;
    int component = 0;
    int site = 0;
    int group = 0;  ///< replication group; scopes reachability only
    int lane = 0;   ///< simulator event lane (lane mode only)
    std::uint64_t epoch = 0;  ///< bumped on crash; stale deliveries dropped
    SimTime busy_until = 0;
    bool notify_pending = false;
    PacketHandler on_packet[kNumChannels];
    SharedPacketHandler on_packet_shared[kNumChannels];
    ReachabilityHandler on_reachability;
  };

  /// Dense index for `id`; throws std::out_of_range for unknown ids.
  std::size_t idx(NodeId id) const;
  NodeState& state(NodeId id) { return states_[idx(id)]; }
  const NodeState& state(NodeId id) const { return states_[idx(id)]; }
  bool connected_idx(std::size_t a, std::size_t b) const {
    return states_[a].up && states_[b].up && states_[a].component == states_[b].component;
  }

  void topology_changed();
  void schedule_notify(NodeId id);
  /// First lane assignment: validate params and size the per-lane shards.
  void ensure_lane_mode();
  /// The stats shard for the calling lane (index 0 when lanes are off).
  NetworkStats& lstats() const;
  /// Throws when a send would cross lanes in lane mode.
  void check_same_lane(const NodeState& src, const NodeState& dst) const;
  void deliver(NodeId from, NodeId to, std::uint64_t to_epoch, Channel channel,
               std::shared_ptr<const Bytes> payload);
  /// Occupy `site`'s egress for one cross-site copy of `bytes`; returns the
  /// serialization delay to add to that copy's arrival time.
  SimDuration wan_serialize(int site, std::size_t bytes);

  Simulator& sim_;
  NetworkParams params_;
  std::vector<NodeState> states_;        ///< dense, insertion-indexed
  std::vector<std::int32_t> dense_;      ///< NodeId -> index into states_ (-1 unknown)
  std::vector<NodeId> ids_sorted_;       ///< all node ids, ascending
  std::vector<SimTime> link_horizon_;    ///< FIFO per link, [from_idx * n + to_idx]
  std::vector<SimTime> site_egress_busy_;  ///< WAN serialization per site
  bool lanes_ = false;  ///< set by the first set_lane(); gates lane checks
  /// reachable_set() memo per (component, group), sharded by lane so worker
  /// lanes never touch one another's maps (entries are group-scoped and
  /// groups never span lanes, so a lane's cache is never invalidated by
  /// another lane's membership changes). One shard when lanes are off.
  mutable std::vector<std::unordered_map<std::uint64_t, std::vector<NodeId>>> reach_cache_;
  /// Per-lane counters (one shard when lanes are off); mutable: const
  /// reachable_set counts cache hits.
  mutable std::vector<NetworkStats> stats_lanes_;
  mutable NetworkStats stats_agg_;  ///< scratch for stats() folding
};

}  // namespace tordb
