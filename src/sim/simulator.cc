#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace tordb {

namespace {

constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

/// Stateless splitmix64-style scramble for the per-lane schedule digest.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One iteration of a busy-wait: tell the core we're spinning so the
/// sibling hyperthread (usually the lane worker we're waiting on) gets
/// the pipeline.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Spin budget before falling back to a condvar sleep. Windows are
/// microseconds apart, so ~10-20us of spinning covers the common case; the
/// sleep path only triggers when the simulation goes quiet (between run()
/// calls, or a long control-lane phase).
constexpr int kSpinRounds = 1 << 14;

/// Phase-1 volume below which run_window executes the active lanes on the
/// coordinating thread instead of waking the pool: with only a handful of
/// events in the window, even a spin handoff costs more than the work.
constexpr std::uint64_t kParallelThreshold = 32;

}  // namespace

thread_local Simulator::ThreadCtx Simulator::tls_ctx_;

Simulator::Simulator(std::uint64_t seed) : seed_(seed) {
  lanes_.emplace_back(seed);  // classic mode: one lane, RNG seeded exactly as before
}

Simulator::~Simulator() {
  if (!workers_.empty()) {
    pool_stop_.store(true, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      pool_cv_.notify_all();
    }
    for (std::thread& w : workers_) w.join();
  }
}

int Simulator::current_lane() const {
  if (tls_ctx_.sim == this) return tls_ctx_.lane;
  return lane_mode_ ? control_lane() : 0;
}

Simulator::LaneScope::LaneScope(Simulator& sim, int lane)
    : prev_sim_(tls_ctx_.sim), prev_lane_(tls_ctx_.lane) {
  if (lane < 0 || lane >= sim.lane_count()) throw std::out_of_range("bad lane");
  tls_ctx_.sim = &sim;
  tls_ctx_.lane = lane;
}

Simulator::LaneScope::~LaneScope() {
  tls_ctx_.sim = prev_sim_;
  tls_ctx_.lane = prev_lane_;
}

void Simulator::enable_lanes(int lanes, int threads, SimDuration handoff_latency) {
  if (lane_mode_) throw std::logic_error("simulator: lanes already enabled");
  if (lanes < 2) throw std::invalid_argument("simulator: need >= 2 lanes");
  if (threads < 1) throw std::invalid_argument("simulator: need >= 1 thread");
  if (handoff_latency <= 0) throw std::invalid_argument("simulator: handoff latency must be > 0");
  const Lane& l0 = lanes_[0];
  if (!l0.heap.empty() || l0.next_seq != 0 || l0.now != 0) {
    throw std::logic_error("simulator: enable_lanes before scheduling anything");
  }
  lane_mode_ = true;
  threads_ = threads;
  handoff_ = handoff_latency;
  lanes_.clear();
  lanes_.reserve(static_cast<std::size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    // Per-lane RNG streams: two splitmix steps over (seed, lane) so related
    // base seeds and adjacent lanes both land in uncorrelated streams.
    std::uint64_t x = seed_;
    (void)splitmix64(x);
    x ^= static_cast<std::uint64_t>(i + 1) * 0x9e3779b97f4a7c15ULL;
    lanes_.emplace_back(splitmix64(x));
  }
  // Spinning at the window rendezvous only pays when every pool thread can
  // hold a core; on smaller hosts (1-core CI containers included) a spinner
  // steals the timeslice from the thread doing the work, so both sides go
  // straight to the condvar.
  spin_rounds_ = std::thread::hardware_concurrency() >= static_cast<unsigned>(threads)
                     ? kSpinRounds
                     : 0;
  for (int w = 1; w < threads; ++w) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

void Simulator::schedule(Lane& l, SimTime t, SmallFn fn,
                         std::shared_ptr<Cancelable::State> cancel) {
  if (t < l.now) t = l.now;
  // Opportunistically drop dead weight before growing the heap: once cancelled
  // entries make up more than half the queue (and there are enough of them to
  // amortize the scan), compact in one pass.
  if (*l.cancel_tally > kMinDeadForPurge && *l.cancel_tally * 2 > l.heap.size()) purge(l);
  const std::uint32_t slot = acquire_slot(l);
  if (slot >> kSlotBits) throw std::length_error("simulator: too many pending events");
  Slot& s = l.slots[slot];
  s.fn = std::move(fn);
  s.cancel = std::move(cancel);
  l.heap.push_back(Entry{t, (l.next_seq++ << kSlotBits) | slot});
  sift_up(l, l.heap.size() - 1);
  if (l.heap.size() > l.peak_depth) l.peak_depth = l.heap.size();
}

Cancelable Simulator::after_cancelable(SimDuration delay, SmallFn fn) {
  Lane& l = current_mutable_lane();
  Cancelable c;
  c.state_->cancel_tally = l.cancel_tally;
  schedule(l, l.now + delay, std::move(fn), c.state_);
  return c;
}

std::uint32_t Simulator::acquire_slot(Lane& l) {
  if (!l.free_slots.empty()) {
    const std::uint32_t slot = l.free_slots.back();
    l.free_slots.pop_back();
    return slot;
  }
  l.slots.emplace_back();
  return static_cast<std::uint32_t>(l.slots.size() - 1);
}

void Simulator::release_slot(Lane& l, std::uint32_t slot) {
  Slot& s = l.slots[slot];
  s.fn = SmallFn{};
  s.cancel.reset();
  l.free_slots.push_back(slot);
}

// 4-ary heap: half the levels of a binary heap, so pops touch far fewer
// cache lines on the hundred-thousand-entry queues of 100-replica sweeps.
// (time, seq) keys are unique per lane, so the pop order — and therefore
// every simulation result — is identical to any other correct priority
// queue.

void Simulator::sift_up(Lane& l, std::size_t i) {
  const Entry e = l.heap[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!later(l.heap[parent], e)) break;
    l.heap[i] = l.heap[parent];
    i = parent;
  }
  l.heap[i] = e;
}

void Simulator::sift_down(Lane& l, std::size_t i) {
  const std::size_t n = l.heap.size();
  const Entry e = l.heap[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (later(l.heap[best], l.heap[c])) best = c;
    }
    if (!later(e, l.heap[best])) break;
    l.heap[i] = l.heap[best];
    i = best;
  }
  l.heap[i] = e;
}

void Simulator::purge(Lane& l) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < l.heap.size(); ++i) {
    const Entry& e = l.heap[i];
    const auto& cancel = l.slots[e.slot()].cancel;
    if (cancel && !cancel->alive) {
      release_slot(l, e.slot());
      ++l.purged;
      assert(*l.cancel_tally > 0);
      --*l.cancel_tally;
      continue;
    }
    l.heap[kept++] = e;
  }
  l.heap.resize(kept);
  // Rebuild heap order over the survivors; (time, seq) keys are unique, so
  // live events rank exactly as they did before the purge. (Bottom-up over
  // the non-leaf prefix of the 4-ary layout.)
  if (l.heap.size() > 1) {
    for (std::size_t i = (l.heap.size() - 2) / 4 + 1; i-- > 0;) sift_down(l, i);
  }
}

bool Simulator::pop_and_run(Lane& l) {
  const Entry top = l.heap[0];
  const std::size_t last = l.heap.size() - 1;
  if (last > 0) {
    l.heap[0] = l.heap[last];
    l.heap.resize(last);
    sift_down(l, 0);
  } else {
    l.heap.clear();
  }
  assert(top.time >= l.now);

  Slot& s = l.slots[top.slot()];
  // A cancelled event still advances the clock to its scheduled time (it held
  // its place in the time order), but never executes.
  if (s.cancel && !s.cancel->alive) {
    l.now = top.time;
    release_slot(l, top.slot());
    ++l.cancelled_pops;
    assert(*l.cancel_tally > 0);
    --*l.cancel_tally;
    return false;
  }
  if (s.cancel) s.cancel->alive = false;  // fired: token reports inactive, no tally
  // Move the closure out and release the slot *before* invoking, so events
  // scheduled from inside the callback can reuse it.
  SmallFn fn = std::move(s.fn);
  release_slot(l, top.slot());
  l.now = top.time;
  if (lane_mode_) {
    // Fold the executed schedule so equivalence suites can compare runs
    // without replaying cluster state. Classic mode skips this (one
    // predictable branch) to keep the golden-pinned hot path untouched.
    l.digest = mix64(l.digest ^ (static_cast<std::uint64_t>(top.time) +
                                 0x9e3779b97f4a7c15ULL * (top.key >> kSlotBits)));
  }
  fn();
  ++l.executed;
  return true;
}

std::size_t Simulator::run(std::size_t limit) {
  if (!lane_mode_) {
    Lane& l = lanes_[0];
    std::size_t n = 0;
    while (n < limit && !l.heap.empty()) {
      if (pop_and_run(l)) ++n;
    }
    return n;
  }
  // Lane mode: drain window by window; the limit is honored at window
  // granularity (each window is at most handoff_ wide).
  const std::size_t before = executed_events();
  running_ = true;
  for (;;) {
    if (executed_events() - before >= limit) break;
    const SimTime s = earliest_event();
    if (s == kNever) break;
    run_window(s > kNever - handoff_ ? kNever : s + handoff_);
  }
  running_ = false;
  if (barrier_hook_) barrier_hook_();
  return executed_events() - before;
}

void Simulator::run_until(SimTime t) {
  if (!lane_mode_) {
    Lane& l = lanes_[0];
    while (!l.heap.empty() && l.heap[0].time <= t) pop_and_run(l);
    if (l.now < t) l.now = t;
    return;
  }
  run_lanes_until(t);
}

SimTime Simulator::earliest_event() const {
  SimTime s = kNever;
  for (const Lane& l : lanes_) {
    if (!l.heap.empty() && l.heap[0].time < s) s = l.heap[0].time;
  }
  return s;
}

void Simulator::run_lanes_until(SimTime t) {
  running_ = true;
  for (;;) {
    const SimTime s = earliest_event();
    if (s == kNever || s > t) break;
    // Window [s, end): `end` is exclusive, so `t + 1` makes the horizon
    // inclusive of events at exactly t (matching the classic run_until).
    const SimTime end = (t - s >= handoff_) ? s + handoff_ : t + 1;
    run_window(end);
  }
  running_ = false;
  for (Lane& l : lanes_) {
    if (l.now < t) l.now = t;
  }
  if (barrier_hook_) barrier_hook_();
}

void Simulator::run_window(SimTime end) {
  // Phase 1: every worker lane with events before the window end runs in
  // parallel. Worker lanes share no mutable state (network traffic is
  // intra-lane; cross-lane effects are outbox handoffs), so any
  // interleaving — including fully serial — produces the same result.
  active_.clear();
  const int workers_end = control_lane();  // lanes [0, workers_end) are worker lanes
  std::uint64_t executed_before = 0;
  for (int i = 0; i < workers_end; ++i) {
    const Lane& l = lanes_[static_cast<std::size_t>(i)];
    if (!l.heap.empty() && l.heap[0].time < end) {
      active_.push_back(i);
      executed_before += l.executed;
    }
  }
  if (!active_.empty()) {
    // Run serially when the previous window's phase-1 volume was tiny:
    // waking the pool for a handful of events costs more than the events.
    // The choice of execution strategy cannot change results — worker
    // lanes are disjoint, so serial and parallel interleavings commute.
    if (workers_.empty() || active_.size() == 1 ||
        window_worker_events_ < kParallelThreshold) {
      for (const int lane : active_) run_lane_window(lane, end);
    } else {
      dispatch_workers(end);
    }
    std::uint64_t executed_after = 0;
    for (const int lane : active_) executed_after += lanes_[static_cast<std::size_t>(lane)].executed;
    window_worker_events_ = executed_after - executed_before;
  }
  // Phase 2: the control lane runs exclusively on this thread. Its events
  // may read worker-lane state — frozen at the window end, identically for
  // every thread count — but must route mutations through call_in_lane().
  run_lane_window(control_lane(), end);
  ++windows_;
  merge_outboxes(end);
  if (barrier_hook_) barrier_hook_();
}

void Simulator::run_lane_window(int lane, SimTime end) {
  Lane& l = lanes_[static_cast<std::size_t>(lane)];
  if (l.heap.empty() || l.heap[0].time >= end) return;
  LaneScope scope(*this, lane);
  while (!l.heap.empty() && l.heap[0].time < end) pop_and_run(l);
}

void Simulator::dispatch_workers(SimTime end) {
  pool_end_ = end;
  pool_next_.store(0, std::memory_order_relaxed);
  pool_unfinished_.store(static_cast<int>(workers_.size()), std::memory_order_relaxed);
  pool_gen_.fetch_add(1, std::memory_order_seq_cst);
  // Dekker handshake with worker_main: the gen bump above and the
  // pool_sleepers_ increment there are both seq_cst, so either we see the
  // sleeper (and notify under the mutex) or the sleeper's predicate
  // recheck sees the new generation.
  if (pool_sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_cv_.notify_all();
  }
  work_loop(end);  // the coordinating thread is one of the `threads_` executors
  // Spin for the stragglers: a worker-lane window is microseconds of work,
  // so a sleep here would usually outlive the wait.
  int spins = 0;
  while (pool_unfinished_.load(std::memory_order_acquire) != 0) {
    if (++spins < spin_rounds_) {
      cpu_relax();
      continue;
    }
    std::unique_lock<std::mutex> lk(pool_mu_);
    done_sleeping_.store(true, std::memory_order_seq_cst);
    done_cv_.wait(lk, [this] {
      return pool_unfinished_.load(std::memory_order_relaxed) == 0;
    });
    done_sleeping_.store(false, std::memory_order_seq_cst);
  }
}

void Simulator::work_loop(SimTime end) {
  for (;;) {
    const std::size_t i = pool_next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= active_.size()) return;
    run_lane_window(active_[i], end);
  }
}

void Simulator::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    // Spin first: the next window usually dispatches within microseconds.
    int spins = 0;
    while (!pool_stop_.load(std::memory_order_acquire) &&
           pool_gen_.load(std::memory_order_acquire) == seen) {
      if (++spins < spin_rounds_) {
        cpu_relax();
        continue;
      }
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_sleepers_.fetch_add(1, std::memory_order_seq_cst);
      pool_cv_.wait(lk, [this, seen] {
        return pool_stop_.load(std::memory_order_relaxed) ||
               pool_gen_.load(std::memory_order_relaxed) != seen;
      });
      pool_sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      break;
    }
    if (pool_stop_.load(std::memory_order_acquire)) return;
    seen = pool_gen_.load(std::memory_order_acquire);
    work_loop(pool_end_);  // pool_end_ published before the gen bump
    if (pool_unfinished_.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
        done_sleeping_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lk(pool_mu_);
      done_cv_.notify_one();
    }
  }
}

void Simulator::merge_outboxes(SimTime end) {
  merge_buf_.clear();
  for (Lane& l : lanes_) {
    if (l.outbox.empty()) continue;
    for (Handoff& h : l.outbox) merge_buf_.push_back(std::move(h));
    l.outbox.clear();
  }
  if (merge_buf_.empty()) return;
  // (time, source lane, source seq): source lane is recoverable from seq
  // ordering only within a lane, so carry it via stable partition — the
  // outboxes were appended in lane order above, and std::stable_sort keeps
  // that order for equal (time, seq)... seqs are per-lane, so sort on
  // (time, then the append order), which stable_sort preserves exactly.
  std::stable_sort(merge_buf_.begin(), merge_buf_.end(),
                   [](const Handoff& a, const Handoff& b) { return a.time < b.time; });
  for (Handoff& h : merge_buf_) {
    if (h.time < end) throw std::logic_error("simulator: handoff inside a committed window");
    schedule(lanes_[static_cast<std::size_t>(h.target)], h.time, std::move(h.fn), nullptr);
  }
  merge_buf_.clear();
}

void Simulator::post(int lane, SimDuration delay, SmallFn fn) {
  if (!lane_mode_) {
    after(delay, std::move(fn));
    return;
  }
  if (lane < 0 || lane >= lane_count()) throw std::out_of_range("simulator: bad lane");
  const int cur = current_lane();
  if (!running_) {
    // Parked: all lane clocks are synchronized; land directly in the target.
    Lane& t = lanes_[static_cast<std::size_t>(lane)];
    schedule(t, t.now + delay, std::move(fn), nullptr);
    return;
  }
  if (lane == cur) {
    after(delay, std::move(fn));
    return;
  }
  if (delay < handoff_) {
    throw std::logic_error("simulator: cross-lane post below the handoff latency");
  }
  Lane& c = lanes_[static_cast<std::size_t>(cur)];
  ++c.handoffs;
  c.outbox.push_back(Handoff{c.now + delay, lane, c.handoff_seq++, std::move(fn)});
}

void Simulator::call_in_lane(int lane, SmallFn fn) {
  if (!lane_mode_ || lane == current_lane()) {
    fn();
    return;
  }
  post(lane, handoff_, std::move(fn));
}

bool Simulator::idle() const {
  for (const Lane& l : lanes_) {
    if (!l.heap.empty()) return false;
  }
  return true;
}

std::size_t Simulator::executed_events() const {
  std::size_t n = 0;
  for (const Lane& l : lanes_) n += l.executed;
  return n;
}

std::size_t Simulator::queue_depth() const {
  std::size_t n = 0;
  for (const Lane& l : lanes_) n += l.heap.size();
  return n;
}

std::size_t Simulator::peak_queue_depth() const {
  std::size_t n = 0;
  for (const Lane& l : lanes_) n += l.peak_depth;
  return n;
}

std::uint64_t Simulator::cancelled_pops() const {
  std::uint64_t n = 0;
  for (const Lane& l : lanes_) n += l.cancelled_pops;
  return n;
}

std::uint64_t Simulator::purged_events() const {
  std::uint64_t n = 0;
  for (const Lane& l : lanes_) n += l.purged;
  return n;
}

std::uint64_t Simulator::handoffs_posted() const {
  std::uint64_t n = 0;
  for (const Lane& l : lanes_) n += l.handoffs;
  return n;
}

}  // namespace tordb
