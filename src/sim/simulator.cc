#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace tordb {

void Simulator::at(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

Cancelable Simulator::after_cancelable(SimDuration delay, std::function<void()> fn) {
  Cancelable token;
  auto flag = token.flag();
  at(now_ + delay, [flag, fn = std::move(fn)] {
    if (*flag) fn();
  });
  return token;
}

void Simulator::pop_and_run() {
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because we pop immediately after.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  assert(ev.time >= now_);
  now_ = ev.time;
  ++executed_;
  ev.fn();
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t n = 0;
  while (!queue_.empty() && n < limit) {
    pop_and_run();
    ++n;
  }
  return n;
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) pop_and_run();
  if (now_ < t) now_ = t;
}

}  // namespace tordb
