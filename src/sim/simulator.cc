#include "sim/simulator.h"

#include <stdexcept>

namespace tordb {

void Simulator::schedule(SimTime t, SmallFn fn, std::shared_ptr<Cancelable::State> cancel) {
  if (t < now_) t = now_;
  // Opportunistically drop dead weight before growing the heap: once cancelled
  // entries make up more than half the queue (and there are enough of them to
  // amortize the scan), compact in one pass.
  if (*cancel_tally_ > kMinDeadForPurge && *cancel_tally_ * 2 > heap_.size()) purge();
  const std::uint32_t slot = acquire_slot();
  if (slot >> kSlotBits) throw std::length_error("simulator: too many pending events");
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.cancel = std::move(cancel);
  heap_.push_back(Entry{t, (next_seq_++ << kSlotBits) | slot});
  sift_up(heap_.size() - 1);
  if (heap_.size() > peak_depth_) peak_depth_ = heap_.size();
}

Cancelable Simulator::after_cancelable(SimDuration delay, SmallFn fn) {
  Cancelable c;
  c.state_->cancel_tally = cancel_tally_;
  schedule(now_ + delay, std::move(fn), c.state_);
  return c;
}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = SmallFn{};
  s.cancel.reset();
  free_slots_.push_back(slot);
}

// 4-ary heap: half the levels of a binary heap, so pops touch far fewer
// cache lines on the hundred-thousand-entry queues of 100-replica sweeps.
// (time, seq) keys are unique, so the pop order — and therefore every
// simulation result — is identical to any other correct priority queue.

void Simulator::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!later(heap_[parent], e)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (later(heap_[best], heap_[c])) best = c;
    }
    if (!later(e, heap_[best])) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulator::purge() {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const Entry& e = heap_[i];
    const auto& cancel = slots_[e.slot()].cancel;
    if (cancel && !cancel->alive) {
      release_slot(e.slot());
      ++purged_;
      assert(*cancel_tally_ > 0);
      --*cancel_tally_;
      continue;
    }
    heap_[kept++] = e;
  }
  heap_.resize(kept);
  // Rebuild heap order over the survivors; (time, seq) keys are unique, so
  // live events rank exactly as they did before the purge. (Bottom-up over
  // the non-leaf prefix of the 4-ary layout.)
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }
}

bool Simulator::pop_and_run() {
  const Entry top = heap_[0];
  const std::size_t last = heap_.size() - 1;
  if (last > 0) {
    heap_[0] = heap_[last];
    heap_.resize(last);
    sift_down(0);
  } else {
    heap_.clear();
  }
  assert(top.time >= now_);

  Slot& s = slots_[top.slot()];
  // A cancelled event still advances the clock to its scheduled time (it held
  // its place in the time order), but never executes.
  if (s.cancel && !s.cancel->alive) {
    now_ = top.time;
    release_slot(top.slot());
    ++cancelled_pops_;
    assert(*cancel_tally_ > 0);
    --*cancel_tally_;
    return false;
  }
  if (s.cancel) s.cancel->alive = false;  // fired: token reports inactive, no tally
  // Move the closure out and release the slot *before* invoking, so events
  // scheduled from inside the callback can reuse it.
  SmallFn fn = std::move(s.fn);
  release_slot(top.slot());
  now_ = top.time;
  fn();
  ++executed_;
  return true;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && !heap_.empty()) {
    if (pop_and_run()) ++n;
  }
  return n;
}

void Simulator::run_until(SimTime t) {
  while (!heap_.empty() && heap_[0].time <= t) pop_and_run();
  if (now_ < t) now_ = t;
}

}  // namespace tordb
