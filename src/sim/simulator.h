// Discrete-event simulation kernel.
//
// A deterministic event loop with a virtual nanosecond clock. All protocol
// stacks in this repository (network, storage, group communication,
// replication engines) run as callbacks scheduled here, which makes every
// experiment and property test exactly reproducible from a seed.
//
// Hot-path layout (this is the innermost loop of every experiment):
//  - The priority queue is a 4-ary heap of 16-byte plain-old-data entries
//    (time, packed seq|slot) over a reserve-ahead vector, so sift operations move
//    trivially-copyable keys instead of closures and touch half the cache
//    lines a binary heap would.
//  - Closures live in a recycled slot pool as `SmallFn`s — a move-only
//    function wrapper with 48 bytes of inline storage, enough for every
//    closure the network and protocol layers schedule, so steady-state
//    scheduling performs no heap allocation.
//  - Cancelled `Cancelable` events are removed lazily: a pop skips them
//    without counting toward executed_events(), and when cancelled entries
//    outnumber half the queue the heap is purged in one pass, so dead
//    timers cannot accumulate. Live ordering is exact (time, seq) FIFO
//    either way.
//
// Event lanes (DESIGN.md §15): enable_lanes() partitions the simulator into
// independent event lanes — one heap, clock, RNG and slot pool per lane —
// run with conservative virtual-time windows on a worker-thread pool.
// By default everything lives in one lane and the kernel behaves exactly as
// the classic single-threaded loop (bit-identical schedules, pinned by the
// sim_digest_test goldens). In lane mode:
//
//  - Lanes 0..L-2 are *worker lanes* (one per shard); lane L-1 is the
//    *control lane* (router, client sessions, txn coordinator, rebalancer,
//    drivers, metrics rolls).
//  - Each window [S, E) with S = min lane head time and
//    E = min(S + handoff_latency, horizon) runs in two phases:
//    phase 1 executes every worker lane's events with time < E in parallel
//    (worker lanes share no mutable state); phase 2 then runs the control
//    lane's events with time < E exclusively on the calling thread, so
//    control-tier code may read worker-lane state frozen at the window end.
//  - Cross-lane interaction goes through post()/call_in_lane(): the closure
//    is buffered in the posting lane's outbox and committed at the window
//    barrier, merged over all lanes in (arrive time, source lane, source
//    sequence) order. Because every cross-lane delay is >= the handoff
//    latency and windows are at most that wide, a handoff always lands at
//    or after the next window's start — events never appear in a window
//    that already executed, which is the conservative-PDES safety
//    invariant.
//  - Every per-lane input is deterministic: the lane's heap order, its own
//    RNG stream (seeded from the base seed and the lane index), and the
//    sorted handoff merge. The interleaving of worker lanes within a
//    window is therefore unobservable, and the full schedule — folded into
//    lane_digest() — is bit-identical for any worker-thread count,
//    including 1.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace tordb {

/// Move-only type-erased `void()` callable with inline storage for small
/// closures (the simulator's event bodies). Falls back to the heap for
/// captures larger than kInlineSize.
class SmallFn {
 public:
  static constexpr std::size_t kInlineSize = 48;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT: implicit by design — call sites pass lambdas
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &OpsImpl<D, true>::ops;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &OpsImpl<D, false>::ops;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  void operator()() { ops_->call(storage_); }
  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*call)(void*);
    void (*relocate)(void* src, void* dst);  ///< move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename F, bool Inline>
  struct OpsImpl {
    static F* get(void* s) {
      if constexpr (Inline) {
        return std::launder(reinterpret_cast<F*>(s));
      } else {
        return *std::launder(reinterpret_cast<F**>(s));
      }
    }
    static void call(void* s) { (*get(s))(); }
    static void relocate(void* src, void* dst) {
      if constexpr (Inline) {
        ::new (dst) F(std::move(*get(src)));
        get(src)->~F();
      } else {
        ::new (dst) F*(get(src));
      }
    }
    static void destroy(void* s) {
      if constexpr (Inline) {
        get(s)->~F();
      } else {
        delete get(s);
      }
    }
    static constexpr Ops ops{call, relocate, destroy};
  };

  void reset() {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }
  void move_from(SmallFn& other) noexcept {
    if (other.ops_) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

/// Token for a scheduled event that may be cancelled before it fires.
/// Cancellation is lazy: the queued event is skipped (and eventually purged)
/// rather than searched for. After the event fires, active() reports false.
/// Lane mode: cancel only from the lane that scheduled the event (the tally
/// it updates belongs to that lane's queue).
class Cancelable {
 public:
  Cancelable() : state_(std::make_shared<State>()) {}

  void cancel() {
    if (state_->alive) {
      state_->alive = false;
      // Tally so the owning lane knows how much of its queue is dead.
      if (state_->cancel_tally) ++*state_->cancel_tally;
    }
  }
  bool active() const { return state_->alive; }

 private:
  friend class Simulator;
  struct State {
    bool alive = true;
    std::shared_ptr<std::uint64_t> cancel_tally;  ///< owning lane's dead-in-queue count
  };
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The current lane's clock (the single clock in classic mode). Outside a
  /// run all lane clocks are equal, so this is *the* virtual time.
  SimTime now() const {
    if (!lane_mode_) return lanes_[0].now;
    return lanes_[static_cast<std::size_t>(current_lane())].now;
  }
  /// The current lane's RNG stream (the single stream in classic mode).
  Rng& rng() {
    if (!lane_mode_) return lanes_[0].rng;
    return lanes_[static_cast<std::size_t>(current_lane())].rng;
  }
  std::uint64_t seed() const { return seed_; }

  /// Schedule `fn` on the current lane at absolute time `t` (clamped to now).
  void at(SimTime t, SmallFn fn) { schedule(current_mutable_lane(), t, std::move(fn), nullptr); }

  /// Schedule `fn` on the current lane after `delay`.
  void after(SimDuration delay, SmallFn fn) {
    Lane& l = current_mutable_lane();
    schedule(l, l.now + delay, std::move(fn), nullptr);
  }

  /// Schedule `fn` after `delay`; the returned token cancels it.
  Cancelable after_cancelable(SimDuration delay, SmallFn fn);

  /// Run events until the queue is empty or `limit` events executed.
  /// Returns the number of (live) events executed; skipped cancelled events
  /// count toward neither the limit nor executed_events(). Lane mode: the
  /// limit is checked at window granularity.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Run all events with time <= t, then advance the clock(s) to t.
  void run_until(SimTime t);

  /// Run all events within the next `d` of simulated time.
  void run_for(SimDuration d) { run_until(now() + d); }

  bool idle() const;
  /// Aggregates over all lanes (identical to the classic counters when
  /// lanes are off).
  std::size_t executed_events() const;
  /// Events currently pending (cancelled-but-unpurged included).
  std::size_t queue_depth() const;
  /// Sum of each lane's high-water queue depth over the whole run.
  std::size_t peak_queue_depth() const;
  /// Cancelled events skipped at pop time (they never execute).
  std::uint64_t cancelled_pops() const;
  /// Cancelled events removed by queue purges before reaching the top.
  std::uint64_t purged_events() const;

  // --- event lanes (DESIGN.md §15) -----------------------------------------

  /// Partition the simulator into `lanes` event lanes (>= 2: worker lanes
  /// plus the control lane, which is always the last) executed by `threads`
  /// concurrent executors (1 = the calling thread only — the serial lane
  /// baseline; N spawns N-1 workers and the calling thread participates).
  /// `handoff_latency` (> 0) is both the conservative window width and the
  /// minimum cross-lane post() delay. Must be called before anything is
  /// scheduled; every lane is reseeded from (seed, lane index), so lane-mode
  /// schedules are a *model refinement*, not a replay of the classic run —
  /// but they are bit-identical across all values of `threads`.
  void enable_lanes(int lanes, int threads, SimDuration handoff_latency);
  bool lanes_enabled() const { return lane_mode_; }
  int lane_count() const { return static_cast<int>(lanes_.size()); }
  int worker_threads() const { return threads_; }
  SimDuration handoff_latency() const { return handoff_; }
  /// The exclusive phase-2 lane (the last one); 0 when lanes are off.
  int control_lane() const { return static_cast<int>(lanes_.size()) - 1; }
  /// The lane the calling thread is executing (or scoped to); the control
  /// lane for unscoped callers (harness code between runs).
  int current_lane() const;
  /// True while run()/run_until() is executing windows.
  bool running() const { return running_; }

  /// Schedule `fn` on `lane` after `delay`. Same-lane (and classic-mode)
  /// posts are ordinary schedules; cross-lane posts during a run must have
  /// delay >= handoff_latency() and commit at the next window barrier in
  /// deterministic (time, source lane, source seq) order. Outside a run the
  /// clocks are synchronized and the post lands directly in the target lane.
  void post(int lane, SimDuration delay, SmallFn fn);

  /// Run `fn` in `lane`'s context: immediately (synchronously) when the
  /// caller is already on that lane or lanes are off — the classic code
  /// path, byte-identical to a direct call — otherwise as a cross-lane
  /// handoff after handoff_latency(). The seam client-tier code uses to
  /// invoke engines that live on worker lanes.
  void call_in_lane(int lane, SmallFn fn);

  /// Scope the calling thread to `lane` so construction-time scheduling
  /// (node timers, reachability probes) lands on the right lane. Restores
  /// the previous scope on destruction.
  class LaneScope {
   public:
    LaneScope(Simulator& sim, int lane);
    ~LaneScope();
    LaneScope(const LaneScope&) = delete;
    LaneScope& operator=(const LaneScope&) = delete;

   private:
    const Simulator* prev_sim_;
    int prev_lane_;
  };

  // --- per-lane introspection ------------------------------------------------
  std::size_t lane_executed(int lane) const { return lanes_.at(static_cast<std::size_t>(lane)).executed; }
  std::size_t lane_queue_depth(int lane) const { return lanes_.at(static_cast<std::size_t>(lane)).heap.size(); }
  SimTime lane_now(int lane) const { return lanes_.at(static_cast<std::size_t>(lane)).now; }
  /// Running fold of the lane's executed schedule — every live event's
  /// (time, sequence) mixed in execution order. Maintained only in lane
  /// mode (zero classic-path cost); two lane-mode runs agree on every
  /// lane's digest iff they executed identical schedules, which is how the
  /// equivalence suite compares thread counts without replaying cluster
  /// state.
  std::uint64_t lane_digest(int lane) const { return lanes_.at(static_cast<std::size_t>(lane)).digest; }
  /// Conservative windows executed and cross-lane handoffs posted.
  std::uint64_t windows_run() const { return windows_; }
  std::uint64_t handoffs_posted() const;

  /// Invoked on the coordinating thread after every window barrier (and at
  /// the end of each run) — the TraceBus uses it to flush lane-buffered
  /// events in deterministic order. One slot; pass nullptr to clear.
  void set_barrier_hook(std::function<void()> hook) { barrier_hook_ = std::move(hook); }

 private:
  static constexpr std::size_t kReserve = 1024;
  /// Purge only pays off once a meaningful batch is dead.
  static constexpr std::uint64_t kMinDeadForPurge = 64;

  /// Low bits of Entry::key holding the slot index; the high bits hold the
  /// schedule sequence number. 2^20 concurrently queued events and 2^44
  /// total schedules are both orders of magnitude beyond any simulation
  /// here (schedule() checks the slot bound).
  static constexpr unsigned kSlotBits = 20;

  /// Heap entry: 16-byte trivially copyable key; the closure stays in its
  /// slot. `key` packs (seq << kSlotBits) | slot — seqs are unique per
  /// lane, so comparing keys compares seqs and the FIFO tie-break is
  /// unchanged.
  struct Entry {
    SimTime time;
    std::uint64_t key;
    std::uint32_t slot() const { return static_cast<std::uint32_t>(key) & ((1u << kSlotBits) - 1); }
  };
  struct Slot {
    SmallFn fn;
    std::shared_ptr<Cancelable::State> cancel;  ///< null for plain events
  };
  /// A buffered cross-lane event, committed at the next window barrier.
  struct Handoff {
    SimTime time;
    int target;
    std::uint64_t seq;  ///< per-source-lane, for the deterministic merge
    SmallFn fn;
  };

  /// One event lane: heap, slot pool, clock and RNG. Cache-line aligned so
  /// concurrently executing lanes never share a line. Classic mode is
  /// exactly one Lane — the original single-queue kernel, field for field.
  struct alignas(64) Lane {
    explicit Lane(std::uint64_t rng_seed)
        : cancel_tally(std::make_shared<std::uint64_t>(0)), rng(rng_seed) {
      heap.reserve(kReserve);
      slots.reserve(kReserve);
      free_slots.reserve(kReserve);
    }
    Lane(Lane&&) = default;

    SimTime now = 0;
    std::uint64_t next_seq = 0;
    std::size_t executed = 0;
    std::size_t peak_depth = 0;
    std::uint64_t cancelled_pops = 0;
    std::uint64_t purged = 0;
    std::uint64_t digest = 0;
    std::vector<Entry> heap;
    std::vector<Slot> slots;
    std::vector<std::uint32_t> free_slots;
    /// Cancelled-but-still-queued event count; shared with Cancelable
    /// tokens so they can tally cancellations without a back-pointer.
    std::shared_ptr<std::uint64_t> cancel_tally;
    Rng rng;
    /// Cross-lane events posted while this lane executed a window.
    std::vector<Handoff> outbox;
    std::uint64_t handoff_seq = 0;
    std::uint64_t handoffs = 0;
  };

  static bool later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.key > b.key;
  }

  Lane& current_mutable_lane() {
    if (!lane_mode_) return lanes_[0];
    return lanes_[static_cast<std::size_t>(current_lane())];
  }

  void schedule(Lane& l, SimTime t, SmallFn fn, std::shared_ptr<Cancelable::State> cancel);
  /// Pop the lane's earliest entry; returns true when a live event ran.
  bool pop_and_run(Lane& l);
  void sift_up(Lane& l, std::size_t i);
  void sift_down(Lane& l, std::size_t i);
  std::uint32_t acquire_slot(Lane& l);
  void release_slot(Lane& l, std::uint32_t slot);
  /// Drop every cancelled entry from the lane's heap in one pass and
  /// re-heapify.
  void purge(Lane& l);

  // --- lane-mode machinery ---------------------------------------------------
  /// Earliest pending event time across all lanes, or -1 when idle.
  SimTime earliest_event() const;
  /// Execute one conservative window ending (exclusively) at `end`.
  void run_window(SimTime end);
  /// Run `lane`'s events with time < end under that lane's thread scope.
  void run_lane_window(int lane, SimTime end);
  /// Sort all outboxes by (time, source lane, seq) and commit into targets.
  void merge_outboxes(SimTime end);
  void dispatch_workers(SimTime end);
  void work_loop(SimTime end);
  void worker_main();
  void run_lanes_until(SimTime t);

  std::uint64_t seed_ = 1;
  bool lane_mode_ = false;
  int threads_ = 1;
  SimDuration handoff_ = 0;
  bool running_ = false;
  std::uint64_t windows_ = 0;
  std::vector<Lane> lanes_;  ///< exactly one in classic mode
  std::function<void()> barrier_hook_;

  // Worker pool (lane mode, threads >= 2). Window dispatch is generation-
  // counted: the coordinator publishes pool_gen_ (release), workers claim
  // active lanes via pool_next_ and the last decrement of pool_unfinished_
  // signals completion — the acquire/release pairs on pool_gen_ and
  // pool_unfinished_ provide the happens-before edges that make lane state
  // handover across windows race-free.
  //
  // Windows are microseconds apart, so both rendezvous points spin briefly
  // before sleeping: a condvar wake costs more than most whole windows.
  // The sleep fallbacks use the Dekker pattern (seq_cst publish, then check
  // the other side's announce flag) so a late sleeper is never missed.
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;        ///< workers sleep here between runs
  std::condition_variable done_cv_;        ///< coordinator sleeps here on a long tail
  std::atomic<std::uint64_t> pool_gen_{0};
  std::atomic<bool> pool_stop_{false};
  std::atomic<int> pool_unfinished_{0};
  std::atomic<int> pool_sleepers_{0};      ///< workers parked on pool_cv_
  std::atomic<bool> done_sleeping_{false};  ///< coordinator parked on done_cv_
  SimTime pool_end_ = 0;                    ///< published before pool_gen_
  std::atomic<std::size_t> pool_next_{0};
  int spin_rounds_ = 0;  ///< 0 when the host lacks a core per pool thread
  std::vector<int> active_;               ///< worker lanes with events this window
  std::uint64_t window_worker_events_ = 64;  ///< last window's phase-1 volume (EMA-ish)
  std::vector<Handoff> merge_buf_;        ///< scratch for the barrier merge

  struct ThreadCtx {
    const Simulator* sim = nullptr;
    int lane = 0;
  };
  static thread_local ThreadCtx tls_ctx_;
};

}  // namespace tordb
