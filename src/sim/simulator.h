// Discrete-event simulation kernel.
//
// A single-threaded, deterministic event loop with a virtual nanosecond
// clock. All protocol stacks in this repository (network, storage, group
// communication, replication engines) run as callbacks scheduled here, which
// makes every experiment and property test exactly reproducible from a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace tordb {

/// Token for a scheduled event that may be cancelled before it fires.
class Cancelable {
 public:
  Cancelable() : alive_(std::make_shared<bool>(true)) {}
  void cancel() { *alive_ = false; }
  bool active() const { return *alive_; }
  std::shared_ptr<bool> flag() const { return alive_; }

 private:
  std::shared_ptr<bool> alive_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }
  std::uint64_t seed() const { return seed_; }

  /// Schedule `fn` at absolute time `t` (clamped to now).
  void at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` after `delay`.
  void after(SimDuration delay, std::function<void()> fn) { at(now_ + delay, std::move(fn)); }

  /// Schedule `fn` after `delay`; the returned token cancels it.
  Cancelable after_cancelable(SimDuration delay, std::function<void()> fn);

  /// Run events until the queue is empty or `limit` events executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Run all events with time <= t, then advance the clock to t.
  void run_until(SimTime t);

  /// Run all events within the next `d` of simulated time.
  void run_for(SimDuration d) { run_until(now_ + d); }

  bool idle() const { return queue_.empty(); }
  std::size_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void pop_and_run();

  std::uint64_t seed_ = 1;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Rng rng_;
};

}  // namespace tordb
