// Discrete-event simulation kernel.
//
// A single-threaded, deterministic event loop with a virtual nanosecond
// clock. All protocol stacks in this repository (network, storage, group
// communication, replication engines) run as callbacks scheduled here, which
// makes every experiment and property test exactly reproducible from a seed.
//
// Hot-path layout (this is the innermost loop of every experiment):
//  - The priority queue is a 4-ary heap of 16-byte plain-old-data entries
//    (time, packed seq|slot) over a reserve-ahead vector, so sift operations move
//    trivially-copyable keys instead of closures and touch half the cache
//    lines a binary heap would.
//  - Closures live in a recycled slot pool as `SmallFn`s — a move-only
//    function wrapper with 48 bytes of inline storage, enough for every
//    closure the network and protocol layers schedule, so steady-state
//    scheduling performs no heap allocation.
//  - Cancelled `Cancelable` events are removed lazily: a pop skips them
//    without counting toward executed_events(), and when cancelled entries
//    outnumber half the queue the heap is purged in one pass, so dead
//    timers cannot accumulate. Live ordering is exact (time, seq) FIFO
//    either way.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace tordb {

/// Move-only type-erased `void()` callable with inline storage for small
/// closures (the simulator's event bodies). Falls back to the heap for
/// captures larger than kInlineSize.
class SmallFn {
 public:
  static constexpr std::size_t kInlineSize = 48;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT: implicit by design — call sites pass lambdas
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &OpsImpl<D, true>::ops;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &OpsImpl<D, false>::ops;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  void operator()() { ops_->call(storage_); }
  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*call)(void*);
    void (*relocate)(void* src, void* dst);  ///< move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename F, bool Inline>
  struct OpsImpl {
    static F* get(void* s) {
      if constexpr (Inline) {
        return std::launder(reinterpret_cast<F*>(s));
      } else {
        return *std::launder(reinterpret_cast<F**>(s));
      }
    }
    static void call(void* s) { (*get(s))(); }
    static void relocate(void* src, void* dst) {
      if constexpr (Inline) {
        ::new (dst) F(std::move(*get(src)));
        get(src)->~F();
      } else {
        ::new (dst) F*(get(src));
      }
    }
    static void destroy(void* s) {
      if constexpr (Inline) {
        get(s)->~F();
      } else {
        delete get(s);
      }
    }
    static constexpr Ops ops{call, relocate, destroy};
  };

  void reset() {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }
  void move_from(SmallFn& other) noexcept {
    if (other.ops_) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

/// Token for a scheduled event that may be cancelled before it fires.
/// Cancellation is lazy: the queued event is skipped (and eventually purged)
/// rather than searched for. After the event fires, active() reports false.
class Cancelable {
 public:
  Cancelable() : state_(std::make_shared<State>()) {}

  void cancel() {
    if (state_->alive) {
      state_->alive = false;
      // Tally so the owning simulator knows how much of its queue is dead.
      if (state_->cancel_tally) ++*state_->cancel_tally;
    }
  }
  bool active() const { return state_->alive; }

 private:
  friend class Simulator;
  struct State {
    bool alive = true;
    std::shared_ptr<std::uint64_t> cancel_tally;  ///< owner's dead-in-queue count
  };
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1)
      : seed_(seed), cancel_tally_(std::make_shared<std::uint64_t>(0)), rng_(seed) {
    heap_.reserve(kReserve);
    slots_.reserve(kReserve);
    free_slots_.reserve(kReserve);
  }

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }
  std::uint64_t seed() const { return seed_; }

  /// Schedule `fn` at absolute time `t` (clamped to now).
  void at(SimTime t, SmallFn fn) { schedule(t, std::move(fn), nullptr); }

  /// Schedule `fn` after `delay`.
  void after(SimDuration delay, SmallFn fn) { at(now_ + delay, std::move(fn)); }

  /// Schedule `fn` after `delay`; the returned token cancels it.
  Cancelable after_cancelable(SimDuration delay, SmallFn fn);

  /// Run events until the queue is empty or `limit` events executed.
  /// Returns the number of (live) events executed; skipped cancelled events
  /// count toward neither the limit nor executed_events().
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Run all events with time <= t, then advance the clock to t.
  void run_until(SimTime t);

  /// Run all events within the next `d` of simulated time.
  void run_for(SimDuration d) { run_until(now_ + d); }

  bool idle() const { return heap_.empty(); }
  std::size_t executed_events() const { return executed_; }
  /// Events currently pending in the queue (cancelled-but-unpurged included).
  std::size_t queue_depth() const { return heap_.size(); }
  /// High-water mark of queue_depth() over the whole run.
  std::size_t peak_queue_depth() const { return peak_depth_; }
  /// Cancelled events skipped at pop time (they never execute).
  std::uint64_t cancelled_pops() const { return cancelled_pops_; }
  /// Cancelled events removed by queue purges before reaching the top.
  std::uint64_t purged_events() const { return purged_; }

 private:
  static constexpr std::size_t kReserve = 1024;
  /// Purge only pays off once a meaningful batch is dead.
  static constexpr std::uint64_t kMinDeadForPurge = 64;

  /// Low bits of Entry::key holding the slot index; the high bits hold the
  /// schedule sequence number. 2^20 concurrently queued events and 2^44
  /// total schedules are both orders of magnitude beyond any simulation
  /// here (schedule() checks the slot bound).
  static constexpr unsigned kSlotBits = 20;

  /// Heap entry: 16-byte trivially copyable key; the closure stays in its
  /// slot. `key` packs (seq << kSlotBits) | slot — seqs are unique, so
  /// comparing keys compares seqs and the FIFO tie-break is unchanged.
  struct Entry {
    SimTime time;
    std::uint64_t key;
    std::uint32_t slot() const { return static_cast<std::uint32_t>(key) & ((1u << kSlotBits) - 1); }
  };
  struct Slot {
    SmallFn fn;
    std::shared_ptr<Cancelable::State> cancel;  ///< null for plain events
  };

  static bool later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.key > b.key;
  }

  void schedule(SimTime t, SmallFn fn, std::shared_ptr<Cancelable::State> cancel);
  /// Pop the earliest entry; returns true when a live event ran.
  bool pop_and_run();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  /// Drop every cancelled entry from the heap in one pass and re-heapify.
  void purge();

  std::uint64_t seed_ = 1;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::size_t peak_depth_ = 0;
  std::uint64_t cancelled_pops_ = 0;
  std::uint64_t purged_ = 0;
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  /// Cancelled-but-still-queued event count; shared with Cancelable tokens
  /// so they can tally cancellations without a back-pointer to us.
  std::shared_ptr<std::uint64_t> cancel_tally_;
  Rng rng_;
};

}  // namespace tordb
