#include "baselines/twopc.h"

namespace tordb::baselines {

namespace {

enum class TwoPcMsg : std::uint8_t {
  kPrepare = 10,
  kVoteYes = 11,
  kCommit = 12,
  kAbort = 13,
};

Bytes encode_prepare(NodeId coordinator, std::int64_t seq, const db::Command& cmd,
                     std::uint32_t padding) {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(TwoPcMsg::kPrepare));
  w.i32(coordinator);
  w.i64(seq);
  cmd.encode(w);
  // Padding models the action body (e.g. the SQL text), matching the
  // ~200-byte actions the other protocols carry.
  w.u32(padding);
  for (std::uint32_t i = 0; i < padding; ++i) w.u8(0);
  return w.take();
}

Bytes encode_simple(TwoPcMsg type, NodeId coordinator, std::int64_t seq) {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.i32(coordinator);
  w.i64(seq);
  return w.take();
}

}  // namespace

TwoPcReplica::TwoPcReplica(Network& net, NodeId id, std::vector<NodeId> servers,
                           TwoPcParams params)
    : net_(net),
      sim_(net.sim()),
      id_(id),
      servers_(std::move(servers)),
      params_(params),
      alive_(std::make_shared<bool>(true)),
      storage_(std::make_unique<StableStorage>(sim_, params_.storage)) {
  net_.set_packet_handler(
      id_, [this](NodeId from, const Bytes& wire) { on_direct(from, wire); },
      Channel::kDirect);
}

TwoPcReplica::~TwoPcReplica() {
  *alive_ = false;
  net_.clear_packet_handler(id_, Channel::kDirect);
}

void TwoPcReplica::submit(db::Command update, std::function<void(bool)> done) {
  const std::int64_t seq = ++next_seq_;
  Txn& txn = coordinating_[seq];
  txn.cmd = std::move(update);
  txn.done = std::move(done);

  // Phase 1 at the participants.
  const Bytes prepare = encode_prepare(id_, seq, txn.cmd, params_.action_padding);
  for (NodeId s : servers_) {
    if (s != id_) net_.send(id_, s, prepare, Channel::kDirect);
  }
  // Phase 1 locally: force the prepare record (first forced write).
  BufWriter rec;
  rec.u8(1);
  rec.i32(id_);
  rec.i64(seq);
  txn.cmd.encode(rec);
  storage_->append(rec.take());
  storage_->sync([this, alive = alive_, seq] {
    if (!*alive) return;
    handle_yes(id_, seq);
  });

  // Abort on timeout: 2PC cannot make progress without full connectivity.
  sim_.after(params_.vote_timeout, [this, alive = alive_, seq] {
    if (!*alive) return;
    auto it = coordinating_.find(seq);
    if (it == coordinating_.end() || it->second.decided) return;
    it->second.decided = true;
    ++stats_.aborted;
    const Bytes abort = encode_simple(TwoPcMsg::kAbort, id_, seq);
    for (NodeId s : servers_) {
      if (s != id_) net_.send(id_, s, abort, Channel::kDirect);
    }
    auto done = std::move(it->second.done);
    coordinating_.erase(it);
    if (done) done(false);
  });
}

void TwoPcReplica::on_direct(NodeId from, const Bytes& wire) {
  BufReader r(wire);
  const auto type = static_cast<TwoPcMsg>(r.u8());
  const NodeId coordinator = r.i32();
  const std::int64_t seq = r.i64();
  switch (type) {
    case TwoPcMsg::kPrepare: {
      db::Command cmd = db::Command::decode(r);
      const std::uint32_t padding = r.u32();
      for (std::uint32_t i = 0; i < padding; ++i) r.u8();
      handle_prepare(coordinator, seq, std::move(cmd));
      break;
    }
    case TwoPcMsg::kVoteYes:
      handle_yes(from, seq);
      break;
    case TwoPcMsg::kCommit:
      handle_commit(seq, coordinator);
      break;
    case TwoPcMsg::kAbort:
      prepared_.erase({coordinator, seq});
      break;
  }
}

void TwoPcReplica::handle_prepare(NodeId coordinator, std::int64_t seq, db::Command cmd) {
  ++stats_.prepares_handled;
  prepared_[{coordinator, seq}] = std::move(cmd);
  // Participant forces its prepare record before voting.
  BufWriter rec;
  rec.u8(1);
  rec.i32(coordinator);
  rec.i64(seq);
  prepared_[{coordinator, seq}].encode(rec);
  storage_->append(rec.take());
  storage_->sync([this, alive = alive_, coordinator, seq] {
    if (!*alive) return;
    net_.send(id_, coordinator, encode_simple(TwoPcMsg::kVoteYes, id_, seq), Channel::kDirect);
  });
}

void TwoPcReplica::handle_yes(NodeId from, std::int64_t seq) {
  auto it = coordinating_.find(seq);
  if (it == coordinating_.end() || it->second.decided) return;
  it->second.votes.insert(from);
  maybe_commit(seq);
}

void TwoPcReplica::maybe_commit(std::int64_t seq) {
  auto it = coordinating_.find(seq);
  if (it == coordinating_.end() || it->second.decided) return;
  for (NodeId s : servers_) {
    if (!it->second.votes.count(s)) return;
  }
  it->second.decided = true;
  // Coordinator forces the commit record (second forced write on the
  // client's critical path), then answers and disseminates the decision.
  BufWriter rec;
  rec.u8(2);
  rec.i32(id_);
  rec.i64(seq);
  storage_->append(rec.take());
  storage_->sync([this, alive = alive_, seq] {
    if (!*alive) return;
    auto it2 = coordinating_.find(seq);
    if (it2 == coordinating_.end()) return;
    db_.apply(it2->second.cmd);
    ++stats_.committed;
    const Bytes commit = encode_simple(TwoPcMsg::kCommit, id_, seq);
    for (NodeId s : servers_) {
      if (s != id_) net_.send(id_, s, commit, Channel::kDirect);
    }
    auto done = std::move(it2->second.done);
    coordinating_.erase(it2);
    if (done) done(true);
  });
}

void TwoPcReplica::handle_commit(std::int64_t seq, NodeId coordinator) {
  auto it = prepared_.find({coordinator, seq});
  if (it == prepared_.end()) return;
  db_.apply(it->second);
  ++stats_.committed;
  // Presumed commit: the participant's commit record is appended lazily
  // (it piggybacks on the next forced write) — only the prepare record and
  // the coordinator's commit record are forced, giving the two forced
  // writes per action the paper attributes to 2PC.
  BufWriter rec;
  rec.u8(2);
  rec.i32(coordinator);
  rec.i64(seq);
  storage_->append(rec.take());
  prepared_.erase(it);
}

}  // namespace tordb::baselines
