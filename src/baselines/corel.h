// COReL-style baseline (Keidar [16], paper §7).
//
// COReL layers consistent object replication on group communication but
// requires an **end-to-end acknowledgement for every action, even when
// failures are not present**: an action is committed only after every
// replica has (a) received it in total order, (b) forced it to stable
// storage, and (c) multicast an acknowledgement that everyone received.
// Per action: one forced disk write per replica (one on the client's
// critical path) and n multicasts (the action itself plus one ack from each
// other replica) — the cost structure the paper attributes to COReL and the
// precise overhead its own algorithm eliminates.
//
// Like the paper's measurement setup, this implementation evaluates the
// failure-free path (the comparison in Figure 5 is "running in normal
// configuration when no failures occur"); on a membership change it simply
// resets outstanding acknowledgement bookkeeping to the new view.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "db/database.h"
#include "gc/group_communication.h"
#include "sim/network.h"
#include "storage/stable_storage.h"

namespace tordb::baselines {

struct CorelParams {
  StorageParams storage;
  gc::GcParams gc;
  std::uint32_t action_padding = 110;  ///< pads actions to ~200 wire bytes
};

struct CorelStats {
  std::uint64_t committed = 0;
  std::uint64_t acks_sent = 0;
};

class CorelReplica {
 public:
  CorelReplica(Network& net, NodeId id, std::vector<NodeId> servers, CorelParams params = {});
  ~CorelReplica();

  CorelReplica(const CorelReplica&) = delete;
  CorelReplica& operator=(const CorelReplica&) = delete;

  /// Submit an action; `done(true)` once it is committed (totally ordered,
  /// forced everywhere, and acknowledged by every replica).
  void submit(db::Command update, std::function<void(bool)> done);

  NodeId id() const { return id_; }
  const db::Database& database() const { return db_; }
  StableStorage& storage() { return *storage_; }
  const CorelStats& stats() const { return stats_; }
  gc::GroupCommunication& group_comm() { return *gc_; }

 private:
  struct PendingAction {
    ActionId id;
    db::Command cmd;
    bool forced = false;
    std::set<NodeId> acks;
    bool committed = false;
  };

  void on_deliver(const gc::Delivery& d);
  void on_direct(NodeId from, const Bytes& wire);
  void handle_data(NodeId origin, std::int64_t seq, db::Command cmd);
  void handle_ack(NodeId acker, const ActionId& acked);
  void try_commit();

  Network& net_;
  Simulator& sim_;
  NodeId id_;
  std::vector<NodeId> servers_;
  CorelParams params_;
  std::shared_ptr<bool> alive_;
  std::unique_ptr<StableStorage> storage_;
  db::Database db_;
  std::unique_ptr<gc::GroupCommunication> gc_;
  std::vector<NodeId> view_;

  std::int64_t next_seq_ = 0;
  std::deque<PendingAction> pending_;  ///< in delivery (total) order
  std::map<ActionId, std::set<NodeId>> early_acks_;  ///< acks before the action
  std::map<ActionId, std::function<void(bool)>> callbacks_;
  CorelStats stats_;
};

}  // namespace tordb::baselines
