// Replicated two-phase commit baseline (paper §7, [12]).
//
// The submitting server acts as the transaction coordinator: it sends
// PREPARE to every replica, each participant forces a prepare record to
// stable storage and votes YES, and on a full vote the coordinator forces a
// commit record, answers the client, and disseminates COMMIT (participants
// force their commit records too). Per action this costs two forced disk
// writes on the client's critical path and ~3(n-1) unicast messages — the
// cost structure the paper's evaluation attributes to 2PC ("two forced disk
// writes and 2n unicast messages"; our PREPARE/YES/COMMIT rounds carry one
// extra n because votes are not piggybacked).
//
// Availability: if any participant is unreachable the transaction times out
// and aborts — unlike the replication engine, 2PC requires full
// connectivity to make progress, which is exactly the weakness the paper's
// algorithm removes.
//
// Scope note: like the paper's measurements ("clients receive responses to
// their actions when the actions are globally ordered, without any
// interaction with a database"), this baseline reproduces the protocol's
// message/disk cost structure; it does not implement distributed lock
// management.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "db/database.h"
#include "sim/network.h"
#include "storage/stable_storage.h"

namespace tordb::baselines {

struct TwoPcParams {
  SimDuration vote_timeout = millis(500);
  StorageParams storage;
  std::uint32_t action_padding = 110;  ///< pads PREPAREs to ~200 wire bytes
};

struct TwoPcStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t prepares_handled = 0;
};

class TwoPcReplica {
 public:
  TwoPcReplica(Network& net, NodeId id, std::vector<NodeId> servers, TwoPcParams params = {});
  ~TwoPcReplica();

  TwoPcReplica(const TwoPcReplica&) = delete;
  TwoPcReplica& operator=(const TwoPcReplica&) = delete;

  /// Run `update` as a 2PC transaction coordinated by this replica.
  /// `done(true)` on commit, `done(false)` on abort/timeout.
  void submit(db::Command update, std::function<void(bool)> done);

  NodeId id() const { return id_; }
  const db::Database& database() const { return db_; }
  StableStorage& storage() { return *storage_; }
  const TwoPcStats& stats() const { return stats_; }

 private:
  struct Txn {
    db::Command cmd;
    std::function<void(bool)> done;
    std::set<NodeId> votes;
    bool decided = false;
  };

  void on_direct(NodeId from, const Bytes& wire);
  void handle_prepare(NodeId coordinator, std::int64_t seq, db::Command cmd);
  void handle_yes(NodeId from, std::int64_t seq);
  void handle_commit(std::int64_t seq, NodeId coordinator);
  void maybe_commit(std::int64_t seq);

  Network& net_;
  Simulator& sim_;
  NodeId id_;
  std::vector<NodeId> servers_;
  TwoPcParams params_;
  std::shared_ptr<bool> alive_;
  std::unique_ptr<StableStorage> storage_;
  db::Database db_;
  std::int64_t next_seq_ = 0;
  std::map<std::int64_t, Txn> coordinating_;
  std::map<std::pair<NodeId, std::int64_t>, db::Command> prepared_;
  TwoPcStats stats_;
};

}  // namespace tordb::baselines
