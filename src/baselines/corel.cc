#include "baselines/corel.h"

namespace tordb::baselines {

namespace {

enum class CorelMsg : std::uint8_t {
  kData = 20,
  kAck = 21,
};

Bytes encode_data(NodeId origin, std::int64_t seq, const db::Command& cmd,
                  std::uint32_t padding) {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(CorelMsg::kData));
  w.i32(origin);
  w.i64(seq);
  cmd.encode(w);
  w.u32(padding);
  for (std::uint32_t i = 0; i < padding; ++i) w.u8(0);
  return w.take();
}

Bytes encode_ack(const ActionId& acked) {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(CorelMsg::kAck));
  w.action_id(acked);
  return w.take();
}

}  // namespace

CorelReplica::CorelReplica(Network& net, NodeId id, std::vector<NodeId> servers,
                           CorelParams params)
    : net_(net),
      sim_(net.sim()),
      id_(id),
      servers_(std::move(servers)),
      params_(params),
      alive_(std::make_shared<bool>(true)),
      storage_(std::make_unique<StableStorage>(sim_, params_.storage)) {
  gc::Listener listener;
  listener.on_regular_config = [this](const gc::Configuration& c) {
    view_ = c.members;
    try_commit();
  };
  listener.on_deliver = [this](const gc::Delivery& d) { on_deliver(d); };
  gc_ = std::make_unique<gc::GroupCommunication>(net_, id_, std::move(listener), 0, params_.gc);
  // Acknowledgements travel as plain (unordered) multicasts beside the
  // totally ordered data stream, as in Keidar's COReL over Transis/Spread.
  net_.set_packet_handler(
      id_, [this](NodeId from, const Bytes& wire) { on_direct(from, wire); },
      Channel::kDirect);
}

CorelReplica::~CorelReplica() {
  *alive_ = false;
  net_.clear_packet_handler(id_, Channel::kDirect);
}

void CorelReplica::on_direct(NodeId from, const Bytes& wire) {
  BufReader r(wire);
  const auto type = static_cast<CorelMsg>(r.u8());
  if (type == CorelMsg::kAck) handle_ack(from, r.action_id());
}

void CorelReplica::submit(db::Command update, std::function<void(bool)> done) {
  const ActionId aid{id_, ++next_seq_};
  callbacks_[aid] = std::move(done);
  gc_->multicast(encode_data(id_, aid.index, update, params_.action_padding),
                 gc::Service::kAgreed);
}

void CorelReplica::on_deliver(const gc::Delivery& d) {
  BufReader r(d.payload.data(), d.payload.size());
  const auto type = static_cast<CorelMsg>(r.u8());
  switch (type) {
    case CorelMsg::kData: {
      const NodeId origin = r.i32();
      const std::int64_t seq = r.i64();
      handle_data(origin, seq, db::Command::decode(r));
      break;
    }
    case CorelMsg::kAck:
      handle_ack(d.sender, r.action_id());
      break;
  }
}

void CorelReplica::handle_data(NodeId origin, std::int64_t seq, db::Command cmd) {
  PendingAction p;
  p.id = ActionId{origin, seq};
  p.cmd = std::move(cmd);
  if (auto it = early_acks_.find(p.id); it != early_acks_.end()) {
    p.acks = std::move(it->second);
    early_acks_.erase(it);
  }
  pending_.push_back(std::move(p));
  PendingAction& slot = pending_.back();
  const ActionId aid = slot.id;

  // COReL's per-action cost: force to stable storage, then multicast an
  // end-to-end acknowledgement to the whole group.
  BufWriter rec;
  rec.i32(aid.server_id);
  rec.i64(aid.index);
  storage_->append(rec.take());
  storage_->sync([this, alive = alive_, aid] {
    if (!*alive) return;
    for (PendingAction& q : pending_) {
      if (q.id == aid) {
        q.forced = true;
        break;
      }
    }
    ++stats_.acks_sent;
    net_.multicast(id_, servers_, encode_ack(aid), Channel::kDirect);
    try_commit();
  });
}

void CorelReplica::handle_ack(NodeId acker, const ActionId& acked) {
  for (PendingAction& q : pending_) {
    if (q.id == acked) {
      q.acks.insert(acker);
      try_commit();
      return;
    }
  }
  early_acks_[acked].insert(acker);
}

void CorelReplica::try_commit() {
  // Commit strictly in total order: an action commits once it is forced
  // locally and acknowledged by every member of the view.
  while (!pending_.empty()) {
    PendingAction& head = pending_.front();
    if (!head.forced) return;
    for (NodeId s : view_.empty() ? servers_ : view_) {
      if (!head.acks.count(s)) return;
    }
    db_.apply(head.cmd);
    ++stats_.committed;
    if (head.id.server_id == id_) {
      auto it = callbacks_.find(head.id);
      if (it != callbacks_.end()) {
        auto done = std::move(it->second);
        callbacks_.erase(it);
        if (done) done(true);
      }
    }
    pending_.pop_front();
  }
}

}  // namespace tordb::baselines
