// Simulated stable storage: an append-only record log with forced or
// delayed synchronization.
//
// The paper's evaluation is dominated by forced disk writes (one per action
// for the replication engine and COReL, two for 2PC; Figure 5(b) shows the
// engine with delayed writes). This module models exactly that:
//
//  - `append` adds a record to the volatile tail (no simulated time cost).
//  - `sync` in *forced* mode completes after `force_latency`; while a force
//    is in flight further syncs coalesce onto the next force (group commit),
//    which is what lets throughput exceed 1/force_latency when many clients
//    are in flight — visible in Figure 5(a)'s engine curve.
//  - `sync` in *delayed* mode completes immediately; records become durable
//    in the background and a crash loses the non-durable tail.
//  - `crash` truncates to the durable prefix and drops pending callbacks;
//    `recover_records` returns the durable log.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/serde.h"
#include "util/types.h"

namespace tordb {

enum class SyncMode {
  kForced,   ///< sync returns only once data is on stable storage
  kDelayed,  ///< sync returns immediately; durability is asynchronous
};

struct StorageParams {
  SyncMode mode = SyncMode::kForced;
  SimDuration force_latency = millis(8);  ///< one forced write / group commit
  /// Group-commit window: when a sync arrives at an idle disk, the force is
  /// delayed briefly so concurrent requests share it. When the disk is
  /// already forcing, waiting requests batch onto the next force anyway.
  SimDuration commit_window = millis(1);
  /// Observability handle (disconnected by default — zero cost). Emits one
  /// kForcedSync event per completed physical force.
  obs::Tracer tracer;
};

struct StorageStats {
  std::uint64_t appends = 0;
  std::uint64_t syncs_requested = 0;
  std::uint64_t forces = 0;  ///< physical forced writes issued
  std::uint64_t records_lost_in_crash = 0;
};

class StableStorage {
 public:
  /// SmallFn rather than std::function: the engine's post-persist callback
  /// (this + liveness guard + one wire buffer) fits the 48-byte inline slot,
  /// so the per-action sync costs no heap allocation.
  using SyncCallback = SmallFn;

  StableStorage(Simulator& sim, StorageParams params = {});

  /// Append one record to the volatile tail. Returns its index.
  std::size_t append(Bytes record);

  /// Append one record framed as [header][body] straight into the arena,
  /// skipping the intermediate record buffer the hot log paths (red /
  /// green / ongoing, one record per action per replica) used to build
  /// and throw away. Byte-identical to append(header + body).
  std::size_t append_framed(const std::uint8_t* header, std::size_t header_len,
                            const Bytes& body);
  std::size_t append_framed(std::uint8_t type, const Bytes& body) {
    return append_framed(&type, 1, body);
  }

  /// Request that everything appended so far become durable. `done` fires
  /// when it is (forced mode) or immediately (delayed mode).
  void sync(SyncCallback done);

  /// Crash: volatile tail is lost, pending callbacks never fire.
  void crash();

  /// The durable log contents, as seen after a recovery.
  std::vector<Bytes> recover_records() const;

  /// Replace the durable prefix [0, upto) with a single snapshot record.
  /// Models log compaction; only durable data may be compacted.
  void compact(std::size_t upto, Bytes snapshot_record);

  std::size_t log_size() const { return offsets_.size(); }
  std::size_t durable_size() const { return durable_; }
  bool fully_durable() const { return durable_ == offsets_.size(); }

  const StorageStats& stats() const { return stats_; }
  StorageParams& params() { return params_; }

 private:
  struct PendingSync {
    std::size_t upto;  ///< records [0, upto) must be durable before firing
    SyncCallback done;
  };

  void start_force_if_needed();
  void force_completed(std::uint64_t epoch);
  /// One past the last byte of record `i` in the arena.
  std::size_t record_end(std::size_t i) const {
    return i + 1 < offsets_.size() ? offsets_[i + 1] : arena_.size();
  }

  Simulator& sim_;
  StorageParams params_;
  /// Append-only record storage: one contiguous arena plus per-record start
  /// offsets. Records are written once and read back only at recovery, so
  /// per-record buffers bought nothing but allocator traffic and teardown
  /// cost at scale.
  Bytes arena_;
  std::vector<std::size_t> offsets_;
  std::size_t durable_ = 0;
  bool force_in_flight_ = false;
  bool window_armed_ = false;         ///< group-commit window timer pending
  std::size_t inflight_covered_ = 0;  ///< records the in-flight force covers
  std::uint64_t epoch_ = 0;  ///< bumped on crash to invalidate in-flight forces
  std::vector<PendingSync> pending_;
  StorageStats stats_;
};

}  // namespace tordb
