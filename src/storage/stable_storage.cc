#include "storage/stable_storage.h"

#include <algorithm>
#include <stdexcept>

namespace tordb {

StableStorage::StableStorage(Simulator& sim, StorageParams params)
    : sim_(sim), params_(params) {}

std::size_t StableStorage::append(Bytes record) {
  ++stats_.appends;
  log_.push_back(std::move(record));
  return log_.size() - 1;
}

void StableStorage::sync(SyncCallback done) {
  ++stats_.syncs_requested;
  if (params_.mode == SyncMode::kDelayed) {
    // The caller proceeds immediately; durability happens in the background.
    sim_.after(0, std::move(done));
    start_force_if_needed();
    return;
  }
  if (durable_ >= log_.size()) {
    // Nothing new to force; complete as soon as the loop turns.
    sim_.after(0, std::move(done));
    return;
  }
  pending_.push_back(PendingSync{log_.size(), std::move(done)});
  if (force_in_flight_) return;  // will batch onto the next force
  if (params_.commit_window > 0 && !window_armed_) {
    window_armed_ = true;
    const std::uint64_t epoch = epoch_;
    sim_.after(params_.commit_window, [this, epoch] {
      window_armed_ = false;
      if (epoch != epoch_) return;
      start_force_if_needed();
    });
    return;
  }
  if (!window_armed_) start_force_if_needed();
}

void StableStorage::start_force_if_needed() {
  if (force_in_flight_ || durable_ == log_.size()) return;
  force_in_flight_ = true;
  ++stats_.forces;
  inflight_covered_ = log_.size();
  const std::uint64_t epoch = epoch_;
  sim_.after(params_.force_latency, [this, epoch] { force_completed(epoch); });
}

void StableStorage::force_completed(std::uint64_t epoch) {
  if (epoch != epoch_) return;  // crashed while forcing
  force_in_flight_ = false;
  durable_ = std::max(durable_, inflight_covered_);
  if (params_.tracer) {
    params_.tracer.emit(obs::EventKind::kForcedSync, static_cast<std::int64_t>(durable_),
                        static_cast<std::int64_t>(stats_.forces));
  }
  // Fire every sync whose records are now durable (group commit).
  std::vector<PendingSync> still_waiting;
  std::vector<SyncCallback> ready;
  for (auto& p : pending_) {
    if (p.upto <= durable_) {
      ready.push_back(std::move(p.done));
    } else {
      still_waiting.push_back(std::move(p));
    }
  }
  pending_ = std::move(still_waiting);
  for (auto& cb : ready) cb();
  // Forced mode only re-forces when someone is waiting on durability; lazy
  // appends (e.g. the engine's green records) stay volatile until the next
  // sync. Delayed mode keeps flushing in the background — that is its point.
  if (!pending_.empty() || params_.mode == SyncMode::kDelayed) start_force_if_needed();
}

void StableStorage::crash() {
  ++epoch_;
  force_in_flight_ = false;
  pending_.clear();
  stats_.records_lost_in_crash += log_.size() - durable_;
  log_.resize(durable_);
}

std::vector<Bytes> StableStorage::recover_records() const {
  return std::vector<Bytes>(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(durable_));
}

void StableStorage::compact(std::size_t upto, Bytes snapshot_record) {
  if (upto > durable_) throw std::logic_error("cannot compact non-durable records");
  if (upto == 0) return;
  std::vector<Bytes> rest(log_.begin() + static_cast<std::ptrdiff_t>(upto), log_.end());
  log_.clear();
  log_.push_back(std::move(snapshot_record));
  log_.insert(log_.end(), rest.begin(), rest.end());
  durable_ = durable_ - upto + 1;
  // Re-base bookkeeping that referenced pre-compaction record counts.
  const std::size_t shrink = upto - 1;
  if (force_in_flight_) {
    inflight_covered_ = inflight_covered_ > upto ? inflight_covered_ - shrink : 1;
  }
  for (PendingSync& p : pending_) {
    p.upto = p.upto > upto ? p.upto - shrink : 1;
  }
}

}  // namespace tordb
