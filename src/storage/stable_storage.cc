#include "storage/stable_storage.h"

#include <algorithm>
#include <iterator>
#include <stdexcept>

namespace tordb {

StableStorage::StableStorage(Simulator& sim, StorageParams params)
    : sim_(sim), params_(params) {}

std::size_t StableStorage::append(Bytes record) {
  ++stats_.appends;
  offsets_.push_back(arena_.size());
  arena_.insert(arena_.end(), record.begin(), record.end());
  return offsets_.size() - 1;
}

std::size_t StableStorage::append_framed(const std::uint8_t* header, std::size_t header_len,
                                         const Bytes& body) {
  ++stats_.appends;
  offsets_.push_back(arena_.size());
  arena_.insert(arena_.end(), header, header + header_len);
  arena_.insert(arena_.end(), body.begin(), body.end());
  return offsets_.size() - 1;
}

void StableStorage::sync(SyncCallback done) {
  ++stats_.syncs_requested;
  if (params_.mode == SyncMode::kDelayed) {
    // The caller proceeds immediately; durability happens in the background.
    sim_.after(0, std::move(done));
    start_force_if_needed();
    return;
  }
  if (durable_ >= offsets_.size()) {
    // Nothing new to force; complete as soon as the loop turns.
    sim_.after(0, std::move(done));
    return;
  }
  pending_.push_back(PendingSync{offsets_.size(), std::move(done)});
  if (force_in_flight_) return;  // will batch onto the next force
  if (params_.commit_window > 0 && !window_armed_) {
    window_armed_ = true;
    const std::uint64_t epoch = epoch_;
    sim_.after(params_.commit_window, [this, epoch] {
      window_armed_ = false;
      if (epoch != epoch_) return;
      start_force_if_needed();
    });
    return;
  }
  if (!window_armed_) start_force_if_needed();
}

void StableStorage::start_force_if_needed() {
  if (force_in_flight_ || durable_ == offsets_.size()) return;
  force_in_flight_ = true;
  ++stats_.forces;
  inflight_covered_ = offsets_.size();
  const std::uint64_t epoch = epoch_;
  sim_.after(params_.force_latency, [this, epoch] { force_completed(epoch); });
}

void StableStorage::force_completed(std::uint64_t epoch) {
  if (epoch != epoch_) return;  // crashed while forcing
  force_in_flight_ = false;
  durable_ = std::max(durable_, inflight_covered_);
  if (params_.tracer) {
    params_.tracer.emit(obs::EventKind::kForcedSync, static_cast<std::int64_t>(durable_),
                        static_cast<std::int64_t>(stats_.forces));
  }
  // Fire every sync whose records are now durable (group commit).
  std::vector<PendingSync> still_waiting;
  std::vector<SyncCallback> ready;
  for (auto& p : pending_) {
    if (p.upto <= durable_) {
      ready.push_back(std::move(p.done));
    } else {
      still_waiting.push_back(std::move(p));
    }
  }
  pending_ = std::move(still_waiting);
  for (auto& cb : ready) cb();
  // Forced mode only re-forces when someone is waiting on durability; lazy
  // appends (e.g. the engine's green records) stay volatile until the next
  // sync. Delayed mode keeps flushing in the background — that is its point.
  if (!pending_.empty() || params_.mode == SyncMode::kDelayed) start_force_if_needed();
}

void StableStorage::crash() {
  ++epoch_;
  force_in_flight_ = false;
  pending_.clear();
  stats_.records_lost_in_crash += offsets_.size() - durable_;
  if (durable_ < offsets_.size()) {
    arena_.resize(offsets_[durable_]);
    offsets_.resize(durable_);
  }
}

std::vector<Bytes> StableStorage::recover_records() const {
  std::vector<Bytes> records;
  records.reserve(durable_);
  for (std::size_t i = 0; i < durable_; ++i) {
    records.emplace_back(arena_.begin() + static_cast<std::ptrdiff_t>(offsets_[i]),
                         arena_.begin() + static_cast<std::ptrdiff_t>(record_end(i)));
  }
  return records;
}

void StableStorage::compact(std::size_t upto, Bytes snapshot_record) {
  if (upto > durable_) throw std::logic_error("cannot compact non-durable records");
  if (upto == 0) return;
  // Rebuild the arena as [snapshot][surviving tail] and re-base offsets.
  const std::size_t tail_start = upto < offsets_.size() ? offsets_[upto] : arena_.size();
  Bytes next;
  next.reserve(snapshot_record.size() + arena_.size() - tail_start);
  next.insert(next.end(), snapshot_record.begin(), snapshot_record.end());
  next.insert(next.end(), arena_.begin() + static_cast<std::ptrdiff_t>(tail_start), arena_.end());
  std::vector<std::size_t> next_offsets;
  next_offsets.reserve(offsets_.size() - upto + 1);
  next_offsets.push_back(0);
  for (std::size_t i = upto; i < offsets_.size(); ++i) {
    next_offsets.push_back(offsets_[i] - tail_start + snapshot_record.size());
  }
  arena_ = std::move(next);
  offsets_ = std::move(next_offsets);
  durable_ = durable_ - upto + 1;
  // Re-base bookkeeping that referenced pre-compaction record counts.
  const std::size_t shrink = upto - 1;
  if (force_in_flight_) {
    inflight_covered_ = inflight_covered_ > upto ? inflight_covered_ - shrink : 1;
  }
  for (PendingSync& p : pending_) {
    p.upto = p.upto > upto ? p.upto - shrink : 1;
  }
}

}  // namespace tordb
