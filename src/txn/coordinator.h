// Cross-shard prepared-check transaction coordinator (DESIGN.md §13).
//
// The paper's single total order gives atomic checked actions for free; the
// sharded tier (§8) broke that for commands whose kCheck preconditions span
// groups. This coordinator restores them with a two-round protocol over the
// existing router/session machinery, in the spirit of Sutra & Shapiro's
// decentralised commitment over partially-replicated groups — no global
// total order is reintroduced:
//
//   Round 1 (prepare): the command is split by owning shard. Each shard
//   orders ONE action carrying its slice's checks plus a kTxnPrepare
//   marker that buffers the slice's updates in a reserved `__txnp/` cell.
//   A failed check aborts the whole slice atomically (nothing buffered) —
//   the shard's deterministic "no" vote; a green prepare is its "yes".
//   Because the pending update is an ordinary reserved-key row, snapshot,
//   state transfer, recovery replay and digests carry it for free.
//
//   Decision: when every shard voted yes, the coordinator makes the commit
//   durable FIRST — a guarded write of a `__txnd/` decision record through
//   the home shard's green order — and only then issues round 2. Any abort
//   (a "no" vote, or the fence-restart budget exhausted) skips the record.
//
//   Round 2 (confirm/cancel): one kTxnConfirm (apply the buffered update,
//   erase the cell) or kTxnCancel (erase without applying) marker per
//   involved shard, each through that shard's green order, so every
//   replica of a group takes the identical transition at the identical
//   green position — checker invariant 9. The client reply waits for the
//   green-watermark commit barrier: all markers green.
//
// Rebalance interference: a fenced PREPARE cancels the prepared shards and
// restarts the whole transaction against the fresh directory (bounded by
// max_fence_retries). A fenced CONFIRM means a data range moved between
// prepare and confirm — the reserved pending cell never travels with a
// move — so the coordinator cancels the stranded prepare and re-drives the
// already-decided slice through the router, which re-splits it for the
// range's new owner (`confirm_rerouted`).
//
// Isolation caveat (documented, not hidden): checks are evaluated at the
// prepare position, buffered updates apply at the confirm position; a
// writer may touch a checked key in between. TPC-C's new-order checks are
// against immutable catalog rows, where the distinction is invisible.
//
// Coordinator crash recovery: the home-shard prepare piggybacks a `__txn/`
// intent record (client, seq, involved shards). A replacement coordinator
// calls adopt_orphans(): for every surviving intent it re-drives the
// transaction — confirm iff the decision record exists or every involved
// shard still holds its pending (all voted yes and nothing was decided
// against), else cancel — and a pending whose intent never went green is
// cancelled outright (the home prepare aborted, so no decision can exist).
// Run it at quiescence, after the dead coordinator's traffic drained.
//
// Barrier-stamped snapshot reads: snapshot_read() holds the router's
// cross-shard gate plus this coordinator's own admission gate, waits until
// every in-flight cross action and transaction drains, pins one green
// watermark per involved shard, and answers each shard's kGets with a weak
// query at a replica whose green count reached that watermark. Every cross
// action is then either entirely before or entirely after the pinned
// vector — a reader can no longer observe one half-applied.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/client_session.h"
#include "core/replica_node.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/router.h"
#include "util/flat_map.h"

namespace tordb::txn {

struct TxnOptions {
  core::SessionOptions session;  ///< marker/prepare session knobs
  obs::Tracer tracer;            ///< coordinator-side events (node = kNoNode)
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Wholesale-restart budget when a prepare bounces off a fenced range
  /// mid-rebalance, and the pause before the restart re-consults the
  /// directory (mirrors RouterOptions' fenced-bounce knobs).
  int max_fence_retries = 400;
  SimDuration fence_retry_delay = millis(50);
  /// Distinguishes a replacement coordinator's sessions from its dead
  /// predecessor's: session guards are consumed per id, so a new
  /// incarnation must claim fresh id space (ShardedCluster bumps this on
  /// restart_txn_coordinator).
  std::int64_t session_epoch = 0;
  /// Test hook modelling a coordinator crash mid-protocol: freeze every
  /// transaction at this stage (no reply, no further markers; txn_test
  /// then builds a replacement coordinator and drives adoption).
  /// 0 = never, 1 = after the prepare votes are collected (before the
  /// decision record or any cancels), 2 = after the decision record is
  /// green (before the confirm/cancel markers).
  int halt_at_stage = 0;
};

struct TxnStats {
  std::uint64_t begun = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted_check = 0;   ///< some shard's precondition failed
  std::uint64_t aborted_fenced = 0;  ///< fence-restart budget exhausted
  std::uint64_t aborted_other = 0;   ///< a vote neither committed nor classified
  std::uint64_t prepares = 0;        ///< prepare markers submitted
  std::uint64_t confirms = 0;        ///< confirm markers submitted
  std::uint64_t cancels = 0;         ///< cancel markers submitted
  std::uint64_t restarts = 0;        ///< wholesale fenced restarts
  std::uint64_t confirm_rerouted = 0;  ///< confirms bounced by a move, re-driven via the router
  std::uint64_t snapshot_reads = 0;
  std::uint64_t adopted_confirmed = 0;  ///< recovery pass drove the txn to commit
  std::uint64_t adopted_cancelled = 0;  ///< recovery pass cancelled it
};

/// Result of a barrier-stamped snapshot read.
struct SnapshotReadReply {
  bool ok = false;                       ///< false: the query carried non-kGet ops
  std::vector<std::string> reads;        ///< one entry per kGet, in program order
  std::vector<std::int64_t> watermarks;  ///< pinned green watermark per involved shard (ascending)
  SimDuration drain_wait = 0;            ///< gate hold -> all barriers drained
};
using SnapshotReadFn = std::function<void(const SnapshotReadReply&)>;

class TxnCoordinator {
 public:
  /// `replicas[s]` are the members of shard `s` — the same groups the
  /// router holds; adoption and snapshot reads consult their green state
  /// directly. The router must outlive the coordinator.
  TxnCoordinator(Simulator& sim, shard::Router& router,
                 std::vector<std::vector<core::ReplicaNode*>> replicas, TxnOptions options = {});
  ~TxnCoordinator();

  TxnCoordinator(const TxnCoordinator&) = delete;
  TxnCoordinator& operator=(const TxnCoordinator&) = delete;

  /// Run `update` as a prepared-check transaction (the router's
  /// cross-check handler lands here). Degenerate single-shard commands go
  /// straight back to the router's atomic fast path.
  void submit(std::int64_t client, db::Command update, shard::RouteReplyFn reply);

  /// Barrier-stamped snapshot read: `query` must be kGet-only; its reads
  /// are answered against one pinned green watermark per involved shard.
  void snapshot_read(db::Command query, SnapshotReadFn reply);

  /// Recovery pass over every shard's surviving `__txn/` intents and
  /// orphaned `__txnp/` pendings (see the header comment). `done` fires
  /// with the number of adopted transactions once all of them resolved.
  void adopt_orphans(std::function<void(int adopted)> done = nullptr);

  /// Every transaction, marker, cleanup, restart and snapshot read drained.
  bool idle() const;
  const TxnStats& stats() const { return stats_; }

  static std::string intent_key(std::int64_t client, std::int64_t seq);
  static std::string pending_key(std::int64_t client, std::int64_t seq);
  static std::string decision_key(std::int64_t client, std::int64_t seq);

 private:
  struct Txn {
    std::int64_t client = 0;
    std::int64_t seq = 0;
    std::int64_t xid = 0;   ///< deterministic: client * 1e6 + seq
    std::uint64_t fp = 0;   ///< db::range_fingerprint(pending key, "")
    db::Command original;   ///< kept verbatim for wholesale fenced restarts
    shard::RouteReplyFn reply;
    std::vector<int> shards;            ///< involved shards, ascending
    std::vector<db::Command> checks;    ///< per slot: the slice's kCheck ops
    std::vector<db::Command> buffered;  ///< per slot: the slice's buffered updates
    std::vector<char> prepared;         ///< per slot: 1 = green prepare ("yes" vote)
    int home = 0;           ///< lowest involved shard; holds intent + decision
    int outstanding = 0;    ///< markers awaited in the current round
    int bounces = 0;        ///< wholesale restarts consumed
    int attempts = 0;       ///< summed session attempts
    bool check_fail = false;
    bool fence_fail = false;
    bool other_fail = false;
    bool committing = false;  ///< round 2 is the confirm leg (decision durable)
    bool restarting = false;  ///< round 2 is the cancel leg of a restart
    bool halted = false;      ///< frozen by TxnOptions::halt_at_stage
    SimTime t0 = 0;
    SimTime first_marker = -1;  ///< first round-2 marker green
    SimTime last_marker = -1;   ///< last round-2 marker green
  };

  /// One transaction being re-driven by adopt_orphans.
  struct Adoption {
    std::int64_t client = 0;
    std::int64_t seq = 0;
    std::int64_t xid = 0;
    int home = 0;
    bool commit = false;
    std::vector<int> shards;                ///< involved shards (intent record)
    std::vector<int> with_pending;          ///< shards whose pending cell survives
    std::map<int, db::Command> buffered;    ///< decoded from surviving pendings
    int outstanding = 0;
  };

  core::ClientSession& session(std::int64_t session_id, int shard);
  const db::Database* best_db(int shard) const;

  void begin(std::int64_t client, db::Command update, shard::RouteReplyFn reply, int bounces);
  void on_prepared(std::int64_t token);
  void submit_decision(std::int64_t token);
  void round2(std::int64_t token, bool commit);
  void submit_confirm(std::int64_t token, std::size_t slot);
  void submit_cancel(std::int64_t token, std::size_t slot, bool with_home_cleanup);
  void reroute_slice(std::int64_t token, std::size_t slot);
  void mark_marker(Txn& t);
  void maybe_finish(std::int64_t token);
  void finish(std::int64_t token);
  void schedule_restart(std::unique_ptr<Txn> t);
  void submit_cleanup(std::int64_t client, std::int64_t seq, int home, std::int64_t sid);
  void flush_deferred();

  void drain_for_snapshot(std::int64_t token);
  void read_snapshot_shard(std::int64_t token, std::size_t slot);
  void finish_snapshot(std::int64_t token);

  void adopt_drive(std::int64_t token);
  void adopt_confirms(std::int64_t token);
  void adopt_confirm_shard(std::int64_t token, std::size_t slot);
  void adopt_reroute(std::int64_t token, std::size_t slot);
  void adopt_cleanup(std::int64_t token);
  void adopt_cancel_orphan(std::int64_t client, std::int64_t seq, const std::vector<int>& shards);
  void adopt_done_one(std::int64_t token);
  void adopt_maybe_done();

  Simulator& sim_;
  shard::Router& router_;
  std::vector<std::vector<core::ReplicaNode*>> replicas_;
  TxnOptions options_;
  std::shared_ptr<bool> alive_;

  util::FlatMap64<std::unique_ptr<core::ClientSession>> sessions_;  ///< by (sid << 16) | shard
  util::FlatMap64<std::int64_t> next_seq_;  ///< per client
  std::int64_t next_token_ = 0;
  std::map<std::int64_t, std::unique_ptr<Txn>> inflight_;

  /// Snapshot-read admission gate: while > 0, new transactions are
  /// deferred (FIFO) so the barrier can drain.
  int hold_ = 0;
  struct DeferredTxn {
    std::int64_t client = 0;
    db::Command update;
    shard::RouteReplyFn reply;
  };
  std::deque<DeferredTxn> deferred_;

  struct Snapshot {
    db::Command query;
    SnapshotReadFn reply;
    std::vector<int> shards;  ///< involved shards, ascending
    /// For each kGet of the query, (slot, index within the slot's slice).
    std::vector<std::pair<std::size_t, std::size_t>> slots;
    std::vector<db::Command> slices;            ///< per slot: the shard's kGets
    std::vector<std::vector<std::string>> out;  ///< per slot: that shard's reads
    std::vector<std::int64_t> watermarks;
    SimTime t0 = 0;
    SimTime stamped = 0;
    int outstanding = 0;
    bool gated = false;  ///< this read holds one router hold_cross()
  };
  std::map<std::int64_t, Snapshot> snapshots_;

  std::map<std::int64_t, Adoption> adoptions_;
  int adoption_orphans_ = 0;  ///< orphan-pending cancels still in flight
  std::function<void(int)> adoption_done_;
  int adoption_count_ = 0;

  std::int64_t pending_restarts_ = 0;
  std::int64_t cleanups_ = 0;  ///< post-commit intent/decision deletions in flight

  obs::Histogram* prepare_decide_hist_ = nullptr;
  obs::Histogram* barrier_hist_ = nullptr;
  TxnStats stats_;
};

}  // namespace tordb::txn
