#include "txn/coordinator.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "db/database.h"

namespace tordb::txn {

namespace {

// Session-id spaces. The coordinator's engine-level sessions must never
// collide with the router's (session_id = client * shards + shard, small)
// nor with each other across coordinator incarnations (guards are consumed
// per id — see TxnOptions::session_epoch). Bases are spaced far above any
// realistic workload client id.
constexpr std::int64_t kTxnSessionBase = 1'000'000'000;
constexpr std::int64_t kEpochStride = 10'000'000;
constexpr std::int64_t kAdopterSessionBase = 2'000'000'000;
// Router client ids for re-driven slices (a confirm that bounced off a
// moved range). Unique per (transaction, slot) and deterministic.
constexpr std::int64_t kRerouteClientBase = 3'000'000'000;
// xid = client * stride + seq — same scheme the router uses for cross ids.
constexpr std::int64_t kXidStride = 1'000'000;

std::string encode_intent(std::int64_t client, std::int64_t seq, const std::vector<int>& shards) {
  std::string blob = std::to_string(client) + "/" + std::to_string(seq);
  for (const int s : shards) blob += "/" + std::to_string(s);
  return blob;
}

struct Intent {
  std::int64_t client = 0;
  std::int64_t seq = 0;
  std::vector<int> shards;
};

Intent decode_intent(const std::string& blob) {
  Intent in;
  std::vector<std::int64_t> fields;
  std::size_t pos = 0;
  while (pos <= blob.size()) {
    const std::size_t slash = blob.find('/', pos);
    const std::string part = blob.substr(pos, slash == std::string::npos ? slash : slash - pos);
    fields.push_back(std::stoll(part));
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
  if (fields.size() < 3) throw std::runtime_error("corrupt txn intent record: " + blob);
  in.client = fields[0];
  in.seq = fields[1];
  for (std::size_t i = 2; i < fields.size(); ++i) in.shards.push_back(static_cast<int>(fields[i]));
  return in;
}

}  // namespace

TxnCoordinator::TxnCoordinator(Simulator& sim, shard::Router& router,
                               std::vector<std::vector<core::ReplicaNode*>> replicas,
                               TxnOptions options)
    : sim_(sim),
      router_(router),
      replicas_(std::move(replicas)),
      options_(std::move(options)),
      alive_(std::make_shared<bool>(true)) {
  if (static_cast<int>(replicas_.size()) != router_.directory().shards()) {
    throw std::invalid_argument("coordinator replica groups must match the directory");
  }
  if (options_.metrics) {
    prepare_decide_hist_ = &options_.metrics->histogram("txn.prepare_decide_us");
    barrier_hist_ = &options_.metrics->histogram("txn.barrier_wait_us");
  }
}

TxnCoordinator::~TxnCoordinator() { *alive_ = false; }

std::string TxnCoordinator::intent_key(std::int64_t client, std::int64_t seq) {
  return "__txn/" + std::to_string(client) + "/" + std::to_string(seq);
}

std::string TxnCoordinator::pending_key(std::int64_t client, std::int64_t seq) {
  return "__txnp/" + std::to_string(client) + "/" + std::to_string(seq);
}

std::string TxnCoordinator::decision_key(std::int64_t client, std::int64_t seq) {
  return "__txnd/" + std::to_string(client) + "/" + std::to_string(seq);
}

core::ClientSession& TxnCoordinator::session(std::int64_t session_id, int shard) {
  auto& slot = sessions_[(static_cast<std::uint64_t>(session_id) << 16) |
                         static_cast<std::uint64_t>(shard & 0xffff)];
  if (!slot) {
    // The coordinator's cross-lane handoff point in a lane-partitioned
    // simulation (DESIGN.md §15): sessions live on the control lane and hop
    // each prepare/confirm/cancel submit to the target shard's lane.
    slot = std::make_unique<core::ClientSession>(sim_, replicas_.at(static_cast<std::size_t>(shard)),
                                                 session_id, options_.session);
  }
  return *slot;
}

const db::Database* TxnCoordinator::best_db(int shard) const {
  // Highest-green running replica: its green prefix covers every marker any
  // member of the group has applied (checker invariant 1), so its state is
  // the canonical view the recovery scan wants.
  const core::ReplicaNode* best = nullptr;
  for (const core::ReplicaNode* node : replicas_.at(static_cast<std::size_t>(shard))) {
    if (!node->running()) continue;
    if (best == nullptr || node->engine().green_count() > best->engine().green_count()) {
      best = node;
    }
  }
  return best == nullptr ? nullptr : &best->engine().database();
}

bool TxnCoordinator::idle() const {
  for (const auto& [token, t] : inflight_) {
    if (!t->halted) return false;
  }
  bool sessions_idle = true;
  sessions_.for_each([&](std::uint64_t, const std::unique_ptr<core::ClientSession>& s) {
    if (!s->idle()) sessions_idle = false;
  });
  return sessions_idle && deferred_.empty() && snapshots_.empty() && adoptions_.empty() &&
         adoption_orphans_ == 0 && pending_restarts_ == 0 && cleanups_ == 0;
}

void TxnCoordinator::submit(std::int64_t client, db::Command update, shard::RouteReplyFn reply) {
  if (hold_ > 0) {
    // A snapshot read is draining the barrier: admit nothing new until its
    // watermark vector is stamped and released (FIFO).
    deferred_.push_back(DeferredTxn{client, std::move(update), std::move(reply)});
    return;
  }
  begin(client, std::move(update), std::move(reply), /*bounces=*/0);
}

void TxnCoordinator::flush_deferred() {
  std::deque<DeferredTxn> q;
  q.swap(deferred_);
  for (DeferredTxn& d : q) {
    // Re-enter through submit: a snapshot read arriving mid-flush re-defers
    // the remainder into the fresh queue.
    submit(d.client, std::move(d.update), std::move(d.reply));
  }
}

void TxnCoordinator::begin(std::int64_t client, db::Command update, shard::RouteReplyFn reply,
                           int bounces) {
  const shard::Directory& dir = router_.directory();
  std::vector<int> shards = dir.shards_of(update);
  if (shards.size() <= 1) {
    // Degenerate (or a restart whose keys now co-locate after a merge):
    // one shard's green order already gives atomic checked updates.
    router_.submit(client, std::move(update), std::move(reply));
    return;
  }

  if (bounces == 0) ++stats_.begun;
  const std::int64_t seq = ++next_seq_[static_cast<std::uint64_t>(client)];
  auto txn = std::make_unique<Txn>();
  Txn& t = *txn;
  t.client = client;
  t.seq = seq;
  t.xid = client * kXidStride + seq;
  t.fp = db::range_fingerprint(pending_key(client, seq), "");
  t.original = update;
  t.reply = std::move(reply);
  t.shards = std::move(shards);  // shards_of returns them sorted ascending
  t.home = t.shards.front();
  t.bounces = bounces;
  t.t0 = sim_.now();

  const std::size_t n = t.shards.size();
  t.checks.resize(n);
  t.buffered.resize(n);
  t.prepared.assign(n, 0);
  for (db::Op& op : update.ops) {
    const int s = dir.shard_of_cached(op.key);
    const std::size_t slot = static_cast<std::size_t>(
        std::lower_bound(t.shards.begin(), t.shards.end(), s) - t.shards.begin());
    (op.type == db::OpType::kCheck ? t.checks : t.buffered)[slot].ops.push_back(std::move(op));
  }
  t.outstanding = static_cast<int>(n);
  options_.tracer.emit(obs::EventKind::kTxnBegin, static_cast<std::int64_t>(t.fp),
                       static_cast<std::int64_t>(n));

  const std::int64_t token = ++next_token_;
  inflight_[token] = std::move(txn);
  const std::int64_t sid = kTxnSessionBase + options_.session_epoch * kEpochStride + client;
  const std::string pend = pending_key(client, seq);

  // Round 1: one prepare action per involved shard — the slice's checks,
  // then the kTxnPrepare buffering its updates. The home shard's prepare
  // additionally carries the intent record a recovery pass scans for. A
  // failed check (or a fence) aborts the whole slice atomically: no pending,
  // no intent — the shard's deterministic "no" vote.
  for (std::size_t slot = 0; slot < n; ++slot) {
    Txn& tr = *inflight_[token];
    db::Command prep;
    if (tr.shards[slot] == tr.home) {
      prep.ops.push_back(db::Op{db::OpType::kPut, intent_key(client, seq),
                                encode_intent(client, seq, tr.shards), 0});
    }
    for (const db::Op& op : tr.checks[slot].ops) prep.ops.push_back(op);
    db::TxnPending pending;
    pending.client = client;
    pending.seq = seq;
    pending.home = tr.home;
    pending.update = tr.buffered[slot];
    prep.ops.push_back(db::Command::txn_prepare(pend, pending).ops[0]);
    ++stats_.prepares;
    session(sid, tr.shards[slot])
        .submit(std::move(prep),
                [this, alive = alive_, token, slot](const core::SessionReply& r) {
                  if (!*alive) return;
                  auto it = inflight_.find(token);
                  if (it == inflight_.end()) return;
                  Txn& t = *it->second;
                  t.attempts += r.attempts;
                  if (r.committed) {
                    t.prepared[slot] = 1;
                  } else if (r.check_aborted) {
                    t.check_fail = true;
                  } else if (r.fenced) {
                    t.fence_fail = true;
                  } else {
                    t.other_fail = true;
                  }
                  if (--t.outstanding == 0) on_prepared(token);
                });
  }
}

void TxnCoordinator::on_prepared(std::int64_t token) {
  Txn& t = *inflight_[token];
  if (options_.halt_at_stage == 1) {
    // Crash model: every vote collected, nothing decided, no reply. The
    // pendings and the intent survive in replica state for adopt_orphans.
    t.halted = true;
    return;
  }
  const bool all_yes =
      std::all_of(t.prepared.begin(), t.prepared.end(), [](char p) { return p != 0; });
  if (all_yes) {
    submit_decision(token);
    return;
  }
  if (t.fence_fail && !t.check_fail && !t.other_fail && t.bounces < options_.max_fence_retries) {
    // Pure rebalance interference: cancel what prepared and restart the
    // whole transaction against the fresh directory after a pause.
    ++stats_.restarts;
    t.restarting = true;
  }
  round2(token, /*commit=*/false);
}

void TxnCoordinator::submit_decision(std::int64_t token) {
  Txn& t = *inflight_[token];
  const std::string dec = decision_key(t.client, t.seq);
  // Guarded write: the decision record must be green at the home shard
  // BEFORE any confirm marker exists anywhere — adoption's confirm-iff-
  // all-pendings rule is only safe because a confirmed transaction always
  // has a durable decision. The kCheck makes a concurrent adopter's write
  // visible as check_aborted instead of a blind overwrite.
  db::Command cmd;
  cmd.ops.push_back(db::Op{db::OpType::kCheck, dec, "", 0});
  cmd.ops.push_back(db::Op{db::OpType::kPut, dec, "C", 0});
  const std::int64_t sid = kTxnSessionBase + options_.session_epoch * kEpochStride + t.client;
  session(sid, t.home).submit(
      std::move(cmd), [this, alive = alive_, token](const core::SessionReply& r) {
        if (!*alive) return;
        auto it = inflight_.find(token);
        if (it == inflight_.end()) return;
        Txn& t = *it->second;
        t.attempts += r.attempts;
        if (!r.committed && !r.check_aborted) {
          // The decision MUST become green before round 2 — keep driving it.
          submit_decision(token);
          return;
        }
        // Committed, or check_aborted (the record already reads "C").
        const SimDuration lat = sim_.now() - t.t0;
        options_.tracer.emit(obs::EventKind::kTxnDecide, static_cast<std::int64_t>(t.fp), 1, lat);
        if (prepare_decide_hist_ != nullptr) prepare_decide_hist_->record(lat / 1000);  // ns -> us
        if (options_.halt_at_stage == 2) {
          // Crash model: decision durable, no round-2 markers issued.
          t.halted = true;
          return;
        }
        round2(token, /*commit=*/true);
      });
}

void TxnCoordinator::round2(std::int64_t token, bool commit) {
  Txn& t = *inflight_[token];
  t.committing = commit;
  t.outstanding = 0;
  std::vector<std::size_t> slots;
  for (std::size_t slot = 0; slot < t.shards.size(); ++slot) {
    if (commit || t.prepared[slot] != 0) {
      ++t.outstanding;
      slots.push_back(slot);
    }
  }
  if (slots.empty()) {
    // Abort with nothing prepared anywhere: no markers, no state to undo.
    finish(token);
    return;
  }
  for (const std::size_t slot : slots) {
    commit ? submit_confirm(token, slot) : submit_cancel(token, slot, /*with_home_cleanup=*/true);
  }
}

void TxnCoordinator::submit_confirm(std::int64_t token, std::size_t slot) {
  Txn& t = *inflight_[token];
  ++stats_.confirms;
  const std::int64_t sid = kTxnSessionBase + options_.session_epoch * kEpochStride + t.client;
  session(sid, t.shards[slot])
      .submit(db::Command::txn_confirm(pending_key(t.client, t.seq)),
              [this, alive = alive_, token, slot](const core::SessionReply& r) {
                if (!*alive) return;
                auto it = inflight_.find(token);
                if (it == inflight_.end()) return;
                Txn& t = *it->second;
                t.attempts += r.attempts;
                if (r.committed) {
                  mark_marker(t);
                  --t.outstanding;
                  maybe_finish(token);
                  return;
                }
                if (r.fenced) {
                  // The slot's data range moved between prepare and confirm
                  // (the reserved pending cell never travels with a move).
                  // Cancel the stranded prepare and re-drive the decided
                  // slice through the router, which re-splits it for the
                  // new owner. The one confirm becomes two operations.
                  ++stats_.confirm_rerouted;
                  const bool has_payload = !t.buffered[slot].ops.empty();
                  if (has_payload) ++t.outstanding;
                  submit_cancel(token, slot, /*with_home_cleanup=*/false);
                  if (has_payload) reroute_slice(token, slot);
                  return;
                }
                // Attempt budget exhausted against a churning group: the
                // marker is idempotent, keep driving it.
                submit_confirm(token, slot);
              });
}

void TxnCoordinator::submit_cancel(std::int64_t token, std::size_t slot, bool with_home_cleanup) {
  Txn& t = *inflight_[token];
  ++stats_.cancels;
  db::Command cmd = db::Command::txn_cancel(pending_key(t.client, t.seq));
  if (with_home_cleanup && t.shards[slot] == t.home) {
    // The abort path's intent cleanup rides the home cancel: one action,
    // so a recovery scan never sees a cancelled home with a live intent.
    cmd.ops.push_back(db::Op{db::OpType::kDelete, intent_key(t.client, t.seq), "", 0});
  }
  const std::int64_t sid = kTxnSessionBase + options_.session_epoch * kEpochStride + t.client;
  session(sid, t.shards[slot])
      .submit(std::move(cmd),
              [this, alive = alive_, token, slot, with_home_cleanup](const core::SessionReply& r) {
                if (!*alive) return;
                auto it = inflight_.find(token);
                if (it == inflight_.end()) return;
                Txn& t = *it->second;
                t.attempts += r.attempts;
                if (!r.committed) {
                  submit_cancel(token, slot, with_home_cleanup);
                  return;
                }
                mark_marker(t);
                --t.outstanding;
                maybe_finish(token);
              });
}

void TxnCoordinator::reroute_slice(std::int64_t token, std::size_t slot) {
  Txn& t = *inflight_[token];
  // The slice is already decided (checks consumed at prepare) and purely
  // mutating, so the router's unconditional path applies it exactly once —
  // possibly across several shards if the range split. Snapshot reads stay
  // deadlock-free because their router gate is only taken once no
  // transaction is in flight (drain_for_snapshot stage order).
  const std::int64_t rclient = kRerouteClientBase + t.xid * 64 + static_cast<std::int64_t>(slot);
  router_.submit(rclient, t.buffered[slot],
                 [this, alive = alive_, token, slot](const shard::RouteReply& r) {
                   if (!*alive) return;
                   auto it = inflight_.find(token);
                   if (it == inflight_.end()) return;
                   Txn& t = *it->second;
                   t.attempts += r.attempts;
                   if (!r.committed) {
                     reroute_slice(token, slot);
                     return;
                   }
                   mark_marker(t);
                   --t.outstanding;
                   maybe_finish(token);
                 });
}

void TxnCoordinator::mark_marker(Txn& t) {
  const SimTime now = sim_.now();
  if (t.first_marker < 0) t.first_marker = now;
  t.last_marker = now;
}

void TxnCoordinator::maybe_finish(std::int64_t token) {
  auto it = inflight_.find(token);
  if (it != inflight_.end() && it->second->outstanding == 0) finish(token);
}

void TxnCoordinator::finish(std::int64_t token) {
  auto it = inflight_.find(token);
  std::unique_ptr<Txn> t = std::move(it->second);
  inflight_.erase(it);

  if (t->restarting) {
    schedule_restart(std::move(t));
    return;
  }

  shard::RouteReply out;
  out.shards_involved = static_cast<int>(t->shards.size());
  out.attempts = t->attempts;
  out.fenced_bounces = t->bounces;
  if (t->committing) {
    ++stats_.committed;
    out.committed = true;
    if (t->first_marker >= 0) {
      out.barrier_wait = t->last_marker - t->first_marker;
      if (barrier_hist_ != nullptr) barrier_hist_->record(out.barrier_wait / 1000);  // ns -> us
    }
    // Retire the intent and decision records off the critical path; the
    // reply does not wait for it (a crash before the cleanup is exactly
    // what adopt_orphans handles — it re-confirms, idempotently).
    submit_cleanup(t->client, t->seq, t->home,
                   kTxnSessionBase + options_.session_epoch * kEpochStride + t->client);
  } else {
    out.committed = false;
    out.check_aborted = t->check_fail;
    out.fenced = !t->check_fail && t->fence_fail;
    if (t->check_fail) {
      ++stats_.aborted_check;
    } else if (t->fence_fail) {
      ++stats_.aborted_fenced;
    } else {
      ++stats_.aborted_other;
    }
    options_.tracer.emit(obs::EventKind::kTxnDecide, static_cast<std::int64_t>(t->fp), 0,
                         sim_.now() - t->t0);
  }
  if (t->reply) t->reply(out);
}

void TxnCoordinator::schedule_restart(std::unique_ptr<Txn> t) {
  ++pending_restarts_;
  auto original = std::make_shared<db::Command>(std::move(t->original));
  sim_.after(options_.fence_retry_delay,
             [this, alive = alive_, original, client = t->client, bounces = t->bounces,
              reply = std::move(t->reply)]() mutable {
               if (!*alive) return;
               --pending_restarts_;
               // Deliberately bypasses the snapshot-read admission gate: the
               // transaction was admitted before the hold, and its restart
               // leg has zero applied effects, so the reader just waits for
               // it like any other in-flight transaction.
               begin(client, std::move(*original), std::move(reply), bounces + 1);
             });
}

void TxnCoordinator::submit_cleanup(std::int64_t client, std::int64_t seq, int home,
                                    std::int64_t sid) {
  ++cleanups_;
  db::Command cmd;
  cmd.ops.push_back(db::Op{db::OpType::kDelete, intent_key(client, seq), "", 0});
  cmd.ops.push_back(db::Op{db::OpType::kDelete, decision_key(client, seq), "", 0});
  session(sid, home).submit(std::move(cmd), [this, alive = alive_, client, seq, home,
                                             sid](const core::SessionReply& r) {
    if (!*alive) return;
    --cleanups_;
    if (!r.committed) submit_cleanup(client, seq, home, sid);
  });
}

// --- barrier-stamped snapshot reads ----------------------------------------

void TxnCoordinator::snapshot_read(db::Command query, SnapshotReadFn reply) {
  for (const db::Op& op : query.ops) {
    if (op.type != db::OpType::kGet) {
      if (reply) reply(SnapshotReadReply{});  // ok = false
      return;
    }
  }
  ++stats_.snapshot_reads;
  const shard::Directory& dir = router_.directory();
  std::vector<int> shards = dir.shards_of(query);
  if (shards.empty()) shards.push_back(0);

  const std::int64_t token = ++next_token_;
  Snapshot& s = snapshots_[token];
  s.query = std::move(query);
  s.reply = std::move(reply);
  s.shards = std::move(shards);
  s.slices.resize(s.shards.size());
  s.out.resize(s.shards.size());
  for (const db::Op& op : s.query.ops) {
    const int sh = dir.shard_of_cached(op.key);
    const std::size_t slot = static_cast<std::size_t>(
        std::lower_bound(s.shards.begin(), s.shards.end(), sh) - s.shards.begin());
    s.slots.emplace_back(slot, s.slices[slot].ops.size());
    s.slices[slot].ops.push_back(op);
  }
  s.t0 = sim_.now();
  // Gate order matters (deadlock freedom): first stop ADMITTING
  // transactions and wait for the in-flight ones — which may still need the
  // router for fenced-confirm reroutes — and only then take the router's
  // cross gate and wait out the marker barriers.
  ++hold_;
  drain_for_snapshot(token);
}

void TxnCoordinator::drain_for_snapshot(std::int64_t token) {
  auto it = snapshots_.find(token);
  Snapshot& s = it->second;
  const auto retry = [this, token] {
    sim_.after(millis(1), [this, alive = alive_, token] {
      if (*alive) drain_for_snapshot(token);
    });
  };
  bool own_busy = pending_restarts_ > 0 || !adoptions_.empty() || adoption_orphans_ > 0;
  for (const auto& [tok, t] : inflight_) {
    if (!t->halted) {
      own_busy = true;
      break;
    }
  }
  if (own_busy) {
    retry();
    return;
  }
  if (!s.gated) {
    router_.hold_cross();
    s.gated = true;
  }
  if (router_.cross_in_flight() > 0) {
    retry();
    return;
  }
  // Drained: every cross action is fully green at every involved shard, and
  // nothing new can start. Pin the watermark vector — any cross action is
  // now entirely at-or-below it, or entirely after the release.
  s.stamped = sim_.now();
  s.watermarks.resize(s.shards.size());
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    s.watermarks[i] = router_.green_watermark(s.shards[i]);
  }
  options_.tracer.emit(obs::EventKind::kTxnSnapshotRead,
                       static_cast<std::int64_t>(s.shards.size()), s.stamped - s.t0);
  if (s.query.ops.empty()) {
    finish_snapshot(token);
    return;
  }
  // A weak query can answer inline: the last slot's reply erases the
  // Snapshot, so `s` must not be touched once the reads start.
  const std::size_t slots = s.shards.size();
  s.outstanding = static_cast<int>(slots);
  for (std::size_t slot = 0; slot < slots; ++slot) read_snapshot_shard(token, slot);
}

void TxnCoordinator::read_snapshot_shard(std::int64_t token, std::size_t slot) {
  Snapshot& s = snapshots_.find(token)->second;
  // Any replica whose green count reached the pinned watermark serves: its
  // green prefix is the canonical one (invariant 1), so the answer is the
  // same at every qualifying replica. Later single-shard greens may be
  // included — they cannot straddle shards, so atomicity is unaffected.
  core::ReplicaNode* pick = nullptr;
  for (core::ReplicaNode* node : replicas_.at(static_cast<std::size_t>(s.shards[slot]))) {
    if (node->running() && node->engine().green_count() >= s.watermarks[slot]) {
      pick = node;
      break;
    }
  }
  if (pick == nullptr) {
    // Every caught-up replica just crashed; wait for a recovery or a
    // lagging member to replay up to the watermark.
    sim_.after(millis(1), [this, alive = alive_, token, slot] {
      if (*alive) read_snapshot_shard(token, slot);
    });
    return;
  }
  // kWeak is a synchronous pure read (no engine mutation), so in lane mode
  // it may run inline from the control phase against worker state frozen at
  // the window end — the snapshot semantics are unchanged.
  pick->engine().submit_query(
      s.slices[slot], core::QueryMode::kWeak,
      [this, alive = alive_, token, slot](const core::Reply& r) {
        if (!*alive) return;
        auto it = snapshots_.find(token);
        if (it == snapshots_.end()) return;
        Snapshot& s = it->second;
        s.out[slot] = r.reads;
        if (--s.outstanding == 0) finish_snapshot(token);
      });
}

void TxnCoordinator::finish_snapshot(std::int64_t token) {
  auto it = snapshots_.find(token);
  Snapshot s = std::move(it->second);
  snapshots_.erase(it);

  SnapshotReadReply out;
  out.ok = true;
  out.watermarks = std::move(s.watermarks);
  out.drain_wait = s.stamped - s.t0;
  out.reads.resize(s.slots.size());
  for (std::size_t i = 0; i < s.slots.size(); ++i) {
    out.reads[i] = std::move(s.out[s.slots[i].first][s.slots[i].second]);
  }
  if (s.gated) router_.release_cross();
  --hold_;
  if (hold_ == 0) flush_deferred();
  if (s.reply) s.reply(out);
}

// --- coordinator crash recovery --------------------------------------------

void TxnCoordinator::adopt_orphans(std::function<void(int adopted)> done) {
  adoption_done_ = std::move(done);
  adoption_count_ = 0;

  // Synchronous scan of every shard's best green state. Assumes the dead
  // coordinator's traffic has drained (run at quiescence): the scan must
  // see the final green marker set, not race half-delivered prepares.
  const int nshards = static_cast<int>(replicas_.size());
  std::set<std::pair<std::int64_t, std::int64_t>> known;
  std::vector<Adoption> work;
  for (int sh = 0; sh < nshards; ++sh) {
    const db::Database* d = best_db(sh);
    if (d == nullptr) continue;
    for (const auto& [key, value] : d->scan_prefix("__txn/")) {
      const Intent in = decode_intent(value);
      known.insert({in.client, in.seq});
      Adoption a;
      a.client = in.client;
      a.seq = in.seq;
      a.xid = in.client * kXidStride + in.seq;
      a.home = sh;
      a.shards = in.shards;
      const bool has_decision = d->get(decision_key(in.client, in.seq)) == "C";
      const std::string pend = pending_key(in.client, in.seq);
      for (const int t : a.shards) {
        const db::Database* dt = best_db(t);
        if (dt == nullptr) continue;
        const std::string cell = dt->get(pend);
        if (cell.empty()) continue;
        a.with_pending.push_back(t);
        a.buffered[t] = db::TxnPending::decode(Bytes(cell.begin(), cell.end())).update;
      }
      // Confirm iff the decision is durable, or every involved shard still
      // holds its pending — all voted yes and nothing was decided against.
      // (A confirmed shard always implies a durable decision, because the
      // live coordinator orders the decision before any confirm marker; so
      // a missing pending with no decision can only mean a "no" vote or a
      // cancel, and the safe resolution is cancel.)
      a.commit = has_decision || a.with_pending.size() == a.shards.size();
      work.push_back(std::move(a));
    }
  }
  // Pendings whose intent never went green: the home prepare aborted, so no
  // decision can ever exist — cancel them. Grouped per transaction.
  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<int>> orphans;
  for (int sh = 0; sh < nshards; ++sh) {
    const db::Database* d = best_db(sh);
    if (d == nullptr) continue;
    for (const auto& [key, value] : d->scan_prefix("__txnp/")) {
      const db::TxnPending p = db::TxnPending::decode(Bytes(value.begin(), value.end()));
      if (known.count({p.client, p.seq}) != 0) continue;
      orphans[{p.client, p.seq}].push_back(sh);
    }
  }

  for (Adoption& a : work) {
    const std::int64_t token = ++next_token_;
    adoptions_[token] = std::move(a);
    adopt_drive(token);
  }
  for (const auto& [cs, shards] : orphans) {
    ++adoption_orphans_;
    adopt_cancel_orphan(cs.first, cs.second, shards);
  }
  adopt_maybe_done();
}

void TxnCoordinator::adopt_drive(std::int64_t token) {
  Adoption& a = adoptions_[token];
  options_.tracer.emit(obs::EventKind::kTxnDecide,
                       static_cast<std::int64_t>(db::range_fingerprint(
                           pending_key(a.client, a.seq), "")),
                       a.commit ? 1 : 0, 0);
  if (a.commit) {
    // Re-assert the decision first (idempotent if the dead coordinator got
    // that far), preserving the decision-before-confirm invariant.
    db::Command dec;
    const std::string key = decision_key(a.client, a.seq);
    dec.ops.push_back(db::Op{db::OpType::kCheck, key, "", 0});
    dec.ops.push_back(db::Op{db::OpType::kPut, key, "C", 0});
    session(kAdopterSessionBase + a.xid, a.home)
        .submit(std::move(dec), [this, alive = alive_, token](const core::SessionReply& r) {
          if (!*alive) return;
          if (!r.committed && !r.check_aborted) {
            adopt_drive(token);
            return;
          }
          adopt_confirms(token);
        });
    return;
  }
  // Cancel leg: erase every surviving pending; the home's cancel (or a
  // standalone delete when the home pending is already gone) retires the
  // intent in the same action.
  a.outstanding = static_cast<int>(a.with_pending.size());
  const bool home_pending =
      std::find(a.with_pending.begin(), a.with_pending.end(), a.home) != a.with_pending.end();
  if (!home_pending) ++a.outstanding;
  const auto on_done = [this, alive = alive_,
                        token](const core::SessionReply& r,
                               const std::shared_ptr<std::function<void()>>& resubmit) {
    if (*alive && !r.committed) {
      (*resubmit)();
      return;
    }
    // Done retrying: the stored lambda captures its own shared_ptr to stay
    // alive across resubmits, so it must be cleared here or the cycle leaks.
    *resubmit = nullptr;
    if (!*alive) return;
    Adoption& a = adoptions_[token];
    if (--a.outstanding == 0) {
      ++stats_.adopted_cancelled;
      ++adoption_count_;
      adopt_done_one(token);
    }
  };
  for (const int sh : a.with_pending) {
    ++stats_.cancels;
    db::Command cmd = db::Command::txn_cancel(pending_key(a.client, a.seq));
    if (sh == a.home) {
      cmd.ops.push_back(db::Op{db::OpType::kDelete, intent_key(a.client, a.seq), "", 0});
    }
    auto submit = std::make_shared<std::function<void()>>();
    *submit = [this, token, sh, cmd, on_done, submit] {
      Adoption& a = adoptions_[token];
      session(kAdopterSessionBase + a.xid, sh)
          .submit(cmd, [on_done, submit](const core::SessionReply& r) { on_done(r, submit); });
    };
    (*submit)();
  }
  if (!home_pending) {
    db::Command cmd;
    cmd.ops.push_back(db::Op{db::OpType::kDelete, intent_key(a.client, a.seq), "", 0});
    auto submit = std::make_shared<std::function<void()>>();
    *submit = [this, token, cmd, on_done, submit] {
      Adoption& a = adoptions_[token];
      session(kAdopterSessionBase + a.xid, a.home)
          .submit(cmd, [on_done, submit](const core::SessionReply& r) { on_done(r, submit); });
    };
    (*submit)();
  }
}

void TxnCoordinator::adopt_confirms(std::int64_t token) {
  Adoption& a = adoptions_[token];
  a.outstanding = static_cast<int>(a.shards.size());
  for (std::size_t slot = 0; slot < a.shards.size(); ++slot) {
    adopt_confirm_shard(token, slot);
  }
}

void TxnCoordinator::adopt_confirm_shard(std::int64_t token, std::size_t slot) {
  Adoption& a = adoptions_[token];
  const int sh = a.shards[slot];
  ++stats_.confirms;
  session(kAdopterSessionBase + a.xid, sh)
      .submit(db::Command::txn_confirm(pending_key(a.client, a.seq)),
              [this, alive = alive_, token, slot](const core::SessionReply& r) {
                if (!*alive) return;
                auto it = adoptions_.find(token);
                if (it == adoptions_.end()) return;
                Adoption& a = it->second;
                if (r.committed) {
                  if (--a.outstanding == 0) adopt_cleanup(token);
                  return;
                }
                if (r.fenced) {
                  // Same fenced-confirm case as the live path: the range
                  // moved after the prepare. Cancel the stranded pending
                  // and re-drive the buffered ops through the router.
                  ++stats_.confirm_rerouted;
                  adopt_reroute(token, slot);
                  return;
                }
                adopt_confirm_shard(token, slot);
              });
}

void TxnCoordinator::adopt_reroute(std::int64_t token, std::size_t slot) {
  Adoption& a = adoptions_[token];
  const int sh = a.shards[slot];
  db::Command buffered;
  const auto it = a.buffered.find(sh);
  if (it != a.buffered.end()) buffered = it->second;
  const bool has_payload = !buffered.ops.empty();
  if (has_payload) ++a.outstanding;  // the confirm becomes cancel + reroute
  ++stats_.cancels;
  auto cancel = std::make_shared<std::function<void()>>();
  *cancel = [this, token, sh, cancel] {
    Adoption& a = adoptions_[token];
    session(kAdopterSessionBase + a.xid, sh)
        .submit(db::Command::txn_cancel(pending_key(a.client, a.seq)),
                [this, alive = alive_, token, cancel](const core::SessionReply& r) {
                  if (*alive && !r.committed) {
                    (*cancel)();
                    return;
                  }
                  *cancel = nullptr;  // break the retry lambda's self-reference cycle
                  if (!*alive) return;
                  Adoption& a = adoptions_[token];
                  if (--a.outstanding == 0) adopt_cleanup(token);
                });
  };
  (*cancel)();
  if (!has_payload) return;
  const std::int64_t rclient = kRerouteClientBase + a.xid * 64 + static_cast<std::int64_t>(slot);
  auto drive = std::make_shared<std::function<void()>>();
  *drive = [this, token, rclient, buffered, drive] {
    router_.submit(rclient, buffered,
                   [this, alive = alive_, token, drive](const shard::RouteReply& r) {
                     if (*alive && !r.committed) {
                       (*drive)();
                       return;
                     }
                     *drive = nullptr;  // break the retry lambda's self-reference cycle
                     if (!*alive) return;
                     Adoption& a = adoptions_[token];
                     if (--a.outstanding == 0) adopt_cleanup(token);
                   });
  };
  (*drive)();
}

void TxnCoordinator::adopt_cleanup(std::int64_t token) {
  Adoption& a = adoptions_[token];
  db::Command cmd;
  cmd.ops.push_back(db::Op{db::OpType::kDelete, intent_key(a.client, a.seq), "", 0});
  cmd.ops.push_back(db::Op{db::OpType::kDelete, decision_key(a.client, a.seq), "", 0});
  session(kAdopterSessionBase + a.xid, a.home)
      .submit(std::move(cmd), [this, alive = alive_, token](const core::SessionReply& r) {
        if (!*alive) return;
        if (!r.committed) {
          adopt_cleanup(token);
          return;
        }
        ++stats_.adopted_confirmed;
        ++adoption_count_;
        adopt_done_one(token);
      });
}

void TxnCoordinator::adopt_cancel_orphan(std::int64_t client, std::int64_t seq,
                                         const std::vector<int>& shards) {
  const std::int64_t xid = client * kXidStride + seq;
  auto remaining = std::make_shared<int>(static_cast<int>(shards.size()));
  for (const int sh : shards) {
    ++stats_.cancels;
    auto submit = std::make_shared<std::function<void()>>();
    *submit = [this, client, seq, xid, sh, remaining, submit] {
      session(kAdopterSessionBase + xid, sh)
          .submit(db::Command::txn_cancel(pending_key(client, seq)),
                  [this, alive = alive_, remaining, submit](const core::SessionReply& r) {
                    if (*alive && !r.committed) {
                      (*submit)();
                      return;
                    }
                    *submit = nullptr;  // break the retry lambda's self-reference cycle
                    if (!*alive) return;
                    if (--*remaining == 0) {
                      ++stats_.adopted_cancelled;
                      ++adoption_count_;
                      --adoption_orphans_;
                      adopt_maybe_done();
                    }
                  });
    };
    (*submit)();
  }
}

void TxnCoordinator::adopt_done_one(std::int64_t token) {
  adoptions_.erase(token);
  adopt_maybe_done();
}

void TxnCoordinator::adopt_maybe_done() {
  if (!adoptions_.empty() || adoption_orphans_ != 0 || !adoption_done_) return;
  auto done = std::move(adoption_done_);
  adoption_done_ = nullptr;
  done(adoption_count_);
}

}  // namespace tordb::txn
