// Deterministic in-memory database (paper §2.2 service model).
//
// "An action defines a transition from the current state of the database to
// the next state; the next state is completely determined by the current
// state and the action." Commands are small programs over a key-value
// state: writes, numeric adds, appends, timestamp-max writes, and checked
// (active/interactive) updates that apply only when a precondition holds —
// the mechanism the paper uses to mimic interactive transactions (§6).
//
// The database supports snapshot/restore (used for state transfer to a
// joining replica, §5.1) and a content digest used by tests to assert
// replica-state convergence.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/serde.h"

namespace tordb::db {

enum class OpType : std::uint8_t {
  kPut = 0,          ///< key := value
  kAdd = 1,          ///< key := num(key) + delta
  kAppend = 2,       ///< key := key . value
  kGet = 3,          ///< read key into the result
  kCheck = 4,        ///< abort the whole command unless key == value
  kTimestampPut = 5, ///< key := value only if ts > stored ts (last-writer-wins)
  kDelete = 6,       ///< erase key (absent key reads as "")
};

struct Op {
  OpType type = OpType::kPut;
  std::string key;
  std::string value;
  std::int64_t num = 0;  ///< delta for kAdd, timestamp for kTimestampPut

  friend bool operator==(const Op&, const Op&) = default;
};

/// One action's update and/or query program. Empty `ops` is a pure no-op.
struct Command {
  std::vector<Op> ops;

  void encode(BufWriter& w) const;
  static Command decode(BufReader& r);

  static Command put(std::string key, std::string value);
  static Command add(std::string key, std::int64_t delta);
  static Command append(std::string key, std::string value);
  static Command get(std::string key);
  static Command checked_put(std::string key, std::string expected, std::string value);
  static Command timestamp_put(std::string key, std::string value, std::int64_t ts);
  static Command del(std::string key);
};

struct ApplyResult {
  bool aborted = false;            ///< a kCheck precondition failed
  std::vector<std::string> reads;  ///< one entry per kGet, in program order
};

class Database {
 public:
  /// Apply a command deterministically. A failed kCheck aborts the whole
  /// command (no partial effects), mirroring a rolled-back transaction;
  /// every replica aborts identically (§6).
  ApplyResult apply(const Command& cmd);

  /// Read a single key ("" when absent) without counting as an action.
  std::string get(const std::string& key) const;

  /// Evaluate a command's reads and checks against the current state
  /// without mutating it (used for the §6 query-only fast path).
  ApplyResult peek(const Command& cmd) const;

  std::int64_t version() const { return version_; }
  std::size_t size() const { return data_.size(); }

  /// Serialize full state (used for state transfer to joining replicas).
  Bytes snapshot() const;
  void restore(const Bytes& snap);

  /// Order-independent content hash; equal digests <=> equal contents.
  std::uint64_t digest() const;

  Database clone() const { return *this; }

 private:
  struct Cell {
    std::string value;
    std::int64_t ts = -1;  ///< for kTimestampPut cells
  };
  std::map<std::string, Cell> data_;
  std::int64_t version_ = 0;
};

}  // namespace tordb::db
