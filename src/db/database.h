// Deterministic in-memory database (paper §2.2 service model).
//
// "An action defines a transition from the current state of the database to
// the next state; the next state is completely determined by the current
// state and the action." Commands are small programs over a key-value
// state: writes, numeric adds, appends, timestamp-max writes, and checked
// (active/interactive) updates that apply only when a precondition holds —
// the mechanism the paper uses to mimic interactive transactions (§6).
//
// The database supports snapshot/restore (used for state transfer to a
// joining replica, §5.1) and a content digest used by tests to assert
// replica-state convergence.
//
// Layout (DESIGN.md §11): keys are interned to dense per-node ids
// (util::KeyInterner) and rows live in a flat id-indexed cell table, so the
// apply hot path pays one hash probe per op instead of a red-black-tree
// walk with string compares. Sorted iteration — needed only by the cold
// range ops, snapshot/restore and digest() — comes from a lazily-merged
// ordered index of ids; digest() and snapshot() stay byte-identical to the
// old std::map implementation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/key_interner.h"
#include "util/serde.h"

namespace tordb::db {

enum class OpType : std::uint8_t {
  kPut = 0,          ///< key := value
  kAdd = 1,          ///< key := num(key) + delta
  kAppend = 2,       ///< key := key . value
  kGet = 3,          ///< read key into the result
  kCheck = 4,        ///< abort the whole command unless key == value
  kTimestampPut = 5, ///< key := value only if ts > stored ts (last-writer-wins)
  kDelete = 6,       ///< erase key (absent key reads as "")
  // Shard rebalancing (src/shard rebalancer; DESIGN.md §9). Both ride the
  // green order like any other op, so every replica of a group fences and
  // installs at exactly the same position in its history.
  kFenceRange = 7,   ///< fence [key, value): subsequent updates there abort
  kInstallRange = 8, ///< install a RangeSnapshot (value = encoded blob); clears the fence
  kUnfenceRange = 9, ///< lift the fence on [key, value): an abandoned move's rollback
  // Cross-shard prepared-check transactions (src/txn; DESIGN.md §13). All
  // three ride a shard's green order like any other op, so every replica of
  // the group takes the same prepare/confirm/cancel transition at the same
  // green position. The pending update lives in an ordinary reserved-key
  // cell, so snapshot/restore, state transfer and digest carry it for free.
  kTxnPrepare = 10,  ///< key = reserved pending cell, value = encoded TxnPending
  kTxnConfirm = 11,  ///< apply the pending's buffered update, erase the cell
  kTxnCancel = 12,   ///< erase the pending cell without applying
};

struct Op {
  OpType type = OpType::kPut;
  std::string key;
  std::string value;
  std::int64_t num = 0;  ///< delta for kAdd, timestamp for kTimestampPut

  friend bool operator==(const Op&, const Op&) = default;
};

struct RangeSnapshot;  // defined below
struct TxnPending;     // defined below

/// One action's update and/or query program. Empty `ops` is a pure no-op.
struct Command {
  std::vector<Op> ops;

  void encode(BufWriter& w) const;
  static Command decode(BufReader& r);

  static Command put(std::string key, std::string value);
  static Command add(std::string key, std::int64_t delta);
  static Command append(std::string key, std::string value);
  static Command get(std::string key);
  static Command checked_put(std::string key, std::string expected, std::string value);
  static Command timestamp_put(std::string key, std::string value, std::int64_t ts);
  static Command del(std::string key);
  static Command fence_range(std::string lo, std::string hi);
  static Command install_range(const RangeSnapshot& snap);
  static Command unfence_range(std::string lo, std::string hi);
  static Command txn_prepare(std::string pending_key, const TxnPending& pending);
  static Command txn_confirm(std::string pending_key);
  static Command txn_cancel(std::string pending_key);
};

/// One shard's slice of a cross-shard prepared-check transaction, buffered
/// at a reserved `__txnp/` cell between the prepare and the decision
/// (DESIGN.md §13). The header (client, seq, home) is enough for a recovery
/// pass to find the coordinator's intent record and drive the transaction
/// to the same confirm-xor-cancel outcome on every shard.
struct TxnPending {
  std::int64_t client = 0;
  std::int64_t seq = 0;
  int home = 0;     ///< shard holding the coordinator's `__txn/` intent record
  Command update;   ///< the buffered non-check ops owned by this shard

  Bytes encode() const;
  static TxnPending decode(const Bytes& b);
};

/// Half-open key range [lo, hi); hi == "" means +infinity (lo == "" already
/// means -infinity since "" compares below every key). Keys starting with
/// the reserved "__" prefix (session guards, cross-shard markers) are
/// infrastructure pinned to their group and are never fenced or moved.
inline bool key_in_range(std::string_view key, std::string_view lo, std::string_view hi) {
  return key >= lo && (hi.empty() || key < hi);
}

/// Stable fingerprint of a key range, shared by the database (trace events),
/// the rebalancer, and the safety checker's cross-shard ownership tracking.
std::uint64_t range_fingerprint(std::string_view lo, std::string_view hi);

/// One row of a range extraction: the full cell, timestamp included, so an
/// install reproduces the source's state bit-for-bit.
struct RangeRow {
  std::string key;
  std::string value;
  std::int64_t ts = -1;
};

/// The unit of shard rebalancing state transfer: every row of [lo, hi) at
/// the source's fence point, serialized into a kInstallRange op.
struct RangeSnapshot {
  std::string lo;
  std::string hi;
  std::vector<RangeRow> rows;

  Bytes encode() const;
  static RangeSnapshot decode(const Bytes& b);
};

/// Range bookkeeping change observed while applying a command — the engine
/// turns these into kRangeFence / kRangeInstall / kRangeWrite trace events
/// stamped with the green position. Empty unless rebalancing is in play.
struct RangeEvent {
  enum class Kind : std::uint8_t { kFence, kInstall, kWrite, kUnfence };
  Kind kind = Kind::kWrite;
  std::uint64_t range = 0;  ///< range_fingerprint(lo, hi)
  std::int64_t rows = 0;    ///< rows installed (kInstall only)
};

/// Transaction-state transition observed while applying a command — the
/// engine turns these into kTxnPrepare / kTxnConfirm / kTxnCancel trace
/// events stamped with the green position, which invariant 9 consumes.
/// Emitted only on real transitions: a confirm or cancel of an
/// already-resolved pending is an idempotent no-op with no event.
struct TxnEvent {
  enum class Kind : std::uint8_t { kPrepare, kConfirm, kCancel };
  Kind kind = Kind::kPrepare;
  std::uint64_t txn = 0;  ///< range_fingerprint(pending key, "")
};

struct ApplyResult {
  bool aborted = false;            ///< a kCheck precondition failed, or fenced
  bool fenced = false;             ///< aborted because an update hit a fenced range
  std::vector<std::string> reads;  ///< one entry per kGet, in program order
  std::vector<RangeEvent> range_events;  ///< only populated once ranges are tracked
  std::vector<TxnEvent> txn_events;      ///< only populated by kTxn* ops
};

/// Flat-table accounting, sampled into the metrics registry by the cluster
/// harnesses (`db.intern.{keys,bytes}`, `db.table.{slots,rehashes}`).
struct DbStats {
  std::uint64_t interned_keys = 0;   ///< distinct keys ever seen
  std::uint64_t interned_bytes = 0;  ///< bytes held by the interner
  std::uint64_t table_slots = 0;     ///< open-addressing slots allocated
  std::uint64_t table_rehashes = 0;  ///< table growth events
};

class Database {
 public:
  /// Apply a command deterministically. A failed kCheck aborts the whole
  /// command (no partial effects), mirroring a rolled-back transaction;
  /// every replica aborts identically (§6).
  ApplyResult apply(const Command& cmd);

  /// Apply two commands as one atomic action — an interactive action's query
  /// program followed by its update program — without materializing their
  /// concatenation. Exactly equivalent to applying a command holding
  /// query.ops + update.ops: every kCheck across both programs is evaluated
  /// first, then fence guards, then the ops run in program order.
  ApplyResult apply(const Command& query, const Command& update);

  /// Read a single key ("" when absent) without counting as an action.
  std::string get(const std::string& key) const;

  /// Evaluate a command's reads and checks against the current state
  /// without mutating it (used for the §6 query-only fast path).
  ApplyResult peek(const Command& cmd) const;

  std::int64_t version() const { return version_; }
  std::size_t size() const { return live_; }
  DbStats stats() const;

  /// Serialize full state (used for state transfer to joining replicas).
  Bytes snapshot() const;
  void restore(const Bytes& snap);

  /// Order-independent content hash; equal digests <=> equal contents.
  /// Tracked ranges (fences/installs) are folded in, so replicas of a group
  /// agree on fence state exactly as they agree on rows.
  std::uint64_t digest() const;

  Database clone() const { return *this; }

  // --- shard rebalancing (DESIGN.md §9) --------------------------------------

  /// True when [lo, hi) is currently fenced (a green kFenceRange with no
  /// later kInstallRange for the same bounds).
  bool range_fenced(const std::string& lo, const std::string& hi) const;

  /// Extract every row of [lo, hi) — the range snapshot a move transfers.
  /// Reserved "__" keys are infrastructure and are skipped.
  RangeSnapshot extract_range(const std::string& lo, const std::string& hi) const;

  /// Every live (key, value) whose key starts with `prefix`, in key order.
  /// Unlike extract_range this INCLUDES reserved "__" keys — it is the
  /// recovery scan a replacement transaction coordinator runs over `__txn/`
  /// intent records and `__txnp/` pending cells (DESIGN.md §13).
  std::vector<std::pair<std::string, std::string>> scan_prefix(const std::string& prefix) const;

  /// Number of ranges this database tracks (fenced or installed).
  std::size_t tracked_ranges() const { return ranges_.size(); }

 private:
  /// One row, indexed by the key's dense id. Ids are assigned by the
  /// per-database interner in first-touch order, so `cells_` is a flat
  /// array — no hashing or string compares past the one intern per op.
  /// Deletion marks the cell dead (the id, like the interned key, is
  /// permanent); a dead cell reads as absent everywhere.
  struct Cell {
    std::string value;
    std::int64_t ts = -1;  ///< for kTimestampPut cells
    bool live = false;
  };
  /// A range this replica has seen a fence or install for, keyed by bounds.
  /// Kept tiny (one entry per rebalanced range), scanned only on updates
  /// while non-empty — the common no-rebalance case pays one empty() test.
  /// Entries are pairwise disjoint: every fence/install/unfence first carves
  /// its bounds out of any overlapping entry (carve_tracked), so range_of
  /// is unambiguous even after splits re-draw directory bounds mid-history.
  struct TrackedRange {
    std::string lo;
    std::string hi;
    bool fenced = false;
  };
  const TrackedRange* range_of(std::string_view key) const;
  void carve_tracked(std::string_view lo, std::string_view hi);
  /// True when any mutating non-reserved op of `cmd` lands in a fenced
  /// range — the fence pre-scan for a buffered transaction update, whose
  /// ops are hidden inside a kTxnPrepare blob / pending cell.
  bool update_hits_fence(const Command& cmd) const;
  /// Apply a pending transaction's buffered update during kTxnConfirm.
  /// Mutating ops only (checks were evaluated at prepare time); interns on
  /// the fly and surfaces kWrite range events exactly like the main loop.
  void apply_buffered(const Command& cmd, ApplyResult& res);
  void erase_cell(util::KeyId id);
  /// get() without the return-by-value copy, for the apply hot path.
  const std::string& value_of(std::string_view key) const;
  const std::string& value_at(util::KeyId id) const;
  /// The live cell for `id`, reviving a dead/new cell to the default state
  /// (empty value, ts = -1) exactly as std::map::operator[] used to.
  Cell& upsert(util::KeyId id);
  /// Bring `ordered_` up to date: every interned id, sorted by key. New ids
  /// since the last call are sorted and merged in; deletes never invalidate
  /// it (iteration skips dead cells), so steady-state workloads over a
  /// fixed key pool keep it valid indefinitely. Cold ops only — the hot
  /// apply path never orders.
  void ensure_ordered() const;
  /// First position in `ordered_` whose key is >= `lo`.
  std::size_t ordered_lower_bound(std::string_view lo) const;

  util::KeyInterner keys_;
  std::vector<Cell> cells_;  ///< indexed by KeyId; dense, never shrinks
  std::size_t live_ = 0;     ///< cells with live == true
  /// Lazily-maintained ordered index of (key, id) — the replacement for the
  /// old std::map's sorted iteration, consulted only by the cold range ops
  /// (fence/install/unfence erase scans, extract_range), snapshot/restore
  /// and digest() (which must iterate in sorted key order byte-identically).
  mutable std::vector<util::KeyId> ordered_;
  std::vector<TrackedRange> ranges_;
  std::int64_t version_ = 0;
};

}  // namespace tordb::db
