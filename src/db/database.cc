#include "db/database.h"

#include <charconv>

namespace tordb::db {

namespace {
std::int64_t to_num(const std::string& s) {
  std::int64_t v = 0;
  std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}
}  // namespace

void Command::encode(BufWriter& w) const {
  w.vec(ops, [](BufWriter& w2, const Op& op) {
    w2.u8(static_cast<std::uint8_t>(op.type));
    w2.str(op.key);
    w2.str(op.value);
    w2.i64(op.num);
  });
}

Command Command::decode(BufReader& r) {
  Command c;
  c.ops = r.vec<Op>([](BufReader& r2) {
    Op op;
    op.type = static_cast<OpType>(r2.u8());
    op.key = r2.str();
    op.value = r2.str();
    op.num = r2.i64();
    return op;
  });
  return c;
}

Command Command::put(std::string key, std::string value) {
  return Command{{Op{OpType::kPut, std::move(key), std::move(value), 0}}};
}
Command Command::add(std::string key, std::int64_t delta) {
  return Command{{Op{OpType::kAdd, std::move(key), "", delta}}};
}
Command Command::append(std::string key, std::string value) {
  return Command{{Op{OpType::kAppend, std::move(key), std::move(value), 0}}};
}
Command Command::get(std::string key) {
  return Command{{Op{OpType::kGet, std::move(key), "", 0}}};
}
Command Command::checked_put(std::string key, std::string expected, std::string value) {
  Command c;
  c.ops.push_back(Op{OpType::kCheck, key, std::move(expected), 0});
  c.ops.push_back(Op{OpType::kPut, std::move(key), std::move(value), 0});
  return c;
}
Command Command::timestamp_put(std::string key, std::string value, std::int64_t ts) {
  return Command{{Op{OpType::kTimestampPut, std::move(key), std::move(value), ts}}};
}

Command Command::del(std::string key) {
  return Command{{Op{OpType::kDelete, std::move(key), "", 0}}};
}

ApplyResult Database::apply(const Command& cmd) {
  ApplyResult res;
  // Evaluate every precondition against the current state first, so that a
  // failed check aborts the whole command with no partial effects — every
  // replica applies the same deterministic rule to the same state and thus
  // "aborts" identically (paper §6, interactive actions).
  for (const Op& op : cmd.ops) {
    if (op.type == OpType::kCheck && get(op.key) != op.value) {
      res.aborted = true;
      return res;
    }
  }

  for (const Op& op : cmd.ops) {
    switch (op.type) {
      case OpType::kPut:
        data_[op.key].value = op.value;
        break;
      case OpType::kAdd:
        data_[op.key].value = std::to_string(to_num(get(op.key)) + op.num);
        break;
      case OpType::kAppend:
        data_[op.key].value += op.value;
        break;
      case OpType::kGet:
        res.reads.push_back(get(op.key));
        break;
      case OpType::kCheck:
        break;  // evaluated above
      case OpType::kTimestampPut: {
        Cell& cell = data_[op.key];
        if (op.num > cell.ts) {
          cell.ts = op.num;
          cell.value = op.value;
        }
        break;
      }
      case OpType::kDelete:
        data_.erase(op.key);
        break;
    }
  }
  ++version_;
  return res;
}

ApplyResult Database::peek(const Command& cmd) const {
  ApplyResult res;
  for (const Op& op : cmd.ops) {
    if (op.type == OpType::kCheck && get(op.key) != op.value) {
      res.aborted = true;
      return res;
    }
  }
  for (const Op& op : cmd.ops) {
    if (op.type == OpType::kGet) res.reads.push_back(get(op.key));
  }
  return res;
}

std::string Database::get(const std::string& key) const {
  auto it = data_.find(key);
  return it == data_.end() ? "" : it->second.value;
}

Bytes Database::snapshot() const {
  BufWriter w;
  w.i64(version_);
  w.u32(static_cast<std::uint32_t>(data_.size()));
  for (const auto& [k, cell] : data_) {
    w.str(k);
    w.str(cell.value);
    w.i64(cell.ts);
  }
  return w.take();
}

void Database::restore(const Bytes& snap) {
  BufReader r(snap);
  data_.clear();
  version_ = r.i64();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string k = r.str();
    Cell cell;
    cell.value = r.str();
    cell.ts = r.i64();
    data_[std::move(k)] = std::move(cell);
  }
}

std::uint64_t Database::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;
    h *= 0x100000001b3ULL;
  };
  for (const auto& [k, cell] : data_) {
    mix(k);
    mix(cell.value);
    h ^= static_cast<std::uint64_t>(cell.ts) * 0x9e3779b97f4a7c15ULL;
  }
  return h;
}

}  // namespace tordb::db
