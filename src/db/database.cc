#include "db/database.h"

#include <algorithm>
#include <charconv>

namespace tordb::db {

namespace {
std::int64_t to_num(const std::string& s) {
  std::int64_t v = 0;
  std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}

/// Decimal-format `v` into `out`, reusing its capacity (hot path: kAdd
/// rewrites a counter cell per op; std::to_string would allocate a fresh
/// string every time).
void assign_num(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.assign(buf, res.ptr);
}

bool mutates(OpType t) {
  switch (t) {
    case OpType::kPut:
    case OpType::kAdd:
    case OpType::kAppend:
    case OpType::kTimestampPut:
    case OpType::kDelete:
      return true;
    default:
      return false;
  }
}

/// Reserved infrastructure keys (session guards `__session/`, cross-shard
/// markers `__xs/`, transaction intent/pending/decision records `__txn/`,
/// `__txnp/`, `__txnd/`) are pinned to their group: never fenced, never
/// moved.
bool reserved_key(std::string_view key) { return key.size() >= 2 && key[0] == '_' && key[1] == '_'; }
}  // namespace

std::uint64_t range_fingerprint(std::string_view lo, std::string_view hi) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::string_view s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xff;
    h *= 1099511628211ull;
  };
  mix(lo);
  mix(hi);
  return h;
}

Bytes RangeSnapshot::encode() const {
  BufWriter w;
  w.str(lo);
  w.str(hi);
  w.vec(rows, [](BufWriter& w2, const RangeRow& r) {
    w2.str(r.key);
    w2.str(r.value);
    w2.i64(r.ts);
  });
  return w.take();
}

RangeSnapshot RangeSnapshot::decode(const Bytes& b) {
  BufReader r(b);
  RangeSnapshot s;
  s.lo = r.str();
  s.hi = r.str();
  s.rows = r.vec<RangeRow>([](BufReader& r2) {
    RangeRow row;
    row.key = r2.str();
    row.value = r2.str();
    row.ts = r2.i64();
    return row;
  });
  return s;
}

Bytes TxnPending::encode() const {
  BufWriter w;
  w.i64(client);
  w.i64(seq);
  w.u32(static_cast<std::uint32_t>(home));
  update.encode(w);
  return w.take();
}

TxnPending TxnPending::decode(const Bytes& b) {
  BufReader r(b);
  TxnPending p;
  p.client = r.i64();
  p.seq = r.i64();
  p.home = static_cast<int>(r.u32());
  p.update = Command::decode(r);
  return p;
}

void Command::encode(BufWriter& w) const {
  w.vec(ops, [](BufWriter& w2, const Op& op) {
    w2.u8(static_cast<std::uint8_t>(op.type));
    w2.str(op.key);
    w2.str(op.value);
    w2.i64(op.num);
  });
}

Command Command::decode(BufReader& r) {
  Command c;
  c.ops = r.vec<Op>([](BufReader& r2) {
    Op op;
    op.type = static_cast<OpType>(r2.u8());
    op.key = r2.str();
    op.value = r2.str();
    op.num = r2.i64();
    return op;
  });
  return c;
}

Command Command::put(std::string key, std::string value) {
  return Command{{Op{OpType::kPut, std::move(key), std::move(value), 0}}};
}
Command Command::add(std::string key, std::int64_t delta) {
  return Command{{Op{OpType::kAdd, std::move(key), "", delta}}};
}
Command Command::append(std::string key, std::string value) {
  return Command{{Op{OpType::kAppend, std::move(key), std::move(value), 0}}};
}
Command Command::get(std::string key) {
  return Command{{Op{OpType::kGet, std::move(key), "", 0}}};
}
Command Command::checked_put(std::string key, std::string expected, std::string value) {
  Command c;
  c.ops.push_back(Op{OpType::kCheck, key, std::move(expected), 0});
  c.ops.push_back(Op{OpType::kPut, std::move(key), std::move(value), 0});
  return c;
}
Command Command::timestamp_put(std::string key, std::string value, std::int64_t ts) {
  return Command{{Op{OpType::kTimestampPut, std::move(key), std::move(value), ts}}};
}

Command Command::del(std::string key) {
  return Command{{Op{OpType::kDelete, std::move(key), "", 0}}};
}

Command Command::fence_range(std::string lo, std::string hi) {
  return Command{{Op{OpType::kFenceRange, std::move(lo), std::move(hi), 0}}};
}

Command Command::install_range(const RangeSnapshot& snap) {
  const Bytes blob = snap.encode();
  return Command{{Op{OpType::kInstallRange, snap.lo,
                     std::string(blob.begin(), blob.end()), 0}}};
}

Command Command::unfence_range(std::string lo, std::string hi) {
  return Command{{Op{OpType::kUnfenceRange, std::move(lo), std::move(hi), 0}}};
}

Command Command::txn_prepare(std::string pending_key, const TxnPending& pending) {
  const Bytes blob = pending.encode();
  return Command{{Op{OpType::kTxnPrepare, std::move(pending_key),
                     std::string(blob.begin(), blob.end()), 0}}};
}

Command Command::txn_confirm(std::string pending_key) {
  return Command{{Op{OpType::kTxnConfirm, std::move(pending_key), "", 0}}};
}

Command Command::txn_cancel(std::string pending_key) {
  return Command{{Op{OpType::kTxnCancel, std::move(pending_key), "", 0}}};
}

const Database::TrackedRange* Database::range_of(std::string_view key) const {
  for (const TrackedRange& r : ranges_) {
    if (key_in_range(key, r.lo, r.hi)) return &r;
  }
  return nullptr;
}

// Remove [lo, hi) from every tracked entry, splitting partially-overlapped
// entries into their remainders (which keep their fenced flag). Keeps the
// entries pairwise disjoint so range_of has exactly one answer per key —
// without this, a stale wide entry from an earlier move shadows a narrower
// fence/install after the directory re-draws bounds (split, move-back).
void Database::carve_tracked(std::string_view lo, std::string_view hi) {
  std::vector<TrackedRange> next;
  next.reserve(ranges_.size() + 1);
  for (TrackedRange& r : ranges_) {
    const bool overlaps =
        (hi.empty() || r.lo < hi) && (r.hi.empty() || lo < std::string_view(r.hi));
    if (!overlaps) {
      next.push_back(std::move(r));
      continue;
    }
    if (std::string_view(r.lo) < lo) next.push_back(TrackedRange{r.lo, std::string(lo), r.fenced});
    if (!hi.empty() && (r.hi.empty() || hi < std::string_view(r.hi))) {
      next.push_back(TrackedRange{std::string(hi), r.hi, r.fenced});
    }
  }
  ranges_ = std::move(next);
}

ApplyResult Database::apply(const Command& cmd) {
  static const Command kNoUpdate;
  return apply(cmd, kNoUpdate);
}

ApplyResult Database::apply(const Command& query, const Command& update) {
  const std::vector<Op>* const lists[2] = {&query.ops, &update.ops};
  ApplyResult res;
  // Intern every row key up front: one hash probe per op, after which the
  // check, fence and apply passes below run on dense ids against the flat
  // cell table. Interning is unconditional — aborted commands leave ids
  // behind but no live cells, and since every replica applies the same
  // command sequence the interner stays deterministic per node. Range ops
  // carry bounds, not row keys, and are not interned.
  //
  // Fixed-size stack array for the common case (a session-guarded command
  // is 3 ops); heap fallback for bulk commands.
  constexpr std::size_t kInlineOps = 16;
  util::KeyId inline_ids[kInlineOps];
  std::vector<util::KeyId> heap_ids;
  const std::size_t total_ops = query.ops.size() + update.ops.size();
  util::KeyId* ids = inline_ids;
  if (total_ops > kInlineOps) {
    heap_ids.resize(total_ops);
    ids = heap_ids.data();
  }
  {
    std::size_t n = 0;
    for (const auto* ops : lists) {
      for (const Op& op : *ops) {
        const bool row_op = op.type != OpType::kFenceRange &&
                            op.type != OpType::kInstallRange &&
                            op.type != OpType::kUnfenceRange;
        ids[n++] = row_op ? keys_.intern(op.key) : util::kNoKeyId;
      }
    }
  }
  if (keys_.size() > cells_.size()) cells_.resize(keys_.size());

  // Evaluate every precondition against the current state first, so that a
  // failed check aborts the whole command with no partial effects — every
  // replica applies the same deterministic rule to the same state and thus
  // "aborts" identically (paper §6, interactive actions). Checks are
  // evaluated before fences so a duplicate session retry reads as a plain
  // guard abort, which is what exactly-once resolution relies on.
  {
    std::size_t n = 0;
    for (const auto* ops : lists) {
      for (const Op& op : *ops) {
        if (op.type == OpType::kCheck && value_at(ids[n]) != op.value) {
          res.aborted = true;
          return res;
        }
        ++n;
      }
    }
  }
  if (!ranges_.empty()) {
    std::size_t n = 0;
    for (const auto* ops : lists) {
      for (const Op& op : *ops) {
        const util::KeyId id = ids[n++];
        if (mutates(op.type) && !reserved_key(op.key)) {
          const TrackedRange* r = range_of(op.key);
          if (r != nullptr && r->fenced) {
            res.aborted = true;
            res.fenced = true;
            return res;
          }
        } else if (op.type == OpType::kTxnPrepare || op.type == OpType::kTxnConfirm) {
          // A buffered transaction update must respect fences like any plain
          // write: decode the blob (the op's own value for a prepare, the
          // stored pending cell for a confirm) and pre-scan its ops. The
          // fenced abort has no effects, so the coordinator can cancel the
          // stranded prepare and re-route the slice to the range's new owner.
          const std::string& blob = op.type == OpType::kTxnPrepare ? op.value : value_at(id);
          if (!blob.empty() &&
              update_hits_fence(TxnPending::decode(Bytes(blob.begin(), blob.end())).update)) {
            res.aborted = true;
            res.fenced = true;
            return res;
          }
        }
      }
    }
  }

  std::size_t op_index = 0;
  for (const auto* op_list : lists) {
  for (const Op& op : *op_list) {
    const util::KeyId id = ids[op_index++];
    switch (op.type) {
      case OpType::kPut:
        upsert(id).value = op.value;
        break;
      case OpType::kAdd: {
        const std::int64_t cur = to_num(value_at(id));
        assign_num(upsert(id).value, cur + op.num);
        break;
      }
      case OpType::kAppend:
        upsert(id).value += op.value;
        break;
      case OpType::kGet:
        res.reads.push_back(value_at(id));
        break;
      case OpType::kCheck:
        break;  // evaluated above
      case OpType::kTimestampPut: {
        Cell& cell = upsert(id);
        if (op.num > cell.ts) {
          cell.ts = op.num;
          cell.value = op.value;
        }
        break;
      }
      case OpType::kDelete:
        erase_cell(id);
        break;
      case OpType::kFenceRange: {
        carve_tracked(op.key, op.value);
        ranges_.push_back(TrackedRange{op.key, op.value, true});
        res.range_events.push_back(
            RangeEvent{RangeEvent::Kind::kFence, range_fingerprint(op.key, op.value), 0});
        break;
      }
      case OpType::kInstallRange: {
        const RangeSnapshot snap =
            RangeSnapshot::decode(Bytes(op.value.begin(), op.value.end()));
        // The install must reproduce the source range exactly: clear any
        // rows this replica still holds in [lo, hi) (a former owner's copy
        // — keys deleted at the current owner must not resurrect), then
        // adopt the snapshot. Reserved "__" keys are pinned infrastructure.
        ensure_ordered();
        for (std::size_t i = ordered_lower_bound(snap.lo); i < ordered_.size(); ++i) {
          const std::string_view key = keys_.key(ordered_[i]);
          if (!snap.hi.empty() && key >= std::string_view(snap.hi)) break;
          Cell& cell = cells_[ordered_[i]];
          if (!cell.live || reserved_key(key)) continue;
          cell.live = false;
          cell.value.clear();
          cell.value.shrink_to_fit();
          cell.ts = -1;
          --live_;
        }
        carve_tracked(snap.lo, snap.hi);
        ranges_.push_back(TrackedRange{snap.lo, snap.hi, false});
        for (const RangeRow& row : snap.rows) {
          Cell& cell = upsert(keys_.intern(row.key));
          cell.value = row.value;
          cell.ts = row.ts;
        }
        res.range_events.push_back(RangeEvent{RangeEvent::Kind::kInstall,
                                              range_fingerprint(snap.lo, snap.hi),
                                              static_cast<std::int64_t>(snap.rows.size())});
        break;
      }
      case OpType::kUnfenceRange: {
        // Rollback of an abandoned move: drop the fence (and any tracked
        // remainder) so the source — still the directory's owner — accepts
        // user updates to the range again.
        carve_tracked(op.key, op.value);
        res.range_events.push_back(RangeEvent{RangeEvent::Kind::kUnfence,
                                              range_fingerprint(op.key, op.value), 0});
        break;
      }
      case OpType::kTxnPrepare: {
        // Plant the buffered update in the reserved pending cell. A
        // session-duplicate re-prepare overwrites with the same bytes —
        // identical state, but still a fresh transition event (the replay
        // dedup happens positionally in the checker).
        upsert(id).value = op.value;
        res.txn_events.push_back(
            TxnEvent{TxnEvent::Kind::kPrepare, range_fingerprint(op.key, "")});
        break;
      }
      case OpType::kTxnConfirm: {
        // Copy, not reference: applying the buffered ops below may grow the
        // cell table and invalidate cell storage.
        const std::string pending = value_at(id);
        if (pending.empty()) break;  // already confirmed or cancelled: idempotent
        erase_cell(id);              // erase first; buffered ops cannot resurrect it
        apply_buffered(TxnPending::decode(Bytes(pending.begin(), pending.end())).update, res);
        res.txn_events.push_back(
            TxnEvent{TxnEvent::Kind::kConfirm, range_fingerprint(op.key, "")});
        break;
      }
      case OpType::kTxnCancel: {
        if (value_at(id).empty()) break;  // already resolved: idempotent
        erase_cell(id);
        res.txn_events.push_back(
            TxnEvent{TxnEvent::Kind::kCancel, range_fingerprint(op.key, "")});
        break;
      }
    }
    // Surface green-applied user writes into tracked ranges so the checker
    // can assert single-shard ownership; deduped per command.
    if (!ranges_.empty() && mutates(op.type) && !reserved_key(op.key)) {
      if (const TrackedRange* r = range_of(op.key)) {
        const std::uint64_t h = range_fingerprint(r->lo, r->hi);
        bool seen = false;
        for (const RangeEvent& e : res.range_events) {
          seen = seen || (e.kind == RangeEvent::Kind::kWrite && e.range == h);
        }
        if (!seen) res.range_events.push_back(RangeEvent{RangeEvent::Kind::kWrite, h, 0});
      }
    }
  }
  }
  ++version_;
  return res;
}

ApplyResult Database::peek(const Command& cmd) const {
  ApplyResult res;
  for (const Op& op : cmd.ops) {
    if (op.type == OpType::kCheck && value_of(op.key) != op.value) {
      res.aborted = true;
      return res;
    }
  }
  for (const Op& op : cmd.ops) {
    if (op.type == OpType::kGet) res.reads.push_back(value_of(op.key));
  }
  return res;
}

std::string Database::get(const std::string& key) const { return value_of(key); }

const std::string& Database::value_of(std::string_view key) const {
  return value_at(keys_.find(key));
}

const std::string& Database::value_at(util::KeyId id) const {
  static const std::string kEmpty;
  if (id == util::kNoKeyId || id >= cells_.size() || !cells_[id].live) return kEmpty;
  return cells_[id].value;
}

void Database::erase_cell(util::KeyId id) {
  if (id == util::kNoKeyId || id >= cells_.size()) return;
  Cell& cell = cells_[id];
  if (!cell.live) return;
  cell.live = false;
  cell.value.clear();
  cell.value.shrink_to_fit();
  cell.ts = -1;
  --live_;
}

bool Database::update_hits_fence(const Command& cmd) const {
  for (const Op& op : cmd.ops) {
    if (!mutates(op.type) || reserved_key(op.key)) continue;
    const TrackedRange* r = range_of(op.key);
    if (r != nullptr && r->fenced) return true;
  }
  return false;
}

void Database::apply_buffered(const Command& cmd, ApplyResult& res) {
  for (const Op& op : cmd.ops) {
    const util::KeyId id = keys_.intern(op.key);
    switch (op.type) {
      case OpType::kPut:
        upsert(id).value = op.value;
        break;
      case OpType::kAdd: {
        const std::int64_t cur = to_num(value_at(id));
        assign_num(upsert(id).value, cur + op.num);
        break;
      }
      case OpType::kAppend:
        upsert(id).value += op.value;
        break;
      case OpType::kTimestampPut: {
        Cell& cell = upsert(id);
        if (op.num > cell.ts) {
          cell.ts = op.num;
          cell.value = op.value;
        }
        break;
      }
      case OpType::kDelete:
        erase_cell(id);
        break;
      default:
        break;  // checks were consumed at prepare time; reads/range/txn ops are never buffered
    }
    // Same kWrite surfacing as the main apply loop: a confirmed buffered
    // write into a tracked range is a green-applied user write the checker's
    // ownership invariant must see.
    if (!ranges_.empty() && mutates(op.type) && !reserved_key(op.key)) {
      if (const TrackedRange* r = range_of(op.key)) {
        const std::uint64_t h = range_fingerprint(r->lo, r->hi);
        bool seen = false;
        for (const RangeEvent& e : res.range_events) {
          seen = seen || (e.kind == RangeEvent::Kind::kWrite && e.range == h);
        }
        if (!seen) res.range_events.push_back(RangeEvent{RangeEvent::Kind::kWrite, h, 0});
      }
    }
  }
}

Database::Cell& Database::upsert(util::KeyId id) {
  if (id >= cells_.size()) cells_.resize(id + 1);
  Cell& cell = cells_[id];
  if (!cell.live) {
    cell.live = true;
    cell.value.clear();
    cell.ts = -1;
    ++live_;
  }
  return cell;
}

void Database::ensure_ordered() const {
  if (ordered_.size() == keys_.size()) return;
  const std::size_t merged = ordered_.size();
  ordered_.reserve(keys_.size());
  for (util::KeyId id = static_cast<util::KeyId>(merged); id < keys_.size(); ++id) {
    ordered_.push_back(id);
  }
  const auto by_key = [this](util::KeyId a, util::KeyId b) {
    return keys_.key(a) < keys_.key(b);
  };
  std::sort(ordered_.begin() + static_cast<std::ptrdiff_t>(merged), ordered_.end(), by_key);
  std::inplace_merge(ordered_.begin(), ordered_.begin() + static_cast<std::ptrdiff_t>(merged),
                     ordered_.end(), by_key);
}

std::size_t Database::ordered_lower_bound(std::string_view lo) const {
  const auto it = std::lower_bound(
      ordered_.begin(), ordered_.end(), lo,
      [this](util::KeyId id, std::string_view bound) { return keys_.key(id) < bound; });
  return static_cast<std::size_t>(it - ordered_.begin());
}

DbStats Database::stats() const {
  DbStats s;
  s.interned_keys = keys_.size();
  s.interned_bytes = keys_.bytes();
  s.table_slots = keys_.slots();
  s.table_rehashes = keys_.rehashes();
  return s;
}

bool Database::range_fenced(const std::string& lo, const std::string& hi) const {
  for (const TrackedRange& r : ranges_) {
    if (r.lo == lo && r.hi == hi) return r.fenced;
  }
  return false;
}

RangeSnapshot Database::extract_range(const std::string& lo, const std::string& hi) const {
  RangeSnapshot snap;
  snap.lo = lo;
  snap.hi = hi;
  ensure_ordered();
  for (std::size_t i = ordered_lower_bound(lo); i < ordered_.size(); ++i) {
    const std::string_view key = keys_.key(ordered_[i]);
    if (!hi.empty() && key >= std::string_view(hi)) break;
    const Cell& cell = cells_[ordered_[i]];
    if (!cell.live || reserved_key(key)) continue;
    snap.rows.push_back(RangeRow{std::string(key), cell.value, cell.ts});
  }
  return snap;
}

std::vector<std::pair<std::string, std::string>> Database::scan_prefix(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  ensure_ordered();
  for (std::size_t i = ordered_lower_bound(prefix); i < ordered_.size(); ++i) {
    const std::string_view key = keys_.key(ordered_[i]);
    if (key.substr(0, prefix.size()) != prefix) break;
    const Cell& cell = cells_[ordered_[i]];
    if (!cell.live) continue;
    out.emplace_back(std::string(key), cell.value);
  }
  return out;
}

Bytes Database::snapshot() const {
  // Rows are written in sorted key order — the same bytes the old std::map
  // walk produced, which state transfer (and therefore virtual time)
  // depends on.
  ensure_ordered();
  BufWriter w;
  w.i64(version_);
  w.u32(static_cast<std::uint32_t>(live_));
  for (const util::KeyId id : ordered_) {
    const Cell& cell = cells_[id];
    if (!cell.live) continue;
    w.str_view(keys_.key(id));
    w.str(cell.value);
    w.i64(cell.ts);
  }
  // Tracked ranges travel with the state: a joiner adopting this snapshot
  // must enforce the same fences the group's green order established.
  w.u32(static_cast<std::uint32_t>(ranges_.size()));
  for (const TrackedRange& r : ranges_) {
    w.str(r.lo);
    w.str(r.hi);
    w.boolean(r.fenced);
  }
  return w.take();
}

void Database::restore(const Bytes& snap) {
  BufReader r(snap);
  keys_.clear();
  cells_.clear();
  ordered_.clear();
  live_ = 0;
  ranges_.clear();
  version_ = r.i64();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string k = r.str();
    Cell& cell = upsert(keys_.intern(k));
    cell.value = r.str();
    cell.ts = r.i64();
  }
  const std::uint32_t nr = r.u32();
  for (std::uint32_t i = 0; i < nr; ++i) {
    TrackedRange tr;
    tr.lo = r.str();
    tr.hi = r.str();
    tr.fenced = r.boolean();
    ranges_.push_back(std::move(tr));
  }
}

std::uint64_t Database::digest() const {
  // Byte-identical to the pre-interning implementation: live rows in sorted
  // key order, then tracked ranges — ids never enter the digest.
  ensure_ordered();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::string_view s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;
    h *= 0x100000001b3ULL;
  };
  for (const util::KeyId id : ordered_) {
    const Cell& cell = cells_[id];
    if (!cell.live) continue;
    mix(keys_.key(id));
    mix(cell.value);
    h ^= static_cast<std::uint64_t>(cell.ts) * 0x9e3779b97f4a7c15ULL;
  }
  // Fence state is replica state: fold tracked ranges in (no-op while the
  // deployment never rebalances, keeping pre-rebalance digests unchanged).
  for (const TrackedRange& r : ranges_) {
    mix(r.lo);
    mix(r.hi);
    h ^= r.fenced ? 0x9e3779b97f4a7c15ULL : 0x517cc1b727220a95ULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace tordb::db
