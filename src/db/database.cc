#include "db/database.h"

#include <charconv>

namespace tordb::db {

namespace {
std::int64_t to_num(const std::string& s) {
  std::int64_t v = 0;
  std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}

bool mutates(OpType t) {
  switch (t) {
    case OpType::kPut:
    case OpType::kAdd:
    case OpType::kAppend:
    case OpType::kTimestampPut:
    case OpType::kDelete:
      return true;
    default:
      return false;
  }
}

/// Reserved infrastructure keys (session guards `__session/`, cross-shard
/// markers `__xs/`) are pinned to their group: never fenced, never moved.
bool reserved_key(std::string_view key) { return key.size() >= 2 && key[0] == '_' && key[1] == '_'; }
}  // namespace

std::uint64_t range_fingerprint(std::string_view lo, std::string_view hi) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::string_view s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xff;
    h *= 1099511628211ull;
  };
  mix(lo);
  mix(hi);
  return h;
}

Bytes RangeSnapshot::encode() const {
  BufWriter w;
  w.str(lo);
  w.str(hi);
  w.vec(rows, [](BufWriter& w2, const RangeRow& r) {
    w2.str(r.key);
    w2.str(r.value);
    w2.i64(r.ts);
  });
  return w.take();
}

RangeSnapshot RangeSnapshot::decode(const Bytes& b) {
  BufReader r(b);
  RangeSnapshot s;
  s.lo = r.str();
  s.hi = r.str();
  s.rows = r.vec<RangeRow>([](BufReader& r2) {
    RangeRow row;
    row.key = r2.str();
    row.value = r2.str();
    row.ts = r2.i64();
    return row;
  });
  return s;
}

void Command::encode(BufWriter& w) const {
  w.vec(ops, [](BufWriter& w2, const Op& op) {
    w2.u8(static_cast<std::uint8_t>(op.type));
    w2.str(op.key);
    w2.str(op.value);
    w2.i64(op.num);
  });
}

Command Command::decode(BufReader& r) {
  Command c;
  c.ops = r.vec<Op>([](BufReader& r2) {
    Op op;
    op.type = static_cast<OpType>(r2.u8());
    op.key = r2.str();
    op.value = r2.str();
    op.num = r2.i64();
    return op;
  });
  return c;
}

Command Command::put(std::string key, std::string value) {
  return Command{{Op{OpType::kPut, std::move(key), std::move(value), 0}}};
}
Command Command::add(std::string key, std::int64_t delta) {
  return Command{{Op{OpType::kAdd, std::move(key), "", delta}}};
}
Command Command::append(std::string key, std::string value) {
  return Command{{Op{OpType::kAppend, std::move(key), std::move(value), 0}}};
}
Command Command::get(std::string key) {
  return Command{{Op{OpType::kGet, std::move(key), "", 0}}};
}
Command Command::checked_put(std::string key, std::string expected, std::string value) {
  Command c;
  c.ops.push_back(Op{OpType::kCheck, key, std::move(expected), 0});
  c.ops.push_back(Op{OpType::kPut, std::move(key), std::move(value), 0});
  return c;
}
Command Command::timestamp_put(std::string key, std::string value, std::int64_t ts) {
  return Command{{Op{OpType::kTimestampPut, std::move(key), std::move(value), ts}}};
}

Command Command::del(std::string key) {
  return Command{{Op{OpType::kDelete, std::move(key), "", 0}}};
}

Command Command::fence_range(std::string lo, std::string hi) {
  return Command{{Op{OpType::kFenceRange, std::move(lo), std::move(hi), 0}}};
}

Command Command::install_range(const RangeSnapshot& snap) {
  const Bytes blob = snap.encode();
  return Command{{Op{OpType::kInstallRange, snap.lo,
                     std::string(blob.begin(), blob.end()), 0}}};
}

Command Command::unfence_range(std::string lo, std::string hi) {
  return Command{{Op{OpType::kUnfenceRange, std::move(lo), std::move(hi), 0}}};
}

const Database::TrackedRange* Database::range_of(std::string_view key) const {
  for (const TrackedRange& r : ranges_) {
    if (key_in_range(key, r.lo, r.hi)) return &r;
  }
  return nullptr;
}

// Remove [lo, hi) from every tracked entry, splitting partially-overlapped
// entries into their remainders (which keep their fenced flag). Keeps the
// entries pairwise disjoint so range_of has exactly one answer per key —
// without this, a stale wide entry from an earlier move shadows a narrower
// fence/install after the directory re-draws bounds (split, move-back).
void Database::carve_tracked(std::string_view lo, std::string_view hi) {
  std::vector<TrackedRange> next;
  next.reserve(ranges_.size() + 1);
  for (TrackedRange& r : ranges_) {
    const bool overlaps =
        (hi.empty() || r.lo < hi) && (r.hi.empty() || lo < std::string_view(r.hi));
    if (!overlaps) {
      next.push_back(std::move(r));
      continue;
    }
    if (std::string_view(r.lo) < lo) next.push_back(TrackedRange{r.lo, std::string(lo), r.fenced});
    if (!hi.empty() && (r.hi.empty() || hi < std::string_view(r.hi))) {
      next.push_back(TrackedRange{std::string(hi), r.hi, r.fenced});
    }
  }
  ranges_ = std::move(next);
}

ApplyResult Database::apply(const Command& cmd) {
  static const Command kNoUpdate;
  return apply(cmd, kNoUpdate);
}

ApplyResult Database::apply(const Command& query, const Command& update) {
  const std::vector<Op>* const lists[2] = {&query.ops, &update.ops};
  ApplyResult res;
  // Evaluate every precondition against the current state first, so that a
  // failed check aborts the whole command with no partial effects — every
  // replica applies the same deterministic rule to the same state and thus
  // "aborts" identically (paper §6, interactive actions). Checks are
  // evaluated before fences so a duplicate session retry reads as a plain
  // guard abort, which is what exactly-once resolution relies on.
  for (const auto* ops : lists) {
    for (const Op& op : *ops) {
      if (op.type == OpType::kCheck && value_of(op.key) != op.value) {
        res.aborted = true;
        return res;
      }
    }
  }
  if (!ranges_.empty()) {
    for (const auto* ops : lists) {
      for (const Op& op : *ops) {
        if (!mutates(op.type) || reserved_key(op.key)) continue;
        const TrackedRange* r = range_of(op.key);
        if (r != nullptr && r->fenced) {
          res.aborted = true;
          res.fenced = true;
          return res;
        }
      }
    }
  }

  for (const auto* op_list : lists) {
  for (const Op& op : *op_list) {
    switch (op.type) {
      case OpType::kPut:
        data_[op.key].value = op.value;
        break;
      case OpType::kAdd: {
        const std::int64_t cur = to_num(value_of(op.key));
        data_[op.key].value = std::to_string(cur + op.num);
        break;
      }
      case OpType::kAppend:
        data_[op.key].value += op.value;
        break;
      case OpType::kGet:
        res.reads.push_back(value_of(op.key));
        break;
      case OpType::kCheck:
        break;  // evaluated above
      case OpType::kTimestampPut: {
        Cell& cell = data_[op.key];
        if (op.num > cell.ts) {
          cell.ts = op.num;
          cell.value = op.value;
        }
        break;
      }
      case OpType::kDelete:
        data_.erase(op.key);
        break;
      case OpType::kFenceRange: {
        carve_tracked(op.key, op.value);
        ranges_.push_back(TrackedRange{op.key, op.value, true});
        res.range_events.push_back(
            RangeEvent{RangeEvent::Kind::kFence, range_fingerprint(op.key, op.value), 0});
        break;
      }
      case OpType::kInstallRange: {
        const RangeSnapshot snap =
            RangeSnapshot::decode(Bytes(op.value.begin(), op.value.end()));
        // The install must reproduce the source range exactly: clear any
        // rows this replica still holds in [lo, hi) (a former owner's copy
        // — keys deleted at the current owner must not resurrect), then
        // adopt the snapshot. Reserved "__" keys are pinned infrastructure.
        for (auto it = data_.lower_bound(snap.lo);
             it != data_.end() && (snap.hi.empty() || it->first < snap.hi);) {
          if (reserved_key(it->first)) {
            ++it;
          } else {
            it = data_.erase(it);
          }
        }
        carve_tracked(snap.lo, snap.hi);
        ranges_.push_back(TrackedRange{snap.lo, snap.hi, false});
        for (const RangeRow& row : snap.rows) {
          Cell& cell = data_[row.key];
          cell.value = row.value;
          cell.ts = row.ts;
        }
        res.range_events.push_back(RangeEvent{RangeEvent::Kind::kInstall,
                                              range_fingerprint(snap.lo, snap.hi),
                                              static_cast<std::int64_t>(snap.rows.size())});
        break;
      }
      case OpType::kUnfenceRange: {
        // Rollback of an abandoned move: drop the fence (and any tracked
        // remainder) so the source — still the directory's owner — accepts
        // user updates to the range again.
        carve_tracked(op.key, op.value);
        res.range_events.push_back(RangeEvent{RangeEvent::Kind::kUnfence,
                                              range_fingerprint(op.key, op.value), 0});
        break;
      }
    }
    // Surface green-applied user writes into tracked ranges so the checker
    // can assert single-shard ownership; deduped per command.
    if (!ranges_.empty() && mutates(op.type) && !reserved_key(op.key)) {
      if (const TrackedRange* r = range_of(op.key)) {
        const std::uint64_t h = range_fingerprint(r->lo, r->hi);
        bool seen = false;
        for (const RangeEvent& e : res.range_events) {
          seen = seen || (e.kind == RangeEvent::Kind::kWrite && e.range == h);
        }
        if (!seen) res.range_events.push_back(RangeEvent{RangeEvent::Kind::kWrite, h, 0});
      }
    }
  }
  }
  ++version_;
  return res;
}

ApplyResult Database::peek(const Command& cmd) const {
  ApplyResult res;
  for (const Op& op : cmd.ops) {
    if (op.type == OpType::kCheck && value_of(op.key) != op.value) {
      res.aborted = true;
      return res;
    }
  }
  for (const Op& op : cmd.ops) {
    if (op.type == OpType::kGet) res.reads.push_back(value_of(op.key));
  }
  return res;
}

std::string Database::get(const std::string& key) const { return value_of(key); }

const std::string& Database::value_of(const std::string& key) const {
  static const std::string kEmpty;
  auto it = data_.find(key);
  return it == data_.end() ? kEmpty : it->second.value;
}

bool Database::range_fenced(const std::string& lo, const std::string& hi) const {
  for (const TrackedRange& r : ranges_) {
    if (r.lo == lo && r.hi == hi) return r.fenced;
  }
  return false;
}

RangeSnapshot Database::extract_range(const std::string& lo, const std::string& hi) const {
  RangeSnapshot snap;
  snap.lo = lo;
  snap.hi = hi;
  for (auto it = data_.lower_bound(lo); it != data_.end(); ++it) {
    if (!hi.empty() && it->first >= hi) break;
    if (reserved_key(it->first)) continue;
    snap.rows.push_back(RangeRow{it->first, it->second.value, it->second.ts});
  }
  return snap;
}

Bytes Database::snapshot() const {
  BufWriter w;
  w.i64(version_);
  w.u32(static_cast<std::uint32_t>(data_.size()));
  for (const auto& [k, cell] : data_) {
    w.str(k);
    w.str(cell.value);
    w.i64(cell.ts);
  }
  // Tracked ranges travel with the state: a joiner adopting this snapshot
  // must enforce the same fences the group's green order established.
  w.u32(static_cast<std::uint32_t>(ranges_.size()));
  for (const TrackedRange& r : ranges_) {
    w.str(r.lo);
    w.str(r.hi);
    w.boolean(r.fenced);
  }
  return w.take();
}

void Database::restore(const Bytes& snap) {
  BufReader r(snap);
  data_.clear();
  ranges_.clear();
  version_ = r.i64();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string k = r.str();
    Cell cell;
    cell.value = r.str();
    cell.ts = r.i64();
    data_[std::move(k)] = std::move(cell);
  }
  const std::uint32_t nr = r.u32();
  for (std::uint32_t i = 0; i < nr; ++i) {
    TrackedRange tr;
    tr.lo = r.str();
    tr.hi = r.str();
    tr.fenced = r.boolean();
    ranges_.push_back(std::move(tr));
  }
}

std::uint64_t Database::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;
    h *= 0x100000001b3ULL;
  };
  for (const auto& [k, cell] : data_) {
    mix(k);
    mix(cell.value);
    h ^= static_cast<std::uint64_t>(cell.ts) * 0x9e3779b97f4a7c15ULL;
  }
  // Fence state is replica state: fold tracked ranges in (no-op while the
  // deployment never rebalances, keeping pre-rebalance digests unchanged).
  for (const TrackedRange& r : ranges_) {
    mix(r.lo);
    mix(r.hi);
    h ^= r.fenced ? 0x9e3779b97f4a7c15ULL : 0x517cc1b727220a95ULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace tordb::db
