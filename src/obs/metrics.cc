#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace tordb::obs {

namespace {

int bucket_of(std::int64_t v) {
  if (v <= 0) return 0;
  return std::bit_width(static_cast<std::uint64_t>(v));  // 1..63
}

double bucket_low(int b) { return b == 0 ? 0 : static_cast<double>(1ull << (b - 1)); }
double bucket_high(int b) {
  return b == 0 ? 1 : static_cast<double>(b >= 63 ? ~0ull : (1ull << b));
}

}  // namespace

void Histogram::record(std::int64_t v) {
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::snapshot(std::uint64_t out[kBuckets]) const {
  for (int b = 0; b < kBuckets; ++b) out[b] = buckets_[b].load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  std::uint64_t buckets[kBuckets];
  snapshot(buckets);
  return quantile_from(buckets, count(), q);
}

double Histogram::quantile_from(const std::uint64_t* buckets, std::uint64_t total, double q) {
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total - 1) + 1;
  double seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double next = seen + static_cast<double>(buckets[b]);
    if (target <= next) {
      // Linear interpolation inside the bucket.
      const double frac = (target - seen) / static_cast<double>(buckets[b]);
      return bucket_low(b) + frac * (bucket_high(b) - bucket_low(b));
    }
    seen = next;
  }
  return bucket_high(kBuckets - 1);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::roll(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsWindow w;
  w.start = window_start_;
  w.end = now;
  for (const auto& [name, c] : counters_) {
    const std::uint64_t cur = c->value();
    w.counter_deltas[name] = cur - last_counter_[name];
    last_counter_[name] = cur;
  }
  for (const auto& [name, g] : gauges_) w.gauge_values[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistShadow& prev = last_hist_[name];
    std::uint64_t cur_buckets[Histogram::kBuckets];
    h->snapshot(cur_buckets);
    std::uint64_t delta_buckets[Histogram::kBuckets];
    std::uint64_t delta_count = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      delta_buckets[b] = cur_buckets[b] - prev.buckets[b];
      delta_count += delta_buckets[b];
      prev.buckets[b] = cur_buckets[b];
    }
    MetricsWindow::HistDelta d;
    d.count = delta_count;
    d.mean = delta_count
                 ? (h->sum() - prev.sum) / static_cast<double>(delta_count)
                 : 0;
    d.p50 = Histogram::quantile_from(delta_buckets, delta_count, 0.50);
    d.p99 = Histogram::quantile_from(delta_buckets, delta_count, 0.99);
    prev.count = h->count();
    prev.sum = h->sum();
    w.histograms[name] = d;
  }
  window_start_ = now;
  windows_.push_back(std::move(w));
}

std::string MetricsRegistry::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) out += name + " " + std::to_string(c->value()) + "\n";
  for (const auto& [name, g] : gauges_) out += name + " " + std::to_string(g->value()) + "\n";
  for (const auto& [name, h] : histograms_) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s count=%llu mean=%.1f p50=%.0f p99=%.0f\n", name.c_str(),
                  static_cast<unsigned long long>(h->count()), h->mean(), h->quantile(0.5),
                  h->quantile(0.99));
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::window_table(const std::vector<std::string>& counter_names) const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%14s", "window");
  out += buf;
  for (const auto& n : counter_names) {
    // Last path component keeps columns narrow: "engine.actions_green" ->
    // "actions_green".
    const auto dot = n.rfind('.');
    std::snprintf(buf, sizeof(buf), " | %16s", n.substr(dot == std::string::npos ? 0 : dot + 1).c_str());
    out += buf;
  }
  bool any_hist = false;
  for (const auto& w : windows_) any_hist |= !w.histograms.empty();
  if (any_hist) out += " | histogram p50/p99 (ms)";
  out += "\n";
  for (const auto& w : windows_) {
    std::snprintf(buf, sizeof(buf), "%6.2f-%5.2fs", to_seconds(w.start), to_seconds(w.end));
    out += buf;
    for (const auto& n : counter_names) {
      auto it = w.counter_deltas.find(n);
      std::snprintf(buf, sizeof(buf), " | %16llu",
                    static_cast<unsigned long long>(it == w.counter_deltas.end() ? 0 : it->second));
      out += buf;
    }
    for (const auto& [name, h] : w.histograms) {
      // Histograms record in the unit the metric name declares (here: ms).
      std::snprintf(buf, sizeof(buf), " | %s %.2f/%.2f", name.c_str(), h.p50, h.p99);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace tordb::obs
