#include "obs/safety_checker.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace tordb::obs {

SafetyChecker::SafetyChecker(TraceBus& bus, CheckerOptions options) : options_(options) {
  bus.subscribe([this](const TraceEvent& e) { on_event(e); });
}

void SafetyChecker::set_node_group(NodeId node, std::int64_t group) {
  node_group_[node] = group;
}

SafetyChecker::NodeView& SafetyChecker::view(NodeId n) {
  NodeView& v = nodes_[n];
  v.seen = true;
  return v;
}

SafetyChecker::GroupState& SafetyChecker::group_of(NodeId n) {
  return groups_[group_id(n)];
}

std::int64_t SafetyChecker::group_id(NodeId n) const {
  auto it = node_group_.find(n);
  return it == node_group_.end() ? 0 : it->second;
}

std::int64_t SafetyChecker::canonical_green_count(std::int64_t group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : static_cast<std::int64_t>(it->second.canon.size());
}

std::int64_t SafetyChecker::total_green_count() const {
  std::int64_t total = 0;
  for (const auto& [id, g] : groups_) total += static_cast<std::int64_t>(g.canon.size());
  return total;
}

void SafetyChecker::violation(const std::string& what) {
  if (violations_.size() < options_.max_violations) violations_.push_back(what);
  if (options_.fail_fast) {
    std::fprintf(stderr, "\n=== obs::SafetyChecker: invariant violated ===\n%s\n", what.c_str());
    std::abort();
  }
}

std::string SafetyChecker::verdict() const {
  if (ok()) {
    return "checker: ok (" + std::to_string(events_checked_) + " events, green=" +
           std::to_string(total_green_count()) + ")";
  }
  return "checker: " + std::to_string(violations_.size()) +
         " violation(s): " + violations_.front();
}

std::string SafetyChecker::report() const {
  std::string out = verdict() + "\n";
  for (const std::string& v : violations_) out += "  - " + v + "\n";
  return out;
}

std::string SafetyChecker::green_diff(const GroupState& g, NodeId node, std::int64_t position,
                                      const ActionId& claimed) const {
  // The paper's histories diverge at one position; show the canonical
  // neighbourhood against the claim plus the node's own recent tail.
  std::ostringstream os;
  const std::int64_t ctx = static_cast<std::int64_t>(options_.diff_context);
  const std::int64_t lo = std::max<std::int64_t>(1, position - ctx);
  const std::int64_t hi =
      std::min<std::int64_t>(static_cast<std::int64_t>(g.canon.size()), position + ctx);
  os << "\n  canonical history around position " << position << ":";
  for (std::int64_t p = lo; p <= hi; ++p) {
    os << "\n    [" << p << "] " << to_string(g.canon[static_cast<std::size_t>(p - 1)]);
    if (p == position) os << "   <-- node " << node << " claims " << to_string(claimed);
  }
  auto it = nodes_.find(node);
  if (it != nodes_.end() && !it->second.recent.empty()) {
    os << "\n  node " << node << " recent greens (oldest first):";
    for (const ActionId& a : it->second.recent) os << " " << to_string(a);
  }
  return os.str();
}

void SafetyChecker::on_event(const TraceEvent& e) {
  ++events_checked_;
  switch (e.kind) {
    case EventKind::kActionGreen:
      on_green(e);
      break;
    case EventKind::kEngineStart:
      on_adopt(e.node, e.a, e.b == 1 ? "recovery" : e.b == 2 ? "join snapshot" : "fresh start");
      break;
    case EventKind::kStateTransferApply:
      on_adopt(e.node, e.a, "state transfer");
      break;
    case EventKind::kPrimaryInstall:
      on_primary_install(e);
      break;
    case EventKind::kPrimaryMember: {
      GroupState& g = group_of(e.node);
      if (e.a == g.pending_prim_index && e.node == g.pending_prim_node) {
        g.primaries[e.a].members.push_back(static_cast<NodeId>(e.b));
      }
      break;
    }
    case EventKind::kWhiteTrim:
      on_white_trim(e);
      break;
    case EventKind::kSafeDeliver:
      on_safe_deliver(e);
      break;
    case EventKind::kMemberReset:
      view(e.node).members.clear();
      break;
    case EventKind::kMemberAdd:
      view(e.node).members.insert(static_cast<NodeId>(e.a));
      break;
    case EventKind::kMemberRemove:
      view(e.node).members.erase(static_cast<NodeId>(e.a));
      break;
    case EventKind::kRangeFence:
    case EventKind::kRangeInstall:
    case EventKind::kRangeWrite:
    case EventKind::kRangeUnfence:
      on_range_event(e);
      break;
    case EventKind::kTxnPrepare:
    case EventKind::kTxnConfirm:
    case EventKind::kTxnCancel:
      on_txn_event(e);
      break;
    case EventKind::kAnnounceSend:
      on_announce(e);
      break;
    default:
      break;  // observed for export/metrics only
  }
}

void SafetyChecker::on_green(const TraceEvent& e) {
  GroupState& g = group_of(e.node);
  NodeView& v = view(e.node);
  const std::int64_t pos = e.a;
  std::ostringstream os;
  if (pos != v.green_count + 1) {
    os << "t=" << e.time << " node " << e.node << " marked " << to_string(e.action)
       << " green at position " << pos << " but its green count is " << v.green_count
       << " (greens must be sequential)";
    violation(os.str());
    return;
  }
  v.green_count = pos;
  v.green_highwater = std::max(v.green_highwater, pos);
  v.recent.push_back(e.action);
  if (v.recent.size() > 2 * options_.diff_context) v.recent.erase(v.recent.begin());

  const std::int64_t canon_len = static_cast<std::int64_t>(g.canon.size());
  if (pos <= canon_len) {
    const ActionId& expect = g.canon[static_cast<std::size_t>(pos - 1)];
    if (!(expect == e.action)) {
      os << "t=" << e.time << " GREEN ORDER DIVERGENCE: node " << e.node << " marked "
         << to_string(e.action) << " green at position " << pos << " but the canonical action is "
         << to_string(expect) << green_diff(g, e.node, pos, e.action);
      violation(os.str());
    }
    return;
  }
  if (pos > canon_len + 1) {
    os << "t=" << e.time << " node " << e.node << " marked position " << pos
       << " green but only " << canon_len << " positions are known anywhere";
    violation(os.str());
    return;
  }
  // This node extends the canonical history.
  auto [it, inserted] = g.position_of.emplace(e.action, pos);
  if (!inserted && it->second != pos) {
    os << "t=" << e.time << " action " << to_string(e.action) << " became green at position "
       << pos << " (node " << e.node << ") but was already green at position " << it->second;
    violation(os.str());
    return;
  }
  auto [fit, finserted] = g.last_green_index.emplace(e.action.server_id, 0);
  (void)finserted;
  if (e.action.index != fit->second + 1) {
    os << "t=" << e.time << " GREEN FIFO violation: creator " << e.action.server_id
       << " appears at index " << e.action.index << " after index " << fit->second
       << " (position " << pos << ", node " << e.node << ")";
    violation(os.str());
    return;
  }
  fit->second = e.action.index;
  g.canon.push_back(e.action);
}

void SafetyChecker::on_adopt(NodeId node, std::int64_t green_count, const char* how) {
  GroupState& g = group_of(node);
  NodeView& v = view(node);
  if (green_count > static_cast<std::int64_t>(g.canon.size())) {
    std::ostringstream os;
    os << "node " << node << " adopted a green prefix of " << green_count << " via " << how
       << " but only " << g.canon.size() << " positions are known anywhere";
    violation(os.str());
  }
  v.green_count = green_count;
  v.green_highwater = std::max(v.green_highwater, green_count);
  v.recent.clear();
  // Invariant 10 baseline resets: a recovered or snapshot-adopting node may
  // legitimately announce a line below its pre-crash maximum.
  v.last_announced = -1;
}

void SafetyChecker::on_announce(const TraceEvent& e) {
  // Invariant 10: announcements (a = announced own green line) are
  // lower-bound claims, so they must be honest (<= true green count) and
  // monotone per node between adoption resets.
  NodeView& v = view(e.node);
  const std::int64_t line = e.a;
  std::ostringstream os;
  if (line > v.green_count) {
    os << "t=" << e.time << " ANNOUNCED GREEN LINE BEYOND TRUE GREEN COUNT: node " << e.node
       << " announced line " << line << " but has only " << v.green_count
       << " greens (peers would trim history the announcer does not hold)";
    violation(os.str());
    return;
  }
  if (line < v.last_announced) {
    os << "t=" << e.time << " NON-MONOTONE GREEN-LINE ANNOUNCEMENT: node " << e.node
       << " announced line " << line << " after announcing " << v.last_announced;
    violation(os.str());
    return;
  }
  v.last_announced = line;
}

void SafetyChecker::on_primary_install(const TraceEvent& e) {
  GroupState& g = group_of(e.node);
  g.pending_prim_index = e.a;
  g.pending_prim_node = e.node;
  auto [it, inserted] = g.primaries.emplace(e.a, PrimInfo{});
  PrimInfo& info = it->second;
  if (inserted) {
    info.attempt = e.b;
    info.member_count = e.c;
    info.member_hash = static_cast<std::uint64_t>(e.d);
    info.installer = e.node;
    return;
  }
  g.pending_prim_node = kNoNode;  // members already collected from the first installer
  if (info.attempt != e.b || info.member_count != e.c ||
      info.member_hash != static_cast<std::uint64_t>(e.d)) {
    std::ostringstream os;
    os << "t=" << e.time << " TWO PRIMARY COMPONENTS with generation " << e.a << ": node "
       << info.installer << " installed attempt " << info.attempt << " ("
       << info.member_count << " members";
    for (NodeId m : info.members) os << " " << m;
    os << ") but node " << e.node << " installed attempt " << e.b << " (" << e.c
       << " members, membership hash " << static_cast<std::uint64_t>(e.d) << " vs "
       << info.member_hash << ")";
    violation(os.str());
  }
}

void SafetyChecker::on_white_trim(const TraceEvent& e) {
  NodeView& v = view(e.node);
  const std::int64_t line = e.a;
  std::ostringstream os;
  if (line > v.green_count) {
    os << "t=" << e.time << " node " << e.node << " white-trimmed to " << line
       << " beyond its own green count " << v.green_count;
    violation(os.str());
    return;
  }
  for (NodeId m : v.members) {
    auto it = nodes_.find(m);
    if (it == nodes_.end() || !it->second.seen) continue;  // engine not started yet
    // Compare against the member's high-water green count, not its current
    // one: a crash-recovered member may sit below knowledge it emitted
    // before the crash (see invariant 6 notes in the header).
    if (line > it->second.green_highwater) {
      os << "t=" << e.time << " WHITE TRIM PASSES UNSTABLE ACTION: node " << e.node
         << " trimmed to line " << line << " but member " << m << " never marked more than "
         << it->second.green_highwater << " greens (position "
         << it->second.green_highwater + 1 << ".." << line << " not yet stable)";
      violation(os.str());
      return;
    }
  }
}

void SafetyChecker::on_range_event(const TraceEvent& e) {
  // Invariant 8. Events carry (a = range fingerprint, b = green position in
  // the emitting group's history). Every replica of a group applies the same
  // green order, so replays from lagging replicas land at positions <= the
  // recorded maximum and are skipped.
  const std::int64_t grp = group_id(e.node);
  RangeState& r = ranges_[e.a];
  const std::int64_t pos = e.b;
  const auto at = [](const std::map<std::int64_t, std::int64_t>& m, std::int64_t k) {
    auto it = m.find(k);
    return it == m.end() ? 0 : it->second;
  };
  std::ostringstream os;
  switch (e.kind) {
    case EventKind::kRangeFence: {
      auto [it, inserted] = r.fence_pos.emplace(grp, pos);
      if (!inserted && pos > it->second) it->second = pos;
      break;
    }
    case EventKind::kRangeUnfence: {
      // Abandoned-move rollback: the group's fence is lifted as of `pos`.
      // A fence is "active" only while fence_pos > unfence_pos, so a later
      // install elsewhere cannot lean on a fence this rollback cancelled.
      auto [it, inserted] = r.unfence_pos.emplace(grp, pos);
      if (!inserted && pos > it->second) it->second = pos;
      break;
    }
    case EventKind::kRangeInstall: {
      if (pos <= at(r.install_pos, grp)) break;  // replica replay
      bool fenced_somewhere = false;
      for (const auto& [g2, fp] : r.fence_pos) {
        fenced_somewhere = fenced_somewhere || fp > at(r.unfence_pos, g2);
      }
      if (!fenced_somewhere) {
        os << "t=" << e.time << " RANGE INSTALL WITHOUT FENCE: group " << grp
           << " (node " << e.node << ") installed range " << static_cast<std::uint64_t>(e.a)
           << " at green position " << pos << " but no group ever fenced it";
        violation(os.str());
        break;
      }
      for (const auto& [g2, ip] : r.install_pos) {
        if (g2 == grp) continue;
        if (ip > at(r.fence_pos, g2)) {
          os << "t=" << e.time << " RANGE DOUBLE OWNERSHIP: group " << grp << " (node "
             << e.node << ") installed range " << static_cast<std::uint64_t>(e.a)
             << " at green position " << pos << " while group " << g2
             << " still owns it (install at " << ip << " with no later fence)";
          violation(os.str());
          break;
        }
      }
      r.install_pos[grp] = pos;
      break;
    }
    case EventKind::kRangeWrite: {
      if (pos <= at(r.write_pos, grp)) break;  // replica replay
      r.write_pos[grp] = pos;
      const std::int64_t fp = at(r.fence_pos, grp);
      if (fp > at(r.install_pos, grp) && fp > at(r.unfence_pos, grp) && pos > fp) {
        os << "t=" << e.time << " WRITE TO FENCED RANGE: group " << grp << " (node " << e.node
           << ") green-applied a user write to range " << static_cast<std::uint64_t>(e.a)
           << " at position " << pos << " past its fence at position " << fp
           << " (the range's keys belong to another shard now)";
        violation(os.str());
      }
      break;
    }
    default:
      break;
  }
}

void SafetyChecker::on_txn_event(const TraceEvent& e) {
  // Invariant 9. Events carry (a = txn fingerprint, b = green position in
  // the emitting group's history). Like invariant 8, lagging replicas
  // replay the same green order, so transitions at positions <= the
  // recorded maximum are no-ops; a fresh transition must obey
  // prepare-before-decision and confirm-xor-cancel within the group.
  const std::int64_t grp = group_id(e.node);
  TxnState& t = txns_[e.a];
  const std::int64_t pos = e.b;
  const auto at = [](const std::map<std::int64_t, std::int64_t>& m, std::int64_t k) {
    auto it = m.find(k);
    return it == m.end() ? 0 : it->second;
  };
  std::ostringstream os;
  switch (e.kind) {
    case EventKind::kTxnPrepare: {
      auto [it, inserted] = t.prepare_pos.emplace(grp, pos);
      if (!inserted && pos > it->second) it->second = pos;
      break;
    }
    case EventKind::kTxnConfirm: {
      if (pos <= at(t.confirm_pos, grp)) break;  // replica replay
      const std::int64_t pp = at(t.prepare_pos, grp);
      if (pp == 0 || pp >= pos) {
        os << "t=" << e.time << " TXN CONFIRM WITHOUT PREPARE: group " << grp << " (node "
           << e.node << ") confirmed transaction " << static_cast<std::uint64_t>(e.a)
           << " at green position " << pos << " with no earlier prepare (prepare pos " << pp
           << ")";
        violation(os.str());
        break;
      }
      if (at(t.cancel_pos, grp) != 0) {
        os << "t=" << e.time << " TXN DOUBLE DECISION: group " << grp << " (node " << e.node
           << ") confirmed transaction " << static_cast<std::uint64_t>(e.a)
           << " at green position " << pos << " after cancelling it at position "
           << at(t.cancel_pos, grp);
        violation(os.str());
        break;
      }
      t.confirm_pos[grp] = pos;
      break;
    }
    case EventKind::kTxnCancel: {
      if (pos <= at(t.cancel_pos, grp)) break;  // replica replay
      const std::int64_t pp = at(t.prepare_pos, grp);
      if (pp == 0 || pp >= pos) {
        os << "t=" << e.time << " TXN CANCEL WITHOUT PREPARE: group " << grp << " (node "
           << e.node << ") cancelled transaction " << static_cast<std::uint64_t>(e.a)
           << " at green position " << pos << " with no earlier prepare (prepare pos " << pp
           << ")";
        violation(os.str());
        break;
      }
      if (at(t.confirm_pos, grp) != 0) {
        os << "t=" << e.time << " TXN DOUBLE DECISION: group " << grp << " (node " << e.node
           << ") cancelled transaction " << static_cast<std::uint64_t>(e.a)
           << " at green position " << pos << " after confirming it at position "
           << at(t.confirm_pos, grp);
        violation(os.str());
        break;
      }
      t.cancel_pos[grp] = pos;
      break;
    }
    default:
      break;
  }
}

std::int64_t SafetyChecker::txn_unresolved() const {
  std::int64_t open = 0;
  for (const auto& [fp, t] : txns_) {
    for (const auto& [grp, pp] : t.prepare_pos) {
      const bool confirmed = t.confirm_pos.find(grp) != t.confirm_pos.end();
      const bool cancelled = t.cancel_pos.find(grp) != t.cancel_pos.end();
      if (!confirmed && !cancelled) ++open;
    }
  }
  return open;
}

std::int64_t SafetyChecker::txn_prepared() const {
  std::int64_t n = 0;
  for (const auto& [fp, t] : txns_) n += static_cast<std::int64_t>(t.prepare_pos.size());
  return n;
}

void SafetyChecker::on_safe_deliver(const TraceEvent& e) {
  GroupState& g = group_of(e.node);
  const SafeKey key{e.a, static_cast<NodeId>(e.b), e.c};
  auto [it, inserted] = g.safe_payload.emplace(key, static_cast<std::uint64_t>(e.d));
  if (!inserted && it->second != static_cast<std::uint64_t>(e.d)) {
    std::ostringstream os;
    os << "t=" << e.time << " SAFE DELIVERY DIVERGENCE: config (" << e.a << "," << e.b
       << ") seq " << e.c << " delivered with payload hash " << static_cast<std::uint64_t>(e.d)
       << " at node " << e.node << " but hash " << it->second << " elsewhere";
    violation(os.str());
  }
}

}  // namespace tordb::obs
