// Metrics registry — named counters, gauges, and histograms with
// virtual-time windowing (DESIGN.md §7).
//
// Counters come in two flavours behind one type: directly incremented
// (`inc`) by instrumented hot paths, or sampled from an existing
// cumulative source (`set_total`) — the cluster harness samples
// EngineStats / GcStats / StorageStats totals each window so subsystems
// need no per-event instrumentation to appear in time series.
//
// Histograms are log2-bucketed (64 buckets over the full i64 range):
// recording is a clz and two adds, quantiles are estimated by linear
// interpolation inside the winning bucket. Good to ~2x resolution at any
// magnitude, which is what latency series need.
//
// `roll(now)` closes the current window: each metric's delta since the
// previous roll is captured into a `MetricsWindow`. Benches print the
// window list as a time series instead of a single end-of-run number.
//
// Thread-safety (lane mode, DESIGN.md §15): metric cells are plain
// relaxed atomics — engines on different worker lanes increment disjoint
// logical streams, but they may share a cell name, and nothing here
// orders anything, so relaxed is exactly right. Histogram sums accumulate
// in integers so the total is independent of the order lanes interleave
// (floating-point addition is not associative; integer addition is).
// Lookup-or-create is mutex-guarded (a replica joining on a worker lane
// can create metrics mid-run); the returned references stay stable.
// roll()/totals()/window_table() are read-side and run only from the
// control lane or between runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.h"

namespace tordb::obs {

class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_.fetch_add(by, std::memory_order_relaxed); }
  /// Adopt a cumulative total sampled from elsewhere (monotonic).
  void set_total(std::uint64_t total) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (total > cur &&
           !value_.compare_exchange_weak(cur, total, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::int64_t v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return static_cast<double>(sum_.load(std::memory_order_relaxed)); }
  double mean() const {
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0;
  }
  /// Quantile estimate over all recorded values (0 <= q <= 1).
  double quantile(double q) const;

  /// Copy the bucket array out (relaxed loads).
  void snapshot(std::uint64_t out[kBuckets]) const;

  /// Quantile over an explicit bucket array (used for window deltas).
  static double quantile_from(const std::uint64_t* buckets, std::uint64_t total, double q);

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};  ///< integer: order-independent total
};

/// One closed virtual-time window: metric deltas between two rolls.
struct MetricsWindow {
  SimTime start = 0;
  SimTime end = 0;
  std::map<std::string, std::uint64_t> counter_deltas;
  std::map<std::string, std::int64_t> gauge_values;
  struct HistDelta {
    std::uint64_t count = 0;
    double mean = 0;
    double p50 = 0;
    double p99 = 0;
  };
  std::map<std::string, HistDelta> histograms;
};

class MetricsRegistry {
 public:
  /// Lookup-or-create. Returned references are stable for the registry
  /// lifetime (instrumented code caches them once, off the hot path).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Close the window [last roll, now) and start a new one.
  void roll(SimTime now);

  const std::vector<MetricsWindow>& windows() const { return windows_; }

  /// Cumulative totals, one "name value" per line (sorted by name).
  std::string totals() const;

  /// Render the window series for the named counters (and any histograms)
  /// as a fixed-width table, one row per window.
  std::string window_table(const std::vector<std::string>& counter_names) const;

 private:
  struct HistShadow {
    std::uint64_t buckets[Histogram::kBuckets] = {};
    std::uint64_t count = 0;
    double sum = 0;
  };

  mutable std::mutex mu_;  ///< guards map structure, not metric cells
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::uint64_t> last_counter_;
  std::map<std::string, HistShadow> last_hist_;
  SimTime window_start_ = 0;
  std::vector<MetricsWindow> windows_;
};

}  // namespace tordb::obs
