#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/log.h"

namespace tordb::obs {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kEngineStart: return "engine_start";
    case EventKind::kStateTransition: return "state_transition";
    case EventKind::kActionSubmitted: return "action_submitted";
    case EventKind::kActionRed: return "action_red";
    case EventKind::kActionGreen: return "action_green";
    case EventKind::kWhiteTrim: return "white_trim";
    case EventKind::kSafeDeliver: return "safe_deliver";
    case EventKind::kViewRegular: return "view_regular";
    case EventKind::kViewTransitional: return "view_transitional";
    case EventKind::kExchangeStart: return "exchange_start";
    case EventKind::kQuorumVote: return "quorum_vote";
    case EventKind::kPrimaryInstall: return "primary_install";
    case EventKind::kPrimaryMember: return "primary_member";
    case EventKind::kMemberReset: return "member_reset";
    case EventKind::kMemberAdd: return "member_add";
    case EventKind::kMemberRemove: return "member_remove";
    case EventKind::kForcedSync: return "forced_sync";
    case EventKind::kStateTransferSend: return "state_transfer_send";
    case EventKind::kStateTransferApply: return "state_transfer_apply";
    case EventKind::kLogLine: return "log_line";
    case EventKind::kShardRoute: return "shard_route";
    case EventKind::kShardFailover: return "shard_failover";
    case EventKind::kShardCrossSubmit: return "shard_cross_submit";
    case EventKind::kShardCrossCommit: return "shard_cross_commit";
    case EventKind::kRangeFence: return "range_fence";
    case EventKind::kRangeInstall: return "range_install";
    case EventKind::kRangeWrite: return "range_write";
    case EventKind::kRangeUnfence: return "range_unfence";
    case EventKind::kDirectoryEpoch: return "directory_epoch";
    case EventKind::kTxnPrepare: return "txn_prepare";
    case EventKind::kTxnConfirm: return "txn_confirm";
    case EventKind::kTxnCancel: return "txn_cancel";
    case EventKind::kTxnBegin: return "txn_begin";
    case EventKind::kTxnDecide: return "txn_decide";
    case EventKind::kTxnSnapshotRead: return "txn_snapshot_read";
    case EventKind::kAnnounceSend: return "announce_send";
    case EventKind::kAnnounceRecv: return "announce_recv";
  }
  return "?";
}

std::uint64_t fingerprint(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

TraceBus::TraceBus(Simulator& sim, TraceBusOptions options)
    : sim_(sim), options_(options) {
  ring_.reserve(options_.ring_capacity);
  if (sim_.lanes_enabled()) {
    lane_buf_.resize(static_cast<std::size_t>(sim_.lane_count()));
    sim_.set_barrier_hook([this] { flush_lanes(); });
    hook_installed_ = true;
  }
}

TraceBus::~TraceBus() {
  flush_lanes();
  if (hook_installed_) sim_.set_barrier_hook({});
  if (log_capture_installed_) Log::sink() = nullptr;
}

void TraceBus::emit(TraceEvent e) {
  e.time = sim_.now();
  if (!lane_buf_.empty() && sim_.running()) {
    // Defer to the barrier; per-lane buffers make this thread-safe without
    // any locking (each lane only ever appends to its own buffer).
    lane_buf_[static_cast<std::size_t>(sim_.current_lane())].push_back(e);
    return;
  }
  dispatch(e);
}

void TraceBus::flush_lanes() {
  flush_buf_.clear();
  for (auto& buf : lane_buf_) {
    flush_buf_.insert(flush_buf_.end(), buf.begin(), buf.end());
    buf.clear();
  }
  // Stable sort on time alone: the lane-order append above breaks ties by
  // lane, and per-lane emission order is already chronological — the same
  // total order every run, whatever the worker count.
  std::stable_sort(flush_buf_.begin(), flush_buf_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.time < b.time; });
  for (const TraceEvent& e : flush_buf_) dispatch(e);
}

void TraceBus::dispatch(const TraceEvent& e) {
  ++emitted_;
  if (options_.ring_capacity > 0) {
    if (ring_.size() < options_.ring_capacity) {
      ring_.push_back(e);
    } else {
      ring_[ring_next_] = e;
      ring_next_ = (ring_next_ + 1) % options_.ring_capacity;
      ring_wrapped_ = true;
    }
  }
  for (const auto& fn : subscribers_) fn(e);
}

void TraceBus::subscribe(std::function<void(const TraceEvent&)> fn) {
  subscribers_.push_back(std::move(fn));
}

std::vector<TraceEvent> TraceBus::ring_snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_));
  } else {
    out = ring_;
  }
  return out;
}

void TraceBus::capture_logs() {
  if (log_capture_installed_) return;
  log_capture_installed_ = true;
  Log::sink() = [this](LogLevel lvl, const std::string& tag, const std::string& msg) {
    std::int64_t idx;
    {
      // Worker-lane components log too; the string ring is the one piece
      // of bus state written at emit time rather than at the barrier.
      std::lock_guard<std::mutex> lock(log_mu_);
      idx = next_string_++;
      const std::size_t slot =
          static_cast<std::size_t>(idx) % std::max<std::size_t>(options_.string_ring_capacity, 1);
      if (strings_.size() <= slot) strings_.resize(slot + 1);
      strings_[slot] = tag + ": " + msg;
    }
    TraceEvent e;
    e.node = kNoNode;
    e.kind = EventKind::kLogLine;
    e.a = idx;
    e.b = static_cast<std::int64_t>(lvl);
    emit(e);
    Log::write_default(lvl, tag, msg);
  };
}

const std::string* TraceBus::log_line(std::int64_t index) const {
  if (index < 0 || index < next_string_ - static_cast<std::int64_t>(strings_.size())) {
    return nullptr;  // evicted from the ring
  }
  const std::size_t slot =
      static_cast<std::size_t>(index) % std::max<std::size_t>(options_.string_ring_capacity, 1);
  if (slot >= strings_.size()) return nullptr;
  return &strings_[slot];
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

bool has_action(EventKind k) {
  return k == EventKind::kActionSubmitted || k == EventKind::kActionRed ||
         k == EventKind::kActionGreen;
}

}  // namespace

std::string TraceBus::to_jsonl() const {
  std::string out;
  for (const TraceEvent& e : ring_snapshot()) {
    out += "{\"t\":" + std::to_string(e.time) + ",\"node\":" + std::to_string(e.node) +
           ",\"kind\":\"" + to_string(e.kind) + "\"";
    if (has_action(e.kind)) {
      out += ",\"action\":\"" + std::to_string(e.action.server_id) + ":" +
             std::to_string(e.action.index) + "\"";
    }
    out += ",\"a\":" + std::to_string(e.a) + ",\"b\":" + std::to_string(e.b) +
           ",\"c\":" + std::to_string(e.c) + ",\"d\":" + std::to_string(e.d);
    if (e.kind == EventKind::kLogLine) {
      if (const std::string* line = log_line(e.a)) {
        out += ",\"line\":";
        append_json_string(out, *line);
      }
    }
    out += "}\n";
  }
  return out;
}

std::string TraceBus::to_chrome_trace() const {
  // Chrome trace-event JSON array format: pid = node, instant events for
  // every kind, plus "X" duration slices spanning ExchangeStart →
  // PrimaryInstall (a view change as seen by each node). ts is in
  // microseconds of simulated time.
  std::string out = "[\n";
  bool first = true;
  auto emit_obj = [&](const std::string& body) {
    if (!first) out += ",\n";
    first = false;
    out += body;
  };
  std::vector<TraceEvent> events = ring_snapshot();
  // Pair exchange starts with the next primary install (or state settle)
  // per node to build duration slices.
  std::vector<std::pair<NodeId, SimTime>> open_exchanges;
  for (const TraceEvent& e : events) {
    const double ts = static_cast<double>(e.time) / 1000.0;  // ns -> us
    if (e.kind == EventKind::kExchangeStart) {
      bool already_open = false;
      for (auto& [n, t0] : open_exchanges) already_open |= (n == e.node);
      if (!already_open) open_exchanges.emplace_back(e.node, e.time);
    } else if (e.kind == EventKind::kPrimaryInstall) {
      for (std::size_t i = 0; i < open_exchanges.size(); ++i) {
        if (open_exchanges[i].first != e.node) continue;
        const double t0 = static_cast<double>(open_exchanges[i].second) / 1000.0;
        emit_obj("{\"name\":\"view_change\",\"ph\":\"X\",\"pid\":" + std::to_string(e.node) +
                 ",\"tid\":0,\"ts\":" + std::to_string(t0) +
                 ",\"dur\":" + std::to_string(ts - t0) + ",\"args\":{\"prim_index\":" +
                 std::to_string(e.a) + "}}");
        open_exchanges.erase(open_exchanges.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    std::string args = "{\"a\":" + std::to_string(e.a) + ",\"b\":" + std::to_string(e.b) +
                       ",\"c\":" + std::to_string(e.c);
    if (has_action(e.kind)) {
      args += ",\"action\":\"" + std::to_string(e.action.server_id) + ":" +
              std::to_string(e.action.index) + "\"";
    }
    args += "}";
    emit_obj("{\"name\":\"" + std::string(to_string(e.kind)) + "\",\"ph\":\"i\",\"s\":\"t\"" +
             ",\"pid\":" + std::to_string(e.node) + ",\"tid\":1,\"ts\":" + std::to_string(ts) +
             ",\"args\":" + args + "}");
  }
  out += "\n]\n";
  return out;
}

bool TraceBus::write_file(const std::string& path, const std::string& contents) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << contents;
  return static_cast<bool>(f);
}

namespace {
bool g_forced_for_tests = false;
}

bool check_forced() {
  static const bool env = [] {
    const char* v = std::getenv("TORDB_OBS_CHECK");
    return v != nullptr && std::strcmp(v, "0") != 0;
  }();
  return env || g_forced_for_tests;
}

void force_check_for_tests() { g_forced_for_tests = true; }

}  // namespace tordb::obs
