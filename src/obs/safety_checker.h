// Online safety checker — continuously verifies the paper's global
// invariants from the trace stream, across every simulated node at once
// (DESIGN.md §7).
//
// Subscribes to a TraceBus and checks, on every event:
//
//   1. Green-order prefix consistency (Theorem 1): the checker maintains
//      the canonical green sequence (first writer per position wins); any
//      node marking position p green with a different action id diverges.
//   2. Uniqueness of green positions: no action id may become green at two
//      different positions, at any node.
//   3. Sequential greens: a node marks greens at exactly count+1; prefix
//      adoptions (state transfer, recovery) may only move a node to a
//      count the canonical history already covers.
//   4. Green FIFO (Theorem 2): within the canonical sequence each
//      creator's actions appear in creation-index order without gaps.
//   5. At most one primary component per generation: two installs of the
//      same prim_index must agree on attempt and membership.
//   6. White-trim stability: a node may only trim up to a line that every
//      member of its current server-set view has already marked green at
//      some point (its high-water green count). The high-water mark — not
//      the current count — is the bound because green knowledge is logged
//      asynchronously: a member can crash and recover *below* its pre-crash
//      green line, while peers legitimately still hold (and re-propagate)
//      the knowledge it emitted before the crash. Trimming past such a
//      retreated member stays safe — the next exchange detects the member
//      below the white line and falls back to a catch-up state transfer
//      instead of per-position body retransmission (DESIGN.md §14).
//      Trimming past a line no member ever reached is still a violation:
//      that knowledge could only be fabricated.
//   7. Safe-delivery agreement (EVS): all nodes delivering (config, seq)
//      as safe saw the same payload.
//   8. Range ownership (shard rebalancing, DESIGN.md §9): per key range,
//      no group green-applies a user write past its own fence position, a
//      range is never installed while another group still owns it, and an
//      install is always preceded by a fence somewhere — i.e. no key is
//      green-applied by two shards for overlapping post-fence indices.
//   9. Transaction resolution (cross-shard prepared checks, DESIGN.md §13):
//      per transaction and per group, a confirm or cancel is only ever
//      green after a prepare, and the two decisions are mutually exclusive
//      — a group that confirmed never cancels and vice versa, so every
//      replica of a shard resolves each prepare the same single way.
//  10. Honest announcements (DESIGN.md §14): a green-line announcement is a
//      lower-bound claim, so per node it must be monotone non-decreasing
//      and must never exceed the announcer's true green count — a "lying"
//      announcement would let peers trim white past history the announcer
//      does not actually hold. Crash recovery and snapshot adoption reset
//      the baseline (a recovered node may legitimately re-announce lower).
//
// Violations fail fast: the checker prints a report — including a diff of
// the divergent histories around the offending position — and aborts the
// process (tests die loudly at the first bad event, not at the end-state
// assertion). Set `fail_fast = false` to collect violations instead (used
// by the checker's own negative tests and by the scenario runner, which
// prints a verdict).
//
// Multi-group deployments (src/shard): the paper's invariants hold *per
// replication group* — each shard runs its own total order, so there is one
// canonical green history, one primary lineage, and one safe-delivery space
// per group, not per deployment. Call set_node_group() before a node emits
// its first event to scope it; unassigned nodes land in group 0, which
// keeps single-group behaviour identical.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"

namespace tordb::obs {

struct CheckerOptions {
  bool fail_fast = true;          ///< print + abort on the first violation
  std::size_t max_violations = 64;  ///< retained when not failing fast
  std::size_t diff_context = 4;   ///< green positions shown around a divergence
};

class SafetyChecker {
 public:
  /// Subscribes to `bus`; the bus must outlive the checker's use (the
  /// harness owns both, checker after bus).
  SafetyChecker(TraceBus& bus, CheckerOptions options = {});

  /// Scope `node` to a replication group (shard). Must be called before
  /// the node's first event; events from unassigned nodes check against
  /// group 0.
  void set_node_group(NodeId node, std::int64_t group);

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  std::uint64_t events_checked() const { return events_checked_; }
  /// Canonical green length of one group (default: group 0).
  std::int64_t canonical_green_count(std::int64_t group = 0) const;
  /// Canonical green length summed over every group.
  std::int64_t total_green_count() const;
  /// Invariant 9 quiescence accounting: (transaction, group) pairs that
  /// prepared but were neither confirmed nor cancelled yet. Tests assert 0
  /// once the coordinator drains — nonzero mid-run is normal in-flight
  /// state, so this is NOT folded into ok().
  std::int64_t txn_unresolved() const;
  /// Distinct (transaction, group) prepares observed — a sanity floor for
  /// tests that must prove the prepared-check protocol actually ran.
  std::int64_t txn_prepared() const;

  /// "checker: ok (N events)" or "checker: K violation(s): first..."
  std::string verdict() const;
  /// Full multi-line report of every recorded violation.
  std::string report() const;

  /// Feed one event directly (the bus subscription calls this; negative
  /// tests inject forged events through the bus instead).
  void on_event(const TraceEvent& e);

 private:
  struct NodeView {
    bool seen = false;
    std::int64_t green_count = 0;
    /// Highest green count the node ever reached — never lowered by crash
    /// recovery. Invariant 6 bounds peers' white trims by this, because
    /// pre-crash knowledge legitimately outlives a recovery retreat.
    std::int64_t green_highwater = 0;
    std::set<NodeId> members;
    std::vector<ActionId> recent;  ///< trailing green ids, for diffs
    std::int64_t last_announced = -1;  ///< invariant 10; -1 = no announcement yet
  };
  struct PrimInfo {
    std::int64_t attempt = 0;
    std::uint64_t member_hash = 0;
    std::int64_t member_count = 0;
    std::vector<NodeId> members;
    NodeId installer = kNoNode;
  };

  /// Invariant 8 state, per range fingerprint. Positions are green
  /// positions within each group's own history; comparisons only ever
  /// happen within one group, so the two independent total orders are
  /// never confused. Highest-position-wins makes lagging replica replays
  /// (which re-apply the same green order at the same positions) no-ops.
  struct RangeState {
    std::map<std::int64_t, std::int64_t> fence_pos;    ///< group -> fence green pos
    std::map<std::int64_t, std::int64_t> unfence_pos;  ///< group -> unfence green pos
    std::map<std::int64_t, std::int64_t> install_pos;  ///< group -> install green pos
    std::map<std::int64_t, std::int64_t> write_pos;    ///< group -> last write green pos
  };

  /// Invariant 9 state, per transaction fingerprint (the reserved pending
  /// key). Same position-dedup discipline as RangeState: replicas of a
  /// group replay the same transitions at the same green positions, so only
  /// a strictly higher position is a new transition.
  struct TxnState {
    std::map<std::int64_t, std::int64_t> prepare_pos;  ///< group -> prepare green pos
    std::map<std::int64_t, std::int64_t> confirm_pos;  ///< group -> confirm green pos
    std::map<std::int64_t, std::int64_t> cancel_pos;   ///< group -> cancel green pos
  };

  struct SafeKey {
    std::int64_t counter;
    NodeId coordinator;
    std::int64_t seq;
    auto operator<=>(const SafeKey&) const = default;
  };

  /// Per-group invariant state: one canonical history, primary lineage and
  /// safe-delivery space per replication group.
  struct GroupState {
    // Canonical green history (position -> action, 0-based internally).
    std::vector<ActionId> canon;
    std::unordered_map<ActionId, std::int64_t> position_of;
    std::map<NodeId, std::int64_t> last_green_index;  ///< FIFO per creator
    std::map<std::int64_t, PrimInfo> primaries;
    std::int64_t pending_prim_index = -1;  ///< collecting kPrimaryMember events
    NodeId pending_prim_node = kNoNode;
    std::map<SafeKey, std::uint64_t> safe_payload;
  };

  void violation(const std::string& what);
  std::string green_diff(const GroupState& g, NodeId node, std::int64_t position,
                         const ActionId& claimed) const;
  NodeView& view(NodeId n);
  GroupState& group_of(NodeId n);
  std::int64_t group_id(NodeId n) const;

  void on_green(const TraceEvent& e);
  void on_adopt(NodeId node, std::int64_t green_count, const char* how);
  void on_primary_install(const TraceEvent& e);
  void on_white_trim(const TraceEvent& e);
  void on_safe_deliver(const TraceEvent& e);
  void on_range_event(const TraceEvent& e);
  void on_txn_event(const TraceEvent& e);
  void on_announce(const TraceEvent& e);

  CheckerOptions options_;
  std::uint64_t events_checked_ = 0;
  std::vector<std::string> violations_;

  std::map<std::int64_t, GroupState> groups_;
  std::map<NodeId, std::int64_t> node_group_;  ///< absent = group 0
  std::map<std::int64_t, RangeState> ranges_;  ///< range fingerprint -> state
  std::map<std::int64_t, TxnState> txns_;      ///< txn fingerprint -> state

  std::map<NodeId, NodeView> nodes_;
};

}  // namespace tordb::obs
