// Structured trace bus — the observability backbone (DESIGN.md §7).
//
// Every node-side component (replication engine, group communication,
// stable storage) holds a `Tracer`: a copyable, two-word handle that is
// either disconnected (the default — every emit is a tagged-pointer test
// and a return, no formatting, no allocation) or connected to the
// deployment-wide `TraceBus`. The bus stamps events with the *simulated*
// clock, retains the most recent events in a fixed ring, and fans each
// event out to subscribers synchronously — the online safety checker
// (safety_checker.h) is one such subscriber.
//
// Events are typed and allocation-light: one POD struct, with per-kind
// field meaning documented at the enum. Anything that needs a string
// (log-line capture) goes through a side ring of strings and the event
// carries the index.
//
// Exports: JSONL (one event object per line) and the Chrome trace-event
// format (load the file in chrome://tracing or ui.perfetto.dev); the
// Chrome export pairs ExchangeStart/PrimaryInstall into duration slices so
// view changes show up as spans per node.
//
// Lane mode (DESIGN.md §15): when the simulator runs partitioned into
// event lanes, emits from a running lane are buffered per lane and flushed
// at each window barrier, merged by (virtual time, lane) — so the stream
// subscribers and the ring observe is deterministic regardless of worker
// thread count, and no two threads ever touch the ring concurrently. The
// bus must be constructed *after* Simulator::enable_lanes(). Emits while
// the simulator is parked (setup/teardown) dispatch inline as before.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/types.h"

namespace tordb::obs {

/// Per-kind payload fields (a, b, c, d are kind-specific; unused = 0):
enum class EventKind : std::uint8_t {
  kEngineStart = 0,      ///< a=green count, b=start mode (0 fresh/1 recover/2 join)
  kStateTransition,      ///< a=from EngineState, b=to EngineState
  kActionSubmitted,      ///< action; a=semantics, b=action type
  kActionRed,            ///< action
  kActionGreen,          ///< action; a=green position (1-based)
  kWhiteTrim,            ///< a=new white line, b=bodies trimmed by this call
  kSafeDeliver,          ///< a=config counter, b=config coordinator, c=seq, d=payload hash
  kViewRegular,          ///< a=config counter, b=coordinator, c=member count
  kViewTransitional,     ///< a=config counter, b=coordinator, c=member count
  kExchangeStart,        ///< a=config counter, b=coordinator
  kQuorumVote,           ///< a=config counter, b=coordinator, c=voting node (CPC)
  kPrimaryInstall,       ///< a=prim index, b=attempt index, c=member count, d=member hash
  kPrimaryMember,        ///< a=prim index, b=member id (follows kPrimaryInstall)
  kMemberReset,          ///< node's server-set view restarts empty (snapshot adopt)
  kMemberAdd,            ///< a=subject joining the node's server-set view
  kMemberRemove,         ///< a=subject leaving the node's server-set view
  kForcedSync,           ///< a=records durable after the force, b=total forces
  kStateTransferSend,    ///< a=green count shipped, b=destination node
  kStateTransferApply,   ///< a=green count adopted
  kLogLine,              ///< a=index into the bus string ring, b=log level
  // Shard tier (emitted by shard::Router; node = kNoNode).
  kShardRoute,           ///< a=shard, b=client, c=cross-shard id (0 = single-shard)
  kShardFailover,        ///< a=shard, b=client, c=attempts the request took
  kShardCrossSubmit,     ///< a=cross-shard id, b=client, c=involved shard count
  kShardCrossCommit,     ///< a=cross-shard id, b=committed (1/0), c=barrier wait ns
  // Rebalancing (DESIGN.md §9). Range kinds are emitted by each replica as
  // the action goes green there; kDirectoryEpoch by the rebalancer (kNoNode).
  kRangeFence,           ///< a=range fingerprint, b=green position of the fence
  kRangeInstall,         ///< a=range fingerprint, b=green position, c=rows installed
  kRangeWrite,           ///< a=range fingerprint, b=green position of the write
  kRangeUnfence,         ///< a=range fingerprint, b=green position (abandoned-move rollback)
  kDirectoryEpoch,       ///< a=new epoch, b=new owner shard, c=range fingerprint
  // Cross-shard prepared-check transactions (DESIGN.md §13). The first
  // three are emitted by each replica as the marker goes green there — the
  // per-group evidence invariant 9 consumes; the last three come from the
  // txn::TxnCoordinator (node = kNoNode).
  kTxnPrepare,           ///< a=txn fingerprint, b=green position of the prepare
  kTxnConfirm,           ///< a=txn fingerprint, b=green position of the confirm
  kTxnCancel,            ///< a=txn fingerprint, b=green position of the cancel
  kTxnBegin,             ///< a=txn fingerprint, b=involved shard count
  kTxnDecide,            ///< a=txn fingerprint, b=commit (1/0), c=prepare->decide ns
  kTxnSnapshotRead,      ///< a=involved shard count, b=drain wait ns
  // Green-line announcements (DESIGN.md §14).
  kAnnounceSend,         ///< a=announced own green line, b=knowledge-vector size
  kAnnounceRecv,         ///< a=sender node, b=sender's announced own green line
};

const char* to_string(EventKind k);

struct TraceEvent {
  SimTime time = 0;
  NodeId node = kNoNode;
  EventKind kind = EventKind::kEngineStart;
  ActionId action;  ///< valid for kAction* kinds only
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
  std::int64_t d = 0;
};

/// FNV-1a over a byte payload — cheap stable fingerprint for kSafeDeliver.
std::uint64_t fingerprint(const std::uint8_t* data, std::size_t size);
inline std::uint64_t fingerprint(const std::vector<std::uint8_t>& bytes) {
  return fingerprint(bytes.data(), bytes.size());
}

struct TraceBusOptions {
  std::size_t ring_capacity = 1 << 16;      ///< events retained for export
  std::size_t string_ring_capacity = 4096;  ///< captured log lines retained
};

class TraceBus {
 public:
  /// `sim` provides the timestamp for every event (the simulated clock).
  explicit TraceBus(Simulator& sim, TraceBusOptions options = {});
  ~TraceBus();

  TraceBus(const TraceBus&) = delete;
  TraceBus& operator=(const TraceBus&) = delete;

  /// Stamp `e.time` and fan out. Synchronous: subscribers run inline, so a
  /// checker observes every event before the simulation proceeds.
  void emit(TraceEvent e);

  /// Subscribers are append-only for the bus lifetime (no unsubscribe —
  /// the deployment tears the bus down as one unit).
  void subscribe(std::function<void(const TraceEvent&)> fn);

  std::uint64_t emitted() const { return emitted_; }

  /// The retained tail of the event stream, oldest first.
  std::vector<TraceEvent> ring_snapshot() const;

  /// Capture `Log` output: installs a sink that interns each line into the
  /// string ring and emits a kLogLine event (while still writing the line
  /// to the default destination). Uninstalled automatically on destruction.
  void capture_logs();
  const std::string* log_line(std::int64_t index) const;

  // --- export ---------------------------------------------------------------
  std::string to_jsonl() const;
  std::string to_chrome_trace() const;
  bool write_file(const std::string& path, const std::string& contents) const;

 private:
  /// Ring insert + subscriber fan-out (single-threaded: inline when the
  /// simulator is parked or classic, barrier flush otherwise).
  void dispatch(const TraceEvent& e);
  /// Merge per-lane buffers by (time, lane) and dispatch; barrier hook.
  void flush_lanes();

  Simulator& sim_;
  TraceBusOptions options_;
  std::vector<TraceEvent> ring_;  ///< circular once full
  std::size_t ring_next_ = 0;
  bool ring_wrapped_ = false;
  std::uint64_t emitted_ = 0;
  std::vector<std::function<void(const TraceEvent&)>> subscribers_;
  std::mutex log_mu_;  ///< guards strings_/next_string_ (worker-lane logs)
  std::vector<std::string> strings_;
  std::int64_t next_string_ = 0;
  bool log_capture_installed_ = false;
  /// Per-lane pending events (lane mode only; empty otherwise). Each lane
  /// appends only its own buffer; flushed under the window barrier.
  std::vector<std::vector<TraceEvent>> lane_buf_;
  std::vector<TraceEvent> flush_buf_;  ///< merge scratch
  bool hook_installed_ = false;
};

/// The per-node emission handle. Default-constructed tracers are
/// disconnected and free: `emit` is a null test. Copy freely into params
/// structs; the bus must outlive every component holding a handle onto it
/// (the cluster harness owns both, in the right order).
class Tracer {
 public:
  Tracer() = default;
  Tracer(std::shared_ptr<TraceBus> bus, NodeId node) : bus_(std::move(bus)), node_(node) {}

  explicit operator bool() const { return bus_ != nullptr; }
  NodeId node() const { return node_; }
  TraceBus* bus() const { return bus_.get(); }

  void emit(EventKind kind, std::int64_t a = 0, std::int64_t b = 0, std::int64_t c = 0,
            std::int64_t d = 0) const {
    if (!bus_) return;
    TraceEvent e;
    e.node = node_;
    e.kind = kind;
    e.a = a;
    e.b = b;
    e.c = c;
    e.d = d;
    bus_->emit(e);
  }

  void emit_action(EventKind kind, const ActionId& action, std::int64_t a = 0,
                   std::int64_t b = 0) const {
    if (!bus_) return;
    TraceEvent e;
    e.node = node_;
    e.kind = kind;
    e.action = action;
    e.a = a;
    e.b = b;
    bus_->emit(e);
  }

 private:
  std::shared_ptr<TraceBus> bus_;
  NodeId node_ = kNoNode;
};

/// True when `TORDB_OBS_CHECK=1` (or any non-"0" value) is in the
/// environment, or a test binary called `force_check_for_tests()`. Cluster
/// harnesses consult this so the whole ctest suite can run with the safety
/// checker force-enabled without touching every test.
bool check_forced();
void force_check_for_tests();

}  // namespace tordb::obs
