// Documentation checker, run as a ctest test (and by the CI docs job):
//
//   1. Every relative markdown link in the root-level *.md files and in
//      docs/ must resolve to a file or directory in the repo (external
//      http(s)/mailto links and pure #anchors are skipped; a #fragment on a
//      relative link is checked against the target file's existence only).
//   2. Every subdirectory of src/ must be mentioned by name (as "src/<dir>")
//      in docs/ARCHITECTURE.md — adding a subsystem without touring it in
//      the architecture doc fails the build.
//
// Usage: docs_check <repo root>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Drop fenced code blocks (``` ... ```): C++ lambdas like `[](const X&)`
/// would otherwise parse as links.
std::string strip_code_fences(const std::string& text) {
  std::string out;
  bool in_fence = false;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("```", 0) == 0) {
      in_fence = !in_fence;
      continue;
    }
    if (!in_fence) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

/// True when the `[` matching the `]` at `close` is an image link (`![`).
/// Image links are skipped: paper-text extracts (PAPERS.md) reference
/// figures that were never retrieved, and images are not navigation.
bool is_image_link(const std::string& text, std::size_t close) {
  int depth = 0;
  for (std::size_t j = close;; --j) {
    if (text[j] == ']') ++depth;
    if (text[j] == '[' && --depth == 0) return j > 0 && text[j - 1] == '!';
    if (j == 0) break;
  }
  return false;
}

/// Extract markdown link targets: the (...) of [text](target), tolerating
/// "(target "title")". Inline code and autolinks are not parsed — the repo's
/// docs only use the [text](target) form.
std::vector<std::string> link_targets(const std::string& text) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] != ']' || text[i + 1] != '(') continue;
    if (is_image_link(text, i)) continue;
    const std::size_t start = i + 2;
    const std::size_t end = text.find(')', start);
    if (end == std::string::npos) continue;
    std::string target = text.substr(start, end - start);
    if (const std::size_t sp = target.find(' '); sp != std::string::npos) {
      target.resize(sp);  // strip an optional "title"
    }
    if (target.find('\n') != std::string::npos) continue;  // not a link
    if (!target.empty()) out.push_back(std::move(target));
  }
  return out;
}

bool is_external(const std::string& t) {
  return t.rfind("http://", 0) == 0 || t.rfind("https://", 0) == 0 ||
         t.rfind("mailto:", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: docs_check <repo root>\n");
    return 2;
  }
  const fs::path root = argv[1];
  int failures = 0;

  // Collect the markdown set: root-level *.md plus everything under docs/.
  std::vector<fs::path> md_files;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (entry.is_regular_file() && entry.path().extension() == ".md") {
      md_files.push_back(entry.path());
    }
  }
  for (const auto& entry : fs::recursive_directory_iterator(root / "docs")) {
    if (entry.is_regular_file() && entry.path().extension() == ".md") {
      md_files.push_back(entry.path());
    }
  }

  std::size_t links_checked = 0;
  for (const fs::path& md : md_files) {
    const std::string text = strip_code_fences(slurp(md));
    for (const std::string& target : link_targets(text)) {
      if (is_external(target)) continue;
      std::string path = target;
      if (const std::size_t hash = path.find('#'); hash != std::string::npos) {
        path.resize(hash);        // keep the file part of file.md#anchor
        if (path.empty()) continue;  // same-file #anchor
      }
      ++links_checked;
      const fs::path resolved = md.parent_path() / path;
      if (!fs::exists(resolved)) {
        std::fprintf(stderr, "BROKEN LINK %s -> %s (resolved %s)\n",
                     md.lexically_relative(root).c_str(), target.c_str(),
                     resolved.lexically_normal().c_str());
        ++failures;
      }
    }
  }

  // Architecture coverage: every src/* subsystem must be toured.
  const fs::path arch = root / "docs" / "ARCHITECTURE.md";
  if (!fs::exists(arch)) {
    std::fprintf(stderr, "MISSING docs/ARCHITECTURE.md\n");
    ++failures;
  } else {
    const std::string text = slurp(arch);
    for (const auto& entry : fs::directory_iterator(root / "src")) {
      if (!entry.is_directory()) continue;
      const std::string mention = "src/" + entry.path().filename().string();
      if (text.find(mention) == std::string::npos) {
        std::fprintf(stderr, "UNDOCUMENTED SUBSYSTEM: %s not mentioned in docs/ARCHITECTURE.md\n",
                     mention.c_str());
        ++failures;
      }
    }
  }

  std::printf("docs_check: %zu markdown files, %zu relative links, %d failure(s)\n",
              md_files.size(), links_checked, failures);
  return failures == 0 ? 0 : 1;
}
