file(REMOVE_RECURSE
  "CMakeFiles/tordb_sim.dir/network.cc.o"
  "CMakeFiles/tordb_sim.dir/network.cc.o.d"
  "CMakeFiles/tordb_sim.dir/simulator.cc.o"
  "CMakeFiles/tordb_sim.dir/simulator.cc.o.d"
  "libtordb_sim.a"
  "libtordb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tordb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
