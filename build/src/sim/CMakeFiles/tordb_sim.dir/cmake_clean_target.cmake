file(REMOVE_RECURSE
  "libtordb_sim.a"
)
