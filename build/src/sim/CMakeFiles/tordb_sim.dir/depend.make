# Empty dependencies file for tordb_sim.
# This may be replaced when dependencies are built.
