file(REMOVE_RECURSE
  "libtordb_baselines.a"
)
