# Empty compiler generated dependencies file for tordb_baselines.
# This may be replaced when dependencies are built.
