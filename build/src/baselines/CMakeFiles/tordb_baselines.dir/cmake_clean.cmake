file(REMOVE_RECURSE
  "CMakeFiles/tordb_baselines.dir/corel.cc.o"
  "CMakeFiles/tordb_baselines.dir/corel.cc.o.d"
  "CMakeFiles/tordb_baselines.dir/twopc.cc.o"
  "CMakeFiles/tordb_baselines.dir/twopc.cc.o.d"
  "libtordb_baselines.a"
  "libtordb_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tordb_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
