file(REMOVE_RECURSE
  "CMakeFiles/tordb_storage.dir/stable_storage.cc.o"
  "CMakeFiles/tordb_storage.dir/stable_storage.cc.o.d"
  "libtordb_storage.a"
  "libtordb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tordb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
