# Empty dependencies file for tordb_storage.
# This may be replaced when dependencies are built.
