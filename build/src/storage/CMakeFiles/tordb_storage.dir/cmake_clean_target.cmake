file(REMOVE_RECURSE
  "libtordb_storage.a"
)
