# Empty compiler generated dependencies file for tordb_util.
# This may be replaced when dependencies are built.
