file(REMOVE_RECURSE
  "CMakeFiles/tordb_util.dir/log.cc.o"
  "CMakeFiles/tordb_util.dir/log.cc.o.d"
  "CMakeFiles/tordb_util.dir/types.cc.o"
  "CMakeFiles/tordb_util.dir/types.cc.o.d"
  "libtordb_util.a"
  "libtordb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tordb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
