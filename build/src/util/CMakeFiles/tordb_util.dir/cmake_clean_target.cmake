file(REMOVE_RECURSE
  "libtordb_util.a"
)
