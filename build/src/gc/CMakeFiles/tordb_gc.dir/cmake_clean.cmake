file(REMOVE_RECURSE
  "CMakeFiles/tordb_gc.dir/group_communication.cc.o"
  "CMakeFiles/tordb_gc.dir/group_communication.cc.o.d"
  "CMakeFiles/tordb_gc.dir/messages.cc.o"
  "CMakeFiles/tordb_gc.dir/messages.cc.o.d"
  "CMakeFiles/tordb_gc.dir/spread_compat.cc.o"
  "CMakeFiles/tordb_gc.dir/spread_compat.cc.o.d"
  "libtordb_gc.a"
  "libtordb_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tordb_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
