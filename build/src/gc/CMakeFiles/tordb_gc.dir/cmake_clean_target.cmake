file(REMOVE_RECURSE
  "libtordb_gc.a"
)
