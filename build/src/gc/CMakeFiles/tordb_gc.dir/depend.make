# Empty dependencies file for tordb_gc.
# This may be replaced when dependencies are built.
