file(REMOVE_RECURSE
  "libtordb_workload.a"
)
