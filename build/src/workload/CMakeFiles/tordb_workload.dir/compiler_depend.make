# Empty compiler generated dependencies file for tordb_workload.
# This may be replaced when dependencies are built.
