file(REMOVE_RECURSE
  "CMakeFiles/tordb_workload.dir/cluster.cc.o"
  "CMakeFiles/tordb_workload.dir/cluster.cc.o.d"
  "CMakeFiles/tordb_workload.dir/experiments.cc.o"
  "CMakeFiles/tordb_workload.dir/experiments.cc.o.d"
  "CMakeFiles/tordb_workload.dir/scenario.cc.o"
  "CMakeFiles/tordb_workload.dir/scenario.cc.o.d"
  "libtordb_workload.a"
  "libtordb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tordb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
