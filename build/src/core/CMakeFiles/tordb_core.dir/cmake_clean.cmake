file(REMOVE_RECURSE
  "CMakeFiles/tordb_core.dir/action.cc.o"
  "CMakeFiles/tordb_core.dir/action.cc.o.d"
  "CMakeFiles/tordb_core.dir/client_session.cc.o"
  "CMakeFiles/tordb_core.dir/client_session.cc.o.d"
  "CMakeFiles/tordb_core.dir/messages.cc.o"
  "CMakeFiles/tordb_core.dir/messages.cc.o.d"
  "CMakeFiles/tordb_core.dir/replica_node.cc.o"
  "CMakeFiles/tordb_core.dir/replica_node.cc.o.d"
  "CMakeFiles/tordb_core.dir/replication_engine.cc.o"
  "CMakeFiles/tordb_core.dir/replication_engine.cc.o.d"
  "libtordb_core.a"
  "libtordb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tordb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
