# Empty dependencies file for tordb_core.
# This may be replaced when dependencies are built.
