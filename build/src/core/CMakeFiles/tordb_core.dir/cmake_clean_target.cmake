file(REMOVE_RECURSE
  "libtordb_core.a"
)
