
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/action.cc" "src/core/CMakeFiles/tordb_core.dir/action.cc.o" "gcc" "src/core/CMakeFiles/tordb_core.dir/action.cc.o.d"
  "/root/repo/src/core/client_session.cc" "src/core/CMakeFiles/tordb_core.dir/client_session.cc.o" "gcc" "src/core/CMakeFiles/tordb_core.dir/client_session.cc.o.d"
  "/root/repo/src/core/messages.cc" "src/core/CMakeFiles/tordb_core.dir/messages.cc.o" "gcc" "src/core/CMakeFiles/tordb_core.dir/messages.cc.o.d"
  "/root/repo/src/core/replica_node.cc" "src/core/CMakeFiles/tordb_core.dir/replica_node.cc.o" "gcc" "src/core/CMakeFiles/tordb_core.dir/replica_node.cc.o.d"
  "/root/repo/src/core/replication_engine.cc" "src/core/CMakeFiles/tordb_core.dir/replication_engine.cc.o" "gcc" "src/core/CMakeFiles/tordb_core.dir/replication_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gc/CMakeFiles/tordb_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/tordb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tordb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tordb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tordb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
