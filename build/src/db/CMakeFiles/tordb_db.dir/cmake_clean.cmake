file(REMOVE_RECURSE
  "CMakeFiles/tordb_db.dir/database.cc.o"
  "CMakeFiles/tordb_db.dir/database.cc.o.d"
  "libtordb_db.a"
  "libtordb_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tordb_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
