# Empty dependencies file for tordb_db.
# This may be replaced when dependencies are built.
