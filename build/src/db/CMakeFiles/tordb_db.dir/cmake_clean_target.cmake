file(REMOVE_RECURSE
  "libtordb_db.a"
)
