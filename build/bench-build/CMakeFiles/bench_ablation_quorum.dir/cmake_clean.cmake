file(REMOVE_RECURSE
  "../bench/bench_ablation_quorum"
  "../bench/bench_ablation_quorum.pdb"
  "CMakeFiles/bench_ablation_quorum.dir/bench_ablation_quorum.cc.o"
  "CMakeFiles/bench_ablation_quorum.dir/bench_ablation_quorum.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
