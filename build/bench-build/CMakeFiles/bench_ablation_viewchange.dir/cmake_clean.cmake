file(REMOVE_RECURSE
  "../bench/bench_ablation_viewchange"
  "../bench/bench_ablation_viewchange.pdb"
  "CMakeFiles/bench_ablation_viewchange.dir/bench_ablation_viewchange.cc.o"
  "CMakeFiles/bench_ablation_viewchange.dir/bench_ablation_viewchange.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_viewchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
