# Empty compiler generated dependencies file for bench_ablation_viewchange.
# This may be replaced when dependencies are built.
