file(REMOVE_RECURSE
  "../bench/bench_fig5b_disk_writes"
  "../bench/bench_fig5b_disk_writes.pdb"
  "CMakeFiles/bench_fig5b_disk_writes.dir/bench_fig5b_disk_writes.cc.o"
  "CMakeFiles/bench_fig5b_disk_writes.dir/bench_fig5b_disk_writes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_disk_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
