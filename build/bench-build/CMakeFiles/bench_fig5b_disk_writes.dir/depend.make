# Empty dependencies file for bench_fig5b_disk_writes.
# This may be replaced when dependencies are built.
