file(REMOVE_RECURSE
  "CMakeFiles/sessions.dir/sessions.cpp.o"
  "CMakeFiles/sessions.dir/sessions.cpp.o.d"
  "sessions"
  "sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
