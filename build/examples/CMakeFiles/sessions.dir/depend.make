# Empty dependencies file for sessions.
# This may be replaced when dependencies are built.
