# Empty compiler generated dependencies file for sessions.
# This may be replaced when dependencies are built.
