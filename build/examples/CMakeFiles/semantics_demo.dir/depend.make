# Empty dependencies file for semantics_demo.
# This may be replaced when dependencies are built.
