# Empty dependencies file for dynamic_replicas.
# This may be replaced when dependencies are built.
