file(REMOVE_RECURSE
  "CMakeFiles/dynamic_replicas.dir/dynamic_replicas.cpp.o"
  "CMakeFiles/dynamic_replicas.dir/dynamic_replicas.cpp.o.d"
  "dynamic_replicas"
  "dynamic_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
