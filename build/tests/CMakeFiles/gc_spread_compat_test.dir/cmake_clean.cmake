file(REMOVE_RECURSE
  "CMakeFiles/gc_spread_compat_test.dir/gc_spread_compat_test.cc.o"
  "CMakeFiles/gc_spread_compat_test.dir/gc_spread_compat_test.cc.o.d"
  "gc_spread_compat_test"
  "gc_spread_compat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_spread_compat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
