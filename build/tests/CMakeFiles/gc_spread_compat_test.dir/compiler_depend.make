# Empty compiler generated dependencies file for gc_spread_compat_test.
# This may be replaced when dependencies are built.
