file(REMOVE_RECURSE
  "CMakeFiles/core_exchange_test.dir/core_exchange_test.cc.o"
  "CMakeFiles/core_exchange_test.dir/core_exchange_test.cc.o.d"
  "core_exchange_test"
  "core_exchange_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_exchange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
