# Empty dependencies file for core_exchange_test.
# This may be replaced when dependencies are built.
