file(REMOVE_RECURSE
  "CMakeFiles/gc_flush_test.dir/gc_flush_test.cc.o"
  "CMakeFiles/gc_flush_test.dir/gc_flush_test.cc.o.d"
  "gc_flush_test"
  "gc_flush_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_flush_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
