# Empty compiler generated dependencies file for gc_flush_test.
# This may be replaced when dependencies are built.
