file(REMOVE_RECURSE
  "CMakeFiles/gc_regression_test.dir/gc_regression_test.cc.o"
  "CMakeFiles/gc_regression_test.dir/gc_regression_test.cc.o.d"
  "gc_regression_test"
  "gc_regression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
