file(REMOVE_RECURSE
  "CMakeFiles/sim_wan_test.dir/sim_wan_test.cc.o"
  "CMakeFiles/sim_wan_test.dir/sim_wan_test.cc.o.d"
  "sim_wan_test"
  "sim_wan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_wan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
