# Empty compiler generated dependencies file for sim_wan_test.
# This may be replaced when dependencies are built.
