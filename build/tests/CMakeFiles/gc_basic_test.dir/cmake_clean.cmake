file(REMOVE_RECURSE
  "CMakeFiles/gc_basic_test.dir/gc_basic_test.cc.o"
  "CMakeFiles/gc_basic_test.dir/gc_basic_test.cc.o.d"
  "gc_basic_test"
  "gc_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
