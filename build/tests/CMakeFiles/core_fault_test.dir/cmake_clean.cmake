file(REMOVE_RECURSE
  "CMakeFiles/core_fault_test.dir/core_fault_test.cc.o"
  "CMakeFiles/core_fault_test.dir/core_fault_test.cc.o.d"
  "core_fault_test"
  "core_fault_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
