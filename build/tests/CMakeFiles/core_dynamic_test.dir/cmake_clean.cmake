file(REMOVE_RECURSE
  "CMakeFiles/core_dynamic_test.dir/core_dynamic_test.cc.o"
  "CMakeFiles/core_dynamic_test.dir/core_dynamic_test.cc.o.d"
  "core_dynamic_test"
  "core_dynamic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
