file(REMOVE_RECURSE
  "CMakeFiles/gc_partition_test.dir/gc_partition_test.cc.o"
  "CMakeFiles/gc_partition_test.dir/gc_partition_test.cc.o.d"
  "gc_partition_test"
  "gc_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
