# Empty dependencies file for gc_partition_test.
# This may be replaced when dependencies are built.
