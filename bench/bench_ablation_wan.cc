// Ablation A4 (DESIGN.md): wide-area deployment.
//
// 9 replicas over 3 sites, 20 ms one-way inter-site latency, with the WAN
// egress bandwidth of each site progressively constrained. All protocols
// pay similar total WAN bytes per action (the action content must reach
// every site), so under tight bandwidth they converge toward the wire
// limit; at unconstrained bandwidth the engine has the best
// latency/throughput.
//
// Note on the paper's §7 prediction ("on wide area network ... COReL will
// further outperform two-phase commit"): in this lock-free cost model the
// prediction does NOT emerge — 2PC's per-action WAN traffic is spread
// across coordinator sites while the ordered protocols concentrate theirs
// at the sequencer's site, leaving the two roughly even. The prediction
// relies on effects outside the model (lock hold time across 2PC's rounds,
// per-connection stream multiplexing). We report the negative result
// rather than tuning it away; see EXPERIMENTS.md.
#include <cstdio>

#include "bench_util.h"
#include "workload/experiments.h"

int main() {
  using namespace tordb;
  using namespace tordb::workload;

  bench::header("Ablation A4: WAN deployment (9 replicas, 3 sites, 20ms one-way)",
                "engine best at unconstrained bandwidth; all protocols converge toward the "
                "wire limit as the WAN egress tightens (see header comment re: paper's "
                "COReL-vs-2PC prediction)");

  const int replicas = 9;
  const int clients = 36;
  const int sites = 3;
  const SimDuration wan_latency = millis(20);
  const SimDuration warmup = millis(500);
  const SimDuration measure = bench::fast_mode() ? seconds(3) : seconds(8);

  struct Bw {
    const char* label;
    SimDuration per_byte;
  };
  std::vector<Bw> bandwidths = {
      {"unlimited", 0},
      {"10 Mbit/s", nanos(800)},
      {"1.5 Mbit/s (T1)", micros(5) + nanos(333)},
      {"0.5 Mbit/s", micros(16)},
  };
  if (bench::fast_mode()) bandwidths = {{"unlimited", 0}, {"1.5 Mbit/s (T1)", micros(5)}};

  std::printf("%18s | %20s | %20s | %20s\n", "WAN egress/site", "engine", "COReL", "2PC");
  bench::row_sep(92);
  for (const Bw& bw : bandwidths) {
    const auto e = measure_throughput_wan(Algorithm::kEngine, replicas, clients, sites,
                                          wan_latency, bw.per_byte, warmup, measure);
    const auto k = measure_throughput_wan(Algorithm::kCorel, replicas, clients, sites,
                                          wan_latency, bw.per_byte, warmup, measure);
    const auto t = measure_throughput_wan(Algorithm::kTwoPc, replicas, clients, sites,
                                          wan_latency, bw.per_byte, warmup, measure);
    std::printf("%18s | %8.0f (%7.2fms) | %8.0f (%7.2fms) | %8.0f (%7.2fms)\n", bw.label,
                e.actions_per_second, e.mean_latency_ms, k.actions_per_second,
                k.mean_latency_ms, t.actions_per_second, t.mean_latency_ms);
  }
  std::printf("\n(committed actions/s; parentheses: mean latency)\n");
  return 0;
}
