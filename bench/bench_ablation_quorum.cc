// Ablation A5 (DESIGN.md): the quorum system. The paper selects dynamic
// linear voting [15] — "the component that contains a (weighted) majority
// of the last primary component becomes the new primary component" — over
// a static majority of the full replica set. Under a cascading partition
// schedule (the surviving component shrinks one replica at a time, then the
// network heals), dynamic linear voting follows the surviving lineage all
// the way down to two replicas, while a static majority loses the primary
// as soon as fewer than a majority of ALL replicas stay connected.
#include <cstdio>

#include "bench_util.h"
#include "workload/experiments.h"

int main() {
  using namespace tordb;
  using namespace tordb::workload;

  bench::header("Ablation A5: dynamic linear voting vs static majority",
                "DLV keeps a primary through cascading shrinks; static majority goes dark");

  const SimDuration measure = bench::fast_mode() ? seconds(10) : seconds(30);
  std::vector<int> sizes = bench::fast_mode() ? std::vector<int>{7} : std::vector<int>{5, 7, 11};

  std::printf("%9s | %28s | %28s\n", "replicas", "dynamic linear voting",
              "static majority");
  std::printf("%9s | %14s %13s | %14s %13s\n", "", "availability", "committed",
              "availability", "committed");
  bench::row_sep(74);
  for (int n : sizes) {
    const auto dlv = measure_quorum_availability(true, n, measure, 1);
    const auto stat = measure_quorum_availability(false, n, measure, 1);
    std::printf("%9d | %13.1f%% %13llu | %13.1f%% %13llu\n", n,
                100 * dlv.primary_availability,
                static_cast<unsigned long long>(dlv.actions_committed),
                100 * stat.primary_availability,
                static_cast<unsigned long long>(stat.actions_committed));
  }
  std::printf("\n(availability: %% of time some primary component exists)\n");
  return 0;
}
