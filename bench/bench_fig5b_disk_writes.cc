// Figure 5(b): impact of forced disk writes — the replication engine with
// forced vs delayed (asynchronous) writes; 14 replicas, 1..14 clients.
//
// Expected shape (paper §7): the delayed-writes engine tops out at its
// processing limit (2500 actions/s on the paper's hardware) far above the
// forced-writes curve, which is disk-bound.
#include <cstdio>

#include "bench_util.h"
#include "workload/experiments.h"

int main() {
  using namespace tordb;
  using namespace tordb::workload;

  bench::header("Figure 5(b): engine throughput, forced vs delayed disk writes",
                "delayed-writes curve far above forced; flattens at the processing limit "
                "(paper: ~2500 actions/s)");

  const int replicas = 14;
  std::vector<int> clients = bench::fast_mode() ? std::vector<int>{1, 4, 14}
                                                : std::vector<int>{1, 2, 4, 6, 8, 10, 12, 14};
  const SimDuration warmup = bench::fast_mode() ? millis(500) : seconds(1);
  const SimDuration measure = bench::fast_mode() ? seconds(2) : seconds(6);

  std::printf("%8s | %26s | %26s | %6s\n", "clients", "forced writes (actions/s)",
              "delayed writes (actions/s)", "ratio");
  bench::row_sep();
  for (int c : clients) {
    const auto f = measure_throughput(Algorithm::kEngine, replicas, c, warmup, measure, 1);
    const auto d =
        measure_throughput(Algorithm::kEngineDelayed, replicas, c, warmup, measure, 1);
    std::printf("%8d | %14.0f (%6.2fms) | %14.0f (%6.2fms) | %5.1fx\n", c,
                f.actions_per_second, f.mean_latency_ms, d.actions_per_second,
                d.mean_latency_ms, d.actions_per_second / std::max(1.0, f.actions_per_second));
  }
  std::printf("\n(in parentheses: mean closed-loop action latency)\n");
  return 0;
}
