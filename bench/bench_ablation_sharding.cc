// Ablation A6 (DESIGN.md §8): sharded deployment.
//
// The paper replicates the whole database in one group, so one total order
// caps aggregate update throughput no matter how many replicas serve it.
// This ablation splits the key space into independent engine groups behind
// shard::Router and sweeps shard count x cross-shard ratio at a FIXED total
// replica count: at 0% cross-shard the aggregate green throughput should
// scale with the shard count (each group runs its own sequencer and pays
// group-local multicast costs), while raising the cross-shard ratio buys
// back coordination — every cross action occupies a session at each
// involved shard until the slowest one reports green (the commit barrier),
// so throughput falls and the barrier wait shows up as extra latency.
//
// Pass --quick (or set TORDB_BENCH_FAST=1) for the reduced CI sweep, or
// --smoke for the reduced sweep plus a wall-clock budget (default 90 s,
// TORDB_SHARDING_BUDGET_MS to override): the CI guard that fails loudly if
// the router->directory->db hot path regresses by an order of magnitude.
// The budget is deliberately loose — it tolerates sanitizers and slow
// runners, not a return of per-op key re-hashing and tree walks.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.h"
#include "workload/experiments.h"

int main(int argc, char** argv) {
  using namespace tordb;
  using namespace tordb::workload;

  bool quick = bench::fast_mode();
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--smoke") == 0) quick = smoke = true;
  }

  bench::header("Ablation A6: sharding (12 replicas total, closed-loop router clients)",
                "beyond the paper: partial replication over the unmodified engine; "
                "aggregate green throughput should scale with shard count at 0%% "
                "cross-shard and pay a commit-barrier tax as the ratio rises");

  const int total_replicas = 12;
  const int clients = 240;
  const SimDuration warmup = millis(500);
  const SimDuration measure = quick ? seconds(2) : seconds(6);

  std::vector<int> shard_counts = {1, 2, 4};
  std::vector<double> ratios = {0.0, 0.05, 0.2};
  if (quick) {
    shard_counts = {1, 4};
    ratios = {0.0, 0.2};
  }

  std::printf("%7s | %6s | %12s | %12s | %10s | %11s | %9s\n", "shards", "cross%",
              "committed/s", "green/s", "latency", "barrier", "crossed");
  bench::row_sep(86);
  const auto t0 = std::chrono::steady_clock::now();
  double green_1shard = 0, green_4shard = 0;
  for (const int shards : shard_counts) {
    for (const double ratio : ratios) {
      const auto p = measure_sharding(shards, total_replicas / shards, clients, ratio,
                                      warmup, measure);
      if (ratio == 0.0 && shards == 1) green_1shard = p.green_per_second;
      if (ratio == 0.0 && shards == 4) green_4shard = p.green_per_second;
      std::printf("%7d | %5.0f%% | %12.0f | %12.0f | %8.2fms | %9.2fms | %9llu\n", shards,
                  ratio * 100, p.actions_per_second, p.green_per_second, p.mean_latency_ms,
                  p.mean_barrier_ms, static_cast<unsigned long long>(p.cross_committed));
    }
  }
  std::printf("\n(green/s: aggregate engine green actions incl. session guards; barrier: mean "
              "first-green -> last-green wait of committed cross-shard actions)\n");
  if (green_1shard > 0 && green_4shard > 0) {
    std::printf("scaling at 0%% cross-shard: 4 shards / 1 shard = %.2fx\n",
                green_4shard / green_1shard);
  }

  if (smoke) {
    const double total_wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    double budget_ms = 90'000;
    if (const char* b = std::getenv("TORDB_SHARDING_BUDGET_MS")) {
      budget_ms = std::atof(b);
    }
    if (total_wall_ms > budget_ms) {
      std::fprintf(stderr,
                   "FAIL: smoke sweep took %.0f ms, over the %.0f ms budget — the "
                   "routing/apply hot path regressed\n",
                   total_wall_ms, budget_ms);
      return 1;
    }
    std::printf("smoke budget: %.0f ms <= %.0f ms OK\n", total_wall_ms, budget_ms);
  }
  return 0;
}
