// §7 latency experiment: one client, 2000 sequential actions, average
// response time per algorithm as the number of replicas varies.
//
// Expected shape (paper §7): "The average latency of the two-phase commit
// algorithm was around 19.3ms while for the COReL and our replication
// engine it was around 11.4ms regardless of the number of servers. These
// numbers are ... driven by the disk-write latency."
#include <cstdio>

#include "bench_util.h"
#include "workload/experiments.h"

int main() {
  using namespace tordb;
  using namespace tordb::workload;

  bench::header("Latency: 1 client, 2000 sequential actions",
                "2PC ~19.3ms; COReL and engine ~11.4ms, flat in the number of replicas");

  const int actions = bench::fast_mode() ? 300 : 2000;
  std::vector<int> replica_counts =
      bench::fast_mode() ? std::vector<int>{3, 14} : std::vector<int>{2, 4, 6, 8, 10, 12, 14};

  std::printf("%9s | %26s | %26s | %26s\n", "replicas", "engine mean/p99/p999 (ms)",
              "COReL mean/p99/p999 (ms)", "2PC mean/p99/p999 (ms)");
  bench::row_sep();
  for (int n : replica_counts) {
    const auto e = measure_latency(Algorithm::kEngine, n, actions, 1);
    const auto k = measure_latency(Algorithm::kCorel, n, actions, 1);
    const auto t = measure_latency(Algorithm::kTwoPc, n, actions, 1);
    std::printf("%9d | %s | %s | %s\n", n,
                bench::lat_triple(e.mean_ms, e.p99_ms, e.p999_ms).c_str(),
                bench::lat_triple(k.mean_ms, k.p99_ms, k.p999_ms).c_str(),
                bench::lat_triple(t.mean_ms, t.p99_ms, t.p999_ms).c_str());
  }
  std::printf("\n(%d actions per cell)\n", actions);
  return 0;
}
