// Prepared-check transaction coordinator microbench (DESIGN.md §13).
//
// Closed-loop flag-checked transfers over range-sharded groups, with random
// range moves running underneath and periodic barrier-stamped snapshot
// reads. Reported per configuration:
//  - throughput (committed transactions per simulated second) and the
//    client-observed commit latency p50/p99;
//  - the protocol-internal split: prepare -> durable decision p50/p99 and
//    the round-2 barrier wait p50/p99 (from the txn.* histograms);
//  - abort causes (failed check vs fence budget vs other), wholesale fenced
//    restarts and confirms rerouted by a mid-transaction range move;
//  - snapshot reads served and the worst drain wait the gate paid.
// A determinism pass (same seed twice -> identical commit counts and final
// per-shard digests) runs every time.
//
// Pass --quick (or set TORDB_BENCH_FAST=1) for the reduced CI smoke sweep.
// TORDB_TXN_BUDGET_MS (default 240000) bounds the total wall clock.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "txn/coordinator.h"
#include "util/rng.h"
#include "workload/sharded_cluster.h"
#include "workload/stats.h"

namespace {

using namespace tordb;
using namespace tordb::workload;

constexpr int kKeys = 32;

std::string key_of(int i) {
  std::string k = "k";
  k += static_cast<char>('0' + i / 10);
  k += static_cast<char>('0' + i % 10);
  return k;
}

std::vector<std::string> splits_for(int shards) {
  std::vector<std::string> v;
  for (int s = 1; s < shards; ++s) v.push_back(key_of(s * kKeys / shards));
  return v;
}

struct RunOut {
  std::uint64_t committed = 0;
  std::uint64_t aborted_check = 0;
  std::uint64_t aborted_fenced = 0;
  std::uint64_t aborted_other = 0;
  std::uint64_t restarts = 0;
  std::uint64_t rerouted = 0;
  std::uint64_t snapshots = 0;
  double snap_drain_worst_ms = 0;
  double p50_ms = 0, p99_ms = 0;           ///< client-observed commit latency
  double pd_p50_us = 0, pd_p99_us = 0;     ///< prepare -> decision durable
  double bar_p50_us = 0, bar_p99_us = 0;   ///< round-2 barrier wait
  double txn_per_s = 0;
  std::uint64_t digest = 0;
};

RunOut run_txn(int shards, int clients, double invalid_fraction, bool moves,
               SimDuration measure, std::uint64_t seed) {
  ShardedClusterOptions o;
  o.shards = shards;
  o.replicas_per_shard = 3;
  o.seed = seed;
  o.range_splits = splits_for(shards);
  o.obs.metrics_window = millis(500);
  ShardedCluster cluster(o);
  cluster.run_for(seconds(1));  // primaries form

  Rng rng(seed * 7919 + 3);
  const SimTime we = cluster.sim().now() + measure;
  RunOut out;
  LatencyStats lat;

  std::function<void(int)> pump;
  pump = [&](int cli) {
    if (cluster.sim().now() >= we) return;
    const int a = static_cast<int>(rng.next_below(kKeys));
    const int b = (a + 1 + static_cast<int>(rng.next_below(kKeys - 1))) % kKeys;
    const bool bogus = rng.chance(invalid_fraction);
    db::Command cmd;
    cmd.ops.push_back(db::Op{db::OpType::kCheck, "flag", bogus ? "no" : "", 0});
    cmd.ops.push_back(db::Op{db::OpType::kAdd, key_of(a), "", 1});
    cmd.ops.push_back(db::Op{db::OpType::kAdd, key_of(b), "", 1});
    const SimTime t0 = cluster.sim().now();
    cluster.router().submit(100 + cli, std::move(cmd),
                            [&, cli, t0](const shard::RouteReply& r) {
                              if (r.committed) lat.record(cluster.sim().now() - t0);
                              pump(cli);
                            });
  };
  for (int c = 0; c < clients; ++c) pump(c);

  std::function<void()> mover;  // outlives the whole run: self-reschedules
  if (moves) {
    mover = [&] {
      if (cluster.sim().now() >= we) return;
      const int r = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(cluster.directory().range_count())));
      const auto [lo, hi] = cluster.directory().range_bounds(r);
      const int owner = cluster.directory().range_owner(r);
      const int to = (owner + 1 +
                      static_cast<int>(rng.next_below(static_cast<std::uint64_t>(shards - 1)))) %
                     shards;
      cluster.move_range(lo, hi, to);
      cluster.sim().after(millis(400), mover);
    };
    cluster.sim().after(millis(300), mover);
  }

  std::function<void()> snapper;
  snapper = [&] {
    if (cluster.sim().now() >= we) return;
    db::Command q;
    q.ops.push_back(db::Op{db::OpType::kGet, key_of(static_cast<int>(rng.next_below(kKeys))),
                           "", 0});
    q.ops.push_back(db::Op{db::OpType::kGet, key_of(static_cast<int>(rng.next_below(kKeys))),
                           "", 0});
    cluster.txn().snapshot_read(std::move(q), [&](const txn::SnapshotReadReply& r) {
      const double wait_ms = to_millis(r.drain_wait);
      if (wait_ms > out.snap_drain_worst_ms) out.snap_drain_worst_ms = wait_ms;
    });
    cluster.sim().after(millis(500), snapper);
  };
  cluster.sim().after(millis(250), snapper);

  cluster.run_for(measure);
  for (int guard = 0;
       !(cluster.router().idle() && cluster.rebalancer().idle() && cluster.txn().idle());
       ++guard) {
    if (guard > 600) {
      std::fprintf(stderr, "FAIL: txn bench did not drain\n");
      std::exit(1);
    }
    cluster.run_for(millis(100));
  }
  if (auto violation = cluster.check_all()) {
    std::fprintf(stderr, "FAIL: %s\n", violation->c_str());
    std::exit(1);
  }

  const txn::TxnStats& s = cluster.txn().stats();
  out.committed = s.committed;
  out.aborted_check = s.aborted_check;
  out.aborted_fenced = s.aborted_fenced;
  out.aborted_other = s.aborted_other;
  out.restarts = s.restarts;
  out.rerouted = s.confirm_rerouted;
  out.snapshots = s.snapshot_reads;
  out.p50_ms = lat.percentile_ms(0.50);
  out.p99_ms = lat.percentile_ms(0.99);
  out.txn_per_s = static_cast<double>(s.committed) / (to_millis(measure) / 1000.0);
  if (cluster.metrics()) {
    const obs::Histogram& pd = cluster.metrics()->histogram("txn.prepare_decide_us");
    const obs::Histogram& bar = cluster.metrics()->histogram("txn.barrier_wait_us");
    out.pd_p50_us = pd.quantile(0.50);
    out.pd_p99_us = pd.quantile(0.99);
    out.bar_p50_us = bar.quantile(0.50);
    out.bar_p99_us = bar.quantile(0.99);
  }
  std::uint64_t h = 0x74786e62ULL;  // "txnb"
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(s.committed);
  mix(s.aborted_check + s.aborted_fenced + s.aborted_other);
  for (int sh = 0; sh < cluster.shards(); ++sh) {
    mix(static_cast<std::uint64_t>(cluster.green_count(sh)));
    for (int i = 0; i < cluster.replicas_per_shard(); ++i) {
      if (cluster.node(sh, i).running()) mix(cluster.node(sh, i).engine().db_digest());
    }
  }
  out.digest = h;
  return out;
}

void print_run(const RunOut& r) {
  std::printf("  %7.0f txn/s | commit p50 %6.2fms p99 %6.2fms | aborts chk/fen/oth "
              "%llu/%llu/%llu\n",
              r.txn_per_s, r.p50_ms, r.p99_ms,
              static_cast<unsigned long long>(r.aborted_check),
              static_cast<unsigned long long>(r.aborted_fenced),
              static_cast<unsigned long long>(r.aborted_other));
  std::printf("  prepare->decide p50 %6.0fus p99 %6.0fus | round-2 barrier p50 %6.0fus "
              "p99 %6.0fus\n",
              r.pd_p50_us, r.pd_p99_us, r.bar_p50_us, r.bar_p99_us);
  std::printf("  restarts %llu | confirms rerouted by moves %llu | snapshot reads %llu "
              "(worst drain %.2fms)\n",
              static_cast<unsigned long long>(r.restarts),
              static_cast<unsigned long long>(r.rerouted),
              static_cast<unsigned long long>(r.snapshots), r.snap_drain_worst_ms);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = bench::fast_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0 || std::strcmp(argv[i], "--smoke") == 0) {
      quick = true;
    }
  }

  bench::header(
      "Cross-shard prepared-check transactions (DESIGN.md §13)",
      "two-round prepare/confirm over per-shard green orders: checked "
      "transfers commit atomically across groups, moves reroute in-flight "
      "confirms, snapshot reads pin a green-watermark vector");

  const auto t0 = std::chrono::steady_clock::now();
  const SimDuration measure = quick ? seconds(4) : seconds(10);

  struct Config {
    int shards;
    int clients;
    double invalid;
    bool moves;
  };
  std::vector<Config> configs = {{2, 8, 0.02, false}, {4, 16, 0.02, false}, {4, 16, 0.02, true}};
  if (quick) configs = {{2, 8, 0.02, false}, {2, 8, 0.02, true}};

  for (const Config& c : configs) {
    std::printf("shards=%d clients=%d invalid=%.2f moves=%s\n", c.shards, c.clients, c.invalid,
                c.moves ? "on" : "off");
    const RunOut r = run_txn(c.shards, c.clients, c.invalid, c.moves, measure, /*seed=*/7);
    print_run(r);
    if (r.committed == 0) {
      std::fprintf(stderr, "FAIL: no transaction committed\n");
      return 1;
    }
    if (c.invalid > 0 && r.aborted_check == 0) {
      std::fprintf(stderr, "FAIL: injected invalid checks never aborted\n");
      return 1;
    }
    if (r.snapshots == 0) {
      std::fprintf(stderr, "FAIL: no snapshot read completed\n");
      return 1;
    }
    bench::row_sep();
  }

  // Determinism: the same seed must reproduce the run bit-identically.
  {
    const RunOut a = run_txn(2, 8, 0.02, true, seconds(3), 11);
    const RunOut b = run_txn(2, 8, 0.02, true, seconds(3), 11);
    if (a.digest != b.digest || a.committed != b.committed) {
      std::fprintf(stderr, "FAIL: same-seed runs diverged (digest %llx vs %llx)\n",
                   static_cast<unsigned long long>(a.digest),
                   static_cast<unsigned long long>(b.digest));
      return 1;
    }
    std::printf("determinism: two same-seed runs -> digest %016llx, %llu commits OK\n",
                static_cast<unsigned long long>(a.digest),
                static_cast<unsigned long long>(a.committed));
  }

  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  double budget_ms = 240'000;
  if (const char* b = std::getenv("TORDB_TXN_BUDGET_MS")) budget_ms = std::atof(b);
  if (wall_ms > budget_ms) {
    std::fprintf(stderr, "FAIL: txn bench took %.0f ms, over the %.0f ms budget\n", wall_ms,
                 budget_ms);
    return 1;
  }
  std::printf("wall clock: %.0f ms <= %.0f ms budget OK\n", wall_ms, budget_ms);
  return 0;
}
