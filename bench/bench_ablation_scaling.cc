// Ablation A3 (DESIGN.md): engine sensitivity to replica count and action
// size. The engine's per-action work at a replica is one receive plus (at
// the creator) one forced write, so throughput should degrade only mildly
// with more replicas; bigger actions cost wire time and per-byte CPU.
#include <cstdio>

#include "bench_util.h"
#include "workload/experiments.h"

int main() {
  using namespace tordb;
  using namespace tordb::workload;

  bench::header("Ablation A3: engine scaling in replica count and action size",
                "mild degradation with replicas; throughput falls as actions grow");

  const SimDuration warmup = millis(500);
  const SimDuration measure = bench::fast_mode() ? seconds(2) : seconds(5);

  std::vector<int> replica_counts = bench::fast_mode() ? std::vector<int>{3, 14}
                                                       : std::vector<int>{3, 5, 8, 14, 20, 28};
  std::printf("-- replica count sweep (200-byte actions, clients = replicas) --\n");
  std::printf("%9s | %12s | %14s\n", "replicas", "actions/s", "mean lat (ms)");
  bench::row_sep(44);
  for (int n : replica_counts) {
    const auto p = measure_engine_scaling(n, 110, n, warmup, measure, 1);
    std::printf("%9d | %12.0f | %14.2f\n", n, p.actions_per_second, p.mean_latency_ms);
  }

  std::vector<std::uint32_t> paddings = bench::fast_mode()
                                            ? std::vector<std::uint32_t>{110, 4000}
                                            : std::vector<std::uint32_t>{0, 110, 500, 1000,
                                                                         2000, 4000};
  std::printf("\n-- action size sweep (14 replicas, 14 clients) --\n");
  std::printf("%12s | %12s | %14s\n", "action bytes", "actions/s", "mean lat (ms)");
  bench::row_sep(46);
  for (std::uint32_t pad : paddings) {
    const auto p = measure_engine_scaling(14, pad, 14, warmup, measure, 1);
    std::printf("%12u | %12.0f | %14.2f\n", p.action_bytes, p.actions_per_second,
                p.mean_latency_ms);
  }
  return 0;
}
