// Microbenchmarks (google-benchmark) for the hot substrate paths: the
// event queue, serialization, database apply and snapshot, and the
// end-to-end simulated cost of one replicated action.
#include <benchmark/benchmark.h>

#include "core/action.h"
#include "core/action_log.h"
#include "core/messages.h"
#include "db/database.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/cluster.h"

namespace {

using namespace tordb;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.at(i, [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNext);

void BM_ActionEncodeDecode(benchmark::State& state) {
  core::Action a;
  a.id = ActionId{3, 12345};
  a.update = db::Command::put("some-key", "some-value");
  a.padding = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    BufWriter w;
    a.encode(w);
    Bytes b = w.take();
    BufReader r(b);
    benchmark::DoNotOptimize(core::Action::decode(r));
  }
}
BENCHMARK(BM_ActionEncodeDecode)->Arg(0)->Arg(110)->Arg(1000);

void BM_DatabaseApply(benchmark::State& state) {
  db::Database d;
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.apply(db::Command::put("k" + std::to_string(i++ % 1000), "v")));
  }
}
BENCHMARK(BM_DatabaseApply);

void BM_DatabaseSnapshot(benchmark::State& state) {
  db::Database d;
  for (int i = 0; i < state.range(0); ++i) {
    d.apply(db::Command::put("key-" + std::to_string(i), "value-" + std::to_string(i)));
  }
  for (auto _ : state) benchmark::DoNotOptimize(d.snapshot());
}
BENCHMARK(BM_DatabaseSnapshot)->Arg(100)->Arg(10000);

core::Action mk_action(NodeId creator, std::int64_t index) {
  core::Action a;
  a.id = ActionId{creator, index};
  a.update = db::Command::add("k" + std::to_string(index % 64), 1);
  return a;
}

void BM_ActionLogMarkGreen(benchmark::State& state) {
  // Throughput of the engine's hottest coloring path: admit an action red
  // and append it to the green sequence, round-robin over 8 creators.
  const int kCreators = 8;
  std::vector<std::int64_t> next(kCreators, 1);
  core::ActionLog log;
  std::int64_t i = 0;
  for (auto _ : state) {
    const NodeId c = static_cast<NodeId>(i++ % kCreators);
    benchmark::DoNotOptimize(log.mark_green(mk_action(c, next[c]++)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ActionLogMarkGreen);

void BM_ActionLogTrimWhite(benchmark::State& state) {
  // Cost of trimming the white prefix out of a log holding range(0) green
  // actions (body release + green-vector compaction), per trimmed action.
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    core::ActionLog log;
    for (std::int64_t i = 1; i <= n; ++i) log.mark_green(mk_action(0, i));
    state.ResumeTiming();
    benchmark::DoNotOptimize(log.trim_white_to(n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ActionLogTrimWhite)->Arg(10000)->Arg(100000);

void BM_ActionLogGreenPositionLookup(benchmark::State& state) {
  core::ActionLog log;
  const std::int64_t n = 100000;
  for (std::int64_t i = 1; i <= n; ++i) log.mark_green(mk_action(0, i));
  log.trim_white_to(n / 2);  // half the positions behind the trim offset
  std::int64_t pos = n / 2;
  for (auto _ : state) {
    if (++pos > n) pos = n / 2 + 1;
    benchmark::DoNotOptimize(log.green_body_at(pos));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ActionLogGreenPositionLookup);

void BM_SimulatedReplicatedAction(benchmark::State& state) {
  // Real-time cost of simulating one fully replicated action on a
  // 5-replica cluster (events, not simulated milliseconds).
  workload::ClusterOptions o;
  o.replicas = 5;
  workload::EngineCluster c(o);
  c.run_for(seconds(2));
  std::int64_t n = 0;
  for (auto _ : state) {
    bool done = false;
    c.engine(0).submit({}, db::Command::put("k", std::to_string(++n)), 1,
                       core::Semantics::kStrict, [&](const core::Reply&) { done = true; });
    while (!done) c.sim().run(64);
  }
}
BENCHMARK(BM_SimulatedReplicatedAction);

}  // namespace

BENCHMARK_MAIN();
