// Ablations A9 + A10 (DESIGN.md §12, §13): a TPC-C-style transaction mix
// over shards.
//
// The five-transaction mix (new-order / payment / delivery / order-status /
// stock-level) maps TPC-C onto the paper's §6 semantics family: checked
// multi-key updates, commutative increments, timestamp stamps, weak and
// dirty queries. The schema is range-shardable by warehouse, so the
// generic directory/rebalancer machinery applies unmodified.
//
// Reported per configuration: tpmC-style throughput (new-order commits per
// simulated minute), abort rate split by cause (failed kCheck vs fenced vs
// other), cross-shard fraction, and per-type p50/p99. Remote new-orders
// keep their item preconditions via the prepared-check coordinator — every
// default run asserts remote_unchecked == 0. Extra passes every time: A10
// compares checked remote orders against the `unchecked_remote` downgrade
// (strip the checks, apply unconditionally); a determinism pass (same seed
// twice -> identical state digest and counts); a hotspot-shift pass
// (Zipf-skewed warehouse choice whose rank->warehouse mapping rotates
// mid-run — the per-shard green-count skew must move to a different shard).
//
// Pass --quick (or set TORDB_BENCH_FAST=1) for the reduced CI smoke sweep.
// TORDB_TPCC_BUDGET_MS (default 240000) bounds the total wall clock. The A9
// sweep and A10 pair land in BENCH_tpcc.json for run-over-run tracking.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/sharded_cluster.h"
#include "workload/tpcc/driver.h"

namespace {

using namespace tordb;
using namespace tordb::workload;

struct TypeRow {
  std::uint64_t committed = 0;
  std::uint64_t aborted_check = 0;
  std::uint64_t aborted_fenced = 0;
  std::uint64_t aborted_other = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

struct RunOut {
  TypeRow types[tpcc::kTxnTypes];
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t cross = 0;
  std::uint64_t remote_unchecked = 0;
  std::uint64_t remote_checked = 0;
  std::uint64_t bounces = 0;
  std::uint64_t digest = 0;
  double tpmc = 0;
  int hot_first = -1;   ///< shard with the largest green delta, first half
  int hot_second = -1;  ///< same, second half (after a hotspot shift)
  double share_first = 0;
  double share_second = 0;
  std::string window_table;
};

RunOut run_tpcc(int shards, tpcc::TpccOptions topt, SimDuration measure, bool want_table) {
  ShardedClusterOptions o;
  o.shards = shards;
  o.replicas_per_shard = 3;
  o.seed = topt.seed;
  o.range_splits = tpcc::warehouse_splits(topt.warehouses, shards);
  o.obs.metrics_window = millis(500);
  ShardedCluster cluster(o);
  cluster.run_for(seconds(1));  // primaries form
  tpcc::TpccDriver driver(cluster, topt);
  driver.load();

  const SimTime ws = cluster.sim().now();
  const SimTime we = ws + measure;
  driver.start(ws, we);

  const int n = cluster.shards();
  std::vector<std::int64_t> g_start(static_cast<std::size_t>(n));
  std::vector<std::int64_t> g_mid(static_cast<std::size_t>(n));
  std::vector<std::int64_t> g_end(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) g_start[static_cast<std::size_t>(s)] = cluster.green_count(s);
  cluster.run_for(measure / 2);
  for (int s = 0; s < n; ++s) g_mid[static_cast<std::size_t>(s)] = cluster.green_count(s);
  cluster.run_for(measure - measure / 2);
  for (int guard = 0; !driver.idle(); ++guard) {
    if (guard > 600) {
      std::fprintf(stderr, "FAIL: tpcc run did not drain\n");
      std::exit(1);
    }
    cluster.run_for(millis(100));
  }
  for (int s = 0; s < n; ++s) g_end[static_cast<std::size_t>(s)] = cluster.green_count(s);
  if (auto violation = cluster.check_all()) {
    std::fprintf(stderr, "FAIL: %s\n", violation->c_str());
    std::exit(1);
  }

  RunOut out;
  std::int64_t first_total = 0;
  std::int64_t second_total = 0;
  for (int s = 0; s < n; ++s) {
    const auto i = static_cast<std::size_t>(s);
    first_total += g_mid[i] - g_start[i];
    second_total += g_end[i] - g_mid[i];
  }
  for (int s = 0; s < n; ++s) {
    const auto i = static_cast<std::size_t>(s);
    const double f = first_total
                         ? static_cast<double>(g_mid[i] - g_start[i]) /
                               static_cast<double>(first_total)
                         : 0;
    const double sec = second_total
                           ? static_cast<double>(g_end[i] - g_mid[i]) /
                                 static_cast<double>(second_total)
                           : 0;
    if (f > out.share_first) {
      out.share_first = f;
      out.hot_first = s;
    }
    if (sec > out.share_second) {
      out.share_second = sec;
      out.hot_second = s;
    }
  }
  for (int t = 0; t < tpcc::kTxnTypes; ++t) {
    const tpcc::TxnStats& s = driver.stats(static_cast<tpcc::TxnType>(t));
    TypeRow& row = out.types[t];
    row.committed = s.committed;
    row.aborted_check = s.aborted_check;
    row.aborted_fenced = s.aborted_fenced;
    row.aborted_other = s.aborted_other;
    row.p50_ms = s.latency.p50_ms();
    row.p99_ms = s.latency.p99_ms();
    out.committed += s.committed;
    out.aborted += s.aborted_check + s.aborted_fenced + s.aborted_other;
  }
  out.cross = driver.cross_shard_committed();
  out.remote_unchecked = driver.remote_unchecked();
  out.remote_checked = driver.remote_checked();
  // Remote preconditions are enforced by default: the only unchecked remote
  // orders are the ones the A10 ablation explicitly asks for.
  if (!topt.unchecked_remote && out.remote_unchecked != 0) {
    std::fprintf(stderr, "FAIL: %llu remote new-orders ran unchecked\n",
                 static_cast<unsigned long long>(out.remote_unchecked));
    std::exit(1);
  }
  out.bounces = driver.fenced_bounces();
  out.digest = driver.state_digest();
  const double minutes = to_millis(measure) / 60'000.0;
  out.tpmc = static_cast<double>(
                 driver.stats(tpcc::TxnType::kNewOrder).committed) /
             minutes;
  if (want_table && cluster.metrics()) {
    out.window_table = cluster.metrics()->window_table(
        {"tpcc.new_order.committed", "tpcc.payment.committed", "tpcc.aborted.check",
         "tpcc.new_order.remote_unchecked"});
  }
  return out;
}

void print_run(const RunOut& r) {
  std::printf("  tpmC %7.0f | abort %5.2f%% | cross-shard %llu (checked %llu, unchecked %llu) | "
              "fence bounces %llu\n",
              r.tpmc,
              100.0 * static_cast<double>(r.aborted) /
                  static_cast<double>(r.committed + r.aborted ? r.committed + r.aborted : 1),
              static_cast<unsigned long long>(r.cross),
              static_cast<unsigned long long>(r.remote_checked),
              static_cast<unsigned long long>(r.remote_unchecked),
              static_cast<unsigned long long>(r.bounces));
  std::printf("  %-12s | %9s | %19s | %8s | %8s\n", "type", "committed",
              "aborts chk/fen/oth", "p50", "p99");
  for (int t = 0; t < tpcc::kTxnTypes; ++t) {
    const TypeRow& row = r.types[t];
    std::printf("  %-12s | %9llu | %6llu/%5llu/%5llu | %s\n",
                tpcc::to_string(static_cast<tpcc::TxnType>(t)),
                static_cast<unsigned long long>(row.committed),
                static_cast<unsigned long long>(row.aborted_check),
                static_cast<unsigned long long>(row.aborted_fenced),
                static_cast<unsigned long long>(row.aborted_other),
                bench::lat_pair_ms(row.p50_ms, row.p99_ms, 6).c_str());
  }
}

/// One BENCH_tpcc.json row: the run's headline numbers plus the new-order
/// latency pair, labeled with the pass that produced it.
void json_run(tordb::bench::JsonRows& json, const char* pass, int shards, int warehouses,
              double theta, double remote, const RunOut& r) {
  const auto no = static_cast<std::size_t>(tpcc::TxnType::kNewOrder);
  json.begin_row();
  json.field("pass", std::string(pass));
  json.field("shards", shards);
  json.field("warehouses", warehouses);
  json.field("zipf_theta", theta);
  json.field("remote_fraction", remote);
  json.field("tpmc", r.tpmc);
  json.field("committed", r.committed);
  json.field("aborted", r.aborted);
  json.field("cross_shard", r.cross);
  json.field("remote_checked", r.remote_checked);
  json.field("remote_unchecked", r.remote_unchecked);
  json.field("fence_bounces", r.bounces);
  json.field("new_order_p50_ms", r.types[no].p50_ms);
  json.field("new_order_p99_ms", r.types[no].p99_ms);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = bench::fast_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0 || std::strcmp(argv[i], "--smoke") == 0) {
      quick = true;
    }
  }

  bench::header(
      "Ablation A9: TPC-C-style mix over range-sharded groups (DESIGN.md §12)",
      "the paper's §6 semantics family under one realistic workload: checked "
      "new-orders abort atomically, commutative payments cross shards through "
      "the commit barrier, deliveries stamp timestamps, queries read weak/dirty");

  bench::Stopwatch total;
  bench::JsonRows json;
  const SimDuration measure = quick ? seconds(4) : seconds(10);

  struct Config {
    int shards;
    int warehouses;
    double theta;
    double remote;
  };
  std::vector<Config> configs = {{4, 8, 0.0, 0.10}, {4, 8, 0.99, 0.10}, {8, 16, 0.99, 0.25}};
  if (quick) configs = {{4, 8, 0.99, 0.10}};

  for (const Config& c : configs) {
    tpcc::TpccOptions topt;
    topt.warehouses = c.warehouses;
    topt.zipf_theta = c.theta;
    topt.remote_fraction = c.remote;
    topt.clients = quick ? 8 : 16;
    std::printf("shards=%d warehouses=%d zipf_theta=%.2f remote=%.2f\n", c.shards,
                c.warehouses, c.theta, c.remote);
    const RunOut r = run_tpcc(c.shards, topt, measure, /*want_table=*/false);
    print_run(r);
    json_run(json, "a9", c.shards, c.warehouses, c.theta, c.remote, r);
    if (c.remote > 0 && c.shards > 1 && r.remote_checked == 0) {
      std::fprintf(stderr, "FAIL: no remote new-order went through the coordinator\n");
      return 1;
    }
    bench::row_sep();
  }

  // Ablation A10: checked remote new-orders (the prepared-check coordinator,
  // default) vs the unchecked downgrade (strip the preconditions, apply
  // unconditionally). The downgrade buys latency but silently admits orders
  // carrying invalid remote items; checked mode aborts them atomically.
  {
    tpcc::TpccOptions topt;
    topt.warehouses = 8;
    topt.remote_fraction = 0.25;
    topt.invalid_item_fraction = 0.05;
    topt.clients = 8;
    std::printf("A10: remote new-order preconditions, checked vs unchecked "
                "(remote=0.25, invalid=0.05)\n");
    std::printf("checked (coordinator):\n");
    const RunOut checked = run_tpcc(4, topt, measure, false);
    print_run(checked);
    json_run(json, "a10_checked", 4, topt.warehouses, topt.zipf_theta, topt.remote_fraction,
             checked);
    topt.unchecked_remote = true;
    std::printf("unchecked (A10 downgrade):\n");
    const RunOut unchecked = run_tpcc(4, topt, measure, false);
    print_run(unchecked);
    json_run(json, "a10_unchecked", 4, topt.warehouses, topt.zipf_theta, topt.remote_fraction,
             unchecked);
    if (checked.remote_checked == 0 || checked.remote_unchecked != 0) {
      std::fprintf(stderr, "FAIL: checked run did not route remote orders via the coordinator\n");
      return 1;
    }
    if (unchecked.remote_unchecked == 0 || unchecked.remote_checked != 0) {
      std::fprintf(stderr, "FAIL: A10 downgrade did not strip remote checks\n");
      return 1;
    }
    // The downgrade cannot see a remote invalid item: its new-order check
    // aborts come from local orders only, so checked mode must abort more.
    const std::uint64_t no = static_cast<std::size_t>(tpcc::TxnType::kNewOrder);
    if (checked.types[no].aborted_check <= unchecked.types[no].aborted_check) {
      std::fprintf(stderr,
                   "FAIL: checked mode (%llu check-aborts) should catch more invalid "
                   "remote items than the downgrade (%llu)\n",
                   static_cast<unsigned long long>(checked.types[no].aborted_check),
                   static_cast<unsigned long long>(unchecked.types[no].aborted_check));
      return 1;
    }
    bench::row_sep();
  }

  // Hotspot shift: heavy skew, rank->warehouse mapping rotates mid-run; the
  // per-shard green-count skew must land on a different shard afterwards.
  {
    tpcc::TpccOptions topt;
    topt.warehouses = 8;
    topt.zipf_theta = 1.2;
    topt.remote_fraction = 0.05;
    topt.clients = 8;
    topt.hotspot_shift_after = measure / 2;
    const RunOut r = run_tpcc(4, topt, measure, /*want_table=*/true);
    std::printf("hotspot shift at t=%.1fs: hottest shard %d (%.0f%% of green) -> "
                "shard %d (%.0f%%)\n",
                to_millis(measure / 2) / 1000.0, r.hot_first, 100 * r.share_first,
                r.hot_second, 100 * r.share_second);
    if (r.hot_first == r.hot_second) {
      std::fprintf(stderr, "FAIL: hotspot shift did not move the per-shard load skew\n");
      return 1;
    }
    bench::print_window_series("window series (500ms windows)", r.window_table);
    json_run(json, "hotspot_shift", 4, topt.warehouses, topt.zipf_theta, topt.remote_fraction,
             r);
    bench::row_sep();
  }

  // Determinism: the same seed must reproduce the run bit-identically.
  {
    tpcc::TpccOptions topt;
    topt.warehouses = 8;
    topt.zipf_theta = 0.99;
    topt.clients = 8;
    const RunOut a = run_tpcc(4, topt, seconds(3), false);
    const RunOut b = run_tpcc(4, topt, seconds(3), false);
    if (a.digest != b.digest || a.committed != b.committed || a.aborted != b.aborted) {
      std::fprintf(stderr, "FAIL: same-seed runs diverged (digest %llx vs %llx)\n",
                   static_cast<unsigned long long>(a.digest),
                   static_cast<unsigned long long>(b.digest));
      return 1;
    }
    std::printf("determinism: two same-seed runs -> digest %016llx, %llu commits OK\n",
                static_cast<unsigned long long>(a.digest),
                static_cast<unsigned long long>(a.committed));
  }

  json.write("BENCH_tpcc.json");
  if (!bench::check_budget(total.ms(), "TORDB_TPCC_BUDGET_MS", 240'000, "tpcc bench")) {
    return 1;
  }
  return 0;
}
