// Long-run memory curve: body-store growth with and without green-line
// announcements (DESIGN.md §14, experiment A11).
//
// A router-driven deployment concentrates action creation on each shard's
// representative replica; the other replicas never originate actions, so
// before the announcement protocol their green lines were invisible to
// peers, every white line stayed pinned at its last exchange, and the body
// stores grew linearly with committed work. With announcements, knowledge
// flows even from silent replicas and the stores plateau at the announce
// interval's worth of in-flight history.
//
// This bench runs the same closed-loop put workload through shard::Router
// twice — announce_interval = 0 (the pre-announcement configuration) and
// the default 250 ms — sampling the summed body-store bytes over virtual
// time, and prints both curves plus a summary. The announce-off run is
// capped at a fraction of the announce-on horizon: its growth is linear by
// then, and letting it run the full horizon would only burn host memory to
// re-measure a known slope.
//
// Assertions (exit 1 on failure):
//   - plateau: the announce-on run's PEAK bytes stay below the announce-off
//     run's FINAL bytes even though the on-run commits several times more
//     actions;
//   - throughput: announce-on green throughput is within 5% of announce-off
//     (the token is rate-limited and piggybacking is free);
//   - budget: if TORDB_MEM_BUDGET is set (bytes), the announce-on peak must
//     stay under it — the CI smoke guard against a trim-starvation
//     regression.
//
// TORDB_BENCH_FAST=1 (or --smoke) reduces the horizons for CI.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "db/database.h"
#include "workload/sharded_cluster.h"

namespace {

using namespace tordb;
using workload::ShardedCluster;
using workload::ShardedClusterOptions;

struct Sample {
  double sim_s = 0;
  std::int64_t green = 0;       ///< committed greens since the window start
  std::int64_t body_bytes = 0;  ///< summed over every running replica
  std::int64_t white_lag = 0;   ///< max green count - min white line
};

struct RunResult {
  std::vector<Sample> curve;
  std::int64_t peak_bytes = 0;
  std::int64_t final_bytes = 0;
  std::int64_t greens = 0;
  double sim_seconds = 0;  ///< measured window length
  double green_per_second = 0;
};

std::int64_t total_green(ShardedCluster& c) {
  std::int64_t g = 0;
  for (int s = 0; s < c.shards(); ++s) g += c.green_count(s);
  return g;
}

std::int64_t total_body_bytes(ShardedCluster& c) {
  std::int64_t b = 0;
  for (int s = 0; s < c.shards(); ++s) {
    for (int i = 0; i < c.replicas_per_shard(); ++i) {
      if (c.node(s, i).running()) b += c.node(s, i).engine().action_log().body_bytes();
    }
  }
  return b;
}

std::int64_t white_lag(ShardedCluster& c) {
  std::int64_t lag = 0;
  for (int s = 0; s < c.shards(); ++s) {
    std::int64_t min_white = -1, max_green = 0;
    for (int i = 0; i < c.replicas_per_shard(); ++i) {
      if (!c.node(s, i).running()) continue;
      const auto& e = c.node(s, i).engine();
      const std::int64_t wl = e.white_line();
      min_white = min_white < 0 ? wl : std::min(min_white, wl);
      max_green = std::max(max_green, e.green_count());
    }
    lag += max_green - std::max<std::int64_t>(min_white, 0);
  }
  return lag;
}

RunResult run_mode(bool announce, std::int64_t target_actions, std::uint64_t seed) {
  ShardedClusterOptions o;
  o.shards = 2;
  o.replicas_per_shard = 3;
  o.seed = seed;
  o.node.engine.announce_interval = announce ? millis(250) : SimDuration{0};
  ShardedCluster cluster(o);
  cluster.run_for(seconds(2));  // every shard forms its primary component

  // Closed-loop writers through the router. Keys cycle a small per-client
  // pool so database size stays constant and only the body stores grow.
  const int kClients = 12;
  auto stop = std::make_shared<bool>(false);
  auto counters = std::make_shared<std::vector<std::int64_t>>(kClients, 0);
  auto issue = std::make_shared<std::function<void(int)>>();
  *issue = [&cluster, stop, counters, issue](int c) {
    if (*stop) return;
    const std::int64_t n = ++(*counters)[static_cast<std::size_t>(c)];
    db::Command cmd = db::Command::put(
        "key-" + std::to_string(c) + "-" + std::to_string(n % 64), std::to_string(n));
    cluster.router().submit(c, std::move(cmd),
                            [issue, c](const shard::RouteReply&) { (*issue)(c); });
  };
  for (int c = 0; c < kClients; ++c) (*issue)(c);

  RunResult r;
  const std::int64_t green_start = total_green(cluster);
  const double t_start = to_seconds(cluster.sim().now());
  const SimDuration sample_every = millis(500);
  // Liveness backstop only — the closed loop reaches target_actions long
  // before this in every healthy build.
  const double sim_cap_s = t_start + 4000.0;
  while (total_green(cluster) - green_start < target_actions &&
         to_seconds(cluster.sim().now()) < sim_cap_s) {
    cluster.run_for(sample_every);
    Sample s;
    s.sim_s = to_seconds(cluster.sim().now()) - t_start;
    s.green = total_green(cluster) - green_start;
    s.body_bytes = total_body_bytes(cluster);
    s.white_lag = white_lag(cluster);
    r.peak_bytes = std::max(r.peak_bytes, s.body_bytes);
    r.curve.push_back(s);
  }
  *stop = true;
  cluster.run_for(millis(200));  // drain in-flight submissions

  r.greens = total_green(cluster) - green_start;
  r.final_bytes = r.curve.empty() ? total_body_bytes(cluster) : r.curve.back().body_bytes;
  r.sim_seconds = to_seconds(cluster.sim().now()) - t_start;
  r.green_per_second = r.sim_seconds > 0 ? static_cast<double>(r.greens) / r.sim_seconds : 0;
  return r;
}

void print_curve(const char* label, const RunResult& r) {
  std::printf("%s: %lld greens in %.1f sim-s (%.0f green/s), peak %.1f KB, final %.1f KB\n",
              label, static_cast<long long>(r.greens), r.sim_seconds, r.green_per_second,
              static_cast<double>(r.peak_bytes) / 1024.0,
              static_cast<double>(r.final_bytes) / 1024.0);
  std::printf("%10s | %10s | %12s | %10s\n", "sim-s", "greens", "body KB", "white lag");
  tordb::bench::row_sep(52);
  // Downsample to ~16 rows so the shape reads at a glance.
  const std::size_t step = std::max<std::size_t>(1, r.curve.size() / 16);
  for (std::size_t i = 0; i < r.curve.size(); i += step) {
    const Sample& s = r.curve[i];
    std::printf("%10.1f | %10lld | %12.1f | %10lld\n", s.sim_s,
                static_cast<long long>(s.green),
                static_cast<double>(s.body_bytes) / 1024.0,
                static_cast<long long>(s.white_lag));
  }
  if (!r.curve.empty() && (r.curve.size() - 1) % step != 0) {
    const Sample& s = r.curve.back();
    std::printf("%10.1f | %10lld | %12.1f | %10lld\n", s.sim_s,
                static_cast<long long>(s.green),
                static_cast<double>(s.body_bytes) / 1024.0,
                static_cast<long long>(s.white_lag));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tordb;

  bool smoke = bench::fast_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0 || std::strcmp(argv[i], "--quick") == 0) {
      smoke = true;
    }
  }

  bench::header("Body-store memory over a long router-driven run",
                "not a paper figure: DESIGN.md §14 / EXPERIMENTS.md A11 — the "
                "announcement protocol turns unbounded body-store growth into a "
                "plateau without measurable throughput cost");

  // The announce-off horizon is a fraction of the announce-on one (see the
  // file comment): linear growth is established long before the cap, and
  // the peak-vs-final assertion below is *stronger* for the shorter run.
  const std::int64_t on_target = smoke ? 40'000 : 1'000'000;
  const std::int64_t off_target = smoke ? 20'000 : 200'000;

  std::printf("announce OFF (pre-announcement configuration, capped at %lld actions):\n",
              static_cast<long long>(off_target));
  const RunResult off = run_mode(false, off_target, /*seed=*/7);
  print_curve("off", off);

  std::printf("announce ON (250 ms token, %lld actions):\n",
              static_cast<long long>(on_target));
  const RunResult on = run_mode(true, on_target, /*seed=*/7);
  print_curve("on ", on);

  bool ok = true;

  // Plateau: several times more committed work must still need less memory.
  if (on.peak_bytes >= off.final_bytes) {
    std::fprintf(stderr,
                 "FAIL: announce-on peak %lld B >= announce-off final %lld B — the body "
                 "stores are not plateauing\n",
                 static_cast<long long>(on.peak_bytes),
                 static_cast<long long>(off.final_bytes));
    ok = false;
  } else {
    std::printf("plateau: on-peak %.1f KB < off-final %.1f KB with %.1fx the actions OK\n",
                static_cast<double>(on.peak_bytes) / 1024.0,
                static_cast<double>(off.final_bytes) / 1024.0,
                static_cast<double>(on.greens) / static_cast<double>(std::max<std::int64_t>(
                                                     off.greens, 1)));
  }

  // Throughput: the token is rate-limited; piggybacked knowledge is free.
  const double rel = off.green_per_second > 0
                         ? (on.green_per_second - off.green_per_second) / off.green_per_second
                         : 0;
  if (rel < -0.05) {
    std::fprintf(stderr, "FAIL: announce-on throughput %.0f green/s is %.1f%% below "
                 "announce-off %.0f green/s (budget: 5%%)\n",
                 on.green_per_second, -rel * 100.0, off.green_per_second);
    ok = false;
  } else {
    std::printf("throughput: on %.0f vs off %.0f green/s (%+.1f%%) within 5%% OK\n",
                on.green_per_second, off.green_per_second, rel * 100.0);
  }

  // CI budget guard: peak announce-on body bytes across the deployment.
  if (const char* b = std::getenv("TORDB_MEM_BUDGET")) {
    const std::int64_t budget = std::atoll(b);
    if (budget > 0 && on.peak_bytes > budget) {
      std::fprintf(stderr, "FAIL: announce-on peak %lld B over TORDB_MEM_BUDGET %lld B\n",
                   static_cast<long long>(on.peak_bytes), static_cast<long long>(budget));
      ok = false;
    } else {
      std::printf("budget: on-peak %lld B <= TORDB_MEM_BUDGET %lld B OK\n",
                  static_cast<long long>(on.peak_bytes), static_cast<long long>(budget));
    }
  }

  return ok ? 0 : 1;
}
