// Ablation A1 (DESIGN.md): cost of membership changes for the engine.
//
// The paper's central claim is that end-to-end exchange rounds are paid per
// *membership change*, not per action. This ablation injects periodic
// partition/heal cycles and shows (a) throughput degrades gracefully with
// the change rate, and (b) the number of end-to-end exchange rounds tracks
// the number of membership changes — not the number of actions, which is
// what a per-action-acknowledgement protocol like COReL pays.
#include <cstdio>

#include "bench_util.h"
#include "workload/experiments.h"

int main() {
  using namespace tordb;
  using namespace tordb::workload;

  bench::header("Ablation A1: engine under periodic membership changes",
                "end-to-end rounds scale with membership changes, not with actions");

  const int replicas = 7;
  const int clients = 12;  // two per surviving replica, so actions buffered
                           // across a view change can flush as one batch
  const SimDuration measure = bench::fast_mode() ? seconds(3) : seconds(10);
  std::vector<SimDuration> periods = {0, seconds(4), seconds(2), seconds(1), millis(500)};
  if (bench::fast_mode()) periods = {0, seconds(1), millis(500)};

  std::printf("%16s | %12s | %12s | %16s | %12s | %16s\n", "change period", "actions/s",
              "mem.changes", "exchange rounds", "rounds/action", "persist batches");
  bench::row_sep();
  for (SimDuration p : periods) {
    const auto r = measure_engine_under_view_changes(replicas, clients, p, measure, 1);
    const double per_action =
        r.actions_per_second > 0
            ? static_cast<double>(r.end_to_end_rounds) /
                  (r.actions_per_second * to_seconds(measure))
            : 0;
    std::printf("%14.1fs | %12.0f | %12llu | %16llu | %12.5f | %6llu (%4llu act)\n",
                to_seconds(p), r.actions_per_second,
                static_cast<unsigned long long>(r.membership_changes),
                static_cast<unsigned long long>(r.end_to_end_rounds), per_action,
                static_cast<unsigned long long>(r.persist_batches),
                static_cast<unsigned long long>(r.persist_batch_actions));
  }
  std::printf("\n(period 0 = stable membership; COReL's equivalent is 1 ack round per action;\n"
              " persist batches = client actions buffered across a view change flushing as\n"
              " one forced write + one multicast)\n");

  // Metrics time series (src/obs) for one churning run: each partition/heal
  // cycle shows up as a cluster.exchanges step and a throughput dip in the
  // cluster.actions_green column, recovering within a window or two.
  const SimDuration churn = seconds(1);
  const SimDuration window = millis(500);
  std::string table;
  measure_engine_under_view_changes(replicas, clients, churn, measure, 1, window, &table);
  std::printf("\nengine metrics windows (%.1fs change period, %.1fs windows):\n%s",
              to_seconds(churn), to_seconds(window), table.c_str());
  return 0;
}
