// Simulator scale sweep: what the deterministic harness itself costs.
//
// Every experiment in this repo runs on the discrete-event simulator, so its
// wall-clock cost per simulated message caps how far the paper's evaluation
// shape can be pushed (ROADMAP "Scale sweeps"). This bench drives the same
// closed-loop put workload the throughput figures use — over one engine
// group at 12/48/100 replicas (the single-group EVS run) and over sharded
// deployments up to 100 shards x 1000 total replicas — and reports the
// host-side numbers: events/sec, wall-clock per simulated second, peak
// event-queue depth, payload bytes deep-copied, and reachability-cache hit
// rate. Identical seeds produce identical virtual-time results across
// builds, so deltas between binaries measure only the simulator hot path.
//
// Sharded configurations run the threads dimension too (DESIGN.md §15):
// each is repeated at 1, 2 and 8 worker threads in lane mode. The
// simulated results (green/s, events) are bit-identical across the thread
// counts — asserted here — so the wall-clock column is a pure measurement
// of the worker pool, and the speedup column is wall(1 thread)/wall(N).
//
// The whole sweep lands in BENCH_simscale.json (one row per run:
// shards, replicas, threads, wall_ms, events/sec, green throughput) so the
// perf trajectory is recorded run-over-run.
//
// --smoke (or TORDB_BENCH_FAST=1) runs a reduced sweep and enforces a
// wall-clock budget (default 90 s, TORDB_SIM_SCALE_BUDGET_MS to override):
// the CI guard that fails loudly if the hot path regresses by an order of
// magnitude. The budget is deliberately loose — it tolerates sanitizers and
// slow runners, not a return of per-target payload copies and red-black-tree
// lookups per send.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "workload/experiments.h"

int main(int argc, char** argv) {
  using namespace tordb;
  using namespace tordb::workload;

  bool smoke = bench::fast_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0 || std::strcmp(argv[i], "--quick") == 0) {
      smoke = true;
    }
  }

  bench::header("Simulator scale sweep: harness cost at 12-1000 replicas",
                "not a paper figure: profiles the simulation kernel itself so the "
                "paper's relative results can be evaluated at partial-replication "
                "scale (dozens of shards, hundreds of replicas)");

  struct Config {
    int shards;
    int replicas_per_shard;
    bool threads_sweep;  ///< repeat at 2 and 8 worker threads (sharded only)
  };
  // Single-group rows exercise the pure EVS path (sequencer + group-wide
  // multicast + acks); sharded rows exercise N groups on one network behind
  // the router, and additionally sweep the lane-mode worker pool.
  std::vector<Config> sweep = {{1, 12, false}, {1, 48, false}, {1, 100, false},
                               {4, 12, false}, {8, 12, false}, {16, 6, true},
                               {32, 6, true},  {100, 10, true}};
  std::vector<int> threads = {1, 2, 8};
  SimDuration warmup = millis(500);
  SimDuration measure = seconds(2);
  if (smoke) {
    sweep = {{1, 12, false}, {2, 6, false}, {4, 3, true}};
    threads = {1, 4};
    measure = seconds(1);
  }

  std::printf("%14s | %3s | %8s | %9s | %10s | %9s | %10s | %6s | %7s | %6s | %7s\n",
              "config", "thr", "green/s", "events", "ev/wall-s", "wall", "ms/sim-s", "peakQ",
              "copyMB", "cache%", "speedup");
  bench::row_sep(118);

  bench::Stopwatch total;
  bench::JsonRows json;
  bool identical = true;
  double speedup_at_16 = 0;  // best 8-thread speedup at >= 16 shards
  for (const Config& c : sweep) {
    const int total_replicas = c.shards * c.replicas_per_shard;
    // Clients: one closed-loop writer per replica, capped so the 100-shard
    // row measures simulator scaling rather than client-queue buildup.
    const int clients = std::min(total_replicas, 256);
    double wall_1t = 0;
    std::uint64_t events_1t = 0, completed_1t = 0;
    for (int t : threads) {
      if (!c.threads_sweep && t != threads.front()) continue;
      // Non-sweep rows run the classic loop (sim_threads = 0): they track
      // the historical harness-cost trajectory. Sweep rows run lane mode at
      // every thread count, including the 1-worker lane baseline.
      const int t_arg = c.threads_sweep ? t : 0;
      const auto p =
          measure_sim_scale(c.shards, c.replicas_per_shard, clients, warmup, measure, 1, t_arg);
      const std::uint64_t lookups = p.reachable_cache_hits + p.reachable_cache_misses;
      if (t == threads.front()) {
        wall_1t = p.wall_ms;
        events_1t = p.events;
        completed_1t = p.completed;
      } else if (p.events != events_1t || p.completed != completed_1t) {
        // Lane mode is deterministic across worker counts: any divergence
        // in the simulated results is a correctness bug, not noise.
        std::fprintf(stderr,
                     "FAIL: %dx%d at %d threads diverged from 1 thread "
                     "(events %llu vs %llu, completed %llu vs %llu)\n",
                     c.shards, c.replicas_per_shard, t,
                     static_cast<unsigned long long>(p.events),
                     static_cast<unsigned long long>(events_1t),
                     static_cast<unsigned long long>(p.completed),
                     static_cast<unsigned long long>(completed_1t));
        identical = false;
      }
      const double speedup = (t != threads.front() && p.wall_ms > 0) ? wall_1t / p.wall_ms : 1.0;
      if (c.threads_sweep && c.shards >= 16 && t == 8) {
        speedup_at_16 = std::max(speedup_at_16, speedup);
      }
      char label[32];
      std::snprintf(label, sizeof(label), "%dx%d (%d)", c.shards, c.replicas_per_shard,
                    total_replicas);
      std::printf("%14s | %3d | %8.0f | %9llu | %10.0f | %7.0fms | %10.1f | %6zu | %7.2f | "
                  "%5.0f%% | %6.2fx\n",
                  label, p.sim_threads, p.green_per_second,
                  static_cast<unsigned long long>(p.events), p.events_per_wall_second, p.wall_ms,
                  p.wall_ms_per_sim_second, p.peak_queue_depth,
                  static_cast<double>(p.payload_bytes_copied) / (1024.0 * 1024.0),
                  lookups ? 100.0 * static_cast<double>(p.reachable_cache_hits) /
                                static_cast<double>(lookups)
                          : 0.0,
                  speedup);
      json.begin_row();
      json.field("shards", p.shards);
      json.field("replicas_per_shard", p.replicas_per_shard);
      json.field("total_replicas", p.total_replicas);
      json.field("clients", p.clients);
      json.field("threads", p.sim_threads);
      json.field("wall_ms", p.wall_ms);
      json.field("events", p.events);
      json.field("events_per_sec", p.events_per_wall_second);
      json.field("green_per_sec", p.green_per_second);
      json.field("completed", p.completed);
      json.field("messages", p.messages);
      json.field("peak_queue_depth", p.peak_queue_depth);
      json.field("lane_windows", p.lane_windows);
      json.field("lane_handoffs", p.lane_handoffs);
      json.field("speedup_vs_1t", speedup);
    }
  }
  const double total_wall_ms = total.ms();
  std::printf("\n(thr: lane-mode worker threads, 0 = classic event loop; ev/wall-s: "
              "simulator events executed per host second; ms/sim-s: host milliseconds per "
              "simulated second; copyMB: payload bytes deep-copied on the send path; cache%%: "
              "reachable_set cache hit rate; speedup: wall(1 lane thread) / wall(N), simulated "
              "results bit-identical across lane rows)\n");
  std::printf("total wall clock: %.0f ms\n", total_wall_ms);
  json.write("BENCH_simscale.json");

  if (!identical) return 1;
  // The scaling criterion needs hardware to scale onto: enforce it only
  // when the host can give every pool thread a core. Smaller hosts (1-core
  // CI containers) still verify determinism above; there the parallel rows
  // measure rendezvous overhead, not speedup.
  const unsigned hw = std::thread::hardware_concurrency();
  if (!smoke && hw >= 8 && speedup_at_16 < 3.0) {
    std::fprintf(stderr,
                 "FAIL: best 8-thread speedup at >= 16 shards was %.2fx (< 3x) — the "
                 "worker pool is not scaling\n",
                 speedup_at_16);
    return 1;
  }
  if (hw < 8) {
    std::printf("note: host has %u hardware thread(s); the >= 3x speedup criterion needs 8 "
                "cores and was not enforced\n",
                hw);
  }
  if (smoke && !bench::check_budget(total_wall_ms, "TORDB_SIM_SCALE_BUDGET_MS", 90'000,
                                    "smoke sweep")) {
    return 1;
  }
  return 0;
}
