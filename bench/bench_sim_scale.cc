// Simulator scale sweep: what the deterministic harness itself costs.
//
// Every experiment in this repo runs on the discrete-event simulator, so its
// wall-clock cost per simulated message caps how far the paper's evaluation
// shape can be pushed (ROADMAP "Scale sweeps"). This bench drives the same
// closed-loop put workload the throughput figures use — over one engine
// group at 12/48/100 replicas (the single-group EVS run) and over sharded
// deployments up to 8 shards x 96 total replicas — and reports the host-side
// numbers: events/sec, wall-clock per simulated second, peak event-queue
// depth, payload bytes deep-copied, and reachability-cache hit rate.
// Identical seeds produce identical virtual-time results across builds, so
// deltas between binaries measure only the simulator hot path.
//
// --smoke (or TORDB_BENCH_FAST=1) runs a reduced sweep and enforces a
// wall-clock budget (default 90 s, TORDB_SIM_SCALE_BUDGET_MS to override):
// the CI guard that fails loudly if the hot path regresses by an order of
// magnitude. The budget is deliberately loose — it tolerates sanitizers and
// slow runners, not a return of per-target payload copies and red-black-tree
// lookups per send.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "workload/experiments.h"

int main(int argc, char** argv) {
  using namespace tordb;
  using namespace tordb::workload;

  bool smoke = bench::fast_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0 || std::strcmp(argv[i], "--quick") == 0) {
      smoke = true;
    }
  }

  bench::header("Simulator scale sweep: harness cost at 12-100 replicas",
                "not a paper figure: profiles the simulation kernel itself so the "
                "paper's relative results can be evaluated at partial-replication "
                "scale (dozens of shards, hundreds of replicas)");

  struct Config {
    int shards;
    int replicas_per_shard;
  };
  // Single-group rows exercise the pure EVS path (sequencer + group-wide
  // multicast + acks); sharded rows exercise N groups on one network behind
  // the router. Clients: one closed-loop writer per replica.
  std::vector<Config> sweep = {{1, 12}, {1, 48}, {1, 100}, {4, 12}, {8, 12}};
  SimDuration warmup = millis(500);
  SimDuration measure = seconds(2);
  if (smoke) {
    sweep = {{1, 12}, {2, 6}};
    measure = seconds(1);
  }

  std::printf("%14s | %8s | %9s | %10s | %9s | %10s | %6s | %7s | %6s\n", "config",
              "green/s", "events", "ev/wall-s", "wall", "ms/sim-s", "peakQ", "copyMB",
              "cache%");
  bench::row_sep(104);

  const auto t0 = std::chrono::steady_clock::now();
  for (const Config& c : sweep) {
    const int total = c.shards * c.replicas_per_shard;
    const auto p = measure_sim_scale(c.shards, c.replicas_per_shard, total, warmup, measure);
    const std::uint64_t lookups = p.reachable_cache_hits + p.reachable_cache_misses;
    char label[32];
    std::snprintf(label, sizeof(label), "%dx%d (%d)", c.shards, c.replicas_per_shard, total);
    std::printf("%14s | %8.0f | %9llu | %10.0f | %7.0fms | %10.1f | %6zu | %7.2f | %5.0f%%\n",
                label, p.green_per_second, static_cast<unsigned long long>(p.events),
                p.events_per_wall_second, p.wall_ms, p.wall_ms_per_sim_second,
                p.peak_queue_depth,
                static_cast<double>(p.payload_bytes_copied) / (1024.0 * 1024.0),
                lookups ? 100.0 * static_cast<double>(p.reachable_cache_hits) /
                              static_cast<double>(lookups)
                        : 0.0);
  }
  const double total_wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  std::printf("\n(ev/wall-s: simulator events executed per host second; ms/sim-s: host "
              "milliseconds per simulated second; copyMB: payload bytes deep-copied on the "
              "send path; cache%%: reachable_set cache hit rate)\n");
  std::printf("total wall clock: %.0f ms\n", total_wall_ms);

  if (smoke) {
    double budget_ms = 90'000;
    if (const char* b = std::getenv("TORDB_SIM_SCALE_BUDGET_MS")) {
      budget_ms = std::atof(b);
    }
    if (total_wall_ms > budget_ms) {
      std::fprintf(stderr,
                   "FAIL: smoke sweep took %.0f ms, over the %.0f ms budget — the "
                   "simulator hot path regressed\n",
                   total_wall_ms, budget_ms);
      return 1;
    }
    std::printf("smoke budget: %.0f ms <= %.0f ms OK\n", total_wall_ms, budget_ms);
  }
  return 0;
}
