// Ablation A2 (DESIGN.md, paper §6): service latency of the relaxed
// consistency semantics inside a non-primary (minority) component.
//
// Strict actions must wait for the partition to heal; weak queries answer
// from the consistent-but-stale green state immediately; dirty queries
// answer from the red-applied overlay immediately; commutative updates are
// acknowledged locally and converge after the merge.
#include <cstdio>

#include "bench_util.h"
#include "workload/experiments.h"

int main() {
  using namespace tordb;
  using namespace tordb::workload;

  bench::header("Ablation A2: relaxed semantics in a minority partition (paper §6)",
                "weak/dirty/commutative answer in ~0ms while strict waits out the partition");

  std::vector<SimDuration> partition_lengths = {millis(500), seconds(2), seconds(5)};
  if (bench::fast_mode()) partition_lengths = {millis(500), seconds(2)};

  std::printf("%15s | %10s | %10s | %13s | %24s\n", "partition (s)", "weak (ms)",
              "dirty (ms)", "commut. (ms)", "strict (ms, incl. merge)");
  bench::row_sep();
  for (SimDuration len : partition_lengths) {
    const auto r = measure_semantics(7, len, 1);
    std::printf("%15.1f | %10.3f | %10.3f | %13.3f | %24.1f%s\n", to_seconds(len),
                r.weak_query_ms, r.dirty_query_ms, r.commutative_update_ms,
                r.strict_latency_ms,
                r.strict_blocked_during_partition ? "  (blocked until merge)" : "");
  }
  return 0;
}
