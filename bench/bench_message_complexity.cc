// Per-action cost accounting — the §7 setup claims measured directly:
//
//   "Two-phase commit ... requir[es] two forced disk writes and 2n unicast
//    messages per action. [COReL requires] only one forced disk write and n
//    multicast messages per action. Our algorithm only requires one forced
//    disk write and one multicast message per action."
//
// We run each protocol with stable membership, one client, N actions, and
// divide the network/storage counters by N. Multicasts count as one wire
// message (hardware multicast); the engine's GC adds its amortized
// ordering/stability traffic (sender->sequencer forward and coalesced
// acks), reported separately so the protocol-level claim stays visible.
#include <cstdio>
#include <memory>

#include "baselines/corel.h"
#include "baselines/twopc.h"
#include "bench_util.h"
#include "db/database.h"
#include "workload/cluster.h"

using namespace tordb;

namespace {

struct Costs {
  double wire_messages_per_action;
  double forces_per_action;  ///< critical-path forces at the busiest node
  double total_forces_per_action;  ///< across all replicas
};

constexpr int kReplicas = 8;
constexpr int kActions = 200;

template <typename SubmitFn, typename TotalForcesFn>
Costs run_counted(Simulator& sim, Network& net, SubmitFn&& submit, TotalForcesFn&& forces) {
  const auto msgs_before = net.stats().messages_sent;
  const auto forces_before = forces();
  int remaining = kActions;
  std::function<void()> issue = [&] {
    if (remaining-- <= 0) return;
    submit(issue);
  };
  issue();
  sim.run(200'000'000);
  Costs c{};
  c.wire_messages_per_action =
      static_cast<double>(net.stats().messages_sent - msgs_before) / kActions;
  c.total_forces_per_action = static_cast<double>(forces() - forces_before) / kActions;
  return c;
}

}  // namespace

int main() {
  using workload::ClusterOptions;
  using workload::EngineCluster;

  bench::header("Message & disk complexity per action (8 replicas, stable membership)",
                "paper: engine 1 multicast + 1 force; COReL n multicasts + 1 force/replica; "
                "2PC ~2n unicasts + 2 forces");

  // --- engine ---------------------------------------------------------------
  ClusterOptions o;
  o.replicas = kReplicas;
  EngineCluster cluster(o);
  cluster.run_for(seconds(2));
  auto engine_forces = [&] {
    std::uint64_t total = 0;
    for (NodeId i = 0; i < kReplicas; ++i) total += cluster.node(i).storage().stats().forces;
    return total;
  };
  Costs engine = run_counted(
      cluster.sim(), cluster.net(),
      [&](std::function<void()>& next) {
        cluster.engine(0).submit({}, db::Command::add("n", 1), 1, core::Semantics::kStrict,
                                 [&next](const core::Reply&) { next(); });
      },
      engine_forces);

  // --- COReL ----------------------------------------------------------------
  Simulator csim(1);
  Network cnet(csim);
  std::vector<NodeId> all;
  for (NodeId i = 0; i < kReplicas; ++i) all.push_back(i);
  std::vector<std::unique_ptr<baselines::CorelReplica>> corel;
  for (NodeId i = 0; i < kReplicas; ++i) cnet.add_node(i);
  for (NodeId i = 0; i < kReplicas; ++i) {
    corel.push_back(std::make_unique<baselines::CorelReplica>(cnet, i, all));
  }
  csim.run_for(seconds(2));
  auto corel_forces = [&] {
    std::uint64_t total = 0;
    for (auto& r : corel) total += r->storage().stats().forces;
    return total;
  };
  Costs corel_costs = run_counted(
      csim, cnet,
      [&](std::function<void()>& next) {
        corel[0]->submit(db::Command::add("n", 1), [&next](bool) { next(); });
      },
      corel_forces);

  // --- 2PC --------------------------------------------------------------------
  Simulator tsim(1);
  Network tnet(tsim);
  std::vector<std::unique_ptr<baselines::TwoPcReplica>> twopc;
  for (NodeId i = 0; i < kReplicas; ++i) tnet.add_node(i);
  for (NodeId i = 0; i < kReplicas; ++i) {
    twopc.push_back(std::make_unique<baselines::TwoPcReplica>(tnet, i, all));
  }
  tsim.run_for(seconds(1));
  auto twopc_forces = [&] {
    std::uint64_t total = 0;
    for (auto& r : twopc) total += r->storage().stats().forces;
    return total;
  };
  Costs twopc_costs = run_counted(
      tsim, tnet,
      [&](std::function<void()>& next) {
        twopc[0]->submit(db::Command::add("n", 1), [&next](bool) { next(); });
      },
      twopc_forces);

  std::printf("%10s | %22s | %22s | %30s\n", "protocol", "wire msgs / action",
              "forces / action (all)", "paper's stated complexity");
  bench::row_sep(96);
  std::printf("%10s | %22.1f | %22.2f | %30s\n", "engine", engine.wire_messages_per_action,
              engine.total_forces_per_action, "1 multicast, 1 force");
  std::printf("%10s | %22.1f | %22.2f | %30s\n", "COReL", corel_costs.wire_messages_per_action,
              corel_costs.total_forces_per_action, "n multicasts, n forces (1/site)");
  std::printf("%10s | %22.1f | %22.2f | %30s\n", "2PC", twopc_costs.wire_messages_per_action,
              twopc_costs.total_forces_per_action, "~3(n-1) unicasts, 2 forces");
  std::printf(
      "\nengine wire messages include the GC substrate (forward to sequencer, the\n"
      "ORDERED multicast, and coalesced acknowledgements); the engine-level cost is\n"
      "exactly one multicast and one forced write per action, and crucially ZERO\n"
      "end-to-end acknowledgement rounds.\n");
  return 0;
}
