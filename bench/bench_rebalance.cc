// Ablation A7 (DESIGN.md §9): online shard rebalancing.
//
// A range-sharded deployment serves a fixed closed-loop write load while K
// fenced key-range moves run back to back. The question rebalancing has to
// answer is "what does a move cost the clients?": client-visible p50/p99
// during the move windows versus steady state, the fence-bounce count (each
// bounce is one client command that hit the frozen range and re-routed to
// the new owner), and the bytes shipped per move.
//
// Pass --quick (or set TORDB_BENCH_FAST=1) for the reduced CI smoke sweep.
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "workload/experiments.h"

int main(int argc, char** argv) {
  using namespace tordb;
  using namespace tordb::workload;

  bool quick = bench::fast_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::header("Ablation A7: online rebalancing (range-sharded, closed-loop writers)",
                "client-visible latency while fenced key-range moves run: commands "
                "hitting a frozen range bounce once and commit at the new owner, so "
                "the move window pays a p99 tax but loses no writes");

  const int clients = 48;
  const SimDuration warmup = millis(500);
  const SimDuration measure = quick ? seconds(4) : seconds(12);

  struct Config {
    int shards;
    int replicas_per_shard;
    int moves;
  };
  std::vector<Config> configs = {{2, 3, 2}, {2, 3, 6}, {4, 3, 8}};
  if (quick) configs = {{2, 3, 2}};

  std::printf("%6s | %5s | %10s | %10s | %10s | %10s | %7s | %8s | %7s\n", "shards",
              "moves", "steady p50", "steady p99", "move p50", "move p99", "bounces",
              "bytes/mv", "move ms");
  bench::row_sep(95);
  for (const Config& c : configs) {
    const auto p =
        measure_rebalance(c.shards, c.replicas_per_shard, clients, c.moves, warmup, measure);
    std::printf("%6d | %2llu/%-2d | %s | %s | %7llu | %8lld | %7.0f\n",
                p.shards, static_cast<unsigned long long>(p.moves_completed), p.moves_requested,
                bench::lat_pair_ms(p.steady_p50_ms, p.steady_p99_ms).c_str(),
                bench::lat_pair_ms(p.move_window_p50_ms, p.move_window_p99_ms).c_str(),
                static_cast<unsigned long long>(p.fenced_bounces),
                p.moves_completed ? p.bytes_moved / static_cast<std::int64_t>(p.moves_completed)
                                  : 0,
                p.mean_move_ms);
  }
  std::printf("\n(move p50/p99: latency of client actions completing while a move was in "
              "flight; bounces: commands that hit a fence and re-routed; move ms: fence "
              "submit -> directory cutover, simulated)\n");
  return 0;
}
