// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary prints the rows/series of one table or figure from the
// paper's §7 evaluation (or a DESIGN.md ablation), plus the paper's
// reference values where applicable. Set TORDB_BENCH_FAST=1 for a reduced
// sweep (used in CI smoke runs).
//
// Beyond the table furniture, this hoists the bits every bench used to
// re-implement: percentile cell formatting, the metrics window-series
// print, the wall-clock budget guard, and a minimal JSON emitter for the
// machine-readable BENCH_*.json summaries the perf trajectory is tracked
// with run-over-run.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace tordb::bench {

inline bool fast_mode() {
  const char* v = std::getenv("TORDB_BENCH_FAST");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("paper reference: %s\n\n", paper_ref.c_str());
}

inline void row_sep(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// "   11.43 /  12.10 /  14.77" — the mean/p99/p999 latency cell the
/// per-algorithm comparison tables use.
inline std::string lat_triple(double mean, double p99, double p999) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%8.2f /%7.2f /%7.2f", mean, p99, p999);
  return buf;
}

/// "   3.10ms |    9.84ms" — the p50/p99 pair cell; `width` matches the
/// caller's column layout.
inline std::string lat_pair_ms(double p50, double p99, int width = 8) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%*.2fms | %*.2fms", width, p50, width, p99);
  return buf;
}

/// Print a MetricsRegistry::window_table() with the standard caption.
inline void print_window_series(const std::string& caption, const std::string& table) {
  if (table.empty()) return;
  std::printf("\n%s:\n%s", caption.c_str(), table.c_str());
}

/// Wall-clock stopwatch for whole-bench budgets.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The CI smoke guard: fail loudly when the sweep exceeds its wall budget
/// (`env_var` overrides `default_ms`). Returns false — and prints the FAIL
/// line — on overrun; prints the OK line otherwise. The budgets are
/// deliberately loose: they tolerate sanitizers and slow runners, not an
/// order-of-magnitude hot-path regression.
inline bool check_budget(double wall_ms, const char* env_var, double default_ms,
                         const char* what) {
  double budget_ms = default_ms;
  if (const char* b = std::getenv(env_var)) budget_ms = std::atof(b);
  if (wall_ms > budget_ms) {
    std::fprintf(stderr, "FAIL: %s took %.0f ms, over the %.0f ms budget\n", what, wall_ms,
                 budget_ms);
    return false;
  }
  std::printf("%s wall clock: %.0f ms <= %.0f ms budget OK\n", what, wall_ms, budget_ms);
  return true;
}

/// Minimal JSON emitter for the BENCH_*.json machine-readable summaries:
/// an array of flat objects, one per sweep row, written in one shot.
/// Numbers print with enough precision to round-trip; strings are assumed
/// printable ASCII (bench labels).
class JsonRows {
 public:
  void begin_row() {
    rows_.emplace_back();
    first_field_ = true;
  }
  void field(const char* key, double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    raw(key, buf);
  }
  void field(const char* key, std::int64_t v) { raw(key, std::to_string(v)); }
  void field(const char* key, std::uint64_t v) { raw(key, std::to_string(v)); }
  void field(const char* key, int v) { raw(key, std::to_string(v)); }
  void field(const char* key, bool v) { raw(key, v ? "true" : "false"); }
  void field(const char* key, const std::string& v) { raw(key, "\"" + v + "\""); }

  std::string str() const {
    std::string out = "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += "  {" + rows_[i] + "}";
      if (i + 1 < rows_.size()) out += ",";
      out += "\n";
    }
    out += "]\n";
    return out;
  }

  /// Write the array to `path`; prints where it went (or a warning).
  bool write(const std::string& path) const {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (f) f << str();
    if (!f) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
      return false;
    }
    std::printf("machine-readable summary: %s (%zu rows)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  void raw(const char* key, const std::string& value) {
    std::string& row = rows_.back();
    if (!first_field_) row += ", ";
    first_field_ = false;
    row += "\"";
    row += key;
    row += "\": ";
    row += value;
  }

  std::vector<std::string> rows_;
  bool first_field_ = true;
};

}  // namespace tordb::bench
