// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary prints the rows/series of one table or figure from the
// paper's §7 evaluation (or a DESIGN.md ablation), plus the paper's
// reference values where applicable. Set TORDB_BENCH_FAST=1 for a reduced
// sweep (used in CI smoke runs).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace tordb::bench {

inline bool fast_mode() {
  const char* v = std::getenv("TORDB_BENCH_FAST");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("paper reference: %s\n\n", paper_ref.c_str());
}

inline void row_sep(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace tordb::bench
