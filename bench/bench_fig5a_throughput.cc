// Figure 5(a): throughput comparison — the replication engine (forced
// writes) vs. COReL vs. two-phase commit; 14 replicas, 1..14 closed-loop
// clients, ~200-byte actions.
//
// Expected shape (paper §7): "two-phase commit and COReL pay the price for
// extra communication and disk writes ... Our algorithm was able to sustain
// increasingly more throughput and has not reached its processing limit
// under this test." Absolute numbers differ (simulated substrate), the
// ordering engine > COReL > 2PC and the near-linear engine scaling must
// hold.
#include <cstdio>

#include "bench_util.h"
#include "workload/experiments.h"

int main() {
  using namespace tordb;
  using namespace tordb::workload;

  bench::header("Figure 5(a): throughput, 14 replicas, engine vs COReL vs 2PC",
                "engine highest and still rising at 14 clients; COReL second; 2PC lowest");

  const int replicas = 14;
  std::vector<int> clients = bench::fast_mode() ? std::vector<int>{1, 4, 14}
                                                : std::vector<int>{1, 2, 4, 6, 8, 10, 12, 14};
  const SimDuration warmup = bench::fast_mode() ? millis(500) : seconds(1);
  const SimDuration measure = bench::fast_mode() ? seconds(2) : seconds(6);

  std::printf("%8s | %22s | %22s | %22s\n", "clients", "engine (actions/s)",
              "COReL (actions/s)", "2PC (actions/s)");
  bench::row_sep();
  for (int c : clients) {
    const auto e = measure_throughput(Algorithm::kEngine, replicas, c, warmup, measure, 1);
    const auto k = measure_throughput(Algorithm::kCorel, replicas, c, warmup, measure, 1);
    const auto t = measure_throughput(Algorithm::kTwoPc, replicas, c, warmup, measure, 1);
    std::printf("%8d | %10.0f (%6.2fms) | %10.0f (%6.2fms) | %10.0f (%6.2fms)\n", c,
                e.actions_per_second, e.mean_latency_ms, k.actions_per_second,
                k.mean_latency_ms, t.actions_per_second, t.mean_latency_ms);
  }
  std::printf("\n(in parentheses: mean closed-loop action latency)\n");

  // Metrics time series (src/obs): the same engine run at the highest client
  // count, with the registry rolling a window every 500ms of virtual time.
  // Steady state shows up as flat greens-per-window; the storage.forces
  // column is the disk-write budget the paper's batching argument is about.
  const int peak_clients = clients.back();
  const SimDuration window = millis(500);
  std::string table;
  measure_engine_throughput_windowed(/*delayed=*/false, replicas, peak_clients, warmup,
                                     measure, window, 1, &table);
  std::printf("\nengine metrics windows (%d clients, %.1fs windows):\n%s", peak_clients,
              to_seconds(window), table.c_str());
  return 0;
}
