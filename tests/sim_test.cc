#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"

namespace tordb {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(millis(3), [&] { order.push_back(3); });
  sim.at(millis(1), [&] { order.push_back(1); });
  sim.at(millis(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), millis(3));
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.at(millis(1), [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.after(millis(1), [&] {
    times.push_back(sim.now());
    sim.after(millis(1), [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], millis(1));
  EXPECT_EQ(times[1], millis(2));
}

TEST(Simulator, PastEventClampsToNow) {
  Simulator sim;
  sim.at(millis(5), [] {});
  sim.run();
  bool ran = false;
  sim.at(millis(1), [&] { ran = true; });  // in the past
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), millis(5));
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(millis(2), [&] { ++fired; });
  sim.at(millis(10), [&] { ++fired; });
  sim.run_until(millis(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), millis(5));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelableDoesNotFire) {
  Simulator sim;
  bool fired = false;
  Cancelable c = sim.after_cancelable(millis(1), [&] { fired = true; });
  c.cancel();
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunWithLimit) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.at(millis(i), [] {});
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(sim.run(), 2u);
}

TEST(Simulator, CancelledPopsDoNotCountAsExecuted) {
  Simulator sim;
  int fired = 0;
  std::vector<Cancelable> tokens;
  for (int i = 0; i < 10; ++i) {
    tokens.push_back(sim.after_cancelable(millis(i + 1), [&] { ++fired; }));
  }
  for (int i = 0; i < 10; i += 2) tokens[i].cancel();
  sim.at(millis(20), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 6);
  EXPECT_EQ(sim.executed_events(), 6u);
  // Every cancelled event was either skipped at the top or purged en masse;
  // none executed and none inflated the executed count.
  EXPECT_EQ(sim.cancelled_pops() + sim.purged_events(), 5u);
}

TEST(Simulator, RunLimitCountsOnlyLiveEvents) {
  Simulator sim;
  int fired = 0;
  auto dead1 = sim.after_cancelable(millis(1), [&] { ++fired; });
  sim.at(millis(2), [&] { ++fired; });
  auto dead2 = sim.after_cancelable(millis(3), [&] { ++fired; });
  sim.at(millis(4), [&] { ++fired; });
  sim.at(millis(5), [&] { ++fired; });
  dead1.cancel();
  dead2.cancel();
  // The limit is a budget of *live* events: skipped cancellations are free.
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, CancelledBacklogIsPurgedBeforeGrowth) {
  Simulator sim;
  std::vector<Cancelable> tokens;
  for (int i = 0; i < 200; ++i) {
    tokens.push_back(sim.after_cancelable(seconds(1) + millis(i), [] {}));
  }
  for (auto& t : tokens) t.cancel();
  EXPECT_EQ(sim.queue_depth(), 200u);  // lazily cancelled: still queued
  // The next schedule sees a queue dominated by dead entries and compacts
  // it in one pass instead of growing past it.
  sim.at(millis(1), [] {});
  EXPECT_EQ(sim.queue_depth(), 1u);
  EXPECT_EQ(sim.purged_events(), 200u);
  sim.run();
  EXPECT_EQ(sim.executed_events(), 1u);
  // Purged events never ran, so the clock stopped at the live event.
  EXPECT_EQ(sim.now(), millis(1));
}

TEST(Simulator, PurgePreservesFifoOrderOfSurvivors) {
  Simulator sim;
  std::vector<int> order;
  std::vector<Cancelable> tokens;
  for (int i = 0; i < 100; ++i) {
    tokens.push_back(sim.after_cancelable(millis(5), [] {}));
  }
  for (int i = 0; i < 10; ++i) sim.at(millis(5), [&order, i] { order.push_back(i); });
  for (auto& t : tokens) t.cancel();
  sim.at(millis(5), [&order] { order.push_back(10); });  // triggers the purge
  EXPECT_EQ(sim.peak_queue_depth(), 110u);
  sim.run();
  ASSERT_EQ(order.size(), 11u);
  // Same-time events keep exact schedule-order FIFO across the re-heapify.
  for (int i = 0; i <= 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

// ---------------------------------------------------------------------------

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(42), net_(sim_, quiet_params()) {
    for (NodeId n : {0, 1, 2, 3}) {
      net_.add_node(n);
      net_.set_packet_handler(n, [this, n](NodeId from, const Bytes& p) {
        received_.push_back({n, from, p});
      });
    }
  }

  static NetworkParams quiet_params() {
    NetworkParams p;
    p.jitter = 0;  // deterministic latencies for exact assertions
    return p;
  }

  struct Recv {
    NodeId at;
    NodeId from;
    Bytes payload;
  };

  Bytes payload(std::initializer_list<std::uint8_t> b) { return Bytes(b); }

  Simulator sim_;
  Network net_;
  std::vector<Recv> received_;
};

TEST_F(NetworkTest, DeliversBetweenConnectedNodes) {
  net_.send(0, 1, payload({1, 2, 3}));
  sim_.run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, 1);
  EXPECT_EQ(received_[0].from, 0);
  EXPECT_EQ(received_[0].payload, payload({1, 2, 3}));
}

TEST_F(NetworkTest, SelfSendDelivered) {
  net_.send(2, 2, payload({9}));
  sim_.run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, 2);
  EXPECT_EQ(received_[0].from, 2);
}

TEST_F(NetworkTest, LinkIsFifo) {
  for (std::uint8_t i = 0; i < 50; ++i) net_.send(0, 1, payload({i}));
  sim_.run();
  ASSERT_EQ(received_.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) EXPECT_EQ(received_[i].payload[0], i);
}

TEST_F(NetworkTest, PartitionBlocksTraffic) {
  net_.set_components({{0, 1}, {2, 3}});
  sim_.run();
  received_.clear();
  net_.send(0, 2, payload({1}));
  net_.send(0, 1, payload({2}));
  sim_.run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].payload[0], 2);
}

TEST_F(NetworkTest, InFlightMessageLostOnPartition) {
  net_.send(0, 2, payload({7}));  // in flight...
  net_.set_components({{0, 1}, {2, 3}});  // ...when the network splits
  sim_.run();
  EXPECT_TRUE(received_.empty());
}

TEST_F(NetworkTest, MergeRestoresTraffic) {
  net_.set_components({{0, 1}, {2, 3}});
  sim_.run();
  net_.heal();
  net_.send(0, 3, payload({4}));
  sim_.run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, 3);
}

TEST_F(NetworkTest, CrashedNodeReceivesNothing) {
  net_.crash(1);
  net_.send(0, 1, payload({1}));
  sim_.run();
  EXPECT_TRUE(received_.empty());
  EXPECT_FALSE(net_.alive(1));
}

TEST_F(NetworkTest, CrashedNodeSendsNothing) {
  net_.crash(0);
  net_.send(0, 1, payload({1}));
  sim_.run();
  EXPECT_TRUE(received_.empty());
}

TEST_F(NetworkTest, InFlightToCrashedNodeDropped) {
  net_.send(0, 1, payload({1}));
  net_.crash(1);  // crash while in flight
  sim_.run();
  EXPECT_TRUE(received_.empty());
}

TEST_F(NetworkTest, RecoveryAllowsTrafficAgain) {
  net_.crash(1);
  sim_.run();
  net_.recover(1);
  net_.send(0, 1, payload({1}));
  sim_.run();
  ASSERT_EQ(received_.size(), 1u);
}

TEST_F(NetworkTest, ReachableSetReflectsTopology) {
  net_.set_components({{0, 1, 2}, {3}});
  net_.crash(2);
  EXPECT_EQ(net_.reachable_set(0), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(net_.reachable_set(3), (std::vector<NodeId>{3}));
  EXPECT_TRUE(net_.reachable_set(2).empty());
}

TEST_F(NetworkTest, ReachabilityNotificationOnChange) {
  std::vector<std::vector<NodeId>> seen;
  net_.set_reachability_handler(0, [&](const std::vector<NodeId>& r) { seen.push_back(r); });
  sim_.run();
  ASSERT_EQ(seen.size(), 1u);  // initial notification
  EXPECT_EQ(seen[0], (std::vector<NodeId>{0, 1, 2, 3}));
  net_.set_components({{0, 1}, {2, 3}});
  sim_.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1], (std::vector<NodeId>{0, 1}));
}

TEST_F(NetworkTest, NotificationsCoalesce) {
  std::vector<std::vector<NodeId>> seen;
  net_.set_reachability_handler(0, [&](const std::vector<NodeId>& r) { seen.push_back(r); });
  sim_.run();
  seen.clear();
  // Two rapid changes within the detection delay produce one notification
  // with the final state.
  net_.set_components({{0, 1}, {2, 3}});
  net_.set_components({{0}, {1, 2, 3}});
  sim_.run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], (std::vector<NodeId>{0}));
}

TEST_F(NetworkTest, ProcessingSerializesOnReceiver) {
  // Flood node 1; its busy horizon must extend beyond a single message cost.
  for (int i = 0; i < 100; ++i) net_.send(0, 1, Bytes(100));
  sim_.run();
  EXPECT_EQ(received_.size(), 100u);
  // 100 messages * (proc_per_message + 100 * proc_per_byte) of CPU.
  const SimDuration per = net_.params().proc_per_message + 100 * net_.params().proc_per_byte;
  EXPECT_GE(net_.busy_until(1), 100 * per);
}

TEST_F(NetworkTest, LatencyScalesWithSize) {
  SimTime t_small = 0, t_big = 0;
  net_.set_packet_handler(1, [&](NodeId, const Bytes& p) {
    if (p.size() < 100) {
      t_small = sim_.now();
    } else {
      t_big = sim_.now();
    }
  });
  const SimTime start_small = sim_.now();
  net_.send(0, 1, Bytes(10));
  sim_.run();
  const SimTime start_big = sim_.now();
  net_.send(0, 1, Bytes(10000));
  sim_.run();
  const SimDuration lat_small = t_small - start_small;
  const SimDuration lat_big = t_big - start_big;
  EXPECT_GT(lat_big - lat_small, net_.params().per_byte_latency * 9000);
}

TEST_F(NetworkTest, StatsCount) {
  net_.send(0, 1, payload({1}));
  net_.set_components({{0}, {1, 2, 3}});
  net_.send(0, 1, payload({2}));  // dropped
  sim_.run();
  EXPECT_EQ(net_.stats().messages_sent, 2u);
  EXPECT_GE(net_.stats().messages_dropped, 1u);
}

TEST(NetworkStandalone, MulticastReachesAllListed) {
  Simulator sim(1);
  Network net(sim);
  std::vector<NodeId> got;
  for (NodeId n : {0, 1, 2}) {
    net.add_node(n);
    net.set_packet_handler(n, [&got, n](NodeId, const Bytes&) { got.push_back(n); });
  }
  net.multicast(0, {0, 1, 2}, Bytes{1});
  sim.run();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<NodeId>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Lane scheduler (DESIGN.md §15): conservative windows, handoffs, LaneScope.
// ---------------------------------------------------------------------------

TEST(SimulatorLanes, EnableLanesRejectsBadConfigs) {
  Simulator scheduled(1);
  scheduled.after(millis(1), [] {});
  EXPECT_THROW(scheduled.enable_lanes(2, 1, millis(1)), std::logic_error);

  Simulator sim(1);
  EXPECT_THROW(sim.enable_lanes(1, 1, millis(1)), std::invalid_argument);  // < 2 lanes
  EXPECT_THROW(sim.enable_lanes(2, 0, millis(1)), std::invalid_argument);  // < 1 thread
  EXPECT_THROW(sim.enable_lanes(2, 1, 0), std::invalid_argument);          // no lookahead
  sim.enable_lanes(2, 1, millis(1));
  EXPECT_THROW(sim.enable_lanes(2, 1, millis(1)), std::logic_error);  // twice
}

TEST(SimulatorLanes, PostExecutesInTargetLaneAtWindowBoundary) {
  Simulator sim(1);
  sim.enable_lanes(3, 1, millis(1));  // lanes 0,1 workers; lane 2 control
  int ran_in = -1;
  SimTime ran_at = -1;
  {
    Simulator::LaneScope scope(sim, 0);
    sim.after(micros(100), [&sim, &ran_in, &ran_at] {
      // Cross-lane effect from a running worker lane: must go via post()
      // with at least the handoff latency.
      sim.post(1, millis(1), [&sim, &ran_in, &ran_at] {
        ran_in = sim.current_lane();
        ran_at = sim.now();
      });
    });
  }
  sim.run();
  EXPECT_EQ(ran_in, 1);
  EXPECT_EQ(ran_at, micros(100) + millis(1));
}

TEST(SimulatorLanes, CrossLanePostBelowLookaheadThrows) {
  Simulator sim(1);
  sim.enable_lanes(3, 1, millis(1));
  bool threw = false;
  {
    Simulator::LaneScope scope(sim, 0);
    sim.after(micros(100), [&sim, &threw] {
      try {
        sim.post(1, micros(10), [] {});  // 10us < the 1ms lookahead
      } catch (const std::logic_error&) {
        threw = true;
      }
    });
  }
  sim.run();
  EXPECT_TRUE(threw);
}

TEST(SimulatorLanes, SameLanePostMayBeImmediate) {
  Simulator sim(1);
  sim.enable_lanes(3, 1, millis(1));
  bool ran = false;
  {
    Simulator::LaneScope scope(sim, 0);
    sim.after(micros(100), [&sim, &ran] {
      sim.post(0, 0, [&ran] { ran = true; });  // same lane: no lookahead needed
    });
  }
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorLanes, CallInLaneDefersFromControlToWorker) {
  Simulator sim(1);
  sim.enable_lanes(3, 1, millis(1));
  std::vector<int> order;
  {
    Simulator::LaneScope scope(sim, 2);  // control lane
    sim.after(micros(100), [&sim, &order] {
      sim.call_in_lane(0, [&sim, &order] { order.push_back(sim.current_lane()); });
      order.push_back(100 + sim.current_lane());
    });
  }
  sim.run();
  // The hop runs after the control event finishes, on the worker lane.
  EXPECT_EQ(order, (std::vector<int>{102, 0}));
}

TEST(SimulatorLanes, DigestsIdenticalAcrossThreadCounts) {
  // A mesh of lanes pinging each other with seed-dependent payload work:
  // per-lane digests, executed counts and final clocks must not depend on
  // the worker thread count.
  auto run = [](int threads) {
    Simulator sim(7);
    sim.enable_lanes(5, threads, millis(1));  // 4 workers + control
    // tick outlives sim.run(): scheduled events capture it by reference.
    std::function<void(int, int)> tick = [&sim, &tick](int lane, int n) {
      if (n >= 25) return;
      sim.after(micros(10) * (lane + 1), [&sim, &tick, lane, n] {
        sim.post((lane + 1) % 4, millis(1) + micros(n), [] {});
        tick(lane, n + 1);
      });
    };
    for (int lane = 0; lane < 4; ++lane) {
      Simulator::LaneScope scope(sim, lane);
      tick(lane, 0);
    }
    sim.run();
    std::vector<std::uint64_t> out;
    for (int lane = 0; lane < 5; ++lane) {
      out.push_back(sim.lane_digest(lane));
      out.push_back(sim.lane_executed(lane));
      out.push_back(static_cast<std::uint64_t>(sim.lane_now(lane)));
    }
    out.push_back(sim.windows_run());
    out.push_back(sim.handoffs_posted());
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(SimulatorLanes, ClassicModeKeepsPostAndCallInline) {
  // Without enable_lanes, post() behaves like after() and call_in_lane()
  // runs inline — the classic path stays byte-identical.
  Simulator sim(1);
  std::vector<int> order;
  sim.call_in_lane(0, [&order] { order.push_back(1); });
  order.push_back(2);
  sim.post(0, millis(1), [&order] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(NetworkStandalone, ChargeDelaysDelivery) {
  Simulator sim(1);
  NetworkParams p;
  p.jitter = 0;
  Network net(sim, p);
  net.add_node(0);
  net.add_node(1);
  SimTime delivered = -1;
  net.set_packet_handler(1, [&](NodeId, const Bytes&) { delivered = sim.now(); });
  net.charge(1, millis(50));
  net.send(0, 1, Bytes{1});
  sim.run();
  EXPECT_GE(delivered, millis(50));
}

}  // namespace
}  // namespace tordb
