// The safety checker must actually catch corrupted histories — each
// negative test forges a trace stream violating one invariant and asserts
// the checker flags it with the right diagnosis. A positive run on a live
// cluster plus export/metrics smoke tests round out the coverage.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "db/database.h"
#include "obs/metrics.h"
#include "obs/safety_checker.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/log.h"
#include "workload/cluster.h"

namespace tordb::obs {
namespace {

using core::Reply;
using core::Semantics;
using db::Command;

/// A bus + non-fatal checker, with per-node tracers for forging events.
struct Forge {
  Simulator sim{1};
  std::shared_ptr<TraceBus> bus = std::make_shared<TraceBus>(sim);
  SafetyChecker checker{*bus, CheckerOptions{.fail_fast = false}};

  Tracer node(NodeId id) { return Tracer(bus, id); }
  void green(NodeId node_id, ActionId action, std::int64_t pos) {
    Tracer(bus, node_id).emit_action(EventKind::kActionGreen, action, pos);
  }
};

TEST(ObsChecker, ConsistentForgedHistoryIsOk) {
  Forge f;
  // Two nodes mark the same actions green in the same order: no violation.
  f.green(0, {0, 1}, 1);
  f.green(0, {1, 1}, 2);
  f.green(1, {0, 1}, 1);
  f.green(1, {1, 1}, 2);
  EXPECT_TRUE(f.checker.ok()) << f.checker.report();
  EXPECT_EQ(f.checker.canonical_green_count(), 2);
  EXPECT_EQ(f.checker.events_checked(), 4u);
  EXPECT_NE(f.checker.verdict().find("ok"), std::string::npos);
}

TEST(ObsChecker, CatchesGreenOrderDivergence) {
  Forge f;
  f.green(0, {0, 1}, 1);
  f.green(1, {1, 1}, 1);  // node 1 puts a different action at position 1
  ASSERT_FALSE(f.checker.ok());
  EXPECT_NE(f.checker.violations()[0].find("GREEN ORDER DIVERGENCE"), std::string::npos);
  EXPECT_NE(f.checker.verdict().find("violation"), std::string::npos);
}

TEST(ObsChecker, CatchesNonSequentialGreen) {
  Forge f;
  f.green(0, {0, 1}, 2);  // first green at position 2: a gap
  ASSERT_FALSE(f.checker.ok());
  EXPECT_NE(f.checker.violations()[0].find("sequential"), std::string::npos);
}

TEST(ObsChecker, CatchesActionGreenAtTwoPositions) {
  Forge f;
  f.green(0, {0, 1}, 1);
  f.green(0, {0, 1}, 2);  // same action id extends the history again
  ASSERT_FALSE(f.checker.ok());
  EXPECT_NE(f.checker.violations()[0].find("already green at position"), std::string::npos);
}

TEST(ObsChecker, CatchesGreenFifoGap) {
  Forge f;
  f.green(0, {0, 1}, 1);
  f.green(0, {0, 3}, 2);  // creator 0 skips index 2
  ASSERT_FALSE(f.checker.ok());
  EXPECT_NE(f.checker.violations()[0].find("GREEN FIFO"), std::string::npos);
}

TEST(ObsChecker, CatchesDoublePrimary) {
  Forge f;
  // Two nodes install the same primary generation with different memberships.
  f.node(0).emit(EventKind::kPrimaryInstall, /*prim=*/3, /*attempt=*/1, /*count=*/2, 111);
  f.node(1).emit(EventKind::kPrimaryInstall, /*prim=*/3, /*attempt=*/1, /*count=*/2, 222);
  ASSERT_FALSE(f.checker.ok());
  EXPECT_NE(f.checker.violations()[0].find("TWO PRIMARY COMPONENTS"), std::string::npos);
}

TEST(ObsChecker, AgreeingPrimaryInstallsAreOk) {
  Forge f;
  f.node(0).emit(EventKind::kPrimaryInstall, 3, 1, 2, 111);
  f.node(1).emit(EventKind::kPrimaryInstall, 3, 1, 2, 111);
  EXPECT_TRUE(f.checker.ok()) << f.checker.report();
}

TEST(ObsChecker, CatchesWhiteTrimPastUnstableAction) {
  Forge f;
  // Node 0 believes its server set is {0, 1}; node 1 has zero greens.
  f.node(0).emit(EventKind::kEngineStart, 0, 0);
  f.node(0).emit(EventKind::kMemberAdd, 0);
  f.node(0).emit(EventKind::kMemberAdd, 1);
  f.node(1).emit(EventKind::kEngineStart, 0, 0);
  f.green(0, {0, 1}, 1);
  f.node(0).emit(EventKind::kWhiteTrim, /*line=*/1, /*trimmed=*/1);
  ASSERT_FALSE(f.checker.ok());
  EXPECT_NE(f.checker.violations()[0].find("WHITE TRIM PASSES UNSTABLE ACTION"),
            std::string::npos);
}

TEST(ObsChecker, WhiteTrimMayPassARecoveryRetreat) {
  Forge f;
  // Node 1 marks two greens, then crash-recovers with only one (greens are
  // logged asynchronously). Node 0 trimming to 2 leans on knowledge node 1
  // emitted before the crash — invariant 6 bounds trims by the member's
  // high-water mark, so this is legal (the next exchange state-transfers
  // node 1 past the trimmed bodies).
  f.node(0).emit(EventKind::kEngineStart, 0, 0);
  f.node(0).emit(EventKind::kMemberAdd, 0);
  f.node(0).emit(EventKind::kMemberAdd, 1);
  f.green(0, {0, 1}, 1);
  f.green(0, {0, 2}, 2);
  f.green(1, {0, 1}, 1);
  f.green(1, {0, 2}, 2);
  f.node(1).emit(EventKind::kEngineStart, /*green=*/1, /*how=*/1);  // recovery retreat
  f.node(0).emit(EventKind::kWhiteTrim, /*line=*/2, /*trimmed=*/2);
  EXPECT_TRUE(f.checker.ok()) << f.checker.report();
  // Past the high-water mark is still a violation: nobody ever held 3.
  f.green(0, {0, 3}, 3);
  f.node(0).emit(EventKind::kWhiteTrim, /*line=*/3, /*trimmed=*/1);
  ASSERT_FALSE(f.checker.ok());
  EXPECT_NE(f.checker.violations()[0].find("WHITE TRIM PASSES UNSTABLE ACTION"),
            std::string::npos);
}

TEST(ObsChecker, CatchesTrimBeyondOwnGreens) {
  Forge f;
  f.green(0, {0, 1}, 1);
  f.node(0).emit(EventKind::kWhiteTrim, /*line=*/5, /*trimmed=*/1);
  ASSERT_FALSE(f.checker.ok());
  EXPECT_NE(f.checker.violations()[0].find("beyond its own green count"), std::string::npos);
}

TEST(ObsChecker, CatchesLyingAnnouncement) {
  Forge f;
  // Invariant 10: announcing a green line beyond the sender's true green
  // count would let peers trim history the announcer does not hold.
  f.green(0, {0, 1}, 1);
  f.node(0).emit(EventKind::kAnnounceSend, /*line=*/3, /*vec=*/1);
  ASSERT_FALSE(f.checker.ok());
  EXPECT_NE(f.checker.violations()[0].find("ANNOUNCED GREEN LINE BEYOND TRUE GREEN COUNT"),
            std::string::npos);
}

TEST(ObsChecker, CatchesNonMonotoneAnnouncement) {
  Forge f;
  f.green(0, {0, 1}, 1);
  f.green(0, {0, 2}, 2);
  f.node(0).emit(EventKind::kAnnounceSend, /*line=*/2, /*vec=*/1);
  f.node(0).emit(EventKind::kAnnounceSend, /*line=*/1, /*vec=*/1);
  ASSERT_FALSE(f.checker.ok());
  EXPECT_NE(f.checker.violations()[0].find("NON-MONOTONE GREEN-LINE ANNOUNCEMENT"),
            std::string::npos);
}

TEST(ObsChecker, AnnouncementMayRelowerAfterRecovery) {
  Forge f;
  // A recovered node legitimately re-announces below its pre-crash line:
  // kEngineStart resets the invariant-10 monotonicity baseline.
  f.green(0, {0, 1}, 1);
  f.green(0, {0, 2}, 2);
  f.node(0).emit(EventKind::kAnnounceSend, /*line=*/2, /*vec=*/1);
  f.node(0).emit(EventKind::kEngineStart, /*green=*/1, /*how=*/1);
  f.node(0).emit(EventKind::kAnnounceSend, /*line=*/1, /*vec=*/1);
  EXPECT_TRUE(f.checker.ok()) << f.checker.report();
}

TEST(ObsChecker, CatchesSafeDeliveryDivergence) {
  Forge f;
  f.node(0).emit(EventKind::kSafeDeliver, /*counter=*/1, /*coord=*/0, /*seq=*/7, 0xAA);
  f.node(1).emit(EventKind::kSafeDeliver, 1, 0, 7, 0xBB);
  ASSERT_FALSE(f.checker.ok());
  EXPECT_NE(f.checker.violations()[0].find("SAFE DELIVERY DIVERGENCE"), std::string::npos);
}

TEST(ObsChecker, CatchesAdoptionBeyondKnownHistory) {
  Forge f;
  f.green(0, {0, 1}, 1);
  f.node(1).emit(EventKind::kStateTransferApply, /*green=*/5);
  ASSERT_FALSE(f.checker.ok());
  EXPECT_NE(f.checker.violations()[0].find("adopted a green prefix"), std::string::npos);
}

TEST(ObsChecker, AdoptionWithinHistoryResetsNodeCount) {
  Forge f;
  f.green(0, {0, 1}, 1);
  f.green(0, {0, 2}, 2);
  f.node(1).emit(EventKind::kStateTransferApply, /*green=*/2);
  // Node 1 now continues from position 3 without re-marking 1 and 2.
  f.green(1, {0, 3}, 3);
  EXPECT_TRUE(f.checker.ok()) << f.checker.report();
  EXPECT_EQ(f.checker.canonical_green_count(), 3);
}

TEST(ObsChecker, CollectsMultipleViolationsWhenNotFailFast) {
  Forge f;
  f.green(0, {0, 1}, 1);
  f.green(1, {1, 1}, 1);
  f.node(0).emit(EventKind::kSafeDeliver, 1, 0, 7, 0xAA);
  f.node(1).emit(EventKind::kSafeDeliver, 1, 0, 7, 0xBB);
  EXPECT_EQ(f.checker.violations().size(), 2u);
  EXPECT_NE(f.checker.report().find("GREEN ORDER DIVERGENCE"), std::string::npos);
  EXPECT_NE(f.checker.report().find("SAFE DELIVERY DIVERGENCE"), std::string::npos);
}

// --- live-cluster positive run ----------------------------------------------

TEST(ObsChecker, LiveClusterPassesAllInvariants) {
  workload::ClusterOptions o;
  o.replicas = 3;
  o.obs.trace = true;
  o.obs.check = true;
  o.obs.metrics_window = millis(200);
  workload::EngineCluster c(o);
  c.run_for(seconds(1));
  bool replied = false;
  c.engine(0).submit({}, Command::put("k", "v"), 1, Semantics::kStrict,
                     [&](const Reply& r) {
                       replied = true;
                       EXPECT_FALSE(r.aborted);
                     });
  c.run_for(millis(300));
  EXPECT_TRUE(replied);

  ASSERT_NE(c.checker(), nullptr);
  EXPECT_TRUE(c.checker()->ok()) << c.checker()->report();
  EXPECT_GT(c.checker()->events_checked(), 0u);
  EXPECT_GE(c.checker()->canonical_green_count(), 1);

  // Export formats: JSONL has one object per retained event; the Chrome
  // trace is a JSON array with instant events and view-change slices.
  ASSERT_NE(c.trace_bus(), nullptr);
  const std::string jsonl = c.trace_bus()->to_jsonl();
  EXPECT_NE(jsonl.find("\"kind\":\"action_green\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"primary_install\""), std::string::npos);
  const std::string chrome = c.trace_bus()->to_chrome_trace();
  EXPECT_EQ(chrome.front(), '[');
  EXPECT_EQ(chrome[chrome.find_last_not_of('\n')], ']');
  EXPECT_NE(chrome.find("\"ph\""), std::string::npos);

  // Metrics windows rolled during the run and saw the green action.
  ASSERT_NE(c.metrics(), nullptr);
  c.sample_metrics();
  c.metrics()->roll(c.sim().now());
  EXPECT_GE(c.metrics()->windows().size(), 2u);
  EXPECT_GE(c.metrics()->counter("cluster.actions_green").value(), 1u);
  EXPECT_NE(c.metrics()->totals().find("cluster.actions_green"), std::string::npos);
}

TEST(ObsChecker, CapturesLogLinesAsTraceEvents) {
  Simulator sim{1};
  auto bus = std::make_shared<TraceBus>(sim);
  bus->capture_logs();
  const LogLevel prev = Log::level();
  Log::level() = LogLevel::kInfo;
  LOG_INFO("obs_test") << "hello trace";
  Log::level() = prev;
  bool found = false;
  for (const TraceEvent& e : bus->ring_snapshot()) {
    if (e.kind != EventKind::kLogLine) continue;
    const std::string* line = bus->log_line(e.a);
    ASSERT_NE(line, nullptr);
    EXPECT_NE(line->find("hello trace"), std::string::npos);
    found = true;
  }
  EXPECT_TRUE(found);
}

// --- invariant 8: range ownership (shard rebalancing, DESIGN.md §9) --------

TEST(ObsChecker, RangeMoveLifecycleIsOk) {
  Forge f;
  f.checker.set_node_group(0, 0);
  f.checker.set_node_group(1, 1);
  const std::int64_t range = 42;
  // Pre-fence writes at the source, fence, install at the destination,
  // post-install writes there — the legal move shape.
  f.node(0).emit(EventKind::kRangeWrite, range, 4);
  f.node(0).emit_action(EventKind::kRangeFence, {0, 1}, range, 5);
  f.node(1).emit(EventKind::kRangeInstall, range, 3, /*rows=*/7);
  f.node(1).emit(EventKind::kRangeWrite, range, 4);
  // A lagging source replica replays the same green order at the same
  // positions: position-based dedup keeps these no-ops.
  f.node(0).emit(EventKind::kRangeWrite, range, 4);
  f.node(0).emit_action(EventKind::kRangeFence, {0, 1}, range, 5);
  EXPECT_TRUE(f.checker.ok()) << f.checker.report();
}

TEST(ObsChecker, CatchesWriteToFencedRange) {
  Forge f;
  f.checker.set_node_group(0, 0);
  const std::int64_t range = 42;
  f.node(0).emit_action(EventKind::kRangeFence, {0, 1}, range, 5);
  f.node(0).emit(EventKind::kRangeWrite, range, 6);  // past the fence
  ASSERT_FALSE(f.checker.ok());
  EXPECT_NE(f.checker.violations()[0].find("WRITE TO FENCED RANGE"), std::string::npos);
}

TEST(ObsChecker, CatchesInstallWithoutFence) {
  Forge f;
  f.checker.set_node_group(1, 1);
  f.node(1).emit(EventKind::kRangeInstall, 42, 3, 7);  // nobody fenced range 42
  ASSERT_FALSE(f.checker.ok());
  EXPECT_NE(f.checker.violations()[0].find("RANGE INSTALL WITHOUT FENCE"), std::string::npos);
}

TEST(ObsChecker, CatchesRangeDoubleOwnership) {
  Forge f;
  f.checker.set_node_group(0, 0);
  f.checker.set_node_group(1, 1);
  f.checker.set_node_group(2, 2);
  const std::int64_t range = 42;
  f.node(0).emit_action(EventKind::kRangeFence, {0, 1}, range, 5);
  f.node(1).emit(EventKind::kRangeInstall, range, 3, 7);  // group 1 owns it now
  f.node(2).emit(EventKind::kRangeInstall, range, 9, 7);  // group 2 grabs it too
  ASSERT_FALSE(f.checker.ok());
  EXPECT_NE(f.checker.violations()[0].find("RANGE DOUBLE OWNERSHIP"), std::string::npos);
}

TEST(ObsChecker, MetricsWindowTableHasHeaderAndRows) {
  MetricsRegistry reg;
  reg.counter("x").inc(3);
  reg.roll(millis(100));
  reg.counter("x").inc(2);
  reg.roll(millis(200));
  const std::string table = reg.window_table({"x"});
  EXPECT_NE(table.find("window"), std::string::npos);
  EXPECT_NE(table.find("x"), std::string::npos);
  EXPECT_EQ(reg.windows().size(), 2u);
  EXPECT_EQ(reg.windows()[0].counter_deltas.at("x"), 3);
  EXPECT_EQ(reg.windows()[1].counter_deltas.at("x"), 2);
}

}  // namespace
}  // namespace tordb::obs
