// The scenario language: parsing, execution, expectations.
#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace tordb::workload {
namespace {

TEST(Scenario, ParsesAndRunsMinimalScript) {
  auto sc = Scenario::parse(R"(
replicas 3
run 1s
submit 0 put k v
run 300ms
expect-get 2 k v
expect-converged 0,1,2
expect-consistent
)");
  EXPECT_EQ(sc.statement_count(), 7u);
  auto result = sc.run();
  EXPECT_TRUE(result.ok) << (result.failures.empty() ? "" : result.failures[0]);
}

TEST(Scenario, CommentsAndBlankLinesIgnored) {
  auto sc = Scenario::parse(R"(
# leading comment
replicas 2   # trailing comment

run 500ms
)");
  EXPECT_EQ(sc.statement_count(), 2u);
  EXPECT_TRUE(sc.run().ok);
}

TEST(Scenario, FailedExpectationReported) {
  auto sc = Scenario::parse(R"(
replicas 3
run 1s
expect-get 0 missing there
)");
  auto result = sc.run();
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_NE(result.failures[0].find("line 4"), std::string::npos);
}

TEST(Scenario, PartitionAndStateExpectations) {
  auto sc = Scenario::parse(R"(
replicas 5
run 1s
partition 0,1,2 | 3,4
run 1s
expect-state 0 RegPrim
expect-state 4 NonPrim
submit 4 put k red-only
run 300ms
expect-red 4 1
heal
run 2s
expect-get 0 k red-only
expect-consistent
)");
  auto result = sc.run();
  EXPECT_TRUE(result.ok) << (result.failures.empty() ? "" : result.failures[0]);
}

TEST(Scenario, PartitionFillsMissingNodesAsSingletons) {
  auto sc = Scenario::parse(R"(
replicas 4
run 1s
partition 0,1   # nodes 2 and 3 become singletons automatically
run 1s
expect-state 2 NonPrim
expect-state 3 NonPrim
)");
  EXPECT_TRUE(sc.run().ok);
}

TEST(Scenario, JoinLeaveCrashRecover) {
  auto sc = Scenario::parse(R"(
replicas 3
run 1s
submit 0 put k v
run 300ms
join 3 via 0,1
run 3s
expect-get 3 k v
crash 2
run 1s
recover 2
run 2s
leave 1
run 2s
expect-converged 0,2,3
expect-consistent
)");
  auto result = sc.run();
  EXPECT_TRUE(result.ok) << (result.failures.empty() ? "" : result.failures[0]);
}

TEST(Scenario, SemanticsStatements) {
  auto sc = Scenario::parse(R"(
replicas 5
run 1s
partition 0,1,2 | 3,4
run 500ms
submit-commutative 4 add stock -3
submit-commutative 0 add stock 10
submit-timestamp 3 gps late 100
submit-timestamp 1 gps early 50
run 500ms
heal
run 2s
expect-get 0 stock 7
expect-get 4 gps late
expect-consistent
)");
  auto result = sc.run();
  EXPECT_TRUE(result.ok) << (result.failures.empty() ? "" : result.failures[0]);
}

TEST(Scenario, QueryNarration) {
  auto sc = Scenario::parse(R"(
replicas 3
run 1s
submit 0 put k v
run 300ms
query 1 weak k
)");
  auto result = sc.run();
  ASSERT_EQ(result.narration.size(), 1u);
  EXPECT_NE(result.narration[0].find("k = \"v\""), std::string::npos);
}

TEST(Scenario, ParseErrors) {
  EXPECT_THROW(Scenario::parse("run 1s"), std::runtime_error);  // no replicas first
  EXPECT_THROW(Scenario::parse("replicas 3\nrun 5m"), std::runtime_error);  // bad unit
  EXPECT_THROW(Scenario::parse("replicas 3\nfrobnicate"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("replicas 3\nexpect-state 0 Bogus"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("replicas 3\npartition |"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("replicas 3\nsubmit 0 frob k v"), std::runtime_error);
}

TEST(Scenario, StatusNarratesEveryNode) {
  auto sc = Scenario::parse(R"(
replicas 3
run 1s
status
)");
  auto result = sc.run();
  // One header line (seed + checker verdict) plus one line per node.
  ASSERT_EQ(result.narration.size(), 4u);
  EXPECT_NE(result.narration[0].find("seed="), std::string::npos);
  EXPECT_NE(result.narration[0].find("checker:"), std::string::npos);
  EXPECT_NE(result.narration[1].find("RegPrim"), std::string::npos);
}

}  // namespace
}  // namespace tordb::workload
