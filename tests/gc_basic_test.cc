#include <gtest/gtest.h>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "gc_harness.h"

namespace tordb::gc {
namespace {

using testing::GcCluster;
using testing::parse_payload;

TEST(GcBasic, SingleNodeStartsOperational) {
  GcCluster c(1);
  c.run_for(millis(10));
  EXPECT_TRUE(c.gc(0).operational());
  EXPECT_EQ(c.gc(0).config().members, (std::vector<NodeId>{0}));
  ASSERT_GE(c.record(0).regulars.size(), 1u);
}

TEST(GcBasic, SingleNodeSelfDeliversSafe) {
  GcCluster c(1);
  c.run_for(millis(10));
  c.multicast(0, 1);
  c.run_for(millis(10));
  ASSERT_EQ(c.record(0).deliveries.size(), 1u);
  EXPECT_EQ(c.record(0).deliveries[0].kind, DeliveryKind::kSafeInRegular);
  EXPECT_EQ(c.record(0).deliveries[0].sender, 0);
}

TEST(GcBasic, StartupMergesToFullMembership) {
  GcCluster c(5);
  c.run_for(millis(500));
  EXPECT_TRUE(c.converged({0, 1, 2, 3, 4}));
  // Everyone installed the same final regular configuration.
  const Configuration& cfg = c.gc(0).config();
  EXPECT_EQ(cfg.members.size(), 5u);
  EXPECT_FALSE(cfg.transitional);
}

TEST(GcBasic, FourteenNodesMerge) {
  GcCluster c(14);
  c.run_for(seconds(2));
  std::vector<NodeId> all;
  for (NodeId i = 0; i < 14; ++i) all.push_back(i);
  EXPECT_TRUE(c.converged(all));
}

TEST(GcBasic, SafeMessageDeliveredToAllMembers) {
  GcCluster c(4);
  c.run_for(millis(500));
  ASSERT_TRUE(c.converged({0, 1, 2, 3}));
  c.multicast(2, 1);
  c.run_for(millis(100));
  for (NodeId n = 0; n < 4; ++n) {
    const auto& ds = c.record(n).deliveries;
    ASSERT_EQ(ds.size(), 1u) << "node " << n;
    EXPECT_EQ(ds[0].sender, 2);
    EXPECT_EQ(ds[0].kind, DeliveryKind::kSafeInRegular);
    auto [s, k] = parse_payload(ds[0].payload);
    EXPECT_EQ(s, 2);
    EXPECT_EQ(k, 1);
  }
}

TEST(GcBasic, AgreedMessageDelivered) {
  GcCluster c(3);
  c.run_for(millis(500));
  ASSERT_TRUE(c.converged({0, 1, 2}));
  c.multicast(1, 7, Service::kAgreed);
  c.run_for(millis(100));
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(c.record(n).deliveries.size(), 1u);
    EXPECT_EQ(c.record(n).deliveries[0].kind, DeliveryKind::kAgreed);
  }
}

TEST(GcBasic, AgreedDeliversBeforeSafeStability) {
  // An agreed message needs no ack round: it must be deliverable strictly
  // earlier than a safe message sent at the same instant.
  GcCluster c(4);
  c.run_for(millis(500));
  ASSERT_TRUE(c.converged({0, 1, 2, 3}));
  c.multicast(0, 1, Service::kAgreed);
  c.run_for(millis(2));  // enough for ordering, not for the full ack round
  EXPECT_EQ(c.record(3).deliveries.size(), 1u);
}

TEST(GcBasic, TotalOrderUnderConcurrentLoad) {
  GcCluster c(5);
  c.run_for(millis(500));
  ASSERT_TRUE(c.converged({0, 1, 2, 3, 4}));
  for (std::int64_t k = 1; k <= 40; ++k) {
    for (NodeId n = 0; n < 5; ++n) c.multicast(n, k);
    c.run_for(millis(3));
  }
  c.run_for(millis(300));
  // 200 messages everywhere, identical order.
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_EQ(c.record(n).deliveries.size(), 200u) << "node " << n;
  }
  c.check_all_invariants();
  const auto& ref = c.record(0).deliveries;
  for (NodeId n = 1; n < 5; ++n) {
    const auto& ds = c.record(n).deliveries;
    ASSERT_EQ(ds.size(), ref.size());
    for (std::size_t i = 0; i < ds.size(); ++i) {
      EXPECT_EQ(ds[i].payload, ref[i].payload) << "divergence at " << i;
    }
  }
}

TEST(GcBasic, FifoPerSender) {
  GcCluster c(4);
  c.run_for(millis(500));
  for (std::int64_t k = 1; k <= 30; ++k) c.multicast(2, k);
  c.run_for(millis(300));
  c.check_fifo();
  // And with no membership change there are no duplicates either.
  const auto& ds = c.record(0).deliveries;
  ASSERT_EQ(ds.size(), 30u);
  for (std::int64_t k = 1; k <= 30; ++k) {
    EXPECT_EQ(parse_payload(ds[static_cast<std::size_t>(k - 1)].payload).second, k);
  }
}

TEST(GcBasic, SelfDeliveryIncluded) {
  GcCluster c(3);
  c.run_for(millis(500));
  c.multicast(0, 1);
  c.run_for(millis(100));
  ASSERT_EQ(c.record(0).deliveries.size(), 1u);
  EXPECT_EQ(c.record(0).deliveries[0].sender, 0);
}

TEST(GcBasic, SequencerIsLowestIdAndOrders) {
  GcCluster c(3);
  c.run_for(millis(500));
  c.multicast(2, 1);
  c.run_for(millis(100));
  EXPECT_GT(c.gc(0).stats().messages_ordered, 0u);  // node 0 sequences
  EXPECT_EQ(c.gc(2).stats().messages_ordered, 0u);
}

TEST(GcBasic, MulticastBeforeMergeIsEventuallyDelivered) {
  GcCluster c(3);
  // Send immediately, while nodes are still in singleton configs.
  c.multicast(0, 1);
  c.run_for(millis(500));
  // Node 0 delivered it (possibly in the singleton config); after the merge
  // every member must have seen it via the resend in the merged config or
  // the engine-level exchange; at GC level we only require node 0 delivery
  // and no order violations.
  bool node0_got_it = false;
  for (const auto& d : c.record(0).deliveries) {
    if (parse_payload(d.payload) == std::make_pair(NodeId{0}, std::int64_t{1})) {
      node0_got_it = true;
    }
  }
  EXPECT_TRUE(node0_got_it);
  c.check_all_invariants();
}

TEST(GcBasic, HeavyLoadNoLossNoDup) {
  GcCluster c(4);
  c.run_for(millis(500));
  ASSERT_TRUE(c.converged({0, 1, 2, 3}));
  const int kPerNode = 250;
  for (int k = 1; k <= kPerNode; ++k) {
    for (NodeId n = 0; n < 4; ++n) c.multicast(n, k);
    c.run_for(micros(800));
  }
  c.run_for(seconds(1));
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(c.record(n).deliveries.size(), static_cast<std::size_t>(4 * kPerNode));
  }
  c.check_all_invariants();
}

TEST(GcBasic, ConfigCountersIncrease) {
  GcCluster c(3);
  c.run_for(millis(500));
  const auto& regs = c.record(0).regulars;
  ASSERT_GE(regs.size(), 2u);
  for (std::size_t i = 1; i < regs.size(); ++i) {
    EXPECT_GT(regs[i].id.counter, regs[i - 1].id.counter);
  }
}

TEST(GcBasic, StatsDeliveriesMatchRecords) {
  GcCluster c(3);
  c.run_for(millis(500));
  c.multicast(0, 1);
  c.multicast(1, 1);
  c.run_for(millis(200));
  EXPECT_EQ(c.gc(2).stats().deliveries, c.record(2).deliveries.size());
}

}  // namespace
}  // namespace tordb::gc
