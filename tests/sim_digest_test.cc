// Fixed-seed trace-digest regression suite: the before/after guard for
// simulator hot-path work.
//
// Each scenario folds everything the simulation produced — per-node green
// orders, database digests, network message counts, the final virtual
// clock — into one 64-bit digest, and asserts it against a golden value
// recorded before the simulator/network hot-path refactor (dense node
// tables, shared-payload multicast, reachability caching, the slot-pool
// event heap). All arithmetic is integral and seeded, so the digests are
// identical on every platform; any change to event ordering, RNG draw
// order, latency math, or delivery semantics shifts them.
//
// The sharded scenario also runs twice in-process (run-to-run determinism)
// and once with the online safety checker subscribed (observability must
// not perturb virtual time — under TORDB_OBS_CHECK=1 every variant has the
// checker on, which must *still* reproduce the golden digest).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "util/rng.h"
#include "workload/cluster.h"
#include "workload/sharded_cluster.h"

namespace tordb {
namespace {

using workload::ClusterOptions;
using workload::EngineCluster;
using workload::ShardedCluster;
using workload::ShardedClusterOptions;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t s = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  return splitmix64(s);
}

std::uint64_t fold_engine(std::uint64_t h, const core::ReplicationEngine& e) {
  h = mix(h, static_cast<std::uint64_t>(e.green_count()));
  h = mix(h, e.db_digest());
  for (std::int64_t pos = 1; pos <= e.green_count(); ++pos) {
    const ActionId a = e.green_action_at(pos);
    h = mix(h, static_cast<std::uint64_t>(a.server_id));
    h = mix(h, static_cast<std::uint64_t>(a.index));
  }
  return h;
}

std::uint64_t fold_net(std::uint64_t h, const NetworkStats& s, SimTime now) {
  h = mix(h, s.messages_sent);
  h = mix(h, s.messages_delivered);
  h = mix(h, s.messages_dropped);
  h = mix(h, s.bytes_sent);
  h = mix(h, static_cast<std::uint64_t>(now));
  return h;
}

// ---------------------------------------------------------------------------
// Scenario 1: churn-heavy sharded run — 3 engine groups on one network, a
// router in front, cross-shard actions, partitions, crashes, recoveries.
// ---------------------------------------------------------------------------

std::uint64_t sharded_churn_digest(bool with_checker) {
  ShardedClusterOptions o;
  o.shards = 3;
  o.replicas_per_shard = 3;
  o.seed = 0x5eed2026;
  o.obs.check = with_checker;
  // Pin the classic event loop regardless of TORDB_SIM_THREADS: these
  // goldens record the classic schedule, and the sanitizer lanes export
  // lane mode for the whole suite.
  o.sim_env = false;
  ShardedCluster c(o);
  c.run_for(seconds(2));  // primaries form

  // Pre-bucket keys per owning shard so cross-shard commands can target two
  // distinct shards deterministically under hash sharding.
  std::vector<std::vector<std::string>> pool(3);
  for (int i = 0;; ++i) {
    std::string key = "dk" + std::to_string(i);
    auto& bucket = pool[static_cast<std::size_t>(c.directory().shard_of(key))];
    if (bucket.size() < 8) bucket.push_back(std::move(key));
    if (pool[0].size() >= 8 && pool[1].size() >= 8 && pool[2].size() >= 8) break;
  }

  // 9 closed-loop clients, 3 per home shard; every 6th action of a client is
  // cross-shard (two puts in one command).
  struct Client {
    int id;
    int home;
    std::int64_t n = 0;
  };
  auto clients = std::make_shared<std::vector<Client>>();
  for (int i = 0; i < 9; ++i) clients->push_back({i, i % 3});
  auto rng = std::make_shared<Rng>(o.seed ^ 0xd1ce5);
  std::function<void(std::size_t)> issue = [&, clients, rng](std::size_t idx) {
    Client& cl = (*clients)[idx];
    ++cl.n;
    db::Command cmd;
    const auto& ph = pool[static_cast<std::size_t>(cl.home)];
    cmd.ops.push_back(db::Op{db::OpType::kPut, ph[rng->next_below(ph.size())],
                             "v" + std::to_string(cl.n), 0});
    if (cl.n % 6 == 0) {
      const int other = (cl.home + 1) % 3;
      const auto& po = pool[static_cast<std::size_t>(other)];
      cmd.ops.push_back(db::Op{db::OpType::kPut, po[rng->next_below(po.size())],
                               "x" + std::to_string(cl.n), 0});
    }
    c.router().submit(cl.id, std::move(cmd), [&issue, idx, &c](const shard::RouteReply&) {
      if (c.sim().now() < seconds(9)) issue(idx);
    });
  };
  for (std::size_t i = 0; i < clients->size(); ++i) issue(i);

  // Deterministic churn schedule across all three shards.
  c.run_for(millis(700));
  c.partition_shard(0, {{0, 1}, {2}});
  c.run_for(millis(600));
  c.crash(1, 0);
  c.run_for(millis(500));
  c.heal_shard(0);
  c.partition_shard(2, {{0}, {1, 2}});
  c.run_for(millis(600));
  c.recover(1, 0);
  c.run_for(millis(400));
  c.crash(2, 1);
  c.heal_shard(2);
  c.run_for(millis(700));
  c.recover(2, 1);
  c.heal();
  c.run_for(seconds(6));  // drain and settle

  EXPECT_EQ(c.check_all(), std::nullopt);

  std::uint64_t h = 0x70bdb;
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 3; ++i) {
      const auto& n = c.node(s, i);
      h = mix(h, n.running() ? 1 : 0);
      if (n.running()) h = fold_engine(h, n.engine());
    }
  }
  return fold_net(h, c.net().stats(), c.sim().now());
}

// ---------------------------------------------------------------------------
// Scenario 2: single-group EVS churn — the paper's deployment shape, no
// router; partitions and crash/recovery against 7 replicas.
// ---------------------------------------------------------------------------

std::uint64_t single_group_churn_digest() {
  ClusterOptions o;
  o.replicas = 7;
  o.seed = 0xe5e5e5;
  EngineCluster c(o);
  c.run_for(seconds(2));

  Rng rng(o.seed);
  for (int step = 0; step < 40; ++step) {
    const NodeId n = static_cast<NodeId>(rng.next_below(7));
    if (c.node(n).running()) {
      c.engine(n).submit({}, db::Command::add("k" + std::to_string(step % 5), 1), n,
                         core::Semantics::kStrict, nullptr);
    }
    if (step == 10) c.partition({{0, 1, 2, 3}, {4, 5, 6}});
    if (step == 18) c.heal();
    if (step == 24) c.crash(2);
    if (step == 30) c.partition({{0, 1, 3}, {2, 4, 5, 6}});
    if (step == 34) c.heal();
    if (step == 36) c.recover(2);
    c.run_for(millis(static_cast<std::int64_t>(rng.next_range(20, 150))));
  }
  c.run_for(seconds(6));

  EXPECT_EQ(c.check_all(), std::nullopt);

  std::uint64_t h = 0x190;
  for (NodeId i = 0; i < 7; ++i) {
    h = mix(h, c.node(i).running() ? 1 : 0);
    if (c.node(i).running()) h = fold_engine(h, c.engine(i));
  }
  return fold_net(h, c.net().stats(), c.sim().now());
}

// Golden digests pin the exact virtual-time trajectory; any change to
// message contents or timing shifts them. Regenerated deliberately for the
// green-line announcement protocol (DESIGN.md §14): announcement tokens add
// scheduled sends, and the adopt-time drain of parked retransmissions
// changed exchange outcomes — both alter virtual time by design.
constexpr std::uint64_t kShardedChurnGolden = 11526380015569540437ULL;
constexpr std::uint64_t kSingleGroupChurnGolden = 4180164059539588840ULL;

TEST(SimDigest, ShardedChurnMatchesGolden) {
  EXPECT_EQ(sharded_churn_digest(false), kShardedChurnGolden);
}

TEST(SimDigest, ShardedChurnRunToRunIdentical) {
  EXPECT_EQ(sharded_churn_digest(false), sharded_churn_digest(false));
}

TEST(SimDigest, CheckerDoesNotPerturbVirtualTime) {
  EXPECT_EQ(sharded_churn_digest(true), kShardedChurnGolden);
}

TEST(SimDigest, SingleGroupChurnMatchesGolden) {
  EXPECT_EQ(single_group_churn_digest(), kSingleGroupChurnGolden);
}

// ---------------------------------------------------------------------------
// Lane-mode equivalence: the parallel simulator (DESIGN.md §15) must produce
// bit-identical results for ANY worker thread count. Each scenario runs a
// randomized churn + rebalance + cross-shard-txn schedule (same style as the
// cross-shard property test's generator) in lane mode and folds (a) the full
// cluster state digest, (b) every per-shard lane schedule digest, and (c) the
// final virtual clock; the triple must match across 1, 2 and 8 threads.
// ---------------------------------------------------------------------------

struct LaneRun {
  std::uint64_t state = 0;                 ///< folded engines + network + clock
  std::vector<std::uint64_t> lanes;        ///< per-shard lane schedule digests
  std::uint64_t windows = 0;               ///< conservative windows run
  std::uint64_t handoffs = 0;              ///< cross-lane handoffs committed
};

LaneRun lane_churn_run(int threads, std::uint64_t seed) {
  ShardedClusterOptions o;
  o.shards = 3;
  o.replicas_per_shard = 3;
  o.seed = seed;
  o.range_splits = {"g", "n"};  // rebalancing needs ranged directories
  o.sim_lanes = true;           // lane mode even at 1 thread (the baseline)
  o.sim_threads = threads;
  o.sim_env = false;  // this suite pins its own lane configuration
  // Sessions out-wait every partition the schedule produces, so no request
  // hits attempt exhaustion (which would still be deterministic, just
  // noisier to reason about on failure).
  o.session.max_attempts_per_request = 100000;
  ShardedCluster c(o);
  c.run_for(seconds(2));  // primaries form

  // Keys per owning shard under the fixed splits ["g", "n").
  const std::vector<std::vector<std::string>> pool = {{"aa", "bb", "cc", "dd"},
                                                      {"gg", "hh", "jj", "kk"},
                                                      {"nn", "pp", "rr", "ss"}};

  // 6 closed-loop clients, 2 per home shard. Every 5th action is a checked
  // cross-shard command (a trivially-true precondition plus one put per
  // shard), which the router hands to the prepared-check coordinator.
  struct Client {
    int id;
    int home;
    std::int64_t n = 0;
  };
  auto clients = std::make_shared<std::vector<Client>>();
  for (int i = 0; i < 6; ++i) clients->push_back({i, i % 3});
  auto rng = std::make_shared<Rng>(seed ^ 0x1a7e5);
  std::function<void(std::size_t)> issue = [&, clients, rng](std::size_t idx) {
    Client& cl = (*clients)[idx];
    ++cl.n;
    db::Command cmd;
    const auto& ph = pool[static_cast<std::size_t>(cl.home)];
    if (cl.n % 5 == 0) {
      const int other = (cl.home + 1) % 3;
      const auto& po = pool[static_cast<std::size_t>(other)];
      cmd.ops.push_back(db::Op{db::OpType::kCheck, ph[0], cl.n > 5 ? "c" : "", 0});
      cmd.ops.push_back(db::Op{db::OpType::kPut, ph[0], "c", 0});
      cmd.ops.push_back(
          db::Op{db::OpType::kPut, po[rng->next_below(po.size())], "x" + std::to_string(cl.n), 0});
    } else {
      cmd.ops.push_back(db::Op{db::OpType::kPut, ph[rng->next_below(ph.size())],
                               "v" + std::to_string(cl.n), 0});
    }
    c.router().submit(cl.id, std::move(cmd), [&issue, idx, &c](const shard::RouteReply&) {
      if (c.sim().now() < seconds(9)) issue(idx);
    });
  };
  for (std::size_t i = 0; i < clients->size(); ++i) issue(i);

  // Randomized churn + rebalance schedule: partitions, crashes, recoveries
  // and a range move, in seed-dependent order and spacing. Topology changes
  // go through the cluster wrappers so they land on the owning shard's lane.
  Rng churn(seed * 62233);
  int crashed_shard = -1, crashed_idx = -1;
  int parted = -1;
  bool moved = false;
  for (int step = 0; step < 24; ++step) {
    switch (churn.next_below(6)) {
      case 0:
        if (parted < 0) {
          parted = static_cast<int>(churn.next_below(3));
          c.partition_shard(parted, {{0, 1}, {2}});
        }
        break;
      case 1:
        if (parted >= 0) {
          c.heal_shard(parted);
          parted = -1;
        }
        break;
      case 2:
        if (crashed_shard < 0) {
          crashed_shard = static_cast<int>(churn.next_below(3));
          crashed_idx = static_cast<int>(churn.next_below(3));
          c.crash(crashed_shard, crashed_idx);
        }
        break;
      case 3:
        if (crashed_shard >= 0) {
          c.recover(crashed_shard, crashed_idx);
          crashed_shard = -1;
        }
        break;
      case 4:
        if (!moved) {
          moved = c.move_range("g", "j", 2);  // shard 1's low half -> shard 2
        }
        break;
      default:
        break;  // quiet step: just advance time
    }
    c.run_for(millis(static_cast<std::int64_t>(churn.next_range(150, 450))));
  }
  if (crashed_shard >= 0) c.recover(crashed_shard, crashed_idx);
  c.heal();
  c.run_for(seconds(8));  // drain and settle

  EXPECT_EQ(c.check_all(), std::nullopt);

  LaneRun out;
  std::uint64_t h = 0x1a9e5;
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 3; ++i) {
      const auto& n = c.node(s, i);
      h = mix(h, n.running() ? 1 : 0);
      if (n.running()) h = fold_engine(h, n.engine());
    }
  }
  out.state = fold_net(h, c.net().stats(), c.sim().now());
  for (int s = 0; s < 3; ++s) out.lanes.push_back(c.shard_digest(s));
  out.windows = c.sim().windows_run();
  out.handoffs = c.sim().handoffs_posted();
  return out;
}

TEST(SimLanes, SerialVsParallelBitIdentical) {
  for (const std::uint64_t seed : {0xb0b1ULL, 0x5eedULL, 0xcafe2026ULL}) {
    const LaneRun serial = lane_churn_run(1, seed);
    ASSERT_GT(serial.windows, 0u) << "lane mode did not engage";
    ASSERT_GT(serial.handoffs, 0u) << "no cross-lane traffic: scenario too weak";
    for (const int threads : {2, 8}) {
      const LaneRun parallel = lane_churn_run(threads, seed);
      EXPECT_EQ(parallel.state, serial.state) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel.lanes, serial.lanes) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel.windows, serial.windows) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel.handoffs, serial.handoffs)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// Golden pin for the lane-mode schedule itself: guards cross-build
// determinism of the window/handoff machinery the equivalence test can't
// see (it compares runs within one build). Regenerate deliberately, like
// the classic goldens above, when the lane model changes.
constexpr std::uint64_t kLaneChurnGolden = 4991929521294260419ULL;

TEST(SimLanes, LaneChurnMatchesGolden) {
  EXPECT_EQ(lane_churn_run(1, 0xb0b1ULL).state, kLaneChurnGolden);
}

}  // namespace
}  // namespace tordb
