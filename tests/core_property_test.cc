// Randomized end-to-end property tests for the replication engine: seeded
// schedules of client traffic, partitions, merges, crashes and recoveries,
// then the paper's §5.2 safety properties (Global Total Order, Global FIFO
// Order) checked throughout, and Liveness (convergence to one primary with
// equal databases) checked at quiescence.
#include <gtest/gtest.h>

#include <set>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "db/database.h"
#include "util/rng.h"
#include "workload/cluster.h"

namespace tordb::core {
namespace {

using db::Command;
using workload::ClusterOptions;
using workload::EngineCluster;

struct Scenario {
  std::uint64_t seed;
  int nodes;
  bool crashes;
  int steps;
};

class EngineRandomSchedule : public ::testing::TestWithParam<Scenario> {};

std::vector<std::vector<NodeId>> random_partition(Rng& rng, int n) {
  const int k = static_cast<int>(rng.next_range(1, 3));
  std::vector<std::vector<NodeId>> comps(static_cast<std::size_t>(k));
  for (NodeId id = 0; id < n; ++id) {
    comps[rng.next_below(static_cast<std::uint64_t>(k))].push_back(id);
  }
  std::vector<std::vector<NodeId>> nonempty;
  for (auto& comp : comps) {
    if (!comp.empty()) nonempty.push_back(std::move(comp));
  }
  return nonempty;
}

TEST_P(EngineRandomSchedule, SafetyAlwaysLivenessAtQuiescence) {
  const Scenario sc = GetParam();
  Rng rng(sc.seed * 7919);
  ClusterOptions o;
  o.replicas = sc.nodes;
  o.seed = sc.seed;
  EngineCluster c(o);
  c.run_for(seconds(1));

  std::set<NodeId> down;
  std::int64_t submitted_adds = 0;
  std::int64_t replied_adds = 0;

  for (int step = 0; step < sc.steps; ++step) {
    const int what = static_cast<int>(rng.next_below(10));
    if (what < 5) {
      const int burst = static_cast<int>(rng.next_range(1, 5));
      for (int b = 0; b < burst; ++b) {
        const NodeId n = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(sc.nodes)));
        if (down.count(n)) continue;
        ++submitted_adds;
        c.engine(n).submit({}, Command::add("total", 1), n, Semantics::kStrict,
                           [&](const Reply& r) {
                             if (!r.aborted) ++replied_adds;
                           });
      }
    } else if (what < 7) {
      c.net().set_components(random_partition(rng, sc.nodes));
    } else if (what == 7) {
      c.heal();
    } else if (sc.crashes && what == 8 &&
               down.size() + 1 < static_cast<std::size_t>(sc.nodes)) {
      const NodeId n = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(sc.nodes)));
      if (!down.count(n)) {
        c.crash(n);
        down.insert(n);
      }
    } else if (sc.crashes && !down.empty()) {
      const NodeId n = *down.begin();
      c.recover(n);
      down.erase(n);
    }
    c.run_for(millis(static_cast<std::int64_t>(rng.next_range(5, 200))));
    // Safety must hold at every instant, not only at the end.
    ASSERT_EQ(c.check_green_prefix_consistency(), std::nullopt) << "seed " << sc.seed;
    ASSERT_EQ(c.check_single_primary(), std::nullopt) << "seed " << sc.seed;
  }

  // Quiesce: recover everyone, heal, let the system settle (Theorem 3).
  for (NodeId n : down) c.recover(n);
  c.heal();
  c.run_for(seconds(10));

  EXPECT_TRUE(c.converged_primary(c.all_ids())) << "seed " << sc.seed;
  EXPECT_EQ(c.check_all(), std::nullopt) << "seed " << sc.seed;

  // Every strict add that was acknowledged is reflected in the database;
  // unacknowledged ones may or may not be (crash before force), but the
  // value must be identical everywhere and at least the acknowledged count.
  const std::int64_t total = std::stoll("0" + c.engine(0).database().get("total"));
  EXPECT_GE(total, replied_adds) << "seed " << sc.seed;
  EXPECT_LE(total, submitted_adds) << "seed " << sc.seed;
  for (NodeId i = 1; i < sc.nodes; ++i) {
    EXPECT_EQ(c.engine(i).db_digest(), c.engine(0).db_digest());
  }
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> v;
  for (std::uint64_t s = 1; s <= 16; ++s) v.push_back({s, 4, false, 50});
  for (std::uint64_t s = 21; s <= 40; ++s) v.push_back({s, 5, true, 50});
  for (std::uint64_t s = 51; s <= 62; ++s) v.push_back({s, 7, true, 40});
  for (std::uint64_t s = 71; s <= 76; ++s) v.push_back({s, 10, true, 35});
  return v;
}

INSTANTIATE_TEST_SUITE_P(Schedules, EngineRandomSchedule, ::testing::ValuesIn(scenarios()),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           return "seed" + std::to_string(info.param.seed) + "_n" +
                                  std::to_string(info.param.nodes) +
                                  (info.param.crashes ? "_crash" : "");
                         });

}  // namespace
}  // namespace tordb::core
