#include <gtest/gtest.h>

#include "storage/stable_storage.h"

namespace tordb {
namespace {

Bytes rec(std::uint8_t v) { return Bytes{v}; }

// Most timing-exact tests disable the group-commit window.
StorageParams no_window() {
  StorageParams p;
  p.commit_window = 0;
  return p;
}

TEST(Storage, AppendIsVolatileUntilSync) {
  Simulator sim;
  StableStorage st(sim, no_window());
  st.append(rec(1));
  EXPECT_EQ(st.durable_size(), 0u);
  EXPECT_EQ(st.log_size(), 1u);
}

TEST(Storage, ForcedSyncTakesForceLatency) {
  Simulator sim;
  StableStorage st(sim, no_window());
  st.append(rec(1));
  SimTime done_at = -1;
  st.sync([&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, st.params().force_latency);
  EXPECT_TRUE(st.fully_durable());
}

TEST(Storage, GroupCommitCoalescesConcurrentSyncs) {
  Simulator sim;
  StableStorage st(sim, no_window());
  int completed = 0;
  // First sync starts a force; the next ten appends+syncs arrive while it is
  // in flight and must all complete with the *second* force.
  st.append(rec(0));
  st.sync([&] { ++completed; });
  sim.after(millis(1), [&] {
    for (std::uint8_t i = 1; i <= 10; ++i) {
      st.append(rec(i));
      st.sync([&] { ++completed; });
    }
  });
  sim.run();
  EXPECT_EQ(completed, 11);
  EXPECT_EQ(st.stats().forces, 2u);  // not 11
}

TEST(Storage, SyncCallbackWaitsForItsRecords) {
  Simulator sim;
  StableStorage st(sim, no_window());
  st.append(rec(1));
  std::vector<int> order;
  st.sync([&] { order.push_back(1); });
  sim.after(millis(1), [&] {
    st.append(rec(2));
    st.sync([&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Storage, DelayedModeReturnsImmediately) {
  Simulator sim;
  StorageParams p;
  p.mode = SyncMode::kDelayed;
  StableStorage st(sim, p);
  st.append(rec(1));
  SimTime done_at = -1;
  st.sync([&] { done_at = sim.now(); });
  sim.run(1);  // only the immediate callback
  EXPECT_EQ(done_at, 0);
}

TEST(Storage, DelayedModeEventuallyDurable) {
  Simulator sim;
  StorageParams p;
  p.mode = SyncMode::kDelayed;
  StableStorage st(sim, p);
  st.append(rec(1));
  st.sync([] {});
  sim.run();
  EXPECT_TRUE(st.fully_durable());
}

TEST(Storage, CrashLosesVolatileTail) {
  Simulator sim;
  StableStorage st(sim, no_window());
  st.append(rec(1));
  st.sync([] {});
  sim.run();  // rec(1) durable
  st.append(rec(2));
  bool fired = false;
  st.sync([&] { fired = true; });
  st.crash();  // before force completes
  sim.run();
  EXPECT_FALSE(fired);
  auto records = st.recover_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], rec(1));
  EXPECT_EQ(st.stats().records_lost_in_crash, 1u);
}

TEST(Storage, CrashInDelayedModeLosesAcknowledgedWrites) {
  // The risk Figure 5(b) trades away: delayed writes acknowledge before
  // durability, so a crash can lose acknowledged records.
  Simulator sim;
  StorageParams p;
  p.mode = SyncMode::kDelayed;
  StableStorage st(sim, p);
  st.append(rec(1));
  bool acked = false;
  st.sync([&] { acked = true; });
  sim.run(1);
  EXPECT_TRUE(acked);
  st.crash();
  EXPECT_TRUE(st.recover_records().empty());
}

TEST(Storage, RecoverReturnsDurablePrefixInOrder) {
  Simulator sim;
  StableStorage st(sim, no_window());
  for (std::uint8_t i = 0; i < 5; ++i) st.append(rec(i));
  st.sync([] {});
  sim.run();
  auto records = st.recover_records();
  ASSERT_EQ(records.size(), 5u);
  for (std::uint8_t i = 0; i < 5; ++i) EXPECT_EQ(records[i], rec(i));
}

TEST(Storage, CompactReplacesPrefixWithSnapshot) {
  Simulator sim;
  StableStorage st(sim, no_window());
  for (std::uint8_t i = 0; i < 4; ++i) st.append(rec(i));
  st.sync([] {});
  sim.run();
  st.compact(3, rec(99));
  auto records = st.recover_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], rec(99));
  EXPECT_EQ(records[1], rec(3));
}

TEST(Storage, CompactNonDurableThrows) {
  Simulator sim;
  StableStorage st(sim, no_window());
  st.append(rec(1));
  EXPECT_THROW(st.compact(1, rec(9)), std::logic_error);
}

TEST(Storage, SyncAfterCrashWorksAgain) {
  Simulator sim;
  StableStorage st(sim, no_window());
  st.append(rec(1));
  st.crash();
  st.append(rec(2));
  bool fired = false;
  st.sync([&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  auto records = st.recover_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], rec(2));
}

TEST(Storage, SyncWithNothingNewCompletesAfterInFlightForce) {
  Simulator sim;
  StableStorage st(sim, no_window());
  st.append(rec(1));
  st.sync([] {});
  sim.run();
  // Everything durable; a new sync with no new appends must still fire.
  bool fired = false;
  st.sync([&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}


TEST(Storage, CommitWindowDelaysIdleForce) {
  Simulator sim;
  StorageParams p;
  p.commit_window = millis(2);
  StableStorage st(sim, p);
  st.append(rec(1));
  SimTime done_at = -1;
  st.sync([&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, millis(2) + p.force_latency);
}

TEST(Storage, CommitWindowBatchesConcurrentSyncs) {
  Simulator sim;
  StorageParams p;
  p.commit_window = millis(2);
  StableStorage st(sim, p);
  int completed = 0;
  // Ten syncs arrive within the window: one force serves them all.
  for (int i = 0; i < 10; ++i) {
    sim.after(micros(100) * i, [&st, &completed, i] {
      st.append(rec(static_cast<std::uint8_t>(i)));
      st.sync([&completed] { ++completed; });
    });
  }
  sim.run();
  EXPECT_EQ(completed, 10);
  EXPECT_EQ(st.stats().forces, 1u);
}

TEST(Storage, CommitWindowCancelledByCrash) {
  Simulator sim;
  StorageParams p;
  p.commit_window = millis(2);
  StableStorage st(sim, p);
  st.append(rec(1));
  bool fired = false;
  st.sync([&] { fired = true; });
  st.crash();
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(st.stats().forces, 0u);
}

}  // namespace
}  // namespace tordb
