// Randomized property tests: drive the GC layer through seeded random
// schedules of traffic, partitions, merges, crashes and recoveries, then
// assert the EVS invariants (total order, local order, FIFO, safe-delivery
// trichotomy, virtual synchrony) and eventual convergence.
#include <gtest/gtest.h>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "gc_harness.h"
#include "util/rng.h"

namespace tordb::gc {
namespace {

using testing::GcCluster;

struct Scenario {
  std::uint64_t seed;
  int nodes;
  bool crashes;
};

class GcRandomSchedule : public ::testing::TestWithParam<Scenario> {};

std::vector<std::vector<NodeId>> random_partition(Rng& rng, const std::vector<NodeId>& nodes) {
  const int k = static_cast<int>(rng.next_range(1, 3));
  std::vector<std::vector<NodeId>> comps(static_cast<std::size_t>(k));
  for (NodeId n : nodes) comps[rng.next_below(static_cast<std::uint64_t>(k))].push_back(n);
  std::vector<std::vector<NodeId>> nonempty;
  for (auto& comp : comps) {
    if (!comp.empty()) nonempty.push_back(std::move(comp));
  }
  return nonempty;
}

TEST_P(GcRandomSchedule, InvariantsHoldAndConverge) {
  const Scenario sc = GetParam();
  Rng rng(sc.seed);
  GcCluster c(sc.nodes, sc.seed);
  std::vector<NodeId> all;
  for (NodeId i = 0; i < sc.nodes; ++i) all.push_back(i);

  std::set<NodeId> down;
  std::int64_t k = 0;
  for (int step = 0; step < 60; ++step) {
    const int what = static_cast<int>(rng.next_below(10));
    if (what < 5) {
      // burst of traffic from random up nodes
      const int burst = static_cast<int>(rng.next_range(1, 8));
      for (int b = 0; b < burst; ++b) {
        const NodeId n = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(sc.nodes)));
        if (!down.count(n)) {
          c.multicast(n, ++k, rng.chance(0.8) ? Service::kSafe : Service::kAgreed);
        }
      }
    } else if (what < 7) {
      c.net().set_components(random_partition(rng, all));
    } else if (what == 7) {
      c.net().heal();
    } else if (sc.crashes && what == 8 && down.size() + 1 < static_cast<std::size_t>(sc.nodes)) {
      const NodeId n = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(sc.nodes)));
      if (!down.count(n)) {
        c.crash(n);
        down.insert(n);
      }
    } else if (sc.crashes && !down.empty()) {
      const NodeId n = *down.begin();
      c.recover(n);
      down.erase(n);
    }
    c.run_for(millis(static_cast<std::int64_t>(rng.next_range(1, 120))));
  }

  // Quiesce: recover everyone, heal, and let the system settle.
  for (NodeId n : down) c.recover(n);
  c.net().heal();
  c.run_for(seconds(5));

  EXPECT_TRUE(c.converged(all)) << "seed " << sc.seed;
  c.check_all_invariants();
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> v;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) v.push_back({seed, 4, false});
  for (std::uint64_t seed = 21; seed <= 44; ++seed) v.push_back({seed, 6, true});
  for (std::uint64_t seed = 45; seed <= 60; ++seed) v.push_back({seed, 9, true});
  for (std::uint64_t seed = 61; seed <= 68; ++seed) v.push_back({seed, 14, true});
  return v;
}

INSTANTIATE_TEST_SUITE_P(Schedules, GcRandomSchedule, ::testing::ValuesIn(scenarios()),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           return "seed" + std::to_string(info.param.seed) + "_n" +
                                  std::to_string(info.param.nodes) +
                                  (info.param.crashes ? "_crash" : "");
                         });

}  // namespace
}  // namespace tordb::gc
