// Test harness for the group-communication layer: a cluster of GC nodes on
// one simulated network, with per-node recording of every configuration and
// delivery, plus reusable checkers for the EVS correctness properties.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "gc/group_communication.h"
#include "obs/safety_checker.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace tordb::gc::testing {

/// Owning copy of a Delivery. The layer's Delivery borrows its payload from
/// the delivery buffer (valid only during the callback), so the recorder
/// snapshots it here. Converts back to Delivery so existing checks that
/// iterate `const Delivery&` keep working.
struct StoredDelivery {
  NodeId sender = kNoNode;
  ConfigId config;
  std::int64_t seq = 0;
  DeliveryKind kind = DeliveryKind::kAgreed;
  Bytes payload;

  StoredDelivery() = default;
  StoredDelivery(const Delivery& d)  // NOLINT: implicit by design
      : sender(d.sender),
        config(d.config),
        seq(d.seq),
        kind(d.kind),
        payload(d.payload.begin(), d.payload.end()) {}
  operator Delivery() const {  // NOLINT: implicit by design
    return Delivery{sender, config, seq, kind, payload};
  }
};

struct RecordedEvent {
  enum class Kind { kRegular, kTransitional, kDelivery };
  Kind kind;
  Configuration config;      // for config events
  StoredDelivery delivery;   // for deliveries
};

struct NodeRecord {
  std::vector<RecordedEvent> events;
  std::vector<StoredDelivery> deliveries;
  std::vector<Configuration> regulars;
  std::vector<Configuration> transitionals;
  bool crashed = false;
};

/// Encodes "sender s's k-th payload" so tests can check FIFO and identity.
inline Bytes test_payload(NodeId sender, std::int64_t k) {
  BufWriter w;
  w.i32(sender);
  w.i64(k);
  return w.take();
}

inline std::pair<NodeId, std::int64_t> parse_payload(std::span<const std::uint8_t> b) {
  BufReader r(b.data(), b.size());
  NodeId s = r.i32();
  std::int64_t k = r.i64();
  return {s, k};
}

class GcCluster {
 public:
  explicit GcCluster(int n, std::uint64_t seed = 7, NetworkParams net_params = NetworkParams{})
      : sim_(seed), net_(sim_, net_params) {
    if (obs::check_forced()) {
      // TORDB_OBS_CHECK=1: route safe deliveries and configs through the
      // trace bus so the online checker verifies safe-delivery agreement
      // live across the whole gc suite.
      trace_bus_ = std::make_shared<obs::TraceBus>(sim_);
      checker_ = std::make_unique<obs::SafetyChecker>(*trace_bus_);
    }
    for (NodeId i = 0; i < n; ++i) {
      net_.add_node(i);
      records_[i];  // create record
    }
    for (NodeId i = 0; i < n; ++i) start_gc(i, /*initial_counter=*/0);
  }

  Simulator& sim() { return sim_; }
  Network& net() { return net_; }
  GroupCommunication& gc(NodeId id) { return *gcs_.at(id); }
  NodeRecord& record(NodeId id) { return records_.at(id); }
  bool has_gc(NodeId id) const { return gcs_.count(id) && gcs_.at(id) != nullptr; }

  void run_for(SimDuration d) { sim_.run_for(d); }

  void crash(NodeId id) {
    ever_crashed_.insert(id);
    net_.crash(id);
    counters_[id] = gcs_.at(id)->max_counter_seen();  // "persisted" by harness
    gcs_.at(id).reset();
    records_.at(id).crashed = true;
  }

  void recover(NodeId id) {
    net_.recover(id);
    records_.at(id).crashed = false;
    start_gc(id, counters_[id] + 1);
  }

  void multicast(NodeId id, std::int64_t k, Service service = Service::kSafe) {
    gcs_.at(id)->multicast(test_payload(id, k), service);
  }

  /// True when every listed node is operational in one identical config.
  bool converged(const std::vector<NodeId>& ids) const {
    const Configuration* first = nullptr;
    for (NodeId id : ids) {
      const auto& g = gcs_.at(id);
      if (!g || !g->operational()) return false;
      if (!first) {
        first = &g->config();
      } else if (!(*first == g->config())) {
        return false;
      }
    }
    if (!first) return false;
    std::vector<NodeId> sorted = ids;
    std::sort(sorted.begin(), sorted.end());
    return first->members == sorted;
  }

  // ---- property checkers -------------------------------------------------

  /// Total order: within any one configuration, any two nodes that both
  /// delivered position `seq` delivered the same payload there.
  void check_total_order() const {
    std::map<ConfigId, std::map<std::int64_t, Bytes>> by_config;
    for (const auto& [id, rec] : records_) {
      for (const Delivery& d : rec.deliveries) {
        Bytes payload(d.payload.begin(), d.payload.end());
        auto [it, inserted] = by_config[d.config].emplace(d.seq, std::move(payload));
        if (!inserted) {
          ASSERT_EQ(it->second, Bytes(d.payload.begin(), d.payload.end()))
              << "total order violated in config " << to_string(d.config) << " at seq " << d.seq
              << " (node " << id << ")";
        }
      }
    }
  }

  /// Per-node, per-config: delivered seqs strictly increase (a node never
  /// delivers out of order or twice).
  void check_local_order() const {
    for (const auto& [id, rec] : records_) {
      std::map<ConfigId, std::int64_t> last;
      for (const Delivery& d : rec.deliveries) {
        auto [it, inserted] = last.emplace(d.config, d.seq);
        if (!inserted) {
          ASSERT_GT(d.seq, it->second) << "node " << id << " delivered out of order";
          it->second = d.seq;
        }
      }
    }
  }

  /// FIFO per sender at every node: the k-counters of each sender's
  /// delivered payloads never decrease (resends may duplicate, the engine
  /// de-duplicates; but reordering is forbidden).
  void check_fifo() const {
    for (const auto& [id, rec] : records_) {
      std::map<NodeId, std::int64_t> last_k;
      for (const Delivery& d : rec.deliveries) {
        auto [s, k] = parse_payload(d.payload);
        auto it = last_k.find(s);
        if (it != last_k.end()) {
          ASSERT_GE(k, it->second)
              << "FIFO violated at node " << id << " for sender " << s;
        }
        last_k[s] = k;
      }
    }
  }

  /// EVS safe-delivery trichotomy: if any node delivered message (config,
  /// seq) as kSafeInRegular, every member of that configuration delivers it
  /// (any kind) unless it crashed at some point in the run.
  void check_safe_trichotomy() const {
    struct Key {
      ConfigId config;
      std::int64_t seq;
      auto operator<=>(const Key&) const = default;
    };
    std::map<Key, std::vector<NodeId>> safe_deliverers;
    std::map<ConfigId, std::vector<NodeId>> config_members;
    for (const auto& [id, rec] : records_) {
      for (const Configuration& c : rec.regulars) config_members[c.id] = c.members;
      for (const Delivery& d : rec.deliveries) {
        if (d.kind == DeliveryKind::kSafeInRegular) {
          safe_deliverers[{d.config, d.seq}].push_back(id);
        }
      }
    }
    for (const auto& [key, who] : safe_deliverers) {
      auto mit = config_members.find(key.config);
      if (mit == config_members.end()) continue;
      for (NodeId member : mit->second) {
        const NodeRecord& rec = records_.at(member);
        if (rec.crashed || ever_crashed_.count(member)) continue;
        bool delivered = false;
        for (const Delivery& d : rec.deliveries) {
          if (d.config == key.config && d.seq == key.seq) {
            delivered = true;
            break;
          }
        }
        ASSERT_TRUE(delivered) << "safe message seq " << key.seq << " in config "
                               << to_string(key.config) << " delivered safe at node " << who[0]
                               << " but never delivered at member " << member;
      }
    }
  }

  /// Virtual synchrony: two nodes delivering the same transitional
  /// configuration delivered exactly the same set of messages in the
  /// corresponding regular configuration.
  void check_virtual_synchrony() const {
    struct TransKey {
      ConfigId config;
      std::vector<NodeId> participants;
      auto operator<=>(const TransKey&) const = default;
    };
    std::map<TransKey, std::map<NodeId, std::set<std::int64_t>>> groups;
    for (const auto& [id, rec] : records_) {
      for (const Configuration& t : rec.transitionals) {
        auto& slot = groups[{t.id, t.members}][id];
        for (const Delivery& d : rec.deliveries) {
          if (d.config == t.id) slot.insert(d.seq);
        }
      }
    }
    for (const auto& [key, per_node] : groups) {
      const std::set<std::int64_t>* first = nullptr;
      NodeId first_id = kNoNode;
      for (const auto& [id, seqs] : per_node) {
        if (!first) {
          first = &seqs;
          first_id = id;
        } else {
          ASSERT_EQ(seqs, *first) << "virtual synchrony violated between nodes " << first_id
                                  << " and " << id << " in config " << to_string(key.config);
        }
      }
    }
  }

  void check_all_invariants() const {
    check_total_order();
    check_local_order();
    check_fifo();
    check_safe_trichotomy();
    check_virtual_synchrony();
  }

 private:
  void start_gc(NodeId id, std::int64_t initial_counter) {
    Listener listener;
    NodeRecord& rec = records_.at(id);
    listener.on_regular_config = [&rec](const Configuration& c) {
      rec.regulars.push_back(c);
      rec.events.push_back({RecordedEvent::Kind::kRegular, c, {}});
    };
    listener.on_transitional_config = [&rec](const Configuration& c) {
      rec.transitionals.push_back(c);
      rec.events.push_back({RecordedEvent::Kind::kTransitional, c, {}});
    };
    listener.on_deliver = [&rec](const Delivery& d) {
      rec.deliveries.push_back(d);
      rec.events.push_back({RecordedEvent::Kind::kDelivery, {}, d});
    };
    GcParams params;
    if (trace_bus_) params.tracer = obs::Tracer(trace_bus_, id);
    gcs_[id] = std::make_unique<GroupCommunication>(net_, id, std::move(listener),
                                                    initial_counter, params);
  }

  Simulator sim_;
  Network net_;
  std::shared_ptr<obs::TraceBus> trace_bus_;       ///< set when checker forced
  std::unique_ptr<obs::SafetyChecker> checker_;    ///< fail-fast on violation
  std::map<NodeId, std::unique_ptr<GroupCommunication>> gcs_;
  std::map<NodeId, NodeRecord> records_;
  std::map<NodeId, std::int64_t> counters_;
  std::set<NodeId> ever_crashed_;

 public:
  /// Mark in checkers that a node crashed at some point (records survive).
  void note_crash(NodeId id) { ever_crashed_.insert(id); }
};

}  // namespace tordb::gc::testing
