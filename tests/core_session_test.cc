// Client sessions: exactly-once update semantics with replica fail-over.
#include <gtest/gtest.h>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "core/client_session.h"
#include "db/database.h"
#include "workload/cluster.h"

namespace tordb::core {
namespace {

using db::Command;
using workload::ClusterOptions;
using workload::EngineCluster;

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : c_(options()) {
    c_.run_for(seconds(1));
    for (NodeId i = 0; i < 4; ++i) nodes_.push_back(&c_.node(i));
  }

  static ClusterOptions options() {
    ClusterOptions o;
    o.replicas = 4;
    o.seed = 1;
    return o;
  }

  ClientSession make_session(std::int64_t client_id) {
    return ClientSession(c_.sim(), nodes_, client_id);
  }

  EngineCluster c_;
  std::vector<ReplicaNode*> nodes_;
};

TEST_F(SessionTest, CommitsAndApplies) {
  ClientSession s = make_session(1);
  bool committed = false;
  s.submit(Command::add("n", 1), [&](const SessionReply& r) { committed = r.committed; });
  c_.run_for(millis(300));
  EXPECT_TRUE(committed);
  EXPECT_EQ(c_.engine(2).database().get("n"), "1");
  EXPECT_EQ(s.stats().committed, 1u);
}

TEST_F(SessionTest, RequestsExecuteInSessionOrder) {
  ClientSession s = make_session(1);
  for (int i = 0; i < 5; ++i) s.submit(Command::append("log", std::to_string(i)));
  c_.run_for(seconds(1));
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(c_.engine(0).database().get("log"), "01234");
}

TEST_F(SessionTest, GenuineAbortReported) {
  ClientSession s = make_session(1);
  bool committed = true;
  s.submit(Command::checked_put("missing", "not-this", "x"),
           [&](const SessionReply& r) { committed = r.committed; });
  c_.run_for(millis(300));
  EXPECT_FALSE(committed);
  EXPECT_EQ(s.stats().aborted, 1u);
  // The session chain continues past an abort.
  bool second = false;
  s.submit(Command::add("n", 1), [&](const SessionReply& r) { second = r.committed; });
  c_.run_for(millis(300));
  EXPECT_TRUE(second);
  EXPECT_EQ(c_.engine(1).database().get("n"), "1");
}

TEST_F(SessionTest, CrashFailoverAppliesExactlyOnce) {
  // Crash the serving replica after the action may have been ordered but
  // before the client heard back: the session must fail over and the update
  // must land exactly once, regardless of whether the first attempt made it.
  ClientSession s = make_session(7);
  bool committed = false;
  int attempts = 0;
  s.submit(Command::add("balance", 100), [&](const SessionReply& r) {
    committed = r.committed;
    attempts = r.attempts;
  });
  c_.run_for(millis(9) + micros(200));  // forced write done; ordering in flight
  c_.crash(0);
  c_.run_for(seconds(3));
  EXPECT_TRUE(committed);
  EXPECT_GE(attempts, 2);
  EXPECT_EQ(c_.engine(1).database().get("balance"), "100");
  EXPECT_EQ(c_.engine(2).database().get("balance"), "100");
  EXPECT_EQ(c_.check_all(), std::nullopt);
}

TEST_F(SessionTest, ManyCrashFailoversStillExactlyOnce) {
  ClientSession s = make_session(7);
  int committed = 0;
  for (int i = 0; i < 6; ++i) {
    s.submit(Command::add("balance", 1), [&](const SessionReply& r) {
      if (r.committed) ++committed;
    });
  }
  // Crash/recover the first replica twice while the session works.
  c_.run_for(millis(15));
  c_.crash(0);
  c_.run_for(seconds(2));
  c_.recover(0);
  c_.run_for(millis(40));
  c_.crash(1);
  c_.run_for(seconds(2));
  c_.recover(1);
  c_.run_for(seconds(3));
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(committed, 6);
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(c_.engine(i).database().get("balance"), "6") << "node " << i;
  }
  EXPECT_EQ(c_.check_all(), std::nullopt);
}

TEST_F(SessionTest, PartitionFailoverToMajority) {
  // The session's replica lands in a minority; the request cannot commit
  // there; the timeout routes it to a majority member.
  ClientSession s = make_session(3);
  c_.partition({{0}, {1, 2, 3}});
  c_.run_for(millis(500));
  bool committed = false;
  s.submit(Command::put("k", "v"), [&](const SessionReply& r) { committed = r.committed; });
  c_.run_for(seconds(3));
  EXPECT_TRUE(committed);
  EXPECT_GE(s.stats().failovers, 1u);
  EXPECT_EQ(c_.engine(1).database().get("k"), "v");
}

TEST_F(SessionTest, InterleavedSessionsDoNotInterfere) {
  ClientSession a = make_session(1);
  ClientSession b = make_session(2);
  for (int i = 0; i < 10; ++i) {
    a.submit(Command::add("a", 1));
    b.submit(Command::add("b", 1));
  }
  c_.run_for(seconds(2));
  EXPECT_EQ(c_.engine(0).database().get("a"), "10");
  EXPECT_EQ(c_.engine(0).database().get("b"), "10");
  EXPECT_EQ(a.stats().committed, 10u);
  EXPECT_EQ(b.stats().committed, 10u);
}

TEST_F(SessionTest, GuardKeyIsReserved) {
  EXPECT_EQ(ClientSession::guard_key(42), "__session/42");
  ClientSession s = make_session(42);
  s.submit(Command::add("n", 1));
  c_.run_for(millis(300));
  EXPECT_EQ(c_.engine(0).database().get("__session/42"), "1");  // seq tracker
}

}  // namespace
}  // namespace tordb::core
