#include <gtest/gtest.h>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "db/database.h"
#include "workload/cluster.h"

namespace tordb::core {
namespace {

using db::Command;
using workload::ClusterOptions;
using workload::EngineCluster;

ClusterOptions small(int n, std::uint64_t seed = 1) {
  ClusterOptions o;
  o.replicas = n;
  o.seed = seed;
  return o;
}

TEST(CoreBasic, ClusterFormsPrimary) {
  EngineCluster c(small(5));
  c.run_for(seconds(1));
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(c.engine(i).state(), EngineState::kRegPrim);
    EXPECT_GE(c.engine(i).prim_component().prim_index, 1);
  }
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreBasic, SingleReplicaIsItsOwnPrimary) {
  EngineCluster c(small(1));
  c.run_for(millis(500));
  EXPECT_EQ(c.engine(0).state(), EngineState::kRegPrim);
  bool replied = false;
  c.engine(0).submit({}, Command::put("k", "v"), 1, Semantics::kStrict,
                     [&](const Reply& r) {
                       replied = true;
                       EXPECT_FALSE(r.aborted);
                     });
  c.run_for(millis(200));
  EXPECT_TRUE(replied);
  EXPECT_EQ(c.engine(0).database().get("k"), "v");
}

TEST(CoreBasic, ActionGoesGreenAtEveryReplica) {
  EngineCluster c(small(5));
  c.run_for(seconds(1));
  bool replied = false;
  c.engine(2).submit({}, Command::put("account", "100"), 7, Semantics::kStrict,
                     [&](const Reply& r) {
                       replied = true;
                       EXPECT_FALSE(r.aborted);
                       EXPECT_EQ(r.action.server_id, 2);
                     });
  c.run_for(millis(300));
  EXPECT_TRUE(replied);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(c.engine(i).green_count(), 1) << "node " << i;
    EXPECT_EQ(c.engine(i).database().get("account"), "100") << "node " << i;
  }
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreBasic, QueryPartReturnsReads) {
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  c.engine(0).submit({}, Command::put("x", "42"), 1, Semantics::kStrict, nullptr);
  c.run_for(millis(300));
  std::vector<std::string> reads;
  c.engine(1).submit(Command::get("x"), Command::add("x", 1), 1, Semantics::kStrict,
                     [&](const Reply& r) { reads = r.reads; });
  c.run_for(millis(300));
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0], "42");  // query evaluated before the update part
  EXPECT_EQ(c.engine(2).database().get("x"), "43");
}

TEST(CoreBasic, ConcurrentSubmittersKeepTotalOrder) {
  EngineCluster c(small(5));
  c.run_for(seconds(1));
  int replies = 0;
  for (int round = 0; round < 20; ++round) {
    for (NodeId i = 0; i < 5; ++i) {
      c.engine(i).submit({}, Command::add("counter", 1), i, Semantics::kStrict,
                         [&](const Reply&) { ++replies; });
    }
    c.run_for(millis(5));
  }
  c.run_for(seconds(1));
  EXPECT_EQ(replies, 100);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(c.engine(i).green_count(), 100);
    EXPECT_EQ(c.engine(i).database().get("counter"), "100");
  }
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreBasic, MinoritySideMakesNoGreenProgress) {
  EngineCluster c(small(5));
  c.run_for(seconds(1));
  c.partition({{0, 1, 2}, {3, 4}});
  c.run_for(millis(500));
  // Majority side is primary; minority is not.
  EXPECT_TRUE(c.converged_primary({0, 1, 2}));
  EXPECT_EQ(c.engine(3).state(), EngineState::kNonPrim);
  EXPECT_EQ(c.engine(4).state(), EngineState::kNonPrim);

  bool minority_replied = false;
  c.engine(4).submit({}, Command::put("k", "minority"), 1, Semantics::kStrict,
                     [&](const Reply&) { minority_replied = true; });
  bool majority_replied = false;
  c.engine(0).submit({}, Command::put("k", "majority"), 1, Semantics::kStrict,
                     [&](const Reply&) { majority_replied = true; });
  c.run_for(millis(500));
  EXPECT_TRUE(majority_replied);
  EXPECT_FALSE(minority_replied);  // strict actions wait for the primary
  EXPECT_GT(c.engine(4).red_count(), 0u);
  EXPECT_EQ(c.engine(4).green_count(), 0);
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreBasic, MergeOrdersMinorityActions) {
  EngineCluster c(small(5));
  c.run_for(seconds(1));
  c.partition({{0, 1, 2}, {3, 4}});
  c.run_for(millis(500));
  bool replied = false;
  c.engine(4).submit({}, Command::put("from-minority", "yes"), 1, Semantics::kStrict,
                     [&](const Reply&) { replied = true; });
  c.engine(0).submit({}, Command::put("from-majority", "yes"), 1, Semantics::kStrict, nullptr);
  c.run_for(millis(500));
  c.heal();
  c.run_for(seconds(1));
  EXPECT_TRUE(replied);  // the red action was ordered after the merge
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(c.engine(i).database().get("from-minority"), "yes");
    EXPECT_EQ(c.engine(i).database().get("from-majority"), "yes");
  }
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreBasic, EvenSplitNobodyIsPrimary) {
  EngineCluster c(small(4));
  c.run_for(seconds(1));
  c.partition({{0, 1}, {2, 3}});
  c.run_for(seconds(1));
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(c.engine(i).state(), EngineState::kNonPrim) << "node " << i;
  }
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreBasic, DynamicLinearVotingFollowsLastPrimary) {
  // 5 replicas; majority {0,1,2} becomes primary. A further split of that
  // primary into {0,1} | {2} leaves {0,1} holding 2 of the last primary's 3
  // members: dynamic linear voting (not static majority of 5) makes {0,1}
  // the next primary even though it is a minority of the original set.
  EngineCluster c(small(5));
  c.run_for(seconds(1));
  c.partition({{0, 1, 2}, {3, 4}});
  c.run_for(seconds(1));
  ASSERT_TRUE(c.converged_primary({0, 1, 2}));
  c.partition({{0, 1}, {2}, {3, 4}});
  c.run_for(seconds(1));
  EXPECT_TRUE(c.converged_primary({0, 1}));
  EXPECT_EQ(c.engine(2).state(), EngineState::kNonPrim);
  EXPECT_EQ(c.engine(3).state(), EngineState::kNonPrim);
  // The stale side {3,4} can never usurp: progress continues at {0,1}.
  bool replied = false;
  c.engine(0).submit({}, Command::put("k", "v"), 1, Semantics::kStrict,
                     [&](const Reply&) { replied = true; });
  c.run_for(millis(500));
  EXPECT_TRUE(replied);
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreBasic, WeightedQuorum) {
  ClusterOptions o = small(3);
  o.node.engine.weights = {{0, 3}, {1, 1}, {2, 1}};  // node 0 dominates
  EngineCluster c(o);
  c.run_for(seconds(1));
  c.partition({{0}, {1, 2}});
  c.run_for(seconds(1));
  EXPECT_TRUE(c.converged_primary({0}));  // weight 3 of 5 is a majority
  EXPECT_EQ(c.engine(1).state(), EngineState::kNonPrim);
  EXPECT_EQ(c.engine(2).state(), EngineState::kNonPrim);
}

TEST(CoreBasic, RepeatedPartitionsStayConsistent) {
  EngineCluster c(small(5, 42));
  c.run_for(seconds(1));
  std::int64_t k = 0;
  for (int round = 0; round < 4; ++round) {
    for (NodeId i = 0; i < 5; ++i) {
      c.engine(i).submit({}, Command::add("n", 1), ++k, Semantics::kStrict, nullptr);
    }
    c.run_for(millis(100));
    c.partition({{0, 1, 2}, {3, 4}});
    c.run_for(millis(400));
    for (NodeId i = 0; i < 5; ++i) {
      c.engine(i).submit({}, Command::add("n", 1), ++k, Semantics::kStrict, nullptr);
    }
    c.run_for(millis(400));
    c.heal();
    c.run_for(millis(800));
  }
  c.run_for(seconds(2));
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
  EXPECT_EQ(c.engine(0).database().get("n"), "40");
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreBasic, WhiteTrimmingReclaimsBodies) {
  ClusterOptions o = small(3);
  o.node.engine.white_trim = true;
  EngineCluster c(o);
  c.run_for(seconds(1));
  for (int round = 0; round < 30; ++round) {
    for (NodeId i = 0; i < 3; ++i) {
      c.engine(i).submit({}, Command::add("n", 1), 1, Semantics::kStrict, nullptr);
    }
    c.run_for(millis(10));
  }
  c.run_for(seconds(1));
  // Every server generated actions, so green lines advance and the white
  // line follows; most bodies must have been discarded.
  EXPECT_GT(c.engine(0).stats().actions_white_trimmed, 50u);
  EXPECT_GT(c.engine(0).white_line(), 0);
  EXPECT_EQ(c.check_all(), std::nullopt);
}

TEST(CoreBasic, StatsCountPrimariesAndExchanges) {
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  EXPECT_GE(c.engine(0).stats().primaries_installed, 1u);
  EXPECT_GE(c.engine(0).stats().exchanges, 1u);
  c.partition({{0, 1}, {2}});
  c.run_for(seconds(1));
  EXPECT_GE(c.engine(0).stats().primaries_installed, 2u);
}

TEST(CoreBasic, NoEndToEndAckPerActionInSteadyState) {
  // The paper's headline: in Prim, ordering needs no engine-level
  // end-to-end acknowledgements — engine messages are exactly one multicast
  // per action (plus the GC's own ack/stability machinery). We verify no
  // exchange/CPC traffic happens while the membership is stable.
  EngineCluster c(small(5));
  c.run_for(seconds(1));
  const auto exchanges_before = c.engine(0).stats().exchanges;
  const auto cpc_before = c.engine(0).stats().cpc_sent;
  for (int round = 0; round < 50; ++round) {
    c.engine(0).submit({}, Command::add("n", 1), 1, Semantics::kStrict, nullptr);
    c.run_for(millis(4));
  }
  c.run_for(millis(500));
  EXPECT_EQ(c.engine(0).stats().exchanges, exchanges_before);
  EXPECT_EQ(c.engine(0).stats().cpc_sent, cpc_before);
  EXPECT_EQ(c.engine(0).green_count(), 50);
}


TEST(CoreBasic, StaticMajorityLosesPrimaryWhereDlvKeepsIt) {
  // The design choice behind ablation A5: after the primary shrank to
  // {0,1,2}, a further shrink to {0,1} keeps a dynamic-linear-voting
  // primary (2 of the last 3) but a static majority of all 5 does not.
  for (bool dlv : {true, false}) {
    ClusterOptions o = small(5, 41);
    o.node.engine.quorum_mode =
        dlv ? QuorumMode::kDynamicLinearVoting : QuorumMode::kStaticMajority;
    EngineCluster c(o);
    c.run_for(seconds(1));
    c.partition({{0, 1, 2}, {3, 4}});
    c.run_for(seconds(1));
    ASSERT_TRUE(c.converged_primary({0, 1, 2})) << "dlv=" << dlv;  // 3 of 5 either way
    c.partition({{0, 1}, {2}, {3, 4}});
    c.run_for(seconds(1));
    if (dlv) {
      EXPECT_TRUE(c.converged_primary({0, 1}));
    } else {
      EXPECT_EQ(c.engine(0).state(), EngineState::kNonPrim);
      EXPECT_EQ(c.engine(1).state(), EngineState::kNonPrim);
    }
    EXPECT_EQ(c.check_all(), std::nullopt);
  }
}

}  // namespace
}  // namespace tordb::core
