// Green-line announcement protocol (DESIGN.md §14): silent replicas'
// knowledge still propagates, so white trimming and body-store GC make
// progress on asymmetric workloads — including across partitions, crashes
// and recoveries. Every cluster runs under the online safety checker
// (invariants 6 and 10 watch each trim and announcement live).
#include <gtest/gtest.h>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "db/database.h"
#include "workload/cluster.h"

namespace tordb::core {
namespace {

using db::Command;
using workload::ClusterOptions;
using workload::EngineCluster;

ClusterOptions small(int n, std::uint64_t seed = 1) {
  ClusterOptions o;
  o.replicas = n;
  o.seed = seed;
  return o;
}

/// Drive `count` sequential strict puts through node `via`.
void drive(EngineCluster& c, NodeId via, int count) {
  for (int i = 0; i < count; ++i) {
    c.engine(via).submit({}, Command::put("k" + std::to_string(i % 8), std::to_string(i)), 1,
                         Semantics::kStrict, nullptr);
    c.run_for(millis(20));
  }
}

TEST(CoreAnnounce, SilentReplicasStillTrim) {
  // Only node 0 originates actions. Nodes 1 and 2 never multicast anything
  // on their own, so without announcements nobody ever learns their green
  // lines and every white line stays pinned at the install.
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  drive(c, 0, 30);
  c.run_for(seconds(1));  // several announce intervals of quiet

  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_GE(c.engine(n).green_count(), 30) << "node " << n;
    // The white line tracks the group minimum green line; after quiescence
    // and a token from every silent replica it reaches the green count.
    EXPECT_EQ(c.engine(n).white_line(), c.engine(n).green_count()) << "node " << n;
    // Trimmed bodies are gone: only pending reds (none at quiescence) stay.
    EXPECT_EQ(c.engine(n).action_log().stored_bodies(), 0u) << "node " << n;
  }
  // The silent replicas sent the tokens; the originator's own green line
  // rode its actions, so its token stayed mooted (piggyback wins the race).
  EXPECT_GT(c.engine(1).stats().announces_sent, 0u);
  EXPECT_GT(c.engine(2).stats().announces_sent, 0u);
  EXPECT_GT(c.engine(0).stats().announces_received, 0u);
}

TEST(CoreAnnounce, DisabledIntervalPreservesOldBehavior) {
  // The pre-announcement configuration (announce_interval = 0): the same
  // asymmetric workload leaves every white line pinned — the regression
  // baseline bench_memory measures at scale.
  ClusterOptions o = small(3);
  o.node.engine.announce_interval = SimDuration{0};
  EngineCluster c(o);
  c.run_for(seconds(1));
  drive(c, 0, 30);
  c.run_for(seconds(1));

  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_GE(c.engine(n).green_count(), 30) << "node " << n;
    EXPECT_EQ(c.engine(n).white_line(), 0) << "node " << n;
    EXPECT_GT(c.engine(n).action_log().stored_bodies(), 0u) << "node " << n;
    EXPECT_EQ(c.engine(n).stats().announces_sent, 0u) << "node " << n;
  }
}

TEST(CoreAnnounce, PartitionPinsTrimUntilHeal) {
  // A partitioned member is still in the server set, so the majority side
  // must NOT trim past what it can know: announcements are lower-bound
  // claims, and none arrive across the cut. After the heal the exchange
  // refreshes everyone's lines, announcements resume, and trimming catches
  // up everywhere.
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  drive(c, 0, 10);
  c.run_for(seconds(1));
  const std::int64_t pre = c.engine(0).green_count();
  ASSERT_EQ(c.engine(0).white_line(), pre);

  c.partition({{0, 1}, {2}});
  c.run_for(millis(500));
  drive(c, 0, 20);
  c.run_for(seconds(1));
  EXPECT_GE(c.engine(0).green_count(), pre + 20);
  // Node 2 missed everything after the cut; the white line may not pass it.
  EXPECT_LE(c.engine(0).white_line(), pre);

  c.heal();
  c.run_for(seconds(2));
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(c.engine(n).green_count(), c.engine(0).green_count()) << "node " << n;
    EXPECT_EQ(c.engine(n).white_line(), c.engine(n).green_count()) << "node " << n;
  }
}

TEST(CoreAnnounce, CrashedReplicaRejoinsWithStaleGreenLine) {
  // Node 2 crashes after marking greens, the survivors keep committing,
  // then node 2 recovers — possibly below its pre-crash green line (greens
  // are logged asynchronously). The exchange state-transfers it past the
  // trimmed history, announcements resume, and trimming proceeds at every
  // node. The live checker watches invariant 6 throughout: survivors may
  // trim on node 2's pre-crash claims (high-water), never beyond them.
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  drive(c, 0, 10);
  c.run_for(seconds(1));

  c.crash(2);
  c.run_for(millis(500));
  drive(c, 0, 20);
  c.run_for(seconds(1));
  const std::int64_t survivors_green = c.engine(0).green_count();
  EXPECT_GE(survivors_green, 30);

  c.recover(2);
  c.run_for(seconds(3));
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_GE(c.engine(n).green_count(), survivors_green) << "node " << n;
    EXPECT_EQ(c.engine(n).white_line(), c.engine(n).green_count()) << "node " << n;
  }
  EXPECT_TRUE(c.converged_primary(c.all_ids()));
}

TEST(CoreAnnounce, QuiescentClusterSendsNoTokens) {
  // The timer is lazy: it arms only when the green count moves past the
  // last announced line. A cluster with no traffic after its announcements
  // settle must go fully quiet (run-until-idle still terminates).
  EngineCluster c(small(3));
  c.run_for(seconds(1));
  drive(c, 0, 5);
  c.run_for(seconds(2));
  const auto sent = [&] {
    std::uint64_t s = 0;
    for (NodeId n = 0; n < 3; ++n) s += c.engine(n).stats().announces_sent;
    return s;
  };
  const std::uint64_t settled = sent();
  c.run_for(seconds(30));  // long quiet stretch: no new greens anywhere
  EXPECT_EQ(sent(), settled);
}

}  // namespace
}  // namespace tordb::core
