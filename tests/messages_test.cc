// Wire-format round-trip tests for every group-communication and engine
// message and every stable-storage log record.
#include <gtest/gtest.h>

#include "core/messages.h"
#include "gc/messages.h"

namespace tordb {
namespace {

TEST(GcMessages, DataRoundTrip) {
  gc::DataMsg m;
  m.config = ConfigId{7, 2};
  m.origin = 3;
  m.local_seq = 42;
  m.service = gc::Service::kSafe;
  m.payload = Bytes{1, 2, 3};
  Bytes wire = encode(m);
  EXPECT_EQ(gc::peek_type(wire), gc::MsgType::kData);
  BufReader r(wire);
  r.u8();
  auto back = gc::decode_data(r);
  EXPECT_EQ(back.config, m.config);
  EXPECT_EQ(back.origin, 3);
  EXPECT_EQ(back.local_seq, 42);
  EXPECT_EQ(back.service, gc::Service::kSafe);
  EXPECT_EQ(back.payload, m.payload);
}

TEST(GcMessages, OrderedRoundTrip) {
  gc::OrderedMsg m;
  m.config = ConfigId{1, 0};
  m.seq = 99;
  m.origin = 5;
  m.origin_local_seq = 17;
  m.service = gc::Service::kAgreed;
  m.payload = Bytes{9};
  Bytes wire = encode(m);
  BufReader r(wire);
  r.u8();
  auto back = gc::decode_ordered(r);
  EXPECT_EQ(back.seq, 99);
  EXPECT_EQ(back.origin_local_seq, 17);
  EXPECT_EQ(back.service, gc::Service::kAgreed);
}

TEST(GcMessages, PlanRoundTrip) {
  gc::PlanMsg m;
  m.token = gc::GatherToken{2, 8};
  m.new_config = ConfigId{10, 2};
  m.new_members = {2, 3, 5};
  gc::PlanEntry e;
  e.old_config = ConfigId{9, 3};
  e.old_members = {2, 3, 4, 5};
  e.participants = {2, 3, 5};
  e.participant_contig = {10, 8, 10};
  e.safe_line = 7;
  e.target_seq = 10;
  e.retransmitter = 2;
  m.entries.push_back(e);
  Bytes wire = encode(m);
  BufReader r(wire);
  r.u8();
  auto back = gc::decode_plan(r);
  EXPECT_EQ(back.token, m.token);
  EXPECT_EQ(back.new_members, m.new_members);
  ASSERT_EQ(back.entries.size(), 1u);
  EXPECT_EQ(back.entries[0].participant_contig, e.participant_contig);
  EXPECT_EQ(back.entries[0].safe_line, 7);
  EXPECT_EQ(back.entries[0].retransmitter, 2);
}

TEST(GcMessages, JoinInfoRoundTrip) {
  gc::JoinInfoMsg m;
  m.token = gc::GatherToken{0, 3};
  m.old_config = ConfigId{4, 1};
  m.old_members = {0, 1, 2};
  m.recv_contig = 55;
  m.delivered_upto = 50;
  m.known_contig = {55, 54, 53};
  m.max_config_counter = 6;
  Bytes wire = encode(m);
  BufReader r(wire);
  r.u8();
  auto back = gc::decode_join_info(r);
  EXPECT_EQ(back.known_contig, m.known_contig);
  EXPECT_EQ(back.max_config_counter, 6);
}

TEST(CoreMessages, ActionRoundTrip) {
  core::Action a;
  a.type = core::ActionType::kPersistentJoin;
  a.id = ActionId{4, 123};
  a.green_line = 77;
  a.client = 9;
  a.semantics = core::Semantics::kCommutative;
  a.query = db::Command::get("q");
  a.update = db::Command::add("u", -5);
  a.subject = 11;
  a.padding = 16;
  BufWriter w;
  a.encode(w);
  Bytes b = w.take();
  BufReader r(b);
  core::Action back = core::Action::decode(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.type, a.type);
  EXPECT_EQ(back.id, a.id);
  EXPECT_EQ(back.green_line, 77);
  EXPECT_EQ(back.semantics, core::Semantics::kCommutative);
  EXPECT_EQ(back.update.ops, a.update.ops);
  EXPECT_EQ(back.subject, 11);
}

TEST(CoreMessages, ActionWireSizeTracksPadding) {
  core::Action a;
  a.update = db::Command::put("k", "v");
  a.padding = 0;
  const std::size_t base = a.wire_size();
  a.padding = 110;
  EXPECT_EQ(a.wire_size(), base + 110);
}

TEST(CoreMessages, StateMessageRoundTrip) {
  core::StateMessage s;
  s.server_id = 2;
  s.conf_id = ConfigId{5, 0};
  s.green_count = 100;
  s.white_count = 40;
  s.red_cut = {{0, 30}, {1, 25}, {2, 45}};
  s.green_red_cut = {{0, 28}, {1, 25}, {2, 44}};
  s.server_set = {0, 1, 2, 7};
  s.attempt_index = 3;
  s.prim = core::PrimComponent{4, 2, {0, 1, 2}};
  s.vulnerable.valid = true;
  s.vulnerable.prim_index = 4;
  s.vulnerable.attempt_index = 3;
  s.vulnerable.set = {0, 1, 2};
  s.vulnerable.bits = {true, false, true};
  s.yellow.valid = true;
  s.yellow.set = {ActionId{1, 9}, ActionId{0, 12}};
  Bytes wire = core::encode_state_msg(s);
  EXPECT_EQ(core::peek_engine_type(wire), core::EngineMsgType::kState);
  BufReader r(wire);
  r.u8();
  core::StateMessage back = core::StateMessage::decode(r);
  EXPECT_EQ(back.green_count, 100);
  EXPECT_EQ(back.white_count, 40);
  EXPECT_EQ(back.red_cut, s.red_cut);
  EXPECT_EQ(back.green_red_cut, s.green_red_cut);
  EXPECT_EQ(back.prim, s.prim);
  EXPECT_EQ(back.vulnerable, s.vulnerable);
  EXPECT_EQ(back.yellow, s.yellow);
}

TEST(CoreMessages, VulnerableBits) {
  core::VulnerableRecord v;
  v.set = {3, 5, 9};
  v.bits = {false, false, false};
  EXPECT_FALSE(v.all_bits_set());
  v.set_bit(5);
  EXPECT_EQ(v.bits, (std::vector<bool>{false, true, false}));
  v.set_bit(99);  // unknown server: no effect
  EXPECT_EQ(v.bits, (std::vector<bool>{false, true, false}));
  v.set_bit(3);
  v.set_bit(9);
  EXPECT_TRUE(v.all_bits_set());
}

TEST(CoreMessages, EmptyBitsNeverComplete) {
  core::VulnerableRecord v;
  EXPECT_FALSE(v.all_bits_set());
}

TEST(CoreMessages, SnapshotRoundTrip) {
  core::SnapshotMessage s;
  db::Database d;
  d.apply(db::Command::put("a", "1"));
  s.db_snapshot = d.snapshot();
  s.green_count = 12;
  s.green_red_cut = {{0, 5}, {1, 7}};
  s.server_set = {0, 1, 9};
  s.green_lines = {{0, 12}, {1, 10}};
  s.prim = core::PrimComponent{2, 1, {0, 1}};
  Bytes wire = core::encode_snapshot(s);
  EXPECT_EQ(core::peek_direct_type(wire), core::DirectMsgType::kSnapshot);
  BufReader r(wire);
  r.u8();
  core::SnapshotMessage back = core::decode_snapshot(r);
  EXPECT_EQ(back.green_count, 12);
  EXPECT_EQ(back.server_set, s.server_set);
  db::Database d2;
  d2.restore(back.db_snapshot);
  EXPECT_EQ(d2.digest(), d.digest());
}

TEST(CoreMessages, ActionBatchWireRoundTrip) {
  core::Action a;
  a.id = ActionId{2, 7};
  a.update = db::Command::add("n", 1);
  core::Action b = a;
  b.id = ActionId{2, 8};
  Bytes wire = core::encode_action_batch({a, b});
  EXPECT_EQ(core::peek_engine_type(wire), core::EngineMsgType::kActionBatch);
  BufReader r(wire);
  r.u8();
  const auto back = core::decode_action_batch(r);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, a.id);
  EXPECT_EQ(back[1].id, b.id);
}

TEST(CoreMessages, CatchupSharesSnapshotBody) {
  core::SnapshotMessage s;
  s.green_count = 3;
  Bytes wire = core::encode_catchup(s);
  EXPECT_EQ(core::peek_engine_type(wire), core::EngineMsgType::kCatchup);
  BufReader r(wire);
  r.u8();
  EXPECT_EQ(core::decode_snapshot(r).green_count, 3);
}

TEST(CoreMessages, LogRecordsRoundTrip) {
  core::Action a;
  a.id = ActionId{1, 2};
  a.update = db::Command::put("k", "v");

  Bytes ongoing = core::encode_log_ongoing(a);
  EXPECT_EQ(core::peek_log_type(ongoing), core::LogRecordType::kOngoing);

  Bytes red = core::encode_log_red(a);
  EXPECT_EQ(core::peek_log_type(red), core::LogRecordType::kRed);

  Bytes green = core::encode_log_green(17, a);
  EXPECT_EQ(core::peek_log_type(green), core::LogRecordType::kGreen);
  {
    BufReader r(green);
    r.u8();
    EXPECT_EQ(r.i64(), 17);
    EXPECT_EQ(core::Action::decode(r).id, a.id);
  }

  core::Action a2 = a;
  a2.id = ActionId{1, 3};
  Bytes batch = core::encode_log_ongoing_batch({a, a2});
  EXPECT_EQ(core::peek_log_type(batch), core::LogRecordType::kOngoingBatch);
  {
    BufReader r(batch);
    r.u8();
    const auto back = core::decode_action_batch(r);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].id, a.id);
    EXPECT_EQ(back[1].id, a2.id);
  }

  core::MetaRecord m;
  m.server_set = {0, 1};
  m.prim = core::PrimComponent{1, 1, {0, 1}};
  m.attempt_index = 2;
  m.gc_counter = 33;
  m.green_lines = {{0, 4}, {1, 3}};
  Bytes meta = core::encode_log_meta(m);
  EXPECT_EQ(core::peek_log_type(meta), core::LogRecordType::kMeta);
  {
    BufReader r(meta);
    r.u8();
    core::MetaRecord back = core::decode_meta(r);
    EXPECT_EQ(back.gc_counter, 33);
    EXPECT_EQ(back.green_lines, m.green_lines);
    EXPECT_EQ(back.prim, m.prim);
  }

  core::DbSnapshotRecord snap;
  db::Database d;
  d.apply(db::Command::put("x", "y"));
  snap.db_snapshot = d.snapshot();
  snap.green_count = 9;
  snap.green_red_cut = {{0, 9}};
  snap.meta = m;
  snap.red_actions = {a};
  snap.ongoing_actions = {a, a};
  Bytes rec = core::encode_log_db_snapshot(snap);
  EXPECT_EQ(core::peek_log_type(rec), core::LogRecordType::kDbSnapshot);
  {
    BufReader r(rec);
    r.u8();
    core::DbSnapshotRecord back = core::decode_db_snapshot(r);
    EXPECT_EQ(back.green_count, 9);
    ASSERT_EQ(back.red_actions.size(), 1u);
    ASSERT_EQ(back.ongoing_actions.size(), 2u);
    EXPECT_EQ(back.red_actions[0].id, a.id);
    EXPECT_EQ(back.meta.gc_counter, 33);
  }
}

TEST(CoreMessages, GreenAndRedRetransEncodings) {
  core::Action a;
  a.id = ActionId{2, 7};
  Bytes g = core::encode_green_retrans(41, a);
  EXPECT_EQ(core::peek_engine_type(g), core::EngineMsgType::kGreenRetrans);
  BufReader rg(g);
  rg.u8();
  EXPECT_EQ(rg.i64(), 41);
  EXPECT_EQ(core::Action::decode(rg).id, a.id);

  Bytes rr = core::encode_red_retrans(a);
  EXPECT_EQ(core::peek_engine_type(rr), core::EngineMsgType::kRedRetrans);
}

TEST(CoreMessages, AnnounceRoundTrip) {
  core::AnnounceMessage m;
  m.server_id = 3;
  m.known = {{0, 12}, {1, 7}, {3, 12}};
  Bytes wire = core::encode_announce(m);
  EXPECT_EQ(core::peek_engine_type(wire), core::EngineMsgType::kAnnounce);
  BufReader r(wire);
  r.u8();
  const core::AnnounceMessage back = core::decode_announce(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back, m);
}

TEST(CoreMessages, JoinRequestRoundTrip) {
  Bytes wire = core::encode_join_request(core::JoinRequest{42});
  EXPECT_EQ(core::peek_direct_type(wire), core::DirectMsgType::kJoinRequest);
  BufReader r(wire);
  r.u8();
  EXPECT_EQ(core::decode_join_request(r).joiner, 42);
}

}  // namespace
}  // namespace tordb
