#include <gtest/gtest.h>

#include "obs_enable.h"  // run every cluster under the online safety checker
#include "gc_harness.h"

namespace tordb::gc {
namespace {

using testing::GcCluster;

TEST(GcPartition, SplitFormsTwoConfigurations) {
  GcCluster c(4);
  c.run_for(millis(500));
  ASSERT_TRUE(c.converged({0, 1, 2, 3}));
  c.net().set_components({{0, 1}, {2, 3}});
  c.run_for(millis(500));
  EXPECT_TRUE(c.converged({0, 1}));
  EXPECT_TRUE(c.converged({2, 3}));
  EXPECT_NE(c.gc(0).config().id, c.gc(2).config().id);
}

TEST(GcPartition, TransitionalConfigDeliveredOnSplit) {
  GcCluster c(4);
  c.run_for(millis(500));
  const ConfigId merged = c.gc(0).config().id;
  c.net().set_components({{0, 1}, {2, 3}});
  c.run_for(millis(500));
  // Each side saw a transitional configuration of the merged config whose
  // members are exactly the survivors on that side.
  bool found = false;
  for (const Configuration& t : c.record(0).transitionals) {
    if (t.id == merged) {
      EXPECT_EQ(t.members, (std::vector<NodeId>{0, 1}));
      EXPECT_TRUE(t.transitional);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  found = false;
  for (const Configuration& t : c.record(3).transitionals) {
    if (t.id == merged) {
      EXPECT_EQ(t.members, (std::vector<NodeId>{2, 3}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GcPartition, MergeReformsSingleConfiguration) {
  GcCluster c(4);
  c.run_for(millis(500));
  c.net().set_components({{0, 1}, {2, 3}});
  c.run_for(millis(500));
  c.net().heal();
  c.run_for(millis(500));
  EXPECT_TRUE(c.converged({0, 1, 2, 3}));
  c.check_all_invariants();
}

TEST(GcPartition, TrafficContinuesInBothComponentsAfterSplit) {
  GcCluster c(4);
  c.run_for(millis(500));
  c.net().set_components({{0, 1}, {2, 3}});
  c.run_for(millis(500));
  c.multicast(0, 100);
  c.multicast(3, 200);
  c.run_for(millis(200));
  // Side A delivered 0's message; side B delivered 3's; neither crossed.
  auto delivered_in_current = [&](NodeId node, NodeId sender, std::int64_t k) {
    for (const Delivery& d : c.record(node).deliveries) {
      if (testing::parse_payload(d.payload) == std::make_pair(sender, k)) return true;
    }
    return false;
  };
  EXPECT_TRUE(delivered_in_current(1, 0, 100));
  EXPECT_FALSE(delivered_in_current(2, 0, 100));
  EXPECT_TRUE(delivered_in_current(2, 3, 200));
  EXPECT_FALSE(delivered_in_current(0, 3, 200));
}

TEST(GcPartition, InFlightMessagesRespectTrichotomy) {
  GcCluster c(6);
  c.run_for(millis(500));
  std::vector<NodeId> all{0, 1, 2, 3, 4, 5};
  ASSERT_TRUE(c.converged(all));
  // Blast messages and split mid-stream, several times.
  std::int64_t k = 0;
  for (int round = 0; round < 3; ++round) {
    for (int burst = 0; burst < 20; ++burst) {
      for (NodeId n = 0; n < 6; ++n) c.multicast(n, ++k);
      c.run_for(micros(300));
    }
    c.net().set_components({{0, 1, 2}, {3, 4, 5}});
    c.run_for(millis(400));
    c.net().heal();
    c.run_for(millis(600));
  }
  c.check_all_invariants();
}

TEST(GcPartition, MessageSentDuringGatherDeliveredAfterInstall) {
  GcCluster c(4);
  c.run_for(millis(500));
  c.net().set_components({{0, 1}, {2, 3}});
  // Within the detection window the GC has not noticed yet; right after the
  // notification it is gathering. Send then.
  c.run_for(millis(2));
  c.multicast(0, 42);
  c.run_for(millis(800));
  bool delivered_at_1 = false;
  for (const Delivery& d : c.record(1).deliveries) {
    if (testing::parse_payload(d.payload) == std::make_pair(NodeId{0}, std::int64_t{42})) {
      delivered_at_1 = true;
    }
  }
  EXPECT_TRUE(delivered_at_1);
  c.check_all_invariants();
}

TEST(GcPartition, CrashShrinksMembership) {
  GcCluster c(4);
  c.run_for(millis(500));
  c.crash(3);
  c.run_for(millis(500));
  EXPECT_TRUE(c.converged({0, 1, 2}));
}

TEST(GcPartition, SequencerCrashFailsOver) {
  GcCluster c(4);
  c.run_for(millis(500));
  c.crash(0);  // node 0 is the sequencer
  c.run_for(millis(500));
  ASSERT_TRUE(c.converged({1, 2, 3}));
  // New sequencer (node 1) orders traffic.
  c.multicast(2, 1);
  c.run_for(millis(200));
  EXPECT_EQ(c.record(1).deliveries.size(), 1u);
  EXPECT_EQ(c.record(2).deliveries.size(), 1u);
  EXPECT_EQ(c.record(3).deliveries.size(), 1u);
  EXPECT_GT(c.gc(1).stats().messages_ordered, 0u);
}

TEST(GcPartition, RecoveredNodeRejoins) {
  GcCluster c(4);
  c.run_for(millis(500));
  c.crash(2);
  c.run_for(millis(500));
  ASSERT_TRUE(c.converged({0, 1, 3}));
  c.recover(2);
  c.run_for(millis(800));
  EXPECT_TRUE(c.converged({0, 1, 2, 3}));
  // The rejoined node's config counter moved past everything it saw before.
  c.check_all_invariants();
}

TEST(GcPartition, ThreeWaySplitAndStaggeredMerge) {
  GcCluster c(6);
  c.run_for(millis(500));
  c.net().set_components({{0, 1}, {2, 3}, {4, 5}});
  c.run_for(millis(600));
  EXPECT_TRUE(c.converged({0, 1}));
  EXPECT_TRUE(c.converged({2, 3}));
  EXPECT_TRUE(c.converged({4, 5}));
  c.net().set_components({{0, 1, 2, 3}, {4, 5}});
  c.run_for(millis(600));
  EXPECT_TRUE(c.converged({0, 1, 2, 3}));
  c.net().heal();
  c.run_for(millis(600));
  EXPECT_TRUE(c.converged({0, 1, 2, 3, 4, 5}));
  c.check_all_invariants();
}

TEST(GcPartition, CascadingChangesEventuallySettle) {
  GcCluster c(5);
  c.run_for(millis(300));
  // Rapid-fire topology changes, faster than gathers can complete.
  c.net().set_components({{0, 1, 2}, {3, 4}});
  c.run_for(millis(15));
  c.net().set_components({{0, 1}, {2, 3, 4}});
  c.run_for(millis(15));
  c.net().set_components({{0}, {1, 2}, {3, 4}});
  c.run_for(millis(15));
  c.net().heal();
  c.run_for(seconds(1));
  EXPECT_TRUE(c.converged({0, 1, 2, 3, 4}));
  c.check_all_invariants();
}

TEST(GcPartition, IsolatedNodeFormsSingleton) {
  GcCluster c(3);
  c.run_for(millis(500));
  c.net().set_components({{0}, {1, 2}});
  c.run_for(millis(500));
  EXPECT_TRUE(c.converged({0}));
  EXPECT_EQ(c.gc(0).config().members, (std::vector<NodeId>{0}));
  // The singleton still makes progress.
  c.multicast(0, 5);
  c.run_for(millis(100));
  bool got = false;
  for (const Delivery& d : c.record(0).deliveries) {
    if (testing::parse_payload(d.payload).second == 5) got = true;
  }
  EXPECT_TRUE(got);
}

TEST(GcPartition, SafeMessageNotDeliveredSafeWithoutStability) {
  // Split immediately after sending: the message may be delivered in the
  // transitional configuration but must never be claimed safe-in-regular by
  // one side while the other side never sees it — checked by the
  // trichotomy checker over many interleavings in the property test; here
  // we check the basic case.
  GcCluster c(4);
  c.run_for(millis(500));
  for (std::int64_t k = 1; k <= 10; ++k) c.multicast(0, k);
  c.net().set_components({{0, 1}, {2, 3}});
  c.run_for(seconds(1));
  c.check_safe_trichotomy();
  c.check_virtual_synchrony();
}

TEST(GcPartition, ManyCrashRecoverCycles) {
  GcCluster c(4);
  c.run_for(millis(500));
  for (int i = 0; i < 3; ++i) {
    c.crash(1);
    c.run_for(millis(400));
    EXPECT_TRUE(c.converged({0, 2, 3}));
    c.recover(1);
    c.run_for(millis(600));
    EXPECT_TRUE(c.converged({0, 1, 2, 3}));
  }
  c.check_all_invariants();
}

}  // namespace
}  // namespace tordb::gc
