// Bit-for-bit reproducibility: the same seed must produce the same
// simulation, event for event — the property every debugging session and
// every seeded regression test in this repository depends on.
#include <gtest/gtest.h>

#include "db/database.h"
#include "util/rng.h"
#include "workload/cluster.h"

namespace tordb {
namespace {

using core::Semantics;
using db::Command;
using workload::ClusterOptions;
using workload::EngineCluster;

struct RunFingerprint {
  std::vector<std::uint64_t> digests;
  std::vector<std::int64_t> greens;
  std::uint64_t messages;
  std::size_t events;

  friend bool operator==(const RunFingerprint&, const RunFingerprint&) = default;
};

RunFingerprint run_once(std::uint64_t seed) {
  ClusterOptions o;
  o.replicas = 5;
  o.seed = seed;
  EngineCluster c(o);
  c.run_for(seconds(1));
  Rng rng(seed);
  for (int step = 0; step < 25; ++step) {
    const NodeId n = static_cast<NodeId>(rng.next_below(5));
    if (c.node(n).running()) {
      c.engine(n).submit({}, Command::add("k" + std::to_string(step % 3), 1), n,
                         Semantics::kStrict, nullptr);
    }
    if (step == 8) c.partition({{0, 1, 2}, {3, 4}});
    if (step == 16) c.heal();
    if (step == 20) {
      c.crash(1);
    }
    if (step == 22) c.recover(1);
    c.run_for(millis(static_cast<std::int64_t>(rng.next_range(20, 120))));
  }
  c.run_for(seconds(5));
  RunFingerprint fp;
  for (NodeId i = 0; i < 5; ++i) {
    fp.digests.push_back(c.engine(i).db_digest());
    fp.greens.push_back(c.engine(i).green_count());
  }
  fp.messages = c.net().stats().messages_sent;
  fp.events = c.sim().executed_events();
  return fp;
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  const RunFingerprint a = run_once(12345);
  const RunFingerprint b = run_once(12345);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDivergeInDetail) {
  const RunFingerprint a = run_once(1);
  const RunFingerprint b = run_once(2);
  // Outcomes converge (same database content is possible) but the event
  // streams differ: jitter and schedules are seed-dependent.
  EXPECT_NE(a.events, b.events);
}

TEST(Determinism, ScenarioRunsAreReproducible) {
  // Two executions of the same cluster construction produce identical
  // startup traffic.
  for (int i = 0; i < 2; ++i) {
    ClusterOptions o;
    o.replicas = 7;
    o.seed = 99;
    EngineCluster c(o);
    c.run_for(seconds(1));
    static std::uint64_t first_msgs = 0;
    if (i == 0) {
      first_msgs = c.net().stats().messages_sent;
    } else {
      EXPECT_EQ(c.net().stats().messages_sent, first_msgs);
    }
  }
}

}  // namespace
}  // namespace tordb
